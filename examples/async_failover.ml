(* The Section 2.1 remark, made executable: Protocol A needs synchrony only
   to detect failures, so in an asynchronous network with a (sound, complete)
   failure-detection service, process j simply takes over once the service
   reports every lower-numbered process gone.

   Here messages take 1-20 ticks, detector notifications lag up to 60 ticks,
   and a chain of failovers still finishes all the work with Theorem 2.3's
   work budget.

     dune exec examples/async_failover.exe *)

let () =
  let spec = Doall.Spec.make ~n:120 ~t:9 in
  let show label (r : Asim.Event_sim.result) =
    Format.printf "%-34s %a outcome=%a@." label Simkit.Metrics.pp_summary
      r.metrics Asim.Event_sim.pp_outcome r.outcome
  in
  show "no failures:" (Asim.Async_protocol_a.run ~max_delay:20 ~max_lag:60 spec);
  (* Processes 0..7 die one after another; each takeover is triggered purely
     by detector notifications, never by a clock. *)
  let crash_at = List.init 8 (fun i -> (i, 30 * (i + 1))) in
  show "failover chain (8 deaths):"
    (Asim.Async_protocol_a.run ~crash_at ~max_delay:20 ~max_lag:60 spec);
  (* Same run with a sluggish detector: correctness is unaffected, only the
     completion time stretches. *)
  show "same, detector 10x slower:"
    (Asim.Async_protocol_a.run ~crash_at ~max_delay:20 ~max_lag:600 spec);
  (* Drop the oracle detector AND the reliable network: 20% message loss,
     5% duplication, yet the hardened protocol (ack/retransmit links + a
     heartbeat detector) still finishes the same failover chain. *)
  let link =
    { Asim.Event_sim.perfect_link with drop_bp = 2000; dup_bp = 500 }
  in
  let stats = Asim.Link.stats () in
  show "hardened, 20% loss + dup:"
    (Asim.Async_protocol_a.run_hardened ~crash_at ~max_delay:20 ~max_lag:60
       ~link ~stats spec);
  Format.printf "  (retransmits=%d dups-suppressed=%d)@." stats.retransmits
    stats.dups_suppressed;
  let grid = Doall.Grid.make spec in
  Format.printf "Theorem 2.3 work budget: %d@." (Doall.Bounds.a_work grid)
