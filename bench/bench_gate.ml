(* The perf-regression gate: structural diff of a freshly generated
   dhw-bench document against the committed BENCH_results.json snapshot.

   Timings and measured counts drift run to run — the *shape* must not:
   the schema id, each table's column set, and each table's row keys
   (first-column values) are contracts consumed by downstream tooling.
   A fresh table must exist in the reference, carry exactly the same
   columns, and its row keys must appear in the reference in order (a
   subsequence, because smoke runs truncate sweeps: jobs 1-2 of 1-8,
   n<=10^6 of a 10^7 sweep). Anything else is schema drift and fails
   the build. *)

module J = Dhw_util.Jsonw

let expected_schema = "dhw-bench/v2"

type table_shape = { id : string; headers : string list; keys : string list }

let shapes_of doc =
  match J.member "tables" doc with
  | Some (J.Arr ts) ->
      List.filter_map
        (fun t ->
          match Option.bind (J.member "id" t) J.to_str with
          | None -> None
          | Some id ->
              let headers =
                match J.member "headers" t with
                | Some (J.Arr hs) -> List.filter_map J.to_str hs
                | _ -> []
              in
              let keys =
                match J.member "rows" t with
                | Some (J.Arr rows) ->
                    List.filter_map
                      (function
                        | J.Arr (c0 :: _) -> J.to_str c0 | _ -> None)
                      rows
                | _ -> []
              in
              Some { id; headers; keys })
        ts
  | _ -> []

(* Row labels embed numeric parameters that smoke runs legitimately shrink
   ("sync A, 30-schedule storm" vs the reference's 250) — strip digit runs
   before comparing so only the label structure is load-bearing. *)
let normalize_key s =
  String.init (String.length s) (fun i ->
      match s.[i] with '0' .. '9' -> '#' | c -> c)
  |> String.split_on_char '#'
  |> List.filter (fun part -> part <> "")
  |> String.concat ""

let rec is_subseq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
      if String.equal x y then is_subseq xs' ys' else is_subseq xs ys'

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> (
      match J.parse s with
      | Ok doc -> Ok doc
      | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e))

let check ~ref_doc ~new_doc =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let schema_of doc = Option.bind (J.member "schema" doc) J.to_str in
  (match schema_of new_doc with
  | Some s when s = expected_schema -> ()
  | Some s -> add "fresh document schema %S, expected %S" s expected_schema
  | None -> add "fresh document has no schema id");
  (match schema_of ref_doc with
  | Some s when s = expected_schema -> ()
  | Some s -> add "reference schema %S, expected %S" s expected_schema
  | None -> add "reference has no schema id");
  let ref_shapes = shapes_of ref_doc in
  List.iter
    (fun nt ->
      match List.find_opt (fun rt -> rt.id = nt.id) ref_shapes with
      | None -> add "table %s missing from reference" nt.id
      | Some rt ->
          if nt.headers <> rt.headers then
            add "table %s columns changed: [%s] vs reference [%s]" nt.id
              (String.concat "; " nt.headers)
              (String.concat "; " rt.headers);
          if
            not
              (is_subseq
                 (List.map normalize_key nt.keys)
                 (List.map normalize_key rt.keys))
          then
            add "table %s row keys are not a subsequence of the reference"
              nt.id)
    (shapes_of new_doc);
  List.rev !violations

(* Exit status: 0 = shapes match, 1 = drift, 2 = unreadable inputs. *)
let run ~ref_path ~new_path =
  match (load ref_path, load new_path) with
  | Error e, _ | _, Error e ->
      Printf.eprintf "bench gate: %s\n" e;
      2
  | Ok ref_doc, Ok new_doc -> (
      match check ~ref_doc ~new_doc with
      | [] ->
          Printf.printf "bench gate: %s structurally matches %s\n" new_path
            ref_path;
          0
      | vs ->
          List.iter (fun v -> Printf.eprintf "bench gate: %s\n" v) vs;
          1)
