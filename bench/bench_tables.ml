(* Experiments E1-E21 (see DESIGN.md §3): one table per theorem/claim of the
   paper, printing measured costs against the stated bounds. *)

module Table = Dhw_util.Table
module Intmath = Dhw_util.Intmath
module Hist = Dhw_util.Hist
module Metrics = Simkit.Metrics
module Bounds = Doall.Bounds

let fmt_ratio v bound =
  if bound = 0 then "-" else Table.fmt_ratio (float_of_int v /. float_of_int bound)

(* Each experiment prints its table and publishes it under a stable id
   (E1..E18, plus -suffixed sub-tables) so `main.exe --json` can serialize
   the whole trajectory to BENCH_results.json. *)
let collected : (string * Table.t) list ref = ref []

let publish id table =
  Table.print table;
  collected := (id, table) :: !collected

let reset () = collected := []
let tables () = List.rev !collected

let run ?fault spec proto = Doall.Runner.run ?fault spec proto

let m_work r = Metrics.work (Doall.Runner.(r.metrics))
let m_msgs r = Metrics.messages (Doall.Runner.(r.metrics))
let m_rounds r = Metrics.rounds (Doall.Runner.(r.metrics))

let verdict r = if Doall.Runner.correct r then "ok" else "FAIL"

(* ------------------------------------------------------------------ *)
(* E1 / E2: Theorems 2.3 and 2.8 — Protocols A and B on perfect-square
   instances under three adversaries. *)

let adversaries spec =
  let t = Doall.Spec.processes spec in
  let n = Doall.Spec.n spec in
  [
    ("none", fun () -> Simkit.Fault.none);
    ( "kill active @1 unit",
      fun () ->
        Simkit.Fault.crash_active_after_work ~units_between_crashes:1
          ~max_crashes:(t - 1) );
    ( "kill active @chunk",
      fun () ->
        Simkit.Fault.crash_active_after_work
          ~units_between_crashes:(max 1 (n * Intmath.isqrt t / t))
          ~max_crashes:(t - 1) );
    ( "staggered all-but-one",
      fun () ->
        Simkit.Fault.crash_silently_at
          (List.init (t - 1) (fun i -> (i, 50 * i))) );
  ]

let e_thm_ab ~id ~title proto work_bound msg_bound round_bound =
  let table =
    Table.create ~title
      [ ("t", Table.Right); ("n", Right); ("adversary", Left); ("f", Right);
        ("work", Right); ("W-bound", Right); ("w/W", Right);
        ("msgs", Right); ("M-bound", Right); ("m/M", Right);
        ("rounds", Right); ("R-bound", Right); ("ok", Left) ]
  in
  List.iter
    (fun t ->
      let n = 16 * t in
      let spec = Doall.Spec.make ~n ~t in
      let grid = Doall.Grid.make spec in
      List.iter
        (fun (aname, mk_fault) ->
          let r = run ~fault:(mk_fault ()) spec proto in
          Table.add_row table
            [
              string_of_int t; Table.fmt_int n; aname;
              string_of_int (Doall.Runner.crashed r);
              Table.fmt_int (m_work r); Table.fmt_int (work_bound grid);
              fmt_ratio (m_work r) (work_bound grid);
              Table.fmt_int (m_msgs r); Table.fmt_int (msg_bound grid);
              fmt_ratio (m_msgs r) (msg_bound grid);
              Table.fmt_int (m_rounds r); Table.fmt_int (round_bound grid);
              verdict r;
            ])
        (adversaries spec);
      Table.add_rule table)
    [ 16; 25; 36; 64; 100 ];
  Printf.printf "\n== %s ==\n" id;
  publish id table

let e1 () =
  e_thm_ab ~id:"E1"
    ~title:
      "Theorem 2.3 (Protocol A): work <= 3n, msgs <= 9t*sqrt(t), rounds <= nt+3t^2"
    Doall.Protocol_a.protocol Bounds.a_work Bounds.a_msgs Bounds.a_rounds

let e2 () =
  e_thm_ab ~id:"E2"
    ~title:
      "Theorem 2.8 (Protocol B): work <= 3n, msgs <= 10t*sqrt(t), rounds <= 3n+8t"
    Doall.Protocol_b.protocol Bounds.b_work Bounds.b_msgs Bounds.b_rounds

(* ------------------------------------------------------------------ *)
(* E3: Theorem 3.8 — Protocol C. Small instances (63-bit deadlines). *)

let e3 () =
  let table =
    Table.create
      ~title:
        "Theorem 3.8 (Protocol C): work <= n+2t, msgs <= n+8t log t; time exponential"
      [ ("t", Table.Right); ("n", Right); ("adversary", Left); ("f", Right);
        ("work", Right); ("n+2t", Right); ("msgs", Right); ("M-bound", Right);
        ("rounds (measured)", Right); ("R-bound", Right); ("ok", Left) ]
  in
  List.iter
    (fun (t, n) ->
      let spec = Doall.Spec.make ~n ~t in
      List.iter
        (fun (aname, fault) ->
          let r = run ~fault spec Doall.Protocol_c.protocol in
          Table.add_row table
            [
              string_of_int t; string_of_int n; aname;
              string_of_int (Doall.Runner.crashed r);
              Table.fmt_int (m_work r); Table.fmt_int (Bounds.c_work spec);
              Table.fmt_int (m_msgs r); Table.fmt_int (Bounds.c_msgs spec);
              Table.fmt_int (m_rounds r);
              Printf.sprintf "%.2e" (Bounds.c_rounds spec ~period:1);
              verdict r;
            ])
        [
          ("none", Simkit.Fault.none);
          ( "kill active @2 units",
            Simkit.Fault.crash_active_after_work ~units_between_crashes:2
              ~max_crashes:(t - 1) );
          ( "staggered all-but-one",
            Simkit.Fault.crash_silently_at
              (List.init (t - 1) (fun i -> (i, 1000 * i))) );
        ];
      Table.add_rule table)
    [ (4, 16); (8, 24); (16, 24); (32, 10) ];
  print_string "\n== E3 ==\n";
  publish "E3" table

(* ------------------------------------------------------------------ *)
(* E4: Corollary 3.9 — chunked reporting makes messages independent of n. *)

let e4 () =
  let table =
    Table.create
      ~title:
        "Corollary 3.9: C reports every unit (msgs ~ n + 8t log t), chunked C every\n\
         n/t units (msgs ~ O(t log t), independent of n). t = 8, no faults."
      [ ("n", Table.Right); ("C msgs", Right); ("C-chunked msgs", Right);
        ("bound O(t log t)", Right); ("C work", Right); ("chunked work", Right) ]
  in
  List.iter
    (fun n ->
      let spec = Doall.Spec.make ~n ~t:8 in
      let rc = run spec Doall.Protocol_c.protocol in
      let rk = run spec Doall.Protocol_c.protocol_chunked in
      Table.add_row table
        [
          string_of_int n; Table.fmt_int (m_msgs rc); Table.fmt_int (m_msgs rk);
          Table.fmt_int (Bounds.c_chunked_msgs spec);
          Table.fmt_int (m_work rc); Table.fmt_int (m_work rk);
        ])
    [ 8; 16; 24; 32 ];
  print_string "\n== E4 ==\n";
  publish "E4" table

(* ------------------------------------------------------------------ *)
(* E5: Theorem 4.1 — Protocol D. *)

let e5 () =
  let t = 16 in
  let n = 40 * t in
  let spec = Doall.Spec.make ~n ~t in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Theorem 4.1 (Protocol D), n=%d t=%d: failure-free n/t+2 rounds & 2t^2 msgs;\n\
            with f failures <= 2n work, (4f+2)t^2 msgs, (f+1)n/t+4f+2 rounds" n t)
      [ ("schedule", Table.Left); ("f", Right); ("work", Right); ("2n", Right);
        ("msgs", Right); ("(4f+2)t^2", Right); ("rounds", Right);
        ("R-bound", Right); ("ok", Left) ]
  in
  let row name fault ~reverted =
    let r = run ~fault spec Doall.Protocol_d.protocol in
    let f = Doall.Runner.crashed r in
    let wb = if reverted then Bounds.d_work_revert spec else Bounds.d_work spec in
    let mb = if reverted then Bounds.d_msgs_revert spec ~f else Bounds.d_msgs spec ~f in
    let rb = if reverted then Bounds.d_rounds_revert spec ~f else Bounds.d_rounds spec ~f in
    Table.add_row table
      [
        name; string_of_int f; Table.fmt_int (m_work r); Table.fmt_int wb;
        Table.fmt_int (m_msgs r); Table.fmt_int mb; Table.fmt_int (m_rounds r);
        Table.fmt_int rb; verdict r;
      ]
  in
  row "failure-free" Simkit.Fault.none ~reverted:false;
  List.iter
    (fun f ->
      row
        (Printf.sprintf "%d staggered crashes" f)
        (Simkit.Fault.crash_silently_at
           (List.init f (fun i -> (i, 3 + (7 * i)))))
        ~reverted:false)
    [ 1; 2; 4; 7 ];
  row "9/16 die in phase 1 (revert to A)"
    (Simkit.Fault.crash_silently_at (List.init 9 (fun i -> (i, 2))))
    ~reverted:true;
  row "15/16 die (revert, lone survivor)"
    (Simkit.Fault.crash_silently_at (List.init 15 (fun i -> (i, 2))))
    ~reverted:true;
  print_string "\n== E5 ==\n";
  publish "E5" table;
  (* the end-of-Section-4 coordinator variant: failure-free messages drop
     from 2t(t-1) to 2(t-1) per phase *)
  let coord_table =
    Table.create
      ~title:
        "End of Section 4: the central-coordinator variant cuts failure-free\n\
         agreement to 2(t-1) messages (coordinator crashes abandon the\n\
         optimization and fall back to an embedded Protocol A)."
      [ ("schedule", Table.Left); ("work", Right); ("msgs", Right);
        ("rounds", Right); ("ok", Left) ]
  in
  let coord_row name fault =
    let r = run ~fault spec Doall.Protocol_d_coord.protocol in
    Table.add_row coord_table
      [ name; Table.fmt_int (m_work r); Table.fmt_int (m_msgs r);
        Table.fmt_int (m_rounds r); verdict r ]
  in
  coord_row "failure-free" Simkit.Fault.none;
  coord_row "2 worker crashes" (Simkit.Fault.crash_silently_at [ (3, 5); (9, 30) ]);
  coord_row "coordinator dies (fallback)" (Simkit.Fault.crash_silently_at [ (0, 7) ]);
  publish "E5-coord" coord_table

(* ------------------------------------------------------------------ *)
(* E6: Section 5 — Byzantine agreement message complexity. *)

let e6 () =
  let table =
    Table.create
      ~title:
        "Section 5: crash-model Byzantine agreement via work protocols.\n\
         Lines: Bracha (nonconstructive) n + t*sqrt(t); Galil-Mayer-Yung O(n) (~4n)."
      [ ("n", Table.Right); ("t", Right); ("via A", Right); ("via B", Right);
        ("via C-chunked", Right); ("Bracha", Right); ("GMY", Right) ]
  in
  List.iter
    (fun (n, t_bound) ->
      let msgs proto =
        let o = Agreement.Crash_ba.run ~n ~t_bound ~value:1 proto in
        assert (o.agreement && o.validity);
        o.messages
      in
      let c_msgs =
        (* C's deadline arithmetic caps the instance size *)
        if n + t_bound + 1 <= 42 then
          string_of_int (msgs Agreement.Crash_ba.C_chunked)
        else "(n+t too large)"
      in
      Table.add_row table
        [
          Table.fmt_int n; string_of_int t_bound;
          Table.fmt_int (msgs Agreement.Crash_ba.A);
          Table.fmt_int (msgs Agreement.Crash_ba.B);
          c_msgs;
          Table.fmt_int (Agreement.Crash_ba.bracha_msgs ~n ~t:t_bound);
          Table.fmt_int (Agreement.Crash_ba.gmy_msgs ~n);
        ])
    [ (16, 7); (32, 9); (64, 15); (128, 24); (256, 35); (512, 49) ];
  print_string "\n== E6 ==\n";
  publish "E6" table

(* ------------------------------------------------------------------ *)
(* E7: the Section 1 effort comparison across all protocols. *)

let e7 () =
  let print_sub ~id title specs protos fault_of =
    let table =
      Table.create ~title
        [ ("protocol", Table.Left); ("n", Right); ("t", Right); ("f", Right);
          ("work", Right); ("msgs", Right); ("effort", Right); ("rounds", Right);
          ("ok", Left) ]
    in
    List.iter
      (fun (n, t) ->
        let spec = Doall.Spec.make ~n ~t in
        List.iter
          (fun proto ->
            let r = run ~fault:(fault_of n t) spec proto in
            Table.add_row table
              [
                r.Doall.Runner.protocol; Table.fmt_int n; string_of_int t;
                string_of_int (Doall.Runner.crashed r);
                Table.fmt_int (m_work r); Table.fmt_int (m_msgs r);
                Table.fmt_int (Metrics.effort r.metrics);
                Table.fmt_int (m_rounds r); verdict r;
              ])
          protos;
        Table.add_rule table)
      specs;
    publish id table
  in
  print_string "\n== E7 ==\n";
  print_sub ~id:"E7-ff"
    "Section 1 effort comparison, failure-free (large instances; C excluded: deadlines)"
    [ (400, 16); (1600, 64) ]
    [
      Doall.Baseline_trivial.protocol;
      Doall.Baseline_checkpoint.protocol ~period:1;
      Doall.Protocol_a.protocol;
      Doall.Protocol_b.protocol;
      Doall.Protocol_d.protocol;
    ]
    (fun _ _ -> Simkit.Fault.none);
  print_sub ~id:"E7-storm"
    "Same, under a takeover storm (kill active every ~n/t units)"
    [ (400, 16); (1600, 64) ]
    [
      Doall.Baseline_trivial.protocol;
      Doall.Baseline_checkpoint.protocol ~period:1;
      Doall.Protocol_a.protocol;
      Doall.Protocol_b.protocol;
      Doall.Protocol_d.protocol;
    ]
    (fun n t ->
      Simkit.Fault.crash_active_after_work ~units_between_crashes:(n / t)
        ~max_crashes:(t - 1));
  print_sub ~id:"E7-small"
    "Small instance including Protocol C variants (staggered crashes)"
    [ (20, 16) ]
    [
      Doall.Baseline_trivial.protocol;
      Doall.Baseline_checkpoint.protocol ~period:1;
      Doall.Protocol_a.protocol;
      Doall.Protocol_b.protocol;
      Doall.Protocol_c.protocol;
      Doall.Protocol_c.protocol_chunked;
      Doall.Protocol_d.protocol;
    ]
    (fun _ t ->
      Simkit.Fault.crash_silently_at (List.init (t - 1) (fun i -> (i, 1000 * i))))

(* ------------------------------------------------------------------ *)
(* E8: the Section 3 ablation — naive knowledge spreading vs Protocol C. *)

let e8 () =
  let table =
    Table.create
      ~title:
        "Section 3 ablation, the paper's nested-crash scenario (n = t-1, processes\n\
         t/2+1..t-1 dead from round 1): the naive spreader re-informs the dead and\n\
         redoes Theta(t^2) units across the takeover cascade; Protocol C's\n\
         fault-detection keeps redo around 2t."
      [ ("t", Table.Right); ("n", Right); ("naive work", Right);
        ("naive msgs", Right); ("C work", Right); ("C msgs", Right);
        ("naive redo", Right); ("t^2", Right); ("C redo", Right); ("2t", Right) ]
  in
  List.iter
    (fun t ->
      let n = t - 1 in
      let spec = Doall.Spec.make ~n ~t in
      (* Process 0 informs process u of unit u; units above t/2 are reported
         only to the dead, so each successive survivor must rediscover them. *)
      let schedule () =
        Simkit.Fault.crash_silently_at
          (List.init ((t / 2) - 1) (fun i -> ((t / 2) + 1 + i, 1)))
      in
      let rn = run ~fault:(schedule ()) spec Doall.Protocol_c_naive.protocol in
      let rc = run ~fault:(schedule ()) spec Doall.Protocol_c.protocol in
      Table.add_row table
        [
          string_of_int t; string_of_int n;
          Table.fmt_int (m_work rn); Table.fmt_int (m_msgs rn);
          Table.fmt_int (m_work rc); Table.fmt_int (m_msgs rc);
          Table.fmt_int (m_work rn - n); Table.fmt_int (t * t);
          Table.fmt_int (m_work rc - n); Table.fmt_int (2 * t);
        ])
    (* n + t <= ~40: the deadline arithmetic caps instance sizes *)
    [ 4; 8; 12; 16; 20 ];
  print_string "\n== E8 ==\n";
  publish "E8" table

(* ------------------------------------------------------------------ *)
(* E9: the asynchronous Protocol A (Section 2.1). *)

let e9 () =
  let spec = Doall.Spec.make ~n:160 ~t:16 in
  let grid = Doall.Grid.make spec in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Section 2.1: asynchronous Protocol A with a failure detector; n=160 t=16.\n\
            Work stays within Theorem 2.3's budget (%d) whatever the timing adversary."
           (Bounds.a_work grid))
      [ ("max delay", Table.Right); ("max FD lag", Right); ("crashes", Right);
        ("work", Right); ("msgs", Right); ("ticks", Right); ("done", Left) ]
  in
  List.iter
    (fun (delay, lag, crashes) ->
      let crash_at = List.init crashes (fun i -> (i, 25 * (i + 1))) in
      let r =
        Asim.Async_protocol_a.run ~crash_at ~max_delay:delay ~max_lag:lag
          ~seed:11L spec
      in
      Table.add_row table
        [
          string_of_int delay; string_of_int lag; string_of_int crashes;
          Table.fmt_int (Metrics.work r.metrics);
          Table.fmt_int (Metrics.messages r.metrics);
          Table.fmt_int (Metrics.rounds r.metrics);
          (if Asim.Event_sim.completed r && Metrics.all_units_done r.metrics
           then "ok"
           else "FAIL");
        ])
    [
      (1, 1, 0); (5, 10, 0); (5, 10, 8); (20, 60, 8); (20, 600, 15); (50, 50, 15);
    ];
  print_string "\n== E9 ==\n";
  publish "E9" table

(* ------------------------------------------------------------------ *)
(* E10: checkpoint-frequency ablation (the Section 2 motivation). *)

let e10 () =
  let n = 240 and t = 16 in
  let spec = Doall.Spec.make ~n ~t in
  let adversary () =
    (* crashes land at arbitrary positions inside checkpoint intervals, so
       the expected loss per crash grows with the period *)
    Simkit.Fault.crash_active_after_random_work ~seed:31L ~min_units:1
      ~max_units:60 ~max_crashes:(t - 1)
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Section 2 motivation: single-level checkpointing every k units, n=%d t=%d,\n\
            active killed after a random 1..60 further units. Small k wastes messages,\n\
            large k wastes work; Protocol A's two-level scheme needs no tuning." n t)
      [ ("k", Table.Right); ("work", Right); ("msgs", Right); ("effort", Right);
        ("ok", Left) ]
  in
  List.iter
    (fun k ->
      let r = run ~fault:(adversary ()) spec (Doall.Baseline_checkpoint.protocol ~period:k) in
      Table.add_row table
        [
          string_of_int k; Table.fmt_int (m_work r); Table.fmt_int (m_msgs r);
          Table.fmt_int (Metrics.effort r.metrics); verdict r;
        ])
    [ 1; 2; 5; 10; 15; 30; 60; 120; 240 ];
  let ra = run ~fault:(adversary ()) spec Doall.Protocol_a.protocol in
  Table.add_rule table;
  Table.add_row table
    [
      "A (2-level)"; Table.fmt_int (m_work ra); Table.fmt_int (m_msgs ra);
      Table.fmt_int (Metrics.effort ra.Doall.Runner.metrics); verdict ra;
    ];
  print_string "\n== E10 ==\n";
  publish "E10" table

(* ------------------------------------------------------------------ *)
(* E11: message sizes (end of Section 1.1) — count vs width trade-offs. *)

let e11 () =
  let table =
    Table.create
      ~title:
        "Section 1.1 (end): message sizes in bits. A/B ship O(log n + log t) indices;\n\
         C ships whole views, Theta(t log t + t(n+t)) bits, buying its low count;\n\
         BA via A/B needs O(log n) + |value| per message vs GMY's Omega(n + log^2|V|)."
      [ ("n", Table.Right); ("t", Right); ("A/B ckpt", Right); ("C view", Right);
        ("D view", Right); ("BA via A (16-bit V)", Right); ("GMY (16-bit V)", Right) ]
  in
  List.iter
    (fun (n, t) ->
      let spec = Doall.Spec.make ~n ~t in
      let grid = Doall.Grid.make spec in
      Table.add_row table
        [
          Table.fmt_int n; string_of_int t;
          Table.fmt_int (Doall.Msg_size.a_msg_bits grid);
          Table.fmt_int (Doall.Msg_size.c_msg_bits spec ~round_bits:(n + t));
          Table.fmt_int (Doall.Msg_size.d_msg_bits spec);
          Table.fmt_int (Doall.Msg_size.ba_msg_bits grid ~value_bits:16);
          Table.fmt_int (Doall.Msg_size.gmy_msg_bits ~n ~value_bits:16);
        ])
    [ (64, 16); (256, 16); (1024, 64); (4096, 256) ];
  print_string "\n== E11 ==\n";
  publish "E11" table

(* ------------------------------------------------------------------ *)
(* E12: the √t group-size choice of Section 2, validated by sweeping s. *)

let e12 () =
  let n = 1024 and t = 64 in
  let spec = Doall.Spec.make ~n ~t in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Section 2's group-size argument, n=%d t=%d: partial checkpoints cost ~t*s\n\
            messages, full checkpoints ~2t^2/s; s = sqrt(t) = 8 balances them. Active\n\
            process killed after every chunk of work." n t)
      [ ("group size s", Table.Right); ("msgs (ff)", Right);
        ("msgs (chunk killer)", Right); ("work (chunk killer)", Right);
        ("ok", Left) ]
  in
  List.iter
    (fun s ->
      let proto = Doall.Protocol_a.protocol_with_group_size s in
      let ff = run spec proto in
      let grid = Doall.Grid.make_with_group_size spec s in
      let chunk = max 1 (Doall.Grid.subchunk_size_max grid * s) in
      let fault =
        Simkit.Fault.crash_active_after_work ~units_between_crashes:chunk
          ~max_crashes:(t - 1)
      in
      let adv = run ~fault spec proto in
      Table.add_row table
        [
          string_of_int s; Table.fmt_int (m_msgs ff); Table.fmt_int (m_msgs adv);
          Table.fmt_int (m_work adv);
          (if Doall.Runner.correct ff && Doall.Runner.correct adv then "ok"
           else "FAIL");
        ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  print_string "\n== E12 ==\n";
  publish "E12" table

(* ------------------------------------------------------------------ *)
(* E13: Section 1.1 — message passing vs shared memory, effort vs APS. *)

let aps_of_report (r : Doall.Runner.report) =
  let final = Metrics.rounds r.metrics in
  Array.fold_left
    (fun acc st ->
      acc
      +
      match st with
      | Simkit.Types.Terminated x | Simkit.Types.Crashed x -> x + 1
      | Simkit.Types.Running -> final + 1)
    0 r.statuses

let e13 () =
  let n = 200 and t = 16 in
  let spec = Doall.Spec.make ~n ~t in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Section 1.1: message passing vs shared memory, n=%d t=%d, three crashes.\n\
            Effort = work + (messages | reads+writes); APS = the Kanellakis-Shvartsman\n\
            available-processor-steps measure, which also bills idle-but-alive processes." n t)
      [ ("model", Table.Left); ("algorithm", Left); ("work", Right);
        ("comms", Right); ("effort", Right); ("rounds", Right); ("APS", Right);
        ("ok", Left) ]
  in
  let crashes = [ (0, 9); (1, 40); (5, 77) ] in
  List.iter
    (fun proto ->
      let r = run ~fault:(Simkit.Fault.crash_silently_at crashes) spec proto in
      Table.add_row table
        [
          "msg-passing"; r.Doall.Runner.protocol; Table.fmt_int (m_work r);
          Table.fmt_int (m_msgs r);
          Table.fmt_int (Metrics.effort r.metrics);
          Table.fmt_int (m_rounds r); Table.fmt_int (aps_of_report r);
          verdict r;
        ])
    [ Doall.Protocol_a.protocol; Doall.Protocol_b.protocol; Doall.Protocol_d.protocol ];
  List.iter
    (fun (name, algo) ->
      let (o : Shmem.Writeall.outcome) = algo ~crash_at:crashes ~n ~t () in
      Table.add_row table
        [
          "shared-mem"; name;
          Table.fmt_int (Metrics.work o.result.metrics);
          Table.fmt_int (o.result.reads + o.result.writes);
          Table.fmt_int o.effort;
          Table.fmt_int (Metrics.rounds o.result.metrics);
          Table.fmt_int o.result.aps;
          (if Shmem.Writeall.work_complete o then "ok" else "FAIL");
        ])
    [
      ( "checkpointed (seq)",
        fun ~crash_at ~n ~t () -> Shmem.Writeall.checkpointed ~crash_at ~n ~t () );
      ( "parallel scan",
        fun ~crash_at ~n ~t () -> Shmem.Writeall.parallel_scan ~crash_at ~n ~t () );
    ];
  print_string "\n== E13 ==\n";
  publish "E13" table

(* ------------------------------------------------------------------ *)
(* E14: the Section 1 bootstrap — cost at most doubles when the pool is not
   common knowledge — and the online-arrival variant's overhead. *)

let e14 () =
  let table =
    Table.create
      ~title:
        "Section 1 extensions. Top: the common-knowledge bootstrap (BA on the pool,\n\
         then the work) costs at most 2x the direct run for n = Omega(t).\n\
         Bottom: Protocol D with the same work arriving online in four waves."
      [ ("scenario", Table.Left); ("n", Right); ("t", Right); ("work", Right);
        ("msgs", Right); ("effort", Right); ("rounds", Right); ("ok", Left) ]
  in
  List.iter
    (fun (n, t) ->
      let spec = Doall.Spec.make ~n ~t in
      let direct = run spec Doall.Protocol_a.protocol in
      Table.add_row table
        [
          "A, pool common knowledge"; Table.fmt_int n; string_of_int t;
          Table.fmt_int (m_work direct); Table.fmt_int (m_msgs direct);
          Table.fmt_int (Metrics.effort direct.metrics);
          Table.fmt_int (m_rounds direct); verdict direct;
        ];
      let boot = Agreement.Bootstrap.run ~n ~t Agreement.Crash_ba.A in
      Table.add_row table
        [
          "A, bootstrap (BA first)"; Table.fmt_int n; string_of_int t;
          Table.fmt_int boot.total_work; Table.fmt_int boot.total_messages;
          Table.fmt_int (boot.total_work + boot.total_messages);
          Table.fmt_int boot.total_rounds;
          (if boot.ok then "ok" else "FAIL");
        ];
      Table.add_rule table)
    [ (200, 10); (800, 25) ];
  List.iter
    (fun (n, t) ->
      let spec = Doall.Spec.make ~n ~t in
      let wave = n / 4 in
      let arrivals =
        List.init n (fun u -> (u / wave * 20, u, u mod t))
      in
      let cfg =
        { Doall.Protocol_d_online.arrivals; horizon = 100; idle_block = 5 }
      in
      let r = run spec (Doall.Protocol_d_online.protocol cfg) in
      Table.add_row table
        [
          "D-online, 4 arrival waves"; Table.fmt_int n; string_of_int t;
          Table.fmt_int (m_work r); Table.fmt_int (m_msgs r);
          Table.fmt_int (Metrics.effort r.metrics); Table.fmt_int (m_rounds r);
          verdict r;
        ])
    [ (200, 10); (800, 25) ];
  print_string "\n== E14 ==\n";
  publish "E14" table

(* ------------------------------------------------------------------ *)
(* E15: De Prisco–Mayer–Yung's observation quoted in Section 1.1 — in the
   message-passing model with t ≈ n, ANY algorithm needs n² available
   processor steps (whereas shared memory admits O(n log² n)). *)

let e15 () =
  let table =
    Table.create
      ~title:
        "Section 1.1 / De Prisco et al.: at t = n, the WORST-CASE available-processor-\n\
         steps cost of message-passing Do-All is >= ~n^2 (shared memory escapes with\n\
         O(n log^2 n)). Failure-free runs can be cheap (D pays 2n); an adversary that\n\
         kills one process per takeover/phase forces the quadratic bill."
      [ ("n = t", Table.Right); ("protocol", Left); ("APS (ff)", Right);
        ("APS (adversary)", Right); ("n^2", Right); ("adv/n^2", Right) ]
  in
  List.iter
    (fun n ->
      let spec = Doall.Spec.make ~n ~t:n in
      List.iter
        (fun proto ->
          let ff = run spec proto in
          let adv =
            (* one crash per phase: process i dies at round 3i *)
            run
              ~fault:
                (Simkit.Fault.crash_silently_at
                   (List.init (n - 1) (fun i -> (i, 3 * i))))
              spec proto
          in
          let aps_adv = aps_of_report adv in
          Table.add_row table
            [
              string_of_int n; ff.Doall.Runner.protocol;
              Table.fmt_int (aps_of_report ff); Table.fmt_int aps_adv;
              Table.fmt_int (n * n);
              Table.fmt_ratio (float_of_int aps_adv /. float_of_int (n * n));
            ])
        [
          Doall.Protocol_a.protocol; Doall.Protocol_b.protocol;
          Doall.Protocol_d.protocol; Doall.Baseline_trivial.protocol;
        ];
      Table.add_rule table)
    [ 16; 32; 64 ];
  print_string "\n== E15 ==\n";
  publish "E15" table

(* ------------------------------------------------------------------ *)
(* E16: statistical sweep — the single-schedule tables above could hide
   lucky seeds; run 100 random schedules per protocol and report the
   mean and max of each cost against its bound. *)

let e16 () =
  let n = 128 and t = 16 and runs = 100 in
  let spec = Doall.Spec.make ~n ~t in
  let grid = Doall.Grid.make spec in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Robustness sweep: %d random crash schedules (up to t-1 victims, random\n\
            rounds), n=%d t=%d. Every max must sit below its theorem bound." runs n t)
      [ ("protocol", Table.Left); ("work mean", Right); ("work max", Right);
        ("W-bound", Right); ("msgs mean", Right); ("msgs max", Right);
        ("M-bound", Right); ("rounds max", Right); ("R-bound", Right);
        ("failures", Right) ]
  in
  let g = Dhw_util.Prng.create 20260706L in
  List.iter
    (fun (proto, wb, mb, rb) ->
      let works = ref [] and msgs = ref [] and rounds = ref [] in
      let bad = ref 0 in
      (* crash rounds drawn within twice the failure-free running time, so
         they actually land while processes are alive *)
      let window = (2 * m_rounds (run spec proto)) + 1 in
      for _ = 1 to runs do
        let victims = Dhw_util.Prng.int g t in
        let pids = Dhw_util.Prng.sample_without_replacement g victims t in
        let schedule =
          List.map (fun p -> (p, Dhw_util.Prng.int g window)) pids
        in
        let r = run ~fault:(Simkit.Fault.crash_silently_at schedule) spec proto in
        if not (Doall.Runner.correct r) then incr bad;
        works := m_work r :: !works;
        msgs := m_msgs r :: !msgs;
        rounds := m_rounds r :: !rounds
      done;
      let mean xs =
        float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
      in
      let mx xs = List.fold_left max 0 xs in
      Table.add_row table
        [
          (run spec proto).Doall.Runner.protocol;
          Table.fmt_float (mean !works); Table.fmt_int (mx !works);
          Table.fmt_int wb;
          Table.fmt_float (mean !msgs); Table.fmt_int (mx !msgs);
          Table.fmt_int mb;
          Table.fmt_int (mx !rounds); Table.fmt_int rb;
          string_of_int !bad;
        ])
    [
      (Doall.Protocol_a.protocol, Bounds.a_work grid, Bounds.a_msgs grid,
       Bounds.a_rounds grid);
      (Doall.Protocol_b.protocol, Bounds.b_work grid, Bounds.b_msgs grid,
       Bounds.b_rounds grid);
      (* D's bounds use the revert-path envelope: random schedules can kill
         more than half a phase's processes *)
      (Doall.Protocol_d.protocol, Bounds.d_work_revert spec,
       Bounds.d_msgs_revert spec ~f:(t - 1), Bounds.d_rounds_revert spec ~f:(t - 1));
    ];
  print_string "\n== E16 ==\n";
  publish "E16" table;
  (* Adversary campaigns: the silent-crash sweep above is the weakest corner
     of the fault space. Run a seeded Simkit.Campaign per protocol — acting
     crashes with partial-delivery cuts included — and report the campaign
     statistics: schedules run, violations, and how much of each theorem
     bound the worst execution consumed (oracle margins, measured/bound). *)
  let module Campaign = Simkit.Campaign in
  let ctable =
    Table.create
      ~title:
        (Printf.sprintf
           "Adversary campaigns (partial-delivery fault fuzzing, Simkit.Campaign):\n\
            seeded schedules incl. mid-broadcast prefix/subset cuts, n=%d t=%d.\n\
            Margins are worst measured/bound ratios over all passing runs." n t)
      [ ("protocol", Table.Left); ("schedules", Right); ("executions", Right);
        ("violations", Right); ("work margin", Right); ("msgs margin", Right);
        ("rounds margin", Right) ]
  in
  let margin stats name =
    match List.assoc_opt name stats.Campaign.margins with
    | Some m -> Table.fmt_ratio m
    | None -> "-"
  in
  List.iter
    (fun proto ->
      let stats = Doall.Fuzz.campaign ~seed:20260806L ~executions:runs spec proto in
      Table.add_row ctable
        [
          proto.Doall.Protocol.name;
          Table.fmt_int stats.Campaign.schedules;
          Table.fmt_int stats.Campaign.executions;
          string_of_int (List.length stats.Campaign.failures);
          margin stats "work"; margin stats "messages"; margin stats "rounds";
        ])
    [
      Doall.Protocol_a.protocol; Doall.Protocol_b.protocol;
      Doall.Protocol_d.protocol; Doall.Protocol_d_coord.protocol;
    ];
  publish "E16-campaigns" ctable

(* ------------------------------------------------------------------ *)
(* E17: the price of an unreliable network. Hardened async Protocol A
   (ack/retransmit links + heartbeat detector, no oracle) against the
   oracle-detector perfect-link baseline, as the link adversary turns up
   message loss and duplication. Correctness never moves; only the
   transport overhead (retransmits, acks, beats) and completion time do. *)

let e17 () =
  let spec = Doall.Spec.make ~n:160 ~t:16 in
  let crash_at = List.init 8 (fun i -> (i, 25 * (i + 1))) in
  let table =
    Table.create
      ~title:
        "Unreliable network: hardened async Protocol A vs the perfect-link\n\
         oracle baseline; n=160 t=16, 8 crashes, max_delay=5 max_lag=10.\n\
         Loss/dup rates are per message; work must stay flat while only\n\
         transport costs grow."
      [ ("link", Table.Left); ("work", Right); ("msgs", Right);
        ("ticks", Right); ("retransmits", Right); ("acks", Right);
        ("beats", Right); ("done", Left) ]
  in
  let baseline =
    Asim.Async_protocol_a.run ~crash_at ~max_delay:5 ~max_lag:10 ~seed:17L spec
  in
  Table.add_row table
    [
      "oracle FD, perfect";
      Table.fmt_int (Metrics.work baseline.metrics);
      Table.fmt_int (Metrics.messages baseline.metrics);
      Table.fmt_int (Metrics.rounds baseline.metrics);
      "-"; "-"; "-";
      (if
         Asim.Event_sim.completed baseline
         && Metrics.all_units_done baseline.metrics
       then "ok"
       else "FAIL");
    ];
  List.iter
    (fun (label, drop_bp, dup_bp, slow_set) ->
      let link =
        { Asim.Event_sim.drop_bp; dup_bp; corrupt_bp = 0; slow_set;
          slow_factor = 4; severs = [] }
      in
      let stats = Asim.Link.stats () in
      let r =
        Asim.Async_protocol_a.run_hardened ~crash_at ~max_delay:5 ~max_lag:10
          ~seed:17L ~link ~stats spec
      in
      Table.add_row table
        [
          label;
          Table.fmt_int (Metrics.work r.metrics);
          Table.fmt_int (Metrics.messages r.metrics);
          Table.fmt_int (Metrics.rounds r.metrics);
          Table.fmt_int stats.retransmits;
          Table.fmt_int stats.acks_sent;
          Table.fmt_int stats.beats_sent;
          (if Asim.Event_sim.completed r && Metrics.all_units_done r.metrics
           then "ok"
           else "FAIL");
        ])
    [
      ("hardened, perfect", 0, 0, []);
      ("5% loss", 500, 0, []);
      ("15% loss, 5% dup", 1500, 500, []);
      ("30% loss, 10% dup", 3000, 1000, []);
      ("30% loss, slow {0,1}", 3000, 0, [ 0; 1 ]);
    ];
  print_string "\n== E17 ==\n";
  publish "E17" table

(* E18: the price of crash–recovery. Recovery-hardened A and B against
   their crash-stop baselines: failure-free the overhead is pure
   stable-storage bookkeeping (work, messages and rounds must not move);
   under crash+restart schedules the rejoiners' state transfer and redone
   units are the cost, and every run must still complete correctly. *)

let e18 () =
  let spec = Doall.Spec.make ~n:100 ~t:16 in
  let entry mode victim at = { Simkit.Campaign.Schedule.victim; at; mode } in
  let silent = entry Simkit.Campaign.Schedule.Silent in
  let restart = entry Simkit.Campaign.Schedule.Restart in
  let sched entries =
    Simkit.Campaign.Schedule.to_fault (Simkit.Campaign.Schedule.make entries)
  in
  let scenarios =
    [
      ("failure-free", fun () -> Simkit.Fault.none);
      ("crash 0@2, rejoin @10", fun () -> sched [ silent 0 2; restart 0 10 ]);
      ( "storm: 2 cycles + 2 victims",
        fun () ->
          sched
            [
              silent 0 1; restart 0 6; silent 0 7; restart 0 21;
              silent 2 3; restart 2 9; silent 5 4;
            ] );
    ]
  in
  let table =
    Table.create
      ~title:
        "Crash-recovery overhead: recovery-hardened A and B vs their\n\
         crash-stop baselines; n=100 t=16. Failure-free the wrapper may\n\
         only add stable-storage writes; restarts buy completion under\n\
         revival storms at the price of redone work and transfer traffic."
      [ ("protocol", Table.Left); ("scenario", Left); ("work", Right);
        ("w/ff", Right); ("msgs", Right); ("rounds", Right);
        ("restarts", Right); ("persists", Right); ("done", Left) ]
  in
  List.iter
    (fun (which, base_proto) ->
      let base = run spec base_proto in
      let ff_work = m_work base in
      Table.add_row table
        [
          base.Doall.Runner.protocol; "crash-stop, failure-free";
          Table.fmt_int ff_work; "1.00"; Table.fmt_int (m_msgs base);
          Table.fmt_int (m_rounds base); "-"; "-"; verdict base;
        ];
      List.iter
        (fun (label, fault) ->
          let r = Doall.Recovery.run ~fault:(fault ()) spec which in
          let m = r.Doall.Runner.metrics in
          Table.add_row table
            [
              r.Doall.Runner.protocol; label;
              Table.fmt_int (m_work r); fmt_ratio (m_work r) ff_work;
              Table.fmt_int (m_msgs r); Table.fmt_int (m_rounds r);
              Table.fmt_int (Metrics.restarts m);
              Table.fmt_int (Metrics.persists m); verdict r;
            ])
        scenarios;
      Table.add_rule table)
    [
      (Doall.Recovery.A, Doall.Protocol_a.protocol);
      (Doall.Recovery.B, Doall.Protocol_b.protocol);
    ];
  print_string "\n== E18 ==\n";
  publish "E18" table

(* E19: the harness itself scales with cores. A fixed seeded campaign (the
   same storm every row) is executed through Simkit.Pool at increasing
   worker-domain counts; wall-clock throughput and the speedup over jobs=1
   are measured, and "deterministic" digests the complete campaign result
   (counts, margins, every shrunk counterexample) and compares it with the
   jobs=1 digest — the byte-identity claim of Campaign.run_parallel,
   checked on real workloads. On a single-core machine the speedup column
   sits at ~1.0x; the deterministic column must read ok everywhere. *)

let campaign_fingerprint print (stats : _ Simkit.Campaign.stats) =
  let module C = Simkit.Campaign in
  let b = Buffer.create 256 in
  Buffer.add_string b (Format.asprintf "%a" C.pp_stats stats);
  List.iter
    (fun (f : _ C.failure) ->
      Buffer.add_string b f.C.oracle;
      Buffer.add_string b f.C.detail;
      Buffer.add_string b (print f.C.schedule);
      Buffer.add_string b (print f.C.shrunk))
    stats.C.failures;
  Digest.string (Buffer.contents b)

let e19 ?(executions = 250) ?(jobs_list = [ 1; 2; 4; 8 ]) () =
  let module C = Simkit.Campaign in
  let sync_spec = Doall.Spec.make ~n:80 ~t:12 in
  let async_spec = Doall.Spec.make ~n:40 ~t:6 in
  let async_executions = max 10 (executions / 5) in
  let campaigns =
    [
      ( Printf.sprintf "sync A, %d-schedule storm" executions,
        fun jobs ->
          let stats =
            Doall.Fuzz.campaign ~jobs ~seed:20260806L ~executions sync_spec
              Doall.Protocol_a.protocol
          in
          (stats.C.executions, List.length stats.C.failures,
           campaign_fingerprint C.Schedule.print stats) );
      ( Printf.sprintf "async A, %d-schedule storm" async_executions,
        fun jobs ->
          let stats =
            Asim.Async_fuzz.campaign ~jobs ~seed:20260806L
              ~executions:async_executions async_spec
          in
          (stats.C.executions, List.length stats.C.failures,
           campaign_fingerprint C.Async.print stats) );
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Multicore campaign execution (Simkit.Pool): one seeded storm per\n\
            campaign, executed at increasing worker-domain counts (this host\n\
            recommends %d). Speedup is wall-clock over jobs=1; deterministic\n\
            compares a digest of the full campaign result with jobs=1."
           (Simkit.Pool.default_jobs ()))
      [ ("campaign", Table.Left); ("jobs", Right); ("executions", Right);
        ("violations", Right); ("wall s", Right); ("exec/s", Right);
        ("speedup", Right); ("deterministic", Left) ]
  in
  List.iter
    (fun (label, go) ->
      let base_wall = ref 0.0 in
      let base_digest = ref "" in
      List.iter
        (fun jobs ->
          let t0 = Unix.gettimeofday () in
          let execs, violations, digest = go jobs in
          let wall = Unix.gettimeofday () -. t0 in
          if jobs = 1 then begin
            base_wall := wall;
            base_digest := digest
          end;
          Table.add_row table
            [
              label; string_of_int jobs; Table.fmt_int execs;
              string_of_int violations;
              Printf.sprintf "%.2f" wall;
              Table.fmt_float (float_of_int execs /. wall);
              (if jobs = 1 then "1.00"
               else Table.fmt_ratio (!base_wall /. wall));
              (if digest = !base_digest then "ok" else "MISMATCH");
            ])
        jobs_list;
      Table.add_rule table)
    campaigns;
  print_string "\n== E19 ==\n";
  publish "E19" table

(* E20: the price of validation under lies. Per Byzantine budget b, the
   same seeded storm of corruption/Byzantine schedules is executed by both
   the exposed Protocol A baseline and the validated A+val (keyed digests +
   f+1-quorum attestation) through the worker pool. The baseline's
   violation count shows what the adversary buys; the hardened rows must
   read 0 violations, and the work ratio is the premium the quorum
   charges for it. *)

let e20 ?(schedules = 40) ?jobs () =
  let module C = Simkit.Campaign in
  let module F = Doall.Fuzz in
  let spec = Doall.Spec.make ~n:60 ~t:15 in
  let t = Doall.Spec.processes spec in
  let window = 60 in
  let max_rounds = F.byz_max_rounds spec ~window in
  let budgets =
    List.sort_uniq compare [ 0; 1; t / 4; (t / 3) - 1 ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Corruption & Byzantine overhead: exposed A vs validated A+val\n\
            under the same %d-schedule seeded storm per Byzantine budget b\n\
            (n=%d t=%d, fault window %d). Hardened rows must show 0\n\
            violations; \"work vs A\" is the price of the f+1 quorum."
           schedules (Doall.Spec.n spec) t window)
      [ ("b", Right); ("protocol", Left); ("violations", Right);
        ("mean work", Right); ("mean msgs", Right); ("mean rounds", Right);
        ("work vs A", Right) ]
  in
  List.iter
    (fun b ->
      let g = Dhw_util.Prng.create 20260809L in
      let scheds =
        List.init schedules (fun _ -> C.sample_byz g ~t ~window ~byz:b)
      in
      let eval hardening =
        let oracles = F.byz_oracles spec ~hardening in
        let runs =
          Simkit.Pool.map_list ?jobs
            (fun sched ->
              let s = F.run_byz_schedule ~max_rounds spec hardening sched in
              let m = s.F.report.Doall.Runner.metrics in
              ( (match C.first_failure oracles s with
                | Some _ -> 1
                | None -> 0),
                Metrics.work m, Metrics.messages m, Metrics.rounds m ))
            scheds
        in
        let viol, work, msgs, rounds =
          List.fold_left
            (fun (v, w, m, r) (v', w', m', r') -> (v + v', w + w', m + m', r + r'))
            (0, 0, 0, 0) runs
        in
        let mean x = float_of_int x /. float_of_int schedules in
        (viol, mean work, mean msgs, mean rounds)
      in
      let va, wa, ma, ra = eval F.Unhardened in
      let vv, wv, mv, rv = eval F.Hardened in
      Table.add_row table
        [
          string_of_int b; F.byz_protocol_name F.Unhardened;
          string_of_int va; Printf.sprintf "%.1f" wa;
          Printf.sprintf "%.1f" ma; Printf.sprintf "%.1f" ra; "1.00";
        ];
      Table.add_row table
        [
          string_of_int b; F.byz_protocol_name F.Hardened;
          string_of_int vv; Printf.sprintf "%.1f" wv;
          Printf.sprintf "%.1f" mv; Printf.sprintf "%.1f" rv;
          Table.fmt_ratio (wv /. wa);
        ];
      Table.add_rule table)
    budgets;
  print_string "\n== E20 ==\n";
  publish "E20" table

(* E21: sim-vs-real effort parity. Each scenario is executed twice — once in
   the simulator and once as a fleet of real dhw_node processes over unix
   sockets, with the fault plan enforced by actual SIGKILLs and respawned
   incarnations recovering from on-disk checkpoints. Because the
   orchestrator replicates the kernel's loop rules and consults the same
   fault plan, every effort measure (work, messages, rounds, stable writes)
   must match exactly; the kill-storm rows double as a survival check for
   the respawn/recover path under back-to-back process deaths. *)

let e21_tmpdir () =
  let d = Filename.temp_file "dhwe21" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec e21_rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> e21_rm_rf (Filename.concat path e))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let e21 () =
  let module C = Simkit.Campaign in
  let module F = Doall.Fuzz in
  let module O = Dhw_net.Orchestrator in
  let node_exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/dhw_node.exe"
  in
  let scenarios =
    [
      ("A / fault-free", "a", 12, 3, [], []);
      ("A+rec / kill + recover", "a+rec", 12, 3, [ (0, 2) ], [ (0, 6) ]);
      ( "A+rec / kill-storm",
        "a+rec", 24, 4,
        [ (0, 2); (1, 4); (2, 6) ],
        [ (0, 5); (1, 8); (2, 10) ] );
      ("B+rec / kill + recover", "b+rec", 12, 3, [ (1, 3) ], [ (1, 7) ]);
    ]
  in
  let table =
    Table.create
      ~title:
        "Sim-vs-real effort parity: each schedule executed by the simulator\n\
         and by a fleet of real dhw_node processes (unix sockets, real\n\
         SIGKILLs, checkpoint-recovering respawns). Effort cells read\n\
         sim-value = real-value; any inequality is a parity break."
      [ ("scenario", Table.Left); ("t", Right); ("n", Right);
        ("kills", Right); ("respawns", Right); ("work", Right);
        ("msgs", Right); ("rounds", Right); ("persists", Right);
        ("frames", Right); ("parity", Left) ]
  in
  if not (Sys.file_exists node_exe) then
    Table.add_row table
      [ "dhw_node.exe not found; skipped"; "-"; "-"; "-"; "-"; "-"; "-";
        "-"; "-"; "-"; "-" ]
  else
    List.iter
      (fun (label, protocol, n, t, crashes, restarts) ->
        let entries =
          List.map
            (fun (victim, at) -> { C.Schedule.victim; at; mode = C.Schedule.Silent })
            crashes
          @ List.map
              (fun (victim, at) ->
                { C.Schedule.victim; at; mode = C.Schedule.Restart })
              restarts
        in
        let sched = C.Schedule.make entries in
        let spec = Doall.Spec.make ~n ~t in
        let sim =
          match protocol with
          | "a+rec" -> F.run_recovery_schedule spec Doall.Recovery.A sched
          | "b+rec" -> F.run_recovery_schedule spec Doall.Recovery.B sched
          | "a" -> F.run_schedule spec Doall.Protocol_a.protocol sched
          | _ -> F.run_schedule spec Doall.Protocol_b.protocol sched
        in
        let dir = e21_tmpdir () in
        let ckpt_dir = Filename.concat dir "ckpt" in
        Unix.mkdir ckpt_dir 0o700;
        let cfg =
          O.config
            ~fault:(C.Schedule.to_fault sched)
            ~log_dir:dir ~node_exe
            ~addr:(Dhw_net.Transport.Unix_sock (Filename.concat dir "ctl.sock"))
            ~protocol ~n ~t ~ckpt_dir ()
        in
        let real = Fun.protect ~finally:(fun () -> e21_rm_rf dir) (fun () -> O.run cfg) in
        let sm = sim.F.report.Doall.Runner.metrics and rm = real.O.metrics in
        let cell f =
          let s = f sm and r = f rm in
          if s = r then string_of_int s else Printf.sprintf "%d!=%d" s r
        in
        let parity =
          List.for_all
            (fun f -> f sm = f rm)
            [ Metrics.work; Metrics.messages; Metrics.rounds;
              Metrics.persists; Metrics.restarts; Metrics.crashes ]
          && real.O.stop = O.Completed
        in
        Table.add_row table
          [
            label; string_of_int t; string_of_int n;
            string_of_int real.O.kills; string_of_int real.O.respawns;
            cell Metrics.work; cell Metrics.messages; cell Metrics.rounds;
            cell Metrics.persists;
            string_of_int
              (real.O.transport.Dhw_net.Transport.frames_sent
              + real.O.transport.Dhw_net.Transport.frames_received);
            (if parity then "ok" else "FAIL");
          ])
      scenarios;
  print_string "\n== E21 ==\n";
  publish "E21" table

(* ------------------------------------------------------------------ *)
(* E22: the online Do-All latency picture. Per-unit arrival-to-completion
   latency percentiles (from the log-bucketed {!Dhw_util.Hist}) as the
   crash rate rises. Units arriving at a site that is already dead are
   lost by the model's own semantics, so the lost column grows with the
   crash count while the survivors' tail latency degrades gracefully. *)

let e22 () =
  let table =
    Table.create
      ~title:
        "E22: online Protocol D, per-unit arrival->completion latency (rounds) vs\n\
         crash rate. n=400 units arrive at seeded random rounds/sites over an\n\
         80-round horizon on t=16 processes; units arriving at crashed sites are\n\
         lost by design, and the surviving units' percentiles come from the\n\
         log-bucketed histogram (exact-rank, within one bucket of exact)."
      [ ("crashes", Table.Right); ("completed", Right); ("lost", Right);
        ("p50", Right); ("p90", Right); ("p99", Right); ("p999", Right);
        ("max", Right) ]
  in
  let n = 400 and t = 16 and horizon = 80 in
  let arrivals =
    Doall.Latency.gen_arrivals ~seed:97L ~n_units:n ~sites:t ~horizon
  in
  let spec = Doall.Spec.make ~n ~t in
  List.iter
    (fun crashes ->
      let fault =
        if crashes = 0 then Simkit.Fault.none
        else
          Simkit.Fault.crash_silently_at
            (List.init crashes (fun i -> (i, 10 + (7 * i))))
      in
      let cfg =
        { Doall.Protocol_d_online.arrivals; horizon; idle_block = 4 }
      in
      let lat = Doall.Latency.create ~arrivals in
      let _r =
        Doall.Runner.run ~fault ~obs:(Doall.Latency.sink lat) spec
          (Doall.Protocol_d_online.protocol cfg)
      in
      let h = Doall.Latency.hist lat in
      let q p = Table.fmt_int (Dhw_util.Hist.quantile h p) in
      Table.add_row table
        [
          string_of_int crashes;
          Table.fmt_int (Doall.Latency.completed lat);
          Table.fmt_int (Doall.Latency.lost lat);
          q 0.5; q 0.9; q 0.99; q 0.999;
          Table.fmt_int (Dhw_util.Hist.max_value h);
        ])
    [ 0; 2; 4; 8 ];
  print_string "\n== E22 ==\n";
  publish "E22" table

(* ------------------------------------------------------------------ *)
(* E23: allocation discipline of the kernel hot loop. Minor-heap words
   allocated per round (Gc.minor_words deltas around a fault-free run),
   with and without the span sink armed — guards against the tracing layer
   sneaking per-event allocation into untraced runs. *)

let e23 () =
  let table =
    Table.create
      ~title:
        "E23: minor-heap allocation per kernel round (Gc.minor_words delta over\n\
         a fault-free n=400 t=16 run), untraced vs with the span collector\n\
         armed. Tracing costs only when requested."
      [ ("protocol", Table.Left); ("rounds", Right); ("minor words", Right);
        ("words/round", Right); ("words/round traced", Right) ]
  in
  let n = 400 and t = 16 in
  let spec = Doall.Spec.make ~n ~t in
  let online_cfg =
    {
      Doall.Protocol_d_online.arrivals =
        Doall.Latency.gen_arrivals ~seed:97L ~n_units:n ~sites:t ~horizon:80;
      horizon = 80;
      idle_block = 4;
    }
  in
  let measure ?spans proto =
    let before = Gc.minor_words () in
    let r = Doall.Runner.run ?spans spec proto in
    let words = Gc.minor_words () -. before in
    (r, words)
  in
  List.iter
    (fun (name, proto) ->
      let r, words = measure proto in
      let sink, _spans = Simkit.Obs.span_collector ~src:"bench" () in
      let _, words_traced = measure ~spans:sink proto in
      let rounds = max 1 (m_rounds r) in
      let per w = Table.fmt_int (int_of_float (w /. float_of_int rounds)) in
      Table.add_row table
        [
          name; Table.fmt_int (m_rounds r);
          Table.fmt_int (int_of_float words); per words; per words_traced;
        ])
    [
      ("A", Doall.Protocol_a.protocol);
      ("B", Doall.Protocol_b.protocol);
      ("D", Doall.Protocol_d.protocol);
      ("D-online", Doall.Protocol_d_online.protocol online_cfg);
    ];
  print_string "\n== E23 ==\n";
  publish "E23" table

(* ------------------------------------------------------------------ *)
(* E24: the asynchronous real fleet under rising chaos loss. Unlike E21's
   round-lockstep orchestrator, here the nodes run free over the datagram
   mesh with organic heartbeat detection; each row SIGKILLs two waiters
   mid-run and respawns them from their checkpoints. Throughput is end-to-
   end units per wall second; detection latency is the tick distance from
   each SIGKILL to the first surviving suspicion of the victim, straight
   from the fleet's {!Dhw_util.Hist}. Loss slows the transport (more
   retransmission rounds) but must never cost units or oracles. *)

let e24 () =
  let module CA = Simkit.Campaign.Async in
  let module Fl = Dhw_net.Fleet in
  let node_exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/dhw_node.exe"
  in
  let n = 400 and t = 3 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E24: async real fleet (t=%d dhw_node --async processes, datagram\n\
            mesh, organic heartbeat detection) vs chaos loss. Each row moves\n\
            n=%d units through real processes while two waiters are SIGKILLed\n\
            and respawned from checkpoints; detection latency is SIGKILL ->\n\
            first surviving suspicion, in ticks."
           t n)
      [ ("drop", Table.Right); ("n", Right); ("t", Right); ("kills", Right);
        ("respawns", Right); ("work", Right); ("units/s", Right);
        ("detect p50", Right); ("detect p99", Right); ("oracles", Left) ]
  in
  if not (Sys.file_exists node_exe) then
    Table.add_row table
      [ "dhw_node.exe not found; skipped"; "-"; "-"; "-"; "-"; "-"; "-"; "-";
        "-"; "-" ]
  else
    List.iter
      (fun drop_bp ->
        let sched =
          CA.make
            ~meta:
              [ ("protocol", "async-a"); ("n", string_of_int n);
                ("t", string_of_int t) ]
            ~crashes:[ { CA.victim = 1; at = 80 }; { CA.victim = 2; at = 160 } ]
            ~restarts:
              [ { CA.victim = 1; at = 320 }; { CA.victim = 2; at = 360 } ]
            ~drop_bp ~seed:7L ()
        in
        let dir = e21_tmpdir () in
        let cfg =
          Fl.config ~dir ~node_exe ~spec:(Doall.Spec.make ~n ~t) ~sched ()
        in
        let r =
          Fun.protect ~finally:(fun () -> e21_rm_rf dir) (fun () -> Fl.run cfg)
        in
        let q h p =
          if Hist.count h = 0 then "-" else string_of_int (Hist.quantile h p)
        in
        Table.add_row table
          [
            Printf.sprintf "%d bp" drop_bp; string_of_int n; string_of_int t;
            string_of_int r.Fl.kills; string_of_int r.Fl.restarts;
            string_of_int r.Fl.total_work;
            Printf.sprintf "%.0f" (float_of_int n /. r.Fl.wall_s);
            q r.Fl.detect_hist 0.5; q r.Fl.detect_hist 0.99;
            (if r.Fl.ok then "ok" else "FAIL");
          ])
      [ 0; 1000; 3000 ];
  print_string "\n== E24 ==\n";
  publish "E24" table

(* ------------------------------------------------------------------ *)
(* E25: the million-unit kernel. Wall-clock and minor-heap allocation for
   failure-free runs of A, B and D as n sweeps up to 10^7 at t=10^3 —
   the scale regime the interval-set protocol views, the preallocated
   kernel inboxes and the trivial-fault scheduling fast path exist for.
   The words/round column is the proof that the round loop itself does
   not allocate: it must stay flat (near-zero per process-step) as n
   grows by two orders of magnitude. D is capped at 10^6: its agreement
   phases are t^2 messages each, which dominates long before n does. *)

type scale_row = {
  sc_proto : string;
  sc_n : int;
  sc_wall_s : float;
  sc_words_per_round : float;
  sc_ok : bool;
}

let e25 ?(scales = [ 100_000; 1_000_000; 10_000_000 ]) ?(d_cap = 1_000_000) ()
    =
  let t = 1000 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E25: scale sweep at t=%d, failure-free. Wall-clock and minor-heap\n\
            words per round must stay flat as n grows (the kernel round loop\n\
            allocates nothing of its own; protocol views are interval sets).\n\
            D capped at n=%d: its agreement traffic is t^2 per phase." t d_cap)
      [ ("protocol", Table.Left); ("n", Right); ("t", Right); ("rounds", Right);
        ("work", Right); ("msgs", Right); ("wall ms", Right);
        ("minor words", Right); ("words/round", Right); ("ok", Left) ]
  in
  let rows = ref [] in
  List.iter
    (fun (name, proto) ->
      List.iter
        (fun n ->
          if not (name = "D" && n > d_cap) then begin
            let spec = Doall.Spec.make ~n ~t in
            let t0 = Unix.gettimeofday () in
            let before = Gc.minor_words () in
            let r = run spec proto in
            let words = Gc.minor_words () -. before in
            let wall = Unix.gettimeofday () -. t0 in
            let rounds = max 1 (m_rounds r) in
            let wpr = words /. float_of_int rounds in
            let ok = Doall.Runner.correct r in
            Table.add_row table
              [
                name; Table.fmt_int n; string_of_int t;
                Table.fmt_int (m_rounds r); Table.fmt_int (m_work r);
                Table.fmt_int (m_msgs r);
                Printf.sprintf "%.1f" (wall *. 1000.);
                Table.fmt_int (int_of_float words);
                Printf.sprintf "%.1f" wpr;
                (if ok then "ok" else "FAIL");
              ];
            rows :=
              { sc_proto = name; sc_n = n; sc_wall_s = wall;
                sc_words_per_round = wpr; sc_ok = ok }
              :: !rows
          end)
        scales;
      Table.add_rule table)
    [
      ("A", Doall.Protocol_a.protocol);
      ("B", Doall.Protocol_b.protocol);
      ("D", Doall.Protocol_d.protocol);
    ];
  print_string "\n== E25 ==\n";
  publish "E25" table;
  List.rev !rows

let all () =
  reset ();
  e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 (); e10 ();
  e11 (); e12 (); e13 (); e14 (); e15 (); e16 (); e17 (); e18 (); e19 ();
  e20 (); e21 (); e22 (); e23 (); e24 ();
  ignore (e25 ())

(* The @ci bench smoke: the multicore table at tiny sizes — enough to
   exercise Pool + run_parallel and validate the dhw-bench/v2 schema
   end-to-end in a few seconds. *)
let smoke () =
  reset ();
  e19 ~executions:30 ~jobs_list:[ 1; 2 ] ()

(* The full sweep, alone — `bench scale`. *)
let scale () =
  reset ();
  ignore (e25 ())

(* The @scale-smoke CI leg: the sweep truncated to n <= 10^6, with hard
   budgets asserted on the protocol-A n=10^6 run — wall-clock and
   minor-words-per-round ceilings that fail the build (exit 1) when the
   kernel hot path regresses into per-round allocation or superlinear
   scheduling. Returns the violations; [] = within budget. *)
let scale_smoke ?(wall_budget_s = 60.) ?(words_per_round_ceiling = 256.) () =
  reset ();
  let rows = e25 ~scales:[ 100_000; 1_000_000 ] () in
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun sc ->
      if not sc.sc_ok then add "%s n=%d: run incorrect" sc.sc_proto sc.sc_n)
    rows;
  (match
     List.find_opt (fun sc -> sc.sc_proto = "A" && sc.sc_n = 1_000_000) rows
   with
  | None -> add "A n=1000000 leg missing from the sweep"
  | Some sc ->
      if sc.sc_wall_s > wall_budget_s then
        add "A n=1000000 took %.1fs > %.0fs wall budget" sc.sc_wall_s
          wall_budget_s;
      if sc.sc_words_per_round > words_per_round_ceiling then
        add "A n=1000000 allocates %.1f minor words/round > ceiling %.0f"
          sc.sc_words_per_round words_per_round_ceiling);
  List.rev !violations
