(* Bechamel wall-clock timings: one Test.make per experiment's representative
   workload, so the simulator's own throughput is tracked alongside the
   logical cost tables. *)

open Bechamel
open Toolkit

let run_protocol ?fault spec proto () =
  ignore (Doall.Runner.run ?fault spec proto)

let tests =
  let a_spec = Doall.Spec.make ~n:400 ~t:25 in
  let b_storm () =
    Simkit.Fault.crash_active_after_work ~units_between_crashes:1 ~max_crashes:24
  in
  let c_spec = Doall.Spec.make ~n:24 ~t:16 in
  let d_spec = Doall.Spec.make ~n:1024 ~t:32 in
  [
    Test.make ~name:"E1: A n=400 t=25 storm"
      (Staged.stage (fun () ->
           run_protocol ~fault:(b_storm ()) a_spec Doall.Protocol_a.protocol ()));
    Test.make ~name:"E2: B n=400 t=25 storm"
      (Staged.stage (fun () ->
           run_protocol ~fault:(b_storm ()) a_spec Doall.Protocol_b.protocol ()));
    Test.make ~name:"E3: C n=24 t=16 (exp deadlines)"
      (Staged.stage (run_protocol c_spec Doall.Protocol_c.protocol));
    Test.make ~name:"E4: C-chunked n=24 t=16"
      (Staged.stage (run_protocol c_spec Doall.Protocol_c.protocol_chunked));
    Test.make ~name:"E5: D n=1024 t=32 ff"
      (Staged.stage (run_protocol d_spec Doall.Protocol_d.protocol));
    Test.make ~name:"E6: BA via A n=128 t=24"
      (Staged.stage (fun () ->
           ignore
             (Agreement.Crash_ba.run ~n:128 ~t_bound:24 ~value:1
                Agreement.Crash_ba.A)));
    Test.make ~name:"E7: trivial n=400 t=25"
      (Staged.stage (run_protocol a_spec Doall.Baseline_trivial.protocol));
    Test.make ~name:"E8: naive-C n=20 t=16 cascade"
      (Staged.stage (fun () ->
           run_protocol
             ~fault:
               (Simkit.Fault.crash_silently_at
                  (List.init 15 (fun i -> (i, 500 * i))))
             (Doall.Spec.make ~n:20 ~t:16)
             Doall.Protocol_c_naive.protocol ()));
    Test.make ~name:"E9: async A n=160 t=16"
      (Staged.stage (fun () ->
           ignore (Asim.Async_protocol_a.run (Doall.Spec.make ~n:160 ~t:16))));
    Test.make ~name:"E10: checkpoint/10 n=240 t=16"
      (Staged.stage
         (run_protocol (Doall.Spec.make ~n:240 ~t:16)
            (Doall.Baseline_checkpoint.protocol ~period:10)));
  ]

type timing = {
  benchmark : string;
  ns_per_run : float;
  r_square : float option;
}

let measure () =
  let grouped = Test.make_grouped ~name:"dhw" tests in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.map
    (fun (name, ols_result) ->
      let ns_per_run =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      { benchmark = name; ns_per_run; r_square = Analyze.OLS.r_square ols_result })
    (List.sort compare rows)

let print timings =
  let table =
    Dhw_util.Table.create ~title:"Bechamel wall-clock per full run (monotonic clock)"
      [ ("benchmark", Dhw_util.Table.Left); ("time/run", Right); ("r^2", Right) ]
  in
  List.iter
    (fun { benchmark; ns_per_run; r_square } ->
      let pretty =
        if ns_per_run > 1e9 then Printf.sprintf "%.2f s" (ns_per_run /. 1e9)
        else if ns_per_run > 1e6 then Printf.sprintf "%.2f ms" (ns_per_run /. 1e6)
        else if ns_per_run > 1e3 then Printf.sprintf "%.2f us" (ns_per_run /. 1e3)
        else Printf.sprintf "%.0f ns" ns_per_run
      in
      let r2 =
        match r_square with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Dhw_util.Table.add_row table [ benchmark; pretty; r2 ])
    timings;
  print_string "\n== Wall-clock timings ==\n";
  Dhw_util.Table.print table

let run () =
  let timings = measure () in
  print timings;
  timings
