(* Benchmark harness: regenerates every evaluation claim of the paper
   (experiments E1-E25, DESIGN.md section 3) and times representative runs
   with Bechamel.

     dune exec bench/main.exe                        # all tables + timings
     dune exec bench/main.exe -- tables              # logical-cost tables only
     dune exec bench/main.exe -- timing              # Bechamel only
     dune exec bench/main.exe -- smoke               # tiny E19 only (@ci)
     dune exec bench/main.exe -- --scale             # E25 scale sweep to n=10^7
     dune exec bench/main.exe -- scale-smoke         # E25 to n=10^6 + budgets (@ci)
     dune exec bench/main.exe -- gate REF NEW        # structural diff vs snapshot
     dune exec bench/main.exe -- --json BENCH_results.json
                                  # also write the dhw-bench/v2 document

   Schema note: dhw-bench/v2 = v1 plus the E25 scale table; documents are
   otherwise shape-identical, so v1 consumers only need the id bump. *)

module J = Dhw_util.Jsonw

let timing_json (t : Bench_timing.timing) =
  J.Obj
    [
      ("benchmark", J.Str t.Bench_timing.benchmark);
      ("ns_per_run", J.Float t.Bench_timing.ns_per_run);
      ( "r_square",
        match t.Bench_timing.r_square with Some r -> J.Float r | None -> J.Null );
    ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "gate" :: ref_path :: new_path :: [] ->
      exit (Bench_gate.run ~ref_path ~new_path)
  | _ :: args ->
      let rec parse what json = function
        | [] -> (what, json)
        | [ "--json" ] -> (what, Some "BENCH_results.json")
        | "--json" :: path :: rest -> parse what (Some path) rest
        | "--scale" :: rest -> parse "scale" json rest
        | "--scale-smoke" :: rest -> parse "scale-smoke" json rest
        | w :: rest -> parse w json rest
      in
      let what, json = parse "all" None args in
      let violations = ref [] in
      (match what with
      | "smoke" -> Bench_tables.smoke ()
      | "scale" -> Bench_tables.scale ()
      | "scale-smoke" -> violations := Bench_tables.scale_smoke ()
      | _ -> if what = "all" || what = "tables" then Bench_tables.all ());
      let timings =
        if what = "all" || what = "timing" then Bench_timing.run () else []
      in
      (match json with
      | None -> ()
      | Some path ->
          let doc =
            J.Obj
              [
                ("schema", J.Str "dhw-bench/v2");
                ( "tables",
                  J.Arr
                    (List.map
                       (fun (id, tbl) -> Dhw_util.Table.to_json ~id tbl)
                       (Bench_tables.tables ())) );
                ("timings", J.Arr (List.map timing_json timings));
              ]
          in
          let oc = open_out path in
          output_string oc (J.pretty doc);
          output_char oc '\n';
          close_out oc;
          Printf.printf "\nwritten: %s\n" path);
      print_newline ();
      if !violations <> [] then begin
        List.iter (fun v -> Printf.eprintf "scale budget: %s\n" v) !violations;
        exit 1
      end
  | [] -> ()
