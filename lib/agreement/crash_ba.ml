open Doall
module Intmath = Dhw_util.Intmath

type work_protocol = A | B | C | C_chunked

type outcome = {
  decisions : int array;
  correct : bool array;
  agreement : bool;
  validity : bool;
  messages : int;
  work_messages : int;
  rounds : int;
  sender_work : int;
}

let protocol_of = function
  | A -> Protocol_a.protocol
  | B -> Protocol_b.protocol
  | C -> Protocol_c.protocol
  | C_chunked -> Protocol_c.protocol_chunked

(* With Protocol C every message carries the sender's current value; with A
   and B only the unit-informs do (Section 5's correctness argument for A/B
   depends on checkpoints NOT carrying values). *)
let messages_carry_value = function A | B -> false | C | C_chunked -> true

let run ~n ~t_bound ~value ?(crash_at = []) ?general_cut proto =
  if t_bound < 0 || t_bound + 1 > n then invalid_arg "Crash_ba.run";
  let n_senders = t_bound + 1 in
  let crash_at =
    match general_cut with
    | Some _ when not (List.mem_assoc 0 crash_at) -> (0, 0) :: crash_at
    | _ -> crash_at
  in
  let crash_round pid =
    List.fold_left
      (fun acc (p, r) -> if p = pid then Some (min r (Option.value ~default:r acc)) else acc)
      None crash_at
  in
  (* Stage 1: the general (process 0) informs the senders. *)
  let informed_senders =
    match (general_cut, crash_round 0) with
    | Some k, _ -> min k n_senders
    | None, Some 0 -> 0 (* crashed before broadcasting anything *)
    | None, _ -> n_senders
  in
  (* Stage 2: the senders run the work protocol; unit i = inform process i. *)
  let spec = Spec.make ~n ~t:n_senders in
  let sender_crashes = List.filter (fun (p, _) -> p < n_senders) crash_at in
  let fault = Simkit.Fault.crash_silently_at sender_crashes in
  let trace = Simkit.Trace.create () in
  let report = Runner.run ~fault ~trace spec (protocol_of proto) in
  (* Replay the trace to track value adoption. All events of a round are
     applied deliveries-first (a process that receives and then acts within
     round r acts with the updated value). *)
  let values = Array.make n 0 in
  for s = 0 to informed_senders - 1 do
    values.(s) <- value
  done;
  let alive_at pid r = match crash_round pid with None -> true | Some c -> r < c in
  (* (delivery_round, recipient, send_round, sender) *)
  let informs =
    List.filter_map
      (fun ev ->
        match ev with
        | Simkit.Trace.Worked { pid; round; unit_id } ->
            Some (round + 1, unit_id, round, pid)
        | Simkit.Trace.Sent { src; dst; round; what }
          when messages_carry_value proto
               (* only Protocol C's *checkpointing* (ordinary) messages carry
                  the value — polls and replies do not; the trace printer
                  renders ordinaries as "ord(...)" *)
               && String.length what >= 3
               && String.sub what 0 3 = "ord" ->
            Some (round + 1, dst, round, src)
        | Simkit.Trace.Sent _ | Stepped _ | Dropped _ | Crashed_ev _
        | Restarted_ev _ | Terminated_ev _ ->
            None)
      (Simkit.Trace.events trace)
  in
  let informs =
    List.stable_sort (fun (d1, _, _, _) (d2, _, _, _) -> compare d1 d2) informs
  in
  (* The trace is chronological and deliveries happen one round after sends,
     so by processing deliveries in delivery-round order, each sender's value
     is read after all its adoptions from strictly earlier rounds — and a
     sender that was informed in its own send round already appears earlier
     in the sorted list (delivery round = send round). *)
  List.iter
    (fun (delivery, recipient, _send_round, sender) ->
      if recipient >= 0 && recipient < n && alive_at recipient delivery then
        values.(recipient) <- values.(sender))
    informs;
  let correct = Array.init n (fun pid -> crash_round pid = None) in
  let decisions =
    Array.init n (fun pid -> if correct.(pid) then values.(pid) else -1)
  in
  let decided = Array.to_list decisions |> List.filter (fun v -> v >= 0) in
  let agreement =
    match decided with [] -> true | v :: rest -> List.for_all (( = ) v) rest
  in
  let validity = (not correct.(0)) || List.for_all (( = ) value) decided in
  let work_messages = Simkit.Metrics.messages report.metrics in
  let sender_work = Simkit.Metrics.work report.metrics in
  {
    decisions;
    correct;
    agreement;
    validity;
    messages = informed_senders + work_messages + sender_work;
    work_messages;
    rounds = Simkit.Metrics.rounds report.metrics + 1;
    sender_work;
  }

let bracha_msgs ~n ~t = n + (t * Intmath.isqrt_up t)
let gmy_msgs ~n = 4 * n
