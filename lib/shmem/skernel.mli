(** Synchronous shared-memory (PRAM-style) substrate with crash faults — the
    model of Kanellakis–Shvartsman's Write-All problem, which Section 1.1
    contrasts with the paper's message-passing model.

    Per round a process may issue at most one shared-memory operation (one
    read or one write) and perform at most one unit of work. Reads observe
    the memory as of the end of the previous round; concurrent writes to the
    same cell are resolved by lowest pid (priority CRCW). Crashes are silent.

    Two cost measures are tracked:
    - {e effort} — work performed + reads + writes (the paper's measure,
      adapted: "effort now counts both reading and writing into shared
      memory, as well as doing work");
    - {e available processor steps} — the Kanellakis–Shvartsman measure:
      the sum over all rounds of the number of processes alive in that
      round, whether or not they did anything. *)

open Simkit.Types

type handle
(** Per-round capability to touch shared memory (at most one operation). *)

val read : handle -> int -> int
(** @raise Invalid_argument on out-of-range cell or second op this round. *)

val write : handle -> int -> int -> unit
(** Buffered until the end of the round. Same restrictions as {!read}. *)

type 's soutcome = {
  state : 's;
  work : int list;  (** at most one unit per round *)
  terminate : bool;
  wakeup : round option;  (** as in the message-passing kernel *)
}

type 's sproc = {
  s_init : pid -> 's * round option;
  s_step : pid -> round -> 's -> handle -> 's soutcome;
}

type run_outcome =
  | Completed  (** every process retired (crashed or terminated) *)
  | Stalled of round
      (** live processes remain but none has a pending wakeup or crash — an
          algorithm liveness bug, mirroring {!Simkit.Kernel.Stalled} *)
  | Round_limit of round  (** the [max_rounds] guard fired *)

type result = {
  metrics : Simkit.Metrics.t;  (** work and rounds; no messages in this model *)
  statuses : status array;
  aps : int;  (** available processor steps *)
  reads : int;
  writes : int;
  outcome : run_outcome;
}

val completed : result -> bool
(** [outcome = Completed]. *)

val run :
  ?crash_at:(pid * round) list ->
  ?max_rounds:round ->
  n_cells:int ->
  n_processes:int ->
  n_units:int ->
  's sproc ->
  result
(** Cells are zero-initialised. *)
