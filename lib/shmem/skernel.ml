open Simkit.Types

type mem = {
  cells : int array;
  mutable pending : (pid * int * int) list;  (* writer, cell, value *)
  mutable reads : int;
  mutable writes : int;
}

type handle = { mem : mem; pid : pid; mutable ops_left : int }

let read h cell =
  if h.ops_left <= 0 then invalid_arg "Skernel: one memory op per round";
  if cell < 0 || cell >= Array.length h.mem.cells then invalid_arg "Skernel.read";
  h.ops_left <- h.ops_left - 1;
  h.mem.reads <- h.mem.reads + 1;
  h.mem.cells.(cell)

let write h cell v =
  if h.ops_left <= 0 then invalid_arg "Skernel: one memory op per round";
  if cell < 0 || cell >= Array.length h.mem.cells then invalid_arg "Skernel.write";
  h.ops_left <- h.ops_left - 1;
  h.mem.writes <- h.mem.writes + 1;
  h.mem.pending <- (h.pid, cell, v) :: h.mem.pending

(* Priority CRCW: lowest pid wins on write conflicts; all writes land at the
   end of the round. *)
let commit_writes mem =
  let ordered =
    List.sort (fun (p1, _, _) (p2, _, _) -> compare p2 p1) mem.pending
  in
  List.iter (fun (_, cell, v) -> mem.cells.(cell) <- v) ordered;
  mem.pending <- []

type 's soutcome = {
  state : 's;
  work : int list;
  terminate : bool;
  wakeup : round option;
}

type 's sproc = {
  s_init : pid -> 's * round option;
  s_step : pid -> round -> 's -> handle -> 's soutcome;
}

type run_outcome = Completed | Stalled of round | Round_limit of round

type result = {
  metrics : Simkit.Metrics.t;
  statuses : status array;
  aps : int;
  reads : int;
  writes : int;
  outcome : run_outcome;
}

let completed r = r.outcome = Completed

let run ?(crash_at = []) ?(max_rounds = 10_000_000) ~n_cells ~n_processes ~n_units
    proc =
  let t = n_processes in
  let mem = { cells = Array.make n_cells 0; pending = []; reads = 0; writes = 0 } in
  let metrics = Simkit.Metrics.create ~n_processes:t ~n_units in
  let statuses = Array.make t Running in
  let wakeups = Array.make t None in
  let states =
    Array.init t (fun pid ->
        let s, w = proc.s_init pid in
        wakeups.(pid) <- w;
        s)
  in
  (* Earliest scheduled crash per pid, precomputed once (max_int = never) —
     the round loop must not rescan the schedule or allocate options. *)
  let crash_rounds = Array.make t max_int in
  List.iter
    (fun (p, r) ->
      if p >= 0 && p < t && r < crash_rounds.(p) then crash_rounds.(p) <- r)
    crash_at;
  let alive pid = statuses.(pid) = Running in
  let rec loop r =
    if r > max_rounds then Round_limit r
    else begin
      (* crashes scheduled at or before this round take effect first *)
      for pid = 0 to t - 1 do
        let c = crash_rounds.(pid) in
        if c <= r && statuses.(pid) = Running then begin
          statuses.(pid) <- Crashed c;
          Simkit.Metrics.record_crash metrics pid c
        end
      done;
      for pid = 0 to t - 1 do
        if alive pid then
          match wakeups.(pid) with
          | Some w when w <= r ->
              let h = { mem; pid; ops_left = 1 } in
              let o = proc.s_step pid r states.(pid) h in
              states.(pid) <- o.state;
              List.iter (fun u -> Simkit.Metrics.record_work metrics pid u) o.work;
              Simkit.Metrics.record_round metrics r;
              if o.terminate then begin
                statuses.(pid) <- Terminated r;
                Simkit.Metrics.record_terminate metrics pid r;
                wakeups.(pid) <- None
              end
              else begin
                (match o.wakeup with
                | Some w' when w' <= r ->
                    invalid_arg "Skernel: wakeup must be in the future"
                | _ -> ());
                wakeups.(pid) <- o.wakeup
              end
          | Some _ | None -> ()
      done;
      commit_writes mem;
      if Array.for_all is_retired statuses then Completed
      else begin
        (* next interesting round: min pending wakeup or crash *)
        let next = ref max_int in
        for pid = 0 to t - 1 do
          if alive pid then begin
            (match wakeups.(pid) with
            | Some w -> if max w (r + 1) < !next then next := max w (r + 1)
            | None -> ());
            let c = crash_rounds.(pid) in
            if c > r && c < !next then next := c
          end
        done;
        if !next = max_int then Stalled r else loop !next
      end
    end
  in
  let outcome = loop 0 in
  (* Available processor steps: each process is charged for every round from
     the start to its retirement (or to the end of the execution) — the
     Kanellakis-Shvartsman measure, which bills idle-but-alive processes. *)
  let final = Simkit.Metrics.rounds metrics in
  let aps =
    Array.fold_left
      (fun acc st ->
        acc
        +
        match st with
        | Terminated r | Crashed r -> r + 1
        | Running -> final + 1)
      0 statuses
  in
  { metrics; statuses; aps; reads = mem.reads; writes = mem.writes; outcome }
