(* Sorted disjoint half-open intervals, flattened into an int array:
   [|lo0; hi0; lo1; hi1; ...|] with lo_i < hi_i and hi_i < lo_{i+1}
   (strict: adjacent runs are coalesced). The canonical form makes
   structural equality coincide with set equality. *)

type t = int array

let empty : t = [||]
let is_empty s = Array.length s = 0

let invariant_ok s =
  let len = Array.length s in
  len mod 2 = 0
  &&
  let rec go i =
    if i >= len then true
    else if s.(i) >= s.(i + 1) then false
    else if i + 2 < len && s.(i + 1) >= s.(i + 2) then false
    else go (i + 2)
  in
  go 0

let of_range lo hi = if hi <= lo then empty else [| lo; hi |]
let singleton u = [| u; u + 1 |]

let intervals s = Array.length s / 2

let cardinal s =
  let c = ref 0 in
  let i = ref 0 in
  let len = Array.length s in
  while !i < len do
    c := !c + s.(!i + 1) - s.(!i);
    i := !i + 2
  done;
  !c

(* Index of the first run whose hi exceeds [u], i.e. the only run that can
   contain [u]; [intervals s] when none does. Binary search over runs. *)
let run_above s u =
  let lo = ref 0 and hi = ref (Array.length s / 2) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.((2 * mid) + 1) > u then hi := mid else lo := mid + 1
  done;
  !lo

let mem u s =
  let k = run_above s u in
  k < intervals s && s.(2 * k) <= u

let contains_range lo hi s =
  hi <= lo
  ||
  let k = run_above s lo in
  k < intervals s && s.(2 * k) <= lo && hi <= s.((2 * k) + 1)

let min_elt s = if is_empty s then raise Not_found else s.(0)
let max_elt s = if is_empty s then raise Not_found else s.(Array.length s - 1) - 1
let choose = min_elt

let equal (a : t) (b : t) = a = b

(* --- merge machinery ------------------------------------------------ *)

(* A growable run buffer; [push] coalesces with the previous run when the
   new one touches or overlaps it, keeping the result canonical. *)
type buf = { mutable arr : int array; mutable n : int }

let buf_make cap = { arr = Array.make (max 4 cap) 0; n = 0 }

let buf_push b lo hi =
  if hi > lo then
    if b.n > 0 && lo <= b.arr.(b.n - 1) then begin
      if hi > b.arr.(b.n - 1) then b.arr.(b.n - 1) <- hi
    end
    else begin
      if b.n + 2 > Array.length b.arr then begin
        let bigger = Array.make (2 * Array.length b.arr) 0 in
        Array.blit b.arr 0 bigger 0 b.n;
        b.arr <- bigger
      end;
      b.arr.(b.n) <- lo;
      b.arr.(b.n + 1) <- hi;
      b.n <- b.n + 2
    end

let buf_contents b = Array.sub b.arr 0 b.n

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let out = buf_make (Array.length a + Array.length b) in
    let i = ref 0 and j = ref 0 in
    let la = Array.length a and lb = Array.length b in
    while !i < la || !j < lb do
      if !j >= lb || (!i < la && a.(!i) <= b.(!j)) then begin
        buf_push out a.(!i) a.(!i + 1);
        i := !i + 2
      end
      else begin
        buf_push out b.(!j) b.(!j + 1);
        j := !j + 2
      end
    done;
    buf_contents out
  end

let inter a b =
  if is_empty a || is_empty b then empty
  else begin
    let out = buf_make (min (Array.length a) (Array.length b)) in
    let i = ref 0 and j = ref 0 in
    let la = Array.length a and lb = Array.length b in
    while !i < la && !j < lb do
      let lo = max a.(!i) b.(!j) and hi = min a.(!i + 1) b.(!j + 1) in
      buf_push out lo hi;
      (* advance whichever run ends first *)
      if a.(!i + 1) <= b.(!j + 1) then i := !i + 2 else j := !j + 2
    done;
    buf_contents out
  end

let diff a b =
  if is_empty a || is_empty b then a
  else begin
    let out = buf_make (Array.length a + Array.length b) in
    let j = ref 0 in
    let lb = Array.length b in
    let i = ref 0 in
    let la = Array.length a in
    while !i < la do
      let lo = ref a.(!i) and hi = a.(!i + 1) in
      (* subtract every b-run overlapping [lo, hi) *)
      while !j < lb && b.(!j + 1) <= !lo do
        j := !j + 2
      done;
      let k = ref !j in
      while !lo < hi && !k < lb && b.(!k) < hi do
        if b.(!k) > !lo then buf_push out !lo b.(!k);
        if b.(!k + 1) > !lo then lo := b.(!k + 1);
        if b.(!k + 1) <= hi then k := !k + 2 else k := lb (* this b-run outlives a's run *)
      done;
      if !lo < hi then buf_push out !lo hi;
      i := !i + 2
    done;
    buf_contents out
  end

let add u s = union (singleton u) s
let add_range lo hi s = union (of_range lo hi) s
let remove u s = diff s (singleton u)

let subset a b = is_empty (diff a b)

let nth s k =
  if k < 0 then invalid_arg "Unitset.nth";
  let rec go i k =
    if i >= Array.length s then invalid_arg "Unitset.nth"
    else
      let w = s.(i + 1) - s.(i) in
      if k < w then s.(i) + k else go (i + 2) (k - w)
  in
  go 0 k

let slice s ~lo ~hi =
  let total = cardinal s in
  let lo = max 0 lo and hi = min total hi in
  if hi <= lo then empty
  else begin
    let out = buf_make 8 in
    (* rank of the first element of the current run *)
    let rank = ref 0 in
    let i = ref 0 in
    while !i < Array.length s && !rank < hi do
      let a = s.(!i) and b = s.(!i + 1) in
      let w = b - a in
      let from = max lo !rank and upto = min hi (!rank + w) in
      if from < upto then buf_push out (a + (from - !rank)) (a + (upto - !rank));
      rank := !rank + w;
      i := !i + 2
    done;
    buf_contents out
  end

let iter_ranges f s =
  let i = ref 0 in
  while !i < Array.length s do
    f s.(!i) s.(!i + 1);
    i := !i + 2
  done

let iter f s =
  iter_ranges
    (fun lo hi ->
      for u = lo to hi - 1 do
        f u
      done)
    s

let fold f s acc =
  let acc = ref acc in
  iter (fun u -> acc := f u !acc) s;
  !acc

let elements s = List.rev (fold (fun u acc -> u :: acc) s [])

let to_array s =
  let out = Array.make (cardinal s) 0 in
  let k = ref 0 in
  iter
    (fun u ->
      out.(!k) <- u;
      incr k)
    s;
  out

let of_list us =
  let sorted = List.sort_uniq compare us in
  let out = buf_make 8 in
  List.iter (fun u -> buf_push out u (u + 1)) sorted;
  buf_contents out

let pp ppf s =
  let first = ref true in
  iter_ranges
    (fun lo hi ->
      if not !first then Format.pp_print_space ppf ();
      first := false;
      if hi = lo + 1 then Format.fprintf ppf "[%d]" lo
      else Format.fprintf ppf "[%d..%d]" lo (hi - 1))
    s;
  if !first then Format.pp_print_string ppf "[]"
