type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every float but prints 0.1 as 0.10000000000000001;
   prefer the shortest representation that parses back exactly. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write ~indent ~level buf j =
  let nl_pad lv =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * lv) ' ')
  in
  let sep () = Buffer.add_char buf ':' ; if indent <> None then Buffer.add_char buf ' ' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl_pad (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl_pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl_pad (level + 1);
          escape_to buf k;
          sep ();
          write ~indent ~level:(level + 1) buf v)
        fields;
      nl_pad level;
      Buffer.add_char buf '}'

let to_buffer ?indent buf j = write ~indent ~level:0 buf j

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let pretty ?(indent = 2) j =
  let buf = Buffer.create 1024 in
  to_buffer ~indent buf j;
  Buffer.contents buf

let to_channel ?indent oc j =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf j;
  Buffer.output_buffer oc buf

(* --- parsing -------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let u =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            add_utf8 buf u
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception _ -> Error "malformed JSON"

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
