type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every float but prints 0.1 as 0.10000000000000001;
   prefer the shortest representation that parses back exactly. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write ~indent ~level buf j =
  let nl_pad lv =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * lv) ' ')
  in
  let sep () = Buffer.add_char buf ':' ; if indent <> None then Buffer.add_char buf ' ' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl_pad (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl_pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl_pad (level + 1);
          escape_to buf k;
          sep ();
          write ~indent ~level:(level + 1) buf v)
        fields;
      nl_pad level;
      Buffer.add_char buf '}'

let to_buffer ?indent buf j = write ~indent ~level:0 buf j

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let pretty ?(indent = 2) j =
  let buf = Buffer.create 1024 in
  to_buffer ~indent buf j;
  Buffer.contents buf

let to_channel ?indent oc j =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf j;
  Buffer.output_buffer oc buf
