(* Log-bucketed histogram: 32 exact unit buckets for v < 32, then 32
   sub-buckets per power of two. With sub_bits = 5 the bucket index for
   2^e <= v < 2^(e+1) (e >= 5) is

     32 + (e - 5) * 32 + ((v lsr (e - 5)) - 32)

   covering the full non-negative int range in 32 + 57*32 slots. *)

let sub_bits = 5
let sub = 1 lsl sub_bits (* 32 *)
let n_buckets = sub + ((62 - sub_bits) * sub)

type t = {
  buckets : int array;
  mutable count : int;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; total = 0; vmin = 0; vmax = 0 }

(* Index of the highest set bit; v >= sub here. *)
let msb v =
  let rec go v e = if v <= 1 then e else go (v lsr 1) (e + 1) in
  go v 0

let index v =
  if v < sub then v
  else
    let e = msb v in
    sub + (((e - sub_bits) * sub) + ((v lsr (e - sub_bits)) - sub))

(* Exclusive upper bound of bucket [i]: the largest value mapping to [i]. *)
let bucket_top i =
  if i < sub then i
  else
    let e = sub_bits + ((i - sub) / sub) in
    let s = (i - sub) mod sub in
    (((s + sub + 1) lsl (e - sub_bits)) - 1)

let record_n t v k =
  if k > 0 then begin
    let v = if v < 0 then 0 else v in
    t.buckets.(index v) <- t.buckets.(index v) + k;
    if t.count = 0 then begin
      t.vmin <- v;
      t.vmax <- v
    end
    else begin
      if v < t.vmin then t.vmin <- v;
      if v > t.vmax then t.vmax <- v
    end;
    t.count <- t.count + k;
    t.total <- t.total + (v * k)
  end

let record t v = record_n t v 1
let count t = t.count
let total t = t.total
let min_value t = if t.count = 0 then 0 else t.vmin
let max_value t = if t.count = 0 then 0 else t.vmax
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let quantile t q =
  if t.count = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let acc = ref 0 and i = ref 0 and res = ref t.vmax in
    (try
       while !i < n_buckets do
         acc := !acc + t.buckets.(!i);
         if !acc >= rank then begin
           res := bucket_top !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    let v = !res in
    if v < t.vmin then t.vmin else if v > t.vmax then t.vmax else v
  end

let merge a b =
  let m = create () in
  for i = 0 to n_buckets - 1 do
    m.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  m.count <- a.count + b.count;
  m.total <- a.total + b.total;
  (if a.count = 0 then begin
     m.vmin <- b.vmin;
     m.vmax <- b.vmax
   end
   else if b.count = 0 then begin
     m.vmin <- a.vmin;
     m.vmax <- a.vmax
   end
   else begin
     m.vmin <- min a.vmin b.vmin;
     m.vmax <- max a.vmax b.vmax
   end);
  m

let clear t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.total <- 0;
  t.vmin <- 0;
  t.vmax <- 0

let to_json t =
  Jsonw.Obj
    [
      ("count", Jsonw.Int t.count);
      ("min", Jsonw.Int (min_value t));
      ("max", Jsonw.Int (max_value t));
      ("mean", Jsonw.Float (mean t));
      ("p50", Jsonw.Int (quantile t 0.5));
      ("p90", Jsonw.Int (quantile t 0.9));
      ("p99", Jsonw.Int (quantile t 0.99));
      ("p999", Jsonw.Int (quantile t 0.999));
    ]
