let last = Atomic.make 0.0

let now_us () =
  let t = Unix.gettimeofday () *. 1e6 in
  let rec clamp () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()
