(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in this repository flows through this module so
    that executions are exactly reproducible from a 64-bit seed.  The
    generator is the splitmix64 mixer of Steele, Lea and Flood, which has a
    full 2^64 period and passes BigCrush; it is more than adequate for fault
    schedules and property-test case generation. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds give independent
    streams. *)

val copy : t -> t
(** [copy g] is a generator that will produce the same future stream as [g]
    without affecting [g]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. @raise
    Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on empty. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement g k bound] is a sorted list of [k] distinct
    integers drawn uniformly from [\[0, bound)]. @raise Invalid_argument if
    [k < 0] or [k > bound]. *)

val split : t -> t
(** [split g] derives an independent generator and advances [g]. *)

val stream : int64 -> int -> t
(** [stream seed i] is the [i]-th independent stream of master [seed],
    derived by hashing the pair — no generator state is consumed, so
    parallel workers can materialize their streams in any order and still
    agree with a sequential run. @raise Invalid_argument if [i < 0]. *)
