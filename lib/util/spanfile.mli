(** The [dhw-trace/v1] span stream: the on-disk trace format shared by the
    simulator, the real-process nodes, and the orchestrator control plane.

    A trace file is JSONL: one header line

    {v {"schema":"dhw-trace/v1","source":"node","protocol":"a+rec","n":12,"t":3} v}

    followed by one compact span object per line. Files are written
    append-only and flushed per line, so a SIGKILLed node leaves at worst
    one truncated final line — {!read_file} skips lines that do not parse
    as spans, which makes every partial file a valid trace. Merging is
    concatenation plus a stable sort by (round, ts_us, pid): logical round
    first because wall clocks of different processes are only loosely
    comparable, timestamp within a round, control plane (pid -1) before the
    nodes it drives. *)

val schema : string
(** ["dhw-trace/v1"]. *)

type span = {
  name : string;  (** e.g. ["round"], ["step"], ["deliver"], ["ckpt"] *)
  src : string;  (** origin: ["sim"], ["asim"], ["node"], or ["ctl"] *)
  pid : int;  (** participant id; [-1] for the control plane *)
  inc : int;  (** incarnation (0 before any restart) *)
  round : int;  (** logical round / tick the span belongs to *)
  ts_us : float;  (** begin timestamp, µs (process wall clock) *)
  dur_us : float;  (** duration in µs; [0.] for instant marks *)
  args : (string * Jsonw.t) list;  (** extra context, e.g. units done *)
}

val span_to_json : span -> Jsonw.t
val span_of_json : Jsonw.t -> span option

val header_json : meta:(string * Jsonw.t) list -> source:string -> Jsonw.t
(** The header line value: [schema], [source], then [meta] fields in order. *)

val write_header :
  ?meta:(string * Jsonw.t) list -> source:string -> out_channel -> unit
(** Write the header line and flush. *)

val write_span : out_channel -> span -> unit
(** Write one compact span line and flush, so a kill loses at most the
    current line. *)

type file = { source : string option; spans : span list }

val read_file : string -> (file, string) result
(** Tolerant reader: [Error] only if the file cannot be opened. Lines that
    do not parse, or parse but are not spans (including a truncated final
    line from a killed writer), are skipped. A header line, if present,
    provides [source] and stamps spans that carry no [src] of their own. *)

val merge : span list list -> span list
(** Concatenate and stable-sort by (round, ts_us, pid). *)

val write_file :
  ?meta:(string * Jsonw.t) list -> source:string -> string -> span list -> unit
(** Write a complete merged trace file (header + spans, in given order). *)

val render : ?width:int -> Format.formatter -> span list -> unit
(** Per-pid ASCII timelines: one row per (pid, incarnation), columns
    bucketing wall-clock time, cell = initial of the dominant span name in
    that bucket; plus per-row span counts. [width] is the number of columns
    (default 64). *)

val to_chrome : span list -> Jsonw.t
(** Chrome trace-event (catapult) JSON for [chrome://tracing] / Perfetto:
    [{"traceEvents":[...]}] with ["ph":"X"] complete events, [ts]
    normalized so the earliest span starts at 0 (byte-deterministic for a
    fixed input trace), [pid] = participant ([-1] → control plane),
    [tid] = incarnation, and [round] carried in [args]. *)
