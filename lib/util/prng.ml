type t = { mutable state : int64 }

let create seed = { state = seed }

let copy g = { state = g.state }

(* splitmix64: state advances by the golden gamma; output is the mixed state. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_nonneg g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_usable = 0x3FFFFFFFFFFFFFFF - (0x3FFFFFFFFFFFFFFF mod bound) in
  let rec draw () =
    let v = next_nonneg g in
    if v >= max_usable then draw () else v mod bound
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bernoulli g p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let sample_without_replacement g k bound =
  if k < 0 || k > bound then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected inserts into a small set. *)
  let module S = Set.Make (Int) in
  let s = ref S.empty in
  for j = bound - k to bound - 1 do
    let v = int g (j + 1) in
    if S.mem v !s then s := S.add j !s else s := S.add v !s
  done;
  S.elements !s

let split g =
  let seed = next_int64 g in
  create (Int64.logxor seed 0xDEADBEEFCAFEF00DL)

(* Independent stream [i] of a master [seed], without consuming state from
   any shared generator: the pair (seed, i) is keyed by a second odd gamma
   and pushed through one splitmix step, so sibling streams land far apart
   in the state space even for adjacent indices. Used by parallel work
   pools, where per-task generators must not depend on which worker (or in
   what order) tasks are executed. *)
let stream seed i =
  if i < 0 then invalid_arg "Prng.stream: negative index";
  let keyed =
    Int64.logxor seed (Int64.mul (Int64.of_int (i + 1)) 0xD1342543DE82EF95L)
  in
  create (next_int64 (create keyed))
