(** A tiny dependency-free JSON writer.

    The observability layer (run reports, event streams, bench trajectories)
    serializes through this module only, so the repo's JSON output has one
    set of rules: object fields are emitted in the order given (no sorting,
    no hashing — byte-for-byte deterministic output for a fixed value),
    strings are escaped per RFC 8259, and non-finite floats become [null]
    (JSON has no representation for them).

    Since the tracing layer, there is also a minimal parser ({!parse}):
    the trace merger must read back the per-pid [trace-*.jsonl] files that
    nodes (possibly SIGKILLed mid-line) wrote through this writer. It
    accepts the RFC 8259 subset this module emits and is tolerant only in
    the sense of returning [Error] rather than raising. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
      (** fields are written in list order — keep construction deterministic
          and the serialized bytes are deterministic *)

val to_string : t -> string
(** Compact (single-line) rendering, suitable for JSONL streams. *)

val pretty : ?indent:int -> t -> string
(** Multi-line rendering with [indent] (default 2) spaces per level.
    Deterministic: the same value always renders to the same bytes. *)

val to_buffer : ?indent:int -> Buffer.t -> t -> unit
(** Append a rendering to [buf]; compact unless [indent] is given. *)

val to_channel : ?indent:int -> out_channel -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing garbage
    is an error). Numbers without [.], [e] or [E] become [Int]; others
    [Float]. [\uXXXX] escapes outside ASCII are decoded as UTF-8. Intended
    for reading back this module's own output — not a general validator. *)

val member : string -> t -> t option
(** [member k j] is field [k] of object [j], if present. [None] on
    non-objects. *)

val to_int : t -> int option
(** [Int] directly; integral [Float] (e.g. re-parsed large timestamps) is
    truncated. *)

val to_float : t -> float option
(** [Float] or [Int] as a float. *)

val to_str : t -> string option
