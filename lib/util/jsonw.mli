(** A tiny dependency-free JSON writer.

    The observability layer (run reports, event streams, bench trajectories)
    serializes through this module only, so the repo's JSON output has one
    set of rules: object fields are emitted in the order given (no sorting,
    no hashing — byte-for-byte deterministic output for a fixed value),
    strings are escaped per RFC 8259, and non-finite floats become [null]
    (JSON has no representation for them).

    There is deliberately no parser: the repo emits JSON for external
    consumers (dashboards, diffing bench trajectories, jq) and never needs
    to read it back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
      (** fields are written in list order — keep construction deterministic
          and the serialized bytes are deterministic *)

val to_string : t -> string
(** Compact (single-line) rendering, suitable for JSONL streams. *)

val pretty : ?indent:int -> t -> string
(** Multi-line rendering with [indent] (default 2) spaces per level.
    Deterministic: the same value always renders to the same bytes. *)

val to_buffer : ?indent:int -> Buffer.t -> t -> unit
(** Append a rendering to [buf]; compact unless [indent] is given. *)

val to_channel : ?indent:int -> out_channel -> t -> unit
