type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let all_cell_rows =
    headers :: List.filter_map (function Cells c -> Some c | Rule -> None) (List.rev t.rows)
  in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter measure all_cell_rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_string buf (if i = ncols - 1 then " |" else " | "))
      cells;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  emit_rule ();
  emit_cells headers;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> emit_rule ()) (List.rev t.rows);
  emit_rule ();
  Buffer.contents buf

let print t = print_string (render t)

let to_json ?id t =
  let rows =
    List.filter_map
      (function Cells c -> Some (Jsonw.Arr (List.map (fun s -> Jsonw.Str s) c)) | Rule -> None)
      (List.rev t.rows)
  in
  Jsonw.Obj
    ((match id with Some i -> [ ("id", Jsonw.Str i) ] | None -> [])
    @ [
        ("title", match t.title with Some s -> Jsonw.Str s | None -> Jsonw.Null);
        ("headers", Jsonw.Arr (List.map (fun (h, _) -> Jsonw.Str h) t.headers));
        ("rows", Jsonw.Arr rows);
      ])

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3 + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(digits = 2) f = Printf.sprintf "%.*f" digits f

let fmt_ratio f = Printf.sprintf "%.2fx" f
