(** Fixed-width ASCII table rendering for the bench harness.

    Every experiment in [bench/main.ml] prints a paper-shaped table; this
    module keeps the formatting in one place. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. @raise Invalid_argument if the arity differs from the
    header. *)

val add_rule : t -> unit
(** Append a horizontal rule (drawn between the surrounding rows). *)

val render : t -> string
(** Render with box-drawing rules and padded columns. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val to_json : ?id:string -> t -> Jsonw.t
(** The table as JSON: [{"id"?, "title", "headers", "rows"}] with rows as
    arrays of the cell strings (rules are dropped). Cell strings keep their
    display formatting (thousands separators, ratios); consumers that need
    raw numbers should read the dedicated report/timeline schemas instead. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. [12_345 -> "12,345"]. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point float with default 2 digits. *)

val fmt_ratio : float -> string
(** A ratio like "0.42x" (2 digits). *)
