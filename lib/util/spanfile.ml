module J = Jsonw

let schema = "dhw-trace/v1"

type span = {
  name : string;
  src : string;
  pid : int;
  inc : int;
  round : int;
  ts_us : float;
  dur_us : float;
  args : (string * J.t) list;
}

let span_to_json s =
  let base =
    [
      ("ev", J.Str "span");
      ("name", J.Str s.name);
      ("src", J.Str s.src);
      ("pid", J.Int s.pid);
      ("inc", J.Int s.inc);
      ("round", J.Int s.round);
      ("ts_us", J.Float s.ts_us);
      ("dur_us", J.Float s.dur_us);
    ]
  in
  J.Obj (if s.args = [] then base else base @ [ ("args", J.Obj s.args) ])

let span_of_json j =
  match J.member "ev" j with
  | Some (J.Str "span") ->
      let str k d = Option.value ~default:d (Option.bind (J.member k j) J.to_str) in
      let int k d = Option.value ~default:d (Option.bind (J.member k j) J.to_int) in
      let flt k d =
        Option.value ~default:d (Option.bind (J.member k j) J.to_float)
      in
      (match Option.bind (J.member "name" j) J.to_str with
      | None -> None
      | Some name ->
          Some
            {
              name;
              src = str "src" "";
              pid = int "pid" (-1);
              inc = int "inc" 0;
              round = int "round" 0;
              ts_us = flt "ts_us" 0.0;
              dur_us = flt "dur_us" 0.0;
              args =
                (match J.member "args" j with
                | Some (J.Obj fields) -> fields
                | _ -> []);
            })
  | _ -> None

let header_json ~meta ~source =
  J.Obj (("schema", J.Str schema) :: ("source", J.Str source) :: meta)

let write_header ?(meta = []) ~source oc =
  output_string oc (J.to_string (header_json ~meta ~source));
  output_char oc '\n';
  flush oc

let write_span oc s =
  output_string oc (J.to_string (span_to_json s));
  output_char oc '\n';
  flush oc

type file = { source : string option; spans : span list }

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let source = ref None in
      let spans = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match J.parse line with
             | Error _ -> () (* truncated final line from a killed writer *)
             | Ok j -> (
                 match J.member "schema" j with
                 | Some (J.Str s) when s = schema ->
                     if !source = None then
                       source := Option.bind (J.member "source" j) J.to_str
                 | _ -> (
                     match span_of_json j with
                     | Some sp ->
                         let sp =
                           if sp.src = "" then
                             { sp with src = Option.value ~default:"" !source }
                           else sp
                         in
                         spans := sp :: !spans
                     | None -> ()))
         done
       with End_of_file -> ());
      close_in ic;
      Ok { source = !source; spans = List.rev !spans }

let compare_span a b =
  let c = compare a.round b.round in
  if c <> 0 then c
  else
    let c = compare a.ts_us b.ts_us in
    if c <> 0 then c else compare a.pid b.pid

let merge streams = List.stable_sort compare_span (List.concat streams)

let write_file ?meta ~source path spans =
  let oc = open_out path in
  write_header ?meta ~source oc;
  List.iter (write_span oc) spans;
  close_out oc

(* --- ASCII rendering ------------------------------------------------ *)

let row_label pid inc =
  if pid < 0 then "ctl" else Printf.sprintf "p%d.%d" pid inc

let render ?(width = 64) ppf spans =
  match spans with
  | [] -> Format.fprintf ppf "dhw-trace/v1: empty trace@."
  | _ ->
      let t0 =
        List.fold_left (fun acc s -> min acc s.ts_us) Float.max_float spans
      in
      let t1 =
        List.fold_left
          (fun acc s -> max acc (s.ts_us +. s.dur_us))
          Float.min_float spans
      in
      let extent = if t1 > t0 then t1 -. t0 else 1.0 in
      let col ts =
        let c = int_of_float (float_of_int width *. (ts -. t0) /. extent) in
        if c < 0 then 0 else if c >= width then width - 1 else c
      in
      (* Rows keyed by (pid, inc), first-seen order; ctl (pid -1) first. *)
      let rows = ref [] in
      List.iter
        (fun s ->
          let key = (s.pid, s.inc) in
          if not (List.mem_assoc key !rows) then
            rows := (key, ref []) :: !rows)
        spans;
      let rows =
        List.sort (fun ((p, i), _) ((q, j), _) -> compare (p, i) (q, j))
          !rows
      in
      List.iter
        (fun s ->
          match List.assoc_opt (s.pid, s.inc) rows with
          | Some cell -> cell := s :: !cell
          | None -> ())
        spans;
      Format.fprintf ppf
        "dhw-trace/v1  spans=%d  window=%.1fms  (1 col ~ %.2fms)@."
        (List.length spans) (extent /. 1000.0)
        (extent /. float_of_int width /. 1000.0);
      let label_w =
        List.fold_left
          (fun acc ((p, i), _) -> max acc (String.length (row_label p i)))
          3 rows
      in
      List.iter
        (fun ((pid, inc), cell) ->
          let line = Bytes.make width '.' in
          let counts = Hashtbl.create 8 in
          List.iter
            (fun s ->
              Hashtbl.replace counts s.name
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.name));
              let c0 = col s.ts_us and c1 = col (s.ts_us +. s.dur_us) in
              let ch = if s.name = "" then '?' else s.name.[0] in
              for c = c0 to c1 do
                Bytes.set line c ch
              done)
            (List.rev !cell);
          let summary =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
            |> List.sort compare
            |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
            |> String.concat " "
          in
          Format.fprintf ppf "%-*s |%s| %s@." label_w (row_label pid inc)
            (Bytes.to_string line) summary)
        rows

(* --- Chrome trace-event export -------------------------------------- *)

let to_chrome spans =
  let t0 =
    List.fold_left (fun acc s -> min acc s.ts_us) Float.max_float spans
  in
  let t0 = if spans = [] then 0.0 else t0 in
  let ev s =
    J.Obj
      [
        ("name", J.Str s.name);
        ("cat", J.Str (if s.src = "" then "span" else s.src));
        ("ph", J.Str "X");
        ("pid", J.Int s.pid);
        ("tid", J.Int s.inc);
        ("ts", J.Float (s.ts_us -. t0));
        ("dur", J.Float s.dur_us);
        ("args", J.Obj (("round", J.Int s.round) :: s.args));
      ]
  in
  J.Obj
    [
      ("traceEvents", J.Arr (List.map ev spans));
      ("displayTimeUnit", J.Str "ms");
    ]
