(** Allocation-light log-bucketed histogram for non-negative integer samples
    (HDR-histogram style).

    Values below 32 land in exact unit-width buckets; above that, each power
    of two is split into 32 sub-buckets, so every bucket's width is at most
    1/32 (~3.1%) of its lower bound. Quantiles are computed by exact rank —
    walk the buckets until the cumulative count reaches [ceil (q * count)] —
    and reported as the bucket's upper bound clamped to the observed
    [min..max], so a reported quantile is always within one bucket of the
    exact order statistic. Recording is O(1) and allocation-free after
    {!create}; the backing store is a fixed int array (~1900 slots for the
    full 62-bit range). *)

type t

val create : unit -> t
(** A fresh empty histogram. *)

val record : t -> int -> unit
(** [record t v] adds one sample. Negative [v] is clamped to 0. *)

val record_n : t -> int -> int -> unit
(** [record_n t v k] adds [k] samples of value [v]. [k <= 0] is a no-op. *)

val count : t -> int
(** Number of recorded samples. *)

val total : t -> int
(** Sum of all recorded samples (exact, not bucketed). *)

val min_value : t -> int
(** Smallest recorded sample. 0 on an empty histogram. *)

val max_value : t -> int
(** Largest recorded sample. 0 on an empty histogram. *)

val mean : t -> float
(** Exact mean ([total/count]); 0.0 on an empty histogram. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0,1]: the upper bound of the bucket holding
    the sample of rank [max 1 (ceil (q * count))], clamped to the observed
    [min..max]. 0 on an empty histogram. *)

val merge : t -> t -> t
(** [merge a b] is a new histogram equivalent to recording all samples of
    [a] and [b]; by bucket-wise addition this is exactly the histogram of
    the concatenated sample streams. Inputs are not mutated. *)

val clear : t -> unit
(** Reset to empty, keeping the backing store. *)

val to_json : t -> Jsonw.t
(** Summary object: [count], [min], [max], [mean], [p50], [p90], [p99],
    [p999]. All integer fields except [mean]. *)
