(** Wall-clock timestamps for the tracing layer, in microseconds.

    [Unix.gettimeofday] can step backwards under NTP adjustment; spans whose
    end precedes their begin render as negative durations in Chrome's trace
    viewer, so {!now_us} clamps to the largest value it has returned —
    monotone non-decreasing within a process, at the cost of flat-lining
    through a backwards step. Timestamps from different processes on the
    same host are comparable only to wall-clock accuracy; the trace merger
    therefore orders by logical round first and timestamp second. *)

val now_us : unit -> float
(** Microseconds since the Unix epoch, monotone non-decreasing within this
    process. *)
