(** Sets of work-unit ids as sorted disjoint integer intervals.

    The Do-All state everything in this repository passes around — the
    outstanding pool [S], a process's "done" knowledge, a phase slice — is
    almost always a range minus a few worked stretches. Representing such a
    set as per-unit records or as [Set.Make(Int)] trees costs O(n) memory
    and O(n log n) time per set operation, which is what capped the benches
    at toy sizes. An interval set stores the same mathematical set in O(k)
    words where k is the number of maximal runs, and every bulk operation
    (union, intersection, difference, cardinality) is a linear merge over
    runs, independent of n.

    Values are immutable; all operations return fresh sets. Elements are
    arbitrary ints (negative ids are legal). The physical representation is
    canonical: two sets are [equal] iff they are structurally identical, so
    interval sets can be compared, hashed and serialized directly. *)

type t

val empty : t
val is_empty : t -> bool

val of_range : int -> int -> t
(** [of_range lo hi] is the half-open interval [lo, hi); empty if [hi <= lo]. *)

val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t

val add_range : int -> int -> t -> t
(** [add_range lo hi s] unions the half-open interval [lo, hi) into [s]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val cardinal : t -> int
(** Number of elements; O(intervals), not O(n). *)

val intervals : t -> int
(** Number of maximal runs — the representation size. *)

val equal : t -> t -> bool
val subset : t -> t -> bool

val min_elt : t -> int
(** Smallest element; raises [Not_found] on the empty set. *)

val max_elt : t -> int
val choose : t -> int
(** [choose] = [min_elt]: deterministic, for replayable protocols. *)

val contains_range : int -> int -> t -> bool
(** [contains_range lo hi s] — is every element of [lo, hi) in [s]?
    Vacuously true when [hi <= lo]. O(log k) by binary search. *)

val nth : t -> int -> int
(** [nth s k] is the [k]-th smallest element (0-based); raises
    [Invalid_argument] when [k] is out of bounds. O(intervals). *)

val slice : t -> lo:int -> hi:int -> t
(** [slice s ~lo ~hi] keeps the elements of rank [lo .. hi-1] (0-based, by
    increasing value) — the rank-range primitive behind per-process work
    slices. Ranks outside [0, cardinal s) are clamped. *)

val iter : (int -> unit) -> t -> unit
(** Per-element iteration in increasing order. *)

val iter_ranges : (int -> int -> unit) -> t -> unit
(** [iter_ranges f s] calls [f lo hi] once per maximal run [lo, hi),
    in increasing order — the O(k) traversal. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val to_array : t -> int array
val of_list : int list -> t
(** Builds from an arbitrary (unsorted, possibly duplicated) list. *)

val pp : Format.formatter -> t -> unit
(** Prints as "[0..9] [12] [14..20]" — run-length, for debugging. *)

val invariant_ok : t -> bool
(** Representation invariant: sorted, disjoint, non-adjacent, non-empty
    runs. Exposed for the property-test suite. *)
