(** Cost accounting for the three complexity measures of the paper: work
    (with multiplicity), messages, and time, plus per-process breakdowns. *)

open Types

type t

val create : n_processes:int -> n_units:int -> t

val n_processes : t -> int
val n_units : t -> int

(** {1 Recording (kernel-side)} *)

val record_send : t -> pid -> unit
val record_work : t -> pid -> int -> unit

(** Counts a crash. Does not advance {!rounds}: a silent crash is observed
    by the kernel at the victim's next scheduling point, possibly long after
    the failure, and must not inflate the running time. *)
val record_crash : t -> pid -> round -> unit
val record_terminate : t -> pid -> round -> unit

val record_restart : t -> pid -> round -> unit
(** Counts an adversary-scheduled revival of a crashed process. Does not by
    itself advance {!rounds}: the rejoiner is stepped in its restart round,
    which advances the high-water mark through the live-activity path. *)

val record_persist : t -> pid -> round -> unit
(** Counts a stable-storage write ({!Stable.write}) — the fourth cost
    measure of the crash–recovery model. *)

val record_corruption : t -> unit
(** Counts one adversary-corrupted payload: a Byzantine forgery or an
    in-flight mutation (kernel-side, when a tamper model is active). Does
    not advance {!rounds}. *)

val record_reject : t -> unit
(** Counts one message the validation layer refused (bad authenticator,
    wrong claimant, or an unattested view) — the hardening cost's visible
    half. Recorded by [Doall.Validate]-style harnesses, not the kernel. *)

val record_round : t -> round -> unit
(** Note that activity occurred at [round]; keeps the high-water mark. *)

(** {1 Reading} *)

val messages : t -> int
(** Total messages sent (a broadcast to [k] recipients counts [k]). *)

val work : t -> int
(** Total units performed, counting multiplicity. *)

val effort : t -> int
(** [work + messages], the paper's combined measure. *)

val rounds : t -> round
(** Highest round at which anything happened (sends, work, crash,
    termination) — the execution's running time. *)

val crashes : t -> int
val terminated : t -> int

val restarts : t -> int
(** Revivals committed by the kernel (≤ the schedule's restart entries:
    entries for pids that were not down at the scheduled round are dropped). *)

val persists : t -> int
(** Total stable-storage writes. *)

val corruptions : t -> int
(** Total adversary-corrupted payloads (forged + mutated). *)

val rejected : t -> int
(** Total messages refused by a validation layer. *)

val unit_multiplicity : t -> int -> int
(** How many times a given unit was performed. *)

val units_covered : t -> int
(** Number of distinct units performed at least once. *)

val all_units_done : t -> bool

val work_by : t -> pid -> int
val messages_by : t -> pid -> int
val persists_by : t -> pid -> int

val pp_summary : Format.formatter -> t -> unit
