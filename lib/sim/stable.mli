(** Per-process stable storage for the crash–recovery fault model.

    A crashed process loses its volatile state; when the adversary restarts
    it, the only information that survives is what the process explicitly
    wrote to its stable-storage cell. Writes are budgeted: each one is
    counted (globally and per process) so that persistence becomes a fourth
    cost measure next to work, messages and rounds — a recovery protocol
    that checkpoints on every step would show up immediately.

    The store is deliberately simple — one cell per process, last write
    wins — matching the paper's checkpoint discipline where a process's
    durable knowledge is exactly its latest checkpoint view. The kernel
    never touches the store; a recovery harness closes over it and wires
    writes to {!Metrics.record_persist} / {!Obs} via [on_write]. *)

open Types

type 'd t

val create :
  ?on_write:(pid -> round -> unit) ->
  ?spans:Obs.sink ->
  n_processes:int ->
  unit ->
  'd t
(** A store of [n_processes] empty cells. [on_write] is invoked after every
    committed {!write} — the hook point for metrics and event sinks.
    [spans], if given, receives an [Obs.Span_begin]/[Span_end] pair named
    ["persist"] around every write (incarnation 0 — the store has no
    incarnation knowledge), so stable-storage traffic shows up on traces. *)

val write : 'd t -> pid -> at:round -> 'd -> unit
(** Overwrite [pid]'s cell. Counted. Writes are modelled as atomic and
    synchronous: a write that happens in the victim's crash round is durable
    (write-ahead: within a round, persistence precedes sends in program
    order, mirroring the kernel's work-before-sends causality rule). *)

val read : 'd t -> pid -> 'd option
(** [pid]'s latest durable value, or [None] if it never wrote. Reads are
    free: recovery happens once per restart. *)

val writes : 'd t -> int
(** Total committed writes across all processes. *)

val writes_by : 'd t -> pid -> int

val last_write_at : 'd t -> pid -> round option
(** Round of [pid]'s most recent write, for debugging and reports. *)
