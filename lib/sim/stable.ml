open Types

type 'd t = {
  cells : 'd option array;
  wrote_at : round option array;
  per_writes : int array;
  mutable total : int;
  on_write : pid -> round -> unit;
  spans : Obs.sink option;
}

let create ?(on_write = fun _ _ -> ()) ?spans ~n_processes () =
  if n_processes <= 0 then invalid_arg "Stable.create: need at least one process";
  {
    cells = Array.make n_processes None;
    wrote_at = Array.make n_processes None;
    per_writes = Array.make n_processes 0;
    total = 0;
    on_write;
    spans;
  }

let check t pid =
  if pid < 0 || pid >= Array.length t.cells then invalid_arg "Stable: pid out of range"

let write t pid ~at v =
  check t pid;
  (match t.spans with
  | Some sink ->
      sink
        (Obs.Span_begin
           { name = "persist"; pid; at; inc = 0;
             ts_us = Dhw_util.Clock.now_us () })
  | None -> ());
  t.cells.(pid) <- Some v;
  t.wrote_at.(pid) <- Some at;
  t.per_writes.(pid) <- t.per_writes.(pid) + 1;
  t.total <- t.total + 1;
  t.on_write pid at;
  match t.spans with
  | Some sink ->
      sink
        (Obs.Span_end
           { name = "persist"; pid; at; inc = 0;
             ts_us = Dhw_util.Clock.now_us () })
  | None -> ()

let read t pid =
  check t pid;
  t.cells.(pid)

let writes t = t.total

let writes_by t pid =
  check t pid;
  t.per_writes.(pid)

let last_write_at t pid =
  check t pid;
  t.wrote_at.(pid)
