(* A Domain-based parallel work pool for the campaign and bench harnesses.

   The simulator models distributed work; this module makes the *harness*
   itself scale with cores. Tasks are independent, deterministic closures
   (one adversary schedule execution, one bench cell); the pool runs them
   on [jobs] worker domains and hands the results back in task order.

   Design:
   - the task queue is a bounded deque: the task array itself plus an
     atomic cursor. Workers pop the next index until the cursor passes the
     end. Tasks are coarse (whole protocol executions), so one-at-a-time
     stealing costs nothing and needs no chunking heuristics;
   - results land in a per-index cell array — distinct indices, so writes
     from different domains never race — and are reduced strictly in task
     order afterwards. Which worker ran a task can therefore never leak
     into the result: output is byte-identical at [~jobs:1] and [~jobs:8];
   - a task that raises is recorded, the remaining tasks still run, and the
     *lowest-index* exception is re-raised after the join — again
     independent of scheduling;
   - tasks needing randomness take a [Dhw_util.Prng.t] derived from
     (master seed, task index) via [Prng.stream], never from a generator
     shared across workers. *)

let default_jobs () = Domain.recommended_domain_count ()

type 'b cell =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let resolve_jobs jobs n =
  let j =
    match jobs with
    | None -> default_jobs ()
    | Some j when j >= 1 -> j
    | Some j -> invalid_arg (Printf.sprintf "Pool: jobs must be >= 1, got %d" j)
  in
  max 1 (min j n)

let map ?jobs f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else
    let jobs = resolve_jobs jobs n in
    let results = Array.make n Pending in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (results.(i) <-
            (try Done (f tasks.(i))
             with e -> Raised (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    (* [jobs = 1] runs the same loop in the calling domain with no spawns,
       so the run-every-task / lowest-index-exception contract holds for
       every worker count. *)
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.map
      (function
        | Done v -> v
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
      results

let map_list ?jobs f tasks = Array.to_list (map ?jobs f (Array.of_list tasks))

(* Per-task seeded randomness: task [i] always receives [Prng.stream seed i],
   so the stream a task sees is a function of the task alone. *)
let map_seeded ?jobs ~seed f tasks =
  map ?jobs
    (fun (i, task) -> f (Dhw_util.Prng.stream seed i) task)
    (Array.mapi (fun i task -> (i, task)) tasks)

(* Order-independent deterministic reduction: map in parallel, fold the
   results sequentially in task order. Any fold is safe here, associative
   or not, because the fold itself never runs concurrently. *)
let map_reduce ?jobs ~f ~fold ~init tasks =
  Array.fold_left fold init (map ?jobs f tasks)
