open Types
module Jsonw = Dhw_util.Jsonw

type event =
  | Step of { pid : pid; at : int }
  | Send of { src : pid; dst : pid; at : int; tag : string }
  | Drop of { src : pid; dst : pid; at : int; tag : string }
  | Work of { pid : pid; at : int; unit_id : int }
  | Crash of { pid : pid; at : int }
  | Restart of { pid : pid; at : int }
  | Persist of { pid : pid; at : int }
  | Tamper of { pid : pid; at : int }
  | Reject of { pid : pid; at : int }
  | Terminate of { pid : pid; at : int }
  | Span_begin of { name : string; pid : pid; at : int; inc : int; ts_us : float }
  | Span_end of { name : string; pid : pid; at : int; inc : int; ts_us : float }

let at = function
  | Step { at; _ } | Send { at; _ } | Drop { at; _ } | Work { at; _ }
  | Crash { at; _ } | Restart { at; _ } | Persist { at; _ }
  | Tamper { at; _ } | Reject { at; _ } | Terminate { at; _ }
  | Span_begin { at; _ } | Span_end { at; _ } ->
      at

type sink = event -> unit

let null _ = ()

let tee sinks e = List.iter (fun s -> s e) sinks

let memory () =
  let acc = ref [] in
  ((fun e -> acc := e :: !acc), fun () -> List.rev !acc)

let event_to_json e =
  let open Jsonw in
  let base ev t rest = ("ev", Str ev) :: ("at", Int t) :: rest in
  Obj
    (match e with
    | Step { pid; at } -> base "step" at [ ("pid", Int pid) ]
    | Send { src; dst; at; tag } ->
        base "send" at [ ("src", Int src); ("dst", Int dst); ("tag", Str tag) ]
    | Drop { src; dst; at; tag } ->
        base "drop" at [ ("src", Int src); ("dst", Int dst); ("tag", Str tag) ]
    | Work { pid; at; unit_id } ->
        base "work" at [ ("pid", Int pid); ("unit", Int unit_id) ]
    | Crash { pid; at } -> base "crash" at [ ("pid", Int pid) ]
    | Restart { pid; at } -> base "restart" at [ ("pid", Int pid) ]
    | Persist { pid; at } -> base "persist" at [ ("pid", Int pid) ]
    | Tamper { pid; at } -> base "tamper" at [ ("pid", Int pid) ]
    | Reject { pid; at } -> base "reject" at [ ("pid", Int pid) ]
    | Terminate { pid; at } -> base "terminate" at [ ("pid", Int pid) ]
    | Span_begin { name; pid; at; inc; ts_us } ->
        base "span_begin" at
          [ ("name", Str name); ("pid", Int pid); ("inc", Int inc);
            ("ts_us", Float ts_us) ]
    | Span_end { name; pid; at; inc; ts_us } ->
        base "span_end" at
          [ ("name", Str name); ("pid", Int pid); ("inc", Int inc);
            ("ts_us", Float ts_us) ])

let jsonl oc e =
  output_string oc (Jsonw.to_string (event_to_json e));
  output_char oc '\n'

let of_trace_event : Trace.event -> event = function
  | Trace.Stepped { pid; round } -> Step { pid; at = round }
  | Trace.Sent { src; dst; round; what } -> Send { src; dst; at = round; tag = what }
  | Trace.Dropped { src; dst; round; what } -> Drop { src; dst; at = round; tag = what }
  | Trace.Worked { pid; round; unit_id } -> Work { pid; at = round; unit_id }
  | Trace.Crashed_ev { pid; round } -> Crash { pid; at = round }
  | Trace.Restarted_ev { pid; round } -> Restart { pid; at = round }
  | Trace.Terminated_ev { pid; round } -> Terminate { pid; at = round }

let replay trace sink = List.iter (fun e -> sink (of_trace_event e)) (Trace.events trace)

(* ------------------------------------------------------------------ *)
(* Span collector: pair Span_begin/Span_end into completed Spanfile
   spans. Begins nest per (name, pid, inc) — a later begin with the same
   key shadows the earlier one until its end arrives (LIFO), which is the
   only shape the substrates emit. Unmatched begins (e.g. a crash inside
   a span) are discarded: a span without an end has no duration. *)

let span_collector ~src () =
  let open_spans : (string * int * int, (int * float) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let done_spans = ref [] in
  let sink = function
    | Span_begin { name; pid; at; inc; ts_us } ->
        let key = (name, pid, inc) in
        let stack =
          match Hashtbl.find_opt open_spans key with
          | Some s -> s
          | None ->
              let s = ref [] in
              Hashtbl.add open_spans key s;
              s
        in
        stack := (at, ts_us) :: !stack
    | Span_end { name; pid; at = _; inc; ts_us } -> (
        match Hashtbl.find_opt open_spans (name, pid, inc) with
        | Some ({ contents = (at0, ts0) :: rest } as stack) ->
            stack := rest;
            done_spans :=
              {
                Dhw_util.Spanfile.name;
                src;
                pid;
                inc;
                round = at0;
                ts_us = ts0;
                dur_us = ts_us -. ts0;
                args = [];
              }
              :: !done_spans
        | _ -> ())
    | _ -> ()
  in
  (sink, fun () -> List.rev !done_spans)

(* ------------------------------------------------------------------ *)
(* Timeline: fold the stream into per-round aggregates. *)

module Timeline = struct
  type cell = {
    mutable d_steps : int;
    mutable d_work : int;
    mutable d_msgs : int;
    mutable d_drops : int;
    mutable d_crashes : int;
    mutable d_restarts : int;
    mutable d_persists : int;
    mutable d_tampers : int;
    mutable d_rejects : int;
    mutable d_terminated : int;
  }

  type t = {
    np : int;
    nu : int;
    cells : (int, cell) Hashtbl.t;
    covered_at : int array;  (* first round each unit was performed; -1 = never *)
  }

  let create ~n_processes ~n_units =
    {
      np = n_processes;
      nu = n_units;
      cells = Hashtbl.create 64;
      covered_at = Array.make (max 1 n_units) (-1);
    }

  let cell t at =
    match Hashtbl.find_opt t.cells at with
    | Some c -> c
    | None ->
        let c =
          { d_steps = 0; d_work = 0; d_msgs = 0; d_drops = 0; d_crashes = 0;
            d_restarts = 0; d_persists = 0; d_tampers = 0; d_rejects = 0;
            d_terminated = 0 }
        in
        Hashtbl.add t.cells at c;
        c

  let observe t e =
    match e with
    | Span_begin _ | Span_end _ -> () (* timing, not accounting: no cell *)
    | _ ->
    let c = cell t (at e) in
    match e with
    | Span_begin _ | Span_end _ -> assert false
    | Step _ -> c.d_steps <- c.d_steps + 1
    | Send _ -> c.d_msgs <- c.d_msgs + 1
    | Drop _ -> c.d_drops <- c.d_drops + 1
    | Work { unit_id; at; _ } ->
        c.d_work <- c.d_work + 1;
        if unit_id >= 0 && unit_id < t.nu then
          if t.covered_at.(unit_id) < 0 || t.covered_at.(unit_id) > at then
            t.covered_at.(unit_id) <- at
    | Crash _ -> c.d_crashes <- c.d_crashes + 1
    | Restart _ -> c.d_restarts <- c.d_restarts + 1
    | Persist _ -> c.d_persists <- c.d_persists + 1
    | Tamper _ -> c.d_tampers <- c.d_tampers + 1
    | Reject _ -> c.d_rejects <- c.d_rejects + 1
    | Terminate _ -> c.d_terminated <- c.d_terminated + 1

  let sink t = observe t

  type row = {
    at : int;
    alive : int;
    work : int;
    msgs : int;
    effort : int;
    covered : int;
    crashes : int;
    restarts : int;
    persists : int;
    corruptions : int;
    rejected : int;
    terminated : int;
    d_work : int;
    d_msgs : int;
    d_crashes : int;
    d_restarts : int;
    d_persists : int;
    d_tampers : int;
    d_rejects : int;
    d_terminated : int;
  }

  let rows t =
    let ats =
      Hashtbl.fold (fun k _ acc -> k :: acc) t.cells [] |> List.sort compare
    in
    (* first-coverage rounds, ascending, for a single merge pass *)
    let firsts =
      Array.to_list t.covered_at
      |> List.filter (fun r -> r >= 0)
      |> List.sort compare
      |> ref
    in
    let covered = ref 0 in
    let work = ref 0 and msgs = ref 0 in
    let crashes = ref 0 and terminated = ref 0 in
    let restarts = ref 0 and persists = ref 0 in
    let corruptions = ref 0 and rejected = ref 0 in
    List.map
      (fun at ->
        let c = Hashtbl.find t.cells at in
        work := !work + c.d_work;
        msgs := !msgs + c.d_msgs;
        crashes := !crashes + c.d_crashes;
        restarts := !restarts + c.d_restarts;
        persists := !persists + c.d_persists;
        corruptions := !corruptions + c.d_tampers;
        rejected := !rejected + c.d_rejects;
        terminated := !terminated + c.d_terminated;
        let rec absorb () =
          match !firsts with
          | r :: rest when r <= at ->
              incr covered;
              firsts := rest;
              absorb ()
          | _ -> ()
        in
        absorb ();
        {
          at;
          alive = t.np - !crashes + !restarts - !terminated;
          work = !work;
          msgs = !msgs;
          effort = !work + !msgs;
          covered = !covered;
          crashes = !crashes;
          restarts = !restarts;
          persists = !persists;
          corruptions = !corruptions;
          rejected = !rejected;
          terminated = !terminated;
          d_work = c.d_work;
          d_msgs = c.d_msgs;
          d_crashes = c.d_crashes;
          d_restarts = c.d_restarts;
          d_persists = c.d_persists;
          d_tampers = c.d_tampers;
          d_rejects = c.d_rejects;
          d_terminated = c.d_terminated;
        })
      ats

  let final t =
    match rows t with [] -> None | l -> Some (List.nth l (List.length l - 1))

  let to_json t =
    let open Jsonw in
    let row r =
      Obj
        [
          ("at", Int r.at);
          ("alive", Int r.alive);
          ("work", Int r.work);
          ("messages", Int r.msgs);
          ("effort", Int r.effort);
          ("covered", Int r.covered);
          ("crashes", Int r.crashes);
          ("restarts", Int r.restarts);
          ("persists", Int r.persists);
          ("corruptions", Int r.corruptions);
          ("rejected", Int r.rejected);
          ("terminated", Int r.terminated);
        ]
    in
    Obj
      [
        ("schema", Str "dhw-timeline/v3");
        ("processes", Int t.np);
        ("units", Int t.nu);
        ("rows", Arr (List.map row (rows t)));
      ]

  (* ---- ASCII sparklines ---- *)

  let levels = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |]

  let spark ?max:cap values =
    let mx =
      match cap with Some m -> m | None -> List.fold_left max 0 values
    in
    let b = Buffer.create (List.length values) in
    List.iter
      (fun v ->
        if v <= 0 || mx <= 0 then Buffer.add_char b '.'
        else
          let idx = 1 + ((v - 1) * (Array.length levels - 1) / mx) in
          Buffer.add_char b levels.(min idx (Array.length levels - 1)))
      values;
    Buffer.contents b

  (* Bucket rows down to at most [width] columns: deltas are summed per
     bucket, cumulative fields take the bucket's last row. *)
  let bucketed width rows =
    let n = List.length rows in
    if n <= width then
      List.map
        (fun r -> (r, r.d_work, r.d_msgs, r.d_crashes, r.d_restarts, r.d_terminated))
        rows
    else
      let arr = Array.of_list rows in
      List.init width (fun b ->
          let lo = b * n / width and hi = ((b + 1) * n / width) - 1 in
          let hi = max lo hi in
          let dw = ref 0 and dm = ref 0 and dc = ref 0 and dr = ref 0 and dt = ref 0 in
          for i = lo to hi do
            dw := !dw + arr.(i).d_work;
            dm := !dm + arr.(i).d_msgs;
            dc := !dc + arr.(i).d_crashes;
            dr := !dr + arr.(i).d_restarts;
            dt := !dt + arr.(i).d_terminated
          done;
          (arr.(hi), !dw, !dm, !dc, !dr, !dt))

  let pp ?(width = 64) ppf t =
    match rows t with
    | [] -> Format.fprintf ppf "timeline: (no events)@."
    | rs ->
        let buckets = bucketed width rs in
        let first = List.hd rs and last = List.nth rs (List.length rs - 1) in
        let alive =
          spark ~max:t.np (List.map (fun (r, _, _, _, _, _) -> r.alive) buckets)
        in
        let workr = spark (List.map (fun (_, dw, _, _, _, _) -> dw) buckets) in
        let msgsr = spark (List.map (fun (_, _, dm, _, _, _) -> dm) buckets) in
        let cov =
          spark ~max:(max 1 t.nu)
            (List.map (fun (r, _, _, _, _, _) -> r.covered) buckets)
        in
        let marks =
          String.concat ""
            (List.map
               (fun (_, _, _, dc, dr, dt) ->
                 match (dc > 0, dr > 0, dt > 0) with
                 | true, _, true -> "!"
                 | true, _, false -> "x"
                 | false, true, _ -> "r"
                 | false, false, true -> "t"
                 | false, false, false -> ".")
               buckets)
        in
        Format.fprintf ppf
          "timeline: rounds %d..%d, %d active rounds, %d columns (work/msgs \
           scaled to column max)@."
          first.at last.at (List.length rs) (List.length buckets);
        Format.fprintf ppf "  alive   %s  [%d -> %d]@." alive t.np last.alive;
        Format.fprintf ppf "  work/r  %s@." workr;
        Format.fprintf ppf "  msgs/r  %s@." msgsr;
        Format.fprintf ppf "  covered %s  [%d/%d]@." cov last.covered t.nu;
        Format.fprintf ppf
          "  marks   %s  (x crash, r restart, t terminate, ! crash+term)@." marks;
        Format.fprintf ppf
          "  final   work=%d msgs=%d effort=%d covered=%d/%d crashes=%d \
           terminated=%d@."
          last.work last.msgs last.effort last.covered t.nu last.crashes
          last.terminated;
        if last.restarts > 0 || last.persists > 0 then
          Format.fprintf ppf "          restarts=%d persists=%d@." last.restarts
            last.persists;
        if last.corruptions > 0 || last.rejected > 0 then
          Format.fprintf ppf "          corruptions=%d rejected=%d@."
            last.corruptions last.rejected
end
