open Types
module Prng = Dhw_util.Prng

module Schedule = struct
  type mode =
    | Silent
    | Acting of { keep_work : bool; delivery : Fault.delivery }
    | Restart
    | Corrupt of Fault.tamper
    | Byzantine

  type entry = { victim : pid; at : round; mode : mode }

  type t = { meta : (string * string) list; entries : entry list }

  let make ?(meta = []) entries = { meta; entries }

  let meta t key = List.assoc_opt key t.meta

  let add_meta t bindings =
    let replaced =
      List.map
        (fun (k, v) ->
          match List.assoc_opt k bindings with Some v' -> (k, v') | None -> (k, v))
        t.meta
    in
    let fresh =
      List.filter (fun (k, _) -> not (List.mem_assoc k t.meta)) bindings
    in
    { t with meta = replaced @ fresh }

  (* Normalize a schedule into per-victim crash/restart cycles: entries are
     sorted by round (stable), then walked with an alternating state machine.
     A restart with no preceding crash is dropped (the adversary cannot
     restart what is up); a crash while already down is dropped (first crash
     of a cycle wins — the crash-only special case of which is the documented
     [Fault.crash_silently_at] earliest-round rule); a restart must be
     strictly after its cycle's crash round. Each cycle is a crash entry plus
     an optional restart round. *)
  let cycles_of t =
    let per : (pid, entry list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        match e.mode with
        | Corrupt _ | Byzantine ->
            () (* not crash/restart cycle members; [to_fault] reads them *)
        | _ ->
            let tail =
              Option.value ~default:[] (Hashtbl.find_opt per e.victim)
            in
            Hashtbl.replace per e.victim (e :: tail))
      t.entries;
    let out : (pid, (entry * round option) array) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun pid entries ->
        let sorted =
          List.stable_sort (fun a b -> compare a.at b.at) (List.rev entries)
        in
        let cycles = ref [] in
        let current = ref None in
        List.iter
          (fun e ->
            match (e.mode, !current) with
            | Restart, None -> () (* restart of an up process: dropped *)
            | Restart, Some (c : entry) ->
                if e.at > c.at then begin
                  cycles := (c, Some e.at) :: !cycles;
                  current := None
                end
                (* restart at or before the crash round: inapplicable, kept
                   pending in case a later restart round arrives *)
            | _, Some _ -> () (* crash while already down: first wins *)
            | _, None -> current := Some e)
          sorted;
        (match !current with Some c -> cycles := (c, None) :: !cycles | None -> ());
        Hashtbl.replace out pid (Array.of_list (List.rev !cycles)))
      per;
    out

  (* Normalization rules for the corruption/Byzantine algebra:
     - per victim, the earliest [Byzantine] entry wins; later ones are
       duplicates and dropped;
     - a Byzantine pid's entries at or after its subversion round are
       subsumed (crashing, restarting or corrupting an adversary-controlled
       process adds nothing — in particular Byzantine subsumes later crashes
       and a subverted pid is never restarted);
     - duplicate [Corrupt] entries (same victim, same round) keep the first.
     Crash/restart cycles are left to [cycles_of]'s own state machine.
     Idempotent; [to_fault] applies it, so un-normalized schedules and their
     normal forms build identical fault plans. *)
  let normalize t =
    let byz_at : (pid, round) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        match e.mode with
        | Byzantine -> (
            match Hashtbl.find_opt byz_at e.victim with
            | Some b when b <= e.at -> ()
            | _ -> Hashtbl.replace byz_at e.victim e.at)
        | _ -> ())
      t.entries;
    let seen_byz : (pid, unit) Hashtbl.t = Hashtbl.create 8 in
    let seen_corrupt : (pid * round, unit) Hashtbl.t = Hashtbl.create 8 in
    let keep e =
      match e.mode with
      | Byzantine ->
          (match Hashtbl.find_opt byz_at e.victim with
          | Some b when e.at > b -> false
          | _ ->
              if Hashtbl.mem seen_byz e.victim then false
              else begin
                Hashtbl.add seen_byz e.victim ();
                true
              end)
      | m -> (
          match Hashtbl.find_opt byz_at e.victim with
          | Some b when e.at >= b -> false
          | _ -> (
              match m with
              | Corrupt _ ->
                  if Hashtbl.mem seen_corrupt (e.victim, e.at) then false
                  else begin
                    Hashtbl.add seen_corrupt (e.victim, e.at) ();
                    true
                  end
              | _ -> true))
    in
    { t with entries = List.filter keep t.entries }

  (* The shrinker's cost objective: how much adversary power a schedule
     spends. Subverting a process outweighs tampering with one link-round,
     which outweighs an ordinary crash or restart. *)
  let cost t =
    List.fold_left
      (fun acc e ->
        acc
        + match e.mode with Byzantine -> 5 | Corrupt _ -> 2 | _ -> 1)
      0 t.entries

  let to_fault t =
    let t = normalize t in
    let cycles = cycles_of t in
    (* which cycle each pid is currently in; advanced by committed revivals *)
    let idx : (pid, int) Hashtbl.t = Hashtbl.create 8 in
    let current pid =
      match Hashtbl.find_opt cycles pid with
      | None -> None
      | Some arr ->
          let i = Option.value ~default:0 (Hashtbl.find_opt idx pid) in
          if i < Array.length arr then Some arr.(i) else None
    in
    let crashed_by pid round =
      match current pid with
      | Some ({ mode = Silent; at; _ }, _) -> round >= at
      | _ -> false
    in
    let on_step (v : Fault.step_view) =
      match current v.sv_pid with
      | Some ({ mode = Acting { keep_work; delivery }; at; _ }, _)
        when v.sv_round >= at ->
          Fault.Crash { keep_work; delivery }
      | _ -> Fault.Survive
    in
    let restarts =
      Hashtbl.fold
        (fun pid arr acc ->
          Array.fold_left
            (fun acc (_, rr) ->
              match rr with Some r -> (pid, r) :: acc | None -> acc)
            acc arr)
        cycles []
      |> List.sort compare
    in
    let on_restart pid _r =
      Hashtbl.replace idx pid
        (1 + Option.value ~default:0 (Hashtbl.find_opt idx pid))
    in
    (* Corruption entries, per victim in round order, each consumable once:
       an entry fires at the victim's first message-emitting round >= its
       scheduled round (the kernel only asks when there are sends to
       corrupt). *)
    let corrupt_tbl : (pid, (round * Fault.tamper * bool ref) list) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun e ->
        match e.mode with
        | Corrupt tam ->
            let tail =
              Option.value ~default:[] (Hashtbl.find_opt corrupt_tbl e.victim)
            in
            Hashtbl.replace corrupt_tbl e.victim
              ((e.at, tam, ref false) :: tail)
        | _ -> ())
      t.entries;
    Hashtbl.iter
      (fun pid l ->
        Hashtbl.replace corrupt_tbl pid
          (List.stable_sort (fun (a, _, _) (b, _, _) -> compare a b) (List.rev l)))
      (Hashtbl.copy corrupt_tbl);
    let corrupts pid r =
      match Hashtbl.find_opt corrupt_tbl pid with
      | None -> None
      | Some l ->
          let rec go = function
            | [] -> None
            | (at, tam, used) :: rest ->
                if !used then go rest
                else if at <= r then begin
                  used := true;
                  Some tam
                end
                else None (* ascending by round: nothing due yet *)
          in
          go l
    in
    let byz : (pid, round) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        match e.mode with
        | Byzantine -> Hashtbl.replace byz e.victim e.at
        | _ -> ())
      t.entries;
    let byzantine_from pid = Hashtbl.find_opt byz pid in
    Fault.custom ~restarts ~on_restart ~corrupts ~byzantine_from ~crashed_by
      ~on_step ()

  let restart_count t =
    List.length (List.filter (fun e -> e.mode = Restart) t.entries)

  let delivery_to_string = function
    | Fault.All -> "all"
    | Fault.Prefix k -> "prefix " ^ string_of_int k
    | Fault.Indices l ->
        "indices " ^ String.concat "," (List.map string_of_int l)

  let mode_to_string = function
    | Silent -> "silent"
    | Acting { keep_work; delivery } ->
        Printf.sprintf "acting %s %s"
          (if keep_work then "keep" else "drop")
          (delivery_to_string delivery)
    | Restart -> "restart"
    | Corrupt tam ->
        Printf.sprintf "corrupt %s salt %d"
          (Fault.tamper_kind_to_string tam.t_kind)
          tam.t_salt
    | Byzantine -> "byz"

  let entry_to_string e =
    match e.mode with
    | Restart -> Printf.sprintf "restart %d @%d" e.victim e.at
    | Corrupt tam ->
        Printf.sprintf "corrupt %d @%d %s salt %d" e.victim e.at
          (Fault.tamper_kind_to_string tam.t_kind)
          tam.t_salt
    | Byzantine -> Printf.sprintf "byz %d @%d" e.victim e.at
    | m -> Printf.sprintf "crash %d @%d %s" e.victim e.at (mode_to_string m)

  let print t =
    let b = Buffer.create 256 in
    Buffer.add_string b "schedule v1\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "meta %s %s\n" k v))
      t.meta;
    List.iter
      (fun e -> Buffer.add_string b (entry_to_string e ^ "\n"))
      t.entries;
    Buffer.add_string b "end\n";
    Buffer.contents b

  let parse text =
    let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    let int_tok lineno what s k =
      match int_of_string_opt s with
      | Some i -> k i
      | None -> err lineno (Printf.sprintf "expected %s, got %S" what s)
    in
    let parse_delivery lineno toks k =
      match toks with
      | [ "all" ] -> k Fault.All
      | [ "prefix"; n ] -> int_tok lineno "prefix length" n (fun i -> k (Fault.Prefix i))
      | [ "indices" ] -> k (Fault.Indices [])
      | [ "indices"; csv ] ->
          let parts = String.split_on_char ',' csv in
          let rec go acc = function
            | [] -> k (Fault.Indices (List.rev acc))
            | p :: rest ->
                int_tok lineno "index" p (fun i -> go (i :: acc) rest)
          in
          go [] parts
      | _ -> err lineno "expected all | prefix <k> | indices <i,..>"
    in
    let parse_mode lineno toks k =
      match toks with
      | [ "silent" ] -> k Silent
      | "acting" :: kw :: rest ->
          let keep =
            match kw with
            | "keep" -> Some true
            | "drop" -> Some false
            | _ -> None
          in
          (match keep with
          | None -> err lineno "expected keep or drop after acting"
          | Some keep_work ->
              parse_delivery lineno rest (fun delivery ->
                  k (Acting { keep_work; delivery })))
      | _ -> err lineno "expected silent or acting ..."
    in
    let lines = String.split_on_char '\n' text in
    let strip s =
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '\r' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      String.trim s
    in
    let rec body lineno meta entries = function
      | [] -> Error "missing final \"end\" line"
      | raw :: rest -> (
          let line = strip raw in
          if line = "" || line.[0] = '#' then body (lineno + 1) meta entries rest
          else if line = "end" then
            Ok { meta = List.rev meta; entries = List.rev entries }
          else
            let toks =
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            in
            match toks with
            | "meta" :: key :: rest_toks ->
                (* the value is everything after the key, single-spaced *)
                body (lineno + 1)
                  ((key, String.concat " " rest_toks) :: meta)
                  entries rest
            | "crash" :: pid :: at :: mode_toks
              when String.length at > 1 && at.[0] = '@' ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "round"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        parse_mode lineno mode_toks (fun mode ->
                            body (lineno + 1) meta
                              ({ victim; at; mode } :: entries)
                              rest)))
            | [ "restart"; pid; at ] when String.length at > 1 && at.[0] = '@' ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "round"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        body (lineno + 1) meta
                          ({ victim; at; mode = Restart } :: entries)
                          rest))
            | [ "corrupt"; pid; at; kind; "salt"; salt ]
              when String.length at > 1 && at.[0] = '@' -> (
                match Fault.tamper_kind_of_string kind with
                | None ->
                    err lineno
                      (Printf.sprintf
                         "expected lying-view | replay-stale | inflate-done, \
                          got %S"
                         kind)
                | Some t_kind ->
                    int_tok lineno "pid" pid (fun victim ->
                        int_tok lineno "round"
                          (String.sub at 1 (String.length at - 1))
                          (fun at ->
                            int_tok lineno "salt" salt (fun t_salt ->
                                body (lineno + 1) meta
                                  ({ victim;
                                     at;
                                     mode = Corrupt { Fault.t_kind; t_salt } }
                                  :: entries)
                                  rest))))
            | [ "byz"; pid; at ] when String.length at > 1 && at.[0] = '@' ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "round"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        body (lineno + 1) meta
                          ({ victim; at; mode = Byzantine } :: entries)
                          rest))
            | _ -> err lineno (Printf.sprintf "unrecognized line %S" line))
    in
    let rec header lineno = function
      | [] -> Error "empty schedule text"
      | raw :: rest ->
          let line = strip raw in
          if line = "" || line.[0] = '#' then header (lineno + 1) rest
          else if line = "schedule v1" then body (lineno + 1) [] [] rest
          else err lineno "expected header \"schedule v1\""
    in
    header 1 lines

  let pp ppf t =
    if t.entries = [] then Format.fprintf ppf "(fault-free)"
    else
      Format.fprintf ppf "%s"
        (String.concat "; "
           (List.map
              (fun e ->
                match e.mode with
                | Restart -> Printf.sprintf "%d@%d restart" e.victim e.at
                | m -> Printf.sprintf "%d@%d %s" e.victim e.at (mode_to_string m))
              t.entries))
end

(* ------------------------------------------------------------------ *)
(* Generation *)

let default_modes =
  [
    Schedule.Silent;
    Schedule.Acting { keep_work = true; delivery = Fault.All };
    Schedule.Acting { keep_work = false; delivery = Fault.Prefix 0 };
    Schedule.Acting { keep_work = false; delivery = Fault.Prefix 1 };
  ]

let exhaustive ~t ~window ?(round_step = 1) ~modes () =
  if t < 1 then invalid_arg "Campaign.exhaustive: t must be >= 1";
  if round_step < 1 then invalid_arg "Campaign.exhaustive: round_step >= 1";
  if modes = [] then invalid_arg "Campaign.exhaustive: no modes";
  if window < 0 then invalid_arg "Campaign.exhaustive: negative window";
  let rounds = List.init ((window / round_step) + 1) (fun i -> i * round_step) in
  (* all victim subsets of [0..t-1]; the full set is filtered out below *)
  let rec subsets pid : pid list Seq.t =
    if pid = t then Seq.return []
    else
      Seq.concat_map
        (fun tail -> List.to_seq [ tail; pid :: tail ])
        (subsets (pid + 1))
  in
  let rec assign : pid list -> Schedule.entry list Seq.t = function
    | [] -> Seq.return []
    | v :: rest ->
        Seq.concat_map
          (fun tail ->
            Seq.concat_map
              (fun at ->
                Seq.map
                  (fun mode -> { Schedule.victim = v; at; mode } :: tail)
                  (List.to_seq modes))
              (List.to_seq rounds))
          (assign rest)
  in
  subsets 0
  |> Seq.filter (fun vs -> List.length vs < t)
  |> Seq.concat_map (fun vs -> Seq.map (Schedule.make ?meta:None) (assign vs))

let sample g ~t ~window =
  if t < 1 then invalid_arg "Campaign.sample: t must be >= 1";
  let victims = Prng.int g t in
  let pids = Prng.sample_without_replacement g victims t in
  let entries =
    List.map
      (fun victim ->
        let at = Prng.int g (max 1 (window + 1)) in
        let mode =
          match Prng.int g 6 with
          | 0 -> Schedule.Silent
          | 1 ->
              Schedule.Acting { keep_work = Prng.bool g; delivery = Fault.All }
          | 2 | 3 ->
              Schedule.Acting
                { keep_work = Prng.bool g; delivery = Fault.Prefix (Prng.int g 4) }
          | _ ->
              let k = Prng.int g 4 in
              let idx = Prng.sample_without_replacement g k 8 in
              Schedule.Acting
                { keep_work = Prng.bool g; delivery = Fault.Indices idx }
        in
        { Schedule.victim; at; mode })
      pids
  in
  Schedule.make entries

let sample_recovery g ~t ~window ~restart_gap =
  if restart_gap < 1 then invalid_arg "Campaign.sample_recovery: restart_gap >= 1";
  let base = sample g ~t ~window in
  (* Give each victim a restart with probability 3/4; a restarted victim
     gets a whole second crash/restart cycle with probability 1/4 — storms,
     not just blips. *)
  let extra =
    List.concat_map
      (fun (e : Schedule.entry) ->
        match e.mode with
        | Schedule.Restart -> []
        | _ ->
            if Prng.int g 4 = 0 then []
            else begin
              let r1 = e.at + 1 + Prng.int g restart_gap in
              let restart1 = { e with Schedule.at = r1; mode = Schedule.Restart } in
              if Prng.int g 4 > 0 then [ restart1 ]
              else begin
                let c2 = r1 + Prng.int g (max 1 restart_gap) in
                let crash2 =
                  { e with
                    Schedule.at = c2;
                    mode =
                      (if Prng.bool g then Schedule.Silent
                       else
                         Schedule.Acting
                           { keep_work = Prng.bool g;
                             delivery = Fault.Prefix (Prng.int g 4) });
                  }
                in
                if Prng.int g 2 = 0 then [ restart1; crash2 ]
                else
                  [ restart1; crash2;
                    { e with
                      Schedule.at = c2 + 1 + Prng.int g restart_gap;
                      mode = Schedule.Restart } ]
              end
            end)
      base.Schedule.entries
  in
  Schedule.make (base.Schedule.entries @ extra)

(* Corruption/Byzantine sampler: exactly [byz] subverted pids (the storm's
   [b]), crashes only among the honest remainder (always leaving at least one
   honest survivor), plus a handful of link corruptions. No restarts: the
   bounds judged by the byz oracle stacks assume crash-stop honest pids. *)
let sample_byz g ~t ~window ~byz =
  if t < 1 then invalid_arg "Campaign.sample_byz: t must be >= 1";
  if byz < 0 || byz >= t then
    invalid_arg "Campaign.sample_byz: need 0 <= byz < t";
  if window < 0 then invalid_arg "Campaign.sample_byz: negative window";
  let round () = Prng.int g (max 1 (window + 1)) in
  let byz_pids = Prng.sample_without_replacement g byz t in
  let byz_entries =
    List.map
      (fun victim -> { Schedule.victim; at = round (); mode = Schedule.Byzantine })
      byz_pids
  in
  let honest =
    List.filter (fun p -> not (List.mem p byz_pids)) (List.init t Fun.id)
  in
  let honest_arr = Array.of_list honest in
  let n_honest = Array.length honest_arr in
  let n_crash = if n_honest <= 1 then 0 else Prng.int g n_honest in
  let crash_entries =
    List.map
      (fun i ->
        let victim = honest_arr.(i) in
        let at = round () in
        let mode =
          match Prng.int g 4 with
          | 0 -> Schedule.Silent
          | 1 -> Schedule.Acting { keep_work = Prng.bool g; delivery = Fault.All }
          | _ ->
              Schedule.Acting
                { keep_work = Prng.bool g; delivery = Fault.Prefix (Prng.int g 4) }
        in
        { Schedule.victim; at; mode })
      (Prng.sample_without_replacement g n_crash n_honest)
  in
  let n_corrupt = Prng.int g (t + 1) in
  let corrupt_entries =
    List.init n_corrupt (fun _ ->
        let victim = Prng.int g t in
        let at = round () in
        let t_kind =
          match Prng.int g 3 with
          | 0 -> Fault.Lying_view
          | 1 -> Fault.Replay_stale
          | _ -> Fault.Inflate_done
        in
        let t_salt = Prng.int g 1_000_000 in
        { Schedule.victim; at; mode = Schedule.Corrupt { Fault.t_kind; t_salt } })
  in
  Schedule.make (byz_entries @ crash_entries @ corrupt_entries)

(* ------------------------------------------------------------------ *)
(* Oracles *)

type check_result = Pass | Pass_margin of float | Fail of string

type 'r oracle = { name : string; check : 'r -> check_result }

let first_failure oracles r =
  List.fold_left
    (fun acc o ->
      match acc with
      | Some _ -> acc
      | None -> (
          match o.check r with
          | Pass | Pass_margin _ -> None
          | Fail detail -> Some (o.name, detail)))
    None oracles

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let remove_at l i = List.filteri (fun j _ -> j <> i) l

let schedule_candidates =
  let remove = remove_at in
  let replace l i e = List.mapi (fun j x -> if j = i then e else x) l in
  let with_entries s entries = { s with Schedule.entries } in
  fun (s : Schedule.t) : Schedule.t Seq.t ->
    let es = s.entries in
    let n = List.length es in
    (* 1. drop a victim outright *)
    let drops = Seq.init n (fun i -> with_entries s (remove es i)) in
    (* 2. widen its delivery cut toward All / let it keep the work *)
    let weakenings =
      Seq.concat_map
        (fun i ->
          let e = List.nth es i in
          let variants =
            match e.Schedule.mode with
            | Schedule.Byzantine ->
                (* weaken full subversion to an ordinary silent crash *)
                [ Schedule.Silent ]
            | Schedule.Silent | Schedule.Restart | Schedule.Corrupt _ -> []
            | Schedule.Acting { keep_work; delivery } ->
                let widened =
                  match delivery with
                  | Fault.All -> []
                  | Fault.Prefix k ->
                      [ Fault.All; Fault.Prefix (k + 1) ]
                  | Fault.Indices _ -> [ Fault.All ]
                in
                List.map
                  (fun d -> Schedule.Acting { keep_work; delivery = d })
                  widened
                @
                if keep_work then []
                else [ Schedule.Acting { keep_work = true; delivery } ]
          in
          List.to_seq
            (List.map
               (fun mode -> with_entries s (replace es i { e with mode }))
               variants))
        (Seq.init n Fun.id)
    in
    (* 3. delay the crash (larger jumps first) *)
    let delays =
      Seq.concat_map
        (fun i ->
          let e = List.nth es i in
          List.to_seq
            (List.map
               (fun d -> with_entries s (replace es i { e with Schedule.at = e.at + d }))
               [ 16; 4; 1 ]))
        (Seq.init n Fun.id)
    in
    Seq.append drops (Seq.append weakenings delays)

let shrink ~run ~oracles ~oracle ~candidates ?cost ?(budget = 500) sched0 =
  let target = List.find_opt (fun o -> o.name = oracle) oracles in
  let runs = ref 0 in
  let last_detail = ref "" in
  let still_fails s =
    match target with
    | None -> false
    | Some o ->
        if !runs >= budget then false
        else begin
          incr runs;
          match o.check (run s) with
          | Fail d ->
              last_detail := d;
              true
          | Pass | Pass_margin _ -> false
        end
  in
  (* record the detail of the starting point (and sanity-check it fails) *)
  ignore (still_fails sched0);
  (* With a cost objective, a candidate must both still fail and not spend
     more adversary power than the incumbent — the greedy walk then ends on
     a cheapest-break along its candidate path. Checked before running: the
     cost test is free, the execution is not. *)
  let acceptable incumbent =
    match cost with
    | None -> fun _ -> true
    | Some c ->
        let bound = c incumbent in
        fun cand -> c cand <= bound
  in
  let rec improve s =
    let ok = acceptable s in
    match Seq.find (fun cand -> ok cand && still_fails cand) (candidates s) with
    | Some better -> improve better
    | None -> s
  in
  let final = improve sched0 in
  (final, !last_detail, !runs)

(* ------------------------------------------------------------------ *)
(* Campaign runner *)

type 'a failure = {
  schedule : 'a;
  oracle : string;
  detail : string;
  shrunk : 'a;
  shrunk_detail : string;
  shrink_executions : int;
}

type 'a stats = {
  schedules : int;
  executions : int;
  failures : 'a failure list;
  margins : (string * float) list;
}

let run ~run:exec ~oracles ~candidates ?cost ?(max_failures = 3)
    ?(shrink_budget = 500) schedules =
  let n_schedules = ref 0 in
  let executions = ref 0 in
  let failures = ref [] in
  let margins : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let note_margin name m =
    match Hashtbl.find_opt margins name with
    | Some m' when m' >= m -> ()
    | _ -> Hashtbl.replace margins name m
  in
  let judge sched =
    incr n_schedules;
    incr executions;
    let r = exec sched in
    List.fold_left
      (fun acc o ->
        match acc with
        | Some _ -> acc
        | None -> (
            match o.check r with
            | Pass -> None
            | Pass_margin m ->
                note_margin o.name m;
                None
            | Fail detail -> Some (o.name, detail)))
      None oracles
  in
  (try
     Seq.iter
       (fun sched ->
         match judge sched with
         | None -> ()
         | Some (oracle, detail) ->
             let shrunk, shrunk_detail, spent =
               shrink ~run:exec ~oracles ~oracle ~candidates ?cost
                 ~budget:shrink_budget sched
             in
             executions := !executions + spent;
             failures :=
               { schedule = sched; oracle; detail; shrunk; shrunk_detail;
                 shrink_executions = spent }
               :: !failures;
             if List.length !failures >= max_failures then raise Exit)
       schedules
   with Exit -> ());
  let margins =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) margins []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    schedules = !n_schedules;
    executions = !executions;
    failures = List.rev !failures;
    margins;
  }

(* Parallel campaign engine: judge every schedule on a [Simkit.Pool] of
   [jobs] worker domains, then reduce the verdicts strictly in schedule
   order, shrinking sequentially (shrinking is a greedy walk whose
   minimality argument depends on candidate order, so it stays on one
   domain). The trade against the sequential [run] is early exit: [run]
   stops executing once [max_failures] violations are found, while this
   engine always judges the whole campaign and then keeps the first
   [max_failures] failures in schedule order — the price of results that
   are byte-identical for every [jobs] value. With no violations the two
   engines agree exactly. Generic over the schedule type, like [run]. *)
let run_parallel ?jobs ~run:exec ~oracles ~candidates ?cost
    ?(max_failures = 3) ?(shrink_budget = 500) schedules =
  let scheds = Array.of_seq schedules in
  (* Pure per-schedule judgement, mirroring [run]'s oracle fold: margins
     are noted only for oracles checked before the first failure. *)
  let judge sched =
    let r = exec sched in
    List.fold_left
      (fun (margins, failure) o ->
        match failure with
        | Some _ -> (margins, failure)
        | None -> (
            match o.check r with
            | Pass -> (margins, None)
            | Pass_margin m -> ((o.name, m) :: margins, None)
            | Fail detail -> (margins, Some (o.name, detail))))
      ([], None) oracles
  in
  let verdicts = Pool.map ?jobs judge scheds in
  let margins : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let note_margin (name, m) =
    match Hashtbl.find_opt margins name with
    | Some m' when m' >= m -> ()
    | _ -> Hashtbl.replace margins name m
  in
  let executions = ref (Array.length scheds) in
  let failures = ref [] in
  Array.iteri
    (fun i (ms, verdict) ->
      List.iter note_margin (List.rev ms);
      match verdict with
      | Some (oracle, detail) when List.length !failures < max_failures ->
          let shrunk, shrunk_detail, spent =
            shrink ~run:exec ~oracles ~oracle ~candidates ?cost
              ~budget:shrink_budget scheds.(i)
          in
          executions := !executions + spent;
          failures :=
            { schedule = scheds.(i); oracle; detail; shrunk; shrunk_detail;
              shrink_executions = spent }
            :: !failures
      | _ -> ())
    verdicts;
  let margins =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) margins []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    schedules = Array.length scheds;
    executions = !executions;
    failures = List.rev !failures;
    margins;
  }

(* [jobs = None] keeps the sequential engine (and its early-exit
   semantics); [Some j] selects the parallel engine, whose results do not
   depend on [j]. *)
let run_dispatch ?jobs ~run:exec ~oracles ~candidates ?cost ?max_failures
    ?shrink_budget schedules =
  match jobs with
  | None ->
      run ~run:exec ~oracles ~candidates ?cost ?max_failures ?shrink_budget
        schedules
  | Some jobs ->
      run_parallel ~jobs ~run:exec ~oracles ~candidates ?cost ?max_failures
        ?shrink_budget schedules

let pp_stats ppf s =
  Format.fprintf ppf "schedules=%d executions=%d violations=%d" s.schedules
    s.executions (List.length s.failures);
  if s.margins <> [] then begin
    Format.fprintf ppf " margins:";
    List.iter
      (fun (name, m) -> Format.fprintf ppf " %s=%.2f" name m)
      s.margins
  end

(* ------------------------------------------------------------------ *)
(* Asynchronous schedules *)

module Async = struct
  type crash = { victim : pid; at : int }
  type sever = { s_src : pid; s_dst : pid; s_from : int; s_to : int }

  type t = {
    meta : (string * string) list;
    crashes : crash list;
    restarts : crash list;  (* respawn ticks; net fleets only, sim crashes are final *)
    drop_bp : int;
    dup_bp : int;
    corrupt_bp : int;
    byz : crash list;  (* adversary-controlled from the given tick on *)
    slow_set : pid list;
    slow_factor : int;
    severs : sever list;  (* directed link cuts over tick windows *)
    max_delay : int;
    max_lag : int;
    seed : int64;
  }

  let make ?(meta = []) ?(crashes = []) ?(restarts = []) ?(drop_bp = 0)
      ?(dup_bp = 0) ?(corrupt_bp = 0) ?(byz = []) ?(slow_set = [])
      ?(slow_factor = 1) ?(severs = []) ?(max_delay = 5) ?(max_lag = 3)
      ?(seed = 1L) () =
    List.iter
      (fun s ->
        if s.s_from < 0 || s.s_to < s.s_from then
          invalid_arg "Campaign.Async.make: sever window must be 0 <= from <= to")
      severs;
    {
      meta;
      crashes;
      restarts;
      drop_bp;
      dup_bp;
      corrupt_bp;
      byz;
      slow_set;
      slow_factor;
      severs;
      max_delay;
      max_lag;
      seed;
    }

  let meta t key = List.assoc_opt key t.meta

  let add_meta t bindings =
    let replaced =
      List.map
        (fun (k, v) ->
          match List.assoc_opt k bindings with Some v' -> (k, v') | None -> (k, v))
        t.meta
    in
    let fresh =
      List.filter (fun (k, _) -> not (List.mem_assoc k t.meta)) bindings
    in
    { t with meta = replaced @ fresh }

  let csv_of_pids = function
    | [] -> "-"
    | l -> String.concat "," (List.map string_of_int l)

  let print t =
    let b = Buffer.create 256 in
    Buffer.add_string b "async-schedule v1\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "meta %s %s\n" k v))
      t.meta;
    Buffer.add_string b
      (Printf.sprintf "link drop %d dup %d\n" t.drop_bp t.dup_bp);
    if t.corrupt_bp > 0 then
      Buffer.add_string b (Printf.sprintf "corrupt %d\n" t.corrupt_bp);
    Buffer.add_string b
      (Printf.sprintf "slow %s factor %d\n" (csv_of_pids t.slow_set)
         t.slow_factor);
    Buffer.add_string b
      (Printf.sprintf "delay %d lag %d\n" t.max_delay t.max_lag);
    Buffer.add_string b (Printf.sprintf "seed %Ld\n" t.seed);
    List.iter
      (fun c ->
        Buffer.add_string b (Printf.sprintf "crash %d @%d\n" c.victim c.at))
      t.crashes;
    List.iter
      (fun c ->
        Buffer.add_string b (Printf.sprintf "byz %d @%d\n" c.victim c.at))
      t.byz;
    List.iter
      (fun c ->
        Buffer.add_string b (Printf.sprintf "restart %d @%d\n" c.victim c.at))
      t.restarts;
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "sever %d %d @%d @%d\n" s.s_src s.s_dst s.s_from
             s.s_to))
      t.severs;
    Buffer.add_string b "end\n";
    Buffer.contents b

  let parse text =
    let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    let int_tok lineno what s k =
      match int_of_string_opt s with
      | Some i -> k i
      | None -> err lineno (Printf.sprintf "expected %s, got %S" what s)
    in
    let pids_tok lineno s k =
      if s = "-" then k []
      else
        let rec go acc = function
          | [] -> k (List.rev acc)
          | p :: rest -> int_tok lineno "pid" p (fun i -> go (i :: acc) rest)
        in
        go [] (String.split_on_char ',' s)
    in
    let lines = String.split_on_char '\n' text in
    let strip s =
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '\r' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      String.trim s
    in
    let rec body lineno acc = function
      | [] -> Error "missing final \"end\" line"
      | raw :: rest -> (
          let line = strip raw in
          if line = "" || line.[0] = '#' then body (lineno + 1) acc rest
          else if line = "end" then
            Ok
              { acc with
                meta = List.rev acc.meta;
                crashes = List.rev acc.crashes;
                restarts = List.rev acc.restarts;
                severs = List.rev acc.severs;
                byz = List.rev acc.byz }
          else
            let toks =
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            in
            match toks with
            | "meta" :: key :: rest_toks ->
                body (lineno + 1)
                  { acc with meta = (key, String.concat " " rest_toks) :: acc.meta }
                  rest
            | [ "link"; "drop"; d; "dup"; u ] ->
                int_tok lineno "drop basis points" d (fun drop_bp ->
                    int_tok lineno "dup basis points" u (fun dup_bp ->
                        body (lineno + 1) { acc with drop_bp; dup_bp } rest))
            | [ "corrupt"; c ] ->
                int_tok lineno "corrupt basis points" c (fun corrupt_bp ->
                    body (lineno + 1) { acc with corrupt_bp } rest)
            | [ "slow"; pids; "factor"; f ] ->
                pids_tok lineno pids (fun slow_set ->
                    int_tok lineno "slow factor" f (fun slow_factor ->
                        body (lineno + 1) { acc with slow_set; slow_factor } rest))
            | [ "delay"; d; "lag"; l ] ->
                int_tok lineno "max delay" d (fun max_delay ->
                    int_tok lineno "max lag" l (fun max_lag ->
                        body (lineno + 1) { acc with max_delay; max_lag } rest))
            | [ "seed"; s ] -> (
                match Int64.of_string_opt s with
                | Some seed -> body (lineno + 1) { acc with seed } rest
                | None -> err lineno (Printf.sprintf "expected seed, got %S" s))
            | [ "crash"; pid; at ] when String.length at > 1 && at.[0] = '@' ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "tick"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        body (lineno + 1)
                          { acc with crashes = { victim; at } :: acc.crashes }
                          rest))
            | [ "byz"; pid; at ] when String.length at > 1 && at.[0] = '@' ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "tick"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        body (lineno + 1)
                          { acc with byz = { victim; at } :: acc.byz }
                          rest))
            | [ "restart"; pid; at ] when String.length at > 1 && at.[0] = '@'
              ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "tick"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        body (lineno + 1)
                          { acc with restarts = { victim; at } :: acc.restarts }
                          rest))
            | [ "sever"; src; dst; from_; to_ ]
              when String.length from_ > 1
                   && from_.[0] = '@'
                   && String.length to_ > 1
                   && to_.[0] = '@' ->
                int_tok lineno "pid" src (fun s_src ->
                    int_tok lineno "pid" dst (fun s_dst ->
                        int_tok lineno "tick"
                          (String.sub from_ 1 (String.length from_ - 1))
                          (fun s_from ->
                            int_tok lineno "tick"
                              (String.sub to_ 1 (String.length to_ - 1))
                              (fun s_to ->
                                if s_from < 0 || s_to < s_from then
                                  err lineno "sever window must be 0 <= from <= to"
                                else
                                  body (lineno + 1)
                                    { acc with
                                      severs =
                                        { s_src; s_dst; s_from; s_to }
                                        :: acc.severs }
                                    rest))))
            | _ -> err lineno (Printf.sprintf "unrecognized line %S" line))
    in
    let rec header lineno = function
      | [] -> Error "empty schedule text"
      | raw :: rest ->
          let line = strip raw in
          if line = "" || line.[0] = '#' then header (lineno + 1) rest
          else if line = "async-schedule v1" then body (lineno + 1) (make ()) rest
          else err lineno "expected header \"async-schedule v1\""
    in
    header 1 lines

  let pp ppf t =
    Format.fprintf ppf "drop %d.%02d%% dup %d.%02d%%" (t.drop_bp / 100)
      (t.drop_bp mod 100) (t.dup_bp / 100) (t.dup_bp mod 100);
    if t.corrupt_bp > 0 then
      Format.fprintf ppf " corrupt %d.%02d%%" (t.corrupt_bp / 100)
        (t.corrupt_bp mod 100);
    if t.slow_set <> [] then
      Format.fprintf ppf " slow {%s}x%d" (csv_of_pids t.slow_set) t.slow_factor;
    Format.fprintf ppf " delay %d lag %d seed %Ld" t.max_delay t.max_lag t.seed;
    if t.crashes = [] && t.byz = [] then Format.fprintf ppf " (crash-free)"
    else begin
      List.iter
        (fun c -> Format.fprintf ppf " crash %d@@%d" c.victim c.at)
        t.crashes;
      List.iter
        (fun c -> Format.fprintf ppf " byz %d@@%d" c.victim c.at)
        t.byz
    end;
    List.iter
      (fun c -> Format.fprintf ppf " restart %d@@%d" c.victim c.at)
      t.restarts;
    List.iter
      (fun s ->
        Format.fprintf ppf " sever %d>%d@@%d-%d" s.s_src s.s_dst s.s_from
          s.s_to)
      t.severs

  let sample g ~t ~window =
    if t < 1 then invalid_arg "Campaign.Async.sample: t must be >= 1";
    if window < 0 then invalid_arg "Campaign.Async.sample: negative window";
    let drop_bp = Prng.int g 3_001 in
    let dup_bp = Prng.int g 2_001 in
    let slow_set =
      List.filter (fun _ -> Prng.int g 4 = 0) (List.init t Fun.id)
    in
    let slow_factor = if slow_set = [] then 1 else Prng.int_in g 2 4 in
    let max_delay = Prng.int_in g 1 6 in
    let max_lag = Prng.int_in g 1 4 in
    let victims = Prng.int g t in
    let pids = Prng.sample_without_replacement g victims t in
    let crashes =
      List.map
        (fun victim -> { victim; at = Prng.int g (max 1 (window + 1)) })
        pids
    in
    let seed = Prng.next_int64 g in
    make ~crashes ~drop_bp ~dup_bp ~slow_set ~slow_factor ~max_delay ~max_lag
      ~seed ()

  (* The asynchronous corruption/Byzantine sampler: exactly [byz] subverted
     pids plus a mildly lossy, possibly-corrupting link; crashes only among
     the honest remainder (at least one honest pid always survives). *)
  let sample_byz g ~t ~window ~byz =
    if t < 1 then invalid_arg "Campaign.Async.sample_byz: t must be >= 1";
    if byz < 0 || byz >= t then
      invalid_arg "Campaign.Async.sample_byz: need 0 <= byz < t";
    if window < 0 then invalid_arg "Campaign.Async.sample_byz: negative window";
    let drop_bp = Prng.int g 1_501 in
    let dup_bp = Prng.int g 1_001 in
    let corrupt_bp = Prng.int g 2_001 in
    let max_delay = Prng.int_in g 1 6 in
    let max_lag = Prng.int_in g 1 4 in
    let tick () = Prng.int g (max 1 (window + 1)) in
    let byz_pids = Prng.sample_without_replacement g byz t in
    let byz_entries =
      List.map (fun victim -> { victim; at = tick () }) byz_pids
    in
    let honest =
      List.filter (fun p -> not (List.mem p byz_pids)) (List.init t Fun.id)
    in
    let honest_arr = Array.of_list honest in
    let n_honest = Array.length honest_arr in
    let n_crash = if n_honest <= 1 then 0 else Prng.int g n_honest in
    let crashes =
      List.map
        (fun i -> { victim = honest_arr.(i); at = tick () })
        (Prng.sample_without_replacement g n_crash n_honest)
    in
    let seed = Prng.next_int64 g in
    make ~crashes ~byz:byz_entries ~drop_bp ~dup_bp ~corrupt_bp ~max_delay
      ~max_lag ~seed ()

  (* Cost objective mirroring [Schedule.cost]: a subverted pid is the most
     expensive, a corrupting link counts as one corruption, a crash is the
     unit. *)
  let cost (s : t) =
    (5 * List.length s.byz)
    + (if s.corrupt_bp > 0 then 2 else 0)
    + List.length s.crashes
    + List.length s.severs

  let candidates (s : t) : t Seq.t =
    let n = List.length s.crashes in
    (* 1. drop a crash outright *)
    let drops =
      Seq.init n (fun i -> { s with crashes = remove_at s.crashes i })
    in
    (* 2. calm the link: no loss, halved loss, no duplication, no slow set *)
    let link =
      List.to_seq
        ((if s.drop_bp > 0 then
            [ { s with drop_bp = 0 }; { s with drop_bp = s.drop_bp / 2 } ]
          else [])
        @ (if s.dup_bp > 0 then [ { s with dup_bp = 0 } ] else [])
        @ (if s.corrupt_bp > 0 then
             [ { s with corrupt_bp = 0 };
               { s with corrupt_bp = s.corrupt_bp / 2 } ]
           else [])
        @ (if s.slow_set <> [] then
             { s with slow_set = []; slow_factor = 1 }
             :: List.mapi
                  (fun i _ -> { s with slow_set = remove_at s.slow_set i })
                  s.slow_set
           else [])
        @
        if s.slow_factor > 1 then [ { s with slow_factor = 1 } ] else [])
    in
    (* 3. weaken the Byzantine pids: drop one, or demote it to a crash at
       the same tick *)
    let nb = List.length s.byz in
    let byz_weaken =
      Seq.append
        (Seq.init nb (fun i -> { s with byz = remove_at s.byz i }))
        (Seq.init nb (fun i ->
             let b = List.nth s.byz i in
             { s with byz = remove_at s.byz i; crashes = s.crashes @ [ b ] }))
    in
    (* 4. delay the crashes (larger jumps first) *)
    let delays =
      Seq.concat_map
        (fun i ->
          List.to_seq
            (List.map
               (fun d ->
                 { s with
                   crashes =
                     List.mapi
                       (fun j x -> if j = i then { x with at = x.at + d } else x)
                       s.crashes })
               [ 16; 4; 1 ]))
        (Seq.init n Fun.id)
    in
    (* 5. heal a severed link, or keep a crash but cancel its respawn *)
    let heal =
      Seq.append
        (Seq.init (List.length s.severs) (fun i ->
             { s with severs = remove_at s.severs i }))
        (Seq.init (List.length s.restarts) (fun i ->
             { s with restarts = remove_at s.restarts i }))
    in
    Seq.append drops
      (Seq.append link (Seq.append byz_weaken (Seq.append delays heal)))
end
