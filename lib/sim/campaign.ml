open Types
module Prng = Dhw_util.Prng

module Schedule = struct
  type mode =
    | Silent
    | Acting of { keep_work : bool; delivery : Fault.delivery }
    | Restart

  type entry = { victim : pid; at : round; mode : mode }

  type t = { meta : (string * string) list; entries : entry list }

  let make ?(meta = []) entries = { meta; entries }

  let meta t key = List.assoc_opt key t.meta

  let add_meta t bindings =
    let replaced =
      List.map
        (fun (k, v) ->
          match List.assoc_opt k bindings with Some v' -> (k, v') | None -> (k, v))
        t.meta
    in
    let fresh =
      List.filter (fun (k, _) -> not (List.mem_assoc k t.meta)) bindings
    in
    { t with meta = replaced @ fresh }

  (* Normalize a schedule into per-victim crash/restart cycles: entries are
     sorted by round (stable), then walked with an alternating state machine.
     A restart with no preceding crash is dropped (the adversary cannot
     restart what is up); a crash while already down is dropped (first crash
     of a cycle wins — the crash-only special case of which is the documented
     [Fault.crash_silently_at] earliest-round rule); a restart must be
     strictly after its cycle's crash round. Each cycle is a crash entry plus
     an optional restart round. *)
  let cycles_of t =
    let per : (pid, entry list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let tail = Option.value ~default:[] (Hashtbl.find_opt per e.victim) in
        Hashtbl.replace per e.victim (e :: tail))
      t.entries;
    let out : (pid, (entry * round option) array) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun pid entries ->
        let sorted =
          List.stable_sort (fun a b -> compare a.at b.at) (List.rev entries)
        in
        let cycles = ref [] in
        let current = ref None in
        List.iter
          (fun e ->
            match (e.mode, !current) with
            | Restart, None -> () (* restart of an up process: dropped *)
            | Restart, Some (c : entry) ->
                if e.at > c.at then begin
                  cycles := (c, Some e.at) :: !cycles;
                  current := None
                end
                (* restart at or before the crash round: inapplicable, kept
                   pending in case a later restart round arrives *)
            | _, Some _ -> () (* crash while already down: first wins *)
            | _, None -> current := Some e)
          sorted;
        (match !current with Some c -> cycles := (c, None) :: !cycles | None -> ());
        Hashtbl.replace out pid (Array.of_list (List.rev !cycles)))
      per;
    out

  let to_fault t =
    let cycles = cycles_of t in
    (* which cycle each pid is currently in; advanced by committed revivals *)
    let idx : (pid, int) Hashtbl.t = Hashtbl.create 8 in
    let current pid =
      match Hashtbl.find_opt cycles pid with
      | None -> None
      | Some arr ->
          let i = Option.value ~default:0 (Hashtbl.find_opt idx pid) in
          if i < Array.length arr then Some arr.(i) else None
    in
    let crashed_by pid round =
      match current pid with
      | Some ({ mode = Silent; at; _ }, _) -> round >= at
      | _ -> false
    in
    let on_step (v : Fault.step_view) =
      match current v.sv_pid with
      | Some ({ mode = Acting { keep_work; delivery }; at; _ }, _)
        when v.sv_round >= at ->
          Fault.Crash { keep_work; delivery }
      | _ -> Fault.Survive
    in
    let restarts =
      Hashtbl.fold
        (fun pid arr acc ->
          Array.fold_left
            (fun acc (_, rr) ->
              match rr with Some r -> (pid, r) :: acc | None -> acc)
            acc arr)
        cycles []
      |> List.sort compare
    in
    let on_restart pid _r =
      Hashtbl.replace idx pid
        (1 + Option.value ~default:0 (Hashtbl.find_opt idx pid))
    in
    Fault.custom ~restarts ~on_restart ~crashed_by ~on_step ()

  let restart_count t =
    List.length (List.filter (fun e -> e.mode = Restart) t.entries)

  let delivery_to_string = function
    | Fault.All -> "all"
    | Fault.Prefix k -> "prefix " ^ string_of_int k
    | Fault.Indices l ->
        "indices " ^ String.concat "," (List.map string_of_int l)

  let mode_to_string = function
    | Silent -> "silent"
    | Acting { keep_work; delivery } ->
        Printf.sprintf "acting %s %s"
          (if keep_work then "keep" else "drop")
          (delivery_to_string delivery)
    | Restart -> "restart"

  let entry_to_string e =
    match e.mode with
    | Restart -> Printf.sprintf "restart %d @%d" e.victim e.at
    | m -> Printf.sprintf "crash %d @%d %s" e.victim e.at (mode_to_string m)

  let print t =
    let b = Buffer.create 256 in
    Buffer.add_string b "schedule v1\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "meta %s %s\n" k v))
      t.meta;
    List.iter
      (fun e -> Buffer.add_string b (entry_to_string e ^ "\n"))
      t.entries;
    Buffer.add_string b "end\n";
    Buffer.contents b

  let parse text =
    let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    let int_tok lineno what s k =
      match int_of_string_opt s with
      | Some i -> k i
      | None -> err lineno (Printf.sprintf "expected %s, got %S" what s)
    in
    let parse_delivery lineno toks k =
      match toks with
      | [ "all" ] -> k Fault.All
      | [ "prefix"; n ] -> int_tok lineno "prefix length" n (fun i -> k (Fault.Prefix i))
      | [ "indices" ] -> k (Fault.Indices [])
      | [ "indices"; csv ] ->
          let parts = String.split_on_char ',' csv in
          let rec go acc = function
            | [] -> k (Fault.Indices (List.rev acc))
            | p :: rest ->
                int_tok lineno "index" p (fun i -> go (i :: acc) rest)
          in
          go [] parts
      | _ -> err lineno "expected all | prefix <k> | indices <i,..>"
    in
    let parse_mode lineno toks k =
      match toks with
      | [ "silent" ] -> k Silent
      | "acting" :: kw :: rest ->
          let keep =
            match kw with
            | "keep" -> Some true
            | "drop" -> Some false
            | _ -> None
          in
          (match keep with
          | None -> err lineno "expected keep or drop after acting"
          | Some keep_work ->
              parse_delivery lineno rest (fun delivery ->
                  k (Acting { keep_work; delivery })))
      | _ -> err lineno "expected silent or acting ..."
    in
    let lines = String.split_on_char '\n' text in
    let strip s =
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '\r' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      String.trim s
    in
    let rec body lineno meta entries = function
      | [] -> Error "missing final \"end\" line"
      | raw :: rest -> (
          let line = strip raw in
          if line = "" || line.[0] = '#' then body (lineno + 1) meta entries rest
          else if line = "end" then
            Ok { meta = List.rev meta; entries = List.rev entries }
          else
            let toks =
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            in
            match toks with
            | "meta" :: key :: rest_toks ->
                (* the value is everything after the key, single-spaced *)
                body (lineno + 1)
                  ((key, String.concat " " rest_toks) :: meta)
                  entries rest
            | "crash" :: pid :: at :: mode_toks
              when String.length at > 1 && at.[0] = '@' ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "round"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        parse_mode lineno mode_toks (fun mode ->
                            body (lineno + 1) meta
                              ({ victim; at; mode } :: entries)
                              rest)))
            | [ "restart"; pid; at ] when String.length at > 1 && at.[0] = '@' ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "round"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        body (lineno + 1) meta
                          ({ victim; at; mode = Restart } :: entries)
                          rest))
            | _ -> err lineno (Printf.sprintf "unrecognized line %S" line))
    in
    let rec header lineno = function
      | [] -> Error "empty schedule text"
      | raw :: rest ->
          let line = strip raw in
          if line = "" || line.[0] = '#' then header (lineno + 1) rest
          else if line = "schedule v1" then body (lineno + 1) [] [] rest
          else err lineno "expected header \"schedule v1\""
    in
    header 1 lines

  let pp ppf t =
    if t.entries = [] then Format.fprintf ppf "(fault-free)"
    else
      Format.fprintf ppf "%s"
        (String.concat "; "
           (List.map
              (fun e ->
                match e.mode with
                | Restart -> Printf.sprintf "%d@%d restart" e.victim e.at
                | m -> Printf.sprintf "%d@%d %s" e.victim e.at (mode_to_string m))
              t.entries))
end

(* ------------------------------------------------------------------ *)
(* Generation *)

let default_modes =
  [
    Schedule.Silent;
    Schedule.Acting { keep_work = true; delivery = Fault.All };
    Schedule.Acting { keep_work = false; delivery = Fault.Prefix 0 };
    Schedule.Acting { keep_work = false; delivery = Fault.Prefix 1 };
  ]

let exhaustive ~t ~window ?(round_step = 1) ~modes () =
  if t < 1 then invalid_arg "Campaign.exhaustive: t must be >= 1";
  if round_step < 1 then invalid_arg "Campaign.exhaustive: round_step >= 1";
  if modes = [] then invalid_arg "Campaign.exhaustive: no modes";
  if window < 0 then invalid_arg "Campaign.exhaustive: negative window";
  let rounds = List.init ((window / round_step) + 1) (fun i -> i * round_step) in
  (* all victim subsets of [0..t-1]; the full set is filtered out below *)
  let rec subsets pid : pid list Seq.t =
    if pid = t then Seq.return []
    else
      Seq.concat_map
        (fun tail -> List.to_seq [ tail; pid :: tail ])
        (subsets (pid + 1))
  in
  let rec assign : pid list -> Schedule.entry list Seq.t = function
    | [] -> Seq.return []
    | v :: rest ->
        Seq.concat_map
          (fun tail ->
            Seq.concat_map
              (fun at ->
                Seq.map
                  (fun mode -> { Schedule.victim = v; at; mode } :: tail)
                  (List.to_seq modes))
              (List.to_seq rounds))
          (assign rest)
  in
  subsets 0
  |> Seq.filter (fun vs -> List.length vs < t)
  |> Seq.concat_map (fun vs -> Seq.map (Schedule.make ?meta:None) (assign vs))

let sample g ~t ~window =
  if t < 1 then invalid_arg "Campaign.sample: t must be >= 1";
  let victims = Prng.int g t in
  let pids = Prng.sample_without_replacement g victims t in
  let entries =
    List.map
      (fun victim ->
        let at = Prng.int g (max 1 (window + 1)) in
        let mode =
          match Prng.int g 6 with
          | 0 -> Schedule.Silent
          | 1 ->
              Schedule.Acting { keep_work = Prng.bool g; delivery = Fault.All }
          | 2 | 3 ->
              Schedule.Acting
                { keep_work = Prng.bool g; delivery = Fault.Prefix (Prng.int g 4) }
          | _ ->
              let k = Prng.int g 4 in
              let idx = Prng.sample_without_replacement g k 8 in
              Schedule.Acting
                { keep_work = Prng.bool g; delivery = Fault.Indices idx }
        in
        { Schedule.victim; at; mode })
      pids
  in
  Schedule.make entries

let sample_recovery g ~t ~window ~restart_gap =
  if restart_gap < 1 then invalid_arg "Campaign.sample_recovery: restart_gap >= 1";
  let base = sample g ~t ~window in
  (* Give each victim a restart with probability 3/4; a restarted victim
     gets a whole second crash/restart cycle with probability 1/4 — storms,
     not just blips. *)
  let extra =
    List.concat_map
      (fun (e : Schedule.entry) ->
        match e.mode with
        | Schedule.Restart -> []
        | _ ->
            if Prng.int g 4 = 0 then []
            else begin
              let r1 = e.at + 1 + Prng.int g restart_gap in
              let restart1 = { e with Schedule.at = r1; mode = Schedule.Restart } in
              if Prng.int g 4 > 0 then [ restart1 ]
              else begin
                let c2 = r1 + Prng.int g (max 1 restart_gap) in
                let crash2 =
                  { e with
                    Schedule.at = c2;
                    mode =
                      (if Prng.bool g then Schedule.Silent
                       else
                         Schedule.Acting
                           { keep_work = Prng.bool g;
                             delivery = Fault.Prefix (Prng.int g 4) });
                  }
                in
                if Prng.int g 2 = 0 then [ restart1; crash2 ]
                else
                  [ restart1; crash2;
                    { e with
                      Schedule.at = c2 + 1 + Prng.int g restart_gap;
                      mode = Schedule.Restart } ]
              end
            end)
      base.Schedule.entries
  in
  Schedule.make (base.Schedule.entries @ extra)

(* ------------------------------------------------------------------ *)
(* Oracles *)

type check_result = Pass | Pass_margin of float | Fail of string

type 'r oracle = { name : string; check : 'r -> check_result }

let first_failure oracles r =
  List.fold_left
    (fun acc o ->
      match acc with
      | Some _ -> acc
      | None -> (
          match o.check r with
          | Pass | Pass_margin _ -> None
          | Fail detail -> Some (o.name, detail)))
    None oracles

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let remove_at l i = List.filteri (fun j _ -> j <> i) l

let schedule_candidates =
  let remove = remove_at in
  let replace l i e = List.mapi (fun j x -> if j = i then e else x) l in
  let with_entries s entries = { s with Schedule.entries } in
  fun (s : Schedule.t) : Schedule.t Seq.t ->
    let es = s.entries in
    let n = List.length es in
    (* 1. drop a victim outright *)
    let drops = Seq.init n (fun i -> with_entries s (remove es i)) in
    (* 2. widen its delivery cut toward All / let it keep the work *)
    let weakenings =
      Seq.concat_map
        (fun i ->
          let e = List.nth es i in
          let variants =
            match e.Schedule.mode with
            | Schedule.Silent | Schedule.Restart -> []
            | Schedule.Acting { keep_work; delivery } ->
                let widened =
                  match delivery with
                  | Fault.All -> []
                  | Fault.Prefix k ->
                      [ Fault.All; Fault.Prefix (k + 1) ]
                  | Fault.Indices _ -> [ Fault.All ]
                in
                List.map
                  (fun d -> Schedule.Acting { keep_work; delivery = d })
                  widened
                @
                if keep_work then []
                else [ Schedule.Acting { keep_work = true; delivery } ]
          in
          List.to_seq
            (List.map
               (fun mode -> with_entries s (replace es i { e with mode }))
               variants))
        (Seq.init n Fun.id)
    in
    (* 3. delay the crash (larger jumps first) *)
    let delays =
      Seq.concat_map
        (fun i ->
          let e = List.nth es i in
          List.to_seq
            (List.map
               (fun d -> with_entries s (replace es i { e with Schedule.at = e.at + d }))
               [ 16; 4; 1 ]))
        (Seq.init n Fun.id)
    in
    Seq.append drops (Seq.append weakenings delays)

let shrink ~run ~oracles ~oracle ~candidates ?(budget = 500) sched0 =
  let target = List.find_opt (fun o -> o.name = oracle) oracles in
  let runs = ref 0 in
  let last_detail = ref "" in
  let still_fails s =
    match target with
    | None -> false
    | Some o ->
        if !runs >= budget then false
        else begin
          incr runs;
          match o.check (run s) with
          | Fail d ->
              last_detail := d;
              true
          | Pass | Pass_margin _ -> false
        end
  in
  (* record the detail of the starting point (and sanity-check it fails) *)
  ignore (still_fails sched0);
  let rec improve s =
    match Seq.find still_fails (candidates s) with
    | Some better -> improve better
    | None -> s
  in
  let final = improve sched0 in
  (final, !last_detail, !runs)

(* ------------------------------------------------------------------ *)
(* Campaign runner *)

type 'a failure = {
  schedule : 'a;
  oracle : string;
  detail : string;
  shrunk : 'a;
  shrunk_detail : string;
  shrink_executions : int;
}

type 'a stats = {
  schedules : int;
  executions : int;
  failures : 'a failure list;
  margins : (string * float) list;
}

let run ~run:exec ~oracles ~candidates ?(max_failures = 3)
    ?(shrink_budget = 500) schedules =
  let n_schedules = ref 0 in
  let executions = ref 0 in
  let failures = ref [] in
  let margins : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let note_margin name m =
    match Hashtbl.find_opt margins name with
    | Some m' when m' >= m -> ()
    | _ -> Hashtbl.replace margins name m
  in
  let judge sched =
    incr n_schedules;
    incr executions;
    let r = exec sched in
    List.fold_left
      (fun acc o ->
        match acc with
        | Some _ -> acc
        | None -> (
            match o.check r with
            | Pass -> None
            | Pass_margin m ->
                note_margin o.name m;
                None
            | Fail detail -> Some (o.name, detail)))
      None oracles
  in
  (try
     Seq.iter
       (fun sched ->
         match judge sched with
         | None -> ()
         | Some (oracle, detail) ->
             let shrunk, shrunk_detail, spent =
               shrink ~run:exec ~oracles ~oracle ~candidates
                 ~budget:shrink_budget sched
             in
             executions := !executions + spent;
             failures :=
               { schedule = sched; oracle; detail; shrunk; shrunk_detail;
                 shrink_executions = spent }
               :: !failures;
             if List.length !failures >= max_failures then raise Exit)
       schedules
   with Exit -> ());
  let margins =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) margins []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    schedules = !n_schedules;
    executions = !executions;
    failures = List.rev !failures;
    margins;
  }

(* Parallel campaign engine: judge every schedule on a [Simkit.Pool] of
   [jobs] worker domains, then reduce the verdicts strictly in schedule
   order, shrinking sequentially (shrinking is a greedy walk whose
   minimality argument depends on candidate order, so it stays on one
   domain). The trade against the sequential [run] is early exit: [run]
   stops executing once [max_failures] violations are found, while this
   engine always judges the whole campaign and then keeps the first
   [max_failures] failures in schedule order — the price of results that
   are byte-identical for every [jobs] value. With no violations the two
   engines agree exactly. Generic over the schedule type, like [run]. *)
let run_parallel ?jobs ~run:exec ~oracles ~candidates ?(max_failures = 3)
    ?(shrink_budget = 500) schedules =
  let scheds = Array.of_seq schedules in
  (* Pure per-schedule judgement, mirroring [run]'s oracle fold: margins
     are noted only for oracles checked before the first failure. *)
  let judge sched =
    let r = exec sched in
    List.fold_left
      (fun (margins, failure) o ->
        match failure with
        | Some _ -> (margins, failure)
        | None -> (
            match o.check r with
            | Pass -> (margins, None)
            | Pass_margin m -> ((o.name, m) :: margins, None)
            | Fail detail -> (margins, Some (o.name, detail))))
      ([], None) oracles
  in
  let verdicts = Pool.map ?jobs judge scheds in
  let margins : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let note_margin (name, m) =
    match Hashtbl.find_opt margins name with
    | Some m' when m' >= m -> ()
    | _ -> Hashtbl.replace margins name m
  in
  let executions = ref (Array.length scheds) in
  let failures = ref [] in
  Array.iteri
    (fun i (ms, verdict) ->
      List.iter note_margin (List.rev ms);
      match verdict with
      | Some (oracle, detail) when List.length !failures < max_failures ->
          let shrunk, shrunk_detail, spent =
            shrink ~run:exec ~oracles ~oracle ~candidates ~budget:shrink_budget
              scheds.(i)
          in
          executions := !executions + spent;
          failures :=
            { schedule = scheds.(i); oracle; detail; shrunk; shrunk_detail;
              shrink_executions = spent }
            :: !failures
      | _ -> ())
    verdicts;
  let margins =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) margins []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    schedules = Array.length scheds;
    executions = !executions;
    failures = List.rev !failures;
    margins;
  }

(* [jobs = None] keeps the sequential engine (and its early-exit
   semantics); [Some j] selects the parallel engine, whose results do not
   depend on [j]. *)
let run_dispatch ?jobs ~run:exec ~oracles ~candidates ?max_failures
    ?shrink_budget schedules =
  match jobs with
  | None ->
      run ~run:exec ~oracles ~candidates ?max_failures ?shrink_budget schedules
  | Some jobs ->
      run_parallel ~jobs ~run:exec ~oracles ~candidates ?max_failures
        ?shrink_budget schedules

let pp_stats ppf s =
  Format.fprintf ppf "schedules=%d executions=%d violations=%d" s.schedules
    s.executions (List.length s.failures);
  if s.margins <> [] then begin
    Format.fprintf ppf " margins:";
    List.iter
      (fun (name, m) -> Format.fprintf ppf " %s=%.2f" name m)
      s.margins
  end

(* ------------------------------------------------------------------ *)
(* Asynchronous schedules *)

module Async = struct
  type crash = { victim : pid; at : int }

  type t = {
    meta : (string * string) list;
    crashes : crash list;
    drop_bp : int;
    dup_bp : int;
    slow_set : pid list;
    slow_factor : int;
    max_delay : int;
    max_lag : int;
    seed : int64;
  }

  let make ?(meta = []) ?(crashes = []) ?(drop_bp = 0) ?(dup_bp = 0)
      ?(slow_set = []) ?(slow_factor = 1) ?(max_delay = 5) ?(max_lag = 3)
      ?(seed = 1L) () =
    {
      meta;
      crashes;
      drop_bp;
      dup_bp;
      slow_set;
      slow_factor;
      max_delay;
      max_lag;
      seed;
    }

  let meta t key = List.assoc_opt key t.meta

  let add_meta t bindings =
    let replaced =
      List.map
        (fun (k, v) ->
          match List.assoc_opt k bindings with Some v' -> (k, v') | None -> (k, v))
        t.meta
    in
    let fresh =
      List.filter (fun (k, _) -> not (List.mem_assoc k t.meta)) bindings
    in
    { t with meta = replaced @ fresh }

  let csv_of_pids = function
    | [] -> "-"
    | l -> String.concat "," (List.map string_of_int l)

  let print t =
    let b = Buffer.create 256 in
    Buffer.add_string b "async-schedule v1\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "meta %s %s\n" k v))
      t.meta;
    Buffer.add_string b
      (Printf.sprintf "link drop %d dup %d\n" t.drop_bp t.dup_bp);
    Buffer.add_string b
      (Printf.sprintf "slow %s factor %d\n" (csv_of_pids t.slow_set)
         t.slow_factor);
    Buffer.add_string b
      (Printf.sprintf "delay %d lag %d\n" t.max_delay t.max_lag);
    Buffer.add_string b (Printf.sprintf "seed %Ld\n" t.seed);
    List.iter
      (fun c ->
        Buffer.add_string b (Printf.sprintf "crash %d @%d\n" c.victim c.at))
      t.crashes;
    Buffer.add_string b "end\n";
    Buffer.contents b

  let parse text =
    let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    let int_tok lineno what s k =
      match int_of_string_opt s with
      | Some i -> k i
      | None -> err lineno (Printf.sprintf "expected %s, got %S" what s)
    in
    let pids_tok lineno s k =
      if s = "-" then k []
      else
        let rec go acc = function
          | [] -> k (List.rev acc)
          | p :: rest -> int_tok lineno "pid" p (fun i -> go (i :: acc) rest)
        in
        go [] (String.split_on_char ',' s)
    in
    let lines = String.split_on_char '\n' text in
    let strip s =
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '\r' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      String.trim s
    in
    let rec body lineno acc = function
      | [] -> Error "missing final \"end\" line"
      | raw :: rest -> (
          let line = strip raw in
          if line = "" || line.[0] = '#' then body (lineno + 1) acc rest
          else if line = "end" then
            Ok
              { acc with
                meta = List.rev acc.meta;
                crashes = List.rev acc.crashes }
          else
            let toks =
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            in
            match toks with
            | "meta" :: key :: rest_toks ->
                body (lineno + 1)
                  { acc with meta = (key, String.concat " " rest_toks) :: acc.meta }
                  rest
            | [ "link"; "drop"; d; "dup"; u ] ->
                int_tok lineno "drop basis points" d (fun drop_bp ->
                    int_tok lineno "dup basis points" u (fun dup_bp ->
                        body (lineno + 1) { acc with drop_bp; dup_bp } rest))
            | [ "slow"; pids; "factor"; f ] ->
                pids_tok lineno pids (fun slow_set ->
                    int_tok lineno "slow factor" f (fun slow_factor ->
                        body (lineno + 1) { acc with slow_set; slow_factor } rest))
            | [ "delay"; d; "lag"; l ] ->
                int_tok lineno "max delay" d (fun max_delay ->
                    int_tok lineno "max lag" l (fun max_lag ->
                        body (lineno + 1) { acc with max_delay; max_lag } rest))
            | [ "seed"; s ] -> (
                match Int64.of_string_opt s with
                | Some seed -> body (lineno + 1) { acc with seed } rest
                | None -> err lineno (Printf.sprintf "expected seed, got %S" s))
            | [ "crash"; pid; at ] when String.length at > 1 && at.[0] = '@' ->
                int_tok lineno "pid" pid (fun victim ->
                    int_tok lineno "tick"
                      (String.sub at 1 (String.length at - 1))
                      (fun at ->
                        body (lineno + 1)
                          { acc with crashes = { victim; at } :: acc.crashes }
                          rest))
            | _ -> err lineno (Printf.sprintf "unrecognized line %S" line))
    in
    let rec header lineno = function
      | [] -> Error "empty schedule text"
      | raw :: rest ->
          let line = strip raw in
          if line = "" || line.[0] = '#' then header (lineno + 1) rest
          else if line = "async-schedule v1" then body (lineno + 1) (make ()) rest
          else err lineno "expected header \"async-schedule v1\""
    in
    header 1 lines

  let pp ppf t =
    Format.fprintf ppf "drop %d.%02d%% dup %d.%02d%%" (t.drop_bp / 100)
      (t.drop_bp mod 100) (t.dup_bp / 100) (t.dup_bp mod 100);
    if t.slow_set <> [] then
      Format.fprintf ppf " slow {%s}x%d" (csv_of_pids t.slow_set) t.slow_factor;
    Format.fprintf ppf " delay %d lag %d seed %Ld" t.max_delay t.max_lag t.seed;
    if t.crashes = [] then Format.fprintf ppf " (crash-free)"
    else
      List.iter
        (fun c -> Format.fprintf ppf " crash %d@@%d" c.victim c.at)
        t.crashes

  let sample g ~t ~window =
    if t < 1 then invalid_arg "Campaign.Async.sample: t must be >= 1";
    if window < 0 then invalid_arg "Campaign.Async.sample: negative window";
    let drop_bp = Prng.int g 3_001 in
    let dup_bp = Prng.int g 2_001 in
    let slow_set =
      List.filter (fun _ -> Prng.int g 4 = 0) (List.init t Fun.id)
    in
    let slow_factor = if slow_set = [] then 1 else Prng.int_in g 2 4 in
    let max_delay = Prng.int_in g 1 6 in
    let max_lag = Prng.int_in g 1 4 in
    let victims = Prng.int g t in
    let pids = Prng.sample_without_replacement g victims t in
    let crashes =
      List.map
        (fun victim -> { victim; at = Prng.int g (max 1 (window + 1)) })
        pids
    in
    let seed = Prng.next_int64 g in
    make ~crashes ~drop_bp ~dup_bp ~slow_set ~slow_factor ~max_delay ~max_lag
      ~seed ()

  let candidates (s : t) : t Seq.t =
    let n = List.length s.crashes in
    (* 1. drop a crash outright *)
    let drops =
      Seq.init n (fun i -> { s with crashes = remove_at s.crashes i })
    in
    (* 2. calm the link: no loss, halved loss, no duplication, no slow set *)
    let link =
      List.to_seq
        ((if s.drop_bp > 0 then
            [ { s with drop_bp = 0 }; { s with drop_bp = s.drop_bp / 2 } ]
          else [])
        @ (if s.dup_bp > 0 then [ { s with dup_bp = 0 } ] else [])
        @ (if s.slow_set <> [] then
             { s with slow_set = []; slow_factor = 1 }
             :: List.mapi
                  (fun i _ -> { s with slow_set = remove_at s.slow_set i })
                  s.slow_set
           else [])
        @
        if s.slow_factor > 1 then [ { s with slow_factor = 1 } ] else [])
    in
    (* 3. delay the crashes (larger jumps first) *)
    let delays =
      Seq.concat_map
        (fun i ->
          List.to_seq
            (List.map
               (fun d ->
                 { s with
                   crashes =
                     List.mapi
                       (fun j x -> if j = i then { x with at = x.at + d } else x)
                       s.crashes })
               [ 16; 4; 1 ]))
        (Seq.init n Fun.id)
    in
    Seq.append drops (Seq.append link delays)
end
