open Types

(* Unit coverage is a dense bitset (one bit per unit, 1.25 MB at n=10^7)
   plus a sparse overflow table for the rare units performed more than once
   — the redundant work every protocol here tries to bound. This keeps
   [record_work] allocation-free on the first-performance path (the kernel
   hot loop), and makes [units_covered]/[all_units_done] O(1) instead of an
   O(n) fold per oracle query. *)
type t = {
  np : int;
  nu : int;
  mutable msgs : int;
  mutable wrk : int;
  mutable max_round : round;
  mutable n_crashes : int;
  mutable n_terminated : int;
  mutable n_restarts : int;
  mutable n_persists : int;
  mutable n_corruptions : int;
  mutable n_rejected : int;
  covered_bits : Bytes.t;
  mutable covered_n : int;
  redone : (int, int) Hashtbl.t; (* unit -> multiplicity, only when >= 2 *)
  per_work : int array;
  per_msgs : int array;
  per_persists : int array;
}

let create ~n_processes ~n_units =
  {
    np = n_processes;
    nu = n_units;
    msgs = 0;
    wrk = 0;
    max_round = 0;
    n_crashes = 0;
    n_terminated = 0;
    n_restarts = 0;
    n_persists = 0;
    n_corruptions = 0;
    n_rejected = 0;
    covered_bits = Bytes.make ((max 1 n_units + 7) / 8) '\000';
    covered_n = 0;
    redone = Hashtbl.create 8;
    per_work = Array.make (max 1 n_processes) 0;
    per_msgs = Array.make (max 1 n_processes) 0;
    per_persists = Array.make (max 1 n_processes) 0;
  }

let n_processes t = t.np
let n_units t = t.nu

let record_send t pid =
  t.msgs <- t.msgs + 1;
  t.per_msgs.(pid) <- t.per_msgs.(pid) + 1

let bit_is_set t u = Char.code (Bytes.unsafe_get t.covered_bits (u lsr 3)) land (1 lsl (u land 7)) <> 0

let bit_set t u =
  let i = u lsr 3 in
  Bytes.unsafe_set t.covered_bits i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.covered_bits i) lor (1 lsl (u land 7))))

let record_work t pid unit_id =
  t.wrk <- t.wrk + 1;
  t.per_work.(pid) <- t.per_work.(pid) + 1;
  if unit_id >= 0 && unit_id < t.nu then
    if not (bit_is_set t unit_id) then begin
      bit_set t unit_id;
      t.covered_n <- t.covered_n + 1
    end
    else
      let m = match Hashtbl.find_opt t.redone unit_id with Some m -> m | None -> 1 in
      Hashtbl.replace t.redone unit_id (m + 1)

let record_round t r = if r > t.max_round then t.max_round <- r

(* A crash does not by itself advance the activity high-water mark: a silent
   crash is only *observed* by the kernel at the victim's next scheduling
   point, which may be far later than the actual failure. Rounds are advanced
   by live activity and by explicit [record_round] calls. *)
let record_crash t _pid _r = t.n_crashes <- t.n_crashes + 1

let record_terminate t _pid r =
  t.n_terminated <- t.n_terminated + 1;
  record_round t r

(* A restart is adversary-scheduled activity: the rejoiner is stepped in its
   restart round, so the round high-water mark advances through the usual
   live-activity path; like [record_crash] this only counts. *)
let record_restart t _pid _r = t.n_restarts <- t.n_restarts + 1

let record_persist t pid _r =
  t.n_persists <- t.n_persists + 1;
  t.per_persists.(pid) <- t.per_persists.(pid) + 1

(* Adversary activity (forged or mutated payloads) and the hardening layer's
   response (authenticator/quorum rejections). Neither advances rounds: both
   piggyback on live-activity scheduling. *)
let record_corruption t = t.n_corruptions <- t.n_corruptions + 1
let record_reject t = t.n_rejected <- t.n_rejected + 1

let messages t = t.msgs
let work t = t.wrk
let effort t = t.wrk + t.msgs
let rounds t = t.max_round
let crashes t = t.n_crashes
let terminated t = t.n_terminated
let restarts t = t.n_restarts
let persists t = t.n_persists
let corruptions t = t.n_corruptions
let rejected t = t.n_rejected

let unit_multiplicity t u =
  if u < 0 || u >= t.nu then invalid_arg "Metrics.unit_multiplicity";
  if not (bit_is_set t u) then 0
  else match Hashtbl.find_opt t.redone u with Some m -> m | None -> 1

let units_covered t = t.covered_n

let all_units_done t = t.covered_n = t.nu

let work_by t pid = t.per_work.(pid)
let messages_by t pid = t.per_msgs.(pid)
let persists_by t pid = t.per_persists.(pid)

let pp_summary ppf t =
  Format.fprintf ppf
    "work=%d msgs=%d effort=%d rounds=%d crashes=%d terminated=%d covered=%d/%d"
    t.wrk t.msgs (effort t) t.max_round t.n_crashes t.n_terminated
    (units_covered t) t.nu;
  if t.n_restarts > 0 || t.n_persists > 0 then
    Format.fprintf ppf " restarts=%d persists=%d" t.n_restarts t.n_persists;
  if t.n_corruptions > 0 || t.n_rejected > 0 then
    Format.fprintf ppf " corruptions=%d rejected=%d" t.n_corruptions
      t.n_rejected
