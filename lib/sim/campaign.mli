(** Adversary campaign engine: systematic search of the crash /
    partial-delivery fault space, with greedy shrinking of failing schedules
    and a replayable line-based serialization.

    The paper's adversary may crash a process {e mid-broadcast} so that
    "only some subset of the processes receive the message" (§2). A campaign
    explores that space: it generates {!Schedule.t} values — pure data,
    unlike the closures in {!Fault} — runs each through a caller-supplied
    execution function, and judges the result with a stack of
    {!type:oracle}s. Any failure is shrunk on the spot to a locally-minimal
    counterexample and can be written out, replayed and re-judged exactly.

    The engine is protocol-agnostic; [Doall.Fuzz] instantiates it for the
    paper's protocols and [doall_cli fuzz] / [doall_cli replay] expose it on
    the command line. *)

open Types

module Schedule : sig
  (** A replayable fault schedule. *)

  type mode =
    | Silent  (** dead from round [at]: takes no action in it or later *)
    | Acting of { keep_work : bool; delivery : Fault.delivery }
        (** crash at the first round [>= at] in which the victim acts, with
            the given partial-delivery cut — the mid-broadcast adversary *)

  type entry = { victim : pid; at : round; mode : mode }

  type t = {
    meta : (string * string) list;
        (** replay context (protocol, n, t, seed, …). Keys must be single
            tokens; values must not contain newlines. *)
    entries : entry list;
  }

  val make : ?meta:(string * string) list -> entry list -> t

  val meta : t -> string -> string option

  val add_meta : t -> (string * string) list -> t
  (** Appends bindings, replacing keys already present (order of existing
      keys is preserved). *)

  val to_fault : t -> Fault.t
  (** A fresh fault plan realizing the schedule. When several entries name
      the same victim, the earliest [at] wins. *)

  val print : t -> string
  (** Line-based text format:
      {v
      schedule v1
      meta protocol a
      crash 0 @3 silent
      crash 1 @7 acting keep all
      crash 2 @5 acting drop prefix 1
      crash 4 @2 acting drop indices 0,2,5
      end
      v} *)

  val parse : string -> (t, string) result
  (** Inverse of {!print}: [parse (print s) = Ok s] for every schedule
      respecting the meta constraints above. Blank lines and [#] comments
      are skipped. *)

  val pp : Format.formatter -> t -> unit
  (** One-line human summary (not the serialization). *)
end

(** {1 Schedule generation} *)

val exhaustive :
  t:int ->
  window:round ->
  ?round_step:int ->
  modes:Schedule.mode list ->
  unit ->
  Schedule.t Seq.t
(** Every schedule over: victim sets leaving at least one survivor × crash
    rounds on a [round_step] grid (default 1) within [0, window] × one mode
    per victim. Lazily produced; the space has
    [Σ_{k<t} C(t,k) · ((window/round_step + 1) · |modes|)^k] elements, so
    keep [t] tiny. *)

val default_modes : Schedule.mode list
(** Silent, crash-keeping-all-messages, and mid-broadcast cuts
    [Prefix 0] / [Prefix 1] — the adversary repertoire of the paper's
    proofs. *)

val sample : Dhw_util.Prng.t -> t:int -> window:round -> Schedule.t
(** One random schedule: 0 to t-1 distinct victims, uniform crash rounds in
    [0, window], modes drawn among silent, full-delivery, prefix and
    index-subset cuts. Deterministic in the generator state. *)

(** {1 Oracles} *)

type check_result =
  | Pass
  | Pass_margin of float
      (** passed; the float is a utilization ratio (measured/bound) reported
          in campaign statistics *)
  | Fail of string  (** violation, with human-readable detail *)

type 'r oracle = { name : string; check : 'r -> check_result }

val first_failure : 'r oracle list -> 'r -> (string * string) option
(** [(oracle name, detail)] of the first failing oracle, if any. *)

(** {1 Shrinking} *)

val shrink :
  run:(Schedule.t -> 'r) ->
  oracles:'r oracle list ->
  oracle:string ->
  ?budget:int ->
  Schedule.t ->
  Schedule.t * string * int
(** [shrink ~run ~oracles ~oracle s] greedily minimizes [s] while the named
    oracle keeps failing. Moves, tried in order with first-improvement
    restart: drop a victim entirely; widen its delivery cut toward [All]
    (also [Prefix k → Prefix (k+1)]); let it keep its work; delay its crash
    round. Returns the reduced schedule, the failure detail it still
    produces, and the number of executions spent ([budget] caps them,
    default 500). *)

(** {1 Campaign execution} *)

type failure = {
  schedule : Schedule.t;  (** as generated *)
  oracle : string;  (** first failing oracle *)
  detail : string;
  shrunk : Schedule.t;  (** locally-minimal counterexample *)
  shrunk_detail : string;
  shrink_executions : int;
}

type stats = {
  schedules : int;  (** campaign schedules judged *)
  executions : int;  (** total protocol runs, including shrinking *)
  failures : failure list;  (** in discovery order *)
  margins : (string * float) list;
      (** per oracle, the worst (largest) margin observed on passing runs *)
}

val run :
  run:(Schedule.t -> 'r) ->
  oracles:'r oracle list ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  Schedule.t Seq.t ->
  stats
(** Execute and judge every schedule; shrink each failure on the spot. Stops
    early once [max_failures] (default 3) failures have been collected. *)

val pp_stats : Format.formatter -> stats -> unit
