(** Adversary campaign engine: systematic search of the crash /
    partial-delivery fault space, with greedy shrinking of failing schedules
    and a replayable line-based serialization.

    The paper's adversary may crash a process {e mid-broadcast} so that
    "only some subset of the processes receive the message" (§2). A campaign
    explores that space: it generates {!Schedule.t} values — pure data,
    unlike the closures in {!Fault} — runs each through a caller-supplied
    execution function, and judges the result with a stack of
    {!type:oracle}s. Any failure is shrunk on the spot to a locally-minimal
    counterexample and can be written out, replayed and re-judged exactly.

    The engine is protocol-agnostic; [Doall.Fuzz] instantiates it for the
    paper's protocols and [doall_cli fuzz] / [doall_cli replay] expose it on
    the command line. *)

open Types

module Schedule : sig
  (** A replayable fault schedule. *)

  type mode =
    | Silent  (** dead from round [at]: takes no action in it or later *)
    | Acting of { keep_work : bool; delivery : Fault.delivery }
        (** crash at the first round [>= at] in which the victim acts, with
            the given partial-delivery cut — the mid-broadcast adversary *)
    | Restart
        (** revive the victim at round [at] (crash–recovery model): volatile
            state is wiped, stable storage survives, and the kernel asks the
            protocol's recovery hook for the rejoined state *)
    | Corrupt of Fault.tamper
        (** tamper with the victim's outgoing payloads at its first
            message-emitting round [>= at] (one-shot; requires a kernel
            tamper model, inert without one) *)
    | Byzantine
        (** the victim is adversary-controlled from round [at] on: it stops
            running the protocol and emits forged messages drawn from the
            tamper model (degrades to a silent crash without one) *)

  type entry = { victim : pid; at : round; mode : mode }

  type t = {
    meta : (string * string) list;
        (** replay context (protocol, n, t, seed, …). Keys must be single
            tokens; values must not contain newlines. *)
    entries : entry list;
  }

  val make : ?meta:(string * string) list -> entry list -> t

  val meta : t -> string -> string option

  val add_meta : t -> (string * string) list -> t
  (** Appends bindings, replacing keys already present (order of existing
      keys is preserved). *)

  val normalize : t -> t
(** The corruption/Byzantine normal form: per victim the earliest
      [Byzantine] entry wins (later ones are duplicates); a Byzantine pid's
      entries at or after its subversion round are dropped — Byzantine
      subsumes later crashes, and a subverted pid is never corrupted or
      restarted; duplicate [Corrupt] entries (same victim and round) keep
      the first. Idempotent, and applied by {!to_fault}, so a schedule and
      its normal form build identical fault plans. Crash/restart cycle
      normalization is separate (see {!to_fault}). *)

  val cost : t -> int
  (** The shrinker's cost objective — adversary power spent: 5 per
      [Byzantine] entry, 2 per [Corrupt], 1 per crash or restart. *)

  val to_fault : t -> Fault.t
  (** A fresh fault plan realizing the schedule. Entries are normalized into
      per-victim crash/restart cycles (sorted by round): within a cycle the
      earliest crash wins — the crash-only special case of which is the
      documented {!Fault.crash_silently_at} earliest-round rule — a restart
      must be strictly after its cycle's crash round, and a restart with no
      preceding crash is dropped. A victim may crash again after a restart:
      the plan advances to its next cycle when the kernel commits the
      revival. A restart whose victim is still up when its round arrives
      (e.g. an acting crash that had not fired yet) is dropped by the
      kernel, leaving the victim dead once the crash does fire —
      deterministic degradation to crash-stop. *)

  val restart_count : t -> int
  (** Number of [Restart] entries (scheduled, not necessarily committed). *)

  val print : t -> string
  (** Line-based text format:
      {v
      schedule v1
      meta protocol a
      crash 0 @3 silent
      crash 1 @7 acting keep all
      crash 2 @5 acting drop prefix 1
      crash 4 @2 acting drop indices 0,2,5
      restart 0 @9
      corrupt 3 @4 lying-view salt 17
      byz 5 @6
      end
      v} *)

  val parse : string -> (t, string) result
  (** Inverse of {!print}: [parse (print s) = Ok s] for every schedule
      respecting the meta constraints above. Blank lines and [#] comments
      are skipped. *)

  val pp : Format.formatter -> t -> unit
  (** One-line human summary (not the serialization). *)
end

(** {1 Schedule generation} *)

val exhaustive :
  t:int ->
  window:round ->
  ?round_step:int ->
  modes:Schedule.mode list ->
  unit ->
  Schedule.t Seq.t
(** Every schedule over: victim sets leaving at least one survivor × crash
    rounds on a [round_step] grid (default 1) within [0, window] × one mode
    per victim. Lazily produced; the space has
    [Σ_{k<t} C(t,k) · ((window/round_step + 1) · |modes|)^k] elements, so
    keep [t] tiny. *)

val default_modes : Schedule.mode list
(** Silent, crash-keeping-all-messages, and mid-broadcast cuts
    [Prefix 0] / [Prefix 1] — the adversary repertoire of the paper's
    proofs. *)

val sample : Dhw_util.Prng.t -> t:int -> window:round -> Schedule.t
(** One random schedule: 0 to t-1 distinct victims, uniform crash rounds in
    [0, window], modes drawn among silent, full-delivery, prefix and
    index-subset cuts. Deterministic in the generator state. *)

val sample_recovery :
  Dhw_util.Prng.t -> t:int -> window:round -> restart_gap:int -> Schedule.t
(** A crash+restart storm: the victims of {!sample}, where each victim is
    additionally revived with probability 3/4 after a downtime of up to
    [restart_gap] rounds, and a revived victim gets a whole second
    crash(/restart) cycle with probability 1/4. Deterministic in the
    generator state. *)

val sample_byz :
  Dhw_util.Prng.t -> t:int -> window:round -> byz:int -> Schedule.t
(** A corruption/Byzantine storm: exactly [byz] subverted pids (uniform
    activation rounds in [0, window]), crashes among the honest remainder
    only — at least one honest pid always survives — and up to [t] one-shot
    [Corrupt] entries with random kinds and salts. No restarts.
    Deterministic in the generator state; requires [0 <= byz < t]. *)

(** {1 Oracles} *)

type check_result =
  | Pass
  | Pass_margin of float
      (** passed; the float is a utilization ratio (measured/bound) reported
          in campaign statistics *)
  | Fail of string  (** violation, with human-readable detail *)

type 'r oracle = { name : string; check : 'r -> check_result }

val first_failure : 'r oracle list -> 'r -> (string * string) option
(** [(oracle name, detail)] of the first failing oracle, if any. *)

(** {1 Shrinking} *)

val schedule_candidates : Schedule.t -> Schedule.t Seq.t
(** The shrink moves for round-synchronous schedules, tried in order: drop a
    victim entirely; weaken a [Byzantine] entry to a [Silent] crash at the
    same round; widen a crash's delivery cut toward [All] (also
    [Prefix k → Prefix (k+1)]); let it keep its work; delay its crash
    round. *)

val shrink :
  run:('a -> 'r) ->
  oracles:'r oracle list ->
  oracle:string ->
  candidates:('a -> 'a Seq.t) ->
  ?cost:('a -> int) ->
  ?budget:int ->
  'a ->
  'a * string * int
(** [shrink ~run ~oracles ~oracle ~candidates s] greedily minimizes [s]
    while the named oracle keeps failing, restarting from the first
    improving candidate. The engine is schedule-agnostic: [candidates]
    proposes the simplifications ({!schedule_candidates} for round
    schedules, {!Async.candidates} for asynchronous ones). With [?cost]
    (e.g. {!Schedule.cost}) a candidate is considered only if its cost does
    not exceed the incumbent's — the walk then minimizes adversary power,
    reporting the {e cheapest} still-failing schedule; the cost filter is
    free (checked before running the candidate). Returns the reduced
    schedule, the failure detail it still produces, and the number of
    executions spent ([budget] caps them, default 500). *)

(** {1 Campaign execution} *)

type 'a failure = {
  schedule : 'a;  (** as generated *)
  oracle : string;  (** first failing oracle *)
  detail : string;
  shrunk : 'a;  (** locally-minimal counterexample *)
  shrunk_detail : string;
  shrink_executions : int;
}

type 'a stats = {
  schedules : int;  (** campaign schedules judged *)
  executions : int;  (** total protocol runs, including shrinking *)
  failures : 'a failure list;  (** in discovery order *)
  margins : (string * float) list;
      (** per oracle, the worst (largest) margin observed on passing runs *)
}

val run :
  run:('a -> 'r) ->
  oracles:'r oracle list ->
  candidates:('a -> 'a Seq.t) ->
  ?cost:('a -> int) ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  'a Seq.t ->
  'a stats
(** Execute and judge every schedule; shrink each failure on the spot
    ([?cost] is forwarded to {!shrink}). Stops early once [max_failures]
    (default 3) failures have been collected. *)

val run_parallel :
  ?jobs:int ->
  run:('a -> 'r) ->
  oracles:'r oracle list ->
  candidates:('a -> 'a Seq.t) ->
  ?cost:('a -> int) ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  'a Seq.t ->
  'a stats
(** The multicore engine: execute and judge the schedules on [jobs] worker
    domains (default {!Pool.default_jobs}; [1] is a plain sequential loop),
    then reduce the verdicts strictly in schedule order. Results are
    byte-identical for every [jobs] value. Shrinking stays sequential — the
    greedy walk's local-minimality argument depends on candidate order.
    Differs from {!run} only in early exit: the whole campaign is always
    executed, and the first [max_failures] failures in schedule order are
    kept; with no violations the two engines return identical stats. *)

val run_dispatch :
  ?jobs:int ->
  run:('a -> 'r) ->
  oracles:'r oracle list ->
  candidates:('a -> 'a Seq.t) ->
  ?cost:('a -> int) ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  'a Seq.t ->
  'a stats
(** [run] when [jobs] is omitted, [run_parallel ~jobs] otherwise — the
    switch behind every front-end's [?jobs] parameter. *)

val pp_stats : Format.formatter -> 'a stats -> unit

(** {1 Asynchronous schedules} *)

module Async : sig
  (** A replayable fault schedule for the asynchronous executor
      ([Asim.Event_sim]): crash ticks plus the link adversary — message
      loss, duplication and slow endpoints — and the executor seed, so a
      run is reproduced bit-for-bit. Probabilities are basis points
      (hundredths of a percent, so 3000 = 30%): integers serialize
      exactly, floats would not. *)

  type crash = { victim : pid; at : int  (** tick, not round *) }

  type sever = { s_src : pid; s_dst : pid; s_from : int; s_to : int }
  (** A directed link cut: every message from [s_src] to [s_dst] sent while
      the clock is within [[s_from, s_to]] is lost (deterministically — no
      adversary coin is consumed). *)

  type t = {
    meta : (string * string) list;
        (** replay context (protocol, n, t, …) under the same token
            constraints as {!Schedule.t} meta *)
    crashes : crash list;
    restarts : crash list;
        (** respawn ticks for previously crashed pids. Only the real-process
            fleet executor ([async-net-run]) enforces them — as [--recover]
            respawns reading the on-disk checkpoint; the simulator treats
            every crash as final, which is the conservative differential
            baseline ([--diff] compares work/units, both unaffected). *)
    drop_bp : int;  (** per-message loss probability, basis points *)
    dup_bp : int;  (** per-message duplication probability, basis points *)
    corrupt_bp : int;
        (** per-message in-flight corruption probability, basis points;
            inert unless the executor is given a tamper model *)
    byz : crash list;
        (** pids adversary-controlled from the given tick on: they stop
            running the protocol and emit forged messages drawn from the
            executor's tamper model *)
    slow_set : pid list;  (** endpoints with inflated delay bound *)
    slow_factor : int;
    severs : sever list;  (** directed link cuts over tick windows *)
    max_delay : int;  (** base delivery bound (ticks) *)
    max_lag : int;  (** local-step lag bound (ticks) *)
    seed : int64;  (** executor seed — fixes every adversary coin *)
  }

  val make :
    ?meta:(string * string) list ->
    ?crashes:crash list ->
    ?restarts:crash list ->
    ?drop_bp:int ->
    ?dup_bp:int ->
    ?corrupt_bp:int ->
    ?byz:crash list ->
    ?slow_set:pid list ->
    ?slow_factor:int ->
    ?severs:sever list ->
    ?max_delay:int ->
    ?max_lag:int ->
    ?seed:int64 ->
    unit ->
    t
  (** Defaults: no crashes, no restarts, perfect link, no corruption, no
      Byzantine pids, no severs, [max_delay 5], [max_lag 3], [seed 1].
      Raises [Invalid_argument] on a sever window with [s_from < 0] or
      [s_to < s_from]. *)

  val meta : t -> string -> string option

  val add_meta : t -> (string * string) list -> t
  (** Appends bindings, replacing keys already present. *)

  val print : t -> string
  (** Line-based text format:
      {v
      async-schedule v1
      meta protocol async-a
      link drop 1200 dup 300
      corrupt 250
      slow 1,3 factor 4
      delay 5 lag 3
      seed 42
      crash 0 @17
      byz 2 @5
      end
      v}
      An empty slow set prints as [slow - factor 1]; the [corrupt] line is
      omitted when [corrupt_bp = 0], and [byz] lines when there are no
      Byzantine pids. Restart entries print as [restart 0 @40] and sever
      entries as [sever 0 1 @10 @40] (one line each, after the crash/byz
      lines); both are omitted when empty, so pre-existing schedules print
      byte-identically. *)

  val parse : string -> (t, string) result
  (** Inverse of {!print}: [parse (print s) = Ok s] for every schedule
      respecting the meta constraints. Blank lines and [#] comments are
      skipped; [link] / [slow] / [delay] / [seed] lines are each optional
      (defaulting as in {!make}) and may appear in any order. *)

  val pp : Format.formatter -> t -> unit
  (** One-line human summary (not the serialization). *)

  val sample : Dhw_util.Prng.t -> t:int -> window:int -> t
  (** One random async schedule: drop probability up to 30%, duplication up
      to 20%, each endpoint slow with probability 1/4, 0 to t-1 distinct
      crash victims with ticks in [0, window], and a fresh executor seed.
      Deterministic in the generator state. *)

  val sample_byz : Dhw_util.Prng.t -> t:int -> window:int -> byz:int -> t
  (** A corruption/Byzantine async storm: loss up to 15%, duplication up to
      10%, in-flight corruption up to 20%, exactly [byz] subverted pids
      with activation ticks in [0, window], and crashes among the honest
      remainder only (at least one honest pid survives). Deterministic in
      the generator state; requires [0 <= byz < t]. *)

  val cost : t -> int
  (** The shrinker's cost objective for async schedules: 5 per Byzantine
      pid, 2 if the corruption rate is nonzero, 1 per crash. *)

  val candidates : t -> t Seq.t
  (** Shrink moves, tried in order: drop a crash; calm the link (zero or
      halve the loss rate, zero the duplication rate, zero or halve the
      corruption rate, shrink the slow set, reset the slow factor); drop a
      Byzantine pid or demote it to a crash at the same tick; delay a
      crash. *)
end
