(** Domain-based parallel work pool.

    Runs independent, deterministic tasks — adversary schedule executions,
    bench cells — on a set of worker domains and returns their results in
    task order, so the outcome is byte-identical whatever the worker count
    or scheduling. The task queue is the task array plus an atomic cursor
    (a bounded deque popped one task at a time; tasks are coarse, so no
    chunking is needed). A raising task does not abort its siblings: every
    task still runs, and the lowest-index exception is re-raised after the
    join, with its backtrace. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the number of cores the runtime
    recommends saturating ([nproc] in practice). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] is [Array.map f tasks] computed on [jobs] worker
    domains (default {!default_jobs}; clamped to the task count; [1] runs
    in the calling domain with no spawns). [f] must not touch shared
    mutable state. @raise Invalid_argument if [jobs < 1]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}. *)

val map_seeded :
  ?jobs:int -> seed:int64 -> (Dhw_util.Prng.t -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map}, but task [i] also receives the independent PRNG
    [Prng.stream seed i] — per-task seed splitting, so randomized tasks
    stay deterministic in [seed] alone, independent of worker count. *)

val map_reduce :
  ?jobs:int ->
  f:('a -> 'b) ->
  fold:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** Parallel map, then a sequential fold over the results in task order —
    an order-independent deterministic reduction, safe for non-associative
    folds. *)
