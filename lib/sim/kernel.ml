open Types

type run_outcome = Completed | Stalled of round | Round_limit of round

type 'm result = {
  metrics : Metrics.t;
  statuses : status array;
  outcome : run_outcome;
}

type 'm tamper_model = {
  mutate : Fault.tamper -> src:pid -> dst:pid -> at:round -> 'm -> 'm;
  forge : pid -> at:round -> 'm send list;
}

type 'm config = {
  n_processes : int;
  n_units : int;
  fault : Fault.t;
  max_rounds : round;
  trace : Trace.t option;
  obs : Obs.sink option;
  show : 'm -> string;
  spans : Obs.sink option;
  tamper : 'm tamper_model option;
}

let config ?(fault = Fault.none) ?(max_rounds = max_int / 2) ?trace ?obs
    ?(show = fun _ -> "<msg>") ?spans ?tamper ~n_processes ~n_units () =
  { n_processes; n_units; fault; max_rounds; trace; obs; show; spans; tamper }

(* The round loop is written to allocate nothing of its own: inboxes are a
   pair of preallocated per-destination arrays (messages sent in round r into
   one buffer while the other is being consumed, swapped each delivery),
   wakeups live in an int array (-1 = none) shadowed by a lazy binary
   min-heap so the next active round is found in O(log t) instead of an O(t)
   scan, and every trace/obs event is constructed only when a sink is
   actually attached. When the fault plan is statically trivial
   ({!Fault.is_trivial}) and no tamper model is armed, the per-round sweep
   over all t processes collapses to just the processes that are due — the
   protocol's own activity is then the only per-round cost. *)

let run ?recover ?metrics cfg proc =
  let t = cfg.n_processes in
  if t <= 0 then invalid_arg "Kernel.run: need at least one process";
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.create ~n_processes:t ~n_units:cfg.n_units
  in
  (* Default recovery: volatile state is lost, the process re-initialises
     from scratch (amnesiac rejoin). Recovery-aware harnesses supply a hook
     that reads stable storage instead. *)
  let recover =
    match recover with Some f -> f | None -> fun pid _r -> proc.init pid
  in
  let fast = Fault.is_trivial cfg.fault && Option.is_none cfg.tamper in
  let observing = Option.is_some cfg.trace || Option.is_some cfg.obs in
  let has_obs = Option.is_some cfg.obs in
  let statuses = Array.make t Running in
  let wakeups = Array.make t (-1) in

  (* Lazy min-heap over (wakeup round, pid), lexicographic. Entries are
     pushed on every wakeup change and validated against [wakeups]/[statuses]
     when they surface, so stale entries cost one pop each, ever. *)
  let heap_w = ref (Array.make (max 8 (2 * t)) 0) in
  let heap_p = ref (Array.make (max 8 (2 * t)) 0) in
  let heap_n = ref 0 in
  let heap_less i j =
    let hw = !heap_w in
    hw.(i) < hw.(j) || (hw.(i) = hw.(j) && !heap_p.(i) < !heap_p.(j))
  in
  let heap_swap i j =
    let hw = !heap_w and hp = !heap_p in
    let w = hw.(i) and p = hp.(i) in
    hw.(i) <- hw.(j);
    hp.(i) <- hp.(j);
    hw.(j) <- w;
    hp.(j) <- p
  in
  let heap_push w p =
    if !heap_n = Array.length !heap_w then begin
      let cap = 2 * !heap_n in
      let nw = Array.make cap 0 and np = Array.make cap 0 in
      Array.blit !heap_w 0 nw 0 !heap_n;
      Array.blit !heap_p 0 np 0 !heap_n;
      heap_w := nw;
      heap_p := np
    end;
    !heap_w.(!heap_n) <- w;
    !heap_p.(!heap_n) <- p;
    incr heap_n;
    let i = ref (!heap_n - 1) in
    while !i > 0 && heap_less !i ((!i - 1) / 2) do
      heap_swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let heap_pop () =
    (* caller guarantees non-empty; returns nothing — read top first *)
    decr heap_n;
    if !heap_n > 0 then begin
      heap_swap 0 !heap_n;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < !heap_n && heap_less l !s then s := l;
        if r < !heap_n && heap_less r !s then s := r;
        if !s = !i then continue := false
        else begin
          heap_swap !i !s;
          i := !s
        end
      done
    end
  in
  let entry_valid w p = statuses.(p) = Running && wakeups.(p) = w in
  (* Smallest valid wakeup, discarding stale entries; max_int when none. *)
  let rec heap_peek () =
    if !heap_n = 0 then max_int
    else
      let w = !heap_w.(0) and p = !heap_p.(0) in
      if entry_valid w p then w
      else begin
        heap_pop ();
        heap_peek ()
      end
  in
  let set_wakeup p w =
    wakeups.(p) <- w;
    if w >= 0 then heap_push w p
  in

  let states =
    Array.init t (fun pid ->
        let s, w = proc.init pid in
        (match w with
        | Some w0 when w0 < 0 ->
            invalid_arg "Kernel.run: negative initial wakeup"
        | Some w0 -> set_wakeup pid w0
        | None -> wakeups.(pid) <- -1);
        s)
  in

  (* Messages in flight: sent during [pending_sent_at] into buffer
     [pending_idx], delivered at [pending_sent_at + 1]. At most one round's
     worth exists at any time, so two buffers suffice. *)
  let bufs = [| Array.make t ([] : 'm envelope list); Array.make t [] |] in
  let touched = [| Array.make t 0; Array.make t 0 |] in
  let touched_n = [| 0; 0 |] in
  let pending_sent_at = ref (-1) in
  let pending_idx = ref 0 in
  let out_idx = ref 0 in
  let any_sent = ref false in
  let enqueue dst env =
    let b = bufs.(!out_idx) in
    if b.(dst) == [] then begin
      touched.(!out_idx).(touched_n.(!out_idx)) <- dst;
      touched_n.(!out_idx) <- touched_n.(!out_idx) + 1
    end;
    b.(dst) <- env :: b.(dst);
    any_sent := true
  in

  let trace_ev e =
    (match cfg.trace with Some tr -> Trace.record tr e | None -> ());
    match cfg.obs with Some sink -> sink (Obs.of_trace_event e) | None -> ()
  in
  let obs_ev e = match cfg.obs with Some sink -> sink e | None -> () in
  (* Incarnation counters for span context: 0 until the first restart. *)
  let incs = Array.make t 0 in
  let with_span ~name ~pid ~inc r f =
    match cfg.spans with
    | None -> f ()
    | Some sink ->
        sink
          (Obs.Span_begin
             { name; pid; at = r; inc; ts_us = Dhw_util.Clock.now_us () });
        let res = f () in
        sink
          (Obs.Span_end
             { name; pid; at = r; inc; ts_us = Dhw_util.Clock.now_us () });
        res
  in
  let alive pid = statuses.(pid) = Running in
  (* Byzantine pids only act out their subversion when the run carries a
     tamper model (the model says what "arbitrary-but-typed lies" look like
     for this protocol's message type). Without one, a Byzantine entry
     degrades to a silent crash at its activation round. *)
  let byz_active pid r =
    match (cfg.tamper, Fault.byzantine_from cfg.fault pid) with
    | Some _, Some b0 -> b0 <= r
    | _ -> false
  in
  let byz_degraded_crash pid r =
    match (cfg.tamper, Fault.byzantine_from cfg.fault pid) with
    | None, Some b0 -> b0 <= r
    | _ -> false
  in
  (* A subverted pid must be scheduled at its activation round even if the
     protocol put it to sleep beyond it. *)
  (match cfg.tamper with
  | Some _ ->
      for pid = 0 to t - 1 do
        match Fault.byzantine_from cfg.fault pid with
        | Some b0 ->
            set_wakeup pid
              (match wakeups.(pid) with -1 -> b0 | w -> min w b0)
        | None -> ()
      done
  | None -> ());
  (* The adversary's restart schedule, sorted by (round, pid) so revivals in
     the same round happen in pid order — determinism. An entry is *applicable*
     while its pid is down from a round before the scheduled one; entries for
     up or terminated pids are dropped when their round arrives. *)
  let restart_queue =
    ref (List.sort compare (List.map (fun (p, r) -> (r, p)) (Fault.restarts cfg.fault)))
  in
  let applicable (rr, pid) =
    pid >= 0 && pid < t
    && match statuses.(pid) with Crashed rc -> rr > rc | _ -> false
  in
  let pending_restart () = List.exists applicable !restart_queue in
  let apply_restarts r =
    let rec go () =
      match !restart_queue with
      | (rr, pid) :: rest when rr <= r ->
          restart_queue := rest;
          if applicable (rr, pid) then begin
            statuses.(pid) <- Running;
            incs.(pid) <- incs.(pid) + 1;
            let s, w = recover pid r in
            states.(pid) <- s;
            (match w with Some w0 -> set_wakeup pid w0 | None -> wakeups.(pid) <- -1);
            Fault.note_restart cfg.fault pid r;
            Metrics.record_restart metrics pid r;
            trace_ev (Trace.Restarted_ev { pid; round = r })
          end;
          go ()
      | _ -> ()
    in
    go ()
  in
  let rec min_restart acc = function
    | [] -> acc
    | (rr, p) :: rest ->
        min_restart (if applicable (rr, p) && rr < acc then rr else acc) rest
  in
  let next_round () =
    (* Smallest round at which anything can happen; max_int = nothing. *)
    let c = heap_peek () in
    let c = if !pending_sent_at >= 0 then min c (!pending_sent_at + 1) else c in
    min_restart c !restart_queue
  in
  let apply_delivery_filter decision sends =
    match decision with
    | Fault.All -> (sends, [])
    | Fault.Prefix k ->
        let rec split i acc = function
          | [] -> (List.rev acc, [])
          | rest when i = k -> (List.rev acc, rest)
          | s :: rest -> split (i + 1) (s :: acc) rest
        in
        split 0 [] sends
    | Fault.Indices idx ->
        let keep = List.sort_uniq compare idx in
        let kept, dropped =
          List.fold_left
            (fun (i, (k, d)) s ->
              if List.mem i keep then (i + 1, (s :: k, d)) else (i + 1, (k, s :: d)))
            (0, ([], []))
            sends
          |> snd
        in
        (List.rev kept, List.rev dropped)
  in
  let n_running = ref t in
  let rec commit_work pid r = function
    | [] -> ()
    | u :: rest ->
        Metrics.record_work metrics pid u;
        if observing then trace_ev (Trace.Worked { pid; round = r; unit_id = u });
        commit_work pid r rest
  in
  let rec commit_sends pid r = function
    | [] -> ()
    | { dst; payload } :: rest ->
        Metrics.record_send metrics pid;
        if observing then
          trace_ev (Trace.Sent { src = pid; dst; round = r; what = cfg.show payload });
        if dst >= 0 && dst < t then enqueue dst { src = pid; sent_at = r; payload };
        commit_sends pid r rest
  in
  let rec trace_dropped pid r = function
    | [] -> ()
    | { dst; payload } :: rest ->
        trace_ev (Trace.Dropped { src = pid; dst; round = r; what = cfg.show payload });
        trace_dropped pid r rest
  in
  let rec forge_loop pid r = function
    | [] -> ()
    | { dst; payload } :: rest ->
        Metrics.record_corruption metrics;
        if has_obs then obs_ev (Obs.Tamper { pid; at = r });
        if dst >= 0 && dst < t then enqueue dst { src = pid; sent_at = r; payload };
        forge_loop pid r rest
  in
  (* Link tampering: a consuming query — asked only when there are messages
     to corrupt and a model to corrupt them with. *)
  let tampered_sends pid r (o : ('s, 'm) outcome) =
    match cfg.tamper with
    | Some tm when o.sends <> [] -> (
        match Fault.corrupts cfg.fault pid r with
        | Some tam ->
            List.map
              (fun { dst; payload } ->
                Metrics.record_corruption metrics;
                if has_obs then obs_ev (Obs.Tamper { pid; at = r });
                { dst; payload = tm.mutate tam ~src:pid ~dst ~at:r payload })
              o.sends
        | None -> o.sends)
    | _ -> o.sends
  in
  let step_pid r pid mail =
    let w = wakeups.(pid) in
    let due = w >= 0 && w <= r in
    if mail != [] || due then begin
      if observing then trace_ev (Trace.Stepped { pid; round = r });
      let o =
        match cfg.spans with
        | None -> proc.step pid r states.(pid) mail
        | Some _ ->
            with_span ~name:"step" ~pid ~inc:incs.(pid) r (fun () ->
                proc.step pid r states.(pid) mail)
      in
      let decision =
        if fast then Fault.Survive
        else
          Fault.on_step cfg.fault
            {
              Fault.sv_pid = pid;
              sv_round = r;
              sv_sends = List.length o.sends;
              sv_works = List.length o.work;
              sv_terminating = o.terminate;
              sv_works_done_before = Metrics.work_by metrics pid;
            }
      in
      match decision with
      | Fault.Survive ->
          states.(pid) <- o.state;
          commit_work pid r o.work;
          commit_sends pid r (tampered_sends pid r o);
          Metrics.record_round metrics r;
          if o.terminate then begin
            statuses.(pid) <- Terminated r;
            wakeups.(pid) <- -1;
            decr n_running;
            Metrics.record_terminate metrics pid r;
            if observing then trace_ev (Trace.Terminated_ev { pid; round = r })
          end
          else begin
            match o.wakeup with
            | Some w ->
                if w <= r then
                  invalid_arg
                    (Printf.sprintf
                       "Kernel.run: process %d at round %d asked for non-future wakeup %d"
                       pid r w);
                set_wakeup pid w
            | None -> wakeups.(pid) <- -1
          end
      | Fault.Crash { keep_work; delivery } ->
          let delivered, dropped = apply_delivery_filter delivery o.sends in
          (* Program-order causality: within a round, work precedes sends, so
             a crash that lets any message out must also let the work count
             (otherwise a victim could announce work it never performed). *)
          let keep_work = keep_work || delivered <> [] in
          if keep_work then commit_work pid r o.work;
          commit_sends pid r delivered;
          if observing then trace_dropped pid r dropped;
          statuses.(pid) <- Crashed r;
          wakeups.(pid) <- -1;
          Fault.note_crash cfg.fault pid r;
          Metrics.record_crash metrics pid r;
          Metrics.record_round metrics r;
          if observing then trace_ev (Trace.Crashed_ev { pid; round = r })
    end
  in
  (* The general sweep: every live pid is visited so silent crashes and
     Byzantine activations land at exactly the adversary's round. *)
  let slow_pids r delivering del_idx =
    for pid = 0 to t - 1 do
      if alive pid then begin
        if Fault.crashed_by cfg.fault pid r || byz_degraded_crash pid r then begin
          statuses.(pid) <- Crashed r;
          Fault.note_crash cfg.fault pid r;
          Metrics.record_crash metrics pid r;
          if observing then trace_ev (Trace.Crashed_ev { pid; round = r })
        end
        else if byz_active pid r then begin
          (* Adversary-controlled: the protocol state is abandoned; the
             tamper model forges this round's messages. Forged traffic is
             counted as corruption, not as honest sends — audits and the
             message bounds judge only what honest processes do. *)
          (match cfg.tamper with
          | Some tm -> forge_loop pid r (tm.forge pid ~at:r)
          | None -> ());
          set_wakeup pid (r + 1)
        end
        else step_pid r pid (if delivering then bufs.(del_idx).(pid) else [])
      end
    done
  in
  (* The trivial-fault fast path: only the pids that are actually due — a
     message in the inbox or a wakeup at exactly this round — are visited,
     in pid order, merging the (already (round, pid)-ordered) heap pops with
     the sorted inbox-destination list. Observably identical to the sweep:
     with a trivial plan the non-due pids do nothing there either. *)
  let due_scratch = Array.make t 0 in
  let fast_pids r delivering del_idx =
    let nw = ref 0 in
    while !heap_n > 0 && !heap_w.(0) <= r do
      let w = !heap_w.(0) and p = !heap_p.(0) in
      heap_pop ();
      if
        w = r && entry_valid w p
        && (!nw = 0 || due_scratch.(!nw - 1) <> p)
      then begin
        due_scratch.(!nw) <- p;
        incr nw
      end
    done;
    let mail = touched.(del_idx) in
    let mail_n = if delivering then touched_n.(del_idx) else 0 in
    if mail_n > 0 then begin
      (* insertion sort: destinations arrive nearly ordered (senders run in
         pid order and broadcast to ascending member lists) *)
      for i = 1 to mail_n - 1 do
        let v = mail.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && mail.(!j) > v do
          mail.(!j + 1) <- mail.(!j);
          decr j
        done;
        mail.(!j + 1) <- v
      done
    end;
    let i = ref 0 and j = ref 0 in
    let last = ref (-1) in
    while !i < !nw || !j < mail_n do
      let p =
        if !i >= !nw then mail.(!j)
        else if !j >= mail_n then due_scratch.(!i)
        else min due_scratch.(!i) mail.(!j)
      in
      if !i < !nw && due_scratch.(!i) = p then incr i;
      if !j < mail_n && mail.(!j) = p then incr j;
      if p <> !last then begin
        last := p;
        if alive p then
          step_pid r p (if delivering then bufs.(del_idx).(p) else [])
      end
    done
  in
  let cmp_src a b = compare a.src b.src in
  let deliver_commit r =
    (* Inboxes sorted by sender for determinism. *)
    let oi = !out_idx in
    let ta = touched.(oi) and b = bufs.(oi) in
    for i = 0 to touched_n.(oi) - 1 do
      let dst = ta.(i) in
      b.(dst) <- List.sort cmp_src b.(dst)
    done;
    pending_sent_at := r;
    pending_idx := oi
  in
  let round_body r =
    apply_restarts r;
    let delivering = !pending_sent_at >= 0 && !pending_sent_at + 1 = r in
    let del_idx = !pending_idx in
    if delivering then pending_sent_at := -1;
    out_idx := (if delivering then 1 - del_idx else del_idx);
    any_sent := false;
    if fast then fast_pids r delivering del_idx
    else slow_pids r delivering del_idx;
    (* consumed inboxes are cleared whether or not their pid was stepped
       (crashed and sleeping destinations lose their mail, as before) *)
    if delivering then begin
      let ta = touched.(del_idx) and b = bufs.(del_idx) in
      for i = 0 to touched_n.(del_idx) - 1 do
        b.(ta.(i)) <- []
      done;
      touched_n.(del_idx) <- 0
    end;
    if !any_sent then
      with_span ~name:"deliver" ~pid:(-1) ~inc:0 r (fun () -> deliver_commit r)
  in
  (* A subverted pid never terminates; completion is the honest pids'
     affair. Without a tamper model nothing changes: byzantine entries
     degraded to crashes and every pid still retires. *)
  let retired_or_subverted pid =
    is_retired statuses.(pid)
    ||
    match (cfg.tamper, Fault.byzantine_from cfg.fault pid) with
    | Some _, Some _ -> true
    | _ -> false
  in
  let all_retired () =
    if fast then !n_running = 0
    else
      let rec go pid = pid >= t || (retired_or_subverted pid && go (pid + 1)) in
      go 0
  in
  let rec loop r =
    if r > cfg.max_rounds then Round_limit r
    else begin
      (match cfg.spans with
      | None -> round_body r
      | Some _ -> with_span ~name:"round" ~pid:(-1) ~inc:0 r (fun () -> round_body r));
      if all_retired () && not (pending_restart ()) then Completed
      else begin
        let r' = next_round () in
        if r' = max_int then Stalled r
        else begin
          (* r' can equal r only if a wakeup request slipped through the
             strictness check, which [invalid_arg]s above; assert here. *)
          assert (r' > r);
          loop r'
        end
      end
    end
  in
  let outcome =
    let r0 = next_round () in
    if r0 = max_int then
      if Array.for_all is_retired statuses then Completed else Stalled 0
    else loop r0
  in
  { metrics; statuses; outcome }
