open Types

type run_outcome = Completed | Stalled of round | Round_limit of round

type 'm result = {
  metrics : Metrics.t;
  statuses : status array;
  outcome : run_outcome;
}

type 'm tamper_model = {
  mutate : Fault.tamper -> src:pid -> dst:pid -> at:round -> 'm -> 'm;
  forge : pid -> at:round -> 'm send list;
}

type 'm config = {
  n_processes : int;
  n_units : int;
  fault : Fault.t;
  max_rounds : round;
  trace : Trace.t option;
  obs : Obs.sink option;
  show : 'm -> string;
  spans : Obs.sink option;
  tamper : 'm tamper_model option;
}

let config ?(fault = Fault.none) ?(max_rounds = max_int / 2) ?trace ?obs
    ?(show = fun _ -> "<msg>") ?spans ?tamper ~n_processes ~n_units () =
  { n_processes; n_units; fault; max_rounds; trace; obs; show; spans; tamper }

let run ?recover ?metrics cfg proc =
  let t = cfg.n_processes in
  if t <= 0 then invalid_arg "Kernel.run: need at least one process";
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.create ~n_processes:t ~n_units:cfg.n_units
  in
  (* Default recovery: volatile state is lost, the process re-initialises
     from scratch (amnesiac rejoin). Recovery-aware harnesses supply a hook
     that reads stable storage instead. *)
  let recover =
    match recover with Some f -> f | None -> fun pid _r -> proc.init pid
  in
  let statuses = Array.make t Running in
  let wakeups = Array.make t None in
  let states =
    Array.init t (fun pid ->
        let s, w = proc.init pid in
        (match w with
        | Some w0 when w0 < 0 -> invalid_arg "Kernel.run: negative initial wakeup"
        | _ -> ());
        wakeups.(pid) <- w;
        s)
  in
  (* Messages in flight: sent during [fst pending], to be delivered at
     [fst pending + 1]. At most one round's worth exists at any time. *)
  let pending : (round * 'm envelope list array) option ref = ref None in
  let trace_ev e =
    (match cfg.trace with Some tr -> Trace.record tr e | None -> ());
    match cfg.obs with Some sink -> sink (Obs.of_trace_event e) | None -> ()
  in
  let obs_ev e = match cfg.obs with Some sink -> sink e | None -> () in
  (* Incarnation counters for span context: 0 until the first restart. *)
  let incs = Array.make t 0 in
  let with_span ~name ~pid ~inc r f =
    match cfg.spans with
    | None -> f ()
    | Some sink ->
        sink
          (Obs.Span_begin
             { name; pid; at = r; inc; ts_us = Dhw_util.Clock.now_us () });
        let res = f () in
        sink
          (Obs.Span_end
             { name; pid; at = r; inc; ts_us = Dhw_util.Clock.now_us () });
        res
  in
  let alive pid = statuses.(pid) = Running in
  (* Byzantine pids only act out their subversion when the run carries a
     tamper model (the model says what "arbitrary-but-typed lies" look like
     for this protocol's message type). Without one, a Byzantine entry
     degrades to a silent crash at its activation round. *)
  let byz_active pid r =
    match (cfg.tamper, Fault.byzantine_from cfg.fault pid) with
    | Some _, Some b0 -> b0 <= r
    | _ -> false
  in
  let byz_degraded_crash pid r =
    match (cfg.tamper, Fault.byzantine_from cfg.fault pid) with
    | None, Some b0 -> b0 <= r
    | _ -> false
  in
  (* A subverted pid must be scheduled at its activation round even if the
     protocol put it to sleep beyond it. *)
  (match cfg.tamper with
  | Some _ ->
      for pid = 0 to t - 1 do
        match Fault.byzantine_from cfg.fault pid with
        | Some b0 ->
            wakeups.(pid) <-
              Some (match wakeups.(pid) with Some w -> min w b0 | None -> b0)
        | None -> ()
      done
  | None -> ());
  (* The adversary's restart schedule, sorted by (round, pid) so revivals in
     the same round happen in pid order — determinism. An entry is *applicable*
     while its pid is down from a round before the scheduled one; entries for
     up or terminated pids are dropped when their round arrives. *)
  let restart_queue =
    ref (List.sort compare (List.map (fun (p, r) -> (r, p)) (Fault.restarts cfg.fault)))
  in
  let applicable (rr, pid) =
    pid >= 0 && pid < t
    && match statuses.(pid) with Crashed rc -> rr > rc | _ -> false
  in
  let pending_restart () = List.exists applicable !restart_queue in
  let apply_restarts r =
    let rec go () =
      match !restart_queue with
      | (rr, pid) :: rest when rr <= r ->
          restart_queue := rest;
          if applicable (rr, pid) then begin
            statuses.(pid) <- Running;
            incs.(pid) <- incs.(pid) + 1;
            let s, w = recover pid r in
            states.(pid) <- s;
            wakeups.(pid) <- w;
            Fault.note_restart cfg.fault pid r;
            Metrics.record_restart metrics pid r;
            trace_ev (Trace.Restarted_ev { pid; round = r })
          end;
          go ()
      | _ -> ()
    in
    go ()
  in
  let next_round () =
    (* Smallest round at which anything can happen. *)
    let candidate = ref None in
    let consider r =
      match !candidate with
      | Some c when c <= r -> ()
      | _ -> candidate := Some r
    in
    (match !pending with Some (sent_at, _) -> consider (sent_at + 1) | None -> ());
    Array.iteri
      (fun pid w ->
        match w with Some r when alive pid -> consider r | _ -> ())
      wakeups;
    List.iter (fun (rr, pid) -> if applicable (rr, pid) then consider rr) !restart_queue;
    !candidate
  in
  let deliveries_for r =
    match !pending with
    | Some (sent_at, boxes) when sent_at + 1 = r ->
        pending := None;
        Some boxes
    | _ -> None
  in
  let apply_delivery_filter decision sends =
    match decision with
    | Fault.All -> (sends, [])
    | Fault.Prefix k ->
        let rec split i acc = function
          | [] -> (List.rev acc, [])
          | rest when i = k -> (List.rev acc, rest)
          | s :: rest -> split (i + 1) (s :: acc) rest
        in
        split 0 [] sends
    | Fault.Indices idx ->
        let keep = List.sort_uniq compare idx in
        let kept, dropped =
          List.fold_left
            (fun (i, (k, d)) s ->
              if List.mem i keep then (i + 1, (s :: k, d)) else (i + 1, (k, s :: d)))
            (0, ([], []))
            sends
          |> snd
        in
        (List.rev kept, List.rev dropped)
  in
  let rec loop r =
    if r > cfg.max_rounds then Round_limit r
    else begin
      with_span ~name:"round" ~pid:(-1) ~inc:0 r (fun () ->
      apply_restarts r;
      let boxes = deliveries_for r in
      let inbox pid = match boxes with Some b -> b.(pid) | None -> [] in
      (* Collect this round's sends; delivered next round, grouped per dst. *)
      let out = Array.make t ([] : 'm envelope list) in
      let any_sent = ref false in
      for pid = 0 to t - 1 do
        if alive pid then begin
          if Fault.crashed_by cfg.fault pid r || byz_degraded_crash pid r
          then begin
            statuses.(pid) <- Crashed r;
            Fault.note_crash cfg.fault pid r;
            Metrics.record_crash metrics pid r;
            trace_ev (Trace.Crashed_ev { pid; round = r })
          end
          else if byz_active pid r then begin
            (* Adversary-controlled: the protocol state is abandoned; the
               tamper model forges this round's messages. Forged traffic is
               counted as corruption, not as honest sends — audits and the
               message bounds judge only what honest processes do. *)
            (match cfg.tamper with
            | Some tm ->
                List.iter
                  (fun { dst; payload } ->
                    Metrics.record_corruption metrics;
                    obs_ev (Obs.Tamper { pid; at = r });
                    if dst >= 0 && dst < t then begin
                      out.(dst) <- { src = pid; sent_at = r; payload } :: out.(dst);
                      any_sent := true
                    end)
                  (tm.forge pid ~at:r)
            | None -> ());
            wakeups.(pid) <- Some (r + 1)
          end
          else begin
            let mail = inbox pid in
            let due = match wakeups.(pid) with Some w -> w <= r | None -> false in
            if mail <> [] || due then begin
              trace_ev (Trace.Stepped { pid; round = r });
              let o =
                with_span ~name:"step" ~pid ~inc:incs.(pid) r (fun () ->
                    proc.step pid r states.(pid) mail)
              in
              let view =
                {
                  Fault.sv_pid = pid;
                  sv_round = r;
                  sv_sends = List.length o.sends;
                  sv_works = List.length o.work;
                  sv_terminating = o.terminate;
                  sv_works_done_before = Metrics.work_by metrics pid;
                }
              in
              let decision = Fault.on_step cfg.fault view in
              let commit_sends sends =
                List.iter
                  (fun { dst; payload } ->
                    Metrics.record_send metrics pid;
                    trace_ev
                      (Trace.Sent { src = pid; dst; round = r; what = cfg.show payload });
                    if dst >= 0 && dst < t then begin
                      out.(dst) <- { src = pid; sent_at = r; payload } :: out.(dst);
                      any_sent := true
                    end)
                  sends
              in
              let commit_work () =
                List.iter
                  (fun u ->
                    Metrics.record_work metrics pid u;
                    trace_ev (Trace.Worked { pid; round = r; unit_id = u }))
                  o.work
              in
              (* Link tampering: a consuming query — asked only when there
                 are messages to corrupt and a model to corrupt them with. *)
              let tampered_sends () =
                match cfg.tamper with
                | Some tm when o.sends <> [] -> (
                    match Fault.corrupts cfg.fault pid r with
                    | Some tam ->
                        List.map
                          (fun { dst; payload } ->
                            Metrics.record_corruption metrics;
                            obs_ev (Obs.Tamper { pid; at = r });
                            { dst; payload = tm.mutate tam ~src:pid ~dst ~at:r payload })
                          o.sends
                    | None -> o.sends)
                | _ -> o.sends
              in
              match decision with
              | Fault.Survive ->
                  states.(pid) <- o.state;
                  commit_work ();
                  commit_sends (tampered_sends ());
                  Metrics.record_round metrics r;
                  if o.terminate then begin
                    statuses.(pid) <- Terminated r;
                    wakeups.(pid) <- None;
                    Metrics.record_terminate metrics pid r;
                    trace_ev (Trace.Terminated_ev { pid; round = r })
                  end
                  else begin
                    (match o.wakeup with
                    | Some w when w <= r ->
                        invalid_arg
                          (Printf.sprintf
                             "Kernel.run: process %d at round %d asked for non-future wakeup %d"
                             pid r w)
                    | _ -> ());
                    wakeups.(pid) <- o.wakeup
                  end
              | Fault.Crash { keep_work; delivery } ->
                  let delivered, dropped = apply_delivery_filter delivery o.sends in
                  (* Program-order causality: within a round, work precedes
                     sends, so a crash that lets any message out must also
                     let the work count (otherwise a victim could announce
                     work it never performed). *)
                  let keep_work = keep_work || delivered <> [] in
                  if keep_work then commit_work ();
                  commit_sends delivered;
                  List.iter
                    (fun { dst; payload } ->
                      trace_ev
                        (Trace.Dropped
                           { src = pid; dst; round = r; what = cfg.show payload }))
                    dropped;
                  statuses.(pid) <- Crashed r;
                  wakeups.(pid) <- None;
                  Fault.note_crash cfg.fault pid r;
                  Metrics.record_crash metrics pid r;
                  Metrics.record_round metrics r;
                  trace_ev (Trace.Crashed_ev { pid; round = r })
            end
          end
        end
      done;
      if !any_sent then
        with_span ~name:"deliver" ~pid:(-1) ~inc:0 r (fun () ->
            (* Inboxes sorted by sender for determinism. *)
            Array.iteri
              (fun dst msgs ->
                out.(dst) <- List.sort (fun a b -> compare a.src b.src) msgs;
                ignore dst)
              out;
            pending := Some (r, out)));
      (* A subverted pid never terminates; completion is the honest pids'
         affair. Without a tamper model nothing changes: byzantine entries
         degraded to crashes and every pid still retires. *)
      let retired_or_subverted pid =
        is_retired statuses.(pid)
        ||
        match (cfg.tamper, Fault.byzantine_from cfg.fault pid) with
        | Some _, Some _ -> true
        | _ -> false
      in
      let all_retired =
        let rec go pid = pid >= t || (retired_or_subverted pid && go (pid + 1)) in
        go 0
      in
      if all_retired && not (pending_restart ()) then Completed
      else
        match next_round () with
        | Some r' ->
            (* r' can equal r only if a wakeup request slipped through the
               strictness check, which [invalid_arg]s above; assert here. *)
            assert (r' > r);
            loop r'
        | None -> Stalled r
    end
  in
  let outcome =
    match next_round () with
    | Some r0 -> loop r0
    | None -> if Array.for_all is_retired statuses then Completed else Stalled 0
  in
  { metrics; statuses; outcome }
