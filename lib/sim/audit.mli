(** Execution-trace auditing: machine-checkable well-formedness and protocol
    invariants over {!Trace} recordings. Used by the test suite and usable
    by downstream code to validate custom protocols.

    All functions return the list of violations found (empty = clean). *)

type violation = { round : Types.round; message : string }

val pp_violation : Format.formatter -> violation -> unit

val well_formed : Trace.t -> violation list
(** Structural sanity of any execution:
    - no process acts (steps, sends, works) at a round after it crashed or
      terminated — unless a restart revived it in between;
    - rounds are non-decreasing along the trace;
    - every crash/termination event ends the process's current incarnation
      (no double retire without an intervening restart);
    - restarts only revive crashed processes (never live or terminated
      ones). *)

val at_most_one_active :
  ?passive_msg:(string -> bool) -> Trace.t -> violation list
(** The sequential-protocols invariant (Protocols A, B, C): per round, at
    most one process performs work or sends non-passive messages.
    [passive_msg] classifies payload renderings that inactive processes may
    send (Protocol B's go-aheads, Protocol C's alive replies). *)

val work_is_monotone : Trace.t -> violation list
(** For the sequential protocols (A, B, C and the checkpoint baseline),
    which perform the work "in increasing order of process number"
    (Section 5): the {e first} performance of each unit happens in
    increasing unit order across the whole execution. Does not hold for
    Protocol D, which works in parallel slices. *)
