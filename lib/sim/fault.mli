(** Crash-fault adversaries.

    A fault plan decides, online, when each process crashes and — when the
    crash happens during a round in which the victim was acting — how much of
    that round's output survives. This realises the paper's adversary: "If
    process 0 crashes in the middle of a broadcast, we assume only that some
    subset of the processes receive the message", and the work-lower-bound
    adversary that kills a process "immediately after performing a unit of
    work, before reporting that unit to any other process". *)

open Types

type delivery =
  | All  (** the whole send list leaves the process *)
  | Prefix of int  (** only the first [k] sends leave *)
  | Indices of int list  (** an arbitrary subset, by position in the list *)

type decision =
  | Survive
  | Crash of { keep_work : bool; delivery : delivery }
      (** crash during this round. [keep_work = true] means the round's work
          units were performed before the crash (the classic
          "did the work, died before telling anyone"). Within a round work
          precedes sends in program order, so the kernel forces
          [keep_work = true] whenever [delivery] lets at least one message
          out. *)

type tamper_kind =
  | Lying_view  (** claim a later/terminal view than reality *)
  | Replay_stale  (** re-send a stale (earlier) checkpoint view *)
  | Inflate_done  (** bump a genuine view's done-count upward *)

type tamper = { t_kind : tamper_kind; t_salt : int }
(** One corruption action: what lie to tell plus a salt seeding the exact
    forged payload (the protocol-specific tamper model interprets both, see
    [Kernel.tamper_model]). *)

val tamper_kind_to_string : tamper_kind -> string
(** ["lying-view"] / ["replay-stale"] / ["inflate-done"] — the schedule
    file syntax. *)

val tamper_kind_of_string : string -> tamper_kind option

type step_view = {
  sv_pid : pid;
  sv_round : round;
  sv_sends : int;  (** number of messages the victim is about to emit *)
  sv_works : int;  (** number of work units it is about to perform *)
  sv_terminating : bool;
  sv_works_done_before : int;  (** cumulative units this process performed in
                                   earlier rounds — lets adversaries target
                                   "after k units" *)
}

type t

val none : t
(** No process ever crashes. *)

val is_trivial : t -> bool
(** True only for plans that are statically known to never do anything:
    no crashes, no restarts, no corruption, no Byzantine subversion
    ({!none}, or degenerate constructions such as {!crash_silently_at}[ []]).
    The kernel uses this to skip the per-round fault sweep over all [t]
    processes and schedule only the processes that are actually due — the
    difference between O(rounds·t) and O(activity) on failure-free runs at
    n=10^6+. A [false] answer is always safe (it merely keeps the sweep). *)

val crash_silently_at : (pid * round) list -> t
(** Each listed process is dead from the start of the given round: it takes
    no action in that round or later. Duplicate pids keep the earliest
    round. *)

val crash_acting_at : (pid * round * decision) list -> t
(** Each listed process survives strictly below its round, then the given
    decision applies at the first round [>= r] in which it acts. If it never
    acts at or after [r] it is treated as silently crashed from [r]. *)

val dynamic : (step_view -> decision) -> t
(** Fully online adversary: consulted every time any process acts; once it
    returns [Crash _] for a pid, that pid is dead forever. *)

val random :
  seed:int64 -> t:int -> victims:int -> window:round -> t
(** Picks [victims] distinct victims among the [t] processes (so at least one
    survives — [victims < t] is enforced) and, for each, a uniform crash
    round in [\[0, window\]] plus a uniform small prefix cut applied if the
    victim is acting at that round. Deterministic in [seed]. *)

val crash_active_after_random_work :
  seed:int64 -> min_units:int -> max_units:int -> max_crashes:int -> t
(** Like {!crash_active_after_work} but with the gap between crashes drawn
    uniformly from [\[min_units, max_units\]], so crashes land at arbitrary
    positions inside checkpoint intervals. *)

val crash_active_after_work :
  units_between_crashes:int -> max_crashes:int -> t
(** The work-wasting adversary used by the benches: watches which process is
    performing work, and kills it right after it has performed
    [units_between_crashes] further units (keeping the work, dropping all of
    that round's messages), up to [max_crashes] victims. *)

val custom :
  ?restarts:(pid * round) list ->
  ?on_restart:(pid -> round -> unit) ->
  ?corrupts:(pid -> round -> tamper option) ->
  ?byzantine_from:(pid -> round option) ->
  crashed_by:(pid -> round -> bool) ->
  on_step:(step_view -> decision) ->
  unit ->
  t
(** General constructor combining a silent-death predicate with an online
    acting-crash rule — the building block for plans (such as
    {!Campaign.Schedule.to_fault}) that mix both kinds of entry. The kernel
    keeps the two consistent through {!note_crash}.

    [restarts] is the crash–recovery extension: a static schedule of
    [(pid, round)] revivals the kernel applies to pids that are down at the
    scheduled round (entries for up or terminated pids are dropped — the
    adversary cannot restart what is not crashed). [on_restart] is invoked
    when the kernel commits a revival, so stateful plans can advance to
    their next crash cycle. A plan whose [crashed_by]/[on_step] ignore
    revivals would re-kill the new incarnation instantly; use
    {!with_restarts} to mask a static plan, or handle [on_restart].

    [corrupts] is the message-tampering extension: consulted by the kernel
    when a surviving process is about to emit messages (only when the run
    carries a tamper model); answering [Some tamper] spends that corruption —
    the query is consuming, so one-shot entries answer once. [byzantine_from]
    marks pids the adversary controls outright from a round on (see
    [Kernel]'s Byzantine execution rules). *)

val with_restarts : (pid * round) list -> t -> t
(** [with_restarts restarts base]: the base plan plus a restart schedule.
    From each pid's first revival on, the base plan is masked for that pid
    (it survives and never re-crashes) — one crash/restart cycle per pid.
    Multi-cycle schedules are built via {!custom} with [on_restart] (see
    [Campaign.Schedule.to_fault]). *)

(** {1 Kernel interface} — used by {!Kernel}, not by protocol code. *)

val crashed_by : t -> pid -> round -> bool
(** Is [pid] (silently) dead at round [r]? Consulted before stepping. *)

val on_step : t -> step_view -> decision
(** Consulted when a live process is about to commit a round's outcome.
    The plan must remember its own [Crash] answers: after crashing a pid it
    must answer [crashed_by] = true for later rounds. *)

val note_crash : t -> pid -> round -> unit
(** Kernel informs the plan that it committed the crash (so that
    [crashed_by] stays consistent for all plan kinds). *)

val restarts : t -> (pid * round) list
(** The plan's static restart schedule, in no particular order; the kernel
    sorts and consumes it. *)

val corrupts : t -> pid -> round -> tamper option
(** Should [pid]'s outgoing messages of round [r] be tampered with? A [Some]
    answer consumes the corruption entry, so call it at most once per
    (pid, round) and only when the tampering will actually be applied. *)

val byzantine_from : t -> pid -> round option
(** The round from which [pid] is adversary-controlled, if any. Static for
    the whole run. *)

val note_restart : t -> pid -> round -> unit
(** Kernel informs the plan that it committed a revival at [round]: the
    committed-crash record for the pid is forgotten (a later crash of the
    same pid re-records) and the plan's [on_restart] hook runs. *)
