(** Deterministic, event-driven executor for the synchronous model.

    The kernel advances a round counter, delivering messages sent in round
    [r] at the start of round [r+1]. A process is stepped at round [r] iff
    its inbox for [r] is non-empty or it previously asked for a wakeup at a
    round [<= r]. Rounds in which no process would be stepped are skipped in
    O(1), so protocols with astronomically long timeouts (Protocol C's
    [2^(n+t)] deadlines) execute quickly while round arithmetic stays exact.

    Determinism: with a fixed fault plan, processes are stepped in increasing
    pid order and inboxes are sorted by sender pid, so every run of the same
    configuration produces the identical execution. *)

open Types

type run_outcome =
  | Completed  (** every process retired (crashed or terminated) *)
  | Stalled of round
      (** live processes remain but none has a pending message or wakeup —
          a protocol liveness bug, surfaced loudly *)
  | Round_limit of round  (** the [max_rounds] guard fired *)

type 'm result = {
  metrics : Metrics.t;
  statuses : status array;
  outcome : run_outcome;
}

type 'm config = {
  n_processes : int;
  n_units : int;  (** sizing for per-unit multiplicity accounting *)
  fault : Fault.t;
  max_rounds : round;  (** hard abort guard; [max_int] for "no limit" *)
  trace : Trace.t option;
  obs : Obs.sink option;
      (** structured event sink, fed the same events as [trace] as they
          happen (see {!Obs}); independent of [trace] *)
  show : 'm -> string;  (** payload printer for traces (unused without) *)
}

val config :
  ?fault:Fault.t ->
  ?max_rounds:round ->
  ?trace:Trace.t ->
  ?obs:Obs.sink ->
  ?show:('m -> string) ->
  n_processes:int ->
  n_units:int ->
  unit ->
  'm config
(** Convenience constructor; defaults: no faults, [max_rounds = max_int / 2],
    no trace, no observability sink. *)

val run : 'm config -> ('s, 'm) process -> 'm result
(** Execute until all processes retire, a stall, or the round limit.
    @raise Invalid_argument if a step returns a wakeup not strictly in the
    future. *)
