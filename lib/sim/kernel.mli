(** Deterministic, event-driven executor for the synchronous model.

    The kernel advances a round counter, delivering messages sent in round
    [r] at the start of round [r+1]. A process is stepped at round [r] iff
    its inbox for [r] is non-empty or it previously asked for a wakeup at a
    round [<= r]. Rounds in which no process would be stepped are skipped in
    O(1), so protocols with astronomically long timeouts (Protocol C's
    [2^(n+t)] deadlines) execute quickly while round arithmetic stays exact.

    Determinism: with a fixed fault plan, processes are stepped in increasing
    pid order and inboxes are sorted by sender pid, so every run of the same
    configuration produces the identical execution. *)

open Types

type run_outcome =
  | Completed  (** every process retired (crashed or terminated) *)
  | Stalled of round
      (** live processes remain but none has a pending message or wakeup —
          a protocol liveness bug, surfaced loudly *)
  | Round_limit of round  (** the [max_rounds] guard fired *)

type 'm result = {
  metrics : Metrics.t;
  statuses : status array;
  outcome : run_outcome;
}

type 'm tamper_model = {
  mutate : Fault.tamper -> src:pid -> dst:pid -> at:round -> 'm -> 'm;
      (** corrupt one in-flight payload according to a {!Fault.tamper}
          action; must be pure (same arguments, same lie) so replays and
          parallel campaigns stay deterministic *)
  forge : pid -> at:round -> 'm send list;
      (** the messages a Byzantine [pid] emits at [at] — arbitrary but
          well-typed lies; must likewise be a pure function of its
          arguments *)
}
(** How the adversary speaks a protocol's message type. Protocol modules
    provide models (e.g. [Doall.Validate.tamper_plain]); the kernel stays
    payload-agnostic. *)

type 'm config = {
  n_processes : int;
  n_units : int;  (** sizing for per-unit multiplicity accounting *)
  fault : Fault.t;
  max_rounds : round;  (** hard abort guard; [max_int] for "no limit" *)
  trace : Trace.t option;
  obs : Obs.sink option;
      (** structured event sink, fed the same events as [trace] as they
          happen (see {!Obs}); independent of [trace] *)
  show : 'm -> string;  (** payload printer for traces (unused without) *)
  spans : Obs.sink option;
      (** timing sink, fed only [Obs.Span_begin]/[Span_end] pairs around
          each processed round ([pid = -1]), each process step, and each
          end-of-round delivery commit, stamped with
          [Dhw_util.Clock.now_us]. Kept separate from [obs] so the
          deterministic event stream carries no wall-clock data; [None]
          (the default) costs nothing. *)
  tamper : 'm tamper_model option;
      (** enables the fault plan's [Corrupt]/[Byzantine] powers; without a
          model, corruptions are inert and Byzantine entries degrade to
          silent crashes at their activation round *)
}

val config :
  ?fault:Fault.t ->
  ?max_rounds:round ->
  ?trace:Trace.t ->
  ?obs:Obs.sink ->
  ?show:('m -> string) ->
  ?spans:Obs.sink ->
  ?tamper:'m tamper_model ->
  n_processes:int ->
  n_units:int ->
  unit ->
  'm config
(** Convenience constructor; defaults: no faults, [max_rounds = max_int / 2],
    no trace, no observability sink, no span sink, no tamper model.

    With a tamper model, a pid listed by {!Fault.byzantine_from} stops
    running the protocol from its activation round: each round it emits
    [forge]d messages instead (counted via [Metrics.record_corruption] and
    observed as [Obs.Tamper], never as honest sends), and it is exempt from
    the completion check — the run is [Completed] once every honest process
    retired. A surviving honest process whose round has a pending
    {!Fault.corrupts} entry has all of that round's outgoing payloads passed
    through [mutate]. Byzantine runs should set [max_rounds]: a subverted
    pid acts every round, so a liveness bug surfaces as [Round_limit]
    rather than [Stalled]. *)

val run :
  ?recover:(pid -> round -> 's * round option) ->
  ?metrics:Metrics.t ->
  'm config ->
  ('s, 'm) process ->
  'm result
(** Execute until all processes retire, a stall, or the round limit.

    Crash–recovery: if the fault plan carries a restart schedule
    ({!Fault.restarts}), each entry [(pid, rr)] revives [pid] at the start
    of the first processed round [>= rr], provided [pid] crashed strictly
    before [rr] (entries for up or terminated pids are dropped, as are
    entries at or before the pid's crash round — the adversary restarts
    machines, it does not resurrect the not-yet-dead). Revival wipes the
    volatile state and asks [recover pid r] for the rejoined state and
    wakeup; the default re-runs [proc.init pid] (amnesiac rejoin — recovery
    harnesses read stable storage instead). A wakeup [<= r] makes the
    rejoiner step in its restart round; it also receives any messages
    addressed to it in round [r - 1] (they were in flight when the machine
    came back). The run does not complete while an applicable restart entry
    is still pending, so "everyone is down but one will return" is not
    [Completed].

    [metrics] substitutes a caller-created accumulator (needed to count
    stable-storage writes from a {!Stable.create} [on_write] hook into the
    same object); by default a fresh one is created. Restarts are counted
    via {!Metrics.record_restart} and traced as {!Trace.Restarted_ev}.

    @raise Invalid_argument if a step returns a wakeup not strictly in the
    future. *)
