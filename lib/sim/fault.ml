open Types
module Prng = Dhw_util.Prng

type delivery = All | Prefix of int | Indices of int list

type decision = Survive | Crash of { keep_work : bool; delivery : delivery }

type tamper_kind = Lying_view | Replay_stale | Inflate_done

type tamper = { t_kind : tamper_kind; t_salt : int }

let tamper_kind_to_string = function
  | Lying_view -> "lying-view"
  | Replay_stale -> "replay-stale"
  | Inflate_done -> "inflate-done"

let tamper_kind_of_string = function
  | "lying-view" -> Some Lying_view
  | "replay-stale" -> Some Replay_stale
  | "inflate-done" -> Some Inflate_done
  | _ -> None

type step_view = {
  sv_pid : pid;
  sv_round : round;
  sv_sends : int;
  sv_works : int;
  sv_terminating : bool;
  sv_works_done_before : int;
}

type t = {
  plan_crashed_by : pid -> round -> bool;
  plan_on_step : step_view -> decision;
  plan_restarts : (pid * round) list;
      (* static restart schedule, consumed by the kernel *)
  plan_on_restart : pid -> round -> unit;
      (* plan-side notification that the kernel committed a revival *)
  plan_corrupts : pid -> round -> tamper option;
      (* consuming query: a [Some] answer spends that corruption entry *)
  plan_byzantine_from : pid -> round option;
  plan_trivial : bool;
      (* statically known to never crash/corrupt/subvert/restart anything;
         lets the kernel skip the per-round fault sweep entirely *)
  committed : (pid, round) Hashtbl.t;
      (* crashes the kernel actually committed; authoritative for all plans *)
}

let make ?(trivial = false) ?(restarts = []) ?(on_restart = fun _ _ -> ())
    ?(corrupts = fun _ _ -> None) ?(byzantine_from = fun _ -> None) ~crashed_by
    ~on_step () =
  {
    plan_crashed_by = crashed_by;
    plan_on_step = on_step;
    plan_restarts = restarts;
    plan_on_restart = on_restart;
    plan_corrupts = corrupts;
    plan_byzantine_from = byzantine_from;
    plan_trivial = trivial && restarts = [];
    committed = Hashtbl.create 16;
  }

let custom ?restarts ?on_restart ?corrupts ?byzantine_from ~crashed_by ~on_step
    () =
  make ?restarts ?on_restart ?corrupts ?byzantine_from ~crashed_by ~on_step ()

let crashed_by t pid round =
  (match Hashtbl.find_opt t.committed pid with
  | Some r -> round > r
  | None -> false)
  || t.plan_crashed_by pid round

let on_step t view =
  if crashed_by t view.sv_pid view.sv_round then
    Crash { keep_work = false; delivery = Prefix 0 }
  else t.plan_on_step view

let note_crash t pid round =
  match Hashtbl.find_opt t.committed pid with
  | Some r when r <= round -> ()
  | _ -> Hashtbl.replace t.committed pid round

let restarts t = t.plan_restarts

let corrupts t pid round = t.plan_corrupts pid round

let byzantine_from t pid = t.plan_byzantine_from pid

let note_restart t pid round =
  (* Forget the committed crash so a later crash of the same pid re-records;
     then let the plan mask itself (a static plan would otherwise keep
     answering [crashed_by] = true for the revived incarnation). *)
  Hashtbl.remove t.committed pid;
  t.plan_on_restart pid round

let none = make ~trivial:true ~crashed_by:(fun _ _ -> false) ~on_step:(fun _ -> Survive) ()

let is_trivial t = t.plan_trivial

let earliest_per_pid entries key_of =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let pid, r = key_of e in
      match Hashtbl.find_opt tbl pid with
      | Some (r', _) when r' <= r -> ()
      | _ -> Hashtbl.replace tbl pid (r, e))
    entries;
  tbl

let crash_silently_at entries =
  let tbl = earliest_per_pid entries (fun (p, r) -> (p, r)) in
  let crashed_by pid round =
    match Hashtbl.find_opt tbl pid with Some (r, _) -> round >= r | None -> false
  in
  make ~trivial:(entries = []) ~crashed_by ~on_step:(fun _ -> Survive) ()

let crash_acting_at entries =
  let tbl = earliest_per_pid entries (fun (p, r, _) -> (p, r)) in
  let crashed_by _ _ = false in
  let on_step view =
    match Hashtbl.find_opt tbl view.sv_pid with
    | Some (r, (_, _, decision)) when view.sv_round >= r -> decision
    | _ -> Survive
  in
  make ~crashed_by ~on_step ()

let dynamic f =
  let dead = Hashtbl.create 16 in
  let crashed_by pid round =
    match Hashtbl.find_opt dead pid with Some r -> round > r | None -> false
  in
  let on_step view =
    match f view with
    | Survive -> Survive
    | Crash _ as c ->
        Hashtbl.replace dead view.sv_pid view.sv_round;
        c
  in
  make ~crashed_by ~on_step ()

let random ~seed ~t ~victims ~window =
  if victims >= t then invalid_arg "Fault.random: victims must be < t";
  let g = Prng.create seed in
  let pids = Prng.sample_without_replacement g victims t in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun pid ->
      let r = Prng.int_in g 0 (max 0 window) in
      let cut = Prng.int_in g 0 4 in
      Hashtbl.replace tbl pid (r, cut))
    pids;
  let crashed_by pid round =
    (* A victim acting at exactly its crash round crashes via [on_step]
       (partial delivery); a victim idle at its crash round is dead from
       the next round on. *)
    match Hashtbl.find_opt tbl pid with Some (r, _) -> round > r | None -> false
  in
  let on_step view =
    match Hashtbl.find_opt tbl view.sv_pid with
    | Some (r, cut) when view.sv_round >= r ->
        Crash { keep_work = false; delivery = Prefix cut }
    | _ -> Survive
  in
  make ~crashed_by ~on_step ()

let crash_active_after_random_work ~seed ~min_units ~max_units ~max_crashes =
  if min_units < 1 || max_units < min_units then
    invalid_arg "Fault.crash_active_after_random_work";
  let g = Prng.create seed in
  let crashes = ref 0 in
  let units_since_last = ref 0 in
  let next_gap = ref (Prng.int_in g min_units max_units) in
  let dead = Hashtbl.create 16 in
  let crashed_by pid round =
    match Hashtbl.find_opt dead pid with Some r -> round > r | None -> false
  in
  let on_step view =
    if view.sv_works = 0 || !crashes >= max_crashes then Survive
    else begin
      units_since_last := !units_since_last + view.sv_works;
      if !units_since_last >= !next_gap then begin
        units_since_last := 0;
        next_gap := Prng.int_in g min_units max_units;
        incr crashes;
        Hashtbl.replace dead view.sv_pid view.sv_round;
        Crash { keep_work = true; delivery = Prefix 0 }
      end
      else Survive
    end
  in
  make ~crashed_by ~on_step ()

let with_restarts restarts base =
  (* From a pid's first revival on, the base plan's answers for that pid are
     masked: its closures (e.g. [crash_silently_at] tables) know nothing of
     the new incarnation and would keep it dead forever. The wrapped plan
     therefore gives each pid at most one crash/restart cycle; multi-cycle
     adversaries are built directly via [make]'s [on_restart] hook (see
     [Campaign.Schedule.to_fault]). *)
  let revived : (pid, round) Hashtbl.t = Hashtbl.create 8 in
  let crashed_by pid r =
    match Hashtbl.find_opt revived pid with
    | Some rr when r >= rr -> false
    | _ -> base.plan_crashed_by pid r
  in
  let on_step view =
    match Hashtbl.find_opt revived view.sv_pid with
    | Some rr when view.sv_round >= rr -> Survive
    | _ -> base.plan_on_step view
  in
  let on_restart pid r =
    Hashtbl.replace revived pid r;
    base.plan_on_restart pid r
  in
  make ~restarts ~on_restart ~corrupts:base.plan_corrupts
    ~byzantine_from:base.plan_byzantine_from ~crashed_by ~on_step ()

let crash_active_after_work ~units_between_crashes ~max_crashes =
  let crashes = ref 0 in
  let units_since_last = ref 0 in
  let dead = Hashtbl.create 16 in
  let crashed_by pid round =
    match Hashtbl.find_opt dead pid with Some r -> round > r | None -> false
  in
  let on_step view =
    if view.sv_works = 0 || !crashes >= max_crashes then Survive
    else begin
      units_since_last := !units_since_last + view.sv_works;
      if !units_since_last >= units_between_crashes then begin
        units_since_last := 0;
        incr crashes;
        Hashtbl.replace dead view.sv_pid view.sv_round;
        Crash { keep_work = true; delivery = Prefix 0 }
      end
      else Survive
    end
  in
  make ~crashed_by ~on_step ()
