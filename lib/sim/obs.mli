(** Structured observability: one typed event stream over both substrates.

    The synchronous kernel ({!Kernel}, via [?obs] in its config) and the
    asynchronous executor ([Asim.Event_sim], likewise) emit the same
    {!type:event} alphabet — step, send, drop, work, crash, terminate — each
    stamped with the round (sync) or tick (async) it happened at. A {!sink}
    consumes the stream as it is produced; sinks compose with {!tee}.

    Built-in sinks: {!memory} (capture), {!jsonl} (one compact JSON object
    per line, schema [{"ev", "at", ...}]), and {!Timeline} (per-round
    aggregates with an ASCII sparkline renderer).

    Events are emitted exactly where {!Metrics} records, so a {!Timeline}
    folded from the stream reproduces the run's metric totals — a property
    the test suite checks (sync and async). Emission never consults the
    adversary PRNG: observing a run cannot change it. *)

open Types

type event =
  | Step of { pid : pid; at : int }  (** a process was scheduled *)
  | Send of { src : pid; dst : pid; at : int; tag : string }
  | Drop of { src : pid; dst : pid; at : int; tag : string }
      (** a send suppressed by a mid-broadcast crash (sync kernel only;
          async link losses are accounted in [Event_sim.net]) *)
  | Work of { pid : pid; at : int; unit_id : int }
  | Crash of { pid : pid; at : int }
  | Restart of { pid : pid; at : int }
      (** a crashed process revived by the adversary's restart schedule *)
  | Persist of { pid : pid; at : int }
      (** a stable-storage write ({!Stable.write}); emitted by the recovery
          harness' [on_write] hook, not by the kernel *)
  | Tamper of { pid : pid; at : int }
      (** one adversary-corrupted payload — a Byzantine forgery by [pid] or
          an in-flight mutation of [pid]'s outgoing message (sync kernel
          with a tamper model, or the async link's [corrupt_bp]) *)
  | Reject of { pid : pid; at : int }
      (** a message [pid]'s validation layer refused (bad authenticator or
          unattested view); emitted by [Doall.Validate]-style harnesses'
          [on_reject] hook, not by the kernel *)
  | Terminate of { pid : pid; at : int }
  | Span_begin of { name : string; pid : pid; at : int; inc : int; ts_us : float }
      (** a timed region opened: kernel round ([pid = -1]), a process step,
          message delivery, a stable-storage write, or an async tick.
          [inc] is the incarnation (0 before any restart), [ts_us] a
          monotonic wall-clock stamp ([Dhw_util.Clock.now_us]). Spans flow
          through a separate [?spans] sink, never the [?obs] stream, so
          deterministic event output stays free of wall-clock data. *)
  | Span_end of { name : string; pid : pid; at : int; inc : int; ts_us : float }

val at : event -> int
(** The round/tick stamp of an event. *)

type sink = event -> unit

val null : sink

val tee : sink list -> sink
(** Fan one stream out to several sinks, in list order. *)

val memory : unit -> sink * (unit -> event list)
(** An in-memory sink and a function returning everything captured so far,
    in emission order. *)

val jsonl : out_channel -> sink
(** Stream events as JSON Lines: one compact object per event, e.g.
    [{"ev":"work","at":12,"pid":3,"unit":7}]. The caller owns the channel. *)

val event_to_json : event -> Dhw_util.Jsonw.t

val of_trace_event : Trace.event -> event

val replay : Trace.t -> sink -> unit
(** Feed a recorded {!Trace} through a sink, in recorded order — the bridge
    for post-hoc analysis of runs that only kept a trace. *)

val span_collector :
  src:string -> unit -> sink * (unit -> Dhw_util.Spanfile.span list)
(** A sink that pairs {!Span_begin}/{!Span_end} events (by name, pid and
    incarnation, LIFO) into completed [Dhw_util.Spanfile] spans stamped
    with [src], ignoring every non-span event — wire it into a [?spans]
    config slot and call the second component afterwards for the spans in
    completion order. Begins left open (a crash inside a span) are
    discarded. *)

module Timeline : sig
  (** Folds the event stream into per-round rows: alive processes,
      cumulative work/messages/effort, distinct units covered, and
      crash/termination marks. Rows exist only for rounds in which
      something happened (the kernel skips quiet rounds; so does the
      timeline). *)

  type t

  val create : n_processes:int -> n_units:int -> t
  val sink : t -> sink

  type row = {
    at : int;
    alive : int;
        (** processes up at [at]: [np - crashes + restarts - terminated] *)
    work : int;  (** cumulative, counting multiplicity *)
    msgs : int;
    effort : int;  (** work + msgs *)
    covered : int;  (** distinct units performed at least once by [at] *)
    crashes : int;  (** cumulative *)
    restarts : int;  (** cumulative *)
    persists : int;  (** cumulative stable-storage writes *)
    corruptions : int;  (** cumulative adversary-corrupted payloads *)
    rejected : int;  (** cumulative validation-layer refusals *)
    terminated : int;  (** cumulative *)
    d_work : int;  (** this round's work *)
    d_msgs : int;
    d_crashes : int;
    d_restarts : int;
    d_persists : int;
    d_tampers : int;
    d_rejects : int;
    d_terminated : int;
  }

  val rows : t -> row list
  (** Ascending by [at]. Cumulative fields are monotone non-decreasing and,
      absent restarts, [alive] is non-increasing — properties the qcheck
      suite pins down. A restart bumps [alive] back up. *)

  val final : t -> row option
  (** The last row; its cumulative fields equal the {!Metrics} totals of
      the observed run. *)

  val to_json : t -> Dhw_util.Jsonw.t
  (** Schema [dhw-timeline/v3]: processes, units, and the cumulative rows
      (v2 = v1 plus additive [restarts]/[persists] columns; v3 = v2 plus
      additive [corruptions]/[rejected] columns). *)

  val spark : ?max:int -> int list -> string
  (** Render a series as one ASCII character per value, using the density
      ramp [.:-=+*#@] scaled to [?max] (default: the series maximum);
      non-positive values render as ['.']. *)

  val pp : ?width:int -> Format.formatter -> t -> unit
  (** Multi-line ASCII timeline (alive, work/round, msgs/round, coverage,
      crash/termination marks), bucketed down to at most [width] (default
      64) columns. *)
end
