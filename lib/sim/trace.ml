open Types

type event =
  | Stepped of { pid : pid; round : round }
  | Sent of { src : pid; dst : pid; round : round; what : string }
  | Dropped of { src : pid; dst : pid; round : round; what : string }
  | Worked of { pid : pid; round : round; unit_id : int }
  | Crashed_ev of { pid : pid; round : round }
  | Restarted_ev of { pid : pid; round : round }
  | Terminated_ev of { pid : pid; round : round }

type t = { mutable events : event list; mutable len : int }

let create () = { events = []; len = 0 }

let record t e =
  t.events <- e :: t.events;
  t.len <- t.len + 1

let events t = List.rev t.events
let length t = t.len

let pp_event ppf = function
  | Stepped { pid; round } -> Format.fprintf ppf "[r%d] p%d steps" round pid
  | Sent { src; dst; round; what } ->
      Format.fprintf ppf "[r%d] p%d -> p%d : %s" round src dst what
  | Dropped { src; dst; round; what } ->
      Format.fprintf ppf "[r%d] p%d -/-> p%d : %s (crash)" round src dst what
  | Worked { pid; round; unit_id } ->
      Format.fprintf ppf "[r%d] p%d performs unit %d" round pid unit_id
  | Crashed_ev { pid; round } -> Format.fprintf ppf "[r%d] p%d CRASHES" round pid
  | Restarted_ev { pid; round } ->
      Format.fprintf ppf "[r%d] p%d RESTARTS" round pid
  | Terminated_ev { pid; round } ->
      Format.fprintf ppf "[r%d] p%d terminates" round pid

let pp ?limit ppf t =
  let evs = events t in
  let evs = match limit with Some k -> List.filteri (fun i _ -> i < k) evs | None -> evs in
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) evs;
  match limit with
  | Some k when t.len > k -> Format.fprintf ppf "... (+%d more events)@." (t.len - k)
  | _ -> ()
