open Types

type violation = { round : round; message : string }

let pp_violation ppf v = Format.fprintf ppf "[r%d] %s" v.round v.message

let v round fmt = Format.kasprintf (fun message -> { round; message }) fmt

let well_formed trace =
  let retired : (pid, round * [ `Crash | `Term ]) Hashtbl.t = Hashtbl.create 16 in
  let violations = ref [] in
  let note x = violations := x :: !violations in
  let check_live pid round what =
    match Hashtbl.find_opt retired pid with
    | Some (r, _) when round > r ->
        note (v round "process %d %s after retiring at r%d" pid what r)
    | _ -> ()
  in
  let last_round = ref 0 in
  List.iter
    (fun ev ->
      let round =
        match ev with
        | Trace.Stepped { round; _ }
        | Trace.Sent { round; _ }
        | Trace.Dropped { round; _ }
        | Trace.Worked { round; _ }
        | Trace.Crashed_ev { round; _ }
        | Trace.Restarted_ev { round; _ }
        | Trace.Terminated_ev { round; _ } -> round
      in
      if round < !last_round then
        note (v round "trace goes backwards (previous round %d)" !last_round);
      last_round := max !last_round round;
      match ev with
      | Trace.Stepped { pid; round } -> check_live pid round "stepped"
      | Trace.Sent { src; round; _ } -> check_live src round "sent"
      | Trace.Worked { pid; round; _ } -> check_live pid round "worked"
      | Trace.Dropped _ -> ()
      | Trace.Restarted_ev { pid; round } -> (
          (* A restart legitimately un-retires a crashed process; restarting
             a live or terminated one is a kernel bug. *)
          match Hashtbl.find_opt retired pid with
          | Some (_, `Crash) -> Hashtbl.remove retired pid
          | Some (r, `Term) ->
              note (v round "process %d restarts after terminating at r%d" pid r)
          | None -> note (v round "process %d restarts while not crashed" pid))
      | Trace.Crashed_ev { pid; round } | Trace.Terminated_ev { pid; round } -> (
          let kind =
            match ev with Trace.Crashed_ev _ -> `Crash | _ -> `Term
          in
          match Hashtbl.find_opt retired pid with
          | Some (r, _) ->
              note (v round "process %d retires twice (first at r%d)" pid r)
          | None -> Hashtbl.replace retired pid (round, kind)))
    (Trace.events trace);
  List.rev !violations

let at_most_one_active ?(passive_msg = fun _ -> false) trace =
  let per_round : (round, pid) Hashtbl.t = Hashtbl.create 97 in
  let violations = ref [] in
  let note pid round =
    match Hashtbl.find_opt per_round round with
    | None -> Hashtbl.replace per_round round pid
    | Some p when p = pid -> ()
    | Some p ->
        violations := v round "two active processes: %d and %d" p pid :: !violations
  in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Worked { pid; round; _ } -> note pid round
      | Trace.Sent { src; round; what; _ } when not (passive_msg what) ->
          note src round
      | Trace.Sent _ | Stepped _ | Dropped _ | Crashed_ev _ | Restarted_ev _
      | Terminated_ev _ -> ())
    (Trace.events trace);
  List.rev !violations

let work_is_monotone trace =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 97 in
  let highest_first = ref min_int in
  let violations = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Worked { pid; round; unit_id } ->
          if not (Hashtbl.mem seen unit_id) then begin
            Hashtbl.replace seen unit_id ();
            if unit_id < !highest_first then
              violations :=
                v round "process %d first-performs unit %d after unit %d" pid
                  unit_id !highest_first
                :: !violations;
            highest_first := max !highest_first unit_id
          end
      | _ -> ())
    (Trace.events trace);
  List.rev !violations
