(** Optional execution traces for debugging and the example programs.

    Recording is off by default; the kernel takes an optional sink. Payloads
    are stringified lazily by the caller-provided printer. *)

open Types

type event =
  | Stepped of { pid : pid; round : round }
  | Sent of { src : pid; dst : pid; round : round; what : string }
  | Dropped of { src : pid; dst : pid; round : round; what : string }
      (** a send suppressed by a mid-broadcast crash *)
  | Worked of { pid : pid; round : round; unit_id : int }
  | Crashed_ev of { pid : pid; round : round }
  | Restarted_ev of { pid : pid; round : round }
      (** an adversary-scheduled revival of a crashed process committed by
          the kernel (crash–recovery model) *)
  | Terminated_ev of { pid : pid; round : round }

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** In chronological order. *)

val length : t -> int
val pp_event : Format.formatter -> event -> unit
val pp : ?limit:int -> Format.formatter -> t -> unit
(** Print the first [limit] events (all without); a truncated tail is
    announced with a ["... (+k more events)"] suffix rather than cut
    silently. *)
