(** Structured run reports: one JSON document per execution, carrying the
    instance, the fault plan, the paper's cost measures, the correctness
    verdict, and measured-vs-theorem bound checks.

    Schema [dhw-report/v4]; field order is fixed, so reports from the same
    run are byte-identical across invocations (the golden test pins this).
    v4 adds an optional [latency] section — per-unit arrival→completion
    percentiles (p50/p99/p999, from {!Latency}/{!Dhw_util.Hist}) for the
    online Do-All setting — and is otherwise a superset of v3, which added
    the corruption counters [metrics.corruptions]/[metrics.rejected] on
    top of v2's crash–recovery counters (see DESIGN.md for the
    compatibility notes). Emitted by
    [doall_cli run/async/shmem --report=json] and, per failure, by the
    fuzz corpora. *)

type bound_check = {
  check : string;  (** e.g. ["work <= Thm 2.3"] *)
  measured : int;
  bound : int;
  ok : bool;
}

type t = {
  kind : string;  (** ["sync"], ["async"], or ["shmem"] *)
  protocol : string;
  spec : Spec.t;
  fault : string;  (** human-readable fault-plan summary; ["none"] *)
  outcome : string;  (** ["completed"], ["stalled@r"], ["round-limit@r"], … *)
  correct : bool;
  survivors : int;
  crashed : int;
  metrics : Simkit.Metrics.t;
  bounds : bound_check list;
  latency : Dhw_util.Jsonw.t option;
      (** the [latency] section (see {!Latency.to_json}); emitted between
          [bounds] and the kind-specific extras when present *)
  extra : (string * Dhw_util.Jsonw.t) list;
      (** kind-specific trailing fields (net counters, shmem cost), appended
          after the common fields in the given order *)
}

val bound_checks : Spec.t -> protocol:string -> Simkit.Metrics.t -> bound_check list
(** The theorem checks applicable to [protocol] (normalized as in the fuzz
    oracles): Thm 2.3 for A, Thm 2.8 for B, Thm 3.8 / Cor 3.9 for C and
    chunked C (rounds omitted — the [2^(n+t)] deadline overflows), and the
    Thm 4.1 revert-path envelope for D with [f] = the crashes that actually
    occurred. Unknown protocols get no checks. *)

val make :
  kind:string ->
  protocol:string ->
  spec:Spec.t ->
  ?fault:string ->
  metrics:Simkit.Metrics.t ->
  outcome:string ->
  correct:bool ->
  survivors:int ->
  crashed:int ->
  ?bounds:bound_check list ->
  ?latency:Dhw_util.Jsonw.t ->
  ?extra:(string * Dhw_util.Jsonw.t) list ->
  unit ->
  t
(** [?fault] defaults to ["none"]; [?bounds] to {!bound_checks} when [kind]
    is ["sync"], else to none (the async/shmem substrates measure ticks and
    accesses the synchronous theorems do not speak about — callers opt in
    explicitly if they want the work/message checks anyway). *)

val of_run : ?fault:string -> ?latency:Dhw_util.Jsonw.t -> Runner.report -> t
(** A ["sync"] report from a {!Runner} execution, bounds included;
    [?latency] attaches a pre-built latency section (online Do-All). *)

val to_json : t -> Dhw_util.Jsonw.t
val to_string : t -> string
(** {!to_json} pretty-printed (2-space indent), no trailing newline. *)
