(** The √t-grid structure shared by Protocols A and B (Section 2).

    The paper assumes [t] a perfect square and [n] divisible by [t]; this
    module implements the "easy modifications" it leaves to the reader:

    - processes are divided into groups of size [s = ⌈√t⌉] (the last group
      may be smaller);
    - the work is divided into [S = min t n] subchunks of near-equal size
      (balanced partition), grouped into chunks of [s] consecutive
      subchunks (the last chunk may be shorter).

    On perfect-square, divisible instances this reduces exactly to the
    paper's layout: [s = √t], [√t] groups, [t] subchunks of [n/t] units. *)

type t

val make : Spec.t -> t

val make_with_group_size : Spec.t -> int -> t
(** [make_with_group_size spec s] overrides the group size (the paper's √t)
    — used by the bench that validates the √t choice: smaller groups mean
    cheaper partial checkpoints but more groups to inform on every full
    checkpoint, larger groups the reverse. @raise Invalid_argument unless
    [1 <= s <= t]. *)

val spec : t -> Spec.t

(** {1 Groups} *)

val group_size : t -> int
(** [s = ⌈√t⌉]. *)

val n_groups : t -> int
(** Number of groups, [⌈t/s⌉]. Groups are numbered [1 .. n_groups] to match
    the paper's 1-based [g_i]. *)

val group_of : t -> int -> int
(** Group (1-based) of a process id (0-based). *)

val members : t -> int -> int list
(** Pids of a group, ascending. *)

val members_above : t -> int -> int list
(** Own-group members with strictly larger pid — the "remainder of group
    [g_j]" that partial checkpoints broadcast to. *)

val rank_in_group : t -> int -> int
(** The paper's [ȷ̄ = j mod √t]: 0-based rank within the group. *)

(** {1 Work partition} *)

val n_subchunks : t -> int
(** [S]; subchunks are numbered [1 .. S]. *)

val subchunk_range : t -> int -> int * int
(** Work-unit ids of subchunk [c] (1-based) as a half-open range
    [(lo, hi)] — subchunks are contiguous, so the range is the whole
    story, in O(1) space at any [n].
    @raise Invalid_argument if [c] outside [1 .. S]. *)

val subchunk_units : t -> int -> int list
(** {!subchunk_range} materialised as a list (0-based, ascending) — for
    tests and small-n callers only; allocates [hi - lo] cells. *)

val subchunk_size_max : t -> int
(** Largest subchunk size, [⌈n/S⌉]. *)

val is_chunk_end : t -> int -> bool
(** True iff completing subchunk [c] triggers a full checkpoint: [c] is a
    multiple of [s], or [c = S]. *)

val n_chunk_ends : t -> int
(** Number of subchunks for which {!is_chunk_end} holds. *)

(** {1 Deadline budget} *)

val max_active_rounds : t -> int
(** A safe upper bound [L] on the number of rounds any process can remain
    active under Protocol A (work + partial checkpoints + full checkpoints +
    takeover actions). Protocol A uses deadlines [DD(j) = j·L], which is the
    paper's [j(n+3t)] up to the rounding slack. *)
