(** Protocol B (Sections 2.3–2.4, Figure 2).

    Same active-process behaviour as Protocol A, but with message-relative
    deadlines and a polling {e preactive} phase that together bring the
    worst-case running time down from [O(nt + t²)] to [O(n + t)] rounds
    (Theorem 2.8: ≤ 3n work, ≤ 10t√t messages, all retired by round
    [3n + 8t], up to rounding slack on non-perfect-square instances).

    A process [j] whose last ordinary message arrived from [i] at round [r']
    becomes {e preactive} at round [r' + DDB(j,i)]; it then sends [go_ahead]
    probes to the lower-numbered members of its group that it cannot prove
    retired, one every [PTO] rounds. A probed live process becomes active
    (its first takeover action is an own-group broadcast, which reaches the
    prober within a round). If no probe is answered the prober becomes
    active itself.

    By convention every process pretends to have received a fictitious
    ordinary message [(0, G)] from process 0 at round 0, which seeds the
    deadline recursion.

    Deviation from the published pseudocode (documented in DESIGN.md): a
    probed process becomes active regardless of whether its last checkpoint
    [c] equals the final subchunk. The published "[c < t]" guard would let a
    probed process silently ignore the probe, after which both the prober
    and (later) the probed process become active — violating the
    at-most-one-active invariant the correctness proof depends on. A probed
    process that knows all work is done merely finishes the outstanding full
    checkpoint and terminates. *)

type msg = Ord of Ckpt_script.ord | Go_ahead

val show_msg : msg -> string

val protocol : Protocol.t

(** {1 Deadline functions} (exposed for tests and benches) *)

val pto : Grid.t -> int
(** Process timeout: [n/t + 2] in the paper's units. *)

val gto : Grid.t -> int -> int
(** [gto grid i] — group timeout [GTO(i)]. *)

val ddb : Grid.t -> int -> int -> int
(** [ddb grid j i] — the deadline [DDB(j, i)]. *)

val round_bound : Grid.t -> int
(** The Theorem 2.8(c) bound on the retirement round, computed with this
    implementation's (slightly slackened) constants:
    [n + 3t + TT(t-1, 0)]. *)

(** {1 Crash–recovery hooks} (consumed by [Doall.Recovery]) *)

type pstate
(** A process state: passive, preactive (probing) or active. *)

val proc_on_grid : Grid.t -> (pstate, msg) Simkit.Types.process
(** The raw process function, un-packed — what {!protocol} wraps. *)

val resume_state :
  Grid.t ->
  Simkit.Types.pid ->
  at:Simkit.Types.round ->
  Ckpt_script.last ->
  pstate * Simkit.Types.round option
(** [resume_state grid pid ~at last] is the passive state a rejoiner adopts
    after its state-transfer handshake: the recovered view (the fictitious
    round-0 message when [last] is [No_msg]; re-attributed to process 0 when
    its sender's group is above the rejoiner's, where [DDB] is undefined)
    with [last_at = at] and a fresh [DDB]-relative deadline. The returned
    wakeup is [at + 1] when the view already proves all work done. *)
