(** The checkpointing work script shared by Protocols A and B (Figure 1's
    [DoWork], [Partialcheckpoint] and [Fullcheckpoint] procedures).

    Both protocols have the same active-process behaviour — perform the work
    subchunk by subchunk, partially checkpointing each subchunk to the
    own-group remainder and fully checkpointing each chunk to every higher
    group — and differ only in how a process decides to {e become} active.
    This module builds the per-round action scripts for an active process. *)

open Simkit.Types

type ord = Partial of int | Full of int * int
(** Ordinary messages: [(c)] and [(c, g)] of the paper. *)

val show_ord : ord -> string

type action = Do_units of int * int | Bcast of ord * pid list
(** [Bcast] = one synchronous round; [Do_units (lo, hi)] = the half-open
    run of work units [lo..hi-1], still executed {e one unit per round} by
    {!run_active} (the range is a compression of the former per-unit
    actions, not a batching change — scripts are O(subchunks) instead of
    O(n) in space). *)

val script_rounds : action list -> int
(** Number of synchronous rounds the script takes to drain: one per
    broadcast, [hi - lo] per unit range. *)

type last = No_msg | Last_ord of { ord : ord; src : pid }
(** A process's knowledge: the last ordinary message it received. *)

val c_of_last : last -> int
(** Highest completed subchunk the message vouches for; [0] for [No_msg]. *)

val work_script : Grid.t -> pid -> int -> action list
(** [work_script grid j from_sub] — Figure 1 lines 10–14: perform subchunks
    [from_sub .. S], checkpointing as required, as process [j]. *)

val takeover_script : Grid.t -> pid -> last -> action list
(** [takeover_script grid j last] — Figure 1 lines 1–9 followed by the work
    script: complete the checkpoint the previous active process died in,
    then resume the work after the last completed subchunk. The first action
    is always a broadcast to [j]'s own-group remainder (Protocol B's
    one-round go-ahead response relies on this). *)

val knows_all_done : Grid.t -> pid -> last -> bool
(** True iff the message says all work is done and [j]'s obligations are
    discharged: [(S)] or [(S, g_j)] (Section 2.1 termination rule). *)

val run_active :
  inject:(ord -> 'm) ->
  ?map_dst:(pid -> pid) ->
  ?map_unit:(int -> int) ->
  round ->
  action list ->
  (action list, 'm) outcome
(** Execute the head action as this round's outcome; terminates on script
    exhaustion. [map_dst]/[map_unit] translate script-local ranks and unit
    indices to real pids and unit ids (used by Protocol D's embedded copy of
    Protocol A, which runs over the surviving processes and the remaining
    units). *)
