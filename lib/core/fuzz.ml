module C = Simkit.Campaign
module Metrics = Simkit.Metrics
module Audit = Simkit.Audit

type subject = { report : Runner.report; trace : Simkit.Trace.t }

let run_schedule ?max_rounds spec proto sched =
  let trace = Simkit.Trace.create () in
  let fault = C.Schedule.to_fault sched in
  let report = Runner.run ~fault ?max_rounds ~trace spec proto in
  { report; trace }

(* ------------------------------------------------------------------ *)
(* Oracles *)

let completed =
  {
    C.name = "completed";
    check =
      (fun s ->
        match s.report.Runner.outcome with
        | Simkit.Kernel.Completed -> C.Pass
        | Simkit.Kernel.Stalled r -> C.Fail (Printf.sprintf "stalled at round %d" r)
        | Simkit.Kernel.Round_limit r ->
            C.Fail (Printf.sprintf "round limit hit at %d" r));
  }

let correct =
  {
    C.name = "correct";
    check =
      (fun s ->
        if Runner.correct s.report then C.Pass
        else
          C.Fail
            (Printf.sprintf "%d survivors but only %d/%d units performed"
               (Runner.survivors s.report)
               (Metrics.units_covered s.report.Runner.metrics)
               (Metrics.n_units s.report.Runner.metrics)));
  }

let audit name check_trace =
  {
    C.name;
    check =
      (fun s ->
        match check_trace s.trace with
        | [] -> C.Pass
        | v :: _ -> C.Fail (Format.asprintf "%a" Audit.pp_violation v));
  }

let bounded name measure bound =
  {
    C.name;
    check =
      (fun s ->
        let m = measure s.report.Runner.metrics in
        if bound <= 0 then C.Pass
        else if m <= bound then C.Pass_margin (float_of_int m /. float_of_int bound)
        else C.Fail (Printf.sprintf "%s = %d exceeds bound %d" name m bound));
  }

let work_bound = bounded "work" Metrics.work
let msgs_bound = bounded "messages" Metrics.messages
let rounds_bound = bounded "rounds" Metrics.rounds
let work_cap cap = bounded "work-cap" Metrics.work cap

let b_passive what = what = "go_ahead"
let c_passive what = what = "alive"

let sequential_audits passive =
  [
    audit "one-active" (Audit.at_most_one_active ~passive_msg:passive);
    audit "monotone" Audit.work_is_monotone;
  ]

let normalize name =
  match String.lowercase_ascii name with
  | "cchunked" -> "c-chunked"
  | "cnaive" -> "c-naive"
  | "dcoord" -> "d-coord"
  | s -> s

let oracles spec ~protocol =
  let base = [ completed; correct; audit "well-formed" Audit.well_formed ] in
  let t = Spec.processes spec in
  match normalize protocol with
  | "a" ->
      let g = Grid.make spec in
      base
      @ sequential_audits (fun _ -> false)
      @ [
          work_bound (Bounds.a_work g);
          msgs_bound (Bounds.a_msgs g);
          rounds_bound (Bounds.a_rounds g);
        ]
  | "b" ->
      let g = Grid.make spec in
      base
      @ sequential_audits b_passive
      @ [
          work_bound (Bounds.b_work g);
          msgs_bound (Bounds.b_msgs g);
          rounds_bound (Bounds.b_rounds g);
        ]
  | "c" ->
      (* the rounds bound overflows 63 bits (Thm 3.8's 2^(n+t) deadlines),
         so only work and messages are checked *)
      base
      @ sequential_audits c_passive
      @ [ work_bound (Bounds.c_work spec); msgs_bound (Bounds.c_msgs spec) ]
  | "c-chunked" ->
      base
      @ sequential_audits c_passive
      @ [
          work_bound (Bounds.c_chunked_work spec);
          msgs_bound (Bounds.c_chunked_msgs spec);
        ]
  | "d" ->
      (* arbitrary schedules can kill more than half a phase's processes, so
         judge against the revert-path envelope with f = t-1 *)
      base
      @ [
          work_bound (Bounds.d_work_revert spec);
          msgs_bound (Bounds.d_msgs_revert spec ~f:(t - 1));
          rounds_bound (Bounds.d_rounds_revert spec ~f:(t - 1));
        ]
  | _ -> base

(* ------------------------------------------------------------------ *)
(* Campaign drivers *)

let stamp spec proto sched =
  C.Schedule.add_meta sched
    [
      ("protocol", normalize proto.Protocol.name);
      ("n", string_of_int (Spec.n spec));
      ("t", string_of_int (Spec.processes spec));
    ]

let default_window spec proto =
  let ff = Runner.run spec proto in
  (2 * Metrics.rounds ff.Runner.metrics) + 2

let campaign ?(seed = 1L) ?(executions = 200) ?window ?(extra = [])
    ?max_failures ?shrink_budget spec proto =
  let window =
    match window with Some w -> w | None -> default_window spec proto
  in
  let t = Spec.processes spec in
  let g = Dhw_util.Prng.create seed in
  let schedules =
    List.init executions (fun _ -> stamp spec proto (C.sample g ~t ~window))
  in
  C.run
    ~run:(run_schedule spec proto)
    ~oracles:(oracles spec ~protocol:proto.Protocol.name @ extra)
    ~candidates:C.schedule_candidates ?max_failures ?shrink_budget
    (List.to_seq schedules)

let exhaustive_campaign ?window ?round_step ?modes ?(extra = []) ?max_failures
    ?shrink_budget spec proto =
  let window =
    match window with Some w -> w | None -> default_window spec proto
  in
  let round_step =
    match round_step with
    | Some s -> s
    | None -> max 1 ((window + 7) / 8)
  in
  let modes = Option.value modes ~default:C.default_modes in
  let t = Spec.processes spec in
  let schedules =
    Seq.map (stamp spec proto) (C.exhaustive ~t ~window ~round_step ~modes ())
  in
  C.run
    ~run:(run_schedule spec proto)
    ~oracles:(oracles spec ~protocol:proto.Protocol.name @ extra)
    ~candidates:C.schedule_candidates ?max_failures ?shrink_budget schedules
