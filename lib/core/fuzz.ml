module C = Simkit.Campaign
module Metrics = Simkit.Metrics
module Audit = Simkit.Audit

type subject = { report : Runner.report; trace : Simkit.Trace.t }

let run_schedule ?max_rounds spec proto sched =
  let trace = Simkit.Trace.create () in
  let fault = C.Schedule.to_fault sched in
  let report = Runner.run ~fault ?max_rounds ~trace spec proto in
  { report; trace }

(* ------------------------------------------------------------------ *)
(* Oracles *)

let completed =
  {
    C.name = "completed";
    check =
      (fun s ->
        match s.report.Runner.outcome with
        | Simkit.Kernel.Completed -> C.Pass
        | Simkit.Kernel.Stalled r -> C.Fail (Printf.sprintf "stalled at round %d" r)
        | Simkit.Kernel.Round_limit r ->
            C.Fail (Printf.sprintf "round limit hit at %d" r));
  }

let correct =
  {
    C.name = "correct";
    check =
      (fun s ->
        if Runner.correct s.report then C.Pass
        else
          C.Fail
            (Printf.sprintf "%d survivors but only %d/%d units performed"
               (Runner.survivors s.report)
               (Metrics.units_covered s.report.Runner.metrics)
               (Metrics.n_units s.report.Runner.metrics)));
  }

let audit name check_trace =
  {
    C.name;
    check =
      (fun s ->
        match check_trace s.trace with
        | [] -> C.Pass
        | v :: _ -> C.Fail (Format.asprintf "%a" Audit.pp_violation v));
  }

let bounded name measure bound =
  {
    C.name;
    check =
      (fun s ->
        let m = measure s.report.Runner.metrics in
        if bound <= 0 then C.Pass
        else if m <= bound then C.Pass_margin (float_of_int m /. float_of_int bound)
        else C.Fail (Printf.sprintf "%s = %d exceeds bound %d" name m bound));
  }

let work_bound = bounded "work" Metrics.work
let msgs_bound = bounded "messages" Metrics.messages
let rounds_bound = bounded "rounds" Metrics.rounds
let work_cap cap = bounded "work-cap" Metrics.work cap

let b_passive what = what = "go_ahead"
let c_passive what = what = "alive"

let sequential_audits passive =
  [
    audit "one-active" (Audit.at_most_one_active ~passive_msg:passive);
    audit "monotone" Audit.work_is_monotone;
  ]

let normalize name =
  match String.lowercase_ascii name with
  | "cchunked" -> "c-chunked"
  | "cnaive" -> "c-naive"
  | "dcoord" -> "d-coord"
  | s -> s

let oracles spec ~protocol =
  let base = [ completed; correct; audit "well-formed" Audit.well_formed ] in
  let t = Spec.processes spec in
  match normalize protocol with
  | "a" ->
      let g = Grid.make spec in
      base
      @ sequential_audits (fun _ -> false)
      @ [
          work_bound (Bounds.a_work g);
          msgs_bound (Bounds.a_msgs g);
          rounds_bound (Bounds.a_rounds g);
        ]
  | "b" ->
      let g = Grid.make spec in
      base
      @ sequential_audits b_passive
      @ [
          work_bound (Bounds.b_work g);
          msgs_bound (Bounds.b_msgs g);
          rounds_bound (Bounds.b_rounds g);
        ]
  | "c" ->
      (* the rounds bound overflows 63 bits (Thm 3.8's 2^(n+t) deadlines),
         so only work and messages are checked *)
      base
      @ sequential_audits c_passive
      @ [ work_bound (Bounds.c_work spec); msgs_bound (Bounds.c_msgs spec) ]
  | "c-chunked" ->
      base
      @ sequential_audits c_passive
      @ [
          work_bound (Bounds.c_chunked_work spec);
          msgs_bound (Bounds.c_chunked_msgs spec);
        ]
  | "d" ->
      (* arbitrary schedules can kill more than half a phase's processes, so
         judge against the revert-path envelope with f = t-1 *)
      base
      @ [
          work_bound (Bounds.d_work_revert spec);
          msgs_bound (Bounds.d_msgs_revert spec ~f:(t - 1));
          rounds_bound (Bounds.d_rounds_revert spec ~f:(t - 1));
        ]
  | _ -> base

(* ------------------------------------------------------------------ *)
(* Campaign drivers *)

let stamp spec proto sched =
  C.Schedule.add_meta sched
    [
      ("protocol", normalize proto.Protocol.name);
      ("n", string_of_int (Spec.n spec));
      ("t", string_of_int (Spec.processes spec));
    ]

let default_window spec proto =
  let ff = Runner.run spec proto in
  (2 * Metrics.rounds ff.Runner.metrics) + 2

(* [?jobs] on every campaign driver selects the parallel engine
   ([Campaign.run_parallel] over a Simkit.Pool); omitted, the sequential
   engine runs as before. Schedule *generation* stays sequential either
   way — it walks one seeded PRNG, which keeps historical seeds meaning
   the same campaigns — only execution and judging fan out. *)
let campaign ?jobs ?(seed = 1L) ?(executions = 200) ?window ?(extra = [])
    ?max_failures ?shrink_budget spec proto =
  let window =
    match window with Some w -> w | None -> default_window spec proto
  in
  let t = Spec.processes spec in
  let g = Dhw_util.Prng.create seed in
  let schedules =
    List.init executions (fun _ -> stamp spec proto (C.sample g ~t ~window))
  in
  C.run_dispatch ?jobs
    ~run:(run_schedule spec proto)
    ~oracles:(oracles spec ~protocol:proto.Protocol.name @ extra)
    ~candidates:C.schedule_candidates ?max_failures ?shrink_budget
    (List.to_seq schedules)

(* ------------------------------------------------------------------ *)
(* Crash–recovery campaigns *)

let recovery_protocol_name which = normalize (Recovery.name which)

let recovery_which_of_name name =
  match String.lowercase_ascii name with
  | "a+rec" | "a" -> Some Recovery.A
  | "b+rec" | "b" -> Some Recovery.B
  | _ -> None

let run_recovery_schedule ?max_rounds ?rejoin_rounds spec which sched =
  let trace = Simkit.Trace.create () in
  let fault = C.Schedule.to_fault sched in
  let report = Recovery.run ~fault ?max_rounds ?rejoin_rounds ~trace spec which in
  { report; trace }

(* Oracle bounds under crash–recovery are incarnation-counting envelopes:
   with [R] committed restarts an execution has at most [t + R] incarnations,
   each activating at most once and each performing / sending at most one
   full script's worth. They are airtight for an arbitrary adversary (a
   rejoiner can have slept through everything and redo the world), so
   margins on passing runs are the interesting signal, not the bound. *)

let dyn_bounded name measure bound_of =
  {
    C.name;
    check =
      (fun s ->
        let m = measure s.report.Runner.metrics in
        let bound = bound_of s in
        if bound <= 0 then C.Pass
        else if m <= bound then
          C.Pass_margin (float_of_int m /. float_of_int bound)
        else C.Fail (Printf.sprintf "%s = %d exceeds bound %d" name m bound));
  }

let incarnations spec s =
  Spec.processes spec + Metrics.restarts s.report.Runner.metrics

let recovery_multiplicity spec =
  {
    C.name = "multiplicity";
    check =
      (fun s ->
        let m = s.report.Runner.metrics in
        let bound = incarnations spec s in
        let worst = ref 0 in
        for u = 0 to Spec.n spec - 1 do
          worst := max !worst (Metrics.unit_multiplicity m u)
        done;
        if !worst <= bound then
          C.Pass_margin (float_of_int !worst /. float_of_int bound)
        else
          C.Fail
            (Printf.sprintf
               "a unit was performed %d times, above the incarnation count %d"
               !worst bound));
  }

let recovery_oracles spec which ~horizon =
  let g = Grid.make spec in
  let t = Spec.processes spec in
  let base_msgs, base_rounds =
    match which with
    | Recovery.A -> (Bounds.a_msgs g, Bounds.a_rounds g)
    | Recovery.B -> (Bounds.b_msgs g, Bounds.b_rounds g)
  in
  let restarts s = Metrics.restarts s.report.Runner.metrics in
  (* Each stable write strictly increases the writer's view rank, and there
     are (S+1)(G+2) + 1 ranks including No_msg. *)
  let rank_space =
    ((Grid.n_subchunks g + 1) * (Grid.n_groups g + 2)) + 1
  in
  [
    completed;
    correct;
    audit "well-formed" Audit.well_formed;
    recovery_multiplicity spec;
    dyn_bounded "work" Metrics.work (fun s -> Spec.n spec * incarnations spec s);
    dyn_bounded "messages" Metrics.messages (fun s ->
        (incarnations spec s * base_msgs) + (2 * t * restarts s));
    dyn_bounded "rounds" Metrics.rounds (fun s ->
        horizon + ((incarnations spec s + 1) * base_rounds) + 2);
    dyn_bounded "persists" Metrics.persists (fun _ -> t * rank_space);
  ]

let recovery_stamp spec which sched =
  C.Schedule.add_meta sched
    [
      ("protocol", recovery_protocol_name which);
      ("n", string_of_int (Spec.n spec));
      ("t", string_of_int (Spec.processes spec));
    ]

let recovery_horizon ~window ~restart_gap = window + (4 * (restart_gap + 2))

let recovery_campaign ?jobs ?(seed = 1L) ?(executions = 200) ?window
    ?(restart_gap = 6) ?rejoin_rounds ?(extra = []) ?max_failures
    ?shrink_budget spec which =
  let window =
    match window with
    | Some w -> w
    | None ->
        let ff = Recovery.run spec which in
        (2 * Metrics.rounds ff.Runner.metrics) + 2
  in
  let horizon = recovery_horizon ~window ~restart_gap in
  let t = Spec.processes spec in
  let g = Dhw_util.Prng.create seed in
  let schedules =
    List.init executions (fun _ ->
        recovery_stamp spec which (C.sample_recovery g ~t ~window ~restart_gap))
  in
  let max_rounds =
    horizon + ((2 * t * (match which with
      | Recovery.A -> Bounds.a_rounds (Grid.make spec)
      | Recovery.B -> Bounds.b_rounds (Grid.make spec))) + 64)
  in
  C.run_dispatch ?jobs
    ~run:(run_recovery_schedule ~max_rounds ?rejoin_rounds spec which)
    ~oracles:(recovery_oracles spec which ~horizon @ extra)
    ~candidates:C.schedule_candidates ?max_failures ?shrink_budget
    (List.to_seq schedules)

(* ------------------------------------------------------------------ *)
(* Corruption / Byzantine campaigns *)

type hardening = Unhardened | Hardened

let byz_protocol_name = function Unhardened -> "a" | Hardened -> "a+val"

let byz_hardening_of_name name =
  match String.lowercase_ascii name with
  | "a" -> Some Unhardened
  | "a+val" | "aval" -> Some Hardened
  | _ -> None

let run_byz_schedule ?max_rounds spec hardening sched =
  let trace = Simkit.Trace.create () in
  let fault = C.Schedule.to_fault sched in
  let report =
    match hardening with
    | Unhardened -> Validate.run_unhardened ~fault ?max_rounds ~trace spec
    | Hardened -> Validate.run ~fault ?max_rounds ~trace spec
  in
  { report; trace }

let no_phantom_unit =
  {
    C.name = "no-phantom-unit";
    check =
      (fun s ->
        let m = s.report.Runner.metrics in
        if Runner.survivors s.report > 0 && not (Metrics.all_units_done m) then
          C.Fail
            (Printf.sprintf
               "%d processes report done with only %d/%d units performed"
               (Runner.survivors s.report) (Metrics.units_covered m)
               (Metrics.n_units m))
        else C.Pass);
  }

let correct_despite_lies =
  {
    C.name = "correct-despite-lies";
    check =
      (fun s ->
        match s.report.Runner.outcome with
        | Simkit.Kernel.Stalled r ->
            C.Fail (Printf.sprintf "stalled at round %d" r)
        | Simkit.Kernel.Round_limit r ->
            C.Fail (Printf.sprintf "round limit hit at %d" r)
        | Simkit.Kernel.Completed ->
            if Runner.correct s.report then C.Pass
            else
              C.Fail
                (Printf.sprintf "%d survivors but only %d/%d units performed"
                   (Runner.survivors s.report)
                   (Metrics.units_covered s.report.Runner.metrics)
                   (Metrics.n_units s.report.Runner.metrics)));
  }

(* Hardening buys correctness, not free lunch: termination waits for f+1
   independent completion claims, so up to f+2 honest processes (one of
   them possibly half-overlapped by the deadline ladder) plus one per
   crash may each run a full script. The envelope is generous by one extra
   script so the margin — not the bound — carries the signal. *)
let validation_overhead spec =
  let g = Grid.make spec in
  let f = Validate.tolerated (Spec.processes spec) in
  {
    C.name = "validation-overhead-bounded";
    check =
      (fun s ->
        let m = s.report.Runner.metrics in
        let actives = f + 3 + Metrics.crashes m in
        let work_bound = actives * Spec.n spec in
        let msg_bound = actives * Bounds.a_msgs g in
        if Metrics.work m > work_bound then
          C.Fail
            (Printf.sprintf "work = %d exceeds hardened envelope %d"
               (Metrics.work m) work_bound)
        else if Metrics.messages m > msg_bound then
          C.Fail
            (Printf.sprintf "messages = %d exceeds hardened envelope %d"
               (Metrics.messages m) msg_bound)
        else
          C.Pass_margin (float_of_int (Metrics.work m) /. float_of_int work_bound));
  }

let byz_oracles spec ~hardening =
  let base = [ no_phantom_unit; correct_despite_lies ] in
  match hardening with
  | Unhardened -> base
  | Hardened -> base @ [ validation_overhead spec ]

let byz_stamp spec hardening sched =
  C.Schedule.add_meta sched
    [
      ("protocol", byz_protocol_name hardening);
      ("n", string_of_int (Spec.n spec));
      ("t", string_of_int (Spec.processes spec));
    ]

(* A subverted pid acts every round, so byz runs never stall — but they
   must be capped: the deadline ladder retires the last honest process by
   (t+1)·L even if no claim ever attests. *)
let byz_max_rounds spec ~window =
  ((Spec.processes spec + 2) * Grid.max_active_rounds (Grid.make spec))
  + window + 64

let byz_campaign ?jobs ?(seed = 1L) ?(executions = 200) ?window ?byz
    ?(extra = []) ?max_failures ?shrink_budget spec hardening =
  let t = Spec.processes spec in
  let byz =
    match byz with Some b -> b | None -> min (max 0 ((t / 3) - 1)) (t - 1)
  in
  let window =
    match window with
    | Some w -> w
    | None ->
        let ff = Validate.run_unhardened spec in
        (2 * Metrics.rounds ff.Runner.metrics) + 2
  in
  let g = Dhw_util.Prng.create seed in
  let schedules =
    List.init executions (fun _ ->
        byz_stamp spec hardening (C.sample_byz g ~t ~window ~byz))
  in
  C.run_dispatch ?jobs
    ~run:(run_byz_schedule ~max_rounds:(byz_max_rounds spec ~window) spec hardening)
    ~oracles:(byz_oracles spec ~hardening @ extra)
    ~candidates:C.schedule_candidates ~cost:C.Schedule.cost ?max_failures
    ?shrink_budget (List.to_seq schedules)

let exhaustive_campaign ?jobs ?window ?round_step ?modes ?(extra = [])
    ?max_failures ?shrink_budget spec proto =
  let window =
    match window with Some w -> w | None -> default_window spec proto
  in
  let round_step =
    match round_step with
    | Some s -> s
    | None -> max 1 ((window + 7) / 8)
  in
  let modes = Option.value modes ~default:C.default_modes in
  let t = Spec.processes spec in
  let schedules =
    Seq.map (stamp spec proto) (C.exhaustive ~t ~window ~round_step ~modes ())
  in
  C.run_dispatch ?jobs
    ~run:(run_schedule spec proto)
    ~oracles:(oracles spec ~protocol:proto.Protocol.name @ extra)
    ~candidates:C.schedule_candidates ?max_failures ?shrink_budget schedules
