(** Recovery-hardened Do-All: Protocols A and B under the crash–recovery
    fault model.

    The crash-stop protocols of the paper assume a crashed process is gone
    for good. This module wraps them for the stronger adversary of
    [Simkit.Fault] restart schedules, in which a crashed machine can come
    back with its volatile state wiped. Three mechanisms make the wrapped
    protocols survive that:

    {ul
    {- {e Stable-storage checkpointing.} Every process mirrors its best
       checkpoint view — the strongest [Ckpt_script.last] it has sent or
       received — to its [Simkit.Stable] cell, writing only on strict
       improvement so the persistence budget ({!Simkit.Metrics.persists})
       stays bounded by the number of distinct view ranks.}
    {- {e State-transfer handshake.} A rejoiner spends [rejoin_rounds]
       rounds rebooting: it broadcasts [Announce], live peers reply with
       [Transfer] of their best view, and it resumes from the maximum of
       the replies and its own stable cell via the protocol's
       [resume_state] (a passive state with a fresh, pid-staggered
       deadline).}
    {- {e Inbox sanitization.} Under crash–recovery two active processes
       can briefly overlap (a rejoiner's staggered deadline may fire inside
       another active's era), breaking the protocols' one-active-sender
       assumption. The wrapper delivers at most one view-carrying message
       per round to the inner protocol — the best-ranked one — so stale
       checkpoints can never overwrite fresher news.}}

    Correctness under restart storms (checked by [Fuzz] recovery oracles):
    every execution completes, all [n] units are performed whenever a
    process survives, and per-unit multiplicity stays below the incarnation
    count [t + restarts]. *)

type which = A | B

val name : which -> string
(** ["A+rec"] / ["B+rec"], the protocol name in reports. *)

val view_rank : Ckpt_script.last -> int * int
(** Total preorder on checkpoint views, lexicographic: completed subchunk,
    then partial [<] full ordered by informed-group index. Exposed for
    tests. *)

val run :
  ?fault:Simkit.Fault.t ->
  ?max_rounds:int ->
  ?trace:Simkit.Trace.t ->
  ?obs:Simkit.Obs.sink ->
  ?rejoin_rounds:int ->
  Spec.t ->
  which ->
  Runner.report
(** Execute the recovery-hardened protocol under [fault] (typically built
    from a schedule with restart entries). The returned report's metrics
    include committed restarts and stable-storage writes
    ({!Simkit.Metrics.restarts} / {!Simkit.Metrics.persists}).
    [rejoin_rounds] (default 3) is the state-transfer window: announce,
    peer replies in flight, absorb — a rejoiner resumes at
    [restart round + rejoin_rounds]. With [rejoin_rounds = 0] a rejoiner
    resumes immediately from its own stable cell alone. *)
