(** Recovery-hardened Do-All: Protocols A and B under the crash–recovery
    fault model.

    The crash-stop protocols of the paper assume a crashed process is gone
    for good. This module wraps them for the stronger adversary of
    [Simkit.Fault] restart schedules, in which a crashed machine can come
    back with its volatile state wiped. Three mechanisms make the wrapped
    protocols survive that:

    {ul
    {- {e Stable-storage checkpointing.} Every process mirrors its best
       checkpoint view — the strongest [Ckpt_script.last] it has sent or
       received — to its [Simkit.Stable] cell, writing only on strict
       improvement so the persistence budget ({!Simkit.Metrics.persists})
       stays bounded by the number of distinct view ranks.}
    {- {e State-transfer handshake.} A rejoiner spends [rejoin_rounds]
       rounds rebooting: it broadcasts [Announce], live peers reply with
       [Transfer] of their best view, and it resumes from the maximum of
       the replies and its own stable cell via the protocol's
       [resume_state] (a passive state with a fresh, pid-staggered
       deadline).}
    {- {e Inbox sanitization.} Under crash–recovery two active processes
       can briefly overlap (a rejoiner's staggered deadline may fire inside
       another active's era), breaking the protocols' one-active-sender
       assumption. The wrapper delivers at most one view-carrying message
       per round to the inner protocol — the best-ranked one — so stale
       checkpoints can never overwrite fresher news.}}

    Correctness under restart storms (checked by [Fuzz] recovery oracles):
    every execution completes, all [n] units are performed whenever a
    process survives, and per-unit multiplicity stays below the incarnation
    count [t + restarts]. *)

type which = A | B

val name : which -> string
(** ["A+rec"] / ["B+rec"], the protocol name in reports. *)

val view_rank : Ckpt_script.last -> int * int
(** Total preorder on checkpoint views, lexicographic: completed subchunk,
    then partial [<] full ordered by informed-group index. Exposed for
    tests. *)

(** {1 Deployment hooks}

    The pieces [run] composes, exported so a real [dhw_node] process can
    host exactly the same recovery-hardened per-pid process over sockets:
    the wrapper message type, the protocol adapters, the hardening
    combinator and the restart hook. The node supplies a
    [Simkit.Stable.t] whose [on_write] mirrors the cell to disk
    ([Dhw_net.Ckpt]), which is what makes "persist survives a crash" true
    under a real [SIGKILL]. *)

type 'm rmsg =
  | Payload of 'm  (** an inner-protocol message, passed through *)
  | Announce  (** rejoiner's state-transfer request, broadcast on revival *)
  | Transfer of Ckpt_script.last  (** a peer's reply: its best durable view *)

val show_rmsg : ('m -> string) -> 'm rmsg -> string

type 's rstate
(** Wrapper state: the inner protocol's state (or a rejoin handshake in
    progress) plus the best checkpoint view seen. *)

type ('s, 'm) adapter = {
  n_procs : int;
  init : Simkit.Types.pid -> 's * Simkit.Types.round option;
  step :
    Simkit.Types.pid ->
    Simkit.Types.round ->
    's ->
    'm Simkit.Types.envelope list ->
    ('s, 'm) Simkit.Types.outcome;
  show : 'm -> string;
  view_of : 'm -> Ckpt_script.ord option;
  resume :
    Simkit.Types.pid ->
    at:Simkit.Types.round ->
    Ckpt_script.last ->
    's * Simkit.Types.round option;
}
(** How the wrapper speaks one inner protocol: its process function, its
    view-extraction map and its post-rejoin resume state. *)

val adapter_a : Grid.t -> (Protocol_a.state, Protocol_a.msg) adapter
val adapter_b : Grid.t -> (Protocol_b.pstate, Protocol_b.msg) adapter

val harden :
  ('s, 'm) adapter ->
  stable:Ckpt_script.last Simkit.Stable.t ->
  ('s rstate, 'm rmsg) Simkit.Types.process
(** The recovery-hardened per-pid process: checkpoint mirroring on strict
    view-rank improvement, Announce/Transfer state transfer, and best-rank
    inbox sanitization — the exact process [run] feeds the kernel. *)

val recover_hook :
  Ckpt_script.last Simkit.Stable.t ->
  rejoin_rounds:int ->
  Simkit.Types.pid ->
  Simkit.Types.round ->
  's rstate * Simkit.Types.round option
(** The state a restarted incarnation adopts at its revival round: a
    rejoin handshake window seeded from the pid's stable cell. *)

val run :
  ?fault:Simkit.Fault.t ->
  ?max_rounds:int ->
  ?trace:Simkit.Trace.t ->
  ?obs:Simkit.Obs.sink ->
  ?spans:Simkit.Obs.sink ->
  ?rejoin_rounds:int ->
  Spec.t ->
  which ->
  Runner.report
(** Execute the recovery-hardened protocol under [fault] (typically built
    from a schedule with restart entries). The returned report's metrics
    include committed restarts and stable-storage writes
    ({!Simkit.Metrics.restarts} / {!Simkit.Metrics.persists}).
    [rejoin_rounds] (default 3) is the state-transfer window: announce,
    peer replies in flight, absorb — a rejoiner resumes at
    [restart round + rejoin_rounds]. With [rejoin_rounds = 0] a rejoiner
    resumes immediately from its own stable cell alone. *)
