(** Per-unit latency for the online Do-All setting: arrival round →
    first-performance round, collected observationally.

    The collector is an {!Simkit.Obs} sink that watches [Work] events; the
    protocol itself is untouched. A unit's arrival round is the earliest
    round any site receives it (from the {!Protocol_d_online.config}
    arrival schedule); its completion round is the first round any process
    performs it. The difference, in rounds, feeds a {!Dhw_util.Hist}
    histogram whose p50/p99/p999 surface in the [latency] section of
    [dhw-report/v4]. Units that never complete (their only site crashed
    before sharing them) are reported as [pending], not silently dropped. *)

type t

val create : arrivals:(int * int * int) list -> t
(** [arrivals] as in {!Protocol_d_online.config}: (round, unit id, site).
    A unit listed at several sites arrives at the earliest listed round. *)

val sink : t -> Simkit.Obs.sink
(** Watches [Work] events, ignores everything else. Only a unit's first
    performance counts; re-execution under crashes does not re-record. *)

val hist : t -> Dhw_util.Hist.t
(** Latencies (completion round − arrival round, min 0) of completed
    units, in rounds. *)

val completed : t -> int
(** Units that arrived and were performed at least once. *)

val lost : t -> int
(** Units that arrived but were never performed. *)

val to_json : t -> Dhw_util.Jsonw.t
(** The [latency] report section: [unit] ("rounds"), [completed], [lost],
    and the {!Dhw_util.Hist.to_json} summary fields inline. *)

val gen_arrivals :
  seed:int64 ->
  n_units:int ->
  sites:int ->
  horizon:int ->
  (int * int * int) list
(** A seeded arrival schedule for CLI and bench use: each unit id in
    [0, n_units) arrives at a uniform round in [0, horizon) at a uniform
    site in [0, sites), drawn from {!Dhw_util.Prng}; sorted by (round,
    unit) so the schedule is deterministic and readable. *)
