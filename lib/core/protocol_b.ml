open Simkit.Types
open Ckpt_script

type msg = Ord of Ckpt_script.ord | Go_ahead

let show_msg = function Ord o -> show_ord o | Go_ahead -> "go_ahead"

type mode =
  | Passive
  | Preactive of { next_target : pid }
  | Active of action list

type pstate = { mode : mode; last : last; last_at : round }

(* Deadline machinery (Section 2.3). On perfect-square divisible instances
   these reduce to the paper's PTO = n/t + 2, GTO(i) = n/√t + 3√t +
   (√t - ī - 1)PTO + 1; the generalized chunk time [s·⌈n/S⌉ + s + 2G] adds
   only rounding slack. *)

let pto grid = Grid.subchunk_size_max grid + 2

let chunk_time grid =
  let s = Grid.group_size grid in
  (s * Grid.subchunk_size_max grid) + s + (2 * Grid.n_groups grid)

let gto_rank grid rank =
  let s = Grid.group_size grid in
  chunk_time grid + ((s - rank - 1) * pto grid) + 1

let gto grid i = gto_rank grid (Grid.rank_in_group grid i)

let ddb grid j i =
  let gj = Grid.group_of grid j and gi = Grid.group_of grid i in
  if gj = gi then pto grid
  else begin
    assert (gj > gi);
    gto grid i + ((gj - gi - 1) * gto_rank grid 0)
  end

let tt grid j i =
  let gj = Grid.group_of grid j and gi = Grid.group_of grid i in
  if gj = gi then (Grid.rank_in_group grid j - Grid.rank_in_group grid i) * pto grid
  else ddb grid j i + (Grid.rank_in_group grid j * pto grid)

let round_bound grid =
  let t = Spec.processes (Grid.spec grid) in
  Grid.max_active_rounds grid + tt grid (t - 1) 0 + 1

let proc_on_grid grid =
  let inject o = Ord o in
  (* Fictitious round-0 message "(0, G)" from process 0 (Section 2.3): seeds
     the deadline recursion and makes every takeover prologue well-formed
     without reaching the No_msg case. Using g = G makes the prologue's
     continuation Fullcheckpoint(0, G+1) empty. *)
  let fictitious = Last_ord { ord = Full (0, Grid.n_groups grid); src = 0 } in
  let init pid =
    if pid = 0 then ({ mode = Active (work_script grid 0 1); last = fictitious; last_at = 0 }, Some 0)
    else ({ mode = Passive; last = fictitious; last_at = 0 }, Some (ddb grid pid 0))
  in
  let step pid r st inbox =
    let go_active last last_at script_last =
      let o = run_active ~inject r (takeover_script grid pid script_last) in
      {
        state = { mode = Active o.state; last; last_at };
        sends = o.sends;
        work = o.work;
        terminate = o.terminate;
        wakeup = o.wakeup;
      }
    in
    match st.mode with
    | Active script ->
        let o = run_active ~inject r script in
        { state = { st with mode = Active o.state }; sends = o.sends; work = o.work;
          terminate = o.terminate; wakeup = o.wakeup }
    | Passive | Preactive _ -> (
        let ords =
          List.filter_map
            (fun { src; payload; _ } ->
              match payload with Ord o -> Some (src, o) | Go_ahead -> None)
            inbox
        in
        let got_go_ahead =
          List.exists (fun { payload; _ } -> payload = Go_ahead) inbox
        in
        (* At most one active sender per round; keep the latest. *)
        let last, last_at =
          List.fold_left
            (fun (_, _) (src, ord) -> (Last_ord { ord; src }, r))
            (st.last, st.last_at) ords
        in
        if knows_all_done grid pid last then
          { state = { st with last; last_at }; sends = []; work = [];
            terminate = true; wakeup = None }
        else if got_go_ahead then
          (* A probed live process becomes active immediately; its first
             action is an own-group broadcast, which reaches the prober. *)
          go_active last last_at last
        else if ords <> [] then
          (* Fresh news: back to passive with a renewed deadline. *)
          let src = match last with Last_ord { src; _ } -> src | No_msg -> 0 in
          { state = { mode = Passive; last; last_at }; sends = []; work = [];
            terminate = false; wakeup = Some (r + ddb grid pid src) }
        else
          (* Woken by a deadline with an empty inbox. *)
          let src = match st.last with Last_ord { src; _ } -> src | No_msg -> 0 in
          let first_target =
            match st.mode with
            | Preactive { next_target } -> next_target
            | Passive | Active _ ->
                (* entering the preactive phase (PreactivePhase, Figure 2) *)
                if Grid.group_of grid src <> Grid.group_of grid pid then
                  (Grid.group_of grid pid - 1) * Grid.group_size grid
                else src + 1
          in
          if first_target >= pid then go_active st.last st.last_at st.last
          else
            {
              state = { st with mode = Preactive { next_target = first_target + 1 } };
              sends = [ { dst = first_target; payload = Go_ahead } ];
              work = [];
              terminate = false;
              wakeup = Some (r + pto grid);
            })
  in
  { init; step }

let resume_state grid pid ~at last =
  (* A rejoiner resumes passive with its recovered view. Guard the
     transferred source: a state-transfer reply can carry a view whose
     sender sits in a {e higher} group than the rejoiner — a configuration
     unreachable under normal operation (an active's full checkpoints go
     only to groups above its own), for which DDB(j, i) is undefined.
     Re-attribute such a view to process 0 (group 0): the checkpoint
     content is what matters for resumption, and DDB(j, 0) is the most
     conservative (largest) deadline, so the rejoiner defers longest before
     probing. *)
  let fictitious = Last_ord { ord = Full (0, Grid.n_groups grid); src = 0 } in
  let last =
    match last with
    | No_msg -> fictitious
    | Last_ord { ord; src } ->
        if Grid.group_of grid src > Grid.group_of grid pid then
          Last_ord { ord; src = 0 }
        else last
  in
  let src = match last with Last_ord { src; _ } -> src | No_msg -> 0 in
  let wake =
    if knows_all_done grid pid last then at + 1 else at + ddb grid pid src
  in
  ({ mode = Passive; last; last_at = at }, Some wake)

let make spec =
  let grid = Grid.make spec in
  Protocol.Packed { proc = proc_on_grid grid; show = show_msg }

let protocol =
  {
    Protocol.name = "B";
    describe = "work-optimal, O(t^1.5) msgs, O(n+t) rounds (Thm 2.8)";
    make;
  }
