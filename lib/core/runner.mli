(** Execute a protocol on a problem instance under a fault plan and report
    the paper's cost measures plus a correctness verdict. *)

type report = {
  spec : Spec.t;
  protocol : string;
  metrics : Simkit.Metrics.t;
  statuses : Simkit.Types.status array;
  outcome : Simkit.Kernel.run_outcome;
}

val run :
  ?fault:Simkit.Fault.t ->
  ?max_rounds:int ->
  ?trace:Simkit.Trace.t ->
  ?obs:Simkit.Obs.sink ->
  ?spans:Simkit.Obs.sink ->
  Spec.t ->
  Protocol.t ->
  report

val survivors : report -> int
(** Processes that terminated (did not crash). *)

val crashed : report -> int

val work_complete : report -> bool
(** Every unit performed at least once. *)

val correct : report -> bool
(** The paper's correctness condition: the execution ran to completion
    (no stall, no round-limit abort) and, if at least one process survived,
    all [n] units of work were performed. *)

val pp : Format.formatter -> report -> unit
