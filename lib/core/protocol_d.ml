open Simkit.Types
module ISet = Set.Make (Int)
module Uset = Dhw_util.Unitset
module Intmath = Dhw_util.Intmath

(* Process sets (T, U) are ISets — size <= t, fine. Unit sets (S and its
   derivatives) are {!Dhw_util.Unitset} interval sets: S starts as the single
   run [0, n) and only ever shrinks by removing contiguous slices, so it
   stays a handful of runs no matter how large n is — O(t) words instead of
   an O(n) tree per process, and inter/diff in O(runs). *)
type msg =
  | View of { phase : int; s : Uset.t; live : ISet.t; done_ : bool }
  | AOrd of Ckpt_script.ord  (** embedded-Protocol-A traffic after a revert *)

let show_msg = function
  | View { phase; s; live; done_ } ->
      Printf.sprintf "view(p%d,|S|=%d,|T|=%d,%b)" phase (Uset.cardinal s)
        (ISet.cardinal live) done_
  | AOrd o -> "A:" ^ Ckpt_script.show_ord o

(* Context of the embedded Protocol A after a revert: A-rank k is the k-th
   smallest surviving pid, A-unit k the k-th smallest outstanding unit. *)
type ra_ctx = {
  ra_grid : Grid.t;
  ra_units : Uset.t;  (* A-unit k = k-th smallest outstanding unit *)
  ra_ranks : int array;
  ra_my_rank : int;
  ra_deadline : round;
}

type working_st = {
  w_phase : int;
  s_after : Uset.t;  (* S minus my own slice *)
  w_live : ISet.t;  (* T from the previous agreement *)
  w_round0 : int;  (* 1 in phase 1 (no grace round), 0 afterwards *)
  slice : Uset.t;
  slice_n : int;  (* [Uset.cardinal slice], precomputed *)
  idx : int;  (* rounds of this work phase already spent *)
  block : int;  (* ⌈|S|/|T|⌉ = total work-phase rounds *)
  (* agreement traffic that arrived early from peers one round ahead: *)
  stash_s : Uset.t;
  stash_t : ISet.t;
  stash_done : (Uset.t * ISet.t) option;
}

type agreeing_st = {
  a_phase : int;
  a_s : Uset.t;
  a_live_new : ISet.t;  (* T being re-accumulated, starts {j} ∪ stash *)
  a_u : ISet.t;  (* processes not suspected; starts as the old T *)
  a_old_live : ISet.t;  (* T' for the revert test *)
  a_round0 : int;
  a_iter : int;
  a_adopted : (Uset.t * ISet.t) option;
}

type mode =
  | Working of working_st
  | Agreeing of agreeing_st
  | RWaiting of { ra : ra_ctx; last : Ckpt_script.last }
  | RActive of { ra : ra_ctx; script : Ckpt_script.action list }

let iset_of_range k = ISet.of_list (List.init k Fun.id)

let grade set x = ISet.cardinal (ISet.filter (fun y -> y < x) set)

let slice_of s live pid block =
  let rank = grade live pid in
  let lo = rank * block in
  Uset.slice s ~lo ~hi:(lo + block)

let protocol_with_alpha ~alpha ~name =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Protocol_d: alpha must be in (0,1)";
  let make spec =
    let n = Spec.n spec in
    let t = Spec.processes spec in
    let revert_needed ~old_live ~live_new =
      float_of_int (ISet.cardinal live_new)
      < alpha *. float_of_int (ISet.cardinal old_live)
    in
    let enter_work ~phase ~s ~live ~round0 pid =
      let block = max 1 (Intmath.ceil_div (Uset.cardinal s) (ISet.cardinal live)) in
      let slice = slice_of s live pid block in
      Working
        {
          w_phase = phase;
          s_after = Uset.diff s slice;
          slice_n = Uset.cardinal slice;
          w_live = live;
          w_round0 = round0;
          slice;
          idx = 0;
          block;
          stash_s = s (* an upper bound; intersections only shrink it *);
          stash_t = ISet.empty;
          stash_done = None;
        }
    in
    let enter_revert ~s ~live pid r =
      let ra_units = s in
      let ra_ranks = Array.of_list (ISet.elements live) in
      let sub_spec =
        Spec.make ~n:(Uset.cardinal ra_units) ~t:(Array.length ra_ranks)
      in
      let ra_grid = Grid.make sub_spec in
      let ra_my_rank = grade live pid in
      (* Deadlines are relative to each process's own agreement-completion
         round; completions skew by at most one round, absorbed by the +2. *)
      let base = r + 1 in
      let ra_deadline = base + (ra_my_rank * (Grid.max_active_rounds ra_grid + 2)) in
      let ra = { ra_grid; ra_units; ra_ranks; ra_my_rank; ra_deadline } in
      if ra_my_rank = 0 then
        (RActive { ra; script = Ckpt_script.work_script ra_grid 0 1 }, Some base)
      else (RWaiting { ra; last = Ckpt_script.No_msg }, Some ra_deadline)
    in
    let run_ra ra r script =
      let o =
        Ckpt_script.run_active
          ~inject:(fun o -> AOrd o)
          ~map_dst:(fun rank -> ra.ra_ranks.(rank))
          ~map_unit:(fun k -> Uset.nth ra.ra_units k)
          r script
      in
      {
        state = RActive { ra; script = o.state };
        sends = o.sends;
        work = o.work;
        terminate = o.terminate;
        wakeup = o.wakeup;
      }
    in
    let rank_of_pid ra pid =
      let rec find i =
        if i >= Array.length ra.ra_ranks then None
        else if ra.ra_ranks.(i) = pid then Some i
        else find (i + 1)
      in
      find 0
    in
    let init pid =
      let all = iset_of_range t in
      let units = Uset.of_range 0 n in
      (enter_work ~phase:1 ~s:units ~live:all ~round0:1 pid, Some 0)
    in
    (* One agreement iteration: merge the inbox, apply removals, decide
       doneness, broadcast, and either continue, move to the next work
       phase, revert to Protocol A, or terminate. *)
    let agree_step pid r a inbox =
      let views =
        List.filter_map
          (fun { src; payload; _ } ->
            match payload with
            | View { phase; s; live; done_ } when phase = a.a_phase ->
                Some (src, s, live, done_)
            | View _ | AOrd _ -> None)
          inbox
      in
      let received = ISet.of_list (List.map (fun (src, _, _, _) -> src) views) in
      let s, live_new, adopted =
        List.fold_left
          (fun (s, tn, ad) (_, vs, vt, done_) ->
            if done_ then (vs, vt, Some (vs, vt))
            else (Uset.inter s vs, ISet.union tn vt, ad))
          (a.a_s, a.a_live_new, a.a_adopted)
          views
      in
      let counter = a.a_round0 + a.a_iter - 1 in
      let u' =
        if counter >= 1 then ISet.add pid (ISet.inter a.a_u received) else a.a_u
      in
      let stable = ISet.equal u' a.a_u in
      let s, live_new =
        match adopted with Some (s, tn) -> (s, tn) | None -> (s, live_new)
      in
      let done_ = adopted <> None || (stable && counter >= 1) in
      let bcast =
        List.map
          (fun dst ->
            { dst; payload = View { phase = a.a_phase; s; live = live_new; done_ } })
          (ISet.elements (ISet.remove pid u'))
      in
      if not done_ then
        {
          state =
            Agreeing
              { a with a_s = s; a_live_new = live_new; a_u = u';
                a_iter = a.a_iter + 1; a_adopted = adopted };
          sends = bcast;
          work = [];
          terminate = false;
          wakeup = Some (r + 1);
        }
      else if Uset.is_empty s then
        { state = Agreeing a; sends = bcast; work = []; terminate = true; wakeup = None }
      else if revert_needed ~old_live:a.a_old_live ~live_new then begin
        let mode, wakeup = enter_revert ~s ~live:live_new pid r in
        { state = mode; sends = bcast; work = []; terminate = false; wakeup }
      end
      else
        {
          state = enter_work ~phase:(a.a_phase + 1) ~s ~live:live_new ~round0:0 pid;
          sends = bcast;
          work = [];
          terminate = false;
          wakeup = Some (r + 1);
        }
    in
    let step pid r st inbox =
      match st with
      | Working w ->
          (* Stash agreement traffic from peers up to one round ahead. *)
          let w =
            List.fold_left
              (fun w { payload; _ } ->
                match payload with
                | View { phase; s; live; done_ } when phase = w.w_phase ->
                    if done_ then { w with stash_done = Some (s, live) }
                    else
                      {
                        w with
                        stash_s = Uset.inter w.stash_s s;
                        stash_t = ISet.union w.stash_t live;
                      }
                | View _ | AOrd _ -> w)
              w inbox
          in
          let work = if w.idx < w.slice_n then [ Uset.nth w.slice w.idx ] else [] in
          if w.idx < w.block - 1 then
            {
              state = Working { w with idx = w.idx + 1 };
              sends = [];
              work;
              terminate = false;
              wakeup = Some (r + 1);
            }
          else begin
            (* Last work round: piggyback the first agreement broadcast
               (the model allows one unit of work plus one round of
               communication per time unit). *)
            let s = Uset.inter w.s_after w.stash_s in
            let live_new = ISet.add pid w.stash_t in
            let bcast =
              List.map
                (fun dst ->
                  {
                    dst;
                    payload =
                      View
                        { phase = w.w_phase; s; live = ISet.singleton pid; done_ = false };
                  })
                (ISet.elements (ISet.remove pid w.w_live))
            in
            {
              state =
                Agreeing
                  {
                    a_phase = w.w_phase;
                    a_s = s;
                    a_live_new = live_new;
                    a_u = w.w_live;
                    a_old_live = w.w_live;
                    a_round0 = w.w_round0;
                    a_iter = 1;
                    a_adopted = w.stash_done;
                  };
              sends = bcast;
              work;
              terminate = false;
              wakeup = Some (r + 1);
            }
          end
      | Agreeing a -> agree_step pid r a inbox
      | RWaiting { ra; last } ->
          let last =
            List.fold_left
              (fun acc { src; payload; _ } ->
                match (payload, rank_of_pid ra src) with
                | AOrd ord, Some rank -> Ckpt_script.Last_ord { ord; src = rank }
                | (AOrd _ | View _), _ -> acc)
              last inbox
          in
          if Ckpt_script.knows_all_done ra.ra_grid ra.ra_my_rank last then
            {
              state = RWaiting { ra; last };
              sends = [];
              work = [];
              terminate = true;
              wakeup = None;
            }
          else if r >= ra.ra_deadline then
            run_ra ra r (Ckpt_script.takeover_script ra.ra_grid ra.ra_my_rank last)
          else
            {
              state = RWaiting { ra; last };
              sends = [];
              work = [];
              terminate = false;
              wakeup = Some ra.ra_deadline;
            }
      | RActive { ra; script } -> run_ra ra r script
    in
    Protocol.Packed { proc = { init; step }; show = show_msg }
  in
  {
    Protocol.name;
    describe =
      "parallel phases + crash-model agreement; n/t+O(1) rounds failure-free (Thm 4.1)";
    make;
  }

let alpha_default = 0.5

let protocol = protocol_with_alpha ~alpha:alpha_default ~name:"D"
