module Hist = Dhw_util.Hist
module J = Dhw_util.Jsonw

type t = {
  arrival : (int, int) Hashtbl.t; (* unit -> earliest arrival round *)
  mutable open_units : int; (* arrived, not yet performed *)
  hist : Hist.t;
}

let create ~arrivals =
  let arrival = Hashtbl.create 64 in
  List.iter
    (fun (r, u, _site) ->
      match Hashtbl.find_opt arrival u with
      | Some r0 when r0 <= r -> ()
      | _ -> Hashtbl.replace arrival u r)
    arrivals;
  { arrival; open_units = Hashtbl.length arrival; hist = Hist.create () }

let sink t = function
  | Simkit.Obs.Work { unit_id; at; _ } -> (
      match Hashtbl.find_opt t.arrival unit_id with
      | Some r0 ->
          Hashtbl.remove t.arrival unit_id;
          t.open_units <- t.open_units - 1;
          Hist.record t.hist (max 0 (at - r0))
      | None -> ())
  | _ -> ()

let hist t = t.hist
let completed t = Hist.count t.hist
let lost t = t.open_units

let to_json t =
  match Hist.to_json t.hist with
  | J.Obj fields ->
      J.Obj
        (("unit", J.Str "rounds")
        :: ("completed", J.Int (completed t))
        :: ("lost", J.Int (lost t))
        :: List.filter (fun (k, _) -> k <> "count") fields)
  | j -> j

let gen_arrivals ~seed ~n_units ~sites ~horizon =
  if n_units < 0 then invalid_arg "Latency.gen_arrivals: n_units >= 0";
  if sites < 1 then invalid_arg "Latency.gen_arrivals: sites >= 1";
  if horizon < 1 then invalid_arg "Latency.gen_arrivals: horizon >= 1";
  let g = Dhw_util.Prng.create seed in
  List.init n_units (fun u ->
      (Dhw_util.Prng.int g horizon, u, Dhw_util.Prng.int g sites))
  |> List.sort compare
