open Simkit.Types

type ord = Partial of int | Full of int * int

let show_ord = function
  | Partial c -> Printf.sprintf "(%d)" c
  | Full (c, g) -> Printf.sprintf "(%d,g%d)" c g

type action = Do_units of int * int | Bcast of ord * pid list

let script_rounds script =
  List.fold_left
    (fun acc -> function
      | Do_units (lo, hi) -> acc + (hi - lo)
      | Bcast _ -> acc + 1)
    0 script

type last = No_msg | Last_ord of { ord : ord; src : pid }

let c_of_last = function
  | No_msg -> 0
  | Last_ord { ord = Partial c; _ } | Last_ord { ord = Full (c, _); _ } -> c

let partial_ckpt grid j c = [ Bcast (Partial c, Grid.members_above grid j) ]

let full_ckpt grid j c l =
  let num_groups = Grid.n_groups grid in
  let rec go g acc =
    if g > num_groups then List.rev acc
    else
      go (g + 1)
        (Bcast (Full (c, g), Grid.members_above grid j)
        :: Bcast (Full (c, g), Grid.members grid g)
        :: acc)
  in
  go l []

let work_script grid j from_sub =
  let last_sub = Grid.n_subchunks grid in
  let gj = Grid.group_of grid j in
  let rec go c acc =
    if c > last_sub then List.concat (List.rev acc)
    else
      let lo, hi = Grid.subchunk_range grid c in
      let units = if hi > lo then [ Do_units (lo, hi) ] else [] in
      let ckpts =
        partial_ckpt grid j c
        @ if Grid.is_chunk_end grid c then full_ckpt grid j c (gj + 1) else []
      in
      go (c + 1) ((units @ ckpts) :: acc)
  in
  go from_sub []

let takeover_script grid j last =
  let gj = Grid.group_of grid j in
  match last with
  | No_msg ->
      (* An empty "(0)" partial checkpoint keeps the invariant that the first
         takeover action is an own-group broadcast (Protocol B's fictitious
         round-0 message makes this case unreachable there, but Protocol A
         reaches it when a process saw no message at all). *)
      partial_ckpt grid j 0 @ work_script grid j 1
  | Last_ord { ord = Partial c; _ } ->
      partial_ckpt grid j c
      @ (if c > 0 && c mod Grid.group_size grid = 0 then full_ckpt grid j c (gj + 1)
         else [])
      @ work_script grid j (c + 1)
  | Last_ord { ord = Full (c, g); src } ->
      let prologue =
        if Grid.group_of grid src <> gj then
          (* the sender was informing my whole group (g = g_j): spread the
             news in my remainder, then continue the full checkpoint with
             the next group *)
          partial_ckpt grid j c @ full_ckpt grid j c (g + 1)
        else
          (* the sender was echoing to our group that group g was informed:
             re-echo, then continue from group g+1 *)
          Bcast (Full (c, g), Grid.members_above grid j) :: full_ckpt grid j c (g + 1)
      in
      prologue @ work_script grid j (c + 1)

let knows_all_done grid j last =
  let last_sub = Grid.n_subchunks grid in
  match last with
  | No_msg -> false
  | Last_ord { ord = Partial c; _ } -> c = last_sub
  | Last_ord { ord = Full (c, g); _ } -> c = last_sub && g = Grid.group_of grid j

let run_active ~inject ?(map_dst = Fun.id) ?(map_unit = Fun.id) r script =
  match script with
  | [] -> { state = []; sends = []; work = []; terminate = true; wakeup = None }
  | Do_units (lo, hi) :: rest ->
      (* one unit per round, exactly as the per-unit actions did *)
      let rest = if lo + 1 < hi then Do_units (lo + 1, hi) :: rest else rest in
      {
        state = rest;
        sends = [];
        work = [ map_unit lo ];
        terminate = rest = [];
        wakeup = Some (r + 1);
      }
  | Bcast (m, dsts) :: rest ->
      {
        state = rest;
        sends = List.map (fun dst -> { dst = map_dst dst; payload = inject m }) dsts;
        work = [];
        terminate = rest = [];
        wakeup = Some (r + 1);
      }
