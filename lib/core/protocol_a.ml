open Simkit.Types
open Ckpt_script

type msg = Ckpt_script.ord = Partial of int | Full of int * int

let show_msg = Ckpt_script.show_ord

(* A waiting process carries its own takeover deadline: for the original
   incarnations it is the static [DD(j) = j·L] ladder, but a rejoiner
   resumed by [Doall.Recovery] gets a fresh deadline staggered into the
   future relative to its restart round. *)
type state = Waiting of { last : last; deadline : round } | Active of action list

let deadline grid j = j * Grid.max_active_rounds grid

let proc_on_grid grid =
  let inject = Fun.id in
  let init pid =
    if pid = 0 then (Active (work_script grid 0 1), Some 0)
    else
      ( Waiting { last = No_msg; deadline = deadline grid pid },
        Some (deadline grid pid) )
  in
  let step pid r st inbox =
    match st with
    | Active script ->
        let o = run_active ~inject r script in
        { o with state = Active o.state }
    | Waiting { last; deadline = dl } ->
        (* At most one process is active, so at most one ordinary message
           arrives per round; the fold keeps the latest for robustness. *)
        let last =
          List.fold_left
            (fun _acc { src; payload; _ } -> Last_ord { ord = payload; src })
            last inbox
        in
        if knows_all_done grid pid last then
          { state = Waiting { last; deadline = dl }; sends = []; work = [];
            terminate = true; wakeup = None }
        else if r >= dl then
          let o = run_active ~inject r (takeover_script grid pid last) in
          { o with state = Active o.state }
        else
          {
            state = Waiting { last; deadline = dl };
            sends = [];
            work = [];
            terminate = false;
            wakeup = Some dl;
          }
  in
  { init; step }

let resume_state grid pid ~at last =
  (* A fresh deadline ladder relative to the rejoin round, staggered by pid
     so simultaneous rejoiners never share a takeover round; [pid + 1]
     leaves a full era for whoever is currently active to finish and
     broadcast the news. *)
  let dl = at + ((pid + 1) * Grid.max_active_rounds grid) in
  let wake = if knows_all_done grid pid last then at + 1 else dl in
  (Waiting { last; deadline = dl }, Some wake)

let make_on_grid grid =
  Protocol.Packed { proc = proc_on_grid grid; show = show_msg }

let protocol =
  {
    Protocol.name = "A";
    describe = "work-optimal, O(t^1.5) msgs, O(nt) worst-case rounds (Thm 2.3)";
    make = (fun spec -> make_on_grid (Grid.make spec));
  }

let protocol_with_group_size s =
  {
    Protocol.name = Printf.sprintf "A[s=%d]" s;
    describe = "Protocol A with a non-standard checkpoint-group size";
    make = (fun spec -> make_on_grid (Grid.make_with_group_size spec s));
  }
