(** Validated-message hardening of Protocol A against corruption and
    Byzantine adversaries (the [Corrupt]/[Byzantine] powers of
    [Simkit.Fault] schedules).

    The crash-stop protocols trust every checkpoint view they receive:
    [Ckpt_script.knows_all_done] accepts a single [(S)] or [(S, g_j)]
    message, so one forged "all done" retires a waiting process with the
    work unperformed — the {e phantom-termination} attack (demonstrably
    found by [doall_cli byz-fuzz] against plain A). This module wraps
    Protocol A with two mechanisms:

    {ul
    {- {e Authenticated views.} Every message carries a per-sender keyed
       digest over its view payload ({!signed}). A receiver drops anything
       whose authenticator does not verify against the named claimant
       ({!verify}), so in-flight corruption and impersonation are rejected
       outright (counted via [Simkit.Metrics.record_reject] / observed as
       [Obs.Reject]). A Byzantine process still signs lies with its own
       key — authentication alone cannot stop it.}
    {- {e Quorum attestation.} Each process folds verified claims into a
       per-signer table of claimed completed subchunks (monotone) and
       believes only the [(f+1)]-th largest claim, [f = {!tolerated} p]:
       any [f+1] distinct signers include an honest one, and honest claims
       are anchored — an honest process only claims subchunks derived from
       its own work or from previously attested views — so the attested
       prefix is truly done. The inner protocol sees exactly one synthetic
       message per step (the attested subchunk, as a partial checkpoint)
       and nothing else.}}

    Correctness: under any schedule with [b <= f] Byzantine processes,
    ["A+val"] never reports an unprocessed unit done — a process terminates
    only on an attested all-done view. The price is redundancy: a
    completion claim is only believed once [f+1] distinct processes have
    independently reached it, so worst-case (and, with [b] subverted
    workers, typical) work is [≈ (f+1)·n] — the overhead bench E20
    measures. Liveness never depends on the quorum: the deadline ladder
    fires regardless, so starved processes take over and do the work
    themselves. *)

open Simkit.Types

(** {1 Authenticated views} *)

type signed = {
  body : Ckpt_script.ord;
  claimant : pid;  (** who claims the view (must equal the wire source) *)
  auth : int64;  (** keyed digest over [(claimant, body)] *)
}

val show_signed : signed -> string

val sign : pid -> Ckpt_script.ord -> signed

val verify : src:pid -> signed -> bool
(** True iff the claimant is the wire source and the authenticator matches.
    The digest is a keyed splitmix64 mix — enough to make forging another
    process's signature impossible for the simulated adversary, which never
    attempts inversion. *)

val tolerated : int -> int
(** [tolerated p = (p - 1) / 3]: the Byzantine tolerance [f] of a [p]-process
    instance ([p >= 3f + 1]). *)

val claimed_subchunk : Ckpt_script.ord -> int
(** The completed subchunk a view vouches for — what quorum attestation
    cross-checks across signers. *)

val attested : f:int -> int option array -> (pid * int) option
(** The [(f+1)]-th largest per-signer claimed subchunk (claims descending,
    claimant ascending), as [(claimant, subchunk)] — [None] until [f+1]
    distinct signers have claimed anything. The quorum rule both the sync
    and async validation wrappers believe. *)

(** {1 Tamper models}

    How the adversary speaks each message type (consumed by
    [Simkit.Kernel]'s [?tamper]). Both are pure: forged traffic is drawn
    from dedicated PRNG streams keyed by [(pid, round)], never from
    generator state, so runs replay bit-for-bit at any [--jobs] level. *)

val mutate_body :
  Grid.t -> Simkit.Fault.tamper -> dst:pid -> Ckpt_script.ord -> Ckpt_script.ord
(** The in-flight garbling both substrates share: [Lying_view] rewrites to
    [Full (S, g_dst)], [Replay_stale] regresses to a salted stale partial,
    [Inflate_done] bumps the claimed subchunk. *)

val forge_plain : Grid.t -> pid -> at:int -> (pid * Ckpt_script.ord) list
(** The raw-alphabet forged salvo of a Byzantine [pid] at a round/tick: 1–2
    [(dst, body)] lies, mostly phantom-termination shaped, drawn from a
    dedicated stream keyed by [(pid, at)] (pure — replays bit-for-bit). *)

val forge_signed : Grid.t -> pid -> at:int -> (pid * signed) list
(** The authenticated-alphabet salvo: the same lies, self-signed — plus an
    occasional impersonation with a junk authenticator (rejected). *)

val tamper_plain : Grid.t -> Protocol_a.msg Simkit.Kernel.tamper_model
(** Lies in the raw checkpoint alphabet. [mutate] realizes the
    [Fault.tamper] kinds — [Lying_view] rewrites the payload to
    [Full (S, g_dst)] (the exact shape [knows_all_done] accepts),
    [Replay_stale] regresses it to a salted stale partial, [Inflate_done]
    bumps the claimed subchunk. [forge] sends 1–2 such lies per round,
    mostly phantom-termination shaped. *)

val tamper_signed : Grid.t -> signed Simkit.Kernel.tamper_model
(** The same lies against the hardened protocol. [mutate] garbles the body
    but keeps the stale authenticator (the receiver rejects it); [forge]
    signs lies with the Byzantine process's own key — the attack quorum
    attestation exists to absorb — and occasionally attempts an
    impersonation with a junk authenticator (rejected). *)

(** {1 The hardened protocol} *)

type vstate
(** Wrapper state: inner Protocol A state, the per-signer claim table, and
    the rank of the last attested view delivered. *)

val proc_validated :
  Grid.t -> on_reject:(pid:pid -> at:round -> unit) -> (vstate, signed) process
(** The raw wrapped process — what {!run} executes. [on_reject] fires once
    per dropped message (the metrics/observability hook). *)

val name : string
(** ["A+val"], the protocol name in reports. *)

val run :
  ?fault:Simkit.Fault.t ->
  ?max_rounds:int ->
  ?trace:Simkit.Trace.t ->
  ?obs:Simkit.Obs.sink ->
  Spec.t ->
  Runner.report
(** Execute hardened Protocol A under [fault], with {!tamper_signed} wired
    into the kernel so [Corrupt]/[Byzantine] schedule entries act. The
    report's metrics include {!Simkit.Metrics.corruptions} (adversary
    activity) and {!Simkit.Metrics.rejected} (messages the validation layer
    refused). Byzantine runs should set [max_rounds] — a subverted pid acts
    every round, so a liveness bug surfaces as [Round_limit]. *)

val run_unhardened :
  ?fault:Simkit.Fault.t ->
  ?max_rounds:int ->
  ?trace:Simkit.Trace.t ->
  ?obs:Simkit.Obs.sink ->
  Spec.t ->
  Runner.report
(** Plain Protocol A with {!tamper_plain} wired in — the exposed baseline
    the byz fuzzer breaks (protocol name ["A"]). Against it, a single
    forged [Full (S, g_j)] retires process [j] with the work undone. *)
