open Simkit.Types
open Ckpt_script

(* ------------------------------------------------------------------ *)
(* Authenticated checkpoint views                                      *)
(* ------------------------------------------------------------------ *)

type signed = { body : ord; claimant : pid; auth : int64 }

let show_signed m =
  Printf.sprintf "%s!%d" (show_ord m.body) m.claimant

(* splitmix64 finalizer: the keyed digest below only has to resist the
   simulated adversary, who never inverts it — tamper models forge either
   self-signed claims (allowed: a Byzantine process owns its own key) or
   junk authenticators (rejected). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let session_secret = 0x7c15d1b54a32e9f3L

let key pid = mix64 (Int64.logxor session_secret (Int64.of_int (pid + 1)))

let encode_body = function
  | Partial c -> Int64.of_int ((c * 131) + 1)
  | Full (c, g) -> Int64.of_int ((c * 131) + ((g + 2) * 65537))

let digest pid body = mix64 (Int64.logxor (key pid) (encode_body body))

let sign pid body = { body; claimant = pid; auth = digest pid body }

let verify ~src m =
  m.claimant = src && Int64.equal m.auth (digest m.claimant m.body)

(* ------------------------------------------------------------------ *)
(* Quorum attestation                                                  *)
(* ------------------------------------------------------------------ *)

let tolerated p = (p - 1) / 3

let claimed_subchunk = function Partial c | Full (c, _) -> c

(* The (f+1)-th largest per-signer claimed subchunk (claim desc, claimant
   asc): any f+1 distinct signers include at least one honest one, and
   honest claims are anchored — an honest process only claims subchunks
   derived from its own work or from previously attested views — so the
   attested prefix is truly done. *)
let attested ~f claims =
  let entries = ref [] in
  Array.iteri
    (fun i o -> match o with Some c -> entries := (i, c) :: !entries | None -> ())
    claims;
  let sorted =
    List.sort
      (fun (i, a) (j, b) ->
        match compare (b : int) a with 0 -> compare i j | c -> c)
      !entries
  in
  List.nth_opt sorted f

(* ------------------------------------------------------------------ *)
(* Tamper models                                                       *)
(* ------------------------------------------------------------------ *)

let plain_forge_seed = 0x6279_7a2d_706c_61L (* "byz-pla" *)
let signed_forge_seed = 0x6279_7a2d_736eL (* "byz-sn" *)

let forge_stream seed pid ~at =
  Dhw_util.Prng.stream seed (((at * 31) + pid) land 0x3FFF_FFFF)

(* 1–2 victims per round; the headline lie is [Full (S, g_dst)] — the exact
   shape [knows_all_done] accepts, i.e. the phantom-termination attack. *)
let forge_bodies grid g pid =
  let s = Grid.n_subchunks grid in
  let np = Spec.processes (Grid.spec grid) in
  if np <= 1 then []
  else
    let n_dst = min (1 + Dhw_util.Prng.int g 2) (np - 1) in
    let dsts =
      Dhw_util.Prng.sample_without_replacement g n_dst (np - 1)
      |> List.map (fun d -> if d >= pid then d + 1 else d)
    in
    List.map
      (fun dst ->
        let body =
          if Dhw_util.Prng.int g 4 < 3 then Full (s, Grid.group_of grid dst)
          else Partial (Dhw_util.Prng.int g (s + 1))
        in
        (dst, body))
      dsts

let mutate_body grid (tam : Simkit.Fault.tamper) ~dst body =
  let s = Grid.n_subchunks grid in
  let c = match body with Partial c | Full (c, _) -> c in
  match tam.t_kind with
  | Simkit.Fault.Lying_view -> Full (s, Grid.group_of grid dst)
  | Simkit.Fault.Replay_stale ->
      Partial (if c <= 0 then 0 else tam.t_salt mod c)
  | Simkit.Fault.Inflate_done -> Partial (min s (c + 1 + (tam.t_salt mod 3)))

let forge_plain grid pid ~at =
  let g = forge_stream plain_forge_seed pid ~at in
  forge_bodies grid g pid

let forge_signed grid pid ~at =
  let np = Spec.processes (Grid.spec grid) in
  let g = forge_stream signed_forge_seed pid ~at in
  List.map
    (fun (dst, body) ->
      let payload =
        if Dhw_util.Prng.int g 8 = 0 then
          (* impersonation attempt: the adversary does not hold other
             processes' keys, so the authenticator is junk *)
          {
            body;
            claimant = Dhw_util.Prng.int g np;
            auth = Dhw_util.Prng.next_int64 g;
          }
        else sign pid body
      in
      (dst, payload))
    (forge_bodies grid g pid)

let tamper_plain grid : Protocol_a.msg Simkit.Kernel.tamper_model =
  {
    mutate = (fun tam ~src:_ ~dst ~at:_ m -> mutate_body grid tam ~dst m);
    forge =
      (fun pid ~at ->
        List.map (fun (dst, body) -> { dst; payload = body })
          (forge_plain grid pid ~at));
  }

let tamper_signed grid : signed Simkit.Kernel.tamper_model =
  {
    (* In-flight corruption garbles the body but cannot recompute the
       authenticator: the stale one no longer matches, so the receiver
       rejects the message. *)
    mutate =
      (fun tam ~src:_ ~dst ~at:_ m ->
        { m with body = mutate_body grid tam ~dst m.body });
    forge =
      (fun pid ~at ->
        List.map (fun (dst, payload) -> { dst; payload })
          (forge_signed grid pid ~at));
  }

(* ------------------------------------------------------------------ *)
(* The validated wrapper process                                       *)
(* ------------------------------------------------------------------ *)

type vstate = {
  inner : Protocol_a.state;
  iw : round option;  (** the inner process's pending wakeup, if any *)
  claims : int option array;  (** per-signer best verified claimed subchunk *)
  seen : int option;  (** last attested subchunk delivered to the inner *)
}

let proc_validated grid ~on_reject : (vstate, signed) process =
  let inner_proc = Protocol_a.proc_on_grid grid in
  let np = Spec.processes (Grid.spec grid) in
  let f = tolerated np in
  let init pid =
    let inner, w = inner_proc.init pid in
    ({ inner; iw = w; claims = Array.make np None; seen = None }, w)
  in
  let step pid r st inbox =
    let claims = Array.copy st.claims in
    let note i c =
      match claims.(i) with
      | Some c0 when c0 >= c -> ()
      | _ -> claims.(i) <- Some c
    in
    (* Inbox sanitization: drop anything unauthenticated, fold the rest
       into the per-signer claim table (monotone). *)
    List.iter
      (fun e ->
        if verify ~src:e.src e.payload then
          note e.payload.claimant (claimed_subchunk e.payload.body)
        else on_reject ~pid ~at:r)
      inbox;
    let att = attested ~f claims in
    let improved =
      match (att, st.seen) with
      | None, _ -> false
      | Some _, None -> true
      | Some (_, c), Some c0 -> c > c0
    in
    let due = match st.iw with Some w -> w <= r | None -> false in
    if due || improved then (
      (* Deliver at most one synthetic message: the attested subchunk, as
         a partial checkpoint (the group-independent shape every receiver
         can act on). The inner protocol never sees a raw claim, so a
         sub-quorum lie cannot reach [knows_all_done]. An [Active] inner is
         only ever stepped when due — its wakeup chains every round — so
         the script cannot be advanced early by inbound traffic. *)
      let inbox' =
        match att with
        | Some (src, c) when improved ->
            [ { src; sent_at = r; payload = Partial c } ]
        | _ -> []
      in
      let o = inner_proc.step pid r st.inner inbox' in
      List.iter
        (fun (sd : Protocol_a.msg send) -> note pid (claimed_subchunk sd.payload))
        o.sends;
      let sends =
        List.map (fun sd -> { dst = sd.dst; payload = sign pid sd.payload }) o.sends
      in
      let seen =
        match att with Some (_, c) when improved -> Some c | _ -> st.seen
      in
      {
        state = { inner = o.state; iw = o.wakeup; claims; seen };
        sends;
        work = o.work;
        terminate = o.terminate;
        wakeup = o.wakeup;
      })
    else
      (* Sub-quorum traffic only: absorb the claims without stepping the
         inner process or disturbing its wakeup. *)
      {
        state = { st with claims };
        sends = [];
        work = [];
        terminate = false;
        wakeup = st.iw;
      }
  in
  { init; step }

(* ------------------------------------------------------------------ *)
(* Runners                                                             *)
(* ------------------------------------------------------------------ *)

let name = "A+val"

let run ?fault ?max_rounds ?trace ?obs spec =
  let grid = Grid.make spec in
  let metrics =
    Simkit.Metrics.create ~n_processes:(Spec.processes spec) ~n_units:(Spec.n spec)
  in
  let on_reject ~pid ~at =
    Simkit.Metrics.record_reject metrics;
    match obs with
    | Some sink -> sink (Simkit.Obs.Reject { pid; at })
    | None -> ()
  in
  let proc = proc_validated grid ~on_reject in
  let cfg =
    Simkit.Kernel.config ?fault ?max_rounds ?trace ?obs ~show:show_signed
      ~tamper:(tamper_signed grid) ~n_processes:(Spec.processes spec)
      ~n_units:(Spec.n spec) ()
  in
  let result = Simkit.Kernel.run ~metrics cfg proc in
  {
    Runner.spec;
    protocol = name;
    metrics = result.metrics;
    statuses = result.statuses;
    outcome = result.outcome;
  }

let run_unhardened ?fault ?max_rounds ?trace ?obs spec =
  let grid = Grid.make spec in
  let proc = Protocol_a.proc_on_grid grid in
  let cfg =
    Simkit.Kernel.config ?fault ?max_rounds ?trace ?obs ~show:Protocol_a.show_msg
      ~tamper:(tamper_plain grid) ~n_processes:(Spec.processes spec)
      ~n_units:(Spec.n spec) ()
  in
  let result = Simkit.Kernel.run cfg proc in
  {
    Runner.spec;
    protocol = "A";
    metrics = result.metrics;
    statuses = result.statuses;
    outcome = result.outcome;
  }
