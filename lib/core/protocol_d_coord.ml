open Simkit.Types
module ISet = Set.Make (Int)
module Uset = Dhw_util.Unitset
module Intmath = Dhw_util.Intmath

(* As in [Protocol_d]: process sets are ISets, unit sets are interval sets
   (S shrinks by contiguous slices, so it stays a few runs at any n). *)
type msg =
  | Up of { u_phase : int; u_s : Uset.t }  (* worker's view, to the coordinator *)
  | Decision of { d_phase : int; d_s : Uset.t; d_live : ISet.t }
  | Help
  | FOrd of Ckpt_script.ord  (* fallback Protocol A traffic *)

let show_msg = function
  | Up { u_phase; u_s } -> Printf.sprintf "up(p%d,|S|=%d)" u_phase (Uset.cardinal u_s)
  | Decision { d_phase; d_s; d_live } ->
      Printf.sprintf "decision(p%d,|S|=%d,|T|=%d)" d_phase (Uset.cardinal d_s)
        (ISet.cardinal d_live)
  | Help -> "help?"
  | FOrd o -> "F:" ^ Ckpt_script.show_ord o

type working_st = {
  w_phase : int;
  s_after : Uset.t;
  w_live : ISet.t;
  slice : Uset.t;
  slice_n : int;  (* [Uset.cardinal slice], precomputed *)
  idx : int;
  block : int;
}

type collecting_st = {
  c_phase : int;
  c_s : Uset.t;
  c_live : ISet.t;  (* senders seen so far, plus self *)
  stage : int;  (* two collection rounds absorb one round of skew *)
}

type awaiting_st = {
  a_phase : int;
  a_s : Uset.t;
  a_live : ISet.t;
  helps_left : int;
  next_act : round;  (* only send helps / give up at this round *)
}

type mode =
  | Working of working_st
  | Collecting of collecting_st
  | Awaiting of awaiting_st
  | FWait of { deadline : round; own_c : int; last : Ckpt_script.last }
  | FActive of Ckpt_script.action list

type state = { latest : (int * Uset.t * ISet.t) option; mode : mode }

let grade set x = ISet.cardinal (ISet.filter (fun y -> y < x) set)

let make spec =
  let n = Spec.n spec in
  let t = Spec.processes spec in
  let all_units = Uset.of_range 0 n in
  let grid = Grid.make spec in
  let big_l = Grid.max_active_rounds grid in
  (* Every coordinator-phase activity ends below t_max; fallback windows are
     aligned multiples of w0 so that help-exhaustion times landing in the
     same window share a deadline base, and consecutive windows cannot
     overlap (w0 > t·(L+2) + L). *)
  let t_max = ((t + 3) * (n + (2 * t) + 10)) + 10 in
  let w0 = max t_max (t * (big_l + 3)) + 1 in
  let others pid = List.filter (fun k -> k <> pid) (List.init t Fun.id) in
  let enter_work ~phase ~s ~live pid =
    let block = max 1 (Intmath.ceil_div (Uset.cardinal s) (ISet.cardinal live)) in
    let slice =
      if not (ISet.mem pid live) then Uset.empty
      else
        let rank = grade live pid in
        let lo = rank * block in
        Uset.slice s ~lo ~hi:(lo + block)
    in
    Working
      { w_phase = phase; s_after = s; w_live = live; slice;
        slice_n = Uset.cardinal slice; idx = 0; block }
  in
  (* Adopt a decision: move to the next work phase or terminate. *)
  let adopt pid r (phase, s, live) replies =
    let latest = Some (phase, s, live) in
    if Uset.is_empty s then
      { state =
          { latest;
            mode = Awaiting { a_phase = phase; a_s = s; a_live = live;
                              helps_left = 0; next_act = r } };
        sends = replies; work = []; terminate = true; wakeup = None }
    else
      { state = { latest; mode = enter_work ~phase:(phase + 1) ~s ~live pid };
        sends = replies; work = []; terminate = false; wakeup = Some (r + 1) }
  in
  (* Synthetic Protocol-A knowledge from an outstanding set: the largest
     prefix of subchunks whose units are all known done. *)
  let synthetic_c s =
    let done_set = Uset.diff all_units s in
    let rec go c =
      if c >= Grid.n_subchunks grid then c
      else
        let lo, hi = Grid.subchunk_range grid (c + 1) in
        if Uset.contains_range lo hi done_set then go (c + 1) else c
    in
    go 0
  in
  let enter_fallback pid r s =
    let base = ((r / w0) + 1) * w0 in
    let deadline = base + (pid * (big_l + 2)) in
    ( FWait { deadline; own_c = synthetic_c s; last = Ckpt_script.No_msg },
      Some deadline )
  in
  let run_fa r script =
    let o = Ckpt_script.run_active ~inject:(fun o -> FOrd o) r script in
    (FActive o.state, o.sends, o.work, o.terminate, o.wakeup)
  in
  let init pid =
    ( { latest = None; mode = enter_work ~phase:1 ~s:all_units ~live:(ISet.of_list (List.init t Fun.id)) pid },
      Some 0 )
  in
  let step pid r st inbox =
    (* help replies are answered from any phase-system mode *)
    let help_replies =
      match st.latest with
      | Some (p, s, live) when (match st.mode with FWait _ | FActive _ -> false | _ -> true) ->
          List.filter_map
            (fun { src; payload; _ } ->
              if payload = Help then
                Some { dst = src; payload = Decision { d_phase = p; d_s = s; d_live = live } }
              else None)
            inbox
      | _ -> []
    in
    let best_decision ~min_phase =
      List.fold_left
        (fun acc { payload; _ } ->
          match payload with
          | Decision { d_phase; d_s; d_live } when d_phase >= min_phase -> (
              match acc with
              | Some (p, _, _) when p >= d_phase -> acc
              | _ -> Some (d_phase, d_s, d_live))
          | _ -> acc)
        None inbox
    in
    match st.mode with
    | Working w -> (
        match best_decision ~min_phase:w.w_phase with
        | Some d ->
            (* resync: abandon the stale phase and adopt *)
            adopt pid r d help_replies
        | None ->
            let work = if w.idx < w.slice_n then [ Uset.nth w.slice w.idx ] else [] in
            let s_after =
              List.fold_left (fun acc u -> Uset.remove u acc) w.s_after work
            in
            if w.idx < w.block - 1 then
              { state = { st with mode = Working { w with idx = w.idx + 1; s_after } };
                sends = help_replies; work; terminate = false; wakeup = Some (r + 1) }
            else begin
              (* last work round: report to the coordinator — or start
                 collecting if I am the coordinator *)
              let coord = ISet.min_elt w.w_live in
              if pid = coord then
                { state =
                    { st with
                      mode =
                        Collecting
                          { c_phase = w.w_phase; c_s = s_after;
                            c_live = ISet.singleton pid; stage = 1 } };
                  sends = help_replies; work; terminate = false; wakeup = Some (r + 1) }
              else
                { state =
                    { st with
                      mode =
                        Awaiting
                          { a_phase = w.w_phase; a_s = s_after; a_live = w.w_live;
                            helps_left = t + 1; next_act = r + 3 } };
                  sends =
                    { dst = coord; payload = Up { u_phase = w.w_phase; u_s = s_after } }
                    :: help_replies;
                  work; terminate = false; wakeup = Some (r + 3) }
            end)
    | Collecting c ->
        let c =
          List.fold_left
            (fun c { src; payload; _ } ->
              match payload with
              | Up { u_phase; u_s } when u_phase = c.c_phase ->
                  { c with c_s = Uset.inter c.c_s u_s; c_live = ISet.add src c.c_live }
              | Up _ | Decision _ | Help | FOrd _ -> c)
            c inbox
        in
        if c.stage = 1 then
          { state = { st with mode = Collecting { c with stage = 2 } };
            sends = help_replies; work = []; terminate = false; wakeup = Some (r + 1) }
        else begin
          (* decide and broadcast to everyone (including the excluded, so
             laggards resynchronise) *)
          let decision =
            Decision { d_phase = c.c_phase; d_s = c.c_s; d_live = c.c_live }
          in
          let bcast = List.map (fun dst -> { dst; payload = decision }) (others pid) in
          let o = adopt pid r (c.c_phase, c.c_s, c.c_live) [] in
          { o with sends = bcast @ help_replies @ o.sends }
        end
    | Awaiting a -> (
        match best_decision ~min_phase:a.a_phase with
        | Some d -> adopt pid r d help_replies
        | None ->
            if r < a.next_act then
              (* message-triggered step without a decision: just answer helps *)
              { state = st; sends = help_replies; work = []; terminate = false;
                wakeup = Some a.next_act }
            else if a.helps_left > 0 then
              { state =
                  { st with
                    mode =
                      Awaiting
                        { a with helps_left = a.helps_left - 1; next_act = r + 2 } };
                sends =
                  List.map (fun dst -> { dst; payload = Help }) (others pid)
                  @ help_replies;
                work = []; terminate = false; wakeup = Some (r + 2) }
            else begin
              (* no live process holds a decision: the phase system is dead *)
              let mode, wakeup = enter_fallback pid r a.a_s in
              { state = { latest = None; mode }; sends = help_replies; work = [];
                terminate = false; wakeup }
            end)
    | FWait { deadline; own_c; last } ->
        let last =
          List.fold_left
            (fun acc { src; payload; _ } ->
              match payload with
              | FOrd ord -> Ckpt_script.Last_ord { ord; src }
              | Up _ | Decision _ | Help -> acc)
            last inbox
        in
        if Ckpt_script.knows_all_done grid pid last then
          { state = { st with mode = FWait { deadline; own_c; last } };
            sends = []; work = []; terminate = true; wakeup = None }
        else if r >= deadline then begin
          let effective =
            if Ckpt_script.c_of_last last >= own_c then last
            else Ckpt_script.Last_ord { ord = Ckpt_script.Partial own_c; src = pid }
          in
          let mode, sends, work, terminate, wakeup =
            run_fa r (Ckpt_script.takeover_script grid pid effective)
          in
          { state = { st with mode }; sends; work; terminate; wakeup }
        end
        else
          { state = { st with mode = FWait { deadline; own_c; last } };
            sends = []; work = []; terminate = false; wakeup = Some deadline }
    | FActive script ->
        let mode, sends, work, terminate, wakeup = run_fa r script in
        { state = { st with mode }; sends; work; terminate; wakeup }
  in
  Protocol.Packed { proc = { init; step }; show = show_msg }

let protocol =
  {
    Protocol.name = "D-coord";
    describe = "Protocol D with coordinator-routed agreement: 2(t-1) msgs/phase failure-free";
    make;
  }
