open Simkit.Types
module ISet = Set.Make (Int)
module Uset = Dhw_util.Unitset
module Intmath = Dhw_util.Intmath

type config = {
  arrivals : (int * int * int) list;
  horizon : int;
  idle_block : int;
}

(* Job-id sets (known/done/mine) are interval sets: arrivals are scattered
   but sparse, and the done set grows by contiguous slices, so runs stay
   few. Process sets stay ISets. *)
type msg = {
  v_phase : int;
  v_known : Uset.t;
  v_done : Uset.t;
  v_live : ISet.t;
  v_final : bool;
}

let show_msg m =
  Printf.sprintf "oview(p%d,k%d,d%d,|T|=%d,%b)" m.v_phase
    (Uset.cardinal m.v_known) (Uset.cardinal m.v_done) (ISet.cardinal m.v_live)
    m.v_final

type working_st = {
  w_phase : int;
  mine : Uset.t;  (* every unit that ever arrived at this site; monotone,
                     survives view adoption *)
  known : Uset.t;
  done_ : Uset.t;  (* includes my own units as I perform them *)
  w_live : ISet.t;
  w_round0 : int;
  slice : Uset.t;
  slice_n : int;
  idx : int;
  block : int;
  stash_known : Uset.t;
  stash_done : Uset.t;
  stash_live : ISet.t;
  stash_final : (Uset.t * Uset.t * ISet.t) option;  (* known, done, live *)
}

type agreeing_st = {
  a_phase : int;
  a_mine : Uset.t;
  a_known : Uset.t;
  a_done : Uset.t;
  a_live : ISet.t;  (* T being re-accumulated *)
  a_u : ISet.t;
  a_round0 : int;
  a_iter : int;
  a_adopted : (Uset.t * Uset.t * ISet.t) option;
}

type mode = Working of working_st | Agreeing of agreeing_st

let grade set x = ISet.cardinal (ISet.filter (fun y -> y < x) set)

let protocol cfg =
  if cfg.idle_block < 1 then invalid_arg "Protocol_d_online: idle_block >= 1";
  if List.exists (fun (r, _, _) -> r >= cfg.horizon || r < 0) cfg.arrivals then
    invalid_arg "Protocol_d_online: arrivals must land in [0, horizon)";
  let arrivals_for pid r =
    List.filter_map
      (fun (ar, u, site) -> if site = pid && ar = r then Some u else None)
      cfg.arrivals
  in
  (* Arrivals between two consecutive steps of a live process: processes
     step every round in this protocol, so "at round r" suffices. *)
  let make spec =
    let t = Spec.processes spec in
    let enter_work ~phase ~mine ~known ~done_ ~live ~round0 pid =
      let known = Uset.union known mine in
      let outstanding = Uset.diff known done_ in
      let block =
        if Uset.is_empty outstanding then cfg.idle_block
        else max 1 (Intmath.ceil_div (Uset.cardinal outstanding) (ISet.cardinal live))
      in
      let rank = grade live pid in
      let lo = rank * block in
      let slice = Uset.slice outstanding ~lo ~hi:(lo + block) in
      Working
        {
          w_phase = phase;
          mine;
          known;
          done_;
          w_live = live;
          w_round0 = round0;
          slice;
          slice_n = Uset.cardinal slice;
          idx = 0;
          block;
          stash_known = Uset.empty;
          stash_done = Uset.empty;
          stash_live = ISet.empty;
          stash_final = None;
        }
    in
    let init pid =
      let all = ISet.of_list (List.init t Fun.id) in
      ( enter_work ~phase:1 ~mine:Uset.empty ~known:Uset.empty ~done_:Uset.empty
          ~live:all ~round0:1 pid,
        Some 0 )
    in
    let agree_step pid r a inbox =
      let views =
        List.filter_map
          (fun { src; payload; _ } ->
            if payload.v_phase = a.a_phase then Some (src, payload) else None)
          inbox
      in
      let received = ISet.of_list (List.map fst views) in
      let known, done_, live, adopted =
        List.fold_left
          (fun (k, d, tv, ad) (_, v) ->
            if v.v_final then
              (v.v_known, v.v_done, v.v_live, Some (v.v_known, v.v_done, v.v_live))
            else (Uset.union k v.v_known, Uset.union d v.v_done, ISet.union tv v.v_live, ad))
          (a.a_known, a.a_done, a.a_live, a.a_adopted)
          views
      in
      let counter = a.a_round0 + a.a_iter - 1 in
      let u' =
        if counter >= 1 then ISet.add pid (ISet.inter a.a_u received) else a.a_u
      in
      let stable = ISet.equal u' a.a_u in
      let known, done_, live =
        match adopted with
        | Some (k, d, tv) ->
            (* an adopted final view must not erase units that arrived here
               and were never shared *)
            (Uset.union k a.a_mine, d, tv)
        | None -> (known, done_, live)
      in
      let final = adopted <> None || (stable && counter >= 1) in
      let bcast =
        List.map
          (fun dst ->
            {
              dst;
              payload =
                { v_phase = a.a_phase; v_known = known; v_done = done_;
                  v_live = live; v_final = final };
            })
          (ISet.elements (ISet.remove pid u'))
      in
      if not final then
        {
          state =
            Agreeing
              { a with a_known = known; a_done = done_; a_live = live; a_u = u';
                a_iter = a.a_iter + 1; a_adopted = adopted };
          sends = bcast;
          work = [];
          terminate = false;
          wakeup = Some (r + 1);
        }
      else if Uset.subset known done_ && r >= cfg.horizon then
        { state = Agreeing a; sends = bcast; work = []; terminate = true; wakeup = None }
      else
        {
          state =
            enter_work ~phase:(a.a_phase + 1) ~mine:a.a_mine ~known ~done_ ~live
              ~round0:0 pid;
          sends = bcast;
          work = [];
          terminate = false;
          wakeup = Some (r + 1);
        }
    in
    let step pid r st inbox =
      match st with
      | Working w ->
          (* absorb my own fresh arrivals and any early agreement traffic *)
          let fresh = Uset.of_list (arrivals_for pid r) in
          let w =
            { w with known = Uset.union w.known fresh; mine = Uset.union w.mine fresh }
          in
          let w =
            List.fold_left
              (fun w { payload = v; _ } ->
                if v.v_phase <> w.w_phase then w
                else if v.v_final then
                  { w with stash_final = Some (v.v_known, v.v_done, v.v_live) }
                else
                  {
                    w with
                    stash_known = Uset.union w.stash_known v.v_known;
                    stash_done = Uset.union w.stash_done v.v_done;
                    stash_live = ISet.union w.stash_live v.v_live;
                  })
              w inbox
          in
          let work, done_ =
            if w.idx < w.slice_n then
              let u = Uset.nth w.slice w.idx in
              ([ u ], Uset.add u w.done_)
            else ([], w.done_)
          in
          let w = { w with done_ } in
          if w.idx < w.block - 1 then
            {
              state = Working { w with idx = w.idx + 1 };
              sends = [];
              work;
              terminate = false;
              wakeup = Some (r + 1);
            }
          else begin
            let known = Uset.union w.known w.stash_known in
            let done_all = Uset.union w.done_ w.stash_done in
            let bcast =
              List.map
                (fun dst ->
                  {
                    dst;
                    payload =
                      { v_phase = w.w_phase; v_known = known; v_done = w.done_;
                        v_live = ISet.singleton pid; v_final = false };
                  })
                (ISet.elements (ISet.remove pid w.w_live))
            in
            {
              state =
                Agreeing
                  {
                    a_phase = w.w_phase;
                    a_mine = w.mine;
                    a_known = known;
                    a_done = done_all;
                    a_live = ISet.add pid w.stash_live;
                    a_u = w.w_live;
                    a_round0 = w.w_round0;
                    a_iter = 1;
                    a_adopted = w.stash_final;
                  };
              sends = bcast;
              work;
              terminate = false;
              wakeup = Some (r + 1);
            }
          end
      | Agreeing a ->
          let fresh = Uset.of_list (arrivals_for pid r) in
          let a =
            { a with
              a_known = Uset.union a.a_known fresh;
              a_mine = Uset.union a.a_mine fresh }
          in
          agree_step pid r a inbox
    in
    Protocol.Packed { proc = { init; step }; show = show_msg }
  in
  {
    Protocol.name = "D-online";
    describe = "Protocol D with dynamic work arrival (periodic agreement)";
    make;
  }
