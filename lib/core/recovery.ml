open Simkit.Types
open Ckpt_script

type which = A | B

let name = function A -> "A+rec" | B -> "B+rec"

(* ------------------------------------------------------------------ *)
(* Checkpoint views and their ordering                                 *)
(* ------------------------------------------------------------------ *)

let view_rank = function
  | No_msg -> (-1, -1)
  | Last_ord { ord = Partial c; _ } -> (c, 0)
  | Last_ord { ord = Full (c, g); _ } -> (c, g + 1)

(* Strictly-better: higher completed subchunk wins; at equal subchunks a
   full checkpoint beats a partial one and a further-propagated full beats
   a less-propagated one. Ties keep the incumbent, so the fold below is
   deterministic under the kernel's src-sorted inboxes. *)
let better a b = view_rank a > view_rank b

let max_view = List.fold_left (fun b v -> if better v b then v else b)

let show_last = function
  | No_msg -> "-"
  | Last_ord { ord; src } -> Printf.sprintf "%s<%d" (show_ord ord) src

(* ------------------------------------------------------------------ *)
(* The wrapper protocol                                                *)
(* ------------------------------------------------------------------ *)

type 'm rmsg =
  | Payload of 'm  (** an inner-protocol message, passed through *)
  | Announce  (** rejoiner's state-transfer request, broadcast on revival *)
  | Transfer of last  (** a peer's reply: its best durable view *)

let show_rmsg show = function
  | Payload m -> show m
  | Announce -> "announce"
  | Transfer l -> "xfer " ^ show_last l

type 's imode = Run of 's | Rejoin of { until : round; announced : bool }

type 's rstate = {
  inner : 's imode;
  best : last;  (** best view seen; mirrored to stable storage on improvement *)
  iw : round option;  (** the inner process's pending wakeup, if any *)
}

type ('s, 'm) adapter = {
  n_procs : int;
  init : pid -> 's * round option;
  step : pid -> round -> 's -> 'm envelope list -> ('s, 'm) outcome;
  show : 'm -> string;
  view_of : 'm -> ord option;
  resume : pid -> at:round -> last -> 's * round option;
}

let harden (type s m) (ad : (s, m) adapter) ~(stable : last Simkit.Stable.t) :
    (s rstate, m rmsg) process =
  let init pid =
    let s, w = ad.init pid in
    ({ inner = Run s; best = No_msg; iw = w }, w)
  in
  let step pid r st inbox =
    let payloads =
      List.filter_map
        (fun e ->
          match e.payload with
          | Payload m -> Some { src = e.src; sent_at = e.sent_at; payload = m }
          | Announce | Transfer _ -> None)
        inbox
    in
    let announcers =
      List.filter_map
        (fun e -> match e.payload with Announce -> Some e.src | _ -> None)
        inbox
    in
    let inbound_views =
      List.filter_map
        (fun e -> match e.payload with Transfer l -> Some l | _ -> None)
        inbox
      @ List.filter_map
          (fun e ->
            match ad.view_of e.payload with
            | Some ord -> Some (Last_ord { ord; src = e.src })
            | None -> None)
          payloads
    in
    let best = max_view st.best inbound_views in
    (* Persist-on-improvement (write-ahead: the write is durable even if
       this very round is the victim's crash round), then answer any
       state-transfer requests with the freshest view. *)
    let finish ~best ~inner ~iw ~sends ~work ~terminate ~wakeup =
      if better best st.best then Simkit.Stable.write stable pid ~at:r best;
      let sends =
        sends
        @ List.map (fun src -> { dst = src; payload = Transfer best }) announcers
      in
      { state = { inner; best; iw }; sends; work; terminate; wakeup }
    in
    match st.inner with
    | Run s ->
        (* Inbox sanitization: deliver at most one view-carrying inner
           message — the best-ranked one. The inner protocols assume at
           most one active sender per round and keep the latest message;
           under crash–recovery two actives can overlap (a rejoiner's
           staggered deadline may fire inside another active's era), and
           an unsanitized inbox would let a stale checkpoint overwrite
           fresher news — including the all-done announcement. *)
        let chosen =
          List.fold_left
            (fun acc e ->
              match ad.view_of e.payload with
              | None -> acc
              | Some ord -> (
                  let rk = view_rank (Last_ord { ord; src = e.src }) in
                  match acc with
                  | Some (rk0, _) when rk <= rk0 -> acc
                  | _ -> Some (rk, e)))
            None payloads
        in
        let payloads' =
          List.filter
            (fun e ->
              match ad.view_of e.payload with
              | None -> true
              | Some _ -> (
                  match chosen with Some (_, c) -> e == c | None -> true))
            payloads
        in
        let inner_due =
          payloads' <> []
          || match st.iw with Some w -> w <= r | None -> false
        in
        if inner_due then
          let o = ad.step pid r s payloads' in
          let out_views =
            List.filter_map
              (fun (sd : m send) ->
                match ad.view_of sd.payload with
                | Some ord -> Some (Last_ord { ord; src = pid })
                | None -> None)
              o.sends
          in
          let best = max_view best out_views in
          finish ~best ~inner:(Run o.state) ~iw:o.wakeup
            ~sends:
              (List.map (fun sd -> { dst = sd.dst; payload = Payload sd.payload })
                 o.sends)
            ~work:o.work ~terminate:o.terminate ~wakeup:o.wakeup
        else
          (* Only wrapper traffic (announces / transfers) woke us: absorb it
             without stepping the inner process or disturbing its wakeup. *)
          finish ~best ~inner:st.inner ~iw:st.iw ~sends:[] ~work:[]
            ~terminate:false ~wakeup:st.iw
    | Rejoin { until; announced } ->
        if r >= until then
          (* Handshake window over: resume from the best view gathered from
             peers' transfers and our own stable storage. *)
          let s, w = ad.resume pid ~at:r best in
          finish ~best ~inner:(Run s) ~iw:w ~sends:[] ~work:[]
            ~terminate:false ~wakeup:w
        else
          let sends =
            if announced then []
            else
              List.init ad.n_procs Fun.id
              |> List.filter (fun d -> d <> pid)
              |> List.map (fun d -> { dst = d; payload = Announce })
          in
          finish ~best
            ~inner:(Rejoin { until; announced = true })
            ~iw:None ~sends ~work:[] ~terminate:false ~wakeup:(Some until)
  in
  { init; step }

let recover_hook stable ~rejoin_rounds pid r =
  let best = Option.value ~default:No_msg (Simkit.Stable.read stable pid) in
  ( { inner = Rejoin { until = r + rejoin_rounds; announced = false };
      best;
      iw = None },
    Some r )

(* ------------------------------------------------------------------ *)
(* Protocol adapters                                                   *)
(* ------------------------------------------------------------------ *)

let adapter_a grid : (Protocol_a.state, Protocol_a.msg) adapter =
  let proc = Protocol_a.proc_on_grid grid in
  {
    n_procs = Spec.processes (Grid.spec grid);
    init = proc.init;
    step = proc.step;
    show = Protocol_a.show_msg;
    view_of = (fun (m : Protocol_a.msg) -> Some m);
    resume = Protocol_a.resume_state grid;
  }

let adapter_b grid : (Protocol_b.pstate, Protocol_b.msg) adapter =
  let proc = Protocol_b.proc_on_grid grid in
  {
    n_procs = Spec.processes (Grid.spec grid);
    init = proc.init;
    step = proc.step;
    show = Protocol_b.show_msg;
    view_of =
      (function Protocol_b.Ord o -> Some o | Protocol_b.Go_ahead -> None);
    resume = Protocol_b.resume_state grid;
  }

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let run ?fault ?max_rounds ?trace ?obs ?spans ?(rejoin_rounds = 3) spec which =
  let grid = Grid.make spec in
  let metrics =
    Simkit.Metrics.create ~n_processes:(Spec.processes spec) ~n_units:(Spec.n spec)
  in
  let on_write pid at =
    Simkit.Metrics.record_persist metrics pid at;
    match obs with
    | Some sink -> sink (Simkit.Obs.Persist { pid; at })
    | None -> ()
  in
  let stable =
    Simkit.Stable.create ~on_write ?spans ~n_processes:(Spec.processes spec) ()
  in
  let run_with (type s m) (ad : (s, m) adapter) =
    let proc = harden ad ~stable in
    let cfg =
      Simkit.Kernel.config ?fault ?max_rounds ?trace ?obs ?spans
        ~show:(show_rmsg ad.show) ~n_processes:ad.n_procs ~n_units:(Spec.n spec)
        ()
    in
    let result =
      Simkit.Kernel.run ~recover:(recover_hook stable ~rejoin_rounds) ~metrics
        cfg proc
    in
    {
      Runner.spec;
      protocol = name which;
      metrics = result.metrics;
      statuses = result.statuses;
      outcome = result.outcome;
    }
  in
  match which with
  | A -> run_with (adapter_a grid)
  | B -> run_with (adapter_b grid)
