module Intmath = Dhw_util.Intmath

type t = {
  spec : Spec.t;
  s : int; (* group size, ⌈√t⌉ *)
  n_groups : int;
  n_sub : int; (* S *)
}

let make_with_group_size spec s =
  let tt = Spec.processes spec in
  if s < 1 || s > tt then invalid_arg "Grid.make_with_group_size";
  let n = Spec.n spec in
  (* Subchunks are tied to the partial-checkpoint frequency: with groups of
     size s there are min(t, n) subchunks regardless, but chunk boundaries
     land every s subchunks, so the trade-off of Section 2 moves with s. *)
  { spec; s; n_groups = Intmath.ceil_div tt s; n_sub = min tt n }

let make spec =
  make_with_group_size spec (Intmath.isqrt_up (Spec.processes spec))

let spec g = g.spec
let group_size g = g.s
let n_groups g = g.n_groups

let group_of g pid =
  if pid < 0 || pid >= Spec.processes g.spec then invalid_arg "Grid.group_of";
  (pid / g.s) + 1

let members g grp =
  if grp < 1 || grp > g.n_groups then invalid_arg "Grid.members";
  let lo = (grp - 1) * g.s in
  let hi = min (grp * g.s) (Spec.processes g.spec) - 1 in
  List.init (hi - lo + 1) (fun i -> lo + i)

let members_above g pid =
  let grp = group_of g pid in
  List.filter (fun k -> k > pid) (members g grp)

let rank_in_group g pid = pid mod g.s

let n_subchunks g = g.n_sub

let subchunk_range g c =
  if c < 1 || c > g.n_sub then invalid_arg "Grid.subchunk_range";
  let n = Spec.n g.spec in
  ((c - 1) * n / g.n_sub, c * n / g.n_sub)

let subchunk_units g c =
  if c < 1 || c > g.n_sub then invalid_arg "Grid.subchunk_units";
  let lo, hi = subchunk_range g c in
  List.init (hi - lo) (fun i -> lo + i)

let subchunk_size_max g = Intmath.ceil_div (Spec.n g.spec) g.n_sub

let is_chunk_end g c = c mod g.s = 0 || c = g.n_sub

let n_chunk_ends g =
  let rec count c acc = if c > g.n_sub then acc else count (c + 1) (if is_chunk_end g c then acc + 1 else acc) in
  count 1 0

let max_active_rounds g =
  let n = Spec.n g.spec in
  (* Work rounds + one partial checkpoint per subchunk + two broadcast rounds
     per (full checkpoint, group) pair + takeover prologue slack. *)
  let full_rounds = 2 * g.n_groups * n_chunk_ends g in
  n + g.n_sub + full_rounds + (2 * g.n_groups) + 4
