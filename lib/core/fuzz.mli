(** Protocol-specific instantiation of the {!Simkit.Campaign} adversary
    engine: one oracle stack per protocol (completion, the §2 correctness
    verdict, trace audits, and the theorem bounds of {!Bounds}), plus
    ready-made sampled and exhaustive campaign drivers.

    Used by the tier-1 test suite, the E16 bench sweep, and the
    [doall_cli fuzz] / [doall_cli replay] subcommands. *)

module C := Simkit.Campaign

type subject = { report : Runner.report; trace : Simkit.Trace.t }
(** What an oracle judges: the runner's report plus the full trace (the
    audits need the latter). *)

val run_schedule :
  ?max_rounds:int -> Spec.t -> Protocol.t -> C.Schedule.t -> subject
(** One execution of [protocol] on [spec] under the schedule's fault plan,
    traced. *)

val oracles : Spec.t -> protocol:string -> subject C.oracle list
(** The oracle stack for a protocol name (as accepted by the CLI: "a", "b",
    "c", "c-chunked", "d", "d-coord", "checkpoint", …):
    - ["completed"]: the run retired every process (no stall / round limit);
    - ["correct"]: the paper's §2 verdict ({!Runner.correct});
    - ["well-formed"] and, for the sequential protocols, ["one-active"] and
      ["monotone"] ({!Simkit.Audit});
    - ["work"], ["messages"], ["rounds"]: the theorem bounds, reporting
      measured/bound margins on passing runs. Protocol D is judged against
      its revert-path envelope with [f = t-1]; unknown protocols get no
      bound oracles. *)

val work_cap : int -> subject C.oracle
(** Extra oracle asserting work [<= cap] (name ["work-cap"]). Setting
    [cap < ] the true worst case deliberately breaks the stack — the hook
    used to demonstrate shrinking and replay end-to-end. *)

val stamp : Spec.t -> Protocol.t -> C.Schedule.t -> C.Schedule.t
(** Record protocol name, [n] and [t] in the schedule's meta, making it
    self-contained for [doall_cli replay]. *)

val campaign :
  ?jobs:int ->
  ?seed:int64 ->
  ?executions:int ->
  ?window:int ->
  ?extra:subject C.oracle list ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  Spec.t ->
  Protocol.t ->
  C.Schedule.t C.stats
(** Seeded-random campaign: [executions] (default 200) schedules from
    {!Simkit.Campaign.sample} with crash rounds in [0, window] (default:
    twice the failure-free running time), judged by {!oracles} plus
    [extra]. [jobs] fans execution out over a {!Simkit.Pool} of worker
    domains (results are byte-identical for every value, see
    {!Simkit.Campaign.run_parallel}); omitted, the sequential engine runs.
    Schedule generation is sequential either way, so a seed names the same
    campaign regardless of [jobs]. *)

(** {1 Crash–recovery campaigns} *)

val recovery_protocol_name : Recovery.which -> string
(** The normalized meta/CLI name: ["a+rec"] / ["b+rec"]. *)

val recovery_which_of_name : string -> Recovery.which option
(** Inverse of {!recovery_protocol_name}; also accepts the bare ["a"] /
    ["b"]. *)

val run_recovery_schedule :
  ?max_rounds:int ->
  ?rejoin_rounds:int ->
  Spec.t ->
  Recovery.which ->
  C.Schedule.t ->
  subject
(** One traced execution of the recovery-hardened protocol under the
    schedule's fault plan (crashes and restarts). *)

val recovery_oracles :
  Spec.t -> Recovery.which -> horizon:int -> subject C.oracle list
(** The crash–recovery oracle stack: completion, the §2 correctness verdict,
    the well-formedness audit, and incarnation-counting envelopes — per-unit
    multiplicity, work and messages bounded by [t + restarts] incarnations,
    rounds by [horizon] (the latest possible schedule round) plus one base
    round-bound per incarnation, and stable-storage writes by the view-rank
    space. The envelopes are airtight for an arbitrary restart adversary,
    so the margins reported on passing runs carry the signal. The
    crash-stop ["one-active"] and ["monotone"] audits are deliberately
    absent: under recovery a rejoiner's staggered deadline may briefly
    overlap another active, and a rejoiner legitimately redoes old units. *)

val recovery_stamp : Spec.t -> Recovery.which -> C.Schedule.t -> C.Schedule.t
(** Record protocol name ([a+rec] / [b+rec]), [n] and [t] in the schedule's
    meta, making it self-contained for [doall_cli recovery-replay]. *)

val recovery_campaign :
  ?jobs:int ->
  ?seed:int64 ->
  ?executions:int ->
  ?window:int ->
  ?restart_gap:int ->
  ?rejoin_rounds:int ->
  ?extra:subject C.oracle list ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  Spec.t ->
  Recovery.which ->
  C.Schedule.t C.stats
(** Seeded crash+restart storm campaign: [executions] (default 200)
    schedules from {!Simkit.Campaign.sample_recovery} with crash rounds in
    [0, window] (default: twice the failure-free recovery running time) and
    downtimes up to [restart_gap] (default 6), judged by
    {!recovery_oracles} plus [extra]. Runs are capped at a generous
    round budget so a liveness bug surfaces as a ["completed"] failure
    rather than a hang. *)

(** {1 Corruption / Byzantine campaigns} *)

type hardening = Unhardened | Hardened
(** Which Protocol A variant faces the corruption adversary: plain A with
    {!Validate.tamper_plain} wired in (the exposed baseline the fuzzer
    breaks) or the validated ["A+val"] of {!Validate.run}. *)

val byz_protocol_name : hardening -> string
(** The meta/CLI name: ["a"] / ["a+val"]. *)

val byz_hardening_of_name : string -> hardening option
(** Inverse of {!byz_protocol_name}. *)

val run_byz_schedule :
  ?max_rounds:int -> Spec.t -> hardening -> C.Schedule.t -> subject
(** One traced execution under the schedule's fault plan with the matching
    tamper model wired in, so [Corrupt]/[Byzantine] entries act. *)

val byz_oracles : Spec.t -> hardening:hardening -> subject C.oracle list
(** The corruption oracle stack:
    - ["no-phantom-unit"]: no process reported done while units remain
      unperformed — the phantom-termination safety property;
    - ["correct-despite-lies"]: the run completed (no stall / round limit)
      and satisfies the §2 correctness verdict;
    - ["validation-overhead-bounded"] (hardened only): work and messages
      within the [(f + 3 + crashes)]-scripts hardening envelope, reporting
      the work margin on passing runs.
    The crash-stop ["one-active"] / ["monotone"] audits are deliberately
    absent: forged traffic and quorum-delayed takeovers legitimately
    violate both. *)

val byz_stamp : Spec.t -> hardening -> C.Schedule.t -> C.Schedule.t
(** Record protocol name ([a] / [a+val]), [n] and [t] in the schedule's
    meta, making it self-contained for [doall_cli byz-replay]. *)

val byz_max_rounds : Spec.t -> window:int -> int
(** The round cap byz campaigns run under: the deadline ladder retires the
    last honest process by [(t+1)·L] even if no claim ever attests, so a
    liveness bug surfaces as a ["correct-despite-lies"] round-limit failure
    rather than a hang. *)

val byz_campaign :
  ?jobs:int ->
  ?seed:int64 ->
  ?executions:int ->
  ?window:int ->
  ?byz:int ->
  ?extra:subject C.oracle list ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  Spec.t ->
  hardening ->
  C.Schedule.t C.stats
(** Seeded corruption/Byzantine storm: [executions] (default 200) schedules
    from {!Simkit.Campaign.sample_byz} with [byz] subverted pids (default
    [t/3 - 1], clamped to [0 .. t-1]) and fault rounds in [0, window]
    (default: twice the failure-free running time), judged by
    {!byz_oracles} plus [extra]. Shrinking is cost-aware
    ({!Simkit.Campaign.Schedule.cost}): each failure is reduced to the
    {e cheapest} still-failing schedule, so a reported counterexample never
    spends Byzantine power where a plain crash or corruption breaks the
    protocol too. *)

val exhaustive_campaign :
  ?jobs:int ->
  ?window:int ->
  ?round_step:int ->
  ?modes:C.Schedule.mode list ->
  ?extra:subject C.oracle list ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  Spec.t ->
  Protocol.t ->
  C.Schedule.t C.stats
(** Bounded model check: every schedule from {!Simkit.Campaign.exhaustive}
    (default modes {!Simkit.Campaign.default_modes}; default [round_step]
    chosen so the grid has at most 8 positions). Keep instances tiny. *)
