type report = {
  spec : Spec.t;
  protocol : string;
  metrics : Simkit.Metrics.t;
  statuses : Simkit.Types.status array;
  outcome : Simkit.Kernel.run_outcome;
}

let run ?fault ?max_rounds ?trace ?obs ?spans spec (p : Protocol.t) =
  let (Protocol.Packed { proc; show }) = p.make spec in
  let cfg =
    Simkit.Kernel.config ?fault ?max_rounds ?trace ?obs ?spans ~show
      ~n_processes:(Spec.processes spec) ~n_units:(Spec.n spec) ()
  in
  let result = Simkit.Kernel.run cfg proc in
  {
    spec;
    protocol = p.name;
    metrics = result.metrics;
    statuses = result.statuses;
    outcome = result.outcome;
  }

let survivors r =
  Array.fold_left
    (fun acc s -> match s with Simkit.Types.Terminated _ -> acc + 1 | _ -> acc)
    0 r.statuses

let crashed r =
  Array.fold_left
    (fun acc s -> match s with Simkit.Types.Crashed _ -> acc + 1 | _ -> acc)
    0 r.statuses

let work_complete r = Simkit.Metrics.all_units_done r.metrics

let correct r =
  r.outcome = Simkit.Kernel.Completed && (survivors r = 0 || work_complete r)

let pp ppf r =
  Format.fprintf ppf "%s on %a: %a survivors=%d %s" r.protocol Spec.pp r.spec
    Simkit.Metrics.pp_summary r.metrics (survivors r)
    (match r.outcome with
    | Simkit.Kernel.Completed -> "completed"
    | Simkit.Kernel.Stalled r -> Printf.sprintf "STALLED@%d" r
    | Simkit.Kernel.Round_limit r -> Printf.sprintf "ROUND-LIMIT@%d" r)
