module J = Dhw_util.Jsonw
module Metrics = Simkit.Metrics

type bound_check = { check : string; measured : int; bound : int; ok : bool }

type t = {
  kind : string;
  protocol : string;
  spec : Spec.t;
  fault : string;
  outcome : string;
  correct : bool;
  survivors : int;
  crashed : int;
  metrics : Metrics.t;
  bounds : bound_check list;
  latency : J.t option;
  extra : (string * J.t) list;
}

(* mirrors Fuzz.normalize (not exported there) *)
let normalize name =
  match String.lowercase_ascii name with
  | "cchunked" -> "c-chunked"
  | "cnaive" -> "c-naive"
  | "dcoord" -> "d-coord"
  | s -> s

let check name measured bound =
  { check = name; measured; bound; ok = measured <= bound }

let bound_checks spec ~protocol m =
  let work = Metrics.work m
  and msgs = Metrics.messages m
  and rounds = Metrics.rounds m in
  match normalize protocol with
  | "a" ->
      let g = Grid.make spec in
      [
        check "work <= Thm 2.3" work (Bounds.a_work g);
        check "messages <= Thm 2.3" msgs (Bounds.a_msgs g);
        check "rounds <= Thm 2.3" rounds (Bounds.a_rounds g);
      ]
  | "b" ->
      let g = Grid.make spec in
      [
        check "work <= Thm 2.8" work (Bounds.b_work g);
        check "messages <= Thm 2.8" msgs (Bounds.b_msgs g);
        check "rounds <= Thm 2.8" rounds (Bounds.b_rounds g);
      ]
  | "c" | "c-naive" ->
      (* the rounds bound (2^(n+t) deadlines) overflows 63 bits *)
      [
        check "work <= Thm 3.8" work (Bounds.c_work spec);
        check "messages <= Thm 3.8" msgs (Bounds.c_msgs spec);
      ]
  | "c-chunked" ->
      [
        check "work <= Cor 3.9" work (Bounds.c_chunked_work spec);
        check "messages <= Cor 3.9" msgs (Bounds.c_chunked_msgs spec);
      ]
  | "d" ->
      (* judged against the revert-path envelope with f = observed crashes *)
      let f = Metrics.crashes m in
      [
        check "work <= Thm 4.1 (revert)" work (Bounds.d_work_revert spec);
        check "messages <= Thm 4.1 (revert)" msgs
          (Bounds.d_msgs_revert spec ~f);
        check "rounds <= Thm 4.1 (revert)" rounds
          (Bounds.d_rounds_revert spec ~f);
      ]
  | _ -> []

let make ~kind ~protocol ~spec ?(fault = "none") ~metrics ~outcome ~correct
    ~survivors ~crashed ?bounds ?latency ?(extra = []) () =
  let bounds =
    match bounds with
    | Some b -> b
    | None ->
        if kind = "sync" then bound_checks spec ~protocol metrics else []
  in
  { kind; protocol; spec; fault; outcome; correct; survivors; crashed;
    metrics; bounds; latency; extra }

let outcome_string (o : Simkit.Kernel.run_outcome) =
  match o with
  | Simkit.Kernel.Completed -> "completed"
  | Simkit.Kernel.Stalled r -> Printf.sprintf "stalled@%d" r
  | Simkit.Kernel.Round_limit r -> Printf.sprintf "round-limit@%d" r

let of_run ?fault ?latency (r : Runner.report) =
  make ~kind:"sync" ~protocol:r.protocol ~spec:r.spec ?fault
    ~metrics:r.metrics ~outcome:(outcome_string r.outcome)
    ~correct:(Runner.correct r) ~survivors:(Runner.survivors r)
    ~crashed:(Runner.crashed r) ?latency ()

let metrics_json spec m =
  let per_process =
    List.init (Metrics.n_processes m) (fun pid ->
        J.Obj
          [
            ("pid", J.Int pid);
            ("work", J.Int (Metrics.work_by m pid));
            ("messages", J.Int (Metrics.messages_by m pid));
            ("persists", J.Int (Metrics.persists_by m pid));
          ])
  in
  J.Obj
    [
      ("work", J.Int (Metrics.work m));
      ("messages", J.Int (Metrics.messages m));
      ("effort", J.Int (Metrics.effort m));
      ("rounds", J.Int (Metrics.rounds m));
      ("crashes", J.Int (Metrics.crashes m));
      ("restarts", J.Int (Metrics.restarts m));
      ("corruptions", J.Int (Metrics.corruptions m));
      ("rejected", J.Int (Metrics.rejected m));
      ("terminated", J.Int (Metrics.terminated m));
      ("persists", J.Int (Metrics.persists m));
      ("units_covered", J.Int (Metrics.units_covered m));
      ("units", J.Int (Spec.n spec));
      ("per_process", J.Arr per_process);
    ]

let bound_json b =
  J.Obj
    [
      ("check", J.Str b.check);
      ("measured", J.Int b.measured);
      ("bound", J.Int b.bound);
      ("ok", J.Bool b.ok);
    ]

let to_json r =
  J.Obj
    ([
       ("schema", J.Str "dhw-report/v4");
       ("kind", J.Str r.kind);
       ("protocol", J.Str r.protocol);
       ( "spec",
         J.Obj
           [
             ("n", J.Int (Spec.n r.spec));
             ("t", J.Int (Spec.processes r.spec));
           ] );
       ("fault", J.Str r.fault);
       ("outcome", J.Str r.outcome);
       ("correct", J.Bool r.correct);
       ("survivors", J.Int r.survivors);
       ("crashed", J.Int r.crashed);
       ("metrics", metrics_json r.spec r.metrics);
       ("bounds", J.Arr (List.map bound_json r.bounds));
     ]
    @ (match r.latency with Some l -> [ ("latency", l) ] | None -> [])
    @ r.extra)

let to_string r = J.pretty (to_json r)
