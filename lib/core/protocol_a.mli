(** Protocol A (Section 2, Figure 1).

    Work-optimal Do-All with effort [O(n + t√t)]: at any time at most one
    process is active. The active process performs the work a subchunk
    ([≈ n/t] units) at a time, {e partially checkpointing} each completed
    subchunk to the higher-numbered members of its own √t-sized group, and
    {e fully checkpointing} each completed chunk ([≈ n/√t] units) to every
    group — echoing each per-group announcement back to its own group so a
    successor can resume the full checkpoint where it broke off.

    Process [j] takes over at round [DD(j) = j·L] (paper: [j(n+3t)]) unless
    it has learned that all work is done.

    Guarantees (Theorem 2.3, adjusted constants on non-perfect-square
    instances): ≤ 3n work, ≤ 9t√t messages, all processes retired by round
    [t·L ≈ nt + 3t²].

    The asynchronous variant driven by a failure detector instead of the
    [DD] deadlines lives in [Asim.Async_protocol_a]. *)

type msg = Ckpt_script.ord =
  | Partial of int
      (** [(c)]: subchunk [c] is complete — a partial checkpoint to the
          sender's own group *)
  | Full of int * int
      (** [(c, g)]: subchunk [c] (a chunk boundary) is complete and group
          [g] is being / has been informed of it *)

val show_msg : msg -> string

val protocol : Protocol.t

val protocol_with_group_size : int -> Protocol.t
(** Protocol A with checkpoint groups of size [s] instead of [⌈√t⌉] — the
    ablation knob for the Section 2 message/work trade-off argument (bench
    E12): [s = √t] balances [t·s] partial-checkpoint messages against
    [t/s·t] full-checkpoint messages. Correctness is preserved for any
    [1 <= s <= t]. *)

val deadline : Grid.t -> int -> int
(** [deadline grid j] is [DD(j)], exposed for tests and benches. *)

(** {1 Crash–recovery hooks} (consumed by [Doall.Recovery]) *)

type state
(** A process state: waiting (with a takeover deadline) or active. *)

val proc_on_grid : Grid.t -> (state, msg) Simkit.Types.process
(** The raw process function, un-packed — what {!protocol} wraps. *)

val resume_state :
  Grid.t ->
  Simkit.Types.pid ->
  at:Simkit.Types.round ->
  Ckpt_script.last ->
  state * Simkit.Types.round option
(** [resume_state grid pid ~at last] is the waiting state a rejoiner adopts
    after its state-transfer handshake: the recovered view [last] plus a
    fresh takeover deadline [at + (pid+1)·L], staggered by pid so
    simultaneous rejoiners never collide. The returned wakeup is [at + 1]
    when [last] already proves all work done (the rejoiner then terminates
    on its next step), otherwise the new deadline. *)
