module C = Simkit.Campaign
module Metrics = Simkit.Metrics
module Spec = Doall.Spec

type subject = {
  result : Event_sim.result;
  stats : Link.stats;
  spec : Spec.t;
  schedule : C.Async.t;
}

let default_max_ticks = 50_000

let link_of_schedule (sched : C.Async.t) =
  {
    Event_sim.drop_bp = sched.C.Async.drop_bp;
    dup_bp = sched.C.Async.dup_bp;
    corrupt_bp = sched.C.Async.corrupt_bp;
    slow_set = sched.C.Async.slow_set;
    slow_factor = sched.C.Async.slow_factor;
    severs =
      List.map
        (fun s ->
          C.Async.(s.s_src, s.s_dst, s.s_from, s.s_to))
        sched.C.Async.severs;
  }

let run_schedule ?(max_ticks = default_max_ticks) spec (sched : C.Async.t) =
  let link = link_of_schedule sched in
  let stats = Link.stats () in
  let result =
    Async_protocol_a.run_hardened
      ~crash_at:
        (List.map (fun c -> (c.C.Async.victim, c.C.Async.at)) sched.C.Async.crashes)
      ~max_delay:sched.C.Async.max_delay ~max_lag:sched.C.Async.max_lag
      ~seed:sched.C.Async.seed ~link ~stats ~max_ticks spec
  in
  { result; stats; spec; schedule = sched }

(* ------------------------------------------------------------------ *)
(* Oracles *)

let completed =
  {
    C.name = "completed";
    check =
      (fun s ->
        match s.result.Event_sim.outcome with
        | Event_sim.Completed -> C.Pass
        | o -> C.Fail (Format.asprintf "%a" Event_sim.pp_outcome o));
  }

let no_lost_unit =
  {
    C.name = "no-lost-unit";
    check =
      (fun s ->
        let m = s.result.Event_sim.metrics in
        let terminated =
          Array.exists
            (function Simkit.Types.Terminated _ -> true | _ -> false)
            s.result.Event_sim.statuses
        in
        if (not terminated) || Metrics.all_units_done m then C.Pass
        else
          C.Fail
            (Printf.sprintf
               "a process terminated with only %d/%d units performed"
               (Metrics.units_covered m) (Metrics.n_units m)));
  }

let default_grace = 5_000

let detector_complete ?(grace = default_grace) () =
  {
    C.name = "detector-complete";
    check =
      (fun s ->
        match s.result.Event_sim.outcome with
        | Event_sim.Completed -> C.Pass
        | Event_sim.Stalled end_t | Event_sim.Tick_limit end_t -> (
            let statuses = s.result.Event_sim.statuses in
            let notices = s.stats.Link.notices in
            let missing = ref [] in
            Array.iteri
              (fun o so ->
                if so = Simkit.Types.Running then
                  Array.iteri
                    (fun p sp ->
                      let retired_at =
                        match sp with
                        | Simkit.Types.Crashed r | Simkit.Types.Terminated r ->
                            Some r
                        | Simkit.Types.Running -> None
                      in
                      match retired_at with
                      | Some r when o <> p && end_t - r >= grace ->
                          if
                            not
                              (List.exists
                                 (fun (ob, su, _) -> ob = o && su = p)
                                 notices)
                          then missing := (o, p) :: !missing
                      | _ -> ())
                    statuses)
              statuses;
            match !missing with
            | [] -> C.Pass
            | (o, p) :: _ ->
                C.Fail
                  (Printf.sprintf
                     "process %d never suspected peer %d, retired >= %d \
                      ticks before the end"
                     o p grace)));
  }

let bounded_duplication =
  {
    C.name = "bounded-duplication";
    check =
      (fun s ->
        let m = s.result.Event_sim.metrics in
        let worst = ref 0 in
        for u = 0 to Metrics.n_units m - 1 do
          worst := max !worst (Metrics.unit_multiplicity m u)
        done;
        let observers =
          List.sort_uniq compare
            (List.map (fun (o, _, _) -> o) s.stats.Link.notices)
        in
        let bound = 1 + List.length observers in
        if !worst <= bound then
          C.Pass_margin (float_of_int !worst /. float_of_int bound)
        else
          C.Fail
            (Printf.sprintf
               "unit multiplicity %d exceeds 1 + %d notice-issuing observers"
               !worst (List.length observers)));
  }

let work_cap cap =
  {
    C.name = "work-cap";
    check =
      (fun s ->
        let w = Metrics.work s.result.Event_sim.metrics in
        if cap <= 0 then C.Pass
        else if w <= cap then
          C.Pass_margin (float_of_int w /. float_of_int cap)
        else C.Fail (Printf.sprintf "work = %d exceeds cap %d" w cap));
  }

let oracles ?grace () =
  [ completed; no_lost_unit; detector_complete ?grace (); bounded_duplication ]

(* ------------------------------------------------------------------ *)
(* Campaign driver *)

let stamp spec sched =
  C.Async.add_meta sched
    [
      ("protocol", "async-a");
      ("n", string_of_int (Spec.n spec));
      ("t", string_of_int (Spec.processes spec));
    ]

let default_window ?max_ticks spec =
  let ff = run_schedule ?max_ticks spec (C.Async.make ()) in
  (2 * Metrics.rounds ff.result.Event_sim.metrics) + 2

(* [?jobs] fans schedule execution out over a Simkit.Pool; omitted, the
   sequential engine runs as before. Generation stays sequential so seeds
   keep their meaning. *)
let campaign ?jobs ?(seed = 1L) ?(executions = 100) ?window ?grace
    ?(extra = []) ?max_failures ?shrink_budget ?max_ticks spec =
  let window =
    match window with Some w -> w | None -> default_window ?max_ticks spec
  in
  let t = Spec.processes spec in
  let g = Dhw_util.Prng.create seed in
  let schedules =
    List.init executions (fun _ -> stamp spec (C.Async.sample g ~t ~window))
  in
  C.run_dispatch ?jobs
    ~run:(run_schedule ?max_ticks spec)
    ~oracles:(oracles ?grace () @ extra)
    ~candidates:C.Async.candidates ?max_failures ?shrink_budget
    (List.to_seq schedules)

(* ------------------------------------------------------------------ *)
(* Corruption / Byzantine campaigns *)

let byz_protocol_name = function
  | Doall.Fuzz.Unhardened -> "async-a"
  | Doall.Fuzz.Hardened -> Async_protocol_a.validated_name

let byz_hardening_of_name = function
  | "async-a" | "a" -> Some Doall.Fuzz.Unhardened
  | "async-a+val" | "a+val" | "aval" -> Some Doall.Fuzz.Hardened
  | _ -> None

let run_byz_schedule ?(max_ticks = default_max_ticks) spec hardening
    (sched : C.Async.t) =
  let link = link_of_schedule sched in
  let crash_at =
    List.map (fun c -> (c.C.Async.victim, c.C.Async.at)) sched.C.Async.crashes
  in
  let byz =
    List.map (fun c -> (c.C.Async.victim, c.C.Async.at)) sched.C.Async.byz
  in
  let stats = Link.stats () in
  let runner =
    match hardening with
    | Doall.Fuzz.Unhardened -> Async_protocol_a.run_hardened
    | Doall.Fuzz.Hardened -> Async_protocol_a.run_validated
  in
  let result =
    runner ~crash_at ~max_delay:sched.C.Async.max_delay
      ~max_lag:sched.C.Async.max_lag ~seed:sched.C.Async.seed ~link ~stats
      ~max_ticks ~byz spec
  in
  { result; stats; spec; schedule = sched }

let no_phantom_unit =
  {
    C.name = "no-phantom-unit";
    check =
      (fun s ->
        let m = s.result.Event_sim.metrics in
        let terminated =
          Array.exists
            (function Simkit.Types.Terminated _ -> true | _ -> false)
            s.result.Event_sim.statuses
        in
        if (not terminated) || Metrics.all_units_done m then C.Pass
        else
          C.Fail
            (Printf.sprintf
               "a process reported done with only %d/%d units performed"
               (Metrics.units_covered m) (Metrics.n_units m)));
  }

let correct_despite_lies =
  {
    C.name = "correct-despite-lies";
    check =
      (fun s ->
        match s.result.Event_sim.outcome with
        | Event_sim.Completed ->
            let m = s.result.Event_sim.metrics in
            if Metrics.all_units_done m then C.Pass
            else
              C.Fail
                (Printf.sprintf "completed with only %d/%d units performed"
                   (Metrics.units_covered m) (Metrics.n_units m))
        | o -> C.Fail (Format.asprintf "%a" Event_sim.pp_outcome o));
  }

(* Airtight for any adversary: a process activates at most once and a
   script performs at most n units, so total work never exceeds one script
   per honest process. The margin carries the signal — with b subverted
   pids the quorum forces ~ (f+1) completions out of (t - b) honest. *)
let validation_overhead spec =
  {
    C.name = "validation-overhead-bounded";
    check =
      (fun s ->
        let t = Spec.processes spec in
        let subverted =
          List.length
            (List.sort_uniq compare
               (List.map (fun c -> c.C.Async.victim) s.schedule.C.Async.byz))
        in
        let cap = (t - subverted) * Spec.n spec in
        let w = Metrics.work s.result.Event_sim.metrics in
        if cap <= 0 then C.Pass
        else if w <= cap then C.Pass_margin (float_of_int w /. float_of_int cap)
        else C.Fail (Printf.sprintf "work = %d exceeds cap %d" w cap));
  }

let byz_oracles spec ~hardening =
  let base = [ no_phantom_unit; correct_despite_lies ] in
  match hardening with
  | Doall.Fuzz.Unhardened -> base
  | Doall.Fuzz.Hardened -> base @ [ validation_overhead spec ]

let byz_stamp spec hardening sched =
  C.Async.add_meta sched
    [
      ("protocol", byz_protocol_name hardening);
      ("n", string_of_int (Spec.n spec));
      ("t", string_of_int (Spec.processes spec));
    ]

let byz_campaign ?jobs ?(seed = 1L) ?(executions = 200) ?window ?byz
    ?(extra = []) ?max_failures ?shrink_budget ?max_ticks spec hardening =
  let t = Spec.processes spec in
  let byz =
    match byz with
    | Some b -> b
    | None -> min (max 0 ((t / 3) - 1)) (t - 1)
  in
  let window =
    match window with Some w -> w | None -> default_window ?max_ticks spec
  in
  let g = Dhw_util.Prng.create seed in
  let schedules =
    List.init executions (fun _ ->
        byz_stamp spec hardening (C.Async.sample_byz g ~t ~window ~byz))
  in
  C.run_dispatch ?jobs
    ~run:(run_byz_schedule ?max_ticks spec hardening)
    ~oracles:(byz_oracles spec ~hardening @ extra)
    ~candidates:C.Async.candidates ~cost:C.Async.cost ?max_failures
    ?shrink_budget
    (List.to_seq schedules)
