(** The asynchronous variant of Protocol A (the Section 2.1 remark): instead
    of waiting until round [DD(j)], process [j] takes over as soon as the
    failure-detection service has reported every process [< j] retired.

    Soundness of the detector gives at-most-one-active; completeness gives
    liveness. Work and message counts obey Theorem 2.3's bounds — time is
    whatever the delay adversary makes it. *)

type msg = Doall.Ckpt_script.ord
(** The only protocol payload is a checkpoint ordinal — public so the
    real-process deployment can put it on the wire with the shared
    [Ckpt_script.ord] codec instead of a parallel serializer. *)

val show_msg : msg -> string

type state
(** Per-process protocol state (awaiting the detector, or mid-script). *)

val aproc : Doall.Spec.t -> (state, msg) Event_sim.aproc
(** The bare state machine, for wrapping ({!Link.harden}) or custom
    executor configurations. *)

val aproc_recover :
  last:Doall.Ckpt_script.last -> Doall.Spec.t -> (state, msg) Event_sim.aproc
(** The state machine a {e restarted} incarnation runs: it starts waiting,
    seeded with [last] — its best checkpoint knowledge read back from disk
    — and never self-activates on [Started] (even pid 0, whose vacuous
    takeover right would duplicate the active chain on every respawn);
    activation still happens organically once every lower pid is reported
    retired. If [last] already proves all work done the incarnation
    terminates immediately. This is the async counterpart of
    {!Doall.Recovery.recover_hook}, used by the real-process fleet's
    [--recover] respawns. *)

val run :
  ?crash_at:(Simkit.Types.pid * Event_sim.time) list ->
  ?max_delay:int ->
  ?max_lag:int ->
  ?seed:int64 ->
  ?false_suspicions:(Simkit.Types.pid * Simkit.Types.pid * Event_sim.time) list ->
  ?link:Event_sim.link ->
  ?obs:Simkit.Obs.sink ->
  Doall.Spec.t ->
  Event_sim.result
(** Build and execute the asynchronous Protocol A on an instance, over the
    oracle detection service. With [false_suspicions] the detector's
    soundness is deliberately violated: the falsely-convinced process may
    become active alongside the real one, so work is duplicated — but since
    the work is idempotent, every unit is still performed (the precise
    reason Section 2.1 requires soundness is efficiency, not safety). With
    [link], messages are additionally lost/duplicated/delayed; the
    takeover chain still completes every unit, at a work and message
    overhead. *)

val default_heartbeat : max_delay:int -> Heartbeat.config
(** The heartbeat configuration {!run_hardened} derives from the delay
    bound: period [max 4 (2 * max_delay)], timeout six periods, backoff 2. *)

val run_hardened :
  ?crash_at:(Simkit.Types.pid * Event_sim.time) list ->
  ?max_delay:int ->
  ?max_lag:int ->
  ?seed:int64 ->
  ?false_suspicions:(Simkit.Types.pid * Simkit.Types.pid * Event_sim.time) list ->
  ?link:Event_sim.link ->
  ?link_config:Link.config ->
  ?heartbeat:Heartbeat.config ->
  ?stats:Link.stats ->
  ?max_ticks:Event_sim.time ->
  ?byz:(Simkit.Types.pid * Event_sim.time) list ->
  ?obs:Simkit.Obs.sink ->
  Doall.Spec.t ->
  Event_sim.result
(** Protocol A over {!Link.harden}: ack/retransmit reliable delivery plus
    an {!Heartbeat} detector instead of the oracle ([oracle_detector] is
    off — every retirement is detected organically, and suspicions can be
    organically false). Under a lossy [link] the run still completes every
    unit with every live process terminating; the overhead relative to a
    perfect-link run is the price of the unreliable network (bench E17).

    The raw-alphabet wire tamper model is wired in, so a [corrupt_bp] link
    and [byz] subversions act: this is the {e exposed} baseline the
    [byz-fuzz --async] campaign breaks — one forged or garbled
    [Full (S, g_j)] data frame retires waiting process [j] with the work
    undone. A subverted pid stops beating, so the heartbeat layer suspects
    it and the honest takeover chain stays live. Without [byz] and with
    [corrupt_bp = 0] the model is inert and runs are byte-identical to
    before it existed. *)

val validated_name : string
(** ["async-a+val"], the meta/CLI name of {!run_validated}. *)

val run_validated :
  ?crash_at:(Simkit.Types.pid * Event_sim.time) list ->
  ?max_delay:int ->
  ?max_lag:int ->
  ?seed:int64 ->
  ?false_suspicions:(Simkit.Types.pid * Simkit.Types.pid * Event_sim.time) list ->
  ?link:Event_sim.link ->
  ?link_config:Link.config ->
  ?heartbeat:Heartbeat.config ->
  ?stats:Link.stats ->
  ?max_ticks:Event_sim.time ->
  ?byz:(Simkit.Types.pid * Event_sim.time) list ->
  ?obs:Simkit.Obs.sink ->
  Doall.Spec.t ->
  Event_sim.result
(** {!run_hardened} upgraded with the [Doall.Validate] hardening layer:
    every checkpoint view travels as an authenticated
    [Doall.Validate.signed] claim inside the reliable-link frames,
    unverifiable frames are dropped ([Simkit.Metrics.rejected] /
    [Obs.Reject]), and the inner state machine only ever sees the
    [(f+1)]-quorum-attested subchunk, [f = Doall.Validate.tolerated p]. A
    waiting process therefore terminates only once [f+1] distinct signers
    — hence at least one honest process — have claimed all-done: under any
    [byz] schedule with at most [f] subverted pids, no phantom
    termination. The price is the takeover chain running [f+1] scripts to
    completion ([≈ (f+1)·n] work) instead of one; liveness never depends
    on the quorum — a subverted or retired active stops beating, so the
    next process takes over organically. *)
