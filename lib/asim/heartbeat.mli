(** Eventually-perfect (◇P) failure detection from heartbeat timeouts — the
    organic replacement for {!Event_sim}'s oracle detection service.

    Each process broadcasts a heartbeat every [period] ticks; a monitor
    suspects a peer whose silence exceeds that peer's current timeout. Over
    lossy or slow links a live peer can be suspected {e falsely}; when later
    evidence of life arrives, the suspicion is retracted and that peer's
    timeout backs off multiplicatively, so any fixed pattern of delays is
    eventually tolerated (the classic Chandra–Toueg ◇P construction).
    Completeness is organic: a crashed or terminated peer never beats again,
    so its timeout fires and the suspicion is permanent.

    This module is the pure(ly local) core: it decides {e when} to beat and
    {e whom} to suspect. {!Link.harden} drives it from the event loop and
    turns its verdicts into [Retired_notice] events for the wrapped
    protocol. *)

open Simkit.Types

type time = int

type config = {
  period : int;  (** ticks between heartbeat broadcasts *)
  timeout : int;  (** initial per-peer suspicion timeout *)
  backoff : int;  (** timeout multiplier applied on each false suspicion *)
  max_timeout : int;  (** cap on the backed-off timeout *)
}

val config :
  ?period:int -> ?timeout:int -> ?backoff:int -> ?max_timeout:int -> unit ->
  config
(** Defaults: period 8, timeout 48, backoff 2, max_timeout 100_000. Raises
    [Invalid_argument] on [period < 1], [timeout < period], [backoff < 1]
    or [max_timeout < timeout]. *)

type t
(** A mutable monitor owned by one process. *)

val create : ?config:config -> me:pid -> n:int -> now:time -> unit -> t
(** Monitor the [n - 1] peers of [me]; every peer starts with a full
    timeout from [now]. *)

val next_deadline : t -> time
(** The earliest tick at which {!tick} has something to do: the next beat
    or the earliest peer timeout. *)

val tick : t -> now:time -> pid list * bool
(** Advance to [now]. Returns the peers newly suspected (their timeouts
    expired) and whether a heartbeat broadcast is due. *)

val alive_evidence : t -> src:pid -> now:time -> bool
(** Any message (heartbeat or payload) from [src] proves it was recently
    alive: its deadline is pushed out. Returns [true] when this retracts a
    standing suspicion — a false suspicion, after which [src]'s timeout is
    multiplied by [backoff] (capped at [max_timeout]). No-op (returning
    [false]) for [me], out-of-range pids and stopped peers. *)

val stop : t -> pid -> unit
(** [src] is known retired: stop monitoring it (no further suspicion). *)

val rejoin : t -> pid -> now:time -> unit
(** [q] is known to have restarted (crash–recovery transports call this on
    a rejoin announcement): resume monitoring it even if {!stop}ped, clear
    any standing suspicion — counted as an un-suspect but {e not} a false
    suspicion, the peer really was down — and re-arm its deadline with the
    initial (un-backed-off) timeout. No-op for [me] and out-of-range pids. *)

val suspected : t -> pid -> bool
val suspects : t -> pid list

type stats = {
  suspicions : int;  (** timeout-fired suspicion events ({!tick}) *)
  false_suspicions : int;
      (** suspicions retracted by later evidence of life
          ({!alive_evidence}) — the detector was provably wrong *)
  unsuspects : int;
      (** suspected->trusted transitions performed: every false-suspicion
          retraction plus every {!rejoin} of a suspected peer, so
          [unsuspects >= false_suspicions] with equality in a pure
          crash-stop run *)
}
(** Detector-accuracy observables of one monitor. *)

val stats : t -> stats
