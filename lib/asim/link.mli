(** Reliable, idempotent delivery over {!Event_sim}'s unreliable links:
    positive acknowledgments, retransmission with exponential backoff, and
    sequence-number deduplication — plus, optionally, an {!Heartbeat}
    failure detector replacing the simulator's oracle notification service.

    [harden] is a combinator: it wraps any [('s, 'm) Event_sim.aproc] into
    an aproc speaking ['m wire] whose inner protocol observes the same
    interface as before — [Got] events carry the original payloads, at most
    once each, and [Retired_notice] events arrive either from the oracle
    (pass-through) or from heartbeat timeouts (organic, possibly {e false}
    under loss or slow links; the wrapped protocol must tolerate unsound
    suspicion, which the paper's idempotent work model does by design).

    Mechanics worth knowing:
    - every inner send becomes a [Data] packet with a fresh sequence number,
      retransmitted on a backoff schedule until acked or until the
      destination is believed retired;
    - receivers ack every [Data] (including duplicates — the previous ack
      may have been lost) and deliver each sequence number to the inner
      protocol at most once;
    - inner termination is {e held} while packets are still in flight: the
      wrapper drains (keeps retransmitting and heartbeating) and terminates
      only once every pending packet is acked or addressed to a peer
      believed retired. This is what lets a final broadcast survive loss.
    - any arriving packet counts as evidence of life for its sender; if the
      sender was falsely suspected, the suspicion is retracted
      ({!Heartbeat.alive_evidence}) and sends to it resume. The inner
      protocol is never "un-notified" — by Section 2.1's own argument it
      must already tolerate duplicated activity, not corrupted work.
    - sends addressed to peers currently believed retired are skipped
      outright; a false belief can therefore lose an inner message
      permanently, and recovery relies on the wrapped protocol's takeover
      redundancy (Protocol A reissues knowledge on every takeover). *)

open Simkit.Types

type time = int

type config = {
  rto : int;  (** initial retransmission timeout (ticks) *)
  backoff : int;  (** timeout multiplier per retransmission *)
  max_rto : int;  (** backoff cap *)
  max_retries : int;
      (** retransmissions allowed per packet before it is abandoned;
          [0] means retransmit forever. A bound is essential against
          Byzantine peers: a subverted process that streams forged
          traffic (alive evidence) while never acking would otherwise
          hold every draining sender hostage forever. *)
}

val config :
  ?rto:int -> ?backoff:int -> ?max_rto:int -> ?max_retries:int -> unit -> config
(** Defaults: rto 16, backoff 2, max_rto 2048, max_retries 0 (retransmit
    forever). Raises [Invalid_argument] on [rto < 1], [backoff < 1],
    [max_rto < rto] or [max_retries < 0]. *)

type stats = {
  mutable data_sent : int;  (** first transmissions of inner messages *)
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable beats_sent : int;
  mutable dups_suppressed : int;
      (** [Data] arrivals whose sequence number was already delivered *)
  mutable recoveries : int;  (** suspicions retracted by later evidence *)
  mutable suspicions : int;
      (** heartbeat-timeout suspicion events fired, summed over every
          monitor of the run (see {!Heartbeat.stats}) *)
  mutable false_suspicions : int;
      (** of those, suspicions later retracted by evidence of life — the
          detector was provably wrong *)
  mutable unsuspects : int;
      (** suspected->trusted transitions performed; equals
          [false_suspicions] under crash-stop, and would additionally count
          {!Heartbeat.rejoin}s of genuinely-restarted peers *)
  mutable abandoned : int;
      (** packets dropped after exhausting [config.max_retries]
          retransmissions (always 0 with the unlimited default) *)
  mutable notices : (pid * pid * time) list;
      (** every (observer, suspect, tick) retirement notification handed to
          an inner protocol — oracle-relayed or heartbeat-derived. The
          campaign oracles judge detector completeness and suspicion
          accuracy from this log. *)
  mutable suspect_log : (pid * pid * time) list;
      (** every (observer, suspect, tick) heartbeat-timeout suspicion event
          — unlike [notices], repeated suspicions of the same peer all
          appear. Paired with [unsuspect_log] this yields per-episode
          suspicion→retraction latencies (the real-fleet detector report). *)
  mutable unsuspect_log : (pid * pid * time) list;
      (** every (observer, peer, tick) suspected→trusted retraction
          performed on evidence of life *)
}

val stats : unit -> stats
(** A fresh all-zero record. One [stats] may be shared by every process of
    a run (the simulator is single-threaded). *)

type 'm wire = Data of { seq : int; payload : 'm } | Ack of int | Beat

val show_wire : ('m -> string) -> 'm wire -> string

type ('s, 'm) state
(** Wrapper state: inner state plus transport bookkeeping. *)

val inner_state : ('s, 'm) state -> 's
val in_flight : ('s, 'm) state -> int
(** Unacked packets currently being retransmitted. *)

val suspects : ('s, 'm) state -> pid list
(** The peers this process's heartbeat monitor currently suspects; [[]]
    without a [?heartbeat]. A node whose suspect set covers every peer has
    lost its quorum — the real-fleet driver parks on this signal. *)

val harden :
  ?config:config ->
  ?heartbeat:Heartbeat.config ->
  ?stats:stats ->
  n:int ->
  ('s, 'm) Event_sim.aproc ->
  (('s, 'm) state, 'm wire) Event_sim.aproc
(** [harden ~n inner] wraps [inner] (for an [n]-process run). With
    [?heartbeat] the wrapper broadcasts heartbeats and derives
    [Retired_notice] events from {!Heartbeat} timeouts — run it with
    [oracle_detector = false] for fully organic detection. The monitor is
    anchored at the tick the [Started] event arrives, so a process (or a
    respawned real-fleet incarnation) entering at a late tick grants its
    peers a full timeout rather than finding every deadline pre-expired.
    Without [?heartbeat] the wrapper only adds reliable delivery and
    relays oracle notices unchanged. *)
