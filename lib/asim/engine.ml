(* One process of an [Event_sim.aproc], driven by a caller-supplied clock
   instead of the simulator's event queue. The simulator owns time and
   delivery for t processes at once; the engine owns neither — it keeps
   exactly the per-process contract ([Started] first, [Continue] at the
   requested wakeups, [Got]/[Retired_notice] on arrival) and hands every
   outcome's sends/work back to the caller. This is what lets the
   dhw_node fleet run the very same hardened state machines
   ([Link.harden] around [Async_protocol_a]) over real sockets and a
   wall-clock-derived tick counter, byte-for-byte the code the simulator
   fuzzes. *)

open Simkit.Types

type 'm effects = {
  sends : (pid * 'm) list;
  work : int list;
  terminated : bool;
}

type ('s, 'm) t = {
  proc : ('s, 'm) Event_sim.aproc;
  pid : pid;
  mutable state : 's;
  mutable wakeups : int list;  (* pending Continue times, multiset *)
  mutable terminated : bool;
  mutable started : bool;
}

let no_effects = { sends = []; work = []; terminated = false }

let create proc ~pid =
  {
    proc;
    pid;
    state = proc.Event_sim.a_init pid;
    wakeups = [];
    terminated = false;
    started = false;
  }

let state e = e.state
let terminated e = e.terminated

let next_wakeup e =
  match e.wakeups with
  | [] -> None
  | w :: ws -> Some (List.fold_left min w ws)

let feed e ~now ev =
  if e.terminated then no_effects
  else begin
    let o = e.proc.Event_sim.a_handle e.pid now e.state ev in
    e.state <- o.Event_sim.state;
    (match o.continue_after with
    | Some d when d >= 1 -> e.wakeups <- (now + d) :: e.wakeups
    | Some _ -> invalid_arg "Engine: continue_after must be >= 1"
    | None -> ());
    if o.terminate then begin
      e.terminated <- true;
      e.wakeups <- []
    end;
    { sends = o.sends; work = o.work; terminated = o.terminate }
  end

let merge a b =
  {
    sends = a.sends @ b.sends;
    work = a.work @ b.work;
    terminated = a.terminated || b.terminated;
  }

let start e ~now =
  if e.started then invalid_arg "Engine.start: already started";
  e.started <- true;
  feed e ~now Event_sim.Started

let deliver e ~now ~src payload =
  feed e ~now (Event_sim.Got { src; payload })

let notice e ~now who = feed e ~now (Event_sim.Retired_notice who)

(* Fire every due Continue, one handler call per scheduled wakeup (the
   simulator delivers each [continue_after] as its own event). A handler
   may re-arm; only wakeups <= now fire in this call. *)
let advance e ~now =
  let rec go acc =
    if e.terminated then acc
    else
      match List.find_opt (fun w -> w <= now) e.wakeups with
      | None -> acc
      | Some w ->
          let rec remove_one = function
            | [] -> []
            | x :: rest when x = w -> rest
            | x :: rest -> x :: remove_one rest
          in
          e.wakeups <- remove_one e.wakeups;
          go (merge acc (feed e ~now Event_sim.Continue))
  in
  go no_effects
