open Simkit.Types
module Prng = Dhw_util.Prng
module TMap = Map.Make (Int)

type time = int

type 'm aevent =
  | Started
  | Got of { src : pid; payload : 'm }
  | Retired_notice of pid
  | Continue

type ('s, 'm) aoutcome = {
  state : 's;
  sends : (pid * 'm) list;
  work : int list;
  terminate : bool;
  continue_after : int option;
}

type ('s, 'm) aproc = {
  a_init : pid -> 's;
  a_handle : pid -> time -> 's -> 'm aevent -> ('s, 'm) aoutcome;
}

type link = {
  drop_bp : int;
  dup_bp : int;
  corrupt_bp : int;
  slow_set : pid list;
  slow_factor : int;
  severs : (pid * pid * time * time) list;
}

let perfect_link =
  {
    drop_bp = 0;
    dup_bp = 0;
    corrupt_bp = 0;
    slow_set = [];
    slow_factor = 1;
    severs = [];
  }

type 'm tamper_model = {
  t_corrupt : src:pid -> dst:pid -> at:time -> 'm -> 'm;
  t_forge : pid -> at:time -> (pid * 'm) list;
}

type config = {
  n_processes : int;
  n_units : int;
  crash_at : (pid * time) list;
  max_delay : int;
  max_lag : int;
  seed : int64;
  max_ticks : time;
  false_suspicions : (pid * pid * time) list;
  link : link;
  byz : (pid * time) list;
  oracle_detector : bool;
  obs : Simkit.Obs.sink option;
  spans : Simkit.Obs.sink option;
}

let config ?(crash_at = []) ?(max_delay = 5) ?(max_lag = 8) ?(seed = 1L)
    ?(max_ticks = 10_000_000) ?(false_suspicions = []) ?(link = perfect_link)
    ?(byz = []) ?(oracle_detector = true) ?obs ?spans ~n_processes ~n_units () =
  let err fmt = Printf.ksprintf invalid_arg ("Event_sim.config: " ^^ fmt) in
  if n_processes < 1 then err "n_processes must be >= 1 (got %d)" n_processes;
  if n_units < 0 then err "n_units must be >= 0 (got %d)" n_units;
  if max_delay < 1 then err "max_delay must be >= 1 (got %d)" max_delay;
  if max_lag < 1 then err "max_lag must be >= 1 (got %d)" max_lag;
  if max_ticks < 1 then err "max_ticks must be >= 1 (got %d)" max_ticks;
  let in_range pid = pid >= 0 && pid < n_processes in
  List.iter
    (fun (pid, at) ->
      if not (in_range pid) then
        err "crash_at names pid %d outside [0, %d)" pid n_processes;
      if at < 0 then err "crash_at time for pid %d is negative (%d)" pid at)
    crash_at;
  List.iter
    (fun (observer, suspect, at) ->
      if not (in_range observer) then
        err "false_suspicions observer %d outside [0, %d)" observer n_processes;
      if not (in_range suspect) then
        err "false_suspicions suspect %d outside [0, %d)" suspect n_processes;
      if at < 0 then
        err "false_suspicions time for (%d, %d) is negative (%d)" observer
          suspect at)
    false_suspicions;
  if link.drop_bp < 0 || link.drop_bp > 9_999 then
    err "link.drop_bp must lie in [0, 9999] (got %d)" link.drop_bp;
  if link.dup_bp < 0 || link.dup_bp > 10_000 then
    err "link.dup_bp must lie in [0, 10000] (got %d)" link.dup_bp;
  if link.corrupt_bp < 0 || link.corrupt_bp > 9_999 then
    err "link.corrupt_bp must lie in [0, 9999] (got %d)" link.corrupt_bp;
  if link.slow_factor < 1 then
    err "link.slow_factor must be >= 1 (got %d)" link.slow_factor;
  List.iter
    (fun pid ->
      if not (in_range pid) then
        err "link.slow_set names pid %d outside [0, %d)" pid n_processes)
    link.slow_set;
  List.iter
    (fun (src, dst, from_, to_) ->
      if not (in_range src) then
        err "link.severs names src %d outside [0, %d)" src n_processes;
      if not (in_range dst) then
        err "link.severs names dst %d outside [0, %d)" dst n_processes;
      if from_ < 0 || to_ < from_ then
        err "link.severs window for (%d, %d) must be 0 <= from <= to" src dst)
    link.severs;
  List.iter
    (fun (pid, at) ->
      if not (in_range pid) then
        err "byz names pid %d outside [0, %d)" pid n_processes;
      if at < 0 then err "byz time for pid %d is negative (%d)" pid at)
    byz;
  { n_processes; n_units; crash_at; max_delay; max_lag; seed; max_ticks;
    false_suspicions; link; byz; oracle_detector; obs; spans }

type run_outcome = Completed | Stalled of time | Tick_limit of time

type net = { sent : int; dropped : int; duplicated : int }

type result = {
  metrics : Simkit.Metrics.t;
  statuses : status array;
  outcome : run_outcome;
  net : net;
}

let completed r = r.outcome = Completed

let pp_outcome ppf = function
  | Completed -> Format.fprintf ppf "completed"
  | Stalled t -> Format.fprintf ppf "STALLED@%d" t
  | Tick_limit t -> Format.fprintf ppf "TICK-LIMIT@%d" t

(* Internal queue items. [Crash_item] realises the crash schedule,
   [Forge_item] the Byzantine one; the rest are process-visible events. *)
type 'm item =
  | Ev of { dst : pid; ev : 'm aevent }
  | Crash_item of pid
  | Forge_item of pid

let run ?metrics ?tamper cfg proc =
  let t = cfg.n_processes in
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Simkit.Metrics.create ~n_processes:t ~n_units:cfg.n_units
  in
  let emit = match cfg.obs with Some sink -> sink | None -> Simkit.Obs.null in
  let statuses = Array.make t Running in
  let states = Array.init t proc.a_init in
  let g = Prng.create cfg.seed in
  let queue : 'm item list TMap.t ref = ref TMap.empty in
  let push at item =
    let existing = Option.value ~default:[] (TMap.find_opt at !queue) in
    queue := TMap.add at (item :: existing) !queue
  in
  let slow = Array.make t false in
  List.iter (fun pid -> slow.(pid) <- true) cfg.link.slow_set;
  let n_sent = ref 0 and n_dropped = ref 0 and n_duplicated = ref 0 in
  (* Byzantine subversion schedule: from its activation tick a subverted
     process stops executing its protocol and instead injects forged
     traffic from the tamper model, once per [max_delay] ticks, until no
     honest process remains live. It never retires, so completion exempts
     it. A subversion shadows any later crash of the same pid. *)
  let byz_from = Array.make t max_int in
  List.iter
    (fun (pid, at) -> if at < byz_from.(pid) then byz_from.(pid) <- at)
    cfg.byz;
  let byz_active pid now = byz_from.(pid) <= now in
  (* Crash schedule first so a crash at tick τ precedes deliveries at τ. *)
  List.iter (fun (pid, at) -> push at (Crash_item pid)) cfg.crash_at;
  Array.iteri
    (fun pid at -> if at < max_int then push at (Forge_item pid))
    byz_from;
  (* Injected detector unsoundness: a notice about a live process. *)
  List.iter
    (fun (observer, suspect, at) ->
      push at (Ev { dst = observer; ev = Retired_notice suspect }))
    cfg.false_suspicions;
  for pid = 0 to t - 1 do
    push 0 (Ev { dst = pid; ev = Started })
  done;
  let alive pid = statuses.(pid) = Running in
  let retire_notify who now =
    (* Failure-detection service: sound by construction (only called on
       actual retirement), complete because every live process gets a
       notification after a bounded lag. Disabled when the configuration
       opts for organic detection (Asim.Link heartbeats). *)
    if cfg.oracle_detector then
      for obs = 0 to t - 1 do
        if obs <> who && alive obs then
          push (now + 1 + Prng.int g cfg.max_lag) (Ev { dst = obs; ev = Retired_notice who })
      done
  in
  let transmit now src dst payload =
    (* The link adversary: every protocol message may be dropped, duplicated
       or — when either endpoint belongs to the slow set — delayed up to
       [slow_factor * max_delay] ticks. Decisions are drawn from the same
       seeded stream as the delays, so a seed fully determines the run.
       Drop and duplication draws are skipped entirely at probability zero,
       keeping perfect-link runs byte-identical to the pre-adversary
       behaviour. *)
    incr n_sent;
    (* A severed link loses the message deterministically, before any
       adversary coin is consumed — schedules without severs stay
       byte-identical. *)
    let severed =
      List.exists
        (fun (s, d, from_, to_) ->
          s = src && d = dst && from_ <= now && now <= to_)
        cfg.link.severs
    in
    let dropped =
      severed
      || (cfg.link.drop_bp > 0 && Prng.int g 10_000 < cfg.link.drop_bp)
    in
    if dropped then incr n_dropped
    else begin
      (* In-flight corruption: the payload is garbled by the tamper model
         before delivery. The draw is skipped entirely at probability zero,
         and inert without a tamper model, so existing runs stay
         byte-identical. *)
      let payload =
        if cfg.link.corrupt_bp > 0 && Prng.int g 10_000 < cfg.link.corrupt_bp
        then
          match tamper with
          | Some tm ->
              Simkit.Metrics.record_corruption metrics;
              emit (Simkit.Obs.Tamper { pid = src; at = now });
              tm.t_corrupt ~src ~dst ~at:now payload
          | None -> payload
        else payload
      in
      let deliver () =
        let cap =
          if slow.(src) || slow.(dst) then cfg.max_delay * cfg.link.slow_factor
          else cfg.max_delay
        in
        push (now + 1 + Prng.int g cap) (Ev { dst; ev = Got { src; payload } })
      in
      deliver ();
      if cfg.link.dup_bp > 0 && Prng.int g 10_000 < cfg.link.dup_bp then begin
        incr n_duplicated;
        deliver ()
      end
    end
  in
  let with_span ~name ~pid now f =
    match cfg.spans with
    | None -> f ()
    | Some sink ->
        sink
          (Simkit.Obs.Span_begin
             { name; pid; at = now; inc = 0;
               ts_us = Dhw_util.Clock.now_us () });
        let res = f () in
        sink
          (Simkit.Obs.Span_end
             { name; pid; at = now; inc = 0;
               ts_us = Dhw_util.Clock.now_us () });
        res
  in
  let handle now dst ev =
    if alive dst && not (byz_active dst now) then begin
      emit (Simkit.Obs.Step { pid = dst; at = now });
      let o =
        with_span ~name:"handle" ~pid:dst now (fun () ->
            proc.a_handle dst now states.(dst) ev)
      in
      states.(dst) <- o.state;
      List.iter
        (fun u ->
          Simkit.Metrics.record_work metrics dst u;
          emit (Simkit.Obs.Work { pid = dst; at = now; unit_id = u }))
        o.work;
      List.iter
        (fun (to_, payload) ->
          Simkit.Metrics.record_send metrics dst;
          emit (Simkit.Obs.Send { src = dst; dst = to_; at = now; tag = "" });
          if to_ >= 0 && to_ < t then transmit now dst to_ payload)
        o.sends;
      Simkit.Metrics.record_round metrics now;
      if o.terminate then begin
        statuses.(dst) <- Terminated now;
        Simkit.Metrics.record_terminate metrics dst now;
        emit (Simkit.Obs.Terminate { pid = dst; at = now });
        retire_notify dst now
      end
      else
        match o.continue_after with
        | Some d when d >= 1 -> push (now + d) (Ev { dst; ev = Continue })
        | Some _ -> invalid_arg "Event_sim: continue_after must be >= 1"
        | None -> ()
    end
  in
  let last_tick = ref 0 in
  let limited = ref false in
  let rec loop () =
    match TMap.min_binding_opt !queue with
    | None -> ()
    | Some (now, items) when now <= cfg.max_ticks ->
        queue := TMap.remove now !queue;
        last_tick := now;
        (* items were accumulated in reverse insertion order *)
        with_span ~name:"tick" ~pid:(-1) now (fun () ->
        List.iter
          (fun item ->
            match item with
            | Crash_item pid ->
                if alive pid && not (byz_active pid now) then begin
                  statuses.(pid) <- Crashed now;
                  Simkit.Metrics.record_crash metrics pid now;
                  emit (Simkit.Obs.Crash { pid; at = now });
                  retire_notify pid now
                end
            | Forge_item pid ->
                let honest_alive =
                  let found = ref false in
                  Array.iteri
                    (fun i s ->
                      if s = Running && byz_from.(i) = max_int then found := true)
                    statuses;
                  !found
                in
                if alive pid && honest_alive then begin
                  (match tamper with
                  | Some tm ->
                      List.iter
                        (fun (dst, payload) ->
                          Simkit.Metrics.record_corruption metrics;
                          emit (Simkit.Obs.Tamper { pid; at = now });
                          if dst >= 0 && dst < t then transmit now pid dst payload)
                        (tm.t_forge pid ~at:now)
                  | None -> ());
                  (* the next salvo — stop once every honest process has
                     retired, so the queue can drain and the run complete *)
                  push (now + cfg.max_delay) (Forge_item pid)
                end
            | Ev { dst; ev } -> handle now dst ev)
          (List.rev items));
        loop ()
    | Some _ -> limited := true
  in
  loop ();
  let retired_or_byz i s = is_retired s || byz_from.(i) < max_int in
  let all_done = ref true in
  Array.iteri (fun i s -> if not (retired_or_byz i s) then all_done := false) statuses;
  let outcome =
    if !all_done then Completed
    else if !limited then Tick_limit cfg.max_ticks
    else Stalled !last_tick
  in
  let net = { sent = !n_sent; dropped = !n_dropped; duplicated = !n_duplicated } in
  { metrics; statuses; outcome; net }
