open Simkit.Types
open Doall
module ISet = Set.Make (Int)

type msg = Ckpt_script.ord

let show_msg = Ckpt_script.show_ord

type state =
  | Awaiting_fd of { retired_below : ISet.t; last : Ckpt_script.last }
  | Running_script of Ckpt_script.action list

let idle st =
  {
    Event_sim.state = st;
    sends = [];
    work = [];
    terminate = false;
    continue_after = None;
  }

(* [recover = None] is the fresh state machine of the paper; [Some last]
   builds the state a restarted incarnation adopts: it rejoins as a waiting
   process seeded with its best on-disk checkpoint knowledge, and never
   self-activates on [Started] (pid 0's vacuous takeover right would
   otherwise duplicate the active chain on every respawn). If the
   checkpoint already proves all work done, the incarnation terminates on
   [Started] — nothing is owed. *)
let aproc_gen ?recover spec =
  let grid = Grid.make spec in
  let run_script script =
    (* the round argument only feeds the wakeup, which we discard *)
    let o = Ckpt_script.run_active ~inject:Fun.id 0 script in
    {
      Event_sim.state = Running_script o.state;
      sends = List.map (fun { dst; payload } -> (dst, payload)) o.sends;
      work = o.work;
      terminate = o.terminate;
      continue_after = (if o.terminate then None else Some 1);
    }
  in
  let a_init _pid =
    let last =
      match recover with Some l -> l | None -> Ckpt_script.No_msg
    in
    Awaiting_fd { retired_below = ISet.empty; last }
  in
  let a_handle pid _now st (ev : msg Event_sim.aevent) =
    match st with
    | Running_script script -> (
        match ev with
        | Continue -> run_script script
        | Started | Got _ | Retired_notice _ ->
            (* the unique active process ignores stale traffic *)
            { (idle st) with continue_after = None })
    | Awaiting_fd { retired_below; last } -> (
        let try_activate retired_below last =
          let all_below_retired =
            let rec check i =
              i >= pid || (ISet.mem i retired_below && check (i + 1))
            in
            check 0
          in
          if all_below_retired then
            run_script (Ckpt_script.takeover_script grid pid last)
          else idle (Awaiting_fd { retired_below; last })
        in
        match ev with
        | Started -> (
            match recover with
            | Some _ ->
                if Ckpt_script.knows_all_done grid pid last then
                  {
                    Event_sim.state = st;
                    sends = [];
                    work = [];
                    terminate = true;
                    continue_after = None;
                  }
                else idle st
            | None ->
                if pid = 0 then run_script (Ckpt_script.work_script grid 0 1)
                else idle st)
        | Got { src; payload } ->
            let last = Ckpt_script.Last_ord { ord = payload; src } in
            if Ckpt_script.knows_all_done grid pid last then
              {
                Event_sim.state = Awaiting_fd { retired_below; last };
                sends = [];
                work = [];
                terminate = true;
                continue_after = None;
              }
            else idle (Awaiting_fd { retired_below; last })
        | Retired_notice who ->
            let retired_below =
              if who < pid then ISet.add who retired_below else retired_below
            in
            try_activate retired_below last
        | Continue -> idle st)
  in
  { Event_sim.a_init; a_handle }

let aproc spec = aproc_gen spec
let aproc_recover ~last spec = aproc_gen ~recover:last spec

let run ?crash_at ?max_delay ?max_lag ?seed ?false_suspicions ?link ?obs spec =
  let cfg =
    Event_sim.config ?crash_at ?max_delay ?max_lag ?seed ?false_suspicions
      ?link ?obs ~n_processes:(Spec.processes spec) ~n_units:(Spec.n spec) ()
  in
  Event_sim.run cfg (aproc spec)

let default_heartbeat ~max_delay =
  (* Period and timeout scale with the delay bound so that defaults stay
     mostly accurate under moderate loss; false suspicions remain possible
     (and harmless) by design. *)
  let period = max 4 (2 * max_delay) in
  Heartbeat.config ~period ~timeout:(6 * period) ~backoff:2 ()

(* ------------------------------------------------------------------ *)
(* Wire-level tamper models: how the corruption / Byzantine adversary
   speaks the hardened substrate's ['m Link.wire] alphabet. Only [Data]
   frames are touched — acks and beats pass unchanged, so a Byzantine
   process's silenced heartbeat generator is what gets it suspected (the
   model's stand-in for progress-based accusation) and the honest takeover
   chain stays live. Forged frames use a sequence space far above any
   honest sender's, so per-source dedup never swallows a lie. *)

let corrupt_kind ~src ~at =
  match (at + src) mod 3 with
  | 0 -> Simkit.Fault.Lying_view
  | 1 -> Simkit.Fault.Replay_stale
  | _ -> Simkit.Fault.Inflate_done

let corrupt_body grid ~src ~dst ~at body =
  Validate.mutate_body grid
    { Simkit.Fault.t_kind = corrupt_kind ~src ~at; t_salt = at }
    ~dst body

let forged_seq at i = 1_000_000 + (at * 4) + i

let wire_tamper_plain grid : msg Link.wire Event_sim.tamper_model =
  {
    t_corrupt =
      (fun ~src ~dst ~at w ->
        match w with
        | Link.Data { seq; payload } ->
            Link.Data { seq; payload = corrupt_body grid ~src ~dst ~at payload }
        | Link.Ack _ | Link.Beat -> w);
    t_forge =
      (fun pid ~at ->
        List.mapi
          (fun i (dst, body) ->
            (dst, Link.Data { seq = forged_seq at i; payload = body }))
          (Validate.forge_plain grid pid ~at));
  }

let wire_tamper_signed grid : Validate.signed Link.wire Event_sim.tamper_model
    =
  {
    (* garbling the body cannot recompute the authenticator: the stale one
       no longer matches, so the receiving validation layer rejects it *)
    t_corrupt =
      (fun ~src ~dst ~at w ->
        match w with
        | Link.Data { seq; payload } ->
            Link.Data
              {
                seq;
                payload =
                  {
                    payload with
                    Validate.body =
                      corrupt_body grid ~src ~dst ~at payload.Validate.body;
                  };
              }
        | Link.Ack _ | Link.Beat -> w);
    t_forge =
      (fun pid ~at ->
        List.mapi
          (fun i (dst, payload) ->
            (dst, Link.Data { seq = forged_seq at i; payload }))
          (Validate.forge_signed grid pid ~at));
  }

(* A subverted peer streams forged traffic (alive evidence, so it is never
   durably suspected) while never acking, which would hold every draining
   sender hostage forever under unlimited retransmission. When the caller
   requests Byzantine subversion without choosing a link config, bound the
   retries so honest senders eventually abandon the subverted peer. *)
let byz_link_config link_config byz =
  match (link_config, byz) with
  | Some _, _ | None, (None | Some []) -> link_config
  | None, Some (_ :: _) -> Some (Link.config ~max_retries:8 ())

let run_hardened ?crash_at ?(max_delay = 5) ?max_lag ?seed ?false_suspicions
    ?link ?link_config ?heartbeat ?stats ?max_ticks ?byz ?obs spec =
  let link_config = byz_link_config link_config byz in
  let t = Spec.processes spec in
  let grid = Grid.make spec in
  let heartbeat =
    match heartbeat with
    | Some hb -> hb
    | None -> default_heartbeat ~max_delay
  in
  let cfg =
    Event_sim.config ?crash_at ~max_delay ?max_lag ?seed ?false_suspicions
      ?link ?max_ticks ?byz ~oracle_detector:false ~n_processes:t
      ~n_units:(Spec.n spec) ?obs ()
  in
  Event_sim.run ~tamper:(wire_tamper_plain grid) cfg
    (Link.harden ?config:link_config ~heartbeat ?stats ~n:t (aproc spec))

(* ------------------------------------------------------------------ *)
(* The validated wrapper: the asynchronous counterpart of
   [Doall.Validate.proc_validated]. Every inner checkpoint view travels as
   a [Validate.signed] authenticated claim; the wrapper drops anything
   that fails verification, folds the rest into a per-signer monotone
   claim table, and delivers to the inner state machine only the
   (f+1)-quorum-attested subchunk — as a [Partial] view, the
   group-independent shape every receiver can act on. A waiting process
   therefore terminates only once f+1 distinct signers (hence at least one
   honest one) have claimed all-done; liveness never depends on the
   quorum, because the takeover chain is driven by the detection layer. *)

type vstate = {
  v_inner : state;
  v_claims : int option array;  (* per-signer best verified claimed subchunk *)
  v_seen : int option;  (* last attested subchunk delivered to the inner *)
}

let validate_wrap grid ~on_reject (inner : (state, msg) Event_sim.aproc) :
    (vstate, Validate.signed) Event_sim.aproc =
  let np = Spec.processes (Grid.spec grid) in
  let f = Validate.tolerated np in
  let a_init pid =
    {
      v_inner = inner.Event_sim.a_init pid;
      v_claims = Array.make np None;
      v_seen = None;
    }
  in
  let note claims i c =
    match claims.(i) with Some c0 when c0 >= c -> () | _ -> claims.(i) <- Some c
  in
  let wrap pid claims seen (o : (state, msg) Event_sim.aoutcome) =
    List.iter
      (fun (_, m) -> note claims pid (Validate.claimed_subchunk m))
      o.Event_sim.sends;
    {
      Event_sim.state = { v_inner = o.Event_sim.state; v_claims = claims; v_seen = seen };
      sends = List.map (fun (dst, m) -> (dst, Validate.sign pid m)) o.Event_sim.sends;
      work = o.Event_sim.work;
      terminate = o.Event_sim.terminate;
      continue_after = o.Event_sim.continue_after;
    }
  in
  let a_handle pid now st (ev : Validate.signed Event_sim.aevent) =
    match ev with
    | Event_sim.Got { src; payload } ->
        if not (Validate.verify ~src payload) then begin
          on_reject ~pid ~at:now;
          {
            Event_sim.state = st;
            sends = [];
            work = [];
            terminate = false;
            continue_after = None;
          }
        end
        else begin
          let claims = Array.copy st.v_claims in
          note claims payload.Validate.claimant
            (Validate.claimed_subchunk payload.Validate.body);
          let att = Validate.attested ~f claims in
          let improved =
            match (att, st.v_seen) with
            | None, _ -> false
            | Some _, None -> true
            | Some (_, c), Some c0 -> c > c0
          in
          match att with
          | Some (src', c) when improved ->
              wrap pid claims (Some c)
                (inner.Event_sim.a_handle pid now st.v_inner
                   (Event_sim.Got
                      { src = src'; payload = Ckpt_script.Partial c }))
          | _ ->
              (* sub-quorum claim: absorb without disturbing the inner *)
              {
                Event_sim.state = { st with v_claims = claims };
                sends = [];
                work = [];
                terminate = false;
                continue_after = None;
              }
        end
    | Event_sim.Started ->
        wrap pid (Array.copy st.v_claims) st.v_seen
          (inner.Event_sim.a_handle pid now st.v_inner Event_sim.Started)
    | Event_sim.Continue ->
        wrap pid (Array.copy st.v_claims) st.v_seen
          (inner.Event_sim.a_handle pid now st.v_inner Event_sim.Continue)
    | Event_sim.Retired_notice who ->
        wrap pid (Array.copy st.v_claims) st.v_seen
          (inner.Event_sim.a_handle pid now st.v_inner
             (Event_sim.Retired_notice who))
  in
  { Event_sim.a_init; a_handle }

let validated_name = "async-a+val"

let run_validated ?crash_at ?(max_delay = 5) ?max_lag ?seed ?false_suspicions
    ?link ?link_config ?heartbeat ?stats ?max_ticks ?byz ?obs spec =
  let link_config = byz_link_config link_config byz in
  let t = Spec.processes spec in
  let grid = Grid.make spec in
  let metrics =
    Simkit.Metrics.create ~n_processes:t ~n_units:(Spec.n spec)
  in
  let on_reject ~pid ~at =
    Simkit.Metrics.record_reject metrics;
    match obs with
    | Some sink -> sink (Simkit.Obs.Reject { pid; at })
    | None -> ()
  in
  let heartbeat =
    match heartbeat with
    | Some hb -> hb
    | None -> default_heartbeat ~max_delay
  in
  let cfg =
    Event_sim.config ?crash_at ~max_delay ?max_lag ?seed ?false_suspicions
      ?link ?max_ticks ?byz ~oracle_detector:false ~n_processes:t
      ~n_units:(Spec.n spec) ?obs ()
  in
  Event_sim.run ~metrics ~tamper:(wire_tamper_signed grid) cfg
    (Link.harden ?config:link_config ~heartbeat ?stats ~n:t
       (validate_wrap grid ~on_reject (aproc spec)))
