open Simkit.Types
open Doall
module ISet = Set.Make (Int)

type msg = Ckpt_script.ord

let show_msg = Ckpt_script.show_ord

type state =
  | Awaiting_fd of { retired_below : ISet.t; last : Ckpt_script.last }
  | Running_script of Ckpt_script.action list

let idle st =
  {
    Event_sim.state = st;
    sends = [];
    work = [];
    terminate = false;
    continue_after = None;
  }

let aproc spec =
  let grid = Grid.make spec in
  let run_script script =
    (* the round argument only feeds the wakeup, which we discard *)
    let o = Ckpt_script.run_active ~inject:Fun.id 0 script in
    {
      Event_sim.state = Running_script o.state;
      sends = List.map (fun { dst; payload } -> (dst, payload)) o.sends;
      work = o.work;
      terminate = o.terminate;
      continue_after = (if o.terminate then None else Some 1);
    }
  in
  let a_init _pid = Awaiting_fd { retired_below = ISet.empty; last = Ckpt_script.No_msg } in
  let a_handle pid _now st (ev : msg Event_sim.aevent) =
    match st with
    | Running_script script -> (
        match ev with
        | Continue -> run_script script
        | Started | Got _ | Retired_notice _ ->
            (* the unique active process ignores stale traffic *)
            { (idle st) with continue_after = None })
    | Awaiting_fd { retired_below; last } -> (
        let try_activate retired_below last =
          let all_below_retired =
            let rec check i =
              i >= pid || (ISet.mem i retired_below && check (i + 1))
            in
            check 0
          in
          if all_below_retired then
            run_script (Ckpt_script.takeover_script grid pid last)
          else idle (Awaiting_fd { retired_below; last })
        in
        match ev with
        | Started ->
            if pid = 0 then run_script (Ckpt_script.work_script grid 0 1)
            else idle st
        | Got { src; payload } ->
            let last = Ckpt_script.Last_ord { ord = payload; src } in
            if Ckpt_script.knows_all_done grid pid last then
              {
                Event_sim.state = Awaiting_fd { retired_below; last };
                sends = [];
                work = [];
                terminate = true;
                continue_after = None;
              }
            else idle (Awaiting_fd { retired_below; last })
        | Retired_notice who ->
            let retired_below =
              if who < pid then ISet.add who retired_below else retired_below
            in
            try_activate retired_below last
        | Continue -> idle st)
  in
  { Event_sim.a_init; a_handle }

let run ?crash_at ?max_delay ?max_lag ?seed ?false_suspicions ?link ?obs spec =
  let cfg =
    Event_sim.config ?crash_at ?max_delay ?max_lag ?seed ?false_suspicions
      ?link ?obs ~n_processes:(Spec.processes spec) ~n_units:(Spec.n spec) ()
  in
  Event_sim.run cfg (aproc spec)

let default_heartbeat ~max_delay =
  (* Period and timeout scale with the delay bound so that defaults stay
     mostly accurate under moderate loss; false suspicions remain possible
     (and harmless) by design. *)
  let period = max 4 (2 * max_delay) in
  Heartbeat.config ~period ~timeout:(6 * period) ~backoff:2 ()

let run_hardened ?crash_at ?(max_delay = 5) ?max_lag ?seed ?false_suspicions
    ?link ?link_config ?heartbeat ?stats ?max_ticks ?obs spec =
  let t = Spec.processes spec in
  let heartbeat =
    match heartbeat with
    | Some hb -> hb
    | None -> default_heartbeat ~max_delay
  in
  let cfg =
    Event_sim.config ?crash_at ~max_delay ?max_lag ?seed ?false_suspicions
      ?link ?max_ticks ~oracle_detector:false ~n_processes:t
      ~n_units:(Spec.n spec) ?obs ()
  in
  Event_sim.run cfg
    (Link.harden ?config:link_config ~heartbeat ?stats ~n:t (aproc spec))
