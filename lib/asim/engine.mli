(** One process of an {!Event_sim.aproc}, driven by a caller-supplied
    clock and transport instead of the simulator's event queue.

    {!Event_sim} owns time and message delivery for a whole run; the
    engine owns neither. It preserves exactly the per-process event
    contract — [Started] first, one [Continue] per requested wakeup,
    [Got]/[Retired_notice] on arrival — and returns each outcome's sends
    and work to the caller, which decides what a tick means (the real
    fleet maps one tick to a fixed wall-clock quantum) and how sends
    travel (datagrams through the chaos layer). This is the "functorized
    clock/IO" seam: the hardened state machines the simulator fuzzes
    ({!Link.harden} around {!Async_protocol_a}) run byte-for-byte
    unchanged inside a real OS process. *)

open Simkit.Types

type 'm effects = {
  sends : (pid * 'm) list;  (** to transmit, in emission order *)
  work : int list;  (** units performed during the call *)
  terminated : bool;  (** the process retired during the call *)
}

type ('s, 'm) t

val create : ('s, 'm) Event_sim.aproc -> pid:pid -> ('s, 'm) t
(** Initial state via [a_init]; no event is delivered yet. *)

val start : ('s, 'm) t -> now:int -> 'm effects
(** Deliver [Started]. Raises [Invalid_argument] on a second call. *)

val deliver : ('s, 'm) t -> now:int -> src:pid -> 'm -> 'm effects
(** Deliver [Got {src; payload}] — an arrived message. *)

val notice : ('s, 'm) t -> now:int -> pid -> 'm effects
(** Deliver [Retired_notice] — an external detector verdict. The organic
    fleet never calls this; it exists for oracle-driven tests. *)

val advance : ('s, 'm) t -> now:int -> 'm effects
(** Fire every [Continue] wakeup scheduled at or before [now], one
    handler call per wakeup, accumulating the effects. *)

val next_wakeup : ('s, 'm) t -> int option
(** Earliest pending [Continue] time — the caller's sleep deadline.
    [None] when nothing is scheduled (quiescent until a message). *)

val state : ('s, 'm) t -> 's
val terminated : ('s, 'm) t -> bool
(** Once terminated the engine is inert: every further call returns empty
    effects. *)
