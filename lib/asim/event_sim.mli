(** Asynchronous event-driven executor with a failure-detection service
    (the "completely asynchronous system equipped with a failure detection
    mechanism" of Section 2.1 and Chandra–Toueg [7]).

    Differences from the synchronous kernel:
    - there are no rounds; each message is delivered after an
      adversary-chosen delay in [1, max_delay] ticks;
    - processes are reactive: they act on message delivery, on failure-
      detector notifications, and on self-scheduled continuations (used to
      model "one unit of work per time unit");
    - the failure-detection service notifies every live process of each
      retirement (crash or termination) after an adversary-chosen lag in
      [1, max_lag] ticks. It is {e sound} (never reports a non-retired
      process) and {e complete} (every retirement is eventually reported to
      every live process) — exactly the two properties the asynchronous
      Protocol A needs. It can be switched off ([oracle_detector = false])
      when a protocol brings its own, organically fallible detection
      ({!Asim.Heartbeat} over {!Asim.Link});
    - an optional {e link adversary} ({!type:link}) makes message delivery
      unreliable: seeded per-message loss, duplication, and
      beyond-[max_delay] delays for a designated slow set. *)

type time = int

type 'm aevent =
  | Started  (** delivered once, at the process's start tick *)
  | Got of { src : Simkit.Types.pid; payload : 'm }
  | Retired_notice of Simkit.Types.pid
      (** failure-detector notification: that process has crashed or
          terminated *)
  | Continue  (** the continuation the process scheduled *)

type ('s, 'm) aoutcome = {
  state : 's;
  sends : (Simkit.Types.pid * 'm) list;
  work : int list;
  terminate : bool;
  continue_after : int option;
      (** schedule a [Continue] this many ticks from now (>= 1) *)
}

type ('s, 'm) aproc = {
  a_init : Simkit.Types.pid -> 's;
  a_handle : Simkit.Types.pid -> time -> 's -> 'm aevent -> ('s, 'm) aoutcome;
}

type link = {
  drop_bp : int;
      (** per-message drop probability in basis points (2500 = 25%); must
          lie in [0, 9999] so delivery remains possible *)
  dup_bp : int;
      (** probability, in basis points, that a delivered message is
          delivered twice (with an independently drawn second delay) *)
  corrupt_bp : int;
      (** probability, in basis points (in [0, 9999]), that a delivered
          message is garbled in flight by the tamper model's [t_corrupt]
          before delivery; inert unless {!run} is given a [?tamper] model.
          Each corruption is counted via [Simkit.Metrics.record_corruption]
          and observed as [Obs.Tamper]. *)
  slow_set : Simkit.Types.pid list;
      (** messages to or from these processes draw their delay from
          [1, slow_factor * max_delay] instead of [1, max_delay] — the
          "unboundedly late" processes an eventually-perfect detector must
          tolerate *)
  slow_factor : int;  (** >= 1; 1 makes the slow set inert *)
  severs : (Simkit.Types.pid * Simkit.Types.pid * time * time) list;
      (** directed link cuts, as [(src, dst, from, to)]: every message from
          [src] to [dst] sent while [from <= now <= to] is dropped
          {e deterministically} — the cut consumes no adversary coin, so a
          schedule without severs runs byte-identically to one that
          predates them. Each loss still counts in {!net}'s [dropped]. *)
}

val perfect_link : link
(** No loss, no duplication, no corruption, no slow set — the pre-adversary
    behaviour. Runs under [perfect_link] are byte-identical (same seed, same
    delivery order, same metrics) to runs that predate the link adversary. *)

type 'm tamper_model = {
  t_corrupt : src:Simkit.Types.pid -> dst:Simkit.Types.pid -> at:time -> 'm -> 'm;
      (** how the link adversary garbles a message in flight (drawn with
          probability [link.corrupt_bp]); must be pure *)
  t_forge : Simkit.Types.pid -> at:time -> (Simkit.Types.pid * 'm) list;
      (** the forged salvo a Byzantine-subverted process injects at a given
          tick, as [(dst, payload)] pairs; must be pure (draw any
          randomness from a dedicated stream keyed by [(pid, at)]) so runs
          replay bit-for-bit *)
}
(** How the adversary speaks the protocol's message alphabet — the
    asynchronous counterpart of [Simkit.Kernel]'s tamper model. *)

type config = {
  n_processes : int;
  n_units : int;
  crash_at : (Simkit.Types.pid * time) list;  (** silent crashes *)
  max_delay : int;  (** message delays drawn from [1, max_delay] *)
  max_lag : int;  (** detector lags drawn from [1, max_lag] *)
  seed : int64;  (** drives the delay/lag/link adversary *)
  max_ticks : time;
  false_suspicions : (Simkit.Types.pid * Simkit.Types.pid * time) list;
      (** (observer, suspect, time): deliver a [Retired_notice suspect] to
          [observer] even though the suspect is alive — deliberately breaks
          the detector's soundness, to demonstrate why Section 2.1 demands
          it ("the mechanism must be sound"). With false suspicions two
          processes can be active at once; idempotence keeps the run
          correct, but work and messages are duplicated. *)
  link : link;
  byz : (Simkit.Types.pid * time) list;
      (** Byzantine subversions, as [(pid, from_tick)]: from its activation
          tick the process stops executing its protocol (events addressed
          to it are discarded) and instead injects the tamper model's
          [t_forge] salvo once per [max_delay] ticks, for as long as an
          honest process remains live. It never retires — {!run_outcome}
          [Completed] exempts subverted pids — and an activation shadows
          any later [crash_at] entry for the same pid. Without a [?tamper]
          model the subverted process degrades to a silent crash (no
          forged traffic), still exempt from completion. The built-in
          detection service never reports a subverted pid retired;
          Byzantine campaigns therefore run over the organic
          {!Asim.Heartbeat} detection ([oracle_detector = false]), where a
          subverted process's silenced heartbeats get it suspected. *)
  oracle_detector : bool;
      (** when [false], the built-in sound-and-complete detection service is
          silent: no [Retired_notice] is generated for real retirements, and
          processes must detect failures themselves (e.g. {!Asim.Heartbeat}
          timeouts). [false_suspicions] are injected regardless. *)
  obs : Simkit.Obs.sink option;
      (** structured event sink, fed the same events {!Simkit.Metrics}
          records, stamped with ticks instead of rounds (see
          {!Simkit.Obs}) *)
  spans : Simkit.Obs.sink option;
      (** timing sink, fed [Obs.Span_begin]/[Span_end] pairs named ["tick"]
          ([pid = -1]) around each processed tick batch and ["handle"]
          around each process event handler, stamped with
          [Dhw_util.Clock.now_us]. Separate from [obs] so the deterministic
          stream stays free of wall-clock data. *)
}

val config :
  ?crash_at:(Simkit.Types.pid * time) list ->
  ?max_delay:int ->
  ?max_lag:int ->
  ?seed:int64 ->
  ?max_ticks:time ->
  ?false_suspicions:(Simkit.Types.pid * Simkit.Types.pid * time) list ->
  ?link:link ->
  ?byz:(Simkit.Types.pid * time) list ->
  ?oracle_detector:bool ->
  ?obs:Simkit.Obs.sink ->
  ?spans:Simkit.Obs.sink ->
  n_processes:int ->
  n_units:int ->
  unit ->
  config
(** Validates every field and raises [Invalid_argument] with a descriptive
    message on: [n_processes < 1], [n_units < 0], [max_delay < 1],
    [max_lag < 1], [max_ticks < 1], a [crash_at], [false_suspicions] or
    [byz] entry naming an out-of-range pid or a negative time, [drop_bp]
    or [corrupt_bp] outside [0, 9999], [dup_bp] outside [0, 10000],
    [slow_factor < 1], or a [slow_set] pid out of range. *)

type run_outcome =
  | Completed
      (** every process retired (crashed or terminated); Byzantine-subverted
          pids — which never retire — are exempt *)
  | Stalled of time
      (** live processes remain but the event queue ran dry — no pending
          delivery, continuation, crash or notice could ever wake them: an
          algorithm (or detector) liveness bug. The payload is the last
          tick at which anything happened. *)
  | Tick_limit of time  (** the [max_ticks] guard fired *)

type net = {
  sent : int;  (** protocol messages handed to the link (valid dst) *)
  dropped : int;  (** messages the link adversary lost *)
  duplicated : int;  (** extra copies the link adversary delivered *)
}

type result = {
  metrics : Simkit.Metrics.t;  (** rounds = final tick *)
  statuses : Simkit.Types.status array;
  outcome : run_outcome;
  net : net;
}

val completed : result -> bool
(** [outcome = Completed]. *)

val pp_outcome : Format.formatter -> run_outcome -> unit

val run :
  ?metrics:Simkit.Metrics.t -> ?tamper:'m tamper_model -> config -> ('s, 'm) aproc -> result
(** [metrics] supplies the accumulator the run records into (default: a
    fresh one) — pass it when an outer harness also records into it (e.g. a
    validation layer counting rejects). [tamper] gives the corruption /
    Byzantine powers of the configuration their voice; without it
    [corrupt_bp] is inert and [byz] pids degrade to silent never-retiring
    crashes. *)
