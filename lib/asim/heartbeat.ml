open Simkit.Types

type time = int

type config = { period : int; timeout : int; backoff : int; max_timeout : int }

let config ?(period = 8) ?(timeout = 48) ?(backoff = 2) ?(max_timeout = 100_000)
    () =
  let err fmt = Printf.ksprintf invalid_arg ("Heartbeat.config: " ^^ fmt) in
  if period < 1 then err "period must be >= 1 (got %d)" period;
  if timeout < period then
    err "timeout (%d) must be >= period (%d), else every peer is suspected \
         immediately" timeout period;
  if backoff < 1 then err "backoff must be >= 1 (got %d)" backoff;
  if max_timeout < timeout then
    err "max_timeout (%d) must be >= timeout (%d)" max_timeout timeout;
  { period; timeout; backoff; max_timeout }

type stats = { suspicions : int; false_suspicions : int; unsuspects : int }

(* One monitor instance, owned by one process. [deadline.(q) = None] means q
   is not monitored (it is [me], was stopped, or is currently suspected). *)
type t = {
  cfg : config;
  me : pid;
  n : int;
  mutable next_beat : time;
  deadline : time option array;
  timeout : int array;
  suspected : bool array;
  stopped : bool array;
  mutable n_suspicions : int;
  mutable n_false : int;
  mutable n_unsuspects : int;
}

let create ?(config = config ()) ~me ~n ~now () =
  if n < 1 then invalid_arg "Heartbeat.create: n must be >= 1";
  if me < 0 || me >= n then invalid_arg "Heartbeat.create: me out of range";
  let t =
    {
      cfg = config;
      me;
      n;
      next_beat = now;
      deadline = Array.make n None;
      timeout = Array.make n config.timeout;
      suspected = Array.make n false;
      stopped = Array.make n false;
      n_suspicions = 0;
      n_false = 0;
      n_unsuspects = 0;
    }
  in
  for q = 0 to n - 1 do
    if q <> me then t.deadline.(q) <- Some (now + config.timeout)
  done;
  t

let suspected t q = t.suspected.(q)

let suspects t =
  List.filter (fun q -> t.suspected.(q)) (List.init t.n Fun.id)

let stop t q =
  t.stopped.(q) <- true;
  t.deadline.(q) <- None

let next_deadline t =
  Array.fold_left
    (fun acc d -> match d with Some d when d < acc -> d | _ -> acc)
    t.next_beat t.deadline

let tick t ~now =
  let newly = ref [] in
  for q = t.n - 1 downto 0 do
    match t.deadline.(q) with
    | Some d when d <= now ->
        t.suspected.(q) <- true;
        t.deadline.(q) <- None;
        t.n_suspicions <- t.n_suspicions + 1;
        newly := q :: !newly
    | _ -> ()
  done;
  let beat = now >= t.next_beat in
  if beat then t.next_beat <- now + t.cfg.period;
  (!newly, beat)

let alive_evidence t ~src ~now =
  if src = t.me || src < 0 || src >= t.n || t.stopped.(src) then false
  else begin
    let recovered = t.suspected.(src) in
    if recovered then begin
      (* A false suspicion: the peer is slower than our current timeout.
         Back the timeout off so the detector is eventually accurate. *)
      t.suspected.(src) <- false;
      t.n_false <- t.n_false + 1;
      t.n_unsuspects <- t.n_unsuspects + 1;
      t.timeout.(src) <-
        min t.cfg.max_timeout (t.timeout.(src) * t.cfg.backoff)
    end;
    t.deadline.(src) <- Some (now + t.timeout.(src));
    recovered
  end

let rejoin t q ~now =
  if q <> t.me && q >= 0 && q < t.n then begin
    t.stopped.(q) <- false;
    if t.suspected.(q) then begin
      (* An un-suspect that is NOT a false suspicion: the peer really was
         down and has come back. *)
      t.suspected.(q) <- false;
      t.n_unsuspects <- t.n_unsuspects + 1
    end;
    (* A rejoiner is a fresh process: grant it the initial timeout again. *)
    t.timeout.(q) <- t.cfg.timeout;
    t.deadline.(q) <- Some (now + t.cfg.timeout)
  end

let stats t =
  {
    suspicions = t.n_suspicions;
    false_suspicions = t.n_false;
    unsuspects = t.n_unsuspects;
  }
