open Simkit.Types
module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

type time = int

type config = { rto : int; backoff : int; max_rto : int; max_retries : int }

let config ?(rto = 16) ?(backoff = 2) ?(max_rto = 2048) ?(max_retries = 0) () =
  let err fmt = Printf.ksprintf invalid_arg ("Link.config: " ^^ fmt) in
  if rto < 1 then err "rto must be >= 1 (got %d)" rto;
  if backoff < 1 then err "backoff must be >= 1 (got %d)" backoff;
  if max_rto < rto then err "max_rto (%d) must be >= rto (%d)" max_rto rto;
  if max_retries < 0 then err "max_retries must be >= 0 (got %d)" max_retries;
  { rto; backoff; max_rto; max_retries }

type stats = {
  mutable data_sent : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable beats_sent : int;
  mutable dups_suppressed : int;
  mutable recoveries : int;
  mutable suspicions : int;
  mutable false_suspicions : int;
  mutable unsuspects : int;
  mutable abandoned : int;
  mutable notices : (pid * pid * time) list;
  mutable suspect_log : (pid * pid * time) list;
  mutable unsuspect_log : (pid * pid * time) list;
}

let stats () =
  {
    data_sent = 0;
    retransmits = 0;
    acks_sent = 0;
    beats_sent = 0;
    dups_suppressed = 0;
    recoveries = 0;
    suspicions = 0;
    false_suspicions = 0;
    unsuspects = 0;
    abandoned = 0;
    notices = [];
    suspect_log = [];
    unsuspect_log = [];
  }

type 'm wire = Data of { seq : int; payload : 'm } | Ack of int | Beat

let show_wire show = function
  | Data { seq; payload } -> Printf.sprintf "data#%d[%s]" seq (show payload)
  | Ack seq -> Printf.sprintf "ack#%d" seq
  | Beat -> "beat"

type 'm pending = {
  p_dst : pid;
  p_seq : int;
  p_payload : 'm;
  p_next_at : time;
  p_rto : int;
  p_tries : int;  (* retransmissions already spent on this packet *)
}

type ('s, 'm) state = {
  inner : 's;
  draining : bool;
  inner_conts : time list;  (* pending inner [Continue] wakeups (multiset) *)
  next_seq : int;
  pending : 'm pending list;
  seen : ISet.t IMap.t;  (* per-source delivered sequence numbers *)
  hb : Heartbeat.t option;
  retired : ISet.t;  (* peers believed retired: no sends, no pending *)
  notified : ISet.t;  (* peers the inner protocol was told about *)
  armed : ISet.t;  (* Continue wakeups already scheduled in the queue *)
}

let remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest when y = x -> List.rev_append acc rest
    | y :: rest -> go (y :: acc) rest
  in
  go [] l

let harden ?(config = config ()) ?heartbeat ?stats:stats_arg ~n inner_proc =
  let stats = match stats_arg with Some s -> s | None -> stats () in
  let a_init pid =
    {
      inner = inner_proc.Event_sim.a_init pid;
      draining = false;
      inner_conts = [];
      next_seq = 0;
      pending = [];
      seen = IMap.empty;
      hb =
        Option.map
          (fun cfg -> Heartbeat.create ~config:cfg ~me:pid ~n ~now:0 ())
          heartbeat;
      retired = ISet.empty;
      notified = ISet.empty;
      armed = ISet.empty;
    }
  in
  let a_handle me now st0 ev =
    let st = ref st0 in
    let sends = ref [] and work = ref [] in
    let emit dst w = sends := (dst, w) :: !sends in
    let rec inner_call iev =
      if not !st.draining then begin
        let o = inner_proc.Event_sim.a_handle me now !st.inner iev in
        st := { !st with inner = o.Event_sim.state };
        work := !work @ o.work;
        List.iter
          (fun (dst, m) ->
            if dst >= 0 && dst < n && not (ISet.mem dst !st.retired) then begin
              let seq = !st.next_seq in
              st :=
                { !st with
                  next_seq = seq + 1;
                  pending =
                    { p_dst = dst; p_seq = seq; p_payload = m;
                      p_next_at = now + config.rto; p_rto = config.rto;
                      p_tries = 0 }
                    :: !st.pending };
              stats.data_sent <- stats.data_sent + 1;
              emit dst (Data { seq; payload = m })
            end)
          o.sends;
        (match o.continue_after with
        | Some d when d >= 1 ->
            st := { !st with inner_conts = (now + d) :: !st.inner_conts }
        | Some _ -> invalid_arg "Link: continue_after must be >= 1"
        | None -> ());
        if o.terminate then
          (* Hold the real termination until every pending message is acked
             or its destination is known retired, so "reliable" survives the
             sender's own exit (the final (S) broadcast must land). *)
          st := { !st with draining = true; inner_conts = [] }
      end
    and mark_retired who =
      st :=
        { !st with
          retired = ISet.add who !st.retired;
          pending = List.filter (fun p -> p.p_dst <> who) !st.pending }
    and notify_inner who =
      if not (ISet.mem who !st.notified) then begin
        st := { !st with notified = ISet.add who !st.notified };
        stats.notices <- (me, who, now) :: stats.notices;
        inner_call (Event_sim.Retired_notice who)
      end
    in
    let alive_evidence src =
      match !st.hb with
      | Some hb ->
          if Heartbeat.alive_evidence hb ~src ~now then begin
            stats.recoveries <- stats.recoveries + 1;
            stats.false_suspicions <- stats.false_suspicions + 1;
            stats.unsuspects <- stats.unsuspects + 1;
            stats.unsuspect_log <- (me, src, now) :: stats.unsuspect_log;
            st := { !st with retired = ISet.remove src !st.retired }
          end
      | None -> ()
    in
    (match ev with
    | Event_sim.Started ->
        (* Anchor the monitor at the tick this process actually started:
           a_init built it at time 0, which is right for the simulator's
           universal start but catastrophically wrong for a respawned
           real-fleet incarnation entering at a late tick — every peer
           deadline would be long expired and the whole fleet instantly
           (and permanently, since mutual suspicion silences both beat
           directions) suspected. *)
        (match heartbeat with
        | Some cfg ->
            st :=
              { !st with hb = Some (Heartbeat.create ~config:cfg ~me ~n ~now ()) }
        | None -> ());
        inner_call Event_sim.Started
    | Event_sim.Got { src; payload = Beat } -> alive_evidence src
    | Event_sim.Got { src; payload = Ack seq } ->
        alive_evidence src;
        st :=
          { !st with
            pending =
              List.filter
                (fun p -> not (p.p_dst = src && p.p_seq = seq))
                !st.pending }
    | Event_sim.Got { src; payload = Data { seq; payload } } ->
        alive_evidence src;
        (* Always ack, even duplicates: the first ack may have been lost. *)
        stats.acks_sent <- stats.acks_sent + 1;
        emit src (Ack seq);
        let seen_src =
          Option.value ~default:ISet.empty (IMap.find_opt src !st.seen)
        in
        if ISet.mem seq seen_src then
          stats.dups_suppressed <- stats.dups_suppressed + 1
        else begin
          st := { !st with seen = IMap.add src (ISet.add seq seen_src) !st.seen };
          inner_call (Event_sim.Got { src; payload })
        end
    | Event_sim.Retired_notice who ->
        (* Oracle notification (or an injected false suspicion): trusted,
           permanent — stop monitoring entirely. *)
        (match !st.hb with Some hb -> Heartbeat.stop hb who | None -> ());
        mark_retired who;
        notify_inner who
    | Event_sim.Continue ->
        st := { !st with armed = ISet.remove now !st.armed };
        (match !st.hb with
        | Some hb ->
            let newly, beat = Heartbeat.tick hb ~now in
            stats.suspicions <- stats.suspicions + List.length newly;
            List.iter
              (fun w -> stats.suspect_log <- (me, w, now) :: stats.suspect_log)
              newly;
            List.iter
              (fun w ->
                mark_retired w;
                notify_inner w)
              newly;
            if beat then
              for q = 0 to n - 1 do
                if q <> me && not (ISet.mem q !st.retired) then begin
                  stats.beats_sent <- stats.beats_sent + 1;
                  emit q Beat
                end
              done
        | None -> ());
        let due, rest = List.partition (fun p -> p.p_next_at <= now) !st.pending in
        let due =
          List.filter_map
            (fun p ->
              if config.max_retries > 0 && p.p_tries >= config.max_retries
              then begin
                (* Bounded retransmission: give the packet up. Without a
                   bound, a Byzantine peer that streams forged traffic —
                   alive evidence — while never acking would hold a
                   draining sender hostage forever. *)
                stats.abandoned <- stats.abandoned + 1;
                None
              end
              else begin
                stats.retransmits <- stats.retransmits + 1;
                emit p.p_dst (Data { seq = p.p_seq; payload = p.p_payload });
                let rto = min (p.p_rto * config.backoff) config.max_rto in
                Some
                  { p with p_next_at = now + rto; p_rto = rto;
                    p_tries = p.p_tries + 1 }
              end)
            due
        in
        st := { !st with pending = rest @ due };
        let rec pump () =
          if not !st.draining then
            match List.find_opt (fun c -> c <= now) !st.inner_conts with
            | Some c ->
                st := { !st with inner_conts = remove_one c !st.inner_conts };
                inner_call Event_sim.Continue;
                pump ()
            | None -> ()
        in
        pump ());
    let terminate = !st.draining && !st.pending = [] in
    let continue_after =
      if terminate then None
      else begin
        let cand = ref None in
        let add t =
          match !cand with Some c when c <= t -> () | _ -> cand := Some t
        in
        (match !st.hb with
        | Some hb -> add (Heartbeat.next_deadline hb)
        | None -> ());
        List.iter (fun p -> add p.p_next_at) !st.pending;
        if not !st.draining then List.iter add !st.inner_conts;
        match !cand with
        | None -> None
        | Some w ->
            let w = max w (now + 1) in
            if ISet.exists (fun a -> a > now && a <= w) !st.armed then None
            else begin
              st := { !st with armed = ISet.add w !st.armed };
              Some (w - now)
            end
      end
    in
    {
      Event_sim.state = !st;
      sends = List.rev !sends;
      work = !work;
      terminate;
      continue_after;
    }
  in
  { Event_sim.a_init; a_handle }

let inner_state st = st.inner
let in_flight st = List.length st.pending

let suspects st =
  match st.hb with Some hb -> Heartbeat.suspects hb | None -> []
