(** Fault campaigns for the asynchronous substrate: seeded
    {!Simkit.Campaign.Async} schedules (crashes + link adversary) run
    through the hardened asynchronous Protocol A
    ({!Async_protocol_a.run_hardened}) and judged by an oracle stack, with
    greedy shrinking of failing schedules.

    This is the asynchronous sibling of [Doall.Fuzz]: the engine is the
    generic {!Simkit.Campaign}, only the schedule type, the execution
    function and the oracles differ. [doall_cli async-fuzz] /
    [doall_cli async-replay] expose it on the command line. *)

module C = Simkit.Campaign

type subject = {
  result : Event_sim.result;
  stats : Link.stats;  (** transport + detector observables of the run *)
  spec : Doall.Spec.t;
  schedule : C.Async.t;
}

val default_max_ticks : int
(** 50_000 — low enough to keep campaigns fast, high enough that every
    honest schedule completes with a wide margin. *)

val run_schedule : ?max_ticks:int -> Doall.Spec.t -> C.Async.t -> subject
(** Execute one schedule: hardened async A (organic heartbeat detection,
    ack/retransmit links) under the schedule's crashes, link adversary,
    delay bounds and executor seed. Deterministic: equal schedules give
    equal subjects. *)

(** {1 Oracles}

    Checked in order; a campaign failure names the first violated oracle. *)

val completed : subject C.oracle
(** Liveness: the run's outcome is [Completed] — every process crashed or
    terminated within the tick budget. *)

val no_lost_unit : subject C.oracle
(** Safety: if any process terminated, every unit was performed. A
    violation means a process declared success while work was missing —
    lost messages must never masquerade as completed units. *)

val default_grace : int

val detector_complete : ?grace:int -> unit -> subject C.oracle
(** Detector completeness, judged on non-completed runs: every process
    still running at the end must have suspected every peer that retired at
    least [grace] ticks (default {!default_grace}) earlier. Judged from the
    {!Link.stats.notices} log. *)

val bounded_duplication : subject C.oracle
(** Work duplication is explained by detection: the worst unit multiplicity
    is at most [1 + k] where [k] is the number of distinct processes that
    issued any retirement notice (only a notified process can take over,
    and each process activates at most once). Reports a margin. *)

val work_cap : int -> subject C.oracle
(** [work <= cap] (non-positive caps pass trivially) — an intentionally
    breakable oracle for exercising the find -> shrink -> replay loop. *)

val oracles : ?grace:int -> unit -> subject C.oracle list
(** The standard stack: {!completed}, {!no_lost_unit},
    {!detector_complete}, {!bounded_duplication}. *)

(** {1 Campaign driver} *)

val stamp : Doall.Spec.t -> C.Async.t -> C.Async.t
(** Add replay metadata ([protocol async-a], [n], [t]). *)

val default_window : ?max_ticks:int -> Doall.Spec.t -> int
(** Crash-tick window: twice the failure-free hardened running time, plus
    slack. *)

val campaign :
  ?jobs:int ->
  ?seed:int64 ->
  ?executions:int ->
  ?window:int ->
  ?grace:int ->
  ?extra:subject C.oracle list ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  ?max_ticks:int ->
  Doall.Spec.t ->
  C.Async.t C.stats
(** A seeded random campaign of [executions] (default 100) schedules from
    {!Simkit.Campaign.Async.sample}, judged by {!oracles} plus [extra],
    each failure shrunk via {!Simkit.Campaign.Async.candidates}. [jobs]
    fans execution out over a {!Simkit.Pool} of worker domains with
    byte-identical results for every value; omitted, the sequential engine
    runs. *)
