(** Fault campaigns for the asynchronous substrate: seeded
    {!Simkit.Campaign.Async} schedules (crashes + link adversary) run
    through the hardened asynchronous Protocol A
    ({!Async_protocol_a.run_hardened}) and judged by an oracle stack, with
    greedy shrinking of failing schedules.

    This is the asynchronous sibling of [Doall.Fuzz]: the engine is the
    generic {!Simkit.Campaign}, only the schedule type, the execution
    function and the oracles differ. [doall_cli async-fuzz] /
    [doall_cli async-replay] expose it on the command line. *)

module C = Simkit.Campaign

type subject = {
  result : Event_sim.result;
  stats : Link.stats;  (** transport + detector observables of the run *)
  spec : Doall.Spec.t;
  schedule : C.Async.t;
}

val default_max_ticks : int
(** 50_000 — low enough to keep campaigns fast, high enough that every
    honest schedule completes with a wide margin. *)

val link_of_schedule : C.Async.t -> Event_sim.link
(** The executor link record a schedule describes (loss, duplication,
    corruption, slow set). *)

val run_schedule : ?max_ticks:int -> Doall.Spec.t -> C.Async.t -> subject
(** Execute one schedule: hardened async A (organic heartbeat detection,
    ack/retransmit links) under the schedule's crashes, link adversary,
    delay bounds and executor seed. Deterministic: equal schedules give
    equal subjects. *)

(** {1 Oracles}

    Checked in order; a campaign failure names the first violated oracle. *)

val completed : subject C.oracle
(** Liveness: the run's outcome is [Completed] — every process crashed or
    terminated within the tick budget. *)

val no_lost_unit : subject C.oracle
(** Safety: if any process terminated, every unit was performed. A
    violation means a process declared success while work was missing —
    lost messages must never masquerade as completed units. *)

val default_grace : int

val detector_complete : ?grace:int -> unit -> subject C.oracle
(** Detector completeness, judged on non-completed runs: every process
    still running at the end must have suspected every peer that retired at
    least [grace] ticks (default {!default_grace}) earlier. Judged from the
    {!Link.stats.notices} log. *)

val bounded_duplication : subject C.oracle
(** Work duplication is explained by detection: the worst unit multiplicity
    is at most [1 + k] where [k] is the number of distinct processes that
    issued any retirement notice (only a notified process can take over,
    and each process activates at most once). Reports a margin. *)

val work_cap : int -> subject C.oracle
(** [work <= cap] (non-positive caps pass trivially) — an intentionally
    breakable oracle for exercising the find -> shrink -> replay loop. *)

val oracles : ?grace:int -> unit -> subject C.oracle list
(** The standard stack: {!completed}, {!no_lost_unit},
    {!detector_complete}, {!bounded_duplication}. *)

(** {1 Campaign driver} *)

val stamp : Doall.Spec.t -> C.Async.t -> C.Async.t
(** Add replay metadata ([protocol async-a], [n], [t]). *)

val default_window : ?max_ticks:int -> Doall.Spec.t -> int
(** Crash-tick window: twice the failure-free hardened running time, plus
    slack. *)

val campaign :
  ?jobs:int ->
  ?seed:int64 ->
  ?executions:int ->
  ?window:int ->
  ?grace:int ->
  ?extra:subject C.oracle list ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  ?max_ticks:int ->
  Doall.Spec.t ->
  C.Async.t C.stats
(** A seeded random campaign of [executions] (default 100) schedules from
    {!Simkit.Campaign.Async.sample}, judged by {!oracles} plus [extra],
    each failure shrunk via {!Simkit.Campaign.Async.candidates}. [jobs]
    fans execution out over a {!Simkit.Pool} of worker domains with
    byte-identical results for every value; omitted, the sequential engine
    runs. *)

(** {1 Corruption / Byzantine campaigns}

    The asynchronous sibling of [Doall.Fuzz]'s byz campaigns: schedules
    additionally carry in-flight corruption ([corrupt_bp]) and
    Byzantine-subverted pids; the subject is either the exposed
    {!Async_protocol_a.run_hardened} baseline or the validated
    {!Async_protocol_a.run_validated}. *)

val byz_protocol_name : Doall.Fuzz.hardening -> string
(** The meta/CLI name: ["async-a"] / ["async-a+val"]. *)

val byz_hardening_of_name : string -> Doall.Fuzz.hardening option
(** Inverse of {!byz_protocol_name}; also accepts the bare ["a"] /
    ["a+val"]. *)

val run_byz_schedule :
  ?max_ticks:int -> Doall.Spec.t -> Doall.Fuzz.hardening -> C.Async.t -> subject
(** One execution under the schedule's crashes, link adversary (including
    corruption) and Byzantine subversions, with the matching wire tamper
    model wired in. *)

val no_phantom_unit : subject C.oracle
(** Safety against lies: no process reported done while units remain
    unperformed (the phantom-termination property — same invariant as
    {!no_lost_unit}, under the corruption adversary). *)

val correct_despite_lies : subject C.oracle
(** The run completed (every honest process retired within the tick budget)
    with every unit performed. *)

val validation_overhead : Doall.Spec.t -> subject C.oracle
(** ["validation-overhead-bounded"]: total work at most one full script per
    honest (non-subverted) process — airtight, since a process activates at
    most once. The margin reported on passing runs carries the signal: the
    quorum forces about [f+1] script completions. *)

val byz_oracles :
  Doall.Spec.t -> hardening:Doall.Fuzz.hardening -> subject C.oracle list
(** {!no_phantom_unit} and {!correct_despite_lies}; the hardened stack adds
    {!validation_overhead}. The crash-campaign detector/duplication oracles
    are deliberately absent — a subverted process never retires, so their
    bookkeeping does not apply. *)

val byz_stamp :
  Doall.Spec.t -> Doall.Fuzz.hardening -> C.Async.t -> C.Async.t
(** Add replay metadata ([protocol async-a] / [async-a+val], [n], [t]). *)

val byz_campaign :
  ?jobs:int ->
  ?seed:int64 ->
  ?executions:int ->
  ?window:int ->
  ?byz:int ->
  ?extra:subject C.oracle list ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  ?max_ticks:int ->
  Doall.Spec.t ->
  Doall.Fuzz.hardening ->
  C.Async.t C.stats
(** Seeded corruption/Byzantine storm: [executions] (default 200) schedules
    from {!Simkit.Campaign.Async.sample_byz} with [byz] subverted pids
    (default [t/3 - 1], clamped to [0 .. t-1]) and fault ticks in
    [0, window]. Shrinking is cost-aware ({!Simkit.Campaign.Async.cost}):
    each failure is reduced to the {e cheapest} still-failing schedule. *)
