(** Crash-atomic on-disk checkpoints for real [dhw_node] processes — the
    deployment-mode realization of [Simkit.Stable]'s "persist survives a
    crash" contract.

    A checkpoint is one small file per process. {!save} is crash-atomic in
    the write-tmp / fsync / rename discipline: a [SIGKILL] at any
    instruction boundary leaves either the new checkpoint, the previous
    one, or both the previous one (under [<pid>.ckpt.prev]) and a garbage
    temp file — never a torn current file that parses as valid. Payloads
    are framed with a magic, a version, the owning pid, a length and a
    CRC-32, so {!load} detects truncation and bit rot and falls back to
    the previous generation instead of crashing recovery. *)

val path : dir:string -> pid:int -> string
(** [<dir>/<pid>.ckpt] — the current generation. The previous generation
    lives at [<path>.prev], the in-flight temp at [<path>.tmp]. *)

val save : dir:string -> pid:int -> string -> unit
(** Durably replace [pid]'s checkpoint with the given payload:
    write [<path>.tmp], [fsync] it, demote any current file to
    [<path>.prev], rename the temp into place, and [fsync] the directory
    (best effort on filesystems that refuse directory fsync). Raises
    [Unix.Unix_error] on I/O failure. *)

val load : dir:string -> pid:int -> string option
(** [pid]'s most recent recoverable payload: the current file if it
    validates (magic, version, pid, length, CRC); otherwise the previous
    generation if that validates; otherwise [None]. Never raises on
    corrupt or missing files — a node recovering from a torn disk must
    degrade to an older rank, not crash. *)
