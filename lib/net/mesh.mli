(** Node-to-node datagram mesh over unix-domain sockets — the peer data
    plane of the asynchronous deployment mode.

    Each fleet member binds [<dir>/p<pid>.sock] ([SOCK_DGRAM]) and sends
    to its peers' paths directly; there is no orchestrator relay and no
    connection state. A SIGKILLed peer simply stops reading — sends to
    its path fail and count as {e organic} loss — and a respawned
    incarnation rebinds the same path. Reliability lives one layer up, in
    [Asim.Link.harden]'s ack/retransmit/dedup machinery, exactly as in
    the simulator. *)

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable undeliverable : int;
      (** sends that failed because the peer's socket was gone or its
          queue full — organic loss, distinct from chaos-injected loss *)
}

type t

val max_datagram : int
(** Largest accepted payload (65 000 bytes — far above any protocol
    message). *)

val path : dir:string -> pid:int -> string
(** [<dir>/p<pid>.sock]. *)

val create : dir:string -> pid:int -> t
(** Bind this node's socket (unlinking any stale one) in non-blocking
    mode. Raises [Unix.Unix_error] on bind failure. *)

val stats_of : t -> stats

val send : t -> dst:int -> string -> bool
(** Fire one datagram at [dst]'s path. [false] when the peer is
    unreachable (dead, not yet bound, or queue full) — the loss is
    counted in [stats] and recovery is the hardening layer's job.
    Raises [Invalid_argument] on an oversized payload; other socket
    errors propagate as [Unix.Unix_error]. *)

val recv : t -> timeout_s:float -> string option
(** One datagram, waiting at most [timeout_s] ([<= 0] polls); [None] on
    timeout. *)

val close : t -> unit
(** Close the socket and unlink its path; never raises. *)
