(** Binary codecs for the Do-All protocol payloads carried opaquely inside
    {!Frame} envelopes. Only nodes use these — the orchestrator never
    interprets payload bytes.

    Every [decode_*] raises {!Wire.Decode} on malformed input; a node that
    receives an undecodable payload is talking to a peer from a different
    build and must fail loudly, not guess. *)

val encode_ord : Doall.Ckpt_script.ord -> string
val decode_ord : string -> Doall.Ckpt_script.ord

val encode_last : Doall.Ckpt_script.last -> string
val decode_last : string -> Doall.Ckpt_script.last

val encode_b : Doall.Protocol_b.msg -> string
val decode_b : string -> Doall.Protocol_b.msg

val encode_rmsg : ('m -> string) -> 'm Doall.Recovery.rmsg -> string
val decode_rmsg : (string -> 'm) -> string -> 'm Doall.Recovery.rmsg
(** Parameterized over the inner protocol's payload codec, mirroring
    [Doall.Recovery.rmsg]'s parameterization. *)

type peer_msg =
  | P_data of { src : int; inc : int; seq : int; ord : Doall.Ckpt_script.ord }
  | P_ack of { src : int; inc : int; target_inc : int; seq : int }
  | P_beat of { src : int; inc : int }
      (** The async deployment mode's datagram envelope around
          [Asim.Link]'s wire alphabet. [seq] is raw (restarts at 0 each
          incarnation); the receiver namespaces it by [inc], and an ack
          names the incarnation it targets so a respawned sender discards
          acks meant for its dead predecessor. *)

val encode_peer : peer_msg -> string
val decode_peer : string -> peer_msg

val encode_counters : (string * int) list -> string
val decode_counters : string -> (string * int) list
(** A node's terminal result: a flat self-describing counter bag. *)
