(** The versioned wire protocol spoken between [dhw_node] processes and the
    control-plane orchestrator: length-prefixed frames with a strict codec.

    On the wire, every frame is [u32 body-length][body]; the body starts
    with a one-byte tag. The {!Hello} frame — the first frame a node sends
    on a fresh connection — additionally carries the protocol magic and
    version, so an orchestrator can reject a node from a different build
    before interpreting anything else. Payloads of protocol messages travel
    as opaque byte strings: only the nodes (which share the protocol
    modules) encode and decode them; the orchestrator routes, counts and
    cuts them without looking inside. *)

val magic : string
(** ["DHWN"] — four bytes inside every {!Hello}. *)

val version : int
(** Wire protocol version, bumped on any incompatible frame change. *)

val max_frame_len : int
(** Cap on a frame body (16 MiB). A length prefix beyond it is rejected
    before any allocation. *)

type envelope = { src : int; sent_at : int; payload : string }
(** One routed message as delivered to a node: sender pid, the round it was
    sent in, and the opaque protocol payload. *)

type send = { dst : int; payload : string; show : string }
(** One outgoing message as reported by a node. [show] is the node's
    human rendering of the payload ([show_msg]), carried so the
    orchestrator's traces — and thus the audit oracles — see exactly what
    the simulator's would. *)

type t =
  | Hello of {
      pid : int;
      protocol : string;  (** "a", "b", "a+rec", "b+rec" *)
      n : int;
      t : int;
      incarnation : int;  (** 0 for the first launch, +1 per restart *)
      wakeup : int option;  (** the node's initial (or post-recovery) wakeup *)
    }
  | Welcome of { round : int }
      (** orchestrator's handshake ack: the round the run is at *)
  | Round_start of { round : int; inbox : envelope list }
  | Step_result of {
      round : int;
      sends : send list;
      work : int list;
      terminate : bool;
      wakeup : int option;
      persists : int;  (** stable-storage writes performed during this step *)
    }
  | Heartbeat of { tick : int }  (** echoed verbatim by the peer *)
  | Shutdown

val encode : t -> string
(** The full wire representation, length prefix included. *)

val decode : string -> (t, string) result
(** Inverse of {!encode} on exactly one whole frame:
    [decode (encode f) = Ok f]. Truncated input, an oversized length
    prefix, an unknown tag, trailing bytes, and a {!Hello} with the wrong
    magic or version are all [Error] with a human-readable reason. *)

val decode_body : string -> (t, string) result
(** {!decode} for a body whose length prefix was already consumed (the
    socket read path: 4-byte header first, then exactly the body). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** One-line human summary, payload bytes elided. *)
