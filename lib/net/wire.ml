exception Decode of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode m)) fmt
let max_string_len = 0x100_0000 (* 16 MiB *)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let put_u8 b v =
  if v < 0 || v > 0xff then invalid_arg "Wire.put_u8: out of range";
  Buffer.add_uint8 b v

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Wire.put_u32: out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let put_int b v = Buffer.add_int64_be b (Int64.of_int v)
let put_bool b v = put_u8 b (if v then 1 else 0)

let put_opt_int b = function
  | None -> put_u8 b 0
  | Some v ->
      put_u8 b 1;
      put_int b v

let put_string b s =
  if String.length s > max_string_len then
    invalid_arg "Wire.put_string: string exceeds max_string_len";
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b put_elt xs =
  put_u32 b (List.length xs);
  List.iter (put_elt b) xs

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type reader = { buf : string; mutable pos : int }

let reader ?(pos = 0) buf = { buf; pos }
let remaining r = String.length r.buf - r.pos

let need r n field =
  if remaining r < n then
    fail "truncated frame: %s needs %d byte(s), %d left" field n (remaining r)

let get_u8 r field =
  need r 1 field;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r field =
  need r 4 field;
  let v = String.get_int32_be r.buf r.pos in
  r.pos <- r.pos + 4;
  Int32.to_int v land 0xffff_ffff

let get_int r field =
  need r 8 field;
  let v = String.get_int64_be r.buf r.pos in
  r.pos <- r.pos + 8;
  let i = Int64.to_int v in
  if Int64.of_int i <> v then fail "%s: 64-bit value out of OCaml int range" field;
  i

let get_bool r field =
  match get_u8 r field with
  | 0 -> false
  | 1 -> true
  | v -> fail "%s: invalid boolean byte %d" field v

let get_opt_int r field =
  match get_u8 r field with
  | 0 -> None
  | 1 -> Some (get_int r field)
  | v -> fail "%s: invalid option flag %d" field v

let get_string r field =
  let len = get_u32 r field in
  if len > max_string_len then
    fail "%s: declared string length %d exceeds cap %d" field len max_string_len;
  need r len field;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let get_raw r n field =
  need r n field;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let get_list r get_elt field =
  let count = get_u32 r field in
  (* Each element costs at least one byte; a count beyond the remaining
     bytes is corruption, caught before any allocation balloons. *)
  if count > remaining r then
    fail "%s: declared list length %d exceeds remaining %d byte(s)" field count
      (remaining r);
  List.init count (fun _ -> get_elt r)

let expect_end r field =
  if remaining r <> 0 then
    fail "%s: %d trailing byte(s) after frame body" field (remaining r)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffff_ffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffff_ffff
