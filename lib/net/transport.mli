(** Socket transport for the deployment mode: Unix-domain or TCP, with
    deadlines on every blocking operation, bounded connect retries with
    exponential backoff and jitter, and a stats record that becomes the
    [transport] section of a net-run report.

    All operations are synchronous; the round-lockstep control plane and
    the single-connection node loop need no concurrency. *)

exception Timeout of string
(** A deadline expired (connect, read or write). *)

exception Closed of string
(** The peer closed the connection mid-frame. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:<path>"] or ["tcp:<host>:<port>"]. *)

val addr_to_string : addr -> string

type stats = {
  mutable connects : int;  (** successful connection establishments *)
  mutable retries : int;  (** failed connect attempts that were retried *)
  mutable timeouts : int;  (** deadline expiries (connect, read or write) *)
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

val stats : unit -> stats
(** A fresh all-zero record; one per orchestrator run (shared across every
    node connection) or one per node. *)

val listen : addr -> Unix.file_descr
(** Bind and listen. A [Unix_sock] path is unlinked first if stale;
    [Tcp (host, 0)] binds an ephemeral port — read it back with
    {!bound_addr}. *)

val bound_addr : addr -> Unix.file_descr -> addr
(** The address actually bound (resolves port 0 to the kernel's choice). *)

val accept : ?timeout_s:float -> ?stats:stats -> Unix.file_descr -> Unix.file_descr
(** Accept one connection; {!Timeout} if none arrives in time
    (default 30 s). *)

val connect :
  ?stats:stats ->
  ?prng:Dhw_util.Prng.t ->
  ?attempts:int ->
  ?backoff_s:float ->
  ?max_backoff_s:float ->
  ?timeout_s:float ->
  addr ->
  Unix.file_descr
(** Dial with bounded retries: up to [attempts] (default 8) tries,
    sleeping [backoff_s] (default 0.05 s) doubled per failure and capped
    at [max_backoff_s] (default 1 s), each sleep jittered in
    [0.5×, 1.5×] so restarting fleets do not reconnect in lockstep.
    [timeout_s] (default 10 s) bounds each individual attempt. Raises the
    last failure ({!Timeout} or [Unix.Unix_error]) once attempts are
    exhausted, with every retry counted in [stats].

    With [?prng] the jitter draws come from the given generator — thread a
    [Prng.stream] of the run seed through (keyed by pid, as the worker
    pool does) and the retry sleep pattern is a pure function of the seed,
    closing the one nondeterminism leak in [net-run] replays. Without it
    the jitter falls back to a local hash of [(addr, getpid)]. *)

val send_frame :
  ?stats:stats -> ?timeout_s:float -> Unix.file_descr -> Frame.t -> unit
(** Write one whole frame; {!Timeout} if the peer stops draining
    (default 30 s), {!Closed} on EPIPE/ECONNRESET. *)

val recv_frame :
  ?stats:stats -> ?timeout_s:float -> Unix.file_descr -> Frame.t
(** Read exactly one frame; {!Timeout} (default 30 s) or {!Closed} on EOF.
    Raises [Failure] with the decoder's reason on a malformed frame —
    strict, like the codec. *)

val close_noerr : Unix.file_descr -> unit
