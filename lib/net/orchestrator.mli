(** Control-plane orchestrator for the real-process deployment mode.

    Runs the round-synchronous Do-All execution that [Simkit.Kernel.run]
    simulates, but with each participant living in its own OS process
    ([dhw_node]) reached over a socket: the orchestrator is the lockstep
    scheduler and message switch, the nodes hold the protocol state. Every
    structural rule of the kernel loop is reproduced — delivery of round-[r]
    sends at [r+1], idle-round skipping, pid-order stepping, per-pid inboxes
    sorted by sender, the acting-crash [keep_work || delivered <> []] rule,
    restart applicability — and the fault plan is consulted through exactly
    the same [Simkit.Fault] kernel interface, so a schedule replayed here
    and in the simulator yields the same metrics whenever the real run is
    fault-free at the OS level. The one semantic difference: a [Crash]
    decision is enforced with a real [SIGKILL], and a [Restart] entry with a
    real [exec] of a fresh incarnation that must recover from its on-disk
    checkpoint. *)

type config = {
  node_exe : string;  (** path to the [dhw_node] binary *)
  addr : Transport.addr;
      (** listen address; [Tcp (h, 0)] picks an ephemeral port *)
  protocol : string;  (** "a" | "b" | "a+rec" | "b+rec" *)
  n : int;  (** work units *)
  t : int;  (** processes *)
  fault : Simkit.Fault.t;
      (** consulted exactly as the kernel does; [Corrupt]/[Byzantine]
          entries must be rejected by the caller — there is no tamper model
          over real sockets, so a Byzantine entry degrades to a silent
          crash, as in the kernel *)
  ckpt_dir : string;  (** per-pid checkpoint files live here *)
  log_dir : string option;
      (** node stdout/stderr go to [node-<pid>.log] here; inherit if [None] *)
  rejoin_rounds : int;
  watchdog_s : float;  (** wall-clock budget for the whole run *)
  io_timeout_s : float;  (** per-RPC deadline (spawn-to-hello, step, kill) *)
  max_rounds : int;
  trace_dir : string option;
      (** when set, nodes are launched with [--trace-dir] and write per-pid
          [trace-<pid>.jsonl] span files there; the orchestrator adds its
          control-plane spans as [trace-ctl.jsonl] (round, per-step RPC,
          heartbeat probes, spawn/kill/respawn marks) and, after the run,
          merges everything — including partial files from SIGKILLed nodes
          — into one causally-ordered [dhw-trace/v1] stream at
          [trace.jsonl]. [None] (the default) traces nothing. *)
  seed : int64;
      (** run seed; nodes derive their connect-retry jitter from
          [Prng.stream seed pid], so respawn reconnect timing replays
          deterministically (default [1L]) *)
}

val config :
  ?fault:Simkit.Fault.t ->
  ?max_rounds:int ->
  ?rejoin_rounds:int ->
  ?watchdog_s:float ->
  ?io_timeout_s:float ->
  ?log_dir:string ->
  ?trace_dir:string ->
  ?seed:int64 ->
  node_exe:string ->
  addr:Transport.addr ->
  protocol:string ->
  n:int ->
  t:int ->
  ckpt_dir:string ->
  unit ->
  config

type stop =
  | Completed
  | Stalled of Simkit.Types.round
  | Round_limit of Simkit.Types.round
  | Watchdog of Simkit.Types.round
      (** wall-clock budget exhausted at the given round *)
  | Node_failure of Simkit.Types.round * string
      (** a node died or misbehaved outside the fault plan (unexpected EOF,
          RPC timeout, malformed frame, protocol violation) *)

val stop_to_string : stop -> string

val to_run_outcome : stop -> Simkit.Kernel.run_outcome
(** Projection for the shared oracle stack: [Watchdog] is a time-budget
    exhaustion, so it maps to [Round_limit]; [Node_failure] means the
    execution wedged for a non-adversarial reason, so it maps to [Stalled].
    The true cause stays in the {!stop} (and the report's transport
    section). *)

type result = {
  metrics : Simkit.Metrics.t;
  statuses : Simkit.Types.status array;
  stop : stop;
  trace : Simkit.Trace.t;
      (** built from orchestrator-observed events with node-supplied [show]
          strings, so the audit oracles read it exactly like a simulator
          trace *)
  transport : Transport.stats;
  spawns : int;  (** total node processes launched (initial + respawns) *)
  kills : int;  (** SIGKILLs delivered by the fault plan *)
  respawns : int;  (** restart entries committed with a fresh incarnation *)
  heartbeats : int;
      (** liveness probes sent to sleeping nodes; a probe that is not
          echoed raises [Bad_node] and stops the run, so a non-zero count
          with a clean stop means every suspicion was refuted *)
  wall_s : float;
}

val transport_json : config -> result -> (string * Dhw_util.Jsonw.t) list
(** The report's [transport] extra section: socket counters (connects,
    bounded-backoff retries, deadline timeouts, frame/byte totals) plus
    spawn/kill/respawn totals, heartbeat-probe count, the configured
    [io_timeout_s]/[watchdog_s] deadlines, and wall-clock time. *)

val run : config -> result
(** Execute. Never leaks child processes: every spawned node is killed and
    reaped before returning, whatever the stop cause. Raises
    [Invalid_argument] on a config that cannot be started (unknown
    protocol, [t <= 0]). *)
