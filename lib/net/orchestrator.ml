open Simkit.Types
module Fault = Simkit.Fault
module Metrics = Simkit.Metrics
module Trace = Simkit.Trace

type config = {
  node_exe : string;
  addr : Transport.addr;
  protocol : string;
  n : int;
  t : int;
  fault : Fault.t;
  ckpt_dir : string;
  log_dir : string option;
  rejoin_rounds : int;
  watchdog_s : float;
  io_timeout_s : float;
  max_rounds : int;
  trace_dir : string option;
  seed : int64;  (* drives the nodes' connect-retry jitter *)
}

let config ?(fault = Fault.none) ?(max_rounds = 10_000) ?(rejoin_rounds = 3)
    ?(watchdog_s = 60.) ?(io_timeout_s = 10.) ?log_dir ?trace_dir
    ?(seed = 1L) ~node_exe ~addr ~protocol ~n ~t ~ckpt_dir () =
  {
    node_exe;
    addr;
    protocol;
    n;
    t;
    fault;
    ckpt_dir;
    log_dir;
    rejoin_rounds;
    watchdog_s;
    io_timeout_s;
    max_rounds;
    trace_dir;
    seed;
  }

type stop =
  | Completed
  | Stalled of round
  | Round_limit of round
  | Watchdog of round
  | Node_failure of round * string

let stop_to_string = function
  | Completed -> "completed"
  | Stalled r -> Printf.sprintf "stalled@%d" r
  | Round_limit r -> Printf.sprintf "round-limit@%d" r
  | Watchdog r -> Printf.sprintf "watchdog@%d" r
  | Node_failure (r, msg) -> Printf.sprintf "node-failure@%d: %s" r msg

let to_run_outcome = function
  | Completed -> Simkit.Kernel.Completed
  | Stalled r -> Simkit.Kernel.Stalled r
  | Round_limit r -> Simkit.Kernel.Round_limit r
  | Watchdog r -> Simkit.Kernel.Round_limit r
  | Node_failure (r, _) -> Simkit.Kernel.Stalled r

type result = {
  metrics : Metrics.t;
  statuses : status array;
  stop : stop;
  trace : Trace.t;
  transport : Transport.stats;
  spawns : int;
  kills : int;
  respawns : int;
  heartbeats : int;
  wall_s : float;
}

let transport_json cfg res =
  let s = res.transport in
  [
    ( "transport",
      Dhw_util.Jsonw.Obj
        [
          ("connects", Dhw_util.Jsonw.Int s.Transport.connects);
          ("retries", Dhw_util.Jsonw.Int s.Transport.retries);
          ("timeouts", Dhw_util.Jsonw.Int s.Transport.timeouts);
          ("frames_sent", Dhw_util.Jsonw.Int s.Transport.frames_sent);
          ("frames_received", Dhw_util.Jsonw.Int s.Transport.frames_received);
          ("bytes_sent", Dhw_util.Jsonw.Int s.Transport.bytes_sent);
          ("bytes_received", Dhw_util.Jsonw.Int s.Transport.bytes_received);
          ("spawns", Dhw_util.Jsonw.Int res.spawns);
          ("kills", Dhw_util.Jsonw.Int res.kills);
          ("respawns", Dhw_util.Jsonw.Int res.respawns);
          ("heartbeats", Dhw_util.Jsonw.Int res.heartbeats);
          ("io_timeout_s", Dhw_util.Jsonw.Float cfg.io_timeout_s);
          ("watchdog_s", Dhw_util.Jsonw.Float cfg.watchdog_s);
          ("wall_s", Dhw_util.Jsonw.Float res.wall_s);
        ] );
  ]

(* One participant process, across its incarnations. *)
type node = {
  npid : pid;
  mutable os_pid : int;  (* -1 when no live child *)
  mutable fd : Unix.file_descr option;
  mutable incarnation : int;
}

exception Bad_node of string

let known_protocols = [ "a"; "b"; "a+rec"; "b+rec" ]

let run cfg =
  if cfg.t <= 0 then invalid_arg "Orchestrator.run: need at least one process";
  if not (List.mem cfg.protocol known_protocols) then
    invalid_arg (Printf.sprintf "Orchestrator.run: unknown protocol %S" cfg.protocol);
  let started = Unix.gettimeofday () in
  let deadline = started +. cfg.watchdog_s in
  let stats = Transport.stats () in
  let trace = Trace.create () in
  let metrics = Metrics.create ~n_processes:cfg.t ~n_units:cfg.n in
  let statuses = Array.make cfg.t Running in
  let wakeups : round option array = Array.make cfg.t None in
  let spawns = ref 0 and kills = ref 0 and respawns = ref 0 in
  let heartbeats = ref 0 in
  if not (Sys.file_exists cfg.ckpt_dir) then Unix.mkdir cfg.ckpt_dir 0o755;
  (match cfg.log_dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  (match cfg.trace_dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  (* Control-plane spans, collected in memory and merged with the nodes'
     per-pid trace files after the run. Inert without a trace_dir. *)
  let ctl_spans = ref [] in
  let tracing = cfg.trace_dir <> None in
  let ctl_mark ?(args = []) ~name ~pid ~inc ~round () =
    if tracing then
      ctl_spans :=
        { Dhw_util.Spanfile.name; src = "ctl"; pid; inc; round;
          ts_us = Dhw_util.Clock.now_us (); dur_us = 0.0; args }
        :: !ctl_spans
  in
  let ctl_timed ~name ~pid ~inc ~round f =
    if not tracing then f ()
    else begin
      let ts0 = Dhw_util.Clock.now_us () in
      let res = f () in
      ctl_spans :=
        { Dhw_util.Spanfile.name; src = "ctl"; pid; inc; round; ts_us = ts0;
          dur_us = Dhw_util.Clock.now_us () -. ts0; args = [] }
        :: !ctl_spans;
      res
    end
  in
  let listen_fd = Transport.listen cfg.addr in
  let bound = Transport.bound_addr cfg.addr listen_fd in
  let nodes =
    Array.init cfg.t (fun pid -> { npid = pid; os_pid = -1; fd = None; incarnation = 0 })
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let io_left () =
    (* An RPC may not sleep past the watchdog. *)
    Float.max 0.05 (Float.min cfg.io_timeout_s (deadline -. Unix.gettimeofday ()))
  in
  let node_log nd =
    match cfg.log_dir with
    | None -> (Unix.stdout, Unix.stderr, fun () -> ())
    | Some d ->
        let f =
          Unix.openfile
            (Filename.concat d (Printf.sprintf "node-%d.log" nd.npid))
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
            0o644
        in
        (f, f, fun () -> Transport.close_noerr f)
  in
  let spawn nd ~recover_at =
    let base =
      [
        cfg.node_exe;
        "--addr"; Transport.addr_to_string bound;
        "--pid"; string_of_int nd.npid;
        "--protocol"; cfg.protocol;
        "-n"; string_of_int cfg.n;
        "-t"; string_of_int cfg.t;
        "--ckpt-dir"; cfg.ckpt_dir;
        "--rejoin-rounds"; string_of_int cfg.rejoin_rounds;
        "--incarnation"; string_of_int nd.incarnation;
        "--seed"; Int64.to_string cfg.seed;
      ]
    in
    let base =
      match cfg.trace_dir with
      | Some d -> base @ [ "--trace-dir"; d ]
      | None -> base
    in
    let argv =
      match recover_at with
      | None -> base
      | Some r -> base @ [ "--recover"; "--recover-at"; string_of_int r ]
    in
    let out, err, close_log = node_log nd in
    let os_pid =
      Fun.protect ~finally:close_log (fun () ->
          Unix.create_process cfg.node_exe (Array.of_list argv) devnull out err)
    in
    nd.os_pid <- os_pid;
    ctl_mark ~name:"spawn" ~pid:nd.npid ~inc:nd.incarnation
      ~round:(Option.value ~default:0 recover_at) ();
    incr spawns
  in
  let reap nd =
    if nd.os_pid > 0 then begin
      (try ignore (Unix.waitpid [] nd.os_pid) with Unix.Unix_error _ -> ());
      nd.os_pid <- -1
    end
  in
  let close_conn nd =
    match nd.fd with
    | Some fd ->
        Transport.close_noerr fd;
        nd.fd <- None
    | None -> ()
  in
  let kill nd =
    if nd.os_pid > 0 then (
      (try Unix.kill nd.os_pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap nd);
    close_conn nd
  in
  (* Graceful: ask the node to exit, give it a moment, then make sure. *)
  let shutdown nd =
    (match nd.fd with
    | Some fd -> (
        try Transport.send_frame ~stats ~timeout_s:1.0 fd Frame.Shutdown
        with Transport.Timeout _ | Transport.Closed _ | Unix.Unix_error _ -> ())
    | None -> ());
    close_conn nd;
    if nd.os_pid > 0 then begin
      let rec wait tries =
        match Unix.waitpid [ Unix.WNOHANG ] nd.os_pid with
        | 0, _ ->
            if tries <= 0 then (
              (try Unix.kill nd.os_pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] nd.os_pid))
            else begin
              ignore (Unix.select [] [] [] 0.02);
              wait (tries - 1)
            end
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      in
      wait 100;
      nd.os_pid <- -1
    end
  in
  let cleanup () =
    Array.iter kill nodes;
    Transport.close_noerr listen_fd;
    Transport.close_noerr devnull;
    match cfg.addr with
    | Transport.Unix_sock p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Transport.Tcp _ -> ()
  in
  (* Accept one connection and bind it to the node its Hello names. *)
  let accept_hello ~expect ~welcome_round =
    let conn = Transport.accept ~timeout_s:(io_left ()) ~stats listen_fd in
    match Transport.recv_frame ~stats ~timeout_s:(io_left ()) conn with
    | Frame.Hello h ->
        if h.pid < 0 || h.pid >= cfg.t then (
          Transport.close_noerr conn;
          raise (Bad_node (Printf.sprintf "hello from out-of-range pid %d" h.pid)));
        let nd = nodes.(h.pid) in
        (match expect with
        | Some p when p <> h.pid ->
            Transport.close_noerr conn;
            raise (Bad_node (Printf.sprintf "expected hello from pid %d, got %d" p h.pid))
        | _ -> ());
        if nd.fd <> None then (
          Transport.close_noerr conn;
          raise (Bad_node (Printf.sprintf "duplicate hello from pid %d" h.pid)));
        if h.protocol <> cfg.protocol || h.n <> cfg.n || h.t <> cfg.t then
          raise
            (Bad_node
               (Printf.sprintf "pid %d hello mismatch: %s n=%d t=%d (want %s n=%d t=%d)"
                  h.pid h.protocol h.n h.t cfg.protocol cfg.n cfg.t));
        if h.incarnation <> nd.incarnation then
          raise
            (Bad_node
               (Printf.sprintf "pid %d hello incarnation %d, expected %d" h.pid
                  h.incarnation nd.incarnation));
        (match h.wakeup with
        | Some w when w < 0 -> raise (Bad_node (Printf.sprintf "pid %d negative wakeup" h.pid))
        | _ -> ());
        nd.fd <- Some conn;
        wakeups.(h.pid) <- h.wakeup;
        Transport.send_frame ~stats ~timeout_s:(io_left ()) conn
          (Frame.Welcome { round = welcome_round });
        h.pid
    | f ->
        Transport.close_noerr conn;
        raise (Bad_node (Fmt.str "expected hello, got %a" Frame.pp f))
  in
  let conn_of nd =
    match nd.fd with
    | Some fd -> fd
    | None -> raise (Bad_node (Printf.sprintf "pid %d has no connection" nd.npid))
  in
  let alive pid = statuses.(pid) = Running in
  (* Without a tamper model a Byzantine entry degrades to a silent crash at
     its activation round — the kernel's rule, and there is no tamper model
     over real sockets. *)
  let byz_degraded pid r =
    match Fault.byzantine_from cfg.fault pid with Some b0 -> b0 <= r | None -> false
  in
  let restart_queue =
    ref (List.sort compare (List.map (fun (p, r) -> (r, p)) (Fault.restarts cfg.fault)))
  in
  let applicable (rr, pid) =
    pid >= 0 && pid < cfg.t
    && match statuses.(pid) with Crashed rc -> rr > rc | _ -> false
  in
  let pending_restart () = List.exists applicable !restart_queue in
  let pending : (round * Frame.envelope list array) option ref = ref None in
  let next_round () =
    let candidate = ref None in
    let consider r =
      match !candidate with Some c when c <= r -> () | _ -> candidate := Some r
    in
    (match !pending with Some (sent_at, _) -> consider (sent_at + 1) | None -> ());
    Array.iteri
      (fun pid w -> match w with Some r when alive pid -> consider r | _ -> ())
      wakeups;
    List.iter (fun (rr, pid) -> if applicable (rr, pid) then consider rr) !restart_queue;
    !candidate
  in
  let deliveries_for r =
    match !pending with
    | Some (sent_at, boxes) when sent_at + 1 = r ->
        pending := None;
        Some boxes
    | _ -> None
  in
  let apply_delivery_filter decision sends =
    match decision with
    | Fault.All -> (sends, [])
    | Fault.Prefix k ->
        let rec split i acc = function
          | [] -> (List.rev acc, [])
          | rest when i = k -> (List.rev acc, rest)
          | s :: rest -> split (i + 1) (s :: acc) rest
        in
        split 0 [] sends
    | Fault.Indices idx ->
        let keep = List.sort_uniq compare idx in
        let kept, dropped =
          List.fold_left
            (fun (i, (k, d)) s ->
              if List.mem i keep then (i + 1, (s :: k, d)) else (i + 1, (k, s :: d)))
            (0, ([], []))
            sends
          |> snd
        in
        (List.rev kept, List.rev dropped)
  in
  let apply_restarts r =
    let rec go () =
      match !restart_queue with
      | (rr, pid) :: rest when rr <= r ->
          restart_queue := rest;
          if applicable (rr, pid) then begin
            let nd = nodes.(pid) in
            nd.incarnation <- nd.incarnation + 1;
            spawn nd ~recover_at:(Some r);
            incr respawns;
            ctl_mark ~name:"respawn" ~pid ~inc:nd.incarnation ~round:r ();
            ignore (accept_hello ~expect:(Some pid) ~welcome_round:r);
            statuses.(pid) <- Running;
            Fault.note_restart cfg.fault pid r;
            Metrics.record_restart metrics pid r;
            Trace.record trace (Trace.Restarted_ev { pid; round = r })
          end;
          go ()
      | _ -> ()
    in
    go ()
  in
  let commit_crash pid r ~signal =
    if signal then begin
      kill nodes.(pid);
      incr kills;
      ctl_mark ~name:"kill" ~pid ~inc:nodes.(pid).incarnation ~round:r ()
    end;
    statuses.(pid) <- Crashed r;
    wakeups.(pid) <- None;
    Fault.note_crash cfg.fault pid r;
    Metrics.record_crash metrics pid r;
    Trace.record trace (Trace.Crashed_ev { pid; round = r })
  in
  let cur = ref 0 in
  let run_loop () =
    (* Launch the fleet and collect the handshakes. *)
    Array.iter (fun nd -> spawn nd ~recover_at:None) nodes;
    for _ = 1 to cfg.t do
      ignore (accept_hello ~expect:None ~welcome_round:0)
    done;
    let rec loop r =
      cur := r;
      if r > cfg.max_rounds then Round_limit r
      else if Unix.gettimeofday () > deadline then Watchdog r
      else begin
        ctl_timed ~name:"round" ~pid:(-1) ~inc:0 ~round:r (fun () ->
        apply_restarts r;
        let boxes = deliveries_for r in
        let inbox pid = match boxes with Some b -> b.(pid) | None -> [] in
        let out = Array.make cfg.t ([] : Frame.envelope list) in
        let any_sent = ref false in
        for pid = 0 to cfg.t - 1 do
          if alive pid then begin
            if Fault.crashed_by cfg.fault pid r || byz_degraded pid r then
              commit_crash pid r ~signal:true
            else begin
              let nd = nodes.(pid) in
              let mail = inbox pid in
              let due = match wakeups.(pid) with Some w -> w <= r | None -> false in
              if mail <> [] || due then begin
                Trace.record trace (Trace.Stepped { pid; round = r });
                let fd = conn_of nd in
                let sends, work, terminate, wakeup, persists =
                  ctl_timed ~name:"rpc" ~pid ~inc:nd.incarnation ~round:r
                    (fun () ->
                      Transport.send_frame ~stats ~timeout_s:(io_left ()) fd
                        (Frame.Round_start { round = r; inbox = mail });
                      match
                        Transport.recv_frame ~stats ~timeout_s:(io_left ()) fd
                      with
                      | Frame.Step_result
                          { round = rr; sends; work; terminate; wakeup; persists }
                        ->
                          if rr <> r then
                            raise
                              (Bad_node
                                 (Printf.sprintf
                                    "pid %d replied for round %d at round %d"
                                    pid rr r));
                          (sends, work, terminate, wakeup, persists)
                      | f ->
                          raise
                            (Bad_node
                               (Fmt.str "pid %d: expected step result, got %a"
                                  pid Frame.pp f)))
                in
                (* Stable-storage writes happened inside the node's step,
                   before any crash decision — write-ahead, as in the sim. *)
                for _ = 1 to persists do
                  Metrics.record_persist metrics pid r
                done;
                let view =
                  {
                    Fault.sv_pid = pid;
                    sv_round = r;
                    sv_sends = List.length sends;
                    sv_works = List.length work;
                    sv_terminating = terminate;
                    sv_works_done_before = Metrics.work_by metrics pid;
                  }
                in
                let decision = Fault.on_step cfg.fault view in
                let commit_sends sends =
                  List.iter
                    (fun s ->
                      Metrics.record_send metrics pid;
                      Trace.record trace
                        (Trace.Sent { src = pid; dst = s.Frame.dst; round = r; what = s.Frame.show });
                      if s.Frame.dst >= 0 && s.Frame.dst < cfg.t then begin
                        out.(s.Frame.dst) <-
                          { Frame.src = pid; sent_at = r; payload = s.Frame.payload }
                          :: out.(s.Frame.dst);
                        any_sent := true
                      end)
                    sends
                in
                let commit_work () =
                  List.iter
                    (fun u ->
                      Metrics.record_work metrics pid u;
                      Trace.record trace (Trace.Worked { pid; round = r; unit_id = u }))
                    work
                in
                match decision with
                | Fault.Survive ->
                    commit_work ();
                    commit_sends sends;
                    Metrics.record_round metrics r;
                    if terminate then begin
                      statuses.(pid) <- Terminated r;
                      wakeups.(pid) <- None;
                      Metrics.record_terminate metrics pid r;
                      Trace.record trace (Trace.Terminated_ev { pid; round = r });
                      shutdown nd
                    end
                    else begin
                      (match wakeup with
                      | Some w when w <= r ->
                          raise
                            (Bad_node
                               (Printf.sprintf
                                  "pid %d at round %d asked for non-future wakeup %d" pid
                                  r w))
                      | _ -> ());
                      wakeups.(pid) <- wakeup
                    end
                | Fault.Crash { keep_work; delivery } ->
                    let delivered, dropped = apply_delivery_filter delivery sends in
                    let keep_work = keep_work || delivered <> [] in
                    if keep_work then commit_work ();
                    commit_sends delivered;
                    List.iter
                      (fun s ->
                        Trace.record trace
                          (Trace.Dropped
                             { src = pid; dst = s.Frame.dst; round = r; what = s.Frame.show }))
                      dropped;
                    commit_crash pid r ~signal:true;
                    Metrics.record_round metrics r
              end
              else begin
                (* Sleeping this round: probe liveness so a node that died
                   outside the fault plan surfaces as a failure, not a hang
                   at its next wakeup. *)
                let fd = conn_of nd in
                incr heartbeats;
                ctl_timed ~name:"hb" ~pid ~inc:nd.incarnation ~round:r
                  (fun () ->
                    Transport.send_frame ~stats ~timeout_s:(io_left ()) fd
                      (Frame.Heartbeat { tick = r });
                    match
                      Transport.recv_frame ~stats ~timeout_s:(io_left ()) fd
                    with
                    | Frame.Heartbeat { tick } when tick = r -> ()
                    | f ->
                        raise
                          (Bad_node
                             (Fmt.str "pid %d: expected heartbeat echo, got %a"
                                pid Frame.pp f)))
              end
            end
          end
        done;
        if !any_sent then begin
          Array.iteri
            (fun dst msgs ->
              out.(dst) <-
                List.sort (fun a b -> compare a.Frame.src b.Frame.src) msgs)
            out;
          pending := Some (r, out)
        end);
        let all_retired =
          let rec go pid = pid >= cfg.t || (is_retired statuses.(pid) && go (pid + 1)) in
          go 0
        in
        if all_retired && not (pending_restart ()) then Completed
        else
          match next_round () with
          | Some r' ->
              assert (r' > r);
              loop r'
          | None -> Stalled r
      end
    in
    match next_round () with
    | Some r0 -> loop r0
    | None -> if Array.for_all is_retired statuses then Completed else Stalled 0
  in
  let stop =
    match run_loop () with
    | stop -> stop
    | exception Bad_node msg -> Node_failure (!cur, msg)
    | exception Transport.Timeout msg ->
        if Unix.gettimeofday () > deadline then Watchdog !cur
        else Node_failure (!cur, "io timeout: " ^ msg)
    | exception Transport.Closed msg -> Node_failure (!cur, "connection lost: " ^ msg)
    | exception Failure msg -> Node_failure (!cur, msg)
    | exception Unix.Unix_error (e, fn, arg) ->
        Node_failure (!cur, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
  in
  cleanup ();
  (* Collect the trace: control-plane spans to trace-ctl.jsonl, then merge
     every per-source file (including partial ones from SIGKILLed nodes —
     the reader skips the torn final line) into one causally-ordered
     dhw-trace/v1 stream. Runs after cleanup so every node file is final. *)
  (match cfg.trace_dir with
  | None -> ()
  | Some dir ->
      let module Sf = Dhw_util.Spanfile in
      let meta =
        [
          ("protocol", Dhw_util.Jsonw.Str cfg.protocol);
          ("n", Dhw_util.Jsonw.Int cfg.n);
          ("t", Dhw_util.Jsonw.Int cfg.t);
        ]
      in
      Sf.write_file ~meta ~source:"ctl"
        (Filename.concat dir "trace-ctl.jsonl")
        (List.rev !ctl_spans);
      let parts =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               f <> "trace.jsonl"
               && String.length f > 6
               && String.sub f 0 6 = "trace-"
               && Filename.check_suffix f ".jsonl")
        |> List.sort compare
      in
      let streams =
        List.filter_map
          (fun f ->
            match Sf.read_file (Filename.concat dir f) with
            | Ok { Sf.spans; _ } -> Some spans
            | Error _ -> None)
          parts
      in
      Sf.write_file ~meta ~source:"merged"
        (Filename.concat dir "trace.jsonl")
        (Sf.merge streams));
  {
    metrics;
    statuses;
    stop;
    trace;
    transport = stats;
    spawns = !spawns;
    kills = !kills;
    respawns = !respawns;
    heartbeats = !heartbeats;
    wall_s = Unix.gettimeofday () -. started;
  }
