(* The asynchronous deployment-mode node driver: one OS process running
   the very state machines the simulator fuzzes — [Link.harden] (acks,
   retransmission, dedup, heartbeat ◇P detection) wrapped around
   [Async_protocol_a] — over a datagram mesh and a wall-clock-derived
   tick counter, with chaos applied to its own sends.

   Three pieces of driver-level bookkeeping make real processes safe that
   the simulator gets for free:

   - {b incarnation seq namespacing}: a respawned node's Link numbers
     packets from 0 again, so receivers map an incoming raw seq to
     [inc * span + seq] before dedup, and acks carry the incarnation they
     target so a respawn discards its dead predecessor's acks;
   - {b driver-side checkpointing}: everything the protocol knows either
     arrived in a message or left in one, both of which pass through the
     driver — so the best [Ckpt_script.last] (by [Recovery.view_rank]) is
     tracked here and persisted via {!Ckpt.save} whenever it improves,
     and a [--recover] respawn seeds [Async_protocol_a.aproc_recover]
     with it;
   - {b graceful degradation}: when the local detector suspects every
     peer at once the node has lost its quorum — it persists, marks a
     park span, and keeps beating; any later evidence of life retracts
     the suspicions organically and the span closes with an unpark. *)

module E = Asim.Event_sim
module Link = Asim.Link
module Engine = Asim.Engine
module A = Asim.Async_protocol_a
module Rec = Doall.Recovery
module Sf = Dhw_util.Spanfile

(* Sequence-number namespace width per incarnation. A node would need to
   originate 2^20 packets in one life to collide — the protocol sends
   O(t) per unit. *)
let seq_span = 1 lsl 20

type config = {
  dir : string;
  pid : int;
  spec : Doall.Spec.t;
  incarnation : int;
  recover : bool;
  tick_ms : int;
  epoch_ms : float;  (* fleet-global t0 (wall-clock ms): shared timeline *)
  plan : Chaos.plan;
  max_ticks : int;
  hb_period : int;
  hb_timeout : int;
  rto : int;
}

let config ?(incarnation = 0) ?(recover = false) ?(tick_ms = 5)
    ?(plan = Chaos.none) ?(max_ticks = 200_000) ?(hb_period = 10)
    ?(hb_timeout = 60) ?(rto = 16) ~dir ~pid ~spec ~epoch_ms () =
  if tick_ms < 1 then invalid_arg "Async_node.config: tick_ms < 1";
  if incarnation < 0 then invalid_arg "Async_node.config: incarnation < 0";
  {
    dir;
    pid;
    spec;
    incarnation;
    recover;
    tick_ms;
    epoch_ms;
    plan;
    max_ticks;
    hb_period;
    hb_timeout;
    rto;
  }

let result_path ~dir ~pid = Filename.concat dir (Printf.sprintf "result-p%d.bin" pid)
let trace_path ~dir ~pid ~inc =
  Filename.concat dir (Printf.sprintf "trace-p%d-i%d.jsonl" pid inc)

let wall_ms () = Unix.gettimeofday () *. 1000.0

(* exit codes, aligned with the CLI contract *)
let exit_ok = 0
let exit_stalled = 3

let run cfg =
  let t = Doall.Spec.processes cfg.spec in
  let me = cfg.pid in
  let inc = cfg.incarnation in
  let now_tick () =
    let ms = wall_ms () -. cfg.epoch_ms in
    if ms < 0.0 then 0 else int_of_float (ms /. float_of_int cfg.tick_ms)
  in
  let mesh = Mesh.create ~dir:cfg.dir ~pid:me in
  let chaos_stats = Chaos.stats () in
  let link_stats = Link.stats () in
  let tr = open_out (trace_path ~dir:cfg.dir ~pid:me ~inc) in
  Sf.write_header
    ~meta:
      [
        ("protocol", Dhw_util.Jsonw.Str "async-a");
        ("n", Dhw_util.Jsonw.Int (Doall.Spec.n cfg.spec));
        ("t", Dhw_util.Jsonw.Int t);
        ("pid", Dhw_util.Jsonw.Int me);
        ("inc", Dhw_util.Jsonw.Int inc);
      ]
    ~source:"node" tr;
  let mark ?(args = []) ~tick name =
    Sf.write_span tr
      {
        Sf.name;
        src = "node";
        pid = me;
        inc;
        round = tick;
        ts_us = Unix.gettimeofday () *. 1e6;
        dur_us = 0.;
        args;
      }
  in
  (* --- recovery seed and best-checkpoint persistence ------------------- *)
  let best_last =
    ref
      (if cfg.recover then
         match Ckpt.load ~dir:cfg.dir ~pid:me with
         | Some payload -> (
             try Codec.decode_last payload
             with Wire.Decode _ -> Doall.Ckpt_script.No_msg)
         | None -> Doall.Ckpt_script.No_msg
       else Doall.Ckpt_script.No_msg)
  in
  let persists = ref 0 in
  let persist ~tick =
    Ckpt.save ~dir:cfg.dir ~pid:me (Codec.encode_last !best_last);
    incr persists;
    mark ~tick "ckpt"
      ~args:[ ("rank", Dhw_util.Jsonw.Int (fst (Rec.view_rank !best_last))) ]
  in
  let observe_ord ~tick ~src ord =
    let cand = Doall.Ckpt_script.Last_ord { ord; src } in
    if Rec.view_rank cand > Rec.view_rank !best_last then begin
      best_last := cand;
      persist ~tick
    end
  in
  (* --- the hardened protocol under the engine -------------------------- *)
  let hb =
    Asim.Heartbeat.config ~period:cfg.hb_period ~timeout:cfg.hb_timeout
      ~backoff:2 ~max_timeout:100_000 ()
  in
  let link_cfg =
    Link.config ~rto:cfg.rto ~backoff:2 ~max_rto:(cfg.rto * 64) ~max_retries:0
      ()
  in
  let inner =
    if cfg.recover then A.aproc_recover ~last:!best_last cfg.spec
    else A.aproc cfg.spec
  in
  let proc =
    Link.harden ~config:link_cfg ~heartbeat:hb ~stats:link_stats ~n:t inner
  in
  let eng = Engine.create proc ~pid:me in
  (* --- chaos identity counters ----------------------------------------- *)
  let attempts : (int * char * int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_attempt dst tag seq =
    let k = (dst, tag, seq) in
    let a = try Hashtbl.find attempts k with Not_found -> 0 in
    Hashtbl.replace attempts k (a + 1);
    a
  in
  let beat_index = Array.make t 0 in
  (* --- outgoing path: chaos judge + delay queue ------------------------ *)
  let delayed : (int * int * string) list ref = ref [] in
  let send_raw dst bytes = ignore (Mesh.send mesh ~dst bytes) in
  let transmit ~tick dst wire =
    let bytes, kind =
      match wire with
      | Link.Data { seq; payload } ->
          ( Codec.encode_peer (Codec.P_data { src = me; inc; seq; ord = payload }),
            Chaos.Data { seq; attempt = next_attempt dst 'd' seq } )
      | Link.Ack seq ->
          (* my Link acks the namespaced number it deduped on; put the raw
             seq and its incarnation back on the wire *)
          let target_inc = seq / seq_span and raw = seq mod seq_span in
          ( Codec.encode_peer
              (Codec.P_ack { src = me; inc; target_inc; seq = raw }),
            Chaos.Ack { seq; attempt = next_attempt dst 'a' seq } )
      | Link.Beat ->
          let i = beat_index.(dst) in
          beat_index.(dst) <- i + 1;
          (Codec.encode_peer (Codec.P_beat { src = me; inc }), Chaos.Beat { index = i })
    in
    let v =
      Chaos.judge cfg.plan ~stats:chaos_stats ~src:me ~dst ~kind ~now:tick ()
    in
    List.iter
      (fun release ->
        if release <= tick then send_raw dst bytes
        else delayed := (release, dst, bytes) :: !delayed)
      v.Chaos.release_at
  in
  let release_due ~tick =
    let due, rest = List.partition (fun (r, _, _) -> r <= tick) !delayed in
    delayed := rest;
    List.iter (fun (_, dst, bytes) -> send_raw dst bytes) due
  in
  (* --- effect processing ------------------------------------------------ *)
  let work_done = ref [] in
  let terminated = ref false in
  let handle ~tick (eff : _ Engine.effects) =
    List.iter
      (fun (dst, wire) ->
        (match wire with
        | Link.Data { payload; _ } -> observe_ord ~tick ~src:me payload
        | _ -> ());
        transmit ~tick dst wire)
      eff.Engine.sends;
    List.iter
      (fun u ->
        work_done := u :: !work_done;
        mark ~tick "work" ~args:[ ("unit", Dhw_util.Jsonw.Int u) ])
      eff.Engine.work;
    if eff.Engine.terminated then terminated := true
  in
  (* --- incoming path ---------------------------------------------------- *)
  let deliver ~tick bytes =
    match Codec.decode_peer bytes with
    | exception Wire.Decode _ -> mark ~tick "bad-datagram"
    | Codec.P_data { src; inc = sinc; seq; ord } ->
        observe_ord ~tick ~src ord;
        let namespaced = (sinc * seq_span) + seq in
        handle ~tick
          (Engine.deliver eng ~now:tick ~src
             (Link.Data { seq = namespaced; payload = ord }))
    | Codec.P_ack { src; target_inc; seq; _ } ->
        if target_inc = inc then
          handle ~tick (Engine.deliver eng ~now:tick ~src (Link.Ack seq))
        (* else: an ack addressed to a dead predecessor incarnation *)
    | Codec.P_beat { src; _ } ->
        handle ~tick (Engine.deliver eng ~now:tick ~src Link.Beat)
  in
  (* --- suspect / park bookkeeping --------------------------------------- *)
  let seen_suspects = ref 0 and seen_unsuspects = ref 0 in
  let drain_detector_logs () =
    let log_new seen log name =
      let len = List.length log in
      let fresh = len - !seen in
      if fresh > 0 then begin
        List.iteri
          (fun i (_, peer, tick) ->
            if i < fresh then
              mark ~tick name ~args:[ ("peer", Dhw_util.Jsonw.Int peer) ])
          log;
        seen := len
      end
    in
    log_new seen_suspects link_stats.Link.suspect_log "suspect";
    log_new seen_unsuspects link_stats.Link.unsuspect_log "unsuspect"
  in
  let parked = ref false and parks = ref 0 in
  let check_park ~tick =
    let suspects = Link.suspects (Engine.state eng) in
    let all_peers_gone = t > 1 && List.length suspects >= t - 1 in
    if all_peers_gone && not !parked then begin
      parked := true;
      incr parks;
      persist ~tick;
      mark ~tick "park"
    end
    else if (not all_peers_gone) && !parked then begin
      parked := false;
      mark ~tick "unpark"
    end
  in
  (* --- main loop --------------------------------------------------------- *)
  let start_ms = wall_ms () -. cfg.epoch_ms in
  let start_tick = now_tick () in
  mark ~tick:start_tick "start"
    ~args:[ ("recover", Dhw_util.Jsonw.Bool cfg.recover) ];
  handle ~tick:start_tick (Engine.start eng ~now:start_tick);
  let rec loop () =
    if !terminated then ()
    else
      let tick = now_tick () in
      if tick > cfg.max_ticks then ()
      else begin
        release_due ~tick;
        handle ~tick (Engine.advance eng ~now:tick);
        drain_detector_logs ();
        check_park ~tick;
        (* sleep until the next engine wakeup or delayed release, capped
           so arrivals stay responsive *)
        let next_release =
          List.fold_left (fun acc (r, _, _) -> min acc r) max_int !delayed
        in
        let deadline =
          min
            (match Engine.next_wakeup eng with None -> max_int | Some w -> w)
            next_release
        in
        let wait_ticks = if deadline = max_int then 1 else max 0 (deadline - tick) in
        let timeout_s =
          Float.min 0.05
            (float_of_int (max 1 wait_ticks) *. float_of_int cfg.tick_ms /. 1000.)
        in
        (match Mesh.recv mesh ~timeout_s with
        | Some bytes ->
            deliver ~tick:(now_tick ()) bytes;
            (* drain whatever else is queued without sleeping *)
            let rec drain () =
              match Mesh.recv mesh ~timeout_s:0.0 with
              | Some b ->
                  deliver ~tick:(now_tick ()) b;
                  drain ()
              | None -> ()
            in
            drain ()
        | None -> ());
        loop ()
      end
  in
  loop ();
  let end_tick = now_tick () in
  release_due ~tick:end_tick;
  drain_detector_logs ();
  if !terminated then begin
    persist ~tick:end_tick;
    mark ~tick:end_tick "term"
  end
  else mark ~tick:end_tick "stall";
  let mst = Mesh.stats_of mesh in
  let counters =
    [
      ("pid", me);
      ("inc", inc);
      ("terminated", if !terminated then 1 else 0);
      ("ticks", end_tick - start_tick);
      ("start_ms", int_of_float start_ms);
      ("end_ms", int_of_float (wall_ms () -. cfg.epoch_ms));
      ("work", List.length !work_done);
      ("persists", !persists);
      ("parks", !parks);
      ("data_sent", link_stats.Link.data_sent);
      ("retransmits", link_stats.Link.retransmits);
      ("acks_sent", link_stats.Link.acks_sent);
      ("beats_sent", link_stats.Link.beats_sent);
      ("dups_suppressed", link_stats.Link.dups_suppressed);
      ("recoveries", link_stats.Link.recoveries);
      ("suspicions", link_stats.Link.suspicions);
      ("false_suspicions", link_stats.Link.false_suspicions);
      ("unsuspects", link_stats.Link.unsuspects);
      ("abandoned", link_stats.Link.abandoned);
      ("dg_sent", mst.Mesh.datagrams_sent);
      ("dg_received", mst.Mesh.datagrams_received);
      ("undeliverable", mst.Mesh.undeliverable);
      ("chaos_considered", chaos_stats.Chaos.considered);
      ("chaos_dropped", chaos_stats.Chaos.dropped);
      ("chaos_duplicated", chaos_stats.Chaos.duplicated);
      ("chaos_delayed", chaos_stats.Chaos.delayed);
      ("chaos_severed", chaos_stats.Chaos.severed);
    ]
  in
  (* tmp + rename: the collector never sees a torn result *)
  let rp = result_path ~dir:cfg.dir ~pid:me in
  let tmp = rp ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Codec.encode_counters counters);
  close_out oc;
  Sys.rename tmp rp;
  close_out_noerr tr;
  Mesh.close mesh;
  if !terminated then exit_ok else exit_stalled
