(* Seeded chaos for the real-process mesh: drop / duplicate / delay /
   sever, byte-reproducible from a Campaign.Async schedule.

   The decisive trick is that every verdict is CONTENT-KEYED, not
   order-keyed: the fate of a transmission is a pure function of
   (seed, src, dst, kind, key) where the key names the message identity —
   (seq, attempt) for data and acks, the beat index for heartbeats. A
   real fleet's event order wobbles with scheduling, so consuming one
   shared coin stream per decision (the simulator's approach) would
   diverge between runs; hashing the identity instead makes the same
   message meet the same fate in every execution of the same seed, which
   is what lets async-net-replay reproduce a storm. *)

module C = Simkit.Campaign
module Prng = Dhw_util.Prng

type kind =
  | Data of { seq : int; attempt : int }
      (* attempt distinguishes retransmissions: each gets a fresh fate,
         or a 30% drop rate would kill a given packet forever *)
  | Ack of { seq : int; attempt : int }
  | Beat of { index : int }

type plan = {
  drop_bp : int;
  dup_bp : int;
  slow_set : Simkit.Types.pid list;
  slow_factor : int;
  severs : (Simkit.Types.pid * Simkit.Types.pid * int * int) list;
  max_delay : int;  (* base delivery-delay bound, ticks *)
  seed : int64;
}

let none =
  {
    drop_bp = 0;
    dup_bp = 0;
    slow_set = [];
    slow_factor = 1;
    severs = [];
    max_delay = 1;
    seed = 1L;
  }

let of_async (s : C.Async.t) =
  {
    drop_bp = s.C.Async.drop_bp;
    dup_bp = s.C.Async.dup_bp;
    slow_set = s.C.Async.slow_set;
    slow_factor = s.C.Async.slow_factor;
    severs =
      List.map
        (fun v -> C.Async.(v.s_src, v.s_dst, v.s_from, v.s_to))
        s.C.Async.severs;
    max_delay = s.C.Async.max_delay;
    seed = s.C.Async.seed;
  }

type stats = {
  mutable considered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;  (* copies released later than their send tick *)
  mutable severed : int;
}

let stats () =
  { considered = 0; dropped = 0; duplicated = 0; delayed = 0; severed = 0 }

type verdict = { release_at : int list }

let kind_key = function
  | Data { seq; attempt } -> (0, seq, attempt)
  | Ack { seq; attempt } -> (1, seq, attempt)
  | Beat { index } -> (2, index, 0)

(* An independent generator per message identity. [Prng.stream] hashes
   (seed, index) without consuming shared state, so verdicts commute —
   the whole point. Hashtbl.hash is stable for immediate tuples across
   runs of the same binary; collisions just make two identities share a
   fate, which harms nothing. *)
let gen_for plan ~src ~dst kind =
  let tag, a, b = kind_key kind in
  Prng.stream plan.seed (Hashtbl.hash (src, dst, tag, a, b) land 0x3FFFFFFF)

let severed_at plan ~src ~dst ~now =
  List.exists
    (fun (s, d, from_, to_) -> s = src && d = dst && from_ <= now && now <= to_)
    plan.severs

let judge plan ?stats:st ~src ~dst ~kind ~now () =
  let bump f = match st with None -> () | Some s -> f s in
  bump (fun s -> s.considered <- s.considered + 1);
  if severed_at plan ~src ~dst ~now then begin
    bump (fun s -> s.severed <- s.severed + 1);
    { release_at = [] }
  end
  else begin
    let g = gen_for plan ~src ~dst kind in
    if plan.drop_bp > 0 && Prng.int g 10_000 < plan.drop_bp then begin
      bump (fun s -> s.dropped <- s.dropped + 1);
      { release_at = [] }
    end
    else begin
      let copies =
        if plan.dup_bp > 0 && Prng.int g 10_000 < plan.dup_bp then begin
          bump (fun s -> s.duplicated <- s.duplicated + 1);
          2
        end
        else 1
      in
      let slow =
        List.mem src plan.slow_set || List.mem dst plan.slow_set
      in
      let bound = plan.max_delay * (if slow then plan.slow_factor else 1) in
      let delay_one () =
        let d = if bound <= 1 then 0 else Prng.int g bound in
        if d > 0 then bump (fun s -> s.delayed <- s.delayed + 1);
        now + d
      in
      { release_at = List.init copies (fun _ -> delay_one ()) }
    end
  end
