(** Byte-level primitives for the length-prefixed wire protocol: a writer
    over [Buffer], a bounds-checked reader with strict decode errors, and
    the CRC-32 used by on-disk checkpoints.

    Every multi-byte integer is big-endian. Decoding never reads past the
    supplied string: a short buffer raises {!Decode} with a message naming
    the field that was being read — the strictness the frame codec and the
    checkpoint loader rely on to reject truncated input loudly. *)

exception Decode of string
(** Raised by every [get_*] on malformed input (truncation, negative or
    oversized lengths, invalid booleans/flags). *)

val max_string_len : int
(** Cap on an encoded string field (16 MiB). [put_string] refuses longer
    values with [Invalid_argument]; [get_string] treats a longer declared
    length as corruption and raises {!Decode}. *)

(** {1 Writing} *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
(** [0 <= v < 2^32]; raises [Invalid_argument] outside. *)

val put_int : Buffer.t -> int -> unit
(** Full-width OCaml int as a signed 64-bit value. *)

val put_bool : Buffer.t -> bool -> unit
val put_opt_int : Buffer.t -> int option -> unit
val put_string : Buffer.t -> string -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

(** {1 Reading} *)

type reader
(** A cursor over an immutable string. *)

val reader : ?pos:int -> string -> reader
val remaining : reader -> int
val get_u8 : reader -> string -> int
(** [get_u8 r field]: the [field] name appears in the {!Decode} message on
    truncation — same for every other [get_*]. *)

val get_u32 : reader -> string -> int
val get_int : reader -> string -> int
val get_bool : reader -> string -> bool
val get_opt_int : reader -> string -> int option
val get_string : reader -> string -> string
val get_raw : reader -> int -> string -> string
(** Exactly [n] raw bytes (no length prefix) — the {!Frame.magic} path. *)

val get_list : reader -> (reader -> 'a) -> string -> 'a list
val expect_end : reader -> string -> unit
(** Raises {!Decode} if any bytes remain — trailing garbage is corruption,
    not padding. *)

(** {1 Checksums} *)

val crc32 : string -> int
(** Standard CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), as a value in
    [0, 2^32). *)
