(** Seeded chaos for the real-process mesh: drop, duplicate, delay and
    sever, byte-reproducible from a [Campaign.Async] schedule.

    Verdicts are {e content-keyed}: the fate of a transmission is a pure
    function of [(seed, src, dst, kind, key)], where the key names the
    message identity — [(seq, attempt)] for data and acks, the beat index
    for heartbeats. A real fleet's event order wobbles with OS
    scheduling; consuming a shared coin stream per decision (the
    simulator's approach) would therefore diverge between executions,
    while hashing the identity makes the same message meet the same fate
    every time the same seed runs. That property is what
    [async-net-replay] rests on. *)

type kind =
  | Data of { seq : int; attempt : int }
      (** [attempt] distinguishes retransmissions — each draws a fresh
          fate, so a lossy link delays packets rather than condemning
          them *)
  | Ack of { seq : int; attempt : int }
  | Beat of { index : int }

type plan = {
  drop_bp : int;  (** loss probability, basis points *)
  dup_bp : int;  (** duplication probability, basis points *)
  slow_set : Simkit.Types.pid list;
  slow_factor : int;
  severs : (Simkit.Types.pid * Simkit.Types.pid * int * int) list;
      (** directed cuts [(src, dst, from, to)] over tick windows —
          deterministic, no coin consumed *)
  max_delay : int;  (** base delivery-delay bound, ticks *)
  seed : int64;
}

val none : plan
(** No chaos: every message delivered once, immediately. *)

val of_async : Simkit.Campaign.Async.t -> plan
(** The plan a schedule prescribes; crashes and restarts are the fleet
    runner's job, not the link's. *)

type stats = {
  mutable considered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable severed : int;
}

val stats : unit -> stats

type verdict = { release_at : int list }
(** One entry per copy to deliver, each the tick at or after which it may
    be released; [[]] means the message is swallowed. *)

val judge :
  plan ->
  ?stats:stats ->
  src:Simkit.Types.pid ->
  dst:Simkit.Types.pid ->
  kind:kind ->
  now:int ->
  unit ->
  verdict
(** Decide the fate of one transmission at tick [now]. Pure in everything
    but [stats]. *)
