(** The asynchronous fleet runner: spawner, chaos-schedule enforcer and
    collector — everything the orchestrator still is once the
    round-lockstep control plane is gone.

    Nodes exchange protocol traffic and heartbeats peer-to-peer over the
    {!Mesh}; failure detection is organic ([Asim.Heartbeat] inside each
    node). This runner only (1) spawns one [dhw_node --async] per pid,
    (2) enforces the schedule's [crash] entries as real SIGKILLs and its
    [restart] entries as [--recover] respawns at the prescribed ticks,
    (3) reaps children under a wall-clock watchdog, and (4) collects
    traces, checkpoints and result files into a {!report} judged by the
    async fuzzer's oracle family. *)

type config = {
  dir : string;  (** run directory (created if missing) *)
  node_exe : string;  (** path to the [dhw_node] binary *)
  spec : Doall.Spec.t;
  sched : Simkit.Campaign.Async.t;
      (** crashes/restarts enforced by this runner; link fields become the
          nodes' {!Chaos} plan; [seed] fixes every chaos coin *)
  tick_ms : int;
  watchdog_s : float;  (** wall-clock bound on the whole run *)
  max_ticks : int;  (** per-node stall bound, passed through *)
}

val config :
  ?tick_ms:int ->
  ?watchdog_s:float ->
  ?max_ticks:int ->
  dir:string ->
  node_exe:string ->
  spec:Doall.Spec.t ->
  sched:Simkit.Campaign.Async.t ->
  unit ->
  config
(** Defaults: tick 5 ms, watchdog 90 s, max_ticks 20_000. *)

type node_report = {
  nr_pid : int;
  nr_incarnations : int;  (** 1 + respawns *)
  nr_exit : int option;  (** [None] only for a pid killed and never respawned *)
  nr_counters : (string * int) list;
      (** the node's terminal counter bag; [[]] if it never terminated *)
}

type report = {
  ok : bool;  (** conjunction of the four oracles below *)
  completed : bool;  (** every node not left dead by the schedule exited 0 *)
  no_lost_unit : bool;  (** every unit in [0,n) performed by someone *)
  detector_complete : bool;
      (** every kill window long enough for the timeout to fire produced a
          suspicion of the victim by a survivor *)
  bounded_dup : bool;  (** max multiplicity <= t + restarts *)
  units_covered : int;
  max_multiplicity : int;
  total_work : int;
  kills : int;
  restarts : int;
  wall_s : float;
  watchdog_fired : bool;
  nodes : node_report list;
  spans : Dhw_util.Spanfile.span list;  (** merged across pids/incarnations *)
  detect_hist : Dhw_util.Hist.t;
      (** kill tick → earliest surviving suspicion, in ticks *)
  recover_hist : Dhw_util.Hist.t;
      (** suspicion → retraction latency (false-suspicion episodes), ticks *)
}

val counter : (string * int) list -> string -> int
(** Lookup with default 0. *)

val run : config -> report
(** Execute the fleet to quiescence (all expected nodes exited, or
    watchdog). Blocking; uses SIGKILL, [waitpid] and the filesystem under
    [config.dir] only. *)
