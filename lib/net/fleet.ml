(* The asynchronous fleet runner: spawner, chaos-schedule enforcer and
   collector — everything the orchestrator still is once the control
   plane is gone.

   Unlike [Orchestrator] (the round-lockstep mode), this runner never
   touches protocol traffic: nodes exchange datagrams and heartbeats
   peer-to-peer and detect failures organically. The runner's whole job
   is to (1) spawn one [dhw_node --async] per pid, (2) enforce the
   schedule's crash entries as real SIGKILLs and its restart entries as
   [--recover] respawns at the prescribed ticks, (3) reap children under
   a watchdog, and (4) collect the per-node traces, checkpoints and
   result files into a report judged by the same oracle family the
   async fuzzer uses (completion, no-lost-unit, detector completeness,
   bounded duplication). *)

module C = Simkit.Campaign
module Sf = Dhw_util.Spanfile
module Hist = Dhw_util.Hist

type config = {
  dir : string;
  node_exe : string;
  spec : Doall.Spec.t;
  sched : C.Async.t;
  tick_ms : int;
  watchdog_s : float;
  max_ticks : int;
}

let config ?(tick_ms = 5) ?(watchdog_s = 90.) ?(max_ticks = 20_000) ~dir
    ~node_exe ~spec ~sched () =
  if tick_ms < 1 then invalid_arg "Fleet.config: tick_ms < 1";
  { dir; node_exe; spec; sched; tick_ms; watchdog_s; max_ticks }

type node_report = {
  nr_pid : int;
  nr_incarnations : int;
  nr_exit : int option;  (* None: killed and never restarted *)
  nr_counters : (string * int) list;  (* empty if no result file *)
}

type report = {
  ok : bool;
  completed : bool;  (* every expected node exited 0 *)
  no_lost_unit : bool;  (* every unit in [0,n) performed by someone *)
  detector_complete : bool;
  bounded_dup : bool;
  units_covered : int;
  max_multiplicity : int;
  total_work : int;
  kills : int;
  restarts : int;
  wall_s : float;
  watchdog_fired : bool;
  nodes : node_report list;
  spans : Sf.span list;  (* merged, all pids and incarnations *)
  detect_hist : Hist.t;  (* kill -> first surviving suspicion, ticks *)
  recover_hist : Hist.t;  (* suspicion -> retraction (false susp.), ticks *)
}

let counter r k = try List.assoc k r with Not_found -> 0

(* ---- child process management ------------------------------------------ *)

type child = {
  pid : int;  (* protocol pid *)
  mutable inc : int;
  mutable os_pid : int option;  (* running child, if any *)
  mutable exit_code : int option;  (* last exit status observed *)
  mutable killed : bool;  (* SIGKILLed by the schedule, not yet respawned *)
}

let spawn cfg ~pid ~inc ~recover ~epoch_ms =
  let log =
    Filename.concat cfg.dir (Printf.sprintf "node-p%d-i%d.log" pid inc)
  in
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let argv =
    [
      cfg.node_exe;
      "--async";
      "--dir";
      cfg.dir;
      "--pid";
      string_of_int pid;
      "--units";
      string_of_int (Doall.Spec.n cfg.spec);
      "--procs";
      string_of_int (Doall.Spec.processes cfg.spec);
      "--plan";
      Filename.concat cfg.dir "schedule.txt";
      "--tick-ms";
      string_of_int cfg.tick_ms;
      "--epoch-ms";
      Printf.sprintf "%.3f" epoch_ms;
      "--incarnation";
      string_of_int inc;
      "--max-ticks";
      string_of_int cfg.max_ticks;
    ]
    @ (if recover then [ "--recover" ] else [])
  in
  let os_pid =
    Unix.create_process cfg.node_exe (Array.of_list argv) Unix.stdin fd fd
  in
  Unix.close fd;
  os_pid

(* ---- oracle evaluation over the merged trace --------------------------- *)

let eval_traces cfg ~kill_windows spans =
  let n = Doall.Spec.n cfg.spec in
  let mult = Array.make n 0 in
  List.iter
    (fun (s : Sf.span) ->
      if s.Sf.name = "work" then
        match List.assoc_opt "unit" s.Sf.args with
        | Some (Dhw_util.Jsonw.Int u) when u >= 0 && u < n ->
            mult.(u) <- mult.(u) + 1
        | _ -> ())
    spans;
  let units_covered = Array.fold_left (fun a m -> if m > 0 then a + 1 else a) 0 mult in
  let max_multiplicity = Array.fold_left max 0 mult in
  let total_work = Array.fold_left ( + ) 0 mult in
  (* detector completeness: for every kill window long enough for the
     timeout to fire, some survivor logged a suspicion of the victim
     inside (or shortly after) the window *)
  let suspected_in victim from_ to_ =
    List.exists
      (fun (s : Sf.span) ->
        s.Sf.name = "suspect"
        && s.Sf.pid <> victim
        && s.Sf.round >= from_
        && s.Sf.round <= to_
        && List.assoc_opt "peer" s.Sf.args = Some (Dhw_util.Jsonw.Int victim))
      spans
  in
  let detector_complete =
    List.for_all
      (fun (victim, from_, to_, min_window) ->
        to_ - from_ < min_window || suspected_in victim from_ (to_ + min_window))
      kill_windows
  in
  (units_covered, max_multiplicity, total_work, detector_complete)

(* detection/recovery latency histograms from the suspect/unsuspect spans *)
let latency_hists ~kill_windows spans =
  let detect = Hist.create () and recover = Hist.create () in
  let suspects =
    List.filter_map
      (fun (s : Sf.span) ->
        match (s.Sf.name, List.assoc_opt "peer" s.Sf.args) with
        | "suspect", Some (Dhw_util.Jsonw.Int p) -> Some (s.Sf.pid, p, s.Sf.round)
        | _ -> None)
      spans
  in
  let unsuspects =
    List.filter_map
      (fun (s : Sf.span) ->
        match (s.Sf.name, List.assoc_opt "peer" s.Sf.args) with
        | "unsuspect", Some (Dhw_util.Jsonw.Int p) -> Some (s.Sf.pid, p, s.Sf.round)
        | _ -> None)
      spans
  in
  (* kill -> earliest suspicion by any survivor *)
  List.iter
    (fun (victim, from_, _, _) ->
      let firsts =
        List.filter_map
          (fun (o, p, tick) ->
            if p = victim && o <> victim && tick >= from_ then Some tick else None)
          suspects
      in
      match firsts with
      | [] -> ()
      | ts -> Hist.record detect (List.fold_left min max_int ts - from_))
    kill_windows;
  (* suspicion episode -> retraction, per (observer, peer) *)
  List.iter
    (fun (o, p, t_s) ->
      let retractions =
        List.filter_map
          (fun (o', p', t_u) ->
            if o' = o && p' = p && t_u >= t_s then Some t_u else None)
          unsuspects
      in
      match retractions with
      | [] -> ()
      | ts -> Hist.record recover (List.fold_left min max_int ts - t_s))
    suspects;
  (detect, recover)

(* ---- the run ------------------------------------------------------------ *)

let run cfg =
  let t = Doall.Spec.processes cfg.spec in
  if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755;
  (* the schedule is the single source of truth for nodes and runner both *)
  let sched_path = Filename.concat cfg.dir "schedule.txt" in
  let oc = open_out sched_path in
  output_string oc (C.Async.print cfg.sched);
  close_out oc;
  let epoch_ms = Unix.gettimeofday () *. 1000.0 in
  let tick_of_wall () =
    int_of_float ((Unix.gettimeofday () *. 1000.0 -. epoch_ms) /. float_of_int cfg.tick_ms)
  in
  let children =
    Array.init t (fun pid ->
        { pid; inc = 0; os_pid = None; exit_code = None; killed = false })
  in
  Array.iter
    (fun c -> c.os_pid <- Some (spawn cfg ~pid:c.pid ~inc:0 ~recover:false ~epoch_ms))
    children;
  let kills =
    ref
      (List.sort compare
         (List.map (fun c -> (c.C.Async.at, c.C.Async.victim)) cfg.sched.C.Async.crashes))
  in
  let restarts =
    ref
      (List.sort compare
         (List.map (fun c -> (c.C.Async.at, c.C.Async.victim)) cfg.sched.C.Async.restarts))
  in
  let n_kills = List.length !kills and n_restarts = List.length !restarts in
  let watchdog_fired = ref false in
  let deadline = Unix.gettimeofday () +. cfg.watchdog_s in
  let reap () =
    Array.iter
      (fun c ->
        match c.os_pid with
        | None -> ()
        | Some os -> (
            match Unix.waitpid [ Unix.WNOHANG ] os with
            | 0, _ -> ()
            | _, Unix.WEXITED code ->
                c.os_pid <- None;
                c.exit_code <- Some code
            | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
                c.os_pid <- None;
                c.exit_code <- Some 137
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                c.os_pid <- None))
      children
  in
  let enforce now =
    let due, later = List.partition (fun (at, _) -> at <= now) !kills in
    kills := later;
    List.iter
      (fun (_, victim) ->
        let c = children.(victim) in
        (match c.os_pid with
        | Some os -> ( try Unix.kill os Sys.sigkill with Unix.Unix_error _ -> ())
        | None -> ());
        c.killed <- true)
      due;
    let due, later = List.partition (fun (at, _) -> at <= now) !restarts in
    restarts := later;
    List.iter
      (fun (_, victim) ->
        let c = children.(victim) in
        (* only respawn something actually down; reap first so a SIGKILL
           issued moments ago has been collected *)
        if c.os_pid = None || c.killed then begin
          (match c.os_pid with
          | Some os ->
              (try Unix.kill os Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] os) with Unix.Unix_error _ -> ())
          | None -> ());
          c.inc <- c.inc + 1;
          c.killed <- false;
          c.os_pid <-
            Some (spawn cfg ~pid:c.pid ~inc:c.inc ~recover:true ~epoch_ms)
        end)
      due
  in
  let all_settled () =
    !kills = [] && !restarts = []
    && Array.for_all (fun c -> c.os_pid = None) children
  in
  let rec drive () =
    reap ();
    enforce (tick_of_wall ());
    if all_settled () then ()
    else if Unix.gettimeofday () > deadline then begin
      watchdog_fired := true;
      Array.iter
        (fun c ->
          match c.os_pid with
          | Some os -> ( try Unix.kill os Sys.sigkill with Unix.Unix_error _ -> ())
          | None -> ())
        children;
      reap ()
    end
    else begin
      (try ignore (Unix.select [] [] [] 0.01) with Unix.Unix_error _ -> ());
      drive ()
    end
  in
  drive ();
  let wall_s = (Unix.gettimeofday () *. 1000.0 -. epoch_ms) /. 1000.0 in
  (* ---- collection ------------------------------------------------------ *)
  let spans =
    let files = Sys.readdir cfg.dir in
    Array.to_list files
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "trace-"
           && Filename.check_suffix f ".jsonl")
    |> List.sort compare
    |> List.map (fun f ->
           match Sf.read_file (Filename.concat cfg.dir f) with
           | Ok { Sf.spans; _ } -> spans
           | Error _ -> [])
    |> Sf.merge
  in
  let nodes =
    Array.to_list children
    |> List.map (fun c ->
           let counters =
             match
               let p = Async_node.result_path ~dir:cfg.dir ~pid:c.pid in
               if Sys.file_exists p then (
                 let ic = open_in_bin p in
                 let len = in_channel_length ic in
                 let s = really_input_string ic len in
                 close_in ic;
                 Some s)
               else None
             with
             | Some s -> ( try Codec.decode_counters s with Wire.Decode _ -> [])
             | None -> []
           in
           {
             nr_pid = c.pid;
             nr_incarnations = c.inc + 1;
             nr_exit = c.exit_code;
             nr_counters = counters;
           })
  in
  (* ---- oracles --------------------------------------------------------- *)
  (* a node killed and never respawned is excused from terminating; every
     other node must have exited 0 *)
  let completed =
    (not !watchdog_fired)
    && Array.for_all
         (fun c -> c.killed || c.exit_code = Some 0)
         children
  in
  (* kill windows: victim dead from its kill tick until its restart tick
     (or the end of the run). A window must exceed the detector timeout
     plus slack before completeness is demanded of it. *)
  let end_tick = tick_of_wall () in
  let min_window = 240 in
  let kill_windows =
    List.map
      (fun (k : C.Async.crash) ->
        let until =
          List.fold_left
            (fun acc (r : C.Async.crash) ->
              if r.C.Async.victim = k.C.Async.victim && r.C.Async.at > k.C.Async.at
              then min acc r.C.Async.at
              else acc)
            end_tick cfg.sched.C.Async.restarts
        in
        (k.C.Async.victim, k.C.Async.at, until, min_window))
      cfg.sched.C.Async.crashes
  in
  let units_covered, max_multiplicity, total_work, detector_complete =
    eval_traces cfg ~kill_windows spans
  in
  let no_lost_unit = units_covered = Doall.Spec.n cfg.spec in
  (* per-unit multiplicity below the incarnation count (Recovery's bound) *)
  let bounded_dup = max_multiplicity <= t + n_restarts in
  let detect_hist, recover_hist = latency_hists ~kill_windows spans in
  {
    ok = completed && no_lost_unit && detector_complete && bounded_dup;
    completed;
    no_lost_unit;
    detector_complete;
    bounded_dup;
    units_covered;
    max_multiplicity;
    total_work;
    kills = n_kills;
    restarts = n_restarts;
    wall_s;
    watchdog_fired = !watchdog_fired;
    nodes;
    spans;
    detect_hist;
    recover_hist;
  }
