let magic = "DHWN"
let version = 1
let max_frame_len = Wire.max_string_len

type envelope = { src : int; sent_at : int; payload : string }
type send = { dst : int; payload : string; show : string }

type t =
  | Hello of {
      pid : int;
      protocol : string;
      n : int;
      t : int;
      incarnation : int;
      wakeup : int option;
    }
  | Welcome of { round : int }
  | Round_start of { round : int; inbox : envelope list }
  | Step_result of {
      round : int;
      sends : send list;
      work : int list;
      terminate : bool;
      wakeup : int option;
      persists : int;
    }
  | Heartbeat of { tick : int }
  | Shutdown

(* Tags are part of the wire format; never renumber, only append. *)
let tag = function
  | Hello _ -> 1
  | Welcome _ -> 2
  | Round_start _ -> 3
  | Step_result _ -> 4
  | Heartbeat _ -> 5
  | Shutdown -> 6

let put_envelope b (e : envelope) =
  Wire.put_int b e.src;
  Wire.put_int b e.sent_at;
  Wire.put_string b e.payload

let get_envelope r =
  let src = Wire.get_int r "envelope.src" in
  let sent_at = Wire.get_int r "envelope.sent_at" in
  let payload = Wire.get_string r "envelope.payload" in
  { src; sent_at; payload }

let put_send b (s : send) =
  Wire.put_int b s.dst;
  Wire.put_string b s.payload;
  Wire.put_string b s.show

let get_send r =
  let dst = Wire.get_int r "send.dst" in
  let payload = Wire.get_string r "send.payload" in
  let show = Wire.get_string r "send.show" in
  { dst; payload; show }

let encode_body f =
  let b = Buffer.create 64 in
  Wire.put_u8 b (tag f);
  (match f with
  | Hello { pid; protocol; n; t; incarnation; wakeup } ->
      Buffer.add_string b magic;
      Wire.put_u8 b version;
      Wire.put_int b pid;
      Wire.put_string b protocol;
      Wire.put_int b n;
      Wire.put_int b t;
      Wire.put_int b incarnation;
      Wire.put_opt_int b wakeup
  | Welcome { round } -> Wire.put_int b round
  | Round_start { round; inbox } ->
      Wire.put_int b round;
      Wire.put_list b put_envelope inbox
  | Step_result { round; sends; work; terminate; wakeup; persists } ->
      Wire.put_int b round;
      Wire.put_list b put_send sends;
      Wire.put_list b Wire.put_int work;
      Wire.put_bool b terminate;
      Wire.put_opt_int b wakeup;
      Wire.put_int b persists
  | Heartbeat { tick } -> Wire.put_int b tick
  | Shutdown -> ());
  Buffer.contents b

let encode f =
  let body = encode_body f in
  let b = Buffer.create (String.length body + 4) in
  Wire.put_u32 b (String.length body);
  Buffer.add_string b body;
  Buffer.contents b

let decode_body body =
  try
    let r = Wire.reader body in
    let f =
      match Wire.get_u8 r "frame.tag" with
      | 1 ->
          let got_magic = Wire.get_raw r 4 "hello.magic" in
          if got_magic <> magic then
            raise
              (Wire.Decode
                 (Printf.sprintf "hello: bad magic %S (want %S)" got_magic magic));
          let v = Wire.get_u8 r "hello.version" in
          if v <> version then
            raise
              (Wire.Decode
                 (Printf.sprintf "hello: protocol version %d, this build speaks %d"
                    v version));
          let pid = Wire.get_int r "hello.pid" in
          let protocol = Wire.get_string r "hello.protocol" in
          let n = Wire.get_int r "hello.n" in
          let t = Wire.get_int r "hello.t" in
          let incarnation = Wire.get_int r "hello.incarnation" in
          let wakeup = Wire.get_opt_int r "hello.wakeup" in
          Wire.expect_end r "hello";
          Hello { pid; protocol; n; t; incarnation; wakeup }
      | 2 ->
          let round = Wire.get_int r "welcome.round" in
          Wire.expect_end r "welcome";
          Welcome { round }
      | 3 ->
          let round = Wire.get_int r "round-start.round" in
          let inbox = Wire.get_list r get_envelope "round-start.inbox" in
          Wire.expect_end r "round-start";
          Round_start { round; inbox }
      | 4 ->
          let round = Wire.get_int r "step-result.round" in
          let sends = Wire.get_list r get_send "step-result.sends" in
          let work =
            Wire.get_list r (fun r -> Wire.get_int r "step-result.work")
              "step-result.work"
          in
          let terminate = Wire.get_bool r "step-result.terminate" in
          let wakeup = Wire.get_opt_int r "step-result.wakeup" in
          let persists = Wire.get_int r "step-result.persists" in
          Wire.expect_end r "step-result";
          Step_result { round; sends; work; terminate; wakeup; persists }
      | 5 ->
          let tick = Wire.get_int r "heartbeat.tick" in
          Wire.expect_end r "heartbeat";
          Heartbeat { tick }
      | 6 ->
          Wire.expect_end r "shutdown";
          Shutdown
      | t -> raise (Wire.Decode (Printf.sprintf "unknown frame tag %d" t))
    in
    Ok f
  with Wire.Decode m -> Error m

let decode s =
  try
    let r = Wire.reader s in
    let len = Wire.get_u32 r "frame.length" in
    if len > max_frame_len then
      Error
        (Printf.sprintf "oversized frame: length prefix %d exceeds cap %d" len
           max_frame_len)
    else if String.length s - 4 < len then
      Error
        (Printf.sprintf "truncated frame: length prefix %d, %d body byte(s)" len
           (String.length s - 4))
    else if String.length s - 4 > len then
      Error
        (Printf.sprintf "trailing garbage: length prefix %d, %d body byte(s)" len
           (String.length s - 4))
    else decode_body (String.sub s 4 len)
  with Wire.Decode m -> Error m

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Hello { pid; protocol; n; t; incarnation; wakeup } ->
      Format.fprintf ppf "hello pid=%d proto=%s n=%d t=%d inc=%d wakeup=%s" pid
        protocol n t incarnation
        (match wakeup with Some w -> string_of_int w | None -> "-")
  | Welcome { round } -> Format.fprintf ppf "welcome round=%d" round
  | Round_start { round; inbox } ->
      Format.fprintf ppf "round-start r=%d inbox=%d" round (List.length inbox)
  | Step_result { round; sends; work; terminate; wakeup; persists } ->
      Format.fprintf ppf
        "step-result r=%d sends=%d work=%d terminate=%b wakeup=%s persists=%d"
        round (List.length sends) (List.length work) terminate
        (match wakeup with Some w -> string_of_int w | None -> "-")
        persists
  | Heartbeat { tick } -> Format.fprintf ppf "heartbeat tick=%d" tick
  | Shutdown -> Format.fprintf ppf "shutdown"
