module Ck = Doall.Ckpt_script

let to_string put v =
  let b = Buffer.create 16 in
  put b v;
  Buffer.contents b

let of_string get s =
  let r = Wire.reader s in
  let v = get r in
  Wire.expect_end r "payload";
  v

let put_ord b = function
  | Ck.Partial c ->
      Wire.put_u8 b 0;
      Wire.put_int b c
  | Ck.Full (c, g) ->
      Wire.put_u8 b 1;
      Wire.put_int b c;
      Wire.put_int b g

let get_ord r =
  match Wire.get_u8 r "ord.tag" with
  | 0 -> Ck.Partial (Wire.get_int r "ord.partial")
  | 1 ->
      let c = Wire.get_int r "ord.full.c" in
      let g = Wire.get_int r "ord.full.g" in
      Ck.Full (c, g)
  | t -> raise (Wire.Decode (Printf.sprintf "ord: unknown tag %d" t))

let put_last b = function
  | Ck.No_msg -> Wire.put_u8 b 0
  | Ck.Last_ord { ord; src } ->
      Wire.put_u8 b 1;
      put_ord b ord;
      Wire.put_int b src

let get_last r =
  match Wire.get_u8 r "last.tag" with
  | 0 -> Ck.No_msg
  | 1 ->
      let ord = get_ord r in
      let src = Wire.get_int r "last.src" in
      Ck.Last_ord { ord; src }
  | t -> raise (Wire.Decode (Printf.sprintf "last: unknown tag %d" t))

let encode_ord = to_string put_ord
let decode_ord = of_string get_ord
let encode_last = to_string put_last
let decode_last = of_string get_last

let put_b b = function
  | Doall.Protocol_b.Ord o ->
      Wire.put_u8 b 0;
      put_ord b o
  | Doall.Protocol_b.Go_ahead -> Wire.put_u8 b 1

let get_b r =
  match Wire.get_u8 r "bmsg.tag" with
  | 0 -> Doall.Protocol_b.Ord (get_ord r)
  | 1 -> Doall.Protocol_b.Go_ahead
  | t -> raise (Wire.Decode (Printf.sprintf "bmsg: unknown tag %d" t))

let encode_b = to_string put_b
let decode_b = of_string get_b

let encode_rmsg enc = function
  | Doall.Recovery.Payload m ->
      let b = Buffer.create 16 in
      Wire.put_u8 b 0;
      Wire.put_string b (enc m);
      Buffer.contents b
  | Doall.Recovery.Announce -> to_string Wire.put_u8 1
  | Doall.Recovery.Transfer l ->
      let b = Buffer.create 16 in
      Wire.put_u8 b 2;
      put_last b l;
      Buffer.contents b

let decode_rmsg dec s =
  let r = Wire.reader s in
  let v =
    match Wire.get_u8 r "rmsg.tag" with
    | 0 -> Doall.Recovery.Payload (dec (Wire.get_string r "rmsg.payload"))
    | 1 -> Doall.Recovery.Announce
    | 2 -> Doall.Recovery.Transfer (get_last r)
    | t -> raise (Wire.Decode (Printf.sprintf "rmsg: unknown tag %d" t))
  in
  Wire.expect_end r "rmsg";
  v
