module Ck = Doall.Ckpt_script

let to_string put v =
  let b = Buffer.create 16 in
  put b v;
  Buffer.contents b

let of_string get s =
  let r = Wire.reader s in
  let v = get r in
  Wire.expect_end r "payload";
  v

let put_ord b = function
  | Ck.Partial c ->
      Wire.put_u8 b 0;
      Wire.put_int b c
  | Ck.Full (c, g) ->
      Wire.put_u8 b 1;
      Wire.put_int b c;
      Wire.put_int b g

let get_ord r =
  match Wire.get_u8 r "ord.tag" with
  | 0 -> Ck.Partial (Wire.get_int r "ord.partial")
  | 1 ->
      let c = Wire.get_int r "ord.full.c" in
      let g = Wire.get_int r "ord.full.g" in
      Ck.Full (c, g)
  | t -> raise (Wire.Decode (Printf.sprintf "ord: unknown tag %d" t))

let put_last b = function
  | Ck.No_msg -> Wire.put_u8 b 0
  | Ck.Last_ord { ord; src } ->
      Wire.put_u8 b 1;
      put_ord b ord;
      Wire.put_int b src

let get_last r =
  match Wire.get_u8 r "last.tag" with
  | 0 -> Ck.No_msg
  | 1 ->
      let ord = get_ord r in
      let src = Wire.get_int r "last.src" in
      Ck.Last_ord { ord; src }
  | t -> raise (Wire.Decode (Printf.sprintf "last: unknown tag %d" t))

let encode_ord = to_string put_ord
let decode_ord = of_string get_ord
let encode_last = to_string put_last
let decode_last = of_string get_last

let put_b b = function
  | Doall.Protocol_b.Ord o ->
      Wire.put_u8 b 0;
      put_ord b o
  | Doall.Protocol_b.Go_ahead -> Wire.put_u8 b 1

let get_b r =
  match Wire.get_u8 r "bmsg.tag" with
  | 0 -> Doall.Protocol_b.Ord (get_ord r)
  | 1 -> Doall.Protocol_b.Go_ahead
  | t -> raise (Wire.Decode (Printf.sprintf "bmsg: unknown tag %d" t))

let encode_b = to_string put_b
let decode_b = of_string get_b

let encode_rmsg enc = function
  | Doall.Recovery.Payload m ->
      let b = Buffer.create 16 in
      Wire.put_u8 b 0;
      Wire.put_string b (enc m);
      Buffer.contents b
  | Doall.Recovery.Announce -> to_string Wire.put_u8 1
  | Doall.Recovery.Transfer l ->
      let b = Buffer.create 16 in
      Wire.put_u8 b 2;
      put_last b l;
      Buffer.contents b

let decode_rmsg dec s =
  let r = Wire.reader s in
  let v =
    match Wire.get_u8 r "rmsg.tag" with
    | 0 -> Doall.Recovery.Payload (dec (Wire.get_string r "rmsg.payload"))
    | 1 -> Doall.Recovery.Announce
    | 2 -> Doall.Recovery.Transfer (get_last r)
    | t -> raise (Wire.Decode (Printf.sprintf "rmsg: unknown tag %d" t))
  in
  Wire.expect_end r "rmsg";
  v

(* --- Async deployment-mode peer datagrams ------------------------------- *)

(* The driver-level envelope around [Asim.Link]'s wire alphabet. Sequence
   numbers on the wire are RAW (as the sender's Link emitted them, i.e.
   restarting at 0 in every incarnation); the receiver namespaces them by
   the sender's incarnation before handing them to its own Link, and an
   ack carries the incarnation it targets so a respawned sender can
   discard acks meant for its dead predecessor. *)

type peer_msg =
  | P_data of { src : int; inc : int; seq : int; ord : Ck.ord }
  | P_ack of { src : int; inc : int; target_inc : int; seq : int }
  | P_beat of { src : int; inc : int }

let put_peer b = function
  | P_data { src; inc; seq; ord } ->
      Wire.put_u8 b 1;
      Wire.put_int b src;
      Wire.put_int b inc;
      Wire.put_int b seq;
      put_ord b ord
  | P_ack { src; inc; target_inc; seq } ->
      Wire.put_u8 b 2;
      Wire.put_int b src;
      Wire.put_int b inc;
      Wire.put_int b target_inc;
      Wire.put_int b seq
  | P_beat { src; inc } ->
      Wire.put_u8 b 3;
      Wire.put_int b src;
      Wire.put_int b inc

let get_peer r =
  match Wire.get_u8 r "peer.tag" with
  | 1 ->
      let src = Wire.get_int r "peer.data.src" in
      let inc = Wire.get_int r "peer.data.inc" in
      let seq = Wire.get_int r "peer.data.seq" in
      let ord = get_ord r in
      P_data { src; inc; seq; ord }
  | 2 ->
      let src = Wire.get_int r "peer.ack.src" in
      let inc = Wire.get_int r "peer.ack.inc" in
      let target_inc = Wire.get_int r "peer.ack.target_inc" in
      let seq = Wire.get_int r "peer.ack.seq" in
      P_ack { src; inc; target_inc; seq }
  | 3 ->
      let src = Wire.get_int r "peer.beat.src" in
      let inc = Wire.get_int r "peer.beat.inc" in
      P_beat { src; inc }
  | t -> raise (Wire.Decode (Printf.sprintf "peer: unknown tag %d" t))

let encode_peer = to_string put_peer
let decode_peer = of_string get_peer

(* A node's terminal result: a flat self-describing counter bag, so the
   collector and the report writer never chase field order. *)

let encode_counters kvs =
  let b = Buffer.create 64 in
  Wire.put_int b (List.length kvs);
  List.iter
    (fun (k, v) ->
      Wire.put_string b k;
      Wire.put_int b v)
    kvs;
  Buffer.contents b

let decode_counters s =
  let r = Wire.reader s in
  let n = Wire.get_int r "counters.len" in
  if n < 0 || n > 4096 then
    raise (Wire.Decode (Printf.sprintf "counters: bad length %d" n));
  let kvs =
    List.init n (fun i ->
        let k = Wire.get_string r (Printf.sprintf "counters.%d.key" i) in
        let v = Wire.get_int r (Printf.sprintf "counters.%d.val" i) in
        (k, v))
  in
  Wire.expect_end r "counters";
  kvs
