exception Timeout of string
exception Closed of string

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected unix:<path> or tcp:<host>:<port>" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error "unix address: empty path" else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "tcp address %S: missing port" rest)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port_s = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port_s with
              | Some p when p >= 0 && p < 65536 ->
                  if host = "" then Error "tcp address: empty host" else Ok (Tcp (host, p))
              | _ -> Error (Printf.sprintf "tcp address: bad port %S" port_s)))
      | _ -> Error (Printf.sprintf "address scheme %S: expected unix or tcp" scheme))

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type stats = {
  mutable connects : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

let stats () =
  {
    connects = 0;
    retries = 0;
    timeouts = 0;
    frames_sent = 0;
    frames_received = 0;
    bytes_sent = 0;
    bytes_received = 0;
  }

let sockaddr_of = function
  | Unix_sock p -> Unix.ADDR_UNIX p
  | Tcp (h, p) ->
      let ip =
        try Unix.inet_addr_of_string h
        with Failure _ -> (
          match Unix.getaddrinfo h "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "getaddrinfo", h)))
      in
      Unix.ADDR_INET (ip, p)

let domain_of = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let listen addr =
  (match addr with
  | Unix_sock p when Sys.file_exists p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | _ -> ());
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind fd (sockaddr_of addr);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let bound_addr addr fd =
  match addr with
  | Unix_sock _ -> addr
  | Tcp (h, _) -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp (h, port)
      | _ -> addr)

let bump_timeout = function None -> () | Some s -> s.timeouts <- s.timeouts + 1

(* Wait for readability/writability with an absolute deadline. *)
let wait_fd ?stats ~what ~read fd deadline =
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then (
      bump_timeout stats;
      raise (Timeout what));
    let r, w, _ =
      try
        if read then Unix.select [ fd ] [] [] left
        else Unix.select [] [ fd ] [] left
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if r = [] && w = [] then go ()
  in
  go ()

let accept ?(timeout_s = 30.) ?stats fd =
  let deadline = Unix.gettimeofday () +. timeout_s in
  wait_fd ?stats ~what:"accept" ~read:true fd deadline;
  let conn, _ = Unix.accept fd in
  (match stats with None -> () | Some s -> s.connects <- s.connects + 1);
  conn

let connect_once addr timeout_s =
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (try Unix.connect fd (sockaddr_of addr)
     with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
       let deadline = Unix.gettimeofday () +. timeout_s in
       wait_fd ~what:"connect" ~read:false fd deadline;
       (match Unix.getsockopt_error fd with
       | None -> ()
       | Some err -> raise (Unix.Unix_error (err, "connect", addr_to_string addr))));
    Unix.clear_nonblock fd;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?stats ?prng ?(attempts = 8) ?(backoff_s = 0.05)
    ?(max_backoff_s = 1.0) ?(timeout_s = 10.) addr =
  (* Retry jitter comes from the run seed when the caller threads a
     [Prng.t] through (a [Prng.stream] of the schedule seed, keyed by pid,
     like the worker pool) — the sleep pattern then replays exactly.
     Without one, fall back to a local hash: never the global [Random]
     state. *)
  let draw =
    match prng with
    | Some g -> fun () -> float_of_int (Dhw_util.Prng.int g 65_536) /. 65536.0
    | None ->
        let seed =
          ref (Hashtbl.hash (addr_to_string addr, Unix.getpid ()) land 0xFFFF)
        in
        fun () ->
          (* xorshift-ish local PRNG: no global Random state disturbed. *)
          seed := (!seed * 1103515245) + 12345 land 0x3FFFFFFF;
          float_of_int (!seed land 0xFFFF) /. 65536.0
  in
  let jitter delay = delay *. (0.5 +. draw ()) in
  let rec go i delay =
    match connect_once addr timeout_s with
    | fd ->
        (match stats with None -> () | Some s -> s.connects <- s.connects + 1);
        fd
    | exception e ->
        (match e with Timeout _ -> bump_timeout stats | _ -> ());
        if i >= attempts then raise e
        else (
          (match stats with None -> () | Some s -> s.retries <- s.retries + 1);
          (try ignore (Unix.select [] [] [] (jitter delay)) with Unix.Unix_error _ -> ());
          go (i + 1) (Float.min (delay *. 2.) max_backoff_s))
  in
  go 1 backoff_s

let write_all ?stats ~timeout_s fd data =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    wait_fd ?stats ~what:"send" ~read:false fd deadline;
    match Unix.write_substring fd data !pos (len - !pos) with
    | 0 -> raise (Closed "send: zero-length write")
    | n -> pos := !pos + n
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise (Closed "send: peer gone")
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  done;
  match stats with None -> () | Some s -> s.bytes_sent <- s.bytes_sent + len

let read_exact ?stats ~what ~timeout_s fd len =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    wait_fd ?stats ~what ~read:true fd deadline;
    match Unix.read fd buf !pos (len - !pos) with
    | 0 -> raise (Closed (what ^ ": eof"))
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise (Closed (what ^ ": reset"))
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  done;
  (match stats with None -> () | Some s -> s.bytes_received <- s.bytes_received + len);
  Bytes.unsafe_to_string buf

let send_frame ?stats ?(timeout_s = 30.) fd frame =
  let data = Frame.encode frame in
  write_all ?stats ~timeout_s fd data;
  match stats with None -> () | Some s -> s.frames_sent <- s.frames_sent + 1

let recv_frame ?stats ?(timeout_s = 30.) fd =
  let hdr = read_exact ?stats ~what:"recv header" ~timeout_s fd 4 in
  let len =
    let r = Wire.reader hdr in
    Wire.get_u32 r "frame.len"
  in
  if len > Frame.max_frame_len then
    failwith (Printf.sprintf "recv: oversized frame length %d" len);
  let body = read_exact ?stats ~what:"recv body" ~timeout_s fd len in
  match Frame.decode_body body with
  | Ok f ->
      (match stats with None -> () | Some s -> s.frames_received <- s.frames_received + 1);
      f
  | Error e -> failwith ("recv: " ^ e)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()
