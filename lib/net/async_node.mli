(** The asynchronous deployment-mode node driver: one OS process running
    the exact state machines the simulator fuzzes — [Asim.Link.harden]
    (acks, retransmission, dedup, heartbeat ◇P detection) wrapped around
    [Asim.Async_protocol_a] and driven by [Asim.Engine] — over a
    {!Mesh} of unix datagram sockets, with {!Chaos} applied to its own
    outgoing traffic.

    There is no control plane in the data path: peers exchange protocol
    messages and heartbeats directly, each node derives retirement
    verdicts from its own detector, and the orchestrator only spawns,
    kills and collects. Per incarnation the node appends a
    [trace-p<pid>-i<inc>.jsonl] span stream (flushed per line — a SIGKILL
    loses at most the current line), persists its best checkpoint
    knowledge through {!Ckpt}, and on clean termination writes an atomic
    [result-p<pid>.bin] counter bag. *)

type config = {
  dir : string;  (** run directory: sockets, checkpoints, traces, results *)
  pid : int;
  spec : Doall.Spec.t;
  incarnation : int;  (** 0 at first spawn, bumped per [--recover] respawn *)
  recover : bool;
      (** run [Async_protocol_a.aproc_recover] seeded from the on-disk
          checkpoint instead of the fresh state machine *)
  tick_ms : int;  (** wall-clock quantum one protocol tick maps to *)
  epoch_ms : float;
      (** fleet-global start (wall-clock ms): every node derives its tick
          counter from the same origin, so chaos windows and trace rounds
          line up across processes and incarnations *)
  plan : Chaos.plan;
  max_ticks : int;  (** stall bound; exceeded → exit 3 *)
  hb_period : int;
  hb_timeout : int;
  rto : int;
}

val config :
  ?incarnation:int ->
  ?recover:bool ->
  ?tick_ms:int ->
  ?plan:Chaos.plan ->
  ?max_ticks:int ->
  ?hb_period:int ->
  ?hb_timeout:int ->
  ?rto:int ->
  dir:string ->
  pid:int ->
  spec:Doall.Spec.t ->
  epoch_ms:float ->
  unit ->
  config
(** Defaults: incarnation 0, no recover, tick 5 ms, no chaos, max_ticks
    200_000, heartbeat period 10 / timeout 60 ticks, rto 16 ticks. *)

val result_path : dir:string -> pid:int -> string
val trace_path : dir:string -> pid:int -> inc:int -> string

val run : config -> int
(** Run to completion; returns the process exit code — [0] terminated
    (every unit known done, transport drained), [3] stalled past
    [max_ticks]. Either way the result file is written atomically before
    returning. *)
