let magic = "DHWC"
let version = 1

let path ~dir ~pid = Filename.concat dir (Printf.sprintf "%d.ckpt" pid)

let encode ~pid payload =
  let b = Buffer.create (String.length payload + 24) in
  Buffer.add_string b magic;
  Wire.put_u8 b version;
  Wire.put_int b pid;
  Wire.put_string b payload;
  Wire.put_u32 b (Wire.crc32 payload);
  Buffer.contents b

let decode ~pid s =
  try
    let r = Wire.reader s in
    if Wire.get_raw r 4 "ckpt.magic" <> magic then None
    else if Wire.get_u8 r "ckpt.version" <> version then None
    else if Wire.get_int r "ckpt.pid" <> pid then None
    else
      let payload = Wire.get_string r "ckpt.payload" in
      let crc = Wire.get_u32 r "ckpt.crc" in
      if Wire.remaining r <> 0 then None
      else if Wire.crc32 payload <> crc then None
      else Some payload
  with Wire.Decode _ -> None

let fsync_dir dir =
  (* Directory fsync makes the rename itself durable; some filesystems
     refuse it (EINVAL/EBADF), in which case the rename is still atomic,
     merely not yet guaranteed on stable media. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let save ~dir ~pid payload =
  let p = path ~dir ~pid in
  let tmp = p ^ ".tmp" and prev = p ^ ".prev" in
  let data = encode ~pid payload in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = Unix.write_substring fd data 0 (String.length data) in
      if n <> String.length data then
        raise (Unix.Unix_error (Unix.EIO, "write", tmp));
      Unix.fsync fd);
  (* Keep the displaced generation: a crash between the two renames leaves
     no current file but a valid .prev, and a later torn/corrupt current
     file still has a fallback. *)
  if Sys.file_exists p then Sys.rename p prev;
  Sys.rename tmp p;
  fsync_dir dir

let read_file p =
  match open_in_bin p with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

let load ~dir ~pid =
  let p = path ~dir ~pid in
  let try_file f =
    match read_file f with
    | None -> None
    | Some raw -> decode ~pid raw
    | exception _ -> None
  in
  match try_file p with Some v -> Some v | None -> try_file (p ^ ".prev")
