(* Node-to-node datagram mesh over unix-domain sockets.

   Every fleet member binds <dir>/p<pid>.sock (SOCK_DGRAM) and sends to its
   peers' paths directly — no connections, no orchestrator relay. Datagram
   semantics fit the asynchronous substrate exactly: message boundaries are
   preserved, a SIGKILLed peer just stops reading (sends to its stale path
   fail and count as loss, which is what death looks like on a wire), and a
   respawned incarnation rebinds the same path and is immediately
   reachable. Reliability is NOT this layer's job — the Asim.Link shim
   above provides acks, retransmission and dedup, same as in the
   simulator. *)

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable undeliverable : int;
      (* sends that failed because the peer's socket is gone or full —
         organic loss, distinct from chaos-injected loss *)
}

let stats () = { datagrams_sent = 0; datagrams_received = 0; undeliverable = 0 }

type t = {
  fd : Unix.file_descr;
  dir : string;
  me : int;
  st : stats;
  buf : Bytes.t;
}

let max_datagram = 65_000

let path ~dir ~pid = Filename.concat dir (Printf.sprintf "p%d.sock" pid)

let create ~dir ~pid =
  let p = path ~dir ~pid in
  (try Unix.unlink p with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_DGRAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX p);
  Unix.set_nonblock fd;
  { fd; dir; me = pid; st = stats (); buf = Bytes.create max_datagram }

let stats_of t = t.st

let send t ~dst payload =
  if String.length payload > max_datagram then
    invalid_arg "Mesh.send: datagram too large";
  let addr = Unix.ADDR_UNIX (path ~dir:t.dir ~pid:dst) in
  match
    Unix.sendto_substring t.fd payload 0 (String.length payload) [] addr
  with
  | _ ->
      t.st.datagrams_sent <- t.st.datagrams_sent + 1;
      true
  | exception
      Unix.Unix_error
        ( ( Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EWOULDBLOCK
          | Unix.ENOBUFS ),
          _,
          _ ) ->
      (* Dead peer (no socket / nobody reading) or a full queue: the
         message is lost, exactly as a crash-faulty network loses it. The
         hardening layer's retransmission owns recovery. *)
      t.st.undeliverable <- t.st.undeliverable + 1;
      false

(* One datagram, waiting up to [timeout_s] (<= 0 polls). [None] on
   timeout. EINTR and spurious wakeups retry within the deadline. *)
let recv t ~timeout_s =
  let deadline = Unix.gettimeofday () +. Float.max 0.0 timeout_s in
  let rec go () =
    match Unix.recvfrom t.fd t.buf 0 max_datagram [] with
    | len, _ ->
        t.st.datagrams_received <- t.st.datagrams_received + 1;
        Some (Bytes.sub_string t.buf 0 len)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then None
        else begin
          (match Unix.select [ t.fd ] [] [] left with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let close t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  try Unix.unlink (path ~dir:t.dir ~pid:t.me) with Unix.Unix_error _ -> ()
