(* One Do-All participant as a real OS process.

   Spawned by the net-run orchestrator, it connects back to the control
   plane, introduces itself with a Hello frame, and then executes the
   protocol in lockstep: each Round_start carries the round number and the
   pid's inbox, each Step_result carries the sends (with their human [show]
   strings for the orchestrator's trace), the work units, the termination
   flag, the next wakeup, and the number of stable-storage writes performed
   during the step. For the recovery-hardened protocols, every stable write
   is mirrored crash-atomically to an on-disk checkpoint file, which is what
   a restarted incarnation (--recover) reads back before rejoining. *)

module T = Simkit.Types
module Rec = Doall.Recovery
module Net = Dhw_net
module Sf = Dhw_util.Spanfile
module J = Dhw_util.Jsonw

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("dhw_node: " ^ s); exit 2) fmt

type args = {
  addr : Net.Transport.addr;
  pid : int;
  protocol : string;
  n : int;
  t : int;
  ckpt_dir : string;
  rejoin_rounds : int;
  incarnation : int;
  recover : bool;
  recover_at : int;
  io_timeout_s : float;
  trace_dir : string;  (* "" = tracing off *)
  seed : int64;  (* run seed: connect-retry jitter, chaos decisions *)
}

(* Per-incarnation span sink: trace-<pid>.jsonl in --trace-dir, opened in
   append mode so a respawned incarnation extends the same file. Every span
   line is flushed as written, so a SIGKILL loses at most the line in
   flight — the orchestrator's tolerant reader skips it. *)
let trace_oc : out_channel option ref = ref None

let open_trace a =
  match a.trace_dir with
  | "" -> ()
  | dir ->
      (try
         if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
       with Unix.Unix_error _ -> ());
      let path = Filename.concat dir (Printf.sprintf "trace-%d.jsonl" a.pid) in
      let fresh =
        (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0
      in
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      if fresh then
        Sf.write_header
          ~meta:[ ("pid", J.Int a.pid) ]
          ~source:(Printf.sprintf "node-%d" a.pid)
          oc;
      trace_oc := Some oc

let with_span a ~name ~round f =
  match !trace_oc with
  | None -> f ()
  | Some oc ->
      let t0 = Dhw_util.Clock.now_us () in
      let r = f () in
      let t1 = Dhw_util.Clock.now_us () in
      Sf.write_span oc
        {
          Sf.name;
          src = "node";
          pid = a.pid;
          inc = a.incarnation;
          round;
          ts_us = t0;
          dur_us = t1 -. t0;
          args = [];
        };
      r

let parse_args () =
  let addr = ref "" in
  let pid = ref (-1) in
  let protocol = ref "" in
  let n = ref 0 in
  let t = ref 0 in
  let ckpt_dir = ref "" in
  let rejoin_rounds = ref 3 in
  let incarnation = ref 0 in
  let recover = ref false in
  let recover_at = ref 0 in
  let io_timeout = ref 120.0 in
  let trace_dir = ref "" in
  let seed = ref 1L in
  let spec =
    [
      ("--addr", Arg.Set_string addr, "ADDR orchestrator address (unix:<path> or tcp:<host>:<port>)");
      ("--pid", Arg.Set_int pid, "PID protocol participant id");
      ("--protocol", Arg.Set_string protocol, "P one of a, b, a+rec, b+rec");
      ("-n", Arg.Set_int n, "N work units");
      ("-t", Arg.Set_int t, "T processes");
      ("--ckpt-dir", Arg.Set_string ckpt_dir, "DIR on-disk checkpoint directory");
      ("--rejoin-rounds", Arg.Set_int rejoin_rounds, "R state-transfer window after recovery");
      ("--incarnation", Arg.Set_int incarnation, "K 0 for first launch, +1 per restart");
      ("--recover", Arg.Set recover, " restart: resume from the on-disk checkpoint");
      ("--recover-at", Arg.Set_int recover_at, "R the revival round (with --recover)");
      ("--io-timeout", Arg.Set_float io_timeout, "S per-frame deadline in seconds");
      ("--trace-dir", Arg.Set_string trace_dir, "DIR write dhw-trace/v1 spans to DIR/trace-<pid>.jsonl");
      ( "--seed",
        Arg.String
          (fun s ->
            match Int64.of_string_opt s with
            | Some v -> seed := v
            | None -> die "--seed: expected an integer, got %S" s),
        "S run seed (connect jitter, chaos decisions)" );
    ]
  in
  Arg.parse spec (fun a -> die "unexpected argument %S" a) "dhw_node: one net-run participant";
  if !addr = "" then die "--addr is required";
  if !pid < 0 then die "--pid is required";
  if !n <= 0 || !t <= 0 then die "-n and -t are required";
  if !pid >= !t then die "--pid %d out of range for t=%d" !pid !t;
  let addr =
    match Net.Transport.addr_of_string !addr with Ok a -> a | Error e -> die "%s" e
  in
  {
    addr;
    pid = !pid;
    protocol = !protocol;
    n = !n;
    t = !t;
    ckpt_dir = !ckpt_dir;
    rejoin_rounds = !rejoin_rounds;
    incarnation = !incarnation;
    recover = !recover;
    recover_at = !recover_at;
    io_timeout_s = !io_timeout;
    trace_dir = !trace_dir;
    seed = !seed;
  }

(* The per-protocol part of the node, closed over the protocol's state and
   message types: step one round, plus the initial wakeup for the Hello. *)
type session = {
  step :
    T.round ->
    Net.Frame.envelope list ->
    Net.Frame.send list * int list * bool * T.round option;
  wakeup0 : T.round option;
}

let make_session (type s m) a (proc : (s, m) T.process) ~(enc : m -> string)
    ~(dec : string -> m) ~(show : m -> string) ~(init : s * T.round option) =
  let state = ref (fst init) in
  let step r (inbox : Net.Frame.envelope list) =
    let mail =
      List.map
        (fun e ->
          { T.src = e.Net.Frame.src; sent_at = e.Net.Frame.sent_at; payload = dec e.Net.Frame.payload })
        inbox
    in
    let o = proc.T.step a.pid r !state mail in
    state := o.T.state;
    let sends =
      List.map
        (fun s -> { Net.Frame.dst = s.T.dst; payload = enc s.T.payload; show = show s.T.payload })
        o.T.sends
    in
    (sends, o.T.work, o.T.terminate, o.T.wakeup)
  in
  { step; wakeup0 = snd init }

(* Stable storage wired to disk: every committed cell write is mirrored
   crash-atomically, and counted so the Step_result can report the step's
   persists. Seeding the cell back from disk on --recover does neither. *)
let make_stable a ~persist_pending ~booting =
  let stable_ref = ref None in
  let on_write pid _at =
    if (not !booting) && pid = a.pid then begin
      incr persist_pending;
      match !stable_ref with
      | Some stable -> (
          match Simkit.Stable.read stable pid with
          | Some v ->
              with_span a ~name:"ckpt" ~round:_at (fun () ->
                  Net.Ckpt.save ~dir:a.ckpt_dir ~pid
                    (Net.Codec.encode_last v))
          | None -> ())
      | None -> ()
    end
  in
  let stable = Simkit.Stable.create ~on_write ~n_processes:a.t () in
  stable_ref := Some stable;
  stable

let seed_from_disk a stable ~booting =
  booting := true;
  (match Net.Ckpt.load ~dir:a.ckpt_dir ~pid:a.pid with
  | Some payload -> (
      match Net.Codec.decode_last payload with
      | v -> Simkit.Stable.write stable a.pid ~at:a.recover_at v
      | exception Net.Wire.Decode _ -> ())
  | None -> ());
  booting := false

let make_recovery_session a which ~persist_pending =
  let spec = Doall.Spec.make ~n:a.n ~t:a.t in
  let grid = Doall.Grid.make spec in
  let booting = ref false in
  let stable = make_stable a ~persist_pending ~booting in
  let build (type s m) (ad : (s, m) Rec.adapter) ~(enc : m -> string)
      ~(dec : string -> m) =
    let proc = Rec.harden ad ~stable in
    let init =
      if a.recover then begin
        seed_from_disk a stable ~booting;
        Rec.recover_hook stable ~rejoin_rounds:a.rejoin_rounds a.pid a.recover_at
      end
      else proc.T.init a.pid
    in
    make_session a proc ~enc:(Net.Codec.encode_rmsg enc)
      ~dec:(Net.Codec.decode_rmsg dec) ~show:(Rec.show_rmsg ad.Rec.show) ~init
  in
  match which with
  | Rec.A ->
      build (Rec.adapter_a grid) ~enc:Net.Codec.encode_ord ~dec:Net.Codec.decode_ord
  | Rec.B -> build (Rec.adapter_b grid) ~enc:Net.Codec.encode_b ~dec:Net.Codec.decode_b

let make_plain_session a ~proto =
  let spec = Doall.Spec.make ~n:a.n ~t:a.t in
  let grid = Doall.Grid.make spec in
  match proto with
  | `A ->
      let proc = Doall.Protocol_a.proc_on_grid grid in
      make_session a proc ~enc:Net.Codec.encode_ord ~dec:Net.Codec.decode_ord
        ~show:Doall.Protocol_a.show_msg ~init:(proc.T.init a.pid)
  | `B ->
      let proc = Doall.Protocol_b.proc_on_grid grid in
      make_session a proc ~enc:Net.Codec.encode_b ~dec:Net.Codec.decode_b
        ~show:Doall.Protocol_b.show_msg ~init:(proc.T.init a.pid)

(* ---- asynchronous deployment mode (--async) ------------------------------
   No control plane: the node joins the datagram mesh under [--dir],
   exchanges protocol traffic and heartbeats with its peers directly, and
   detects failures with its own ◇P monitor. The whole driver lives in
   [Dhw_net.Async_node]; this entry point only parses flags and the chaos
   schedule. *)

let async_main () =
  let dir = ref "" in
  let pid = ref (-1) in
  let units = ref 0 in
  let procs = ref 0 in
  let plan_path = ref "" in
  let tick_ms = ref 5 in
  let epoch_ms = ref 0.0 in
  let incarnation = ref 0 in
  let recover = ref false in
  let max_ticks = ref 200_000 in
  let spec =
    [
      ("--async", Arg.Unit (fun () -> ()), " asynchronous mesh mode (this mode)");
      ("--dir", Arg.Set_string dir, "DIR run directory (sockets, ckpts, traces)");
      ("--pid", Arg.Set_int pid, "PID protocol participant id");
      ("--units", Arg.Set_int units, "N work units");
      ("--procs", Arg.Set_int procs, "T fleet size");
      ("--plan", Arg.Set_string plan_path, "FILE async-schedule v1 chaos plan");
      ("--tick-ms", Arg.Set_int tick_ms, "MS wall-clock quantum per tick");
      ("--epoch-ms", Arg.Set_float epoch_ms, "MS fleet-global start (wall ms)");
      ("--incarnation", Arg.Set_int incarnation, "K 0 first launch, +1 per restart");
      ("--recover", Arg.Set recover, " resume from the on-disk checkpoint");
      ("--max-ticks", Arg.Set_int max_ticks, "T stall bound (exit 3 beyond)");
    ]
  in
  Arg.parse spec (fun a -> die "unexpected argument %S" a) "dhw_node --async: one mesh participant";
  if !dir = "" then die "--dir is required";
  if !pid < 0 then die "--pid is required";
  if !units <= 0 || !procs <= 0 then die "--units and --procs are required";
  if !pid >= !procs then die "--pid %d out of range for procs=%d" !pid !procs;
  let plan =
    match !plan_path with
    | "" -> Net.Chaos.none
    | p -> (
        let ic = open_in p in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        match Simkit.Campaign.Async.parse s with
        | Ok sched -> Net.Chaos.of_async sched
        | Error e -> die "--plan %s: %s" p e)
  in
  let epoch_ms =
    if !epoch_ms > 0.0 then !epoch_ms else Unix.gettimeofday () *. 1000.0
  in
  let cfg =
    Net.Async_node.config ~incarnation:!incarnation ~recover:!recover
      ~tick_ms:!tick_ms ~plan ~max_ticks:!max_ticks ~dir:!dir ~pid:!pid
      ~spec:(Doall.Spec.make ~n:!units ~t:!procs)
      ~epoch_ms ()
  in
  exit (Net.Async_node.run cfg)

let main () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> exit 0));
  if Array.exists (fun a -> a = "--async") Sys.argv then async_main ();
  let a = parse_args () in
  open_trace a;
  let persist_pending = ref 0 in
  let session =
    match a.protocol with
    | "a" -> make_plain_session a ~proto:`A
    | "b" -> make_plain_session a ~proto:`B
    | "a+rec" -> make_recovery_session a Rec.A ~persist_pending
    | "b+rec" -> make_recovery_session a Rec.B ~persist_pending
    | p -> die "unknown protocol %S" p
  in
  let stats = Net.Transport.stats () in
  let jitter_prng = Dhw_util.Prng.stream a.seed (0x7e0 + a.pid) in
  let fd = Net.Transport.connect ~stats ~prng:jitter_prng a.addr in
  let send = Net.Transport.send_frame ~stats ~timeout_s:a.io_timeout_s fd in
  send
    (Net.Frame.Hello
       {
         pid = a.pid;
         protocol = a.protocol;
         n = a.n;
         t = a.t;
         incarnation = a.incarnation;
         wakeup = session.wakeup0;
       });
  (match Net.Transport.recv_frame ~stats ~timeout_s:a.io_timeout_s fd with
  | Net.Frame.Welcome _ -> ()
  | f -> die "expected welcome, got %s" (Fmt.str "%a" Net.Frame.pp f));
  let rec loop () =
    match Net.Transport.recv_frame ~stats ~timeout_s:a.io_timeout_s fd with
    | Net.Frame.Round_start { round; inbox } ->
        let sends, work, terminate, wakeup =
          with_span a ~name:"step" ~round (fun () -> session.step round inbox)
        in
        let persists = !persist_pending in
        persist_pending := 0;
        send (Net.Frame.Step_result { round; sends; work; terminate; wakeup; persists });
        loop ()
    | Net.Frame.Heartbeat { tick } ->
        send (Net.Frame.Heartbeat { tick });
        loop ()
    | Net.Frame.Shutdown -> exit 0
    | f -> die "unexpected frame %s" (Fmt.str "%a" Net.Frame.pp f)
  in
  try loop () with
  | Net.Transport.Closed _ -> exit 0
  | Net.Transport.Timeout what ->
      prerr_endline ("dhw_node: io timeout: " ^ what);
      exit 3

let () = main ()
