(* Command-line front-end: run any protocol of the paper on any instance
   under a configurable fault schedule and print the cost measures.

     dune exec bin/doall_cli.exe -- run -p A -n 100 -t 16 --crash 0@5 --trace 40
     dune exec bin/doall_cli.exe -- run -p D -n 1000 -t 32 --random 31 --window 40
     dune exec bin/doall_cli.exe -- ba -n 64 -t 8 --value 7 --protocol C
     dune exec bin/doall_cli.exe -- async -n 100 -t 16 --crash 3@9 *)

open Cmdliner
module D = Doall
module J = Dhw_util.Jsonw

let protocol_of_name name =
  match String.lowercase_ascii name with
  | "a" -> Ok D.Protocol_a.protocol
  | "b" -> Ok D.Protocol_b.protocol
  | "c" -> Ok D.Protocol_c.protocol
  | "c-chunked" | "cchunked" -> Ok D.Protocol_c.protocol_chunked
  | "c-naive" | "cnaive" -> Ok D.Protocol_c_naive.protocol
  | "d" -> Ok D.Protocol_d.protocol
  | "d-coord" | "dcoord" -> Ok D.Protocol_d_coord.protocol
  | "trivial" -> Ok D.Baseline_trivial.protocol
  | s when String.length s > 11 && String.sub s 0 11 = "checkpoint:" ->
      (try Ok (D.Baseline_checkpoint.protocol ~period:(int_of_string (String.sub s 11 (String.length s - 11))))
       with _ -> Error (`Msg "checkpoint:<period> needs an integer period"))
  | "checkpoint" -> Ok (D.Baseline_checkpoint.protocol ~period:1)
  | _ -> Error (`Msg ("unknown protocol: " ^ name ^ " (A, B, C, C-chunked, C-naive, D, D-coord, D-online, trivial, checkpoint[:k])"))

let crash_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ p; r ] -> (
        try Ok (int_of_string p, int_of_string r)
        with _ -> Error (`Msg "expected pid@round"))
    | _ -> Error (`Msg "expected pid@round")
  in
  let print ppf (p, r) = Format.fprintf ppf "%d@%d" p r in
  Arg.conv (parse, print)

let n_arg = Arg.(value & opt int 100 & info [ "n"; "units" ] ~doc:"Units of work.")
let t_arg = Arg.(value & opt int 16 & info [ "t"; "processes" ] ~doc:"Processes.")

let crashes_arg =
  Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~docv:"PID@ROUND"
       ~doc:"Silently crash $(i,PID) at $(i,ROUND) (repeatable).")

let random_arg =
  Arg.(value & opt (some int) None & info [ "random" ] ~docv:"VICTIMS"
       ~doc:"Crash $(i,VICTIMS) random processes at random rounds.")

let window_arg =
  Arg.(value & opt int 200 & info [ "window" ] ~doc:"Random crash-round window.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Adversary seed.")

let adversary_arg =
  Arg.(value & opt (some int) None & info [ "kill-active-every" ] ~docv:"UNITS"
       ~doc:"Crash whichever process is working after every $(i,UNITS) units (keeps the work, drops the messages).")

let trace_arg =
  Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N"
       ~doc:"Print the first $(i,N) trace events.")

let crash_desc = function
  | [] -> "none"
  | cs ->
      "crash "
      ^ String.concat ", "
          (List.map (fun (p, r) -> Printf.sprintf "%d@%d" p r) cs)

(* Returns the fault plan plus a stable human-readable summary of it — the
   latter is embedded in JSON reports so a report identifies its run. *)
let build_fault ~t ~crashes ~random ~window ~seed ~adversary =
  match (crashes, random, adversary) with
  | [], None, None -> (Simkit.Fault.none, "none")
  | cs, None, None -> (Simkit.Fault.crash_silently_at cs, crash_desc cs)
  | [], Some v, None ->
      ( Simkit.Fault.random ~seed:(Int64.of_int seed) ~t ~victims:v ~window,
        Printf.sprintf "random victims=%d seed=%d window=%d" v seed window )
  | [], None, Some k ->
      ( Simkit.Fault.crash_active_after_work ~units_between_crashes:k
          ~max_crashes:(t - 1),
        Printf.sprintf "kill-active-every %d units" k )
  | _ -> failwith "combine at most one of --crash/--random/--kill-active-every"

let report_arg =
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "report" ] ~docv:"FMT"
       ~doc:"Output format: $(b,text) (default) or $(b,json) (one dhw-report/v4 document on stdout).")

(* Distinct exit codes so scripts can tell failure classes apart (2 is
   cmdliner's usage-error code): 0 = completed and correct, 1 = completed
   but incorrect, 3 = stalled, 4 = round/tick limit hit. *)
let exit_run ~ok outcome_class =
  let code =
    match outcome_class with
    | `Completed -> if ok then 0 else 1
    | `Stalled -> 3
    | `Limit -> 4
  in
  if code <> 0 then exit code

let events_arg =
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"PATH"
       ~doc:"Stream every execution event to $(i,PATH) as JSON Lines.")

let with_events events f =
  match events with
  | None -> f None
  | Some path ->
      let oc = open_out path in
      let r = f (Some (Simkit.Obs.jsonl oc)) in
      close_out oc;
      r

let count_status statuses pred =
  Array.fold_left (fun acc s -> if pred s then acc + 1 else acc) 0 statuses

let status_survivors statuses =
  count_status statuses (function Simkit.Types.Terminated _ -> true | _ -> false)

let status_crashed statuses =
  count_status statuses (function Simkit.Types.Crashed _ -> true | _ -> false)

let restarts_arg =
  Arg.(value & opt_all crash_conv [] & info [ "restarts"; "restart" ]
       ~docv:"PID@ROUND"
       ~doc:"Revive $(i,PID) at $(i,ROUND) after a --crash (repeatable). Switches to the recovery-hardened protocol variant, so only A and B qualify.")

let restart_desc rs =
  "restart "
  ^ String.concat ", "
      (List.map (fun (p, r) -> Printf.sprintf "%d@%d" p r) rs)

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"PATH"
       ~doc:"Write a dhw-trace/v1 span file (wall-clock round/step/deliver/persist timings) to $(i,PATH); render it with the $(b,trace) subcommand.")

let horizon_arg =
  Arg.(value & opt int 32 & info [ "horizon" ] ~docv:"ROUNDS"
       ~doc:"D-online only: work units arrive at seeded random rounds in [0, $(i,ROUNDS)).")

let idle_block_arg =
  Arg.(value & opt int 4 & info [ "idle-block" ] ~docv:"ROUNDS"
       ~doc:"D-online only: idle-round block size between arrival sweeps.")

let run_cmd =
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ] ~doc:"Protocol (A, B, C, C-chunked, C-naive, D, D-online, trivial, checkpoint[:k]).")
  in
  let run proto n t crashes restarts random window seed adversary trace_n
      report_fmt events trace_out horizon idle_block =
    let spec = D.Spec.make ~n ~t in
    let trace = Option.map (fun _ -> Simkit.Trace.create ()) trace_n in
    (* Wall-clock span collection is a separate sink from --events so the
       deterministic event stream stays byte-stable across machines. *)
    let spans, flush_spans =
      match trace_out with
      | None -> (None, fun _proto -> ())
      | Some path ->
          let sink, collected = Simkit.Obs.span_collector ~src:"sim" () in
          ( Some sink,
            fun proto_name ->
              Dhw_util.Spanfile.write_file
                ~meta:
                  [ ("protocol", J.Str proto_name); ("n", J.Int n);
                    ("t", J.Int t) ]
                ~source:"sim" path (collected ()) )
    in
    let finish ?latency fault_desc (report : D.Runner.report) =
      flush_spans report.D.Runner.protocol;
      (match report_fmt with
      | `Json ->
          print_endline
            (D.Report.to_string
               (D.Report.of_run ~fault:fault_desc ?latency report))
      | `Text ->
          Format.printf "%a@." D.Runner.pp report;
          (match latency with
          | Some l -> Format.printf "latency: %s@." (J.to_string l)
          | None -> ());
          Format.printf "verdict: %s@."
            (if D.Runner.correct report then "CORRECT" else "INCORRECT");
          (match (trace, trace_n) with
          | Some tr, Some limit ->
              Simkit.Trace.pp ~limit Format.std_formatter tr
          | _ -> ()));
      exit_run
        ~ok:(D.Runner.correct report)
        (match report.D.Runner.outcome with
        | Simkit.Kernel.Completed -> `Completed
        | Simkit.Kernel.Stalled _ -> `Stalled
        | Simkit.Kernel.Round_limit _ -> `Limit)
    in
    if restarts <> [] then begin
      match D.Fuzz.recovery_which_of_name proto with
      | None ->
          prerr_endline
            ("--restarts needs a protocol with a recovery hook (A or B), got "
            ^ proto);
          exit 2
      | Some which ->
          if random <> None || adversary <> None then begin
            prerr_endline
              "--restarts combines only with --crash, not \
               --random/--kill-active-every";
            exit 2
          end;
          let entry mode (victim, at) =
            { Simkit.Campaign.Schedule.victim; at; mode }
          in
          let sched =
            Simkit.Campaign.Schedule.make
              (List.map (entry Simkit.Campaign.Schedule.Silent) crashes
              @ List.map (entry Simkit.Campaign.Schedule.Restart) restarts)
          in
          let fault = Simkit.Campaign.Schedule.to_fault sched in
          let fault_desc =
            match crashes with
            | [] -> restart_desc restarts
            | cs -> crash_desc cs ^ "; " ^ restart_desc restarts
          in
          finish fault_desc
            (with_events events (fun obs ->
                 D.Recovery.run ~fault ?trace ?obs ?spans spec which))
    end
    else if
      String.lowercase_ascii proto = "d-online"
      || String.lowercase_ascii proto = "donline"
    then begin
      (* Online Do-All: units arrive over time (seeded by --seed), and the
         report gains a latency section with arrival-to-completion
         percentiles over the surviving units. *)
      let arrivals =
        D.Latency.gen_arrivals ~seed:(Int64.of_int seed) ~n_units:n ~sites:t
          ~horizon
      in
      let cfg = { D.Protocol_d_online.arrivals; horizon; idle_block } in
      let p = D.Protocol_d_online.protocol cfg in
      let lat = D.Latency.create ~arrivals in
      let fault, fault_desc =
        build_fault ~t ~crashes ~random ~window ~seed ~adversary
      in
      let report =
        with_events events (fun obs ->
            let obs =
              match obs with
              | None -> Some (D.Latency.sink lat)
              | Some o -> Some (Simkit.Obs.tee [ o; D.Latency.sink lat ])
            in
            D.Runner.run ~fault ?trace ?obs ?spans spec p)
      in
      finish ~latency:(D.Latency.to_json lat) fault_desc report
    end
    else
      match protocol_of_name proto with
      | Error (`Msg m) -> prerr_endline m; exit 2
      | Ok p ->
          let fault, fault_desc =
            build_fault ~t ~crashes ~random ~window ~seed ~adversary
          in
          finish fault_desc
            (with_events events (fun obs ->
                 D.Runner.run ~fault ?trace ?obs ?spans spec p))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a Do-All protocol under a fault schedule")
    Term.(
      const run $ proto_arg $ n_arg $ t_arg $ crashes_arg $ restarts_arg
      $ random_arg $ window_arg $ seed_arg $ adversary_arg $ trace_arg
      $ report_arg $ events_arg $ trace_out_arg $ horizon_arg
      $ idle_block_arg)

let timeline_cmd =
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ] ~doc:"Protocol (A, B, C, C-chunked, C-naive, D, trivial, checkpoint[:k]).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the timeline as JSON (schema dhw-timeline/v3) instead of ASCII sparklines.")
  in
  let width_arg =
    Arg.(value & opt int 64 & info [ "width" ] ~docv:"COLS"
         ~doc:"Maximum sparkline width; longer runs are bucketed down to it.")
  in
  let run proto n t crashes random window seed adversary json width =
    match protocol_of_name proto with
    | Error (`Msg m) -> prerr_endline m; exit 2
    | Ok p ->
        let spec = D.Spec.make ~n ~t in
        let fault, fault_desc =
          build_fault ~t ~crashes ~random ~window ~seed ~adversary
        in
        let tl = Simkit.Obs.Timeline.create ~n_processes:t ~n_units:n in
        let report =
          D.Runner.run ~fault ~obs:(Simkit.Obs.Timeline.sink tl) spec p
        in
        if json then
          print_endline (J.pretty (Simkit.Obs.Timeline.to_json tl))
        else begin
          Format.printf "%s on %a  fault: %s@." report.D.Runner.protocol
            D.Spec.pp spec fault_desc;
          Simkit.Obs.Timeline.pp ~width Format.std_formatter tl
        end;
        if not (D.Runner.correct report) then exit 1
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Run a protocol and render its per-round timeline (ASCII sparklines or JSON)")
    Term.(
      const run $ proto_arg $ n_arg $ t_arg $ crashes_arg $ random_arg
      $ window_arg $ seed_arg $ adversary_arg $ json_arg $ width_arg)

let ba_cmd =
  let value_arg = Arg.(value & opt int 1 & info [ "value" ] ~doc:"General's value.") in
  let tb_arg = Arg.(value & opt int 8 & info [ "t" ] ~doc:"Failure bound (senders = t+1).") in
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ] ~doc:"Sender protocol (A, B, C, C-chunked).")
  in
  let cut_arg =
    Arg.(value & opt (some int) None & info [ "general-cut" ] ~docv:"K"
         ~doc:"General crashes mid-broadcast after informing $(i,K) senders.")
  in
  let run n t_bound value proto crashes cut =
    let wp =
      match String.lowercase_ascii proto with
      | "a" -> Agreement.Crash_ba.A
      | "b" -> Agreement.Crash_ba.B
      | "c" -> Agreement.Crash_ba.C
      | "c-chunked" | "cchunked" -> Agreement.Crash_ba.C_chunked
      | other -> prerr_endline ("unknown sender protocol: " ^ other); exit 2
    in
    let o = Agreement.Crash_ba.run ~n ~t_bound ~value ~crash_at:crashes ?general_cut:cut wp in
    Format.printf
      "agreement=%b validity=%b messages=%d (work-protocol %d) rounds=%d sender-work=%d@."
      o.agreement o.validity o.messages o.work_messages o.rounds o.sender_work;
    if not (o.agreement && o.validity) then exit 1
  in
  Cmd.v
    (Cmd.info "ba" ~doc:"Byzantine agreement (crash model) via a work protocol (Section 5)")
    Term.(const run $ n_arg $ tb_arg $ value_arg $ proto_arg $ crashes_arg $ cut_arg)

let async_cmd =
  let delay_arg = Arg.(value & opt int 5 & info [ "max-delay" ] ~doc:"Max message delay.") in
  let lag_arg = Arg.(value & opt int 8 & info [ "max-lag" ] ~doc:"Max failure-detector lag.") in
  let drop_arg =
    Arg.(value & opt int 0 & info [ "drop" ] ~docv:"BP"
         ~doc:"Per-message loss probability in basis points (2500 = 25%); pair with --hardened.")
  in
  let dup_arg =
    Arg.(value & opt int 0 & info [ "dup" ] ~docv:"BP"
         ~doc:"Per-message duplication probability in basis points.")
  in
  let slow_arg =
    Arg.(value & opt_all int [] & info [ "slow" ] ~docv:"PID"
         ~doc:"Add $(i,PID) to the slow set (repeatable).")
  in
  let slow_factor_arg =
    Arg.(value & opt int 1 & info [ "slow-factor" ] ~docv:"K"
         ~doc:"Delay bound multiplier for the slow set.")
  in
  let hardened_arg =
    Arg.(value & flag & info [ "hardened" ]
         ~doc:"Run over ack/retransmit links with organic heartbeat detection instead of the oracle detector. Required for completion under --drop.")
  in
  let run n t crashes seed max_delay max_lag drop dup slow slow_factor hardened
      report_fmt events =
    let spec = D.Spec.make ~n ~t in
    let link =
      { Asim.Event_sim.drop_bp = drop; dup_bp = dup; corrupt_bp = 0;
        slow_set = slow; slow_factor; severs = [] }
    in
    let seed = Int64.of_int seed in
    let stats = if hardened then Some (Asim.Link.stats ()) else None in
    let r =
      with_events events (fun obs ->
          if hardened then
            Asim.Async_protocol_a.run_hardened ~crash_at:crashes ~max_delay
              ~max_lag ~seed ~link ?stats ?obs spec
          else
            Asim.Async_protocol_a.run ~crash_at:crashes ~max_delay ~max_lag
              ~seed ~link ?obs spec)
    in
    let ok =
      Asim.Event_sim.completed r && Simkit.Metrics.all_units_done r.metrics
    in
    (match report_fmt with
    | `Json ->
        let outcome =
          match r.Asim.Event_sim.outcome with
          | Asim.Event_sim.Completed -> "completed"
          | Asim.Event_sim.Stalled t -> Printf.sprintf "stalled@%d" t
          | Asim.Event_sim.Tick_limit t -> Printf.sprintf "tick-limit@%d" t
        in
        let extra =
          [ ( "net",
              J.Obj
                [
                  ("sent", J.Int r.Asim.Event_sim.net.sent);
                  ("dropped", J.Int r.Asim.Event_sim.net.dropped);
                  ("duplicated", J.Int r.Asim.Event_sim.net.duplicated);
                ] ) ]
          @
          match stats with
          | Some s ->
              [ ( "link",
                  J.Obj
                    [
                      ("retransmits", J.Int s.Asim.Link.retransmits);
                      ("dups_suppressed", J.Int s.Asim.Link.dups_suppressed);
                      ("suspicions_retracted", J.Int s.Asim.Link.recoveries);
                    ] );
                ( "detector",
                  J.Obj
                    [
                      ("suspicions", J.Int s.Asim.Link.suspicions);
                      ("false_suspicions", J.Int s.Asim.Link.false_suspicions);
                      ("unsuspects", J.Int s.Asim.Link.unsuspects);
                    ] ) ]
          | None -> []
        in
        let rep =
          D.Report.make ~kind:"async"
            ~protocol:(if hardened then "async-a-hardened" else "async-a")
            ~spec ~fault:(crash_desc crashes) ~metrics:r.metrics ~outcome
            ~correct:ok ~survivors:(status_survivors r.statuses)
            ~crashed:(status_crashed r.statuses) ~extra ()
        in
        print_endline (D.Report.to_string rep)
    | `Text ->
        (match stats with
        | Some stats ->
            Format.printf
              "link: sent=%d dropped=%d duplicated=%d retransmits=%d \
               dups-suppressed=%d suspicions-retracted=%d@."
              r.Asim.Event_sim.net.sent r.Asim.Event_sim.net.dropped
              r.Asim.Event_sim.net.duplicated stats.Asim.Link.retransmits
              stats.Asim.Link.dups_suppressed stats.Asim.Link.recoveries;
            Format.printf
              "detector: suspicions=%d false-suspicions=%d unsuspects=%d@."
              stats.Asim.Link.suspicions stats.Asim.Link.false_suspicions
              stats.Asim.Link.unsuspects
        | None -> ());
        Format.printf "%a outcome=%a@." Simkit.Metrics.pp_summary r.metrics
          Asim.Event_sim.pp_outcome r.outcome;
        Format.printf "verdict: %s@." (if ok then "CORRECT" else "INCORRECT"));
    exit_run ~ok
      (match r.Asim.Event_sim.outcome with
      | Asim.Event_sim.Completed -> `Completed
      | Asim.Event_sim.Stalled _ -> `Stalled
      | Asim.Event_sim.Tick_limit _ -> `Limit)
  in
  Cmd.v
    (Cmd.info "async" ~doc:"Asynchronous Protocol A with a failure detector (Section 2.1)")
    Term.(
      const run $ n_arg $ t_arg $ crashes_arg $ seed_arg $ delay_arg $ lag_arg
      $ drop_arg $ dup_arg $ slow_arg $ slow_factor_arg $ hardened_arg
      $ report_arg $ events_arg)

let shmem_cmd =
  let algo_arg =
    Arg.(value & opt string "checkpointed" & info [ "a"; "algorithm" ]
         ~doc:"Shared-memory algorithm (checkpointed, parallel-scan).")
  in
  let run n t algo crashes report_fmt =
    let name, go =
      match String.lowercase_ascii algo with
      | "checkpointed" | "seq" ->
          ("checkpointed", Shmem.Writeall.checkpointed ~crash_at:crashes)
      | "parallel-scan" | "scan" ->
          ("parallel-scan", Shmem.Writeall.parallel_scan ~crash_at:crashes)
      | other -> prerr_endline ("unknown algorithm: " ^ other); exit 2
    in
    let o = go ~n ~t () in
    let ok =
      Shmem.Writeall.work_complete o && Shmem.Skernel.completed o.result
    in
    (match report_fmt with
    | `Json ->
        let outcome =
          match o.result.outcome with
          | Shmem.Skernel.Completed -> "completed"
          | Shmem.Skernel.Stalled r -> Printf.sprintf "stalled@%d" r
          | Shmem.Skernel.Round_limit r -> Printf.sprintf "round-limit@%d" r
        in
        let extra =
          [ ( "shmem",
              J.Obj
                [
                  ("reads", J.Int o.result.reads);
                  ("writes", J.Int o.result.writes);
                  ("aps", J.Int o.result.aps);
                  ("effort", J.Int o.effort);
                ] ) ]
        in
        let rep =
          D.Report.make ~kind:"shmem" ~protocol:name ~spec:(D.Spec.make ~n ~t)
            ~fault:(crash_desc crashes) ~metrics:o.result.metrics ~outcome
            ~correct:ok ~survivors:(status_survivors o.result.statuses)
            ~crashed:(status_crashed o.result.statuses) ~extra ()
        in
        print_endline (D.Report.to_string rep)
    | `Text ->
        Format.printf
          "work=%d reads=%d writes=%d effort=%d rounds=%d aps=%d all-done=%b %s@."
          (Simkit.Metrics.work o.result.metrics)
          o.result.reads o.result.writes o.effort
          (Simkit.Metrics.rounds o.result.metrics)
          o.result.aps
          (Shmem.Writeall.work_complete o)
          (match o.result.outcome with
          | Shmem.Skernel.Completed -> "completed"
          | Shmem.Skernel.Stalled r -> Printf.sprintf "STALLED@%d" r
          | Shmem.Skernel.Round_limit r -> Printf.sprintf "ROUND-LIMIT@%d" r));
    exit_run ~ok
      (match o.result.outcome with
      | Shmem.Skernel.Completed -> `Completed
      | Shmem.Skernel.Stalled _ -> `Stalled
      | Shmem.Skernel.Round_limit _ -> `Limit)
  in
  Cmd.v
    (Cmd.info "shmem" ~doc:"Shared-memory Write-All (Section 1.1 comparison)")
    Term.(const run $ n_arg $ t_arg $ algo_arg $ crashes_arg $ report_arg)

let bootstrap_cmd =
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ] ~doc:"Work protocol (A, B, C, C-chunked).")
  in
  let run n t proto crashes =
    let wp =
      match String.lowercase_ascii proto with
      | "a" -> Agreement.Crash_ba.A
      | "b" -> Agreement.Crash_ba.B
      | "c" -> Agreement.Crash_ba.C
      | "c-chunked" | "cchunked" -> Agreement.Crash_ba.C_chunked
      | other -> prerr_endline ("unknown protocol: " ^ other); exit 2
    in
    let o = Agreement.Bootstrap.run ~n ~t ~crash_at:crashes wp in
    Format.printf
      "ok=%b  stage1: msgs=%d rounds=%d  stage2: %a  totals: msgs=%d work=%d rounds=%d@."
      o.ok o.ba.messages o.ba.rounds Doall.Runner.pp o.work o.total_messages
      o.total_work o.total_rounds;
    if not o.ok then exit 1
  in
  Cmd.v
    (Cmd.info "bootstrap"
       ~doc:"Section 1 bootstrap: agree on the pool, then perform it")
    Term.(const run $ n_arg $ t_arg $ proto_arg $ crashes_arg)

(* ------------------------------------------------------------------ *)
(* Adversary campaigns: fuzz + replay *)

module Campaign = Simkit.Campaign

(* Campaigns always run through the parallel engine here, so --jobs 1 and
   --jobs 8 print byte-identical stats and write byte-identical corpora;
   0 means one worker domain per core. *)
let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
       ~doc:"Worker domains executing campaign schedules (default 0 = one per core). Campaign results are byte-identical for every value; only wall-clock time changes.")

let resolve_jobs jobs =
  if jobs < 0 then begin
    prerr_endline "--jobs must be >= 0 (0 = one worker per core)";
    exit 2
  end
  else if jobs = 0 then Simkit.Pool.default_jobs ()
  else jobs

(* Campaign misconfiguration is exit code 2 (like cmdliner usage errors and
   unknown protocols), distinct from exit 1 = counterexample found. *)
let check_campaign_config ~executions ~window =
  if executions < 0 then begin
    prerr_endline "--executions must be >= 0";
    exit 2
  end;
  match window with
  | Some w when w < 0 ->
      prerr_endline "--window must be >= 0";
      exit 2
  | _ -> ()

let pp_failure ppf (i, (f : Campaign.Schedule.t Campaign.failure)) =
  Format.fprintf ppf "violation #%d: oracle=%s (%s)@." i f.Campaign.oracle
    f.Campaign.detail;
  Format.fprintf ppf "  schedule: %a@." Campaign.Schedule.pp f.Campaign.schedule;
  Format.fprintf ppf "  shrunk (%d executions): %a (%s)@."
    f.Campaign.shrink_executions Campaign.Schedule.pp f.Campaign.shrunk
    f.Campaign.shrunk_detail

let report_subject spec proto sched =
  (* one more run of the schedule, printed in the replay format so fuzz
     failures and their replays can be compared verbatim *)
  let subject = D.Fuzz.run_schedule spec proto sched in
  Format.printf "  %a@." D.Runner.pp subject.D.Fuzz.report

(* Per-failure machine-readable companion to the .sched corpus entry: the
   oracle verdict plus both the original and the shrunk schedule texts. *)
let write_failure_report ~path ~protocol ~seed ~index ~print
    (f : _ Campaign.failure) =
  let oc = open_out path in
  output_string oc
    (J.pretty
       (J.Obj
          [
            ("schema", J.Str "dhw-fuzz-failure/v1");
            ("protocol", J.Str protocol);
            ("seed", J.Int seed);
            ("index", J.Int index);
            ("oracle", J.Str f.Campaign.oracle);
            ("detail", J.Str f.Campaign.detail);
            ("schedule", J.Str (print f.Campaign.schedule));
            ("shrunk", J.Str (print f.Campaign.shrunk));
            ("shrunk_detail", J.Str f.Campaign.shrunk_detail);
            ("shrink_executions", J.Int f.Campaign.shrink_executions);
          ]));
  output_char oc '\n';
  close_out oc;
  Format.printf "  written: %s@." path

let write_corpus ~corpus ~protocol ~seed failures =
  if failures <> [] then begin
    if not (Sys.file_exists corpus) then Sys.mkdir corpus 0o755;
    List.iteri
      (fun i (f : Campaign.Schedule.t Campaign.failure) ->
        let base =
          Filename.concat corpus
            (Printf.sprintf "%s-seed%d-%d" protocol seed i)
        in
        let path = base ^ ".sched" in
        let oc = open_out path in
        output_string oc (Campaign.Schedule.print f.Campaign.shrunk);
        close_out oc;
        Format.printf "  written: %s@." path;
        write_failure_report ~path:(base ^ ".report.json") ~protocol ~seed
          ~index:i ~print:Campaign.Schedule.print f)
      failures
  end

let fuzz_cmd =
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ]
         ~doc:"Protocol (A, B, C, C-chunked, C-naive, D, D-coord, trivial, checkpoint[:k]).")
  in
  let executions_arg =
    Arg.(value & opt int 200 & info [ "executions" ]
         ~doc:"Random schedules to run (ignored with --exhaustive).")
  in
  let exhaustive_arg =
    Arg.(value & flag & info [ "exhaustive" ]
         ~doc:"Enumerate every (victim set x crash round grid x mode) schedule instead of sampling; keep -t tiny.")
  in
  let window_opt_arg =
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"ROUNDS"
         ~doc:"Crash-round window (default: twice the failure-free running time).")
  in
  let corpus_arg =
    Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Directory where shrunk failing schedules are written.")
  in
  let work_cap_arg =
    Arg.(value & opt (some int) None & info [ "work-cap" ] ~docv:"UNITS"
         ~doc:"Extra oracle asserting total work <= $(i,UNITS). Setting it below the theorem bound deliberately fails the campaign - the hook for demonstrating shrinking and replay.")
  in
  let max_failures_arg =
    Arg.(value & opt int 3 & info [ "max-failures" ]
         ~doc:"Stop after this many (shrunk) violations.")
  in
  let run proto n t seed executions exhaustive window corpus work_cap
      max_failures jobs =
    match protocol_of_name proto with
    | Error (`Msg m) -> prerr_endline m; exit 2
    | Ok p ->
        check_campaign_config ~executions ~window;
        let spec = D.Spec.make ~n ~t in
        let name = String.lowercase_ascii proto in
        let jobs = resolve_jobs jobs in
        let extra =
          match work_cap with
          | None -> []
          | Some cap -> [ D.Fuzz.work_cap cap ]
        in
        let stats =
          if exhaustive then
            D.Fuzz.exhaustive_campaign ~jobs ?window ~extra ~max_failures spec p
          else
            D.Fuzz.campaign ~jobs ~seed:(Int64.of_int seed) ~executions ?window
              ~extra ~max_failures spec p
        in
        Format.printf "campaign: protocol=%s n=%d t=%d seed=%d %s@." name n t
          seed (if exhaustive then "exhaustive" else "sampled");
        Format.printf "%a@." Campaign.pp_stats stats;
        List.iteri
          (fun i f ->
            Format.printf "%a" pp_failure (i, f);
            report_subject spec p f.Campaign.shrunk)
          stats.Campaign.failures;
        write_corpus ~corpus ~protocol:name ~seed stats.Campaign.failures;
        if stats.Campaign.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Adversary campaign: fuzz a protocol with partial-delivery crash schedules, shrinking any violation")
    Term.(
      const run $ proto_arg $ n_arg $ t_arg $ seed_arg $ executions_arg
      $ exhaustive_arg $ window_opt_arg $ corpus_arg $ work_cap_arg
      $ max_failures_arg $ jobs_arg)

let replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Schedule file produced by fuzz (or hand-written).")
  in
  let work_cap_arg =
    Arg.(value & opt (some int) None & info [ "work-cap" ] ~docv:"UNITS"
         ~doc:"Re-add the extra work <= $(i,UNITS) oracle used when the schedule was found.")
  in
  let run file work_cap =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Campaign.Schedule.parse text with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 2
    | Ok sched ->
        let meta key =
          match Campaign.Schedule.meta sched key with
          | Some v -> v
          | None ->
              prerr_endline ("schedule file lacks meta " ^ key);
              exit 2
        in
        let name = meta "protocol" in
        (match protocol_of_name name with
        | Error (`Msg m) -> prerr_endline m; exit 2
        | Ok p ->
            let n = int_of_string (meta "n") and t = int_of_string (meta "t") in
            let spec = D.Spec.make ~n ~t in
            let subject = D.Fuzz.run_schedule spec p sched in
            let extra =
              match work_cap with
              | None -> []
              | Some cap -> [ D.Fuzz.work_cap cap ]
            in
            let oracles = D.Fuzz.oracles spec ~protocol:name @ extra in
            Format.printf "replay: protocol=%s n=%d t=%d schedule: %a@." name n
              t Campaign.Schedule.pp sched;
            Format.printf "  %a@." D.Runner.pp subject.D.Fuzz.report;
            (match Campaign.first_failure oracles subject with
            | None -> Format.printf "verdict: all oracles pass@."
            | Some (oracle, detail) ->
                Format.printf "verdict: oracle=%s FAILS (%s)@." oracle detail;
                exit 1))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run a serialized campaign schedule and re-judge it with the same oracle stack")
    Term.(const run $ file_arg $ work_cap_arg)

(* ------------------------------------------------------------------ *)
(* Crash–recovery campaigns: recovery-fuzz + recovery-replay *)

let report_recovery_subject spec which sched =
  let subject = D.Fuzz.run_recovery_schedule spec which sched in
  Format.printf "  %a@." D.Runner.pp subject.D.Fuzz.report

let recovery_fuzz_cmd =
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ]
         ~doc:"Protocol to harden and fuzz (A or B; a+rec/b+rec accepted).")
  in
  let executions_arg =
    Arg.(value & opt int 200 & info [ "executions" ]
         ~doc:"Random crash+restart schedules to run.")
  in
  let window_opt_arg =
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"ROUNDS"
         ~doc:"Crash-round window (default: twice the failure-free recovery running time).")
  in
  let restart_gap_arg =
    Arg.(value & opt int 6 & info [ "restart-gap" ] ~docv:"ROUNDS"
         ~doc:"Maximum downtime before a sampled restart.")
  in
  let corpus_arg =
    Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Directory where shrunk failing schedules are written.")
  in
  let work_cap_arg =
    Arg.(value & opt (some int) None & info [ "work-cap" ] ~docv:"UNITS"
         ~doc:"Extra oracle asserting total work <= $(i,UNITS). Setting it below the theorem bound deliberately fails the campaign - the hook for demonstrating shrinking and replay.")
  in
  let max_failures_arg =
    Arg.(value & opt int 3 & info [ "max-failures" ]
         ~doc:"Stop after this many (shrunk) violations.")
  in
  let run proto n t seed executions window restart_gap corpus work_cap
      max_failures jobs =
    match D.Fuzz.recovery_which_of_name proto with
    | None ->
        prerr_endline
          ("unknown recovery protocol: " ^ proto ^ " (A, B, a+rec, b+rec)");
        exit 2
    | Some which ->
        check_campaign_config ~executions ~window;
        let spec = D.Spec.make ~n ~t in
        let name = D.Fuzz.recovery_protocol_name which in
        let jobs = resolve_jobs jobs in
        let extra =
          match work_cap with
          | None -> []
          | Some cap -> [ D.Fuzz.work_cap cap ]
        in
        let stats =
          D.Fuzz.recovery_campaign ~jobs ~seed:(Int64.of_int seed) ~executions
            ?window ~restart_gap ~extra ~max_failures spec which
        in
        Format.printf
          "recovery campaign: protocol=%s n=%d t=%d seed=%d restart-gap=%d@."
          name n t seed restart_gap;
        Format.printf "%a@." Campaign.pp_stats stats;
        List.iteri
          (fun i f ->
            Format.printf "%a" pp_failure (i, f);
            report_recovery_subject spec which f.Campaign.shrunk)
          stats.Campaign.failures;
        write_corpus ~corpus ~protocol:name ~seed stats.Campaign.failures;
        if stats.Campaign.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "recovery-fuzz"
       ~doc:"Crash+restart storm campaign against a recovery-hardened protocol, shrinking any violation")
    Term.(
      const run $ proto_arg $ n_arg $ t_arg $ seed_arg $ executions_arg
      $ window_opt_arg $ restart_gap_arg $ corpus_arg $ work_cap_arg
      $ max_failures_arg $ jobs_arg)

let recovery_replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Schedule file produced by recovery-fuzz (or hand-written; may contain restart entries).")
  in
  let work_cap_arg =
    Arg.(value & opt (some int) None & info [ "work-cap" ] ~docv:"UNITS"
         ~doc:"Extra oracle asserting total work <= $(i,UNITS); pass the same cap that produced the counterexample.")
  in
  let run file work_cap =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Campaign.Schedule.parse text with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 2
    | Ok sched ->
        let meta key =
          match Campaign.Schedule.meta sched key with
          | Some v -> v
          | None ->
              prerr_endline ("schedule file lacks meta " ^ key);
              exit 2
        in
        let name = meta "protocol" in
        (match D.Fuzz.recovery_which_of_name name with
        | None ->
            prerr_endline ("not a recovery protocol: " ^ name);
            exit 2
        | Some which ->
            let n = int_of_string (meta "n") and t = int_of_string (meta "t") in
            let spec = D.Spec.make ~n ~t in
            let subject = D.Fuzz.run_recovery_schedule spec which sched in
            (* judged with the schedule's own horizon: its latest entry round *)
            let horizon =
              List.fold_left
                (fun acc (e : Campaign.Schedule.entry) -> max acc e.at)
                0 sched.Campaign.Schedule.entries
            in
            let oracles =
              D.Fuzz.recovery_oracles spec which ~horizon
              @
              match work_cap with
              | None -> []
              | Some cap -> [ D.Fuzz.work_cap cap ]
            in
            Format.printf "recovery replay: protocol=%s n=%d t=%d schedule: %a@."
              (D.Fuzz.recovery_protocol_name which)
              n t Campaign.Schedule.pp sched;
            Format.printf "  %a@." D.Runner.pp subject.D.Fuzz.report;
            (match Campaign.first_failure oracles subject with
            | None -> Format.printf "verdict: all oracles pass@."
            | Some (oracle, detail) ->
                Format.printf "verdict: oracle=%s FAILS (%s)@." oracle detail;
                exit 1))
  in
  Cmd.v
    (Cmd.info "recovery-replay"
       ~doc:"Re-run a serialized crash+restart schedule and re-judge it with the recovery oracle stack")
    Term.(const run $ file_arg $ work_cap_arg)

(* ------------------------------------------------------------------ *)
(* Corruption / Byzantine campaigns: byz-fuzz + byz-replay *)

module AF = Asim.Async_fuzz

let write_async_corpus ~corpus ~protocol ~seed failures =
  if failures <> [] then begin
    if not (Sys.file_exists corpus) then Sys.mkdir corpus 0o755;
    List.iteri
      (fun i (f : Campaign.Async.t Campaign.failure) ->
        let base =
          Filename.concat corpus
            (Printf.sprintf "%s-seed%d-%d" protocol seed i)
        in
        let path = base ^ ".sched" in
        let oc = open_out path in
        output_string oc (Campaign.Async.print f.Campaign.shrunk);
        close_out oc;
        Format.printf "  written: %s@." path;
        write_failure_report ~path:(base ^ ".report.json") ~protocol ~seed
          ~index:i ~print:Campaign.Async.print f)
      failures
  end

let pp_byz_failure ppf (i, (f : Campaign.Schedule.t Campaign.failure)) =
  Format.fprintf ppf "violation #%d: oracle=%s (%s)@." i f.Campaign.oracle
    f.Campaign.detail;
  Format.fprintf ppf "  schedule (cost %d): %a@."
    (Campaign.Schedule.cost f.Campaign.schedule)
    Campaign.Schedule.pp f.Campaign.schedule;
  Format.fprintf ppf "  cheapest break (cost %d, %d executions): %a (%s)@."
    (Campaign.Schedule.cost f.Campaign.shrunk)
    f.Campaign.shrink_executions Campaign.Schedule.pp f.Campaign.shrunk
    f.Campaign.shrunk_detail

let byz_horizon sched =
  List.fold_left
    (fun acc (e : Campaign.Schedule.entry) -> max acc e.at)
    0 sched.Campaign.Schedule.entries

let report_byz_subject spec hardening sched =
  let max_rounds = D.Fuzz.byz_max_rounds spec ~window:(byz_horizon sched) in
  let subject = D.Fuzz.run_byz_schedule ~max_rounds spec hardening sched in
  Format.printf "  %a@." D.Runner.pp subject.D.Fuzz.report

let pp_async_byz_failure ppf (i, (f : Campaign.Async.t Campaign.failure)) =
  Format.fprintf ppf "violation #%d: oracle=%s (%s)@." i f.Campaign.oracle
    f.Campaign.detail;
  Format.fprintf ppf "  schedule (cost %d): %a@."
    (Campaign.Async.cost f.Campaign.schedule)
    Campaign.Async.pp f.Campaign.schedule;
  Format.fprintf ppf "  cheapest break (cost %d, %d executions): %a (%s)@."
    (Campaign.Async.cost f.Campaign.shrunk)
    f.Campaign.shrink_executions Campaign.Async.pp f.Campaign.shrunk
    f.Campaign.shrunk_detail

let report_async_byz_subject spec hardening sched =
  let subject = AF.run_byz_schedule spec hardening sched in
  Format.printf "  %a outcome=%a@." Simkit.Metrics.pp_summary
    subject.AF.result.Asim.Event_sim.metrics Asim.Event_sim.pp_outcome
    subject.AF.result.Asim.Event_sim.outcome

let byz_fuzz_cmd =
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ]
         ~doc:"Protocol A variant to attack: $(b,a) (unhardened, expect a counterexample) or $(b,a+val) (validated, expect none).")
  in
  let executions_arg =
    Arg.(value & opt int 200 & info [ "executions" ]
         ~doc:"Random corruption/Byzantine schedules to run.")
  in
  let byz_arg =
    Arg.(value & opt (some int) None & info [ "byz" ] ~docv:"B"
         ~doc:"Byzantine processes per schedule (default t/3 - 1; must satisfy 0 <= B < t).")
  in
  let window_opt_arg =
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"ROUNDS"
         ~doc:"Fault-round window (default: twice the failure-free running time).")
  in
  let corpus_arg =
    Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Directory where cheapest-break schedules are written.")
  in
  let max_failures_arg =
    Arg.(value & opt int 3 & info [ "max-failures" ]
         ~doc:"Stop after this many (shrunk) violations.")
  in
  let async_arg =
    Arg.(value & flag & info [ "async" ]
         ~doc:"Attack the asynchronous substrate instead: corrupt/byz entries act on the reliable-link wire frames of hardened (or validated) async Protocol A.")
  in
  let run proto n t seed executions byz window corpus max_failures jobs async =
    match D.Fuzz.byz_hardening_of_name proto with
    | None ->
        prerr_endline ("unknown byz-fuzz protocol: " ^ proto ^ " (a, a+val)");
        exit 2
    | Some hardening ->
        check_campaign_config ~executions ~window;
        (match byz with
        | Some b when b < 0 || b >= t ->
            prerr_endline
              (Printf.sprintf "--byz must satisfy 0 <= B < t (got %d, t = %d)" b t);
            exit 2
        | _ -> ());
        let spec = D.Spec.make ~n ~t in
        let jobs = resolve_jobs jobs in
        let byz_count =
          match byz with Some b -> b | None -> min (max 0 ((t / 3) - 1)) (t - 1)
        in
        if async then begin
          let name = AF.byz_protocol_name hardening in
          let stats =
            AF.byz_campaign ~jobs ~seed:(Int64.of_int seed) ~executions ?byz
              ?window ~max_failures spec hardening
          in
          Format.printf "byz campaign: protocol=%s n=%d t=%d seed=%d byz=%d@."
            name n t seed byz_count;
          Format.printf "%a@." Campaign.pp_stats stats;
          List.iteri
            (fun i f ->
              Format.printf "%a" pp_async_byz_failure (i, f);
              report_async_byz_subject spec hardening f.Campaign.shrunk)
            stats.Campaign.failures;
          write_async_corpus ~corpus ~protocol:name ~seed
            stats.Campaign.failures;
          if stats.Campaign.failures <> [] then exit 1
        end
        else begin
          let name = D.Fuzz.byz_protocol_name hardening in
          let stats =
            D.Fuzz.byz_campaign ~jobs ~seed:(Int64.of_int seed) ~executions ?byz
              ?window ~max_failures spec hardening
          in
          Format.printf "byz campaign: protocol=%s n=%d t=%d seed=%d byz=%d@."
            name n t seed byz_count;
          Format.printf "%a@." Campaign.pp_stats stats;
          List.iteri
            (fun i f ->
              Format.printf "%a" pp_byz_failure (i, f);
              report_byz_subject spec hardening f.Campaign.shrunk)
            stats.Campaign.failures;
          write_corpus ~corpus ~protocol:name ~seed stats.Campaign.failures;
          if stats.Campaign.failures <> [] then exit 1
        end
  in
  Cmd.v
    (Cmd.info "byz-fuzz"
       ~doc:"Corruption/Byzantine storm campaign: forged and tampered checkpoint views against plain or validated Protocol A, shrinking any violation to the cheapest breaking schedule")
    Term.(
      const run $ proto_arg $ n_arg $ t_arg $ seed_arg $ executions_arg
      $ byz_arg $ window_opt_arg $ corpus_arg $ max_failures_arg $ jobs_arg
      $ async_arg)

let byz_replay_async text =
  match Campaign.Async.parse text with
  | Error msg -> prerr_endline ("parse error: " ^ msg); exit 2
  | Ok sched ->
      let meta key =
        match Campaign.Async.meta sched key with
        | Some v -> v
        | None ->
            prerr_endline ("schedule file lacks meta " ^ key);
            exit 2
      in
      let name = meta "protocol" in
      (match AF.byz_hardening_of_name name with
      | None ->
          prerr_endline
            ("not a byz-fuzz protocol: " ^ name ^ " (async-a, async-a+val)");
          exit 2
      | Some hardening ->
          let n = int_of_string (meta "n") and t = int_of_string (meta "t") in
          let spec = D.Spec.make ~n ~t in
          let subject = AF.run_byz_schedule spec hardening sched in
          let oracles = AF.byz_oracles spec ~hardening in
          Format.printf
            "byz replay: protocol=%s n=%d t=%d cost=%d schedule: %a@."
            (AF.byz_protocol_name hardening)
            n t
            (Campaign.Async.cost sched)
            Campaign.Async.pp sched;
          Format.printf "  %a outcome=%a@." Simkit.Metrics.pp_summary
            subject.AF.result.Asim.Event_sim.metrics Asim.Event_sim.pp_outcome
            subject.AF.result.Asim.Event_sim.outcome;
          (match Campaign.first_failure oracles subject with
          | None -> Format.printf "verdict: all oracles pass@."
          | Some (oracle, detail) ->
              Format.printf "verdict: oracle=%s FAILS (%s)@." oracle detail;
              exit 1))

let byz_replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Schedule file produced by byz-fuzz (or hand-written; may contain corrupt/byz entries). Both the synchronous (schedule v1) and asynchronous (async-schedule v1) formats are accepted.")
  in
  let run file =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    if String.length text >= 14 && String.sub text 0 14 = "async-schedule" then
      byz_replay_async text
    else
    match Campaign.Schedule.parse text with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 2
    | Ok sched ->
        let meta key =
          match Campaign.Schedule.meta sched key with
          | Some v -> v
          | None ->
              prerr_endline ("schedule file lacks meta " ^ key);
              exit 2
        in
        let name = meta "protocol" in
        (match D.Fuzz.byz_hardening_of_name name with
        | None ->
            prerr_endline ("not a byz-fuzz protocol: " ^ name ^ " (a, a+val)");
            exit 2
        | Some hardening ->
            let n = int_of_string (meta "n") and t = int_of_string (meta "t") in
            let spec = D.Spec.make ~n ~t in
            let max_rounds =
              D.Fuzz.byz_max_rounds spec ~window:(byz_horizon sched)
            in
            let subject = D.Fuzz.run_byz_schedule ~max_rounds spec hardening sched in
            let oracles = D.Fuzz.byz_oracles spec ~hardening in
            Format.printf
              "byz replay: protocol=%s n=%d t=%d cost=%d schedule: %a@."
              (D.Fuzz.byz_protocol_name hardening)
              n t
              (Campaign.Schedule.cost sched)
              Campaign.Schedule.pp sched;
            Format.printf "  %a@." D.Runner.pp subject.D.Fuzz.report;
            (match Campaign.first_failure oracles subject with
            | None -> Format.printf "verdict: all oracles pass@."
            | Some (oracle, detail) ->
                Format.printf "verdict: oracle=%s FAILS (%s)@." oracle detail;
                exit 1))
  in
  Cmd.v
    (Cmd.info "byz-replay"
       ~doc:"Re-run a serialized corruption/Byzantine schedule and re-judge it with the byz oracle stack")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* Async campaigns: async-fuzz + async-replay *)

let pp_async_failure ppf (i, (f : Campaign.Async.t Campaign.failure)) =
  Format.fprintf ppf "violation #%d: oracle=%s (%s)@." i f.Campaign.oracle
    f.Campaign.detail;
  Format.fprintf ppf "  schedule: %a@." Campaign.Async.pp f.Campaign.schedule;
  Format.fprintf ppf "  shrunk (%d executions): %a (%s)@."
    f.Campaign.shrink_executions Campaign.Async.pp f.Campaign.shrunk
    f.Campaign.shrunk_detail

let report_async_subject spec sched =
  let subject = AF.run_schedule spec sched in
  Format.printf "  %a outcome=%a@." Simkit.Metrics.pp_summary
    subject.AF.result.Asim.Event_sim.metrics Asim.Event_sim.pp_outcome
    subject.AF.result.Asim.Event_sim.outcome

let async_fuzz_cmd =
  let executions_arg =
    Arg.(value & opt int 100 & info [ "executions" ]
         ~doc:"Random async schedules to run.")
  in
  let window_opt_arg =
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"TICKS"
         ~doc:"Crash-tick window (default: twice the failure-free hardened running time).")
  in
  let corpus_arg =
    Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Directory where shrunk failing schedules are written.")
  in
  let work_cap_arg =
    Arg.(value & opt (some int) None & info [ "work-cap" ] ~docv:"UNITS"
         ~doc:"Extra oracle asserting total work <= $(i,UNITS). Setting it to n deliberately fails under duplication - the hook for demonstrating shrinking and replay.")
  in
  let max_failures_arg =
    Arg.(value & opt int 3 & info [ "max-failures" ]
         ~doc:"Stop after this many (shrunk) violations.")
  in
  let run n t seed executions window corpus work_cap max_failures jobs =
    check_campaign_config ~executions ~window;
    let spec = D.Spec.make ~n ~t in
    let jobs = resolve_jobs jobs in
    let extra =
      match work_cap with None -> [] | Some cap -> [ AF.work_cap cap ]
    in
    let stats =
      AF.campaign ~jobs ~seed:(Int64.of_int seed) ~executions ?window ~extra
        ~max_failures spec
    in
    Format.printf "async campaign: protocol=async-a n=%d t=%d seed=%d@." n t
      seed;
    Format.printf "%a@." Campaign.pp_stats stats;
    List.iteri
      (fun i f ->
        Format.printf "%a" pp_async_failure (i, f);
        report_async_subject spec f.Campaign.shrunk)
      stats.Campaign.failures;
    write_async_corpus ~corpus ~protocol:"async-a" ~seed stats.Campaign.failures;
    if stats.Campaign.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "async-fuzz"
       ~doc:"Async adversary campaign: crashes plus message loss/duplication/slowdown against the hardened asynchronous Protocol A, shrinking any violation")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ executions_arg $ window_opt_arg
      $ corpus_arg $ work_cap_arg $ max_failures_arg $ jobs_arg)

let async_replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Async schedule file produced by async-fuzz (or hand-written).")
  in
  let work_cap_arg =
    Arg.(value & opt (some int) None & info [ "work-cap" ] ~docv:"UNITS"
         ~doc:"Re-add the extra work <= $(i,UNITS) oracle used when the schedule was found.")
  in
  let run file work_cap =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Campaign.Async.parse text with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 2
    | Ok sched ->
        let meta key =
          match Campaign.Async.meta sched key with
          | Some v -> v
          | None ->
              prerr_endline ("schedule file lacks meta " ^ key);
              exit 2
        in
        let n = int_of_string (meta "n") and t = int_of_string (meta "t") in
        let spec = D.Spec.make ~n ~t in
        let subject = AF.run_schedule spec sched in
        let extra =
          match work_cap with None -> [] | Some cap -> [ AF.work_cap cap ]
        in
        let oracles = AF.oracles () @ extra in
        Format.printf "async replay: n=%d t=%d schedule: %a@." n t
          Campaign.Async.pp sched;
        Format.printf "  %a outcome=%a@." Simkit.Metrics.pp_summary
          subject.AF.result.Asim.Event_sim.metrics Asim.Event_sim.pp_outcome
          subject.AF.result.Asim.Event_sim.outcome;
        (match Campaign.first_failure oracles subject with
        | None -> Format.printf "verdict: all oracles pass@."
        | Some (oracle, detail) ->
            Format.printf "verdict: oracle=%s FAILS (%s)@." oracle detail;
            exit 1)
  in
  Cmd.v
    (Cmd.info "async-replay"
       ~doc:"Re-run a serialized async campaign schedule and re-judge it with the same oracle stack")
    Term.(const run $ file_arg $ work_cap_arg)

(* ------------------------------------------------------------------ *)
(* Real-process deployment: net-run + net-replay *)

module Net = Dhw_net

let net_protocol_of_name name =
  match String.lowercase_ascii name with
  | "a" -> Some "a"
  | "b" -> Some "b"
  | "a+rec" -> Some "a+rec"
  | "b+rec" -> Some "b+rec"
  | _ -> None

let find_node_exe = function
  | Some p -> p
  | None ->
      let cand =
        Filename.concat (Filename.dirname Sys.executable_name) "dhw_node.exe"
      in
      if Sys.file_exists cand then cand else "dhw_node.exe"

let fresh_run_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    (* Short names: a unix-socket path tops out around 108 bytes. *)
    let d = Filename.concat base (Printf.sprintf "dhw%d-%d" (Unix.getpid ()) i) in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Entries a real deployment cannot realize: there is no tamper model over
   sockets, so refuse rather than silently degrade. *)
let net_check_entries (sched : Campaign.Schedule.t) =
  List.iter
    (fun (e : Campaign.Schedule.entry) ->
      match e.mode with
      | Campaign.Schedule.Corrupt _ | Campaign.Schedule.Byzantine ->
          prerr_endline
            "net-run: corrupt/byzantine entries are not realizable over real \
             sockets";
          exit 2
      | _ -> ())
    sched.Campaign.Schedule.entries

let net_runner_report spec ~protocol (res : Net.Orchestrator.result) =
  {
    D.Runner.spec;
    protocol;
    metrics = res.Net.Orchestrator.metrics;
    statuses = res.Net.Orchestrator.statuses;
    outcome = Net.Orchestrator.to_run_outcome res.Net.Orchestrator.stop;
  }

(* The sim-vs-real differential: the same schedule through the simulator
   (its own fresh fault plan — plans are stateful) and through the real
   fleet must spend identical effort. *)
let net_sim_subject spec ~protocol ~rejoin_rounds ~max_rounds sched =
  match D.Fuzz.recovery_which_of_name protocol with
  | Some which when protocol = "a+rec" || protocol = "b+rec" ->
      D.Fuzz.run_recovery_schedule ~max_rounds ~rejoin_rounds spec which sched
  | _ -> (
      match protocol_of_name protocol with
      | Ok p -> D.Fuzz.run_schedule ~max_rounds spec p sched
      | Error (`Msg m) -> prerr_endline m; exit 2)

let net_parity_check ~(sim : D.Fuzz.subject) ~(real : D.Runner.report) =
  let sm = sim.D.Fuzz.report.D.Runner.metrics and rm = real.D.Runner.metrics in
  let measures =
    [
      ("work", Simkit.Metrics.work);
      ("messages", Simkit.Metrics.messages);
      ("rounds", Simkit.Metrics.rounds);
      ("persists", Simkit.Metrics.persists);
      ("restarts", Simkit.Metrics.restarts);
      ("crashes", Simkit.Metrics.crashes);
    ]
  in
  List.filter_map
    (fun (name, f) ->
      let s = f sm and r = f rm in
      if s = r then None else Some (Printf.sprintf "%s: sim=%d real=%d" name s r))
    measures

let net_exit (res : Net.Orchestrator.result) ~ok =
  exit_run ~ok
    (match res.Net.Orchestrator.stop with
    | Net.Orchestrator.Completed -> `Completed
    | Net.Orchestrator.Stalled _ | Net.Orchestrator.Node_failure _ -> `Stalled
    | Net.Orchestrator.Round_limit _ | Net.Orchestrator.Watchdog _ -> `Limit)

let net_print_report ~report_fmt ~fault_desc ~protocol spec
    (cfg : Net.Orchestrator.config) (res : Net.Orchestrator.result) rr =
  let correct = D.Runner.correct rr in
  (match report_fmt with
  | `Json ->
      let rep =
        D.Report.make ~kind:"net" ~protocol ~spec ~fault:fault_desc
          ~metrics:res.Net.Orchestrator.metrics
          ~outcome:(Net.Orchestrator.stop_to_string res.Net.Orchestrator.stop)
          ~correct
          ~survivors:(status_survivors res.Net.Orchestrator.statuses)
          ~crashed:(status_crashed res.Net.Orchestrator.statuses)
          ~extra:(Net.Orchestrator.transport_json cfg res)
          ()
      in
      print_endline (D.Report.to_string rep)
  | `Text ->
      Format.printf "%a@." D.Runner.pp rr;
      let s = res.Net.Orchestrator.transport in
      Format.printf
        "transport: connects=%d retries=%d timeouts=%d frames=%d/%d \
         spawns=%d kills=%d respawns=%d heartbeats=%d wall=%.2fs@."
        s.Net.Transport.connects s.Net.Transport.retries
        s.Net.Transport.timeouts s.Net.Transport.frames_sent
        s.Net.Transport.frames_received res.Net.Orchestrator.spawns
        res.Net.Orchestrator.kills res.Net.Orchestrator.respawns
        res.Net.Orchestrator.heartbeats res.Net.Orchestrator.wall_s;
      Format.printf "outcome: %s@."
        (Net.Orchestrator.stop_to_string res.Net.Orchestrator.stop);
      Format.printf "verdict: %s@." (if correct then "CORRECT" else "INCORRECT"));
  correct

let node_exe_arg =
  Arg.(value & opt (some string) None & info [ "node-exe" ] ~docv:"PATH"
       ~doc:"Path to the dhw_node binary (default: next to this executable).")

let addr_arg =
  Arg.(value & opt (some string) None & info [ "addr" ] ~docv:"ADDR"
       ~doc:"Control-plane address: $(b,unix:<path>) or $(b,tcp:<host>:<port>) (port 0 picks one). Default: a unix socket in a fresh temp dir.")

let watchdog_arg =
  Arg.(value & opt float 60. & info [ "watchdog" ] ~docv:"SECONDS"
       ~doc:"Wall-clock budget for the whole run.")

let io_timeout_arg =
  Arg.(value & opt float 10. & info [ "io-timeout" ] ~docv:"SECONDS"
       ~doc:"Per-RPC deadline (handshake, step, heartbeat).")

let rejoin_arg =
  Arg.(value & opt int 3 & info [ "rejoin-rounds" ] ~docv:"ROUNDS"
       ~doc:"State-transfer window a restarted node spends rebooting.")

let max_rounds_arg =
  Arg.(value & opt int 10_000 & info [ "max-rounds" ] ~doc:"Round limit.")

let keep_dir_arg =
  Arg.(value & flag & info [ "keep-dir" ]
       ~doc:"Keep the run directory (sockets, checkpoints, node logs) instead of deleting it.")

let diff_arg =
  Arg.(value & flag & info [ "diff" ]
       ~doc:"Also run the identical schedule in the simulator and require effort parity (work, messages, rounds, persists, restarts, crashes).")

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

(* Run a schedule against a real-process fleet; shared by net-run and
   net-replay. Returns (config, orchestrator result, runner-shaped
   report). With [~trace_out:(Some path)] the fleet runs traced: nodes and
   orchestrator write span files under the run dir and the merged
   dhw-trace/v1 stream is copied to [path] before the run dir is deleted. *)
let net_execute ~node_exe ~addr ~watchdog ~io_timeout ~rejoin_rounds
    ~max_rounds ~keep_dir ~trace_out spec ~protocol sched =
  net_check_entries sched;
  let run_dir = fresh_run_dir () in
  let addr =
    match addr with
    | Some s -> (
        match Net.Transport.addr_of_string s with
        | Ok a -> a
        | Error e -> prerr_endline e; exit 2)
    | None -> Net.Transport.Unix_sock (Filename.concat run_dir "ctl.sock")
  in
  let trace_dir =
    Option.map (fun _ -> Filename.concat run_dir "trace") trace_out
  in
  let cfg =
    Net.Orchestrator.config
      ~fault:(Campaign.Schedule.to_fault sched)
      ~max_rounds ~rejoin_rounds ~watchdog_s:watchdog ~io_timeout_s:io_timeout
      ~log_dir:run_dir ?trace_dir ~node_exe:(find_node_exe node_exe) ~addr
      ~protocol ~n:(D.Spec.n spec) ~t:(D.Spec.processes spec)
      ~ckpt_dir:(Filename.concat run_dir "ckpt") ()
  in
  let res = Net.Orchestrator.run cfg in
  (match (trace_out, trace_dir) with
  | Some out, Some dir ->
      let merged = Filename.concat dir "trace.jsonl" in
      if Sys.file_exists merged then copy_file merged out
      else Printf.eprintf "net: no merged trace at %s\n%!" merged
  | _ -> ());
  if keep_dir then Printf.eprintf "run dir kept: %s\n%!" run_dir
  else rm_rf run_dir;
  (cfg, res, net_runner_report spec ~protocol res)

let net_run_cmd =
  let proto_arg =
    Arg.(value & opt string "a+rec" & info [ "p"; "protocol" ]
         ~doc:"Protocol to deploy: $(b,a), $(b,b), $(b,a+rec) or $(b,b+rec).")
  in
  let run proto n t crashes restarts node_exe addr watchdog io_timeout
      rejoin_rounds max_rounds keep_dir diff report_fmt trace_out =
    let protocol =
      match net_protocol_of_name proto with
      | Some p -> p
      | None ->
          prerr_endline
            ("net-run: unknown protocol " ^ proto ^ " (a, b, a+rec, b+rec)");
          exit 2
    in
    let recovery = protocol = "a+rec" || protocol = "b+rec" in
    if restarts <> [] && not recovery then begin
      prerr_endline "net-run: --restarts needs a recovery protocol (a+rec or b+rec)";
      exit 2
    end;
    let spec = D.Spec.make ~n ~t in
    let entry mode (victim, at) = { Campaign.Schedule.victim; at; mode } in
    let sched =
      Campaign.Schedule.make
        ~meta:
          [ ("protocol", protocol); ("n", string_of_int n); ("t", string_of_int t) ]
        (List.map (entry Campaign.Schedule.Silent) crashes
        @ List.map (entry Campaign.Schedule.Restart) restarts)
    in
    let fault_desc =
      match (crashes, restarts) with
      | [], [] -> "none"
      | cs, [] -> crash_desc cs
      | [], rs -> restart_desc rs
      | cs, rs -> crash_desc cs ^ "; " ^ restart_desc rs
    in
    let cfg, res, rr =
      net_execute ~node_exe ~addr ~watchdog ~io_timeout ~rejoin_rounds
        ~max_rounds ~keep_dir ~trace_out spec ~protocol sched
    in
    let correct =
      net_print_report ~report_fmt ~fault_desc ~protocol spec cfg res rr
    in
    let parity_ok =
      if not diff then true
      else begin
        let sim =
          net_sim_subject spec ~protocol ~rejoin_rounds ~max_rounds sched
        in
        match net_parity_check ~sim ~real:rr with
        | [] ->
            Format.printf "diff: sim and real runs agree on every measure@.";
            true
        | ms ->
            Format.printf "diff: sim-vs-real MISMATCH (%s)@."
              (String.concat "; " ms);
            false
      end
    in
    if not parity_ok then exit 1;
    net_exit res ~ok:correct
  in
  Cmd.v
    (Cmd.info "net-run"
       ~doc:"Run a Do-All protocol as real OS processes over sockets, with SIGKILL crashes and checkpoint-recovering restarts")
    Term.(
      const run $ proto_arg $ n_arg $ t_arg $ crashes_arg $ restarts_arg
      $ node_exe_arg $ addr_arg $ watchdog_arg $ io_timeout_arg $ rejoin_arg
      $ max_rounds_arg $ keep_dir_arg $ diff_arg $ report_arg $ trace_out_arg)

let net_replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Schedule file (from fuzz, recovery-fuzz, or hand-written).")
  in
  let run file node_exe addr watchdog io_timeout rejoin_rounds max_rounds
      keep_dir trace_out =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Campaign.Schedule.parse text with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 2
    | Ok sched ->
        let meta key =
          match Campaign.Schedule.meta sched key with
          | Some v -> v
          | None ->
              prerr_endline ("schedule file lacks meta " ^ key);
              exit 2
        in
        let protocol =
          match net_protocol_of_name (meta "protocol") with
          | Some p -> p
          | None ->
              prerr_endline
                ("net-replay: protocol " ^ meta "protocol"
                ^ " has no real-process deployment (a, b, a+rec, b+rec)");
              exit 2
        in
        let n = int_of_string (meta "n") and t = int_of_string (meta "t") in
        let spec = D.Spec.make ~n ~t in
        let _cfg, res, rr =
          net_execute ~node_exe ~addr ~watchdog ~io_timeout ~rejoin_rounds
            ~max_rounds ~keep_dir ~trace_out spec ~protocol sched
        in
        Format.printf "net replay: protocol=%s n=%d t=%d schedule: %a@."
          protocol n t Campaign.Schedule.pp sched;
        Format.printf "  %a@." D.Runner.pp rr;
        Format.printf "  outcome: %s@."
          (Net.Orchestrator.stop_to_string res.Net.Orchestrator.stop);
        let subject = { D.Fuzz.report = rr; trace = res.Net.Orchestrator.trace } in
        (* The same oracle stack a simulator replay of this schedule faces. *)
        let oracles =
          match D.Fuzz.recovery_which_of_name protocol with
          | Some which when protocol = "a+rec" || protocol = "b+rec" ->
              let horizon =
                List.fold_left
                  (fun acc (e : Campaign.Schedule.entry) -> max acc e.at)
                  0 sched.Campaign.Schedule.entries
              in
              D.Fuzz.recovery_oracles spec which ~horizon
          | _ -> D.Fuzz.oracles spec ~protocol
        in
        let oracle_failure = Campaign.first_failure oracles subject in
        (match oracle_failure with
        | None -> Format.printf "oracles: all pass@."
        | Some (oracle, detail) ->
            Format.printf "oracles: %s FAILS (%s)@." oracle detail);
        let sim =
          net_sim_subject spec ~protocol ~rejoin_rounds ~max_rounds sched
        in
        let parity = net_parity_check ~sim ~real:rr in
        (match parity with
        | [] -> Format.printf "diff: sim and real runs agree on every measure@."
        | ms ->
            Format.printf "diff: sim-vs-real MISMATCH (%s)@."
              (String.concat "; " ms));
        if oracle_failure <> None || parity <> [] then exit 1;
        net_exit res ~ok:true
  in
  Cmd.v
    (Cmd.info "net-replay"
       ~doc:"Re-run a serialized schedule against real processes, re-judge with the simulator's oracle stack, and require sim-vs-real effort parity")
    Term.(
      const run $ file_arg $ node_exe_arg $ addr_arg $ watchdog_arg
      $ io_timeout_arg $ rejoin_arg $ max_rounds_arg $ keep_dir_arg
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* Asynchronous real-process fleet: async-net-run + async-net-replay.
   No round-lockstep control plane: dhw_node --async peers exchange
   protocol traffic and heartbeats directly over a datagram mesh, detect
   failures organically, and the runner only spawns / SIGKILLs /
   respawns / collects. *)

let async_net_check (sched : Campaign.Async.t) =
  if sched.Campaign.Async.corrupt_bp > 0 || sched.Campaign.Async.byz <> [] then begin
    prerr_endline
      "async-net-run: corrupt/byzantine entries are not realizable over real \
       sockets";
    exit 2
  end;
  List.iter
    (fun (r : Campaign.Async.crash) ->
      if
        not
          (List.exists
             (fun (c : Campaign.Async.crash) ->
               c.Campaign.Async.victim = r.Campaign.Async.victim
               && c.Campaign.Async.at < r.Campaign.Async.at)
             sched.Campaign.Async.crashes)
      then begin
        Printf.eprintf
          "async-net-run: restart %d@%d has no earlier crash of that pid\n%!"
          r.Campaign.Async.victim r.Campaign.Async.at;
        exit 2
      end)
    sched.Campaign.Async.restarts

(* The canonical stdout: protocol-level facts that are deterministic by
   construction for a given schedule — outcome of the oracle stack, unit
   coverage, multiplicity, work. Timing-dependent transport/detector
   counters go to the rich report only, so two replays of the same
   schedule print byte-identical canonical sections (the CI determinism
   leg cmps them). *)
let async_net_print_canonical spec sched (rep : Net.Fleet.report) =
  Format.printf "async-net: n=%d t=%d schedule: %a@." (D.Spec.n spec)
    (D.Spec.processes spec) Campaign.Async.pp sched;
  Format.printf "units-covered=%d/%d max-multiplicity=%d work=%d@."
    rep.Net.Fleet.units_covered (D.Spec.n spec) rep.Net.Fleet.max_multiplicity
    rep.Net.Fleet.total_work;
  Format.printf
    "oracles: completed=%b no-lost-unit=%b detector-complete=%b \
     bounded-duplication=%b@."
    rep.Net.Fleet.completed rep.Net.Fleet.no_lost_unit
    rep.Net.Fleet.detector_complete rep.Net.Fleet.bounded_dup;
  Format.printf "verdict: %s@."
    (if rep.Net.Fleet.ok then "all oracles pass" else "ORACLE FAILURE")

let async_net_rich_report ~report_fmt spec sched (rep : Net.Fleet.report) =
  let transport_totals =
    List.fold_left
      (fun (ds, rt, ab, dg, un) (nr : Net.Fleet.node_report) ->
        let c = Net.Fleet.counter nr.Net.Fleet.nr_counters in
        ( ds + c "data_sent",
          rt + c "retransmits",
          ab + c "abandoned",
          dg + c "dg_sent",
          un + c "undeliverable" ))
      (0, 0, 0, 0, 0) rep.Net.Fleet.nodes
  in
  let detector_totals =
    List.fold_left
      (fun (su, fs, us, pk) (nr : Net.Fleet.node_report) ->
        let c = Net.Fleet.counter nr.Net.Fleet.nr_counters in
        ( su + c "suspicions",
          fs + c "false_suspicions",
          us + c "unsuspects",
          pk + c "parks" ))
      (0, 0, 0, 0) rep.Net.Fleet.nodes
  in
  match report_fmt with
  | `Text ->
      let ds, rt, ab, dg, un = transport_totals in
      Format.printf
        "transport: data=%d retransmits=%d abandoned=%d datagrams=%d \
         undeliverable=%d wall=%.2fs@."
        ds rt ab dg un rep.Net.Fleet.wall_s;
      let su, fs, us, pk = detector_totals in
      Format.printf
        "detector: suspicions=%d false=%d unsuspects=%d parks=%d@." su fs us
        pk;
      let h = rep.Net.Fleet.detect_hist in
      if Dhw_util.Hist.count h > 0 then
        Format.printf "detection latency (ticks): p50=%d p99=%d max=%d@."
          (Dhw_util.Hist.quantile h 0.5)
          (Dhw_util.Hist.quantile h 0.99)
          (Dhw_util.Hist.max_value h);
      let h = rep.Net.Fleet.recover_hist in
      if Dhw_util.Hist.count h > 0 then
        Format.printf
          "false-suspicion recovery latency (ticks): p50=%d p99=%d max=%d@."
          (Dhw_util.Hist.quantile h 0.5)
          (Dhw_util.Hist.quantile h 0.99)
          (Dhw_util.Hist.max_value h)
  | `Json ->
      let ds, rt, ab, dg, un = transport_totals in
      let su, fs, us, pk = detector_totals in
      let node_json (nr : Net.Fleet.node_report) =
        J.Obj
          [
            ("pid", J.Int nr.Net.Fleet.nr_pid);
            ("incarnations", J.Int nr.Net.Fleet.nr_incarnations);
            ( "exit",
              match nr.Net.Fleet.nr_exit with
              | None -> J.Null
              | Some c -> J.Int c );
            ( "counters",
              J.Obj
                (List.map
                   (fun (k, v) -> (k, J.Int v))
                   nr.Net.Fleet.nr_counters) );
          ]
      in
      print_endline
        (J.to_string
           (J.Obj
              [
                ("kind", J.Str "async-net");
                ("protocol", J.Str "async-a");
                ("n", J.Int (D.Spec.n spec));
                ("t", J.Int (D.Spec.processes spec));
                ("schedule", J.Str (Fmt.str "%a" Campaign.Async.pp sched));
                ("ok", J.Bool rep.Net.Fleet.ok);
                ("completed", J.Bool rep.Net.Fleet.completed);
                ("no_lost_unit", J.Bool rep.Net.Fleet.no_lost_unit);
                ("detector_complete", J.Bool rep.Net.Fleet.detector_complete);
                ("bounded_duplication", J.Bool rep.Net.Fleet.bounded_dup);
                ("units_covered", J.Int rep.Net.Fleet.units_covered);
                ("max_multiplicity", J.Int rep.Net.Fleet.max_multiplicity);
                ("work", J.Int rep.Net.Fleet.total_work);
                ("kills", J.Int rep.Net.Fleet.kills);
                ("restarts", J.Int rep.Net.Fleet.restarts);
                ("wall_s", J.Float rep.Net.Fleet.wall_s);
                ( "transport",
                  J.Obj
                    [
                      ("data_sent", J.Int ds);
                      ("retransmits", J.Int rt);
                      ("abandoned", J.Int ab);
                      ("datagrams_sent", J.Int dg);
                      ("undeliverable", J.Int un);
                    ] );
                ( "detector",
                  J.Obj
                    [
                      ("suspicions", J.Int su);
                      ("false_suspicions", J.Int fs);
                      ("unsuspects", J.Int us);
                      ("parks", J.Int pk);
                      ( "detection_latency_ticks",
                        Dhw_util.Hist.to_json rep.Net.Fleet.detect_hist );
                      ( "recovery_latency_ticks",
                        Dhw_util.Hist.to_json rep.Net.Fleet.recover_hist );
                    ] );
                ("nodes", J.Arr (List.map node_json rep.Net.Fleet.nodes));
              ]))

(* The sim side of --diff: the same schedule through the asynchronous
   simulator (which treats every crash as final — restarts are a
   real-fleet notion). Work and unit coverage are the protocol-level
   measures both sides must agree on; message counts are timing-dependent
   on a real network and deliberately excluded. *)
let async_net_parity spec sched (rep : Net.Fleet.report) =
  let subject = AF.run_schedule spec sched in
  let sim_work =
    Simkit.Metrics.work subject.AF.result.Asim.Event_sim.metrics
  in
  let sim_units =
    match Campaign.first_failure [ AF.no_lost_unit ] subject with
    | None -> D.Spec.n spec
    | Some _ -> -1
  in
  List.filter_map
    (fun (name, s, r) ->
      if s = r then None else Some (Printf.sprintf "%s: sim=%d real=%d" name s r))
    [
      ("work", sim_work, rep.Net.Fleet.total_work);
      ("units", sim_units, rep.Net.Fleet.units_covered);
    ]

let async_net_exit (rep : Net.Fleet.report) ~parity =
  if rep.Net.Fleet.watchdog_fired then exit 4;
  if
    List.exists
      (fun (nr : Net.Fleet.node_report) -> nr.Net.Fleet.nr_exit = Some 3)
      rep.Net.Fleet.nodes
  then exit 3;
  if (not rep.Net.Fleet.ok) || parity <> [] then exit 1

(* Shared by async-net-run and async-net-replay. *)
let async_net_execute ~node_exe ~watchdog ~tick_ms ~max_ticks ~keep_dir
    ~trace_out ~diff ~report_fmt spec sched =
  async_net_check sched;
  let run_dir = fresh_run_dir () in
  let cfg =
    Net.Fleet.config ~tick_ms ~watchdog_s:watchdog ~max_ticks ~dir:run_dir
      ~node_exe:(find_node_exe node_exe) ~spec ~sched ()
  in
  let rep = Net.Fleet.run cfg in
  (match trace_out with
  | Some out ->
      Dhw_util.Spanfile.write_file
        ~meta:
          [
            ("protocol", J.Str "async-a");
            ("n", J.Int (D.Spec.n spec));
            ("t", J.Int (D.Spec.processes spec));
          ]
        ~source:"fleet" out rep.Net.Fleet.spans
  | None -> ());
  if keep_dir then Printf.eprintf "run dir kept: %s\n%!" run_dir
  else rm_rf run_dir;
  async_net_print_canonical spec sched rep;
  let parity =
    if diff then begin
      let ms = async_net_parity spec sched rep in
      (match ms with
      | [] -> Format.printf "diff: sim and real runs agree on work and units@."
      | ms ->
          Format.printf "diff: sim-vs-real MISMATCH (%s)@."
            (String.concat "; " ms));
      ms
    end
    else []
  in
  (match report_fmt with
  | `Text -> async_net_rich_report ~report_fmt:`Text spec sched rep
  | `Json -> async_net_rich_report ~report_fmt:`Json spec sched rep);
  async_net_exit rep ~parity

let tick_ms_arg =
  Arg.(value & opt int 5 & info [ "tick-ms" ] ~docv:"MS"
       ~doc:"Wall-clock quantum one protocol tick maps to.")

let max_ticks_arg =
  Arg.(value & opt int 20_000 & info [ "max-ticks" ]
       ~doc:"Per-node stall bound in ticks.")

let sever_conv =
  let parse s =
    (* SRC>DST@FROM-TO *)
    match String.split_on_char '@' s with
    | [ link; window ] -> (
        match
          (String.split_on_char '>' link, String.split_on_char '-' window)
        with
        | [ a; b ], [ f; t ] -> (
            try Ok (int_of_string a, int_of_string b, int_of_string f, int_of_string t)
            with _ -> Error (`Msg "expected SRC>DST@FROM-TO"))
        | _ -> Error (`Msg "expected SRC>DST@FROM-TO"))
    | _ -> Error (`Msg "expected SRC>DST@FROM-TO")
  in
  let print ppf (a, b, f, t) = Format.fprintf ppf "%d>%d@@%d-%d" a b f t in
  Arg.conv (parse, print)

let async_net_run_cmd =
  let drop_arg =
    Arg.(value & opt int 0 & info [ "drop" ] ~docv:"BP"
         ~doc:"Per-message loss probability in basis points (3000 = 30%).")
  in
  let dup_arg =
    Arg.(value & opt int 0 & info [ "dup" ] ~docv:"BP"
         ~doc:"Per-message duplication probability in basis points.")
  in
  let crash_arg =
    Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~docv:"PID@TICK"
         ~doc:"SIGKILL $(i,PID)'s process at $(i,TICK) (repeatable).")
  in
  let restart_arg =
    Arg.(value & opt_all crash_conv [] & info [ "restart" ] ~docv:"PID@TICK"
         ~doc:"Respawn a SIGKILLed $(i,PID) at $(i,TICK) with $(b,--recover), reading its on-disk checkpoint (repeatable).")
  in
  let sever_arg =
    Arg.(value & opt_all sever_conv [] & info [ "sever" ] ~docv:"SRC>DST@FROM-TO"
         ~doc:"Cut the directed link $(i,SRC)→$(i,DST) over the tick window (repeatable).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Also serialize the schedule to $(i,FILE) for async-net-replay.")
  in
  let run n t seed drop dup crashes restarts severs node_exe watchdog tick_ms
      max_ticks keep_dir trace_out diff report_fmt out =
    let spec = D.Spec.make ~n ~t in
    let sched =
      Campaign.Async.make
        ~meta:
          [
            ("protocol", "async-a");
            ("n", string_of_int n);
            ("t", string_of_int t);
          ]
        ~crashes:
          (List.map (fun (p, at) -> { Campaign.Async.victim = p; at }) crashes)
        ~restarts:
          (List.map (fun (p, at) -> { Campaign.Async.victim = p; at }) restarts)
        ~drop_bp:drop ~dup_bp:dup
        ~severs:
          (List.map
             (fun (a, b, f, t) ->
               { Campaign.Async.s_src = a; s_dst = b; s_from = f; s_to = t })
             severs)
        ~seed:(Int64.of_int seed) ()
    in
    (match out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Campaign.Async.print sched);
        close_out oc);
    async_net_execute ~node_exe ~watchdog ~tick_ms ~max_ticks ~keep_dir
      ~trace_out ~diff ~report_fmt spec sched
  in
  Cmd.v
    (Cmd.info "async-net-run"
       ~doc:"Run the asynchronous Protocol A as a fleet of real dhw_node processes exchanging datagrams peer-to-peer, with organic heartbeat failure detection, seeded chaos (drop/duplicate/delay/sever), real SIGKILLs and --recover respawns")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ drop_arg $ dup_arg $ crash_arg
      $ restart_arg $ sever_arg $ node_exe_arg $ watchdog_arg $ tick_ms_arg
      $ max_ticks_arg $ keep_dir_arg $ trace_out_arg $ diff_arg $ report_arg
      $ out_arg)

let async_net_replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Async schedule file (async-schedule v1, as written by async-net-run --out or async-fuzz).")
  in
  let run file node_exe watchdog tick_ms max_ticks keep_dir trace_out diff
      report_fmt =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Campaign.Async.parse text with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 2
    | Ok sched ->
        let meta key =
          match Campaign.Async.meta sched key with
          | Some v -> v
          | None ->
              prerr_endline ("schedule file lacks meta " ^ key);
              exit 2
        in
        let n = int_of_string (meta "n") and t = int_of_string (meta "t") in
        let spec = D.Spec.make ~n ~t in
        async_net_execute ~node_exe ~watchdog ~tick_ms ~max_ticks ~keep_dir
          ~trace_out ~diff ~report_fmt spec sched
  in
  Cmd.v
    (Cmd.info "async-net-replay"
       ~doc:"Re-run a serialized async schedule against a real dhw_node fleet; the canonical stdout section is deterministic for a fixed schedule, so two replays can be compared byte-for-byte")
    Term.(
      const run $ file_arg $ node_exe_arg $ watchdog_arg $ tick_ms_arg
      $ max_ticks_arg $ keep_dir_arg $ trace_out_arg $ diff_arg $ report_arg)

let trace_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"A dhw-trace/v1 span file (per-pid, control-plane, or merged).")
  in
  let chrome_arg =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"PATH"
         ~doc:"Export Chrome trace-event JSON (open in chrome://tracing or ui.perfetto.dev) to $(i,PATH); $(b,-) writes to stdout.")
  in
  let width_arg =
    Arg.(value & opt int 64 & info [ "width" ] ~docv:"COLS"
         ~doc:"ASCII timeline width in columns.")
  in
  let run file chrome width =
    match Dhw_util.Spanfile.read_file file with
    | Error e -> prerr_endline ("trace: " ^ e); exit 2
    | Ok { Dhw_util.Spanfile.spans; _ } -> (
        let spans = Dhw_util.Spanfile.merge [ spans ] in
        match chrome with
        | Some path ->
            let j = J.pretty (Dhw_util.Spanfile.to_chrome spans) in
            if path = "-" then print_endline j
            else begin
              let oc = open_out path in
              output_string oc j;
              output_char oc '\n';
              close_out oc;
              Printf.printf "wrote %s (%d spans)\n" path (List.length spans)
            end
        | None -> Dhw_util.Spanfile.render ~width Format.std_formatter spans)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Render a dhw-trace/v1 span file as per-pid ASCII timelines, or export it as Chrome trace-event JSON")
    Term.(const run $ file_arg $ chrome_arg $ width_arg)

let () =
  let doc = "Do-All protocols of Dwork, Halpern and Waarts (PODC 1992)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "doall_cli" ~doc)
          [ run_cmd; timeline_cmd; ba_cmd; async_cmd; shmem_cmd; bootstrap_cmd;
            fuzz_cmd; replay_cmd; recovery_fuzz_cmd; recovery_replay_cmd;
            byz_fuzz_cmd; byz_replay_cmd; async_fuzz_cmd; async_replay_cmd;
            net_run_cmd; net_replay_cmd; async_net_run_cmd;
            async_net_replay_cmd; trace_cmd ]))
