(* Property tests for the √t-grid: the group and work partitions must
   exactly cover their domains for every instance shape, and reduce to the
   paper's layout on perfect squares. *)

module Grid = Doall.Grid
module Intmath = Dhw_util.Intmath

let gen_spec =
  QCheck2.Gen.(
    map (fun (n, t) -> Doall.Spec.make ~n ~t) (pair (1 -- 300) (1 -- 40)))

let prop_groups_partition =
  Helpers.qcheck_case ~count:200 ~name:"groups partition the processes" gen_spec
    (fun spec ->
      let g = Grid.make spec in
      let t = Doall.Spec.processes spec in
      let seen = Array.make t 0 in
      for grp = 1 to Grid.n_groups g do
        List.iter (fun pid -> seen.(pid) <- seen.(pid) + 1) (Grid.members g grp)
      done;
      Array.for_all (( = ) 1) seen
      && List.for_all
           (fun pid -> List.mem pid (Grid.members g (Grid.group_of g pid)))
           (List.init t Fun.id))

let prop_subchunks_partition =
  Helpers.qcheck_case ~count:200 ~name:"subchunks partition the units" gen_spec
    (fun spec ->
      let g = Grid.make spec in
      let n = Doall.Spec.n spec in
      let seen = Array.make n 0 in
      for c = 1 to Grid.n_subchunks g do
        List.iter (fun u -> seen.(u) <- seen.(u) + 1) (Grid.subchunk_units g c)
      done;
      Array.for_all (( = ) 1) seen)

let prop_subchunk_sizes =
  Helpers.qcheck_case ~count:200 ~name:"subchunk sizes bounded and ordered" gen_spec
    (fun spec ->
      let g = Grid.make spec in
      let max_size = Grid.subchunk_size_max g in
      let ok = ref true in
      let prev_hi = ref (-1) in
      for c = 1 to Grid.n_subchunks g do
        let units = Grid.subchunk_units g c in
        if List.length units > max_size || List.length units < 1 then ok := false;
        List.iter
          (fun u ->
            if u <= !prev_hi then ok := false;
            prev_hi := u)
          units
      done;
      !ok)

let prop_members_above =
  Helpers.qcheck_case ~count:200 ~name:"members_above = higher own-group pids" gen_spec
    (fun spec ->
      let g = Grid.make spec in
      let t = Doall.Spec.processes spec in
      List.for_all
        (fun pid ->
          let above = Grid.members_above g pid in
          List.for_all (fun k -> k > pid && Grid.group_of g k = Grid.group_of g pid) above
          && List.length above
             = List.length
                 (List.filter (fun k -> k > pid) (Grid.members g (Grid.group_of g pid))))
        (List.init t Fun.id))

let prop_chunk_ends =
  Helpers.qcheck_case ~count:200 ~name:"chunk ends: multiples of s plus the last" gen_spec
    (fun spec ->
      let g = Grid.make spec in
      let s = Grid.group_size g in
      let last = Grid.n_subchunks g in
      Grid.is_chunk_end g last
      && List.for_all
           (fun c -> Grid.is_chunk_end g c = (c mod s = 0 || c = last))
           (List.init last (fun i -> i + 1)))

let test_perfect_square_layout () =
  (* n = 256, t = 16: the paper's exact layout *)
  let g = Grid.make (Doall.Spec.make ~n:256 ~t:16) in
  Alcotest.(check int) "group size √t" 4 (Grid.group_size g);
  Alcotest.(check int) "√t groups" 4 (Grid.n_groups g);
  Alcotest.(check int) "t subchunks" 16 (Grid.n_subchunks g);
  Alcotest.(check int) "subchunk size n/t" 16 (Grid.subchunk_size_max g);
  Alcotest.(check (list int)) "group 2 members" [ 4; 5; 6; 7 ] (Grid.members g 2);
  Alcotest.(check int) "group of pid 5" 2 (Grid.group_of g 5);
  Alcotest.(check int) "rank of pid 5" 1 (Grid.rank_in_group g 5);
  Alcotest.(check int) "chunk ends" 4 (Grid.n_chunk_ends g);
  Alcotest.(check (list int)) "subchunk 1 units" (List.init 16 Fun.id)
    (Grid.subchunk_units g 1)

let test_deadline_budget_dominates () =
  (* DD separation: the budget L must exceed any active script's length,
     measured directly on full takeover scripts. *)
  List.iter
    (fun (n, t) ->
      let spec = Doall.Spec.make ~n ~t in
      let g = Grid.make spec in
      let l = Grid.max_active_rounds g in
      for pid = 0 to t - 1 do
        let script = Doall.Ckpt_script.takeover_script g pid Doall.Ckpt_script.No_msg in
        let rounds = Doall.Ckpt_script.script_rounds script in
        if rounds >= l then
          Alcotest.failf "script takes %d rounds >= budget %d at n=%d t=%d pid=%d"
            rounds l n t pid
      done)
    [ (1, 1); (10, 3); (100, 16); (64, 8); (37, 11); (200, 25); (5, 20) ]

let suite =
  [
    prop_groups_partition;
    prop_subchunks_partition;
    prop_subchunk_sizes;
    prop_members_above;
    prop_chunk_ends;
    Alcotest.test_case "perfect-square layout" `Quick test_perfect_square_layout;
    Alcotest.test_case "deadline budget dominates scripts" `Quick test_deadline_budget_dominates;
  ]
