let () =
  Alcotest.run "dhw-work"
    [
      ("util", Test_util.suite);
      ("unitset", Test_unitset.suite);
      ("sim-kernel", Test_sim.suite);
      ("audit", Test_audit.suite);
      ("grid", Test_grid.suite);
      ("protocol-A", Test_protocol_a.suite);
      ("protocol-B", Test_protocol_b.suite);
      ("protocol-C", Test_protocol_c.suite);
      ("c-views", Test_views.suite);
      ("protocol-D", Test_protocol_d.suite);
      ("baselines", Test_baselines.suite);
      ("async", Test_asim.suite);
      ("agreement", Test_agreement.suite);
      ("shmem", Test_shmem.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("integration", Test_integration.suite);
      ("scale", Test_scale.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("campaign", Test_campaign.suite);
      ("recovery", Test_recovery.suite);
      ("observability", Test_obs.suite);
      ("pool", Test_pool.suite);
      ("cli", Test_cli.suite);
      ("net", Test_net.suite);
      ("hist", Test_hist.suite);
      ("trace", Test_trace.suite);
    ]
