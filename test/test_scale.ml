(* Larger instances: the theorem bounds must hold as n and t grow, and the
   event-driven kernel must stay fast enough for these to run as ordinary
   test cases. *)

let test_a_at_scale () =
  let spec = Helpers.spec ~n:10_000 ~t:100 in
  let grid = Doall.Grid.make spec in
  let fault =
    Simkit.Fault.crash_active_after_work ~units_between_crashes:101 ~max_crashes:99
  in
  let r = Helpers.run ~fault spec Doall.Protocol_a.protocol in
  Helpers.check_correct "A 10k/100" r;
  let m = Helpers.metrics r in
  Alcotest.(check bool) "work bound" true
    (Simkit.Metrics.work m <= Doall.Bounds.a_work grid);
  Alcotest.(check bool) "msg bound" true
    (Simkit.Metrics.messages m <= Doall.Bounds.a_msgs grid);
  Alcotest.(check bool) "round bound" true
    (Simkit.Metrics.rounds m <= Doall.Bounds.a_rounds grid)

let test_b_at_scale () =
  let spec = Helpers.spec ~n:10_000 ~t:100 in
  let grid = Doall.Grid.make spec in
  let fault =
    Simkit.Fault.crash_active_after_work ~units_between_crashes:1 ~max_crashes:99
  in
  let r = Helpers.run ~fault spec Doall.Protocol_b.protocol in
  Helpers.check_correct "B 10k/100" r;
  Alcotest.(check bool) "linear-time bound at scale" true
    (Simkit.Metrics.rounds (Helpers.metrics r) <= Doall.Bounds.b_rounds grid)

let test_d_at_scale () =
  let spec = Helpers.spec ~n:8_000 ~t:100 in
  let fault =
    Simkit.Fault.crash_silently_at (List.init 30 (fun i -> (i, 2 * i)))
  in
  let r = Helpers.run ~fault spec Doall.Protocol_d.protocol in
  Helpers.check_correct "D 8k/100" r;
  let f = Doall.Runner.crashed r in
  Alcotest.(check bool) "round bound at scale" true
    (Simkit.Metrics.rounds (Helpers.metrics r) <= Doall.Bounds.d_rounds spec ~f)

let test_async_at_scale () =
  let spec = Helpers.spec ~n:5_000 ~t:50 in
  let crash_at = List.init 49 (fun i -> (i, 40 * i)) in
  let r = Asim.Async_protocol_a.run ~crash_at ~max_delay:12 ~max_lag:30 spec in
  Alcotest.(check bool) "completed" true (Asim.Event_sim.completed r);
  Alcotest.(check bool) "all done" true (Simkit.Metrics.all_units_done r.metrics);
  Alcotest.(check bool) "work bound" true
    (Simkit.Metrics.work r.metrics
    <= Doall.Bounds.a_work (Doall.Grid.make spec))

let test_kernel_long_idle_spans () =
  (* a single deadline 10^15 rounds out must still run instantly *)
  let far = 1_000_000_000_000_000 in
  let proc =
    {
      Simkit.Types.init = (fun _ -> (false, Some 0));
      step =
        (fun _ _ started _ ->
          if started then
            { Simkit.Types.state = true; sends = []; work = []; terminate = true;
              wakeup = None }
          else
            { Simkit.Types.state = true; sends = []; work = []; terminate = false;
              wakeup = Some far });
    }
  in
  let cfg = Simkit.Kernel.config ~n_processes:1 ~n_units:1 () in
  let res = Simkit.Kernel.run cfg proc in
  Alcotest.(check int) "round counter exact" far (Simkit.Metrics.rounds res.metrics)

let suite =
  [
    Alcotest.test_case "A at n=10k t=100" `Quick test_a_at_scale;
    Alcotest.test_case "B at n=10k t=100, worst adversary" `Quick test_b_at_scale;
    Alcotest.test_case "D at n=8k t=100" `Quick test_d_at_scale;
    Alcotest.test_case "async A at n=5k t=50" `Quick test_async_at_scale;
    Alcotest.test_case "kernel: 10^15-round idle span" `Quick test_kernel_long_idle_spans;
  ]
