(* Exhaustive small-world model checking: on tiny instances we can enumerate
   EVERY silent-crash schedule (victim subset × crash round vector over a
   window covering the whole execution) and check correctness plus the
   audit invariants on each. Thousands of executions per protocol — a
   bounded proof, not a sample. *)

let subsets_keeping_one t =
  (* all non-full subsets of [0..t-1] *)
  let rec go pid acc =
    if pid = t then acc
    else go (pid + 1) (List.concat_map (fun s -> [ s; pid :: s ]) acc)
  in
  List.filter (fun s -> List.length s < t) (go 0 [ [] ])

let rec round_vectors window = function
  | [] -> [ [] ]
  | pid :: rest ->
      let tails = round_vectors window rest in
      List.concat_map
        (fun r -> List.map (fun tl -> (pid, r) :: tl) tails)
        (List.init ((window / 4) + 1) (fun i -> i * 4))
(* step-4 grid keeps the space tractable while still hitting every phase of
   the execution *)

let check_all name proto audits ~n ~t ~window =
  let spec = Doall.Spec.make ~n ~t in
  let count = ref 0 in
  List.iter
    (fun victims ->
      List.iter
        (fun schedule ->
          incr count;
          let trace = Simkit.Trace.create () in
          let fault = Simkit.Fault.crash_silently_at schedule in
          let report = Doall.Runner.run ~fault ~trace spec proto in
          let describe () =
            String.concat ","
              (List.map (fun (p, r) -> Printf.sprintf "%d@%d" p r) schedule)
          in
          if report.outcome <> Simkit.Kernel.Completed then
            Alcotest.failf "%s: not completed on [%s]" name (describe ());
          if Doall.Runner.survivors report > 0 && not (Doall.Runner.work_complete report)
          then Alcotest.failf "%s: work incomplete on [%s]" name (describe ());
          List.iter
            (fun audit ->
              match audit trace with
              | [] -> ()
              | v :: _ ->
                  Alcotest.failf "%s: audit %s on [%s]" name
                    (Format.asprintf "%a" Simkit.Audit.pp_violation v)
                    (describe ()))
            audits)
        (round_vectors window victims))
    (subsets_keeping_one t);
  if !count < 100 then Alcotest.failf "%s: only %d schedules enumerated?" name !count

(* Acting crashes with partial delivery — the paper's actual adversary ("only
   some subset of the processes receive the message"): on top of the silent
   space above, enumerate every (victim set x crash round x prefix cut)
   combination, the victims crashing at their first action at or after the
   scheduled round, delivering only the first k messages of that round. *)

let rec cut_assignments cuts = function
  | [] -> [ [] ]
  | _ :: rest ->
      let tails = cut_assignments cuts rest in
      List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) cuts

let check_all_acting name proto audits ~n ~t ~window ~cuts =
  let spec = Doall.Spec.make ~n ~t in
  let count = ref 0 in
  List.iter
    (fun victims ->
      List.iter
        (fun schedule ->
          List.iter
            (fun cutv ->
              incr count;
              let entries =
                List.map2
                  (fun (p, r) k ->
                    ( p, r,
                      Simkit.Fault.Crash
                        { keep_work = false; delivery = Simkit.Fault.Prefix k }
                    ))
                  schedule cutv
              in
              let trace = Simkit.Trace.create () in
              let fault = Simkit.Fault.crash_acting_at entries in
              let report = Doall.Runner.run ~fault ~trace spec proto in
              let describe () =
                String.concat ","
                  (List.map2
                     (fun (p, r) k -> Printf.sprintf "%d@%d/cut%d" p r k)
                     schedule cutv)
              in
              if report.outcome <> Simkit.Kernel.Completed then
                Alcotest.failf "%s: not completed on [%s]" name (describe ());
              if
                Doall.Runner.survivors report > 0
                && not (Doall.Runner.work_complete report)
              then Alcotest.failf "%s: work incomplete on [%s]" name (describe ());
              List.iter
                (fun audit ->
                  match audit trace with
                  | [] -> ()
                  | v :: _ ->
                      Alcotest.failf "%s: audit %s on [%s]" name
                        (Format.asprintf "%a" Simkit.Audit.pp_violation v)
                        (describe ()))
                audits)
            (cut_assignments cuts schedule))
        (round_vectors window victims))
    (subsets_keeping_one t);
  if !count < 100 then Alcotest.failf "%s: only %d schedules enumerated?" name !count

let one_active = Simkit.Audit.at_most_one_active ~passive_msg:(fun _ -> false)
let b_one_active = Simkit.Audit.at_most_one_active ~passive_msg:Helpers.b_passive

let test_a_exhaustive () =
  (* window must cover DD(t-1) + an active lifetime *)
  let grid = Doall.Grid.make (Doall.Spec.make ~n:3 ~t:3) in
  let window = 3 * Doall.Grid.max_active_rounds grid in
  check_all "A n=3 t=3" Doall.Protocol_a.protocol
    [ Simkit.Audit.well_formed; one_active; Simkit.Audit.work_is_monotone ]
    ~n:3 ~t:3 ~window

let test_b_exhaustive () =
  let grid = Doall.Grid.make (Doall.Spec.make ~n:3 ~t:3) in
  let window = Doall.Bounds.b_rounds grid in
  check_all "B n=3 t=3" Doall.Protocol_b.protocol
    [ Simkit.Audit.well_formed; b_one_active; Simkit.Audit.work_is_monotone ]
    ~n:3 ~t:3 ~window

let test_a_acting_exhaustive () =
  let grid = Doall.Grid.make (Doall.Spec.make ~n:3 ~t:3) in
  let window = 3 * Doall.Grid.max_active_rounds grid in
  check_all_acting "A acting n=3 t=3" Doall.Protocol_a.protocol
    [ Simkit.Audit.well_formed; one_active; Simkit.Audit.work_is_monotone ]
    ~n:3 ~t:3 ~window ~cuts:[ 0; 1 ]

let test_b_acting_exhaustive () =
  let grid = Doall.Grid.make (Doall.Spec.make ~n:3 ~t:3) in
  let window = Doall.Bounds.b_rounds grid in
  check_all_acting "B acting n=3 t=3" Doall.Protocol_b.protocol
    [ Simkit.Audit.well_formed; b_one_active; Simkit.Audit.work_is_monotone ]
    ~n:3 ~t:3 ~window ~cuts:[ 0; 1 ]

let test_d_exhaustive () =
  check_all "D n=4 t=3" Doall.Protocol_d.protocol
    [ Simkit.Audit.well_formed ]
    ~n:4 ~t:3 ~window:60

let test_checkpoint_exhaustive () =
  check_all "checkpoint/2 n=4 t=3"
    (Doall.Baseline_checkpoint.protocol ~period:2)
    [ Simkit.Audit.well_formed; one_active; Simkit.Audit.work_is_monotone ]
    ~n:4 ~t:3 ~window:40

let suite =
  [
    Alcotest.test_case "A: every schedule, n=3 t=3" `Quick test_a_exhaustive;
    Alcotest.test_case "B: every schedule, n=3 t=3" `Quick test_b_exhaustive;
    Alcotest.test_case "A: every acting schedule + prefix cut, n=3 t=3" `Quick
      test_a_acting_exhaustive;
    Alcotest.test_case "B: every acting schedule + prefix cut, n=3 t=3" `Quick
      test_b_acting_exhaustive;
    Alcotest.test_case "D: every schedule, n=4 t=3" `Quick test_d_exhaustive;
    Alcotest.test_case "checkpoint: every schedule, n=4 t=3" `Quick
      test_checkpoint_exhaustive;
  ]
