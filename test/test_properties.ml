(* QCheck property tests with shrinking: random instances × random crash
   schedules, one law per protocol family. These complement the targeted
   suites: a shrunk counterexample here pins down a minimal failing
   (instance, schedule) pair. *)

module Gen = QCheck2.Gen

(* instance + silent-crash schedule keeping at least one survivor *)
let gen_case ~max_n ~max_t =
  let open Gen in
  pair (1 -- max_n) (1 -- max_t) >>= fun (n, t) ->
  let* victims = 0 -- (t - 1) in
  let* pids = Gen.shuffle_l (List.init t Fun.id) in
  let victims = List.filteri (fun i _ -> i < victims) pids in
  let* schedule =
    Gen.flatten_l
      (List.map (fun pid -> Gen.map (fun r -> (pid, r)) (0 -- (4 * max_n * max_t))) victims)
  in
  return (n, t, schedule)

let print_case (n, t, schedule) =
  Printf.sprintf "n=%d t=%d crashes=[%s]" n t
    (String.concat "; " (List.map (fun (p, r) -> Printf.sprintf "%d@%d" p r) schedule))

let completes_and_audits ?(audits = []) proto (n, t, schedule) =
  let spec = Doall.Spec.make ~n ~t in
  let trace = Simkit.Trace.create () in
  let fault = Simkit.Fault.crash_silently_at schedule in
  let report = Doall.Runner.run ~fault ~trace spec proto in
  report.outcome = Simkit.Kernel.Completed
  && (Doall.Runner.survivors report = 0 || Doall.Runner.work_complete report)
  && List.for_all (fun audit -> audit trace = []) audits

let law ?count ~name ~max_n ~max_t ?audits proto =
  Helpers.qcheck_case ?count ~name
    (Gen.map (fun c -> c) (gen_case ~max_n ~max_t))
    (fun case ->
      QCheck2.assume (match case with n, t, _ -> n >= 1 && t >= 1);
      let ok = completes_and_audits ?audits proto case in
      if not ok then QCheck2.Test.fail_reportf "%s" (print_case case);
      true)

let seq_audits =
  [
    Simkit.Audit.well_formed;
    Simkit.Audit.at_most_one_active ~passive_msg:(fun _ -> false);
    Simkit.Audit.work_is_monotone;
  ]

let b_audits =
  [
    Simkit.Audit.well_formed;
    Simkit.Audit.at_most_one_active ~passive_msg:Helpers.b_passive;
    Simkit.Audit.work_is_monotone;
  ]

let c_audits =
  [
    Simkit.Audit.well_formed;
    Simkit.Audit.at_most_one_active ~passive_msg:Helpers.c_passive;
    Simkit.Audit.work_is_monotone;
  ]

let d_audits = [ Simkit.Audit.well_formed ]

let prop_a =
  law ~count:120 ~name:"A: completes + sequential audits" ~max_n:80 ~max_t:14
    ~audits:seq_audits Doall.Protocol_a.protocol

let prop_b =
  law ~count:120 ~name:"B: completes + sequential audits" ~max_n:80 ~max_t:14
    ~audits:b_audits Doall.Protocol_b.protocol

let prop_c =
  law ~count:60 ~name:"C: completes + sequential audits" ~max_n:18 ~max_t:7
    ~audits:c_audits Doall.Protocol_c.protocol

let prop_c_chunked =
  law ~count:40 ~name:"C-chunked: completes" ~max_n:18 ~max_t:7
    ~audits:c_audits Doall.Protocol_c.protocol_chunked

let prop_d =
  law ~count:120 ~name:"D: completes + well-formed" ~max_n:80 ~max_t:14
    ~audits:d_audits Doall.Protocol_d.protocol

let prop_d_coord =
  law ~count:80 ~name:"D-coord: completes + well-formed" ~max_n:60 ~max_t:10
    ~audits:d_audits Doall.Protocol_d_coord.protocol

let prop_checkpoint =
  law ~count:80 ~name:"checkpoint/3: completes + audits" ~max_n:60 ~max_t:10
    ~audits:seq_audits
    (Doall.Baseline_checkpoint.protocol ~period:3)

let prop_a_group_sizes =
  Helpers.qcheck_case ~count:60 ~name:"A[s]: completes for random group sizes"
    Gen.(pair (gen_case ~max_n:50 ~max_t:12) (1 -- 12))
    (fun ((n, t, schedule), s) ->
      let s = min s t in
      completes_and_audits ~audits:seq_audits
        (Doall.Protocol_a.protocol_with_group_size s)
        (n, t, schedule))

(* Work lower bound: no protocol can cover the units without performing at
   least n units; and with a survivor the kill-after-each-unit adversary
   forces exactly n + f units out of work-optimal protocols. *)
let prop_work_lower_bound =
  Helpers.qcheck_case ~count:80 ~name:"work >= n whenever covered"
    (gen_case ~max_n:60 ~max_t:10)
    (fun (n, t, schedule) ->
      let spec = Doall.Spec.make ~n ~t in
      let fault = Simkit.Fault.crash_silently_at schedule in
      let report = Doall.Runner.run ~fault spec Doall.Protocol_b.protocol in
      (not (Doall.Runner.work_complete report))
      || Simkit.Metrics.work report.metrics >= n)

let prop_adversary_forces_n_plus_f =
  Helpers.qcheck_case ~count:40 ~name:"kill-after-unit adversary forces n+f work"
    Gen.(pair (10 -- 60) (2 -- 10))
    (fun (n, t) ->
      let spec = Doall.Spec.make ~n ~t in
      let fault =
        Simkit.Fault.crash_active_after_work ~units_between_crashes:1
          ~max_crashes:(t - 1)
      in
      let report = Doall.Runner.run ~fault spec Doall.Protocol_a.protocol in
      let f = Doall.Runner.crashed report in
      Simkit.Metrics.work report.metrics = n + f)

(* Seeded adversaries: same seed => identical schedule and metrics; different
   seeds => the schedules actually differ. *)

let crash_set (r : Doall.Runner.report) =
  Array.to_list r.statuses
  |> List.mapi (fun pid s ->
         match s with Simkit.Types.Crashed at -> Some (pid, at) | _ -> None)
  |> List.filter_map Fun.id

let fingerprint (r : Doall.Runner.report) =
  ( Simkit.Metrics.work r.metrics,
    Simkit.Metrics.messages r.metrics,
    Simkit.Metrics.rounds r.metrics,
    crash_set r )

let prop_fault_random_seed_determinism =
  Helpers.qcheck_case ~count:60 ~name:"Fault.random: same seed, same run"
    Gen.(
      pair
        (pair (10 -- 60) (2 -- 12))
        (pair (0 -- 100) (Gen.int_bound 10_000)))
    (fun ((n, t), (window, seed)) ->
      let go () =
        let spec = Doall.Spec.make ~n ~t in
        let fault =
          Simkit.Fault.random ~seed:(Int64.of_int seed) ~t ~victims:(t - 1)
            ~window
        in
        fingerprint (Doall.Runner.run ~fault spec Doall.Protocol_b.protocol)
      in
      go () = go ())

let prop_random_work_adversary_seed_determinism =
  Helpers.qcheck_case ~count:60
    ~name:"crash_active_after_random_work: same seed, same run"
    Gen.(
      pair
        (pair (10 -- 60) (2 -- 12))
        (pair (pair (1 -- 5) (0 -- 6)) (Gen.int_bound 10_000)))
    (fun ((n, t), ((min_units, extra), seed)) ->
      let go () =
        let spec = Doall.Spec.make ~n ~t in
        let fault =
          Simkit.Fault.crash_active_after_random_work
            ~seed:(Int64.of_int seed) ~min_units ~max_units:(min_units + extra)
            ~max_crashes:(t - 1)
        in
        fingerprint (Doall.Runner.run ~fault spec Doall.Protocol_a.protocol)
      in
      go () = go ())

let distinct_fingerprints run =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun seed -> Hashtbl.replace seen (run (Int64.of_int seed)) ())
    (List.init 10 (fun i -> i + 1));
  Hashtbl.length seen

let test_fault_random_seed_sensitivity () =
  let spec = Doall.Spec.make ~n:60 ~t:12 in
  let distinct =
    distinct_fingerprints (fun seed ->
        let fault = Simkit.Fault.random ~seed ~t:12 ~victims:6 ~window:40 in
        fingerprint (Doall.Runner.run ~fault spec Doall.Protocol_b.protocol))
  in
  if distinct < 2 then
    Alcotest.failf "10 seeds produced only %d distinct schedules" distinct

let test_random_work_adversary_seed_sensitivity () =
  let spec = Doall.Spec.make ~n:60 ~t:12 in
  let distinct =
    distinct_fingerprints (fun seed ->
        let fault =
          Simkit.Fault.crash_active_after_random_work ~seed ~min_units:2
            ~max_units:9 ~max_crashes:11
        in
        fingerprint (Doall.Runner.run ~fault spec Doall.Protocol_a.protocol))
  in
  if distinct < 2 then
    Alcotest.failf "10 seeds produced only %d distinct schedules" distinct

(* Determinism as a law: identical (instance, schedule) => identical runs. *)
let prop_determinism =
  Helpers.qcheck_case ~count:40 ~name:"rerun determinism (all cost measures)"
    (gen_case ~max_n:40 ~max_t:8)
    (fun (n, t, schedule) ->
      let go () =
        let spec = Doall.Spec.make ~n ~t in
        let fault = Simkit.Fault.crash_silently_at schedule in
        let r = Doall.Runner.run ~fault spec Doall.Protocol_b.protocol in
        ( Simkit.Metrics.work r.metrics,
          Simkit.Metrics.messages r.metrics,
          Simkit.Metrics.rounds r.metrics )
      in
      go () = go ())

let suite =
  [
    prop_a;
    prop_b;
    prop_c;
    prop_c_chunked;
    prop_d;
    prop_d_coord;
    prop_checkpoint;
    prop_a_group_sizes;
    prop_work_lower_bound;
    prop_adversary_forces_n_plus_f;
    prop_determinism;
    prop_fault_random_seed_determinism;
    prop_random_work_adversary_seed_determinism;
    Alcotest.test_case "Fault.random: different seeds differ" `Quick
      test_fault_random_seed_sensitivity;
    Alcotest.test_case "crash_active_after_random_work: seeds differ" `Quick
      test_random_work_adversary_seed_sensitivity;
  ]
