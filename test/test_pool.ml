(* Simkit.Pool and the parallel campaign engine.

   The load-bearing property is the determinism law: for every worker count
   the pool returns exactly what the sequential loop would, so a seeded
   campaign names the same corpus and the same verdicts at [--jobs 1] and
   [--jobs 8]. The suite checks the law on the raw pool (qcheck over
   arbitrary task lists and worker counts), on the seeded variant, on the
   order-sensitive reduction, and on full sync / async / recovery campaigns
   including ones that find and shrink real counterexamples. Crash
   propagation (a raising task must surface, lowest index first, after all
   siblings ran) gets its own unit tests. *)

module Pool = Simkit.Pool
module C = Simkit.Campaign
module Prng = Dhw_util.Prng
module Gen = QCheck2.Gen

(* A task heavy enough that workers genuinely interleave. *)
let collatz_steps x0 =
  let rec go steps x =
    if x <= 1 then steps else go (steps + 1) (if x mod 2 = 0 then x / 2 else (3 * x) + 1)
  in
  go 0 (abs x0 + 1)

let prop_map_law =
  Helpers.qcheck_case ~count:100 ~name:"map ~jobs:k = sequential map"
    Gen.(pair (int_range 1 6) (list_size (int_bound 60) (int_bound 10_000)))
    (fun (jobs, xs) ->
      let tasks = Array.of_list xs in
      Pool.map ~jobs collatz_steps tasks = Array.map collatz_steps tasks)

let prop_map_list_law =
  Helpers.qcheck_case ~count:50 ~name:"map_list ~jobs:k = List.map"
    Gen.(pair (int_range 1 6) (list_size (int_bound 40) (int_bound 10_000)))
    (fun (jobs, xs) -> Pool.map_list ~jobs collatz_steps xs = List.map collatz_steps xs)

let test_map_reduce_order () =
  (* A non-associative, non-commutative fold: only an in-task-order
     reduction gives the sequential answer. *)
  let tasks = Array.init 100 Fun.id in
  let f x = (x * 7) + 1 in
  let fold acc x = (acc * 31) + x in
  let expected = Array.fold_left fold 7 (Array.map f tasks) in
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        (Printf.sprintf "map_reduce at jobs=%d" jobs)
        expected
        (Pool.map_reduce ~jobs ~f ~fold ~init:7 tasks))
    [ 1; 2; 3; 8 ]

exception Boom of int

let test_crash_propagates () =
  List.iter
    (fun jobs ->
      let ran = Array.make 20 false in
      (match
         Pool.map ~jobs
           (fun i ->
             ran.(i) <- true;
             if i = 7 || i = 13 then raise (Boom i);
             i)
           (Array.init 20 Fun.id)
       with
      | _ -> Alcotest.failf "jobs=%d: raising task did not propagate" jobs
      | exception Boom i ->
          Alcotest.(check int)
            (Printf.sprintf "lowest-index exception wins at jobs=%d" jobs)
            7 i);
      (* No task is abandoned because a sibling raised. *)
      Alcotest.(check bool)
        (Printf.sprintf "all tasks still ran at jobs=%d" jobs)
        true
        (Array.for_all Fun.id ran))
    [ 1; 2; 4 ]

let test_jobs_validation () =
  (match Pool.map ~jobs:0 Fun.id [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 accepted");
  (match Pool.map ~jobs:(-2) Fun.id [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=-2 accepted");
  Alcotest.(check (array int)) "empty task array" [||] (Pool.map ~jobs:4 Fun.id [||]);
  Alcotest.(check (array int))
    "jobs clamped to task count" [| 1 |]
    (Pool.map ~jobs:64 Fun.id [| 1 |]);
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let test_map_seeded_jobs_independent () =
  let f g x = (x * 1000) + Prng.int g 1000 in
  let tasks = Array.init 64 Fun.id in
  let reference = Pool.map_seeded ~jobs:1 ~seed:42L f tasks in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "map_seeded at jobs=%d" jobs)
        reference
        (Pool.map_seeded ~jobs ~seed:42L f tasks))
    [ 2; 3; 8 ];
  (* The per-task streams are genuinely split: draws must not all agree. *)
  let draws = Array.map (fun y -> y mod 1000) reference in
  Alcotest.(check bool)
    "per-task streams are distinct" true
    (Array.exists (fun d -> d <> draws.(0)) draws)

let test_prng_stream_is_stateless () =
  let a = Prng.next_int64 (Prng.stream 9L 3) in
  (* Materializing other streams first must not disturb stream 3. *)
  let _ = Prng.next_int64 (Prng.stream 9L 0) in
  let _ = Prng.next_int64 (Prng.stream 9L 7) in
  let b = Prng.next_int64 (Prng.stream 9L 3) in
  Alcotest.(check int64) "stream 3 stable" a b;
  Alcotest.(check bool)
    "streams 3 and 4 differ" true
    (Prng.next_int64 (Prng.stream 9L 3) <> Prng.next_int64 (Prng.stream 9L 4))

(* Full-campaign parity: stats records compare structurally, so [=] covers
   schedules, verdicts, shrunk counterexamples, margins and counters. *)

let check_stats name reference got =
  Alcotest.(check bool) name true (got = reference)

let test_clean_sync_campaign_parity () =
  let spec = Helpers.spec ~n:40 ~t:8 in
  let reference =
    Doall.Fuzz.campaign ~seed:5L ~executions:80 spec Doall.Protocol_a.protocol
  in
  Alcotest.(check bool) "campaign is clean" true (reference.C.failures = []);
  List.iter
    (fun jobs ->
      check_stats
        (Printf.sprintf "sync clean: jobs=%d = sequential" jobs)
        reference
        (Doall.Fuzz.campaign ~jobs ~seed:5L ~executions:80 spec
           Doall.Protocol_a.protocol))
    [ 1; 3 ]

let test_failing_sync_campaign_parity () =
  (* work-cap 1 is violated by every schedule, so this exercises failure
     collection and the sequential shrinker under both engines. *)
  let spec = Helpers.spec ~n:12 ~t:4 in
  let go jobs =
    Doall.Fuzz.campaign ?jobs ~seed:1L ~executions:60
      ~extra:[ Doall.Fuzz.work_cap 1 ] ~max_failures:2 spec
      Doall.Protocol_a.protocol
  in
  let reference = go (Some 1) in
  Alcotest.(check int)
    "campaign finds max_failures counterexamples" 2
    (List.length reference.C.failures);
  List.iter
    (fun jobs ->
      check_stats
        (Printf.sprintf "sync failing: jobs=%d = jobs=1" jobs)
        reference
        (go (Some jobs)))
    [ 2; 4 ]

let test_async_campaign_parity () =
  let spec = Helpers.spec ~n:25 ~t:4 in
  let go jobs = Asim.Async_fuzz.campaign ?jobs ~seed:3L ~executions:20 spec in
  let reference = go (Some 1) in
  check_stats "async: jobs=2 = jobs=1" reference (go (Some 2))

let test_recovery_campaign_parity () =
  let spec = Helpers.spec ~n:20 ~t:5 in
  let go jobs =
    Doall.Fuzz.recovery_campaign ?jobs ~seed:2L ~executions:40 spec Doall.Recovery.A
  in
  let reference = go (Some 1) in
  check_stats "recovery: jobs=4 = jobs=1" reference (go (Some 4))

let suite =
  [
    prop_map_law;
    prop_map_list_law;
    Alcotest.test_case "map_reduce folds in task order" `Quick test_map_reduce_order;
    Alcotest.test_case "worker crash propagates" `Quick test_crash_propagates;
    Alcotest.test_case "jobs validation and clamping" `Quick test_jobs_validation;
    Alcotest.test_case "map_seeded independent of jobs" `Quick
      test_map_seeded_jobs_independent;
    Alcotest.test_case "Prng.stream is stateless" `Quick test_prng_stream_is_stateless;
    Alcotest.test_case "clean sync campaign parity" `Quick
      test_clean_sync_campaign_parity;
    Alcotest.test_case "failing sync campaign parity" `Quick
      test_failing_sync_campaign_parity;
    Alcotest.test_case "async campaign parity" `Quick test_async_campaign_parity;
    Alcotest.test_case "recovery campaign parity" `Quick test_recovery_campaign_parity;
  ]
