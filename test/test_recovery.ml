(* The crash–recovery substrate: stable storage, kernel restart semantics,
   the Doall.Recovery state-transfer wrapper, and the recovery fuzz
   campaigns. *)

open Doall
module C = Simkit.Campaign
module Metrics = Simkit.Metrics

let spec = Helpers.spec

let sched entries = C.Schedule.make entries

let crash ?(mode = C.Schedule.Silent) victim at =
  { C.Schedule.victim; at; mode }

let restart victim at = { C.Schedule.victim; at; mode = C.Schedule.Restart }

let run_rec ?rejoin_rounds s which entries =
  Fuzz.run_recovery_schedule ?rejoin_rounds s which (sched entries)

let check_recovered name (sub : Fuzz.subject) ~restarts =
  let r = sub.report in
  Alcotest.(check bool) (name ^ ": completed") true
    (r.Runner.outcome = Simkit.Kernel.Completed);
  Alcotest.(check bool) (name ^ ": correct") true (Runner.correct r);
  Alcotest.(check int)
    (name ^ ": committed restarts")
    restarts
    (Metrics.restarts r.Runner.metrics)

(* ------------------------------------------------------------------ *)
(* Stable storage *)

let test_stable_basics () =
  let hits = ref [] in
  let st =
    Simkit.Stable.create
      ~on_write:(fun pid at -> hits := (pid, at) :: !hits)
      ~n_processes:3 ()
  in
  Alcotest.(check (option int)) "empty cell" None (Simkit.Stable.read st 1);
  Simkit.Stable.write st 1 ~at:4 10;
  Simkit.Stable.write st 1 ~at:9 20;
  Simkit.Stable.write st 2 ~at:5 30;
  Alcotest.(check (option int)) "last write wins" (Some 20)
    (Simkit.Stable.read st 1);
  Alcotest.(check (option int)) "other cell" (Some 30) (Simkit.Stable.read st 2);
  Alcotest.(check int) "total writes" 3 (Simkit.Stable.writes st);
  Alcotest.(check int) "per-pid writes" 2 (Simkit.Stable.writes_by st 1);
  Alcotest.(check (option int)) "last write round" (Some 9)
    (Simkit.Stable.last_write_at st 1);
  Alcotest.(check (option int)) "never wrote" None
    (Simkit.Stable.last_write_at st 0);
  Alcotest.(check (list (pair int int)))
    "on_write hook saw every commit"
    [ (2, 5); (1, 9); (1, 4) ]
    !hits

(* ------------------------------------------------------------------ *)
(* View ranking *)

let test_view_rank () =
  let open Ckpt_script in
  let v_no = No_msg in
  let p c = Last_ord { ord = Partial c; src = 0 } in
  let f c g = Last_ord { ord = Full (c, g); src = 0 } in
  let ( << ) a b = Recovery.view_rank a < Recovery.view_rank b in
  Alcotest.(check bool) "No_msg weakest" true (v_no << p 0);
  Alcotest.(check bool) "higher subchunk wins" true (p 3 << p 4);
  Alcotest.(check bool) "full beats partial at equal c" true (p 3 << f 3 1);
  Alcotest.(check bool) "further-informed full wins" true (f 3 1 << f 3 2);
  Alcotest.(check bool) "subchunk dominates fullness" true (f 3 9 << p 4);
  Alcotest.(check bool) "src does not affect rank" true
    (Recovery.view_rank (Last_ord { ord = Partial 2; src = 1 })
    = Recovery.view_rank (Last_ord { ord = Partial 2; src = 7 }))

(* ------------------------------------------------------------------ *)
(* Kernel restart semantics *)

(* A one-shot protocol: each process performs unit [pid] at round [pid] and
   terminates; recovery re-performs it. Lets us pin kernel-level rules
   without protocol machinery. *)
let one_shot n =
  {
    Simkit.Types.init = (fun pid -> ((), Some pid));
    step =
      (fun pid _r () _inbox ->
        {
          Simkit.Types.state = ();
          sends = [];
          work = [ pid mod n ];
          terminate = true;
          wakeup = None;
        });
  }

let run_one_shot ?recover ~t entries =
  let fault = C.Schedule.to_fault (sched entries) in
  let cfg =
    Simkit.Kernel.config ~fault ~n_processes:t ~n_units:t ()
  in
  Simkit.Kernel.run ?recover cfg (one_shot t)

let test_kernel_restart_revives () =
  let res = run_one_shot ~t:3 [ crash 1 1; restart 1 5 ] in
  Alcotest.(check bool) "completed" true
    (res.Simkit.Kernel.outcome = Simkit.Kernel.Completed);
  Alcotest.(check string) "rejoiner terminated" "terminated@5"
    (Simkit.Types.status_to_string res.Simkit.Kernel.statuses.(1));
  Alcotest.(check int) "restart counted" 1
    (Metrics.restarts res.Simkit.Kernel.metrics)

let test_kernel_restart_requires_down () =
  (* Restart at/before the crash round, or with no crash at all: dropped. *)
  let res = run_one_shot ~t:3 [ crash 1 1; restart 1 1 ] in
  Alcotest.(check int) "restart at crash round dropped" 0
    (Metrics.restarts res.Simkit.Kernel.metrics);
  Alcotest.(check string) "victim stays crashed" "crashed@1"
    (Simkit.Types.status_to_string res.Simkit.Kernel.statuses.(1));
  let res = run_one_shot ~t:3 [ restart 2 4 ] in
  Alcotest.(check int) "restart of a live pid dropped" 0
    (Metrics.restarts res.Simkit.Kernel.metrics)

let test_kernel_restart_not_completed_while_pending () =
  (* With every process down but a restart pending, the run must keep going
     until the rejoiner comes back and retires — not report Completed at the
     moment everyone is down. *)
  let res = run_one_shot ~t:2 [ crash 0 0; crash 1 0; restart 1 40 ] in
  Alcotest.(check bool) "completed (after revival)" true
    (res.Simkit.Kernel.outcome = Simkit.Kernel.Completed);
  Alcotest.(check string) "rejoiner terminated at its restart round"
    "terminated@40"
    (Simkit.Types.status_to_string res.Simkit.Kernel.statuses.(1))

let test_kernel_default_recover_is_amnesiac () =
  (* Without a recover hook the kernel re-runs init: the rejoiner redoes its
     unit, so the unit's multiplicity is 2. *)
  let res = run_one_shot ~t:3 [ crash 1 1; restart 1 7 ] in
  Alcotest.(check int) "unit redone by amnesiac rejoin" 1
    (Metrics.unit_multiplicity res.Simkit.Kernel.metrics 1)

(* ------------------------------------------------------------------ *)
(* Fault-plan plumbing pinned (satellite: crash_silently_at rule) *)

let test_crash_silently_at_earliest_duplicate () =
  (* Duplicate pids in crash_silently_at: the earliest round wins. *)
  let fault = Simkit.Fault.crash_silently_at [ (1, 9); (1, 3); (1, 6) ] in
  let s = spec ~n:20 ~t:4 in
  let report = Runner.run ~fault s Protocol_a.protocol in
  Alcotest.(check string) "earliest crash round wins" "crashed@3"
    (Simkit.Types.status_to_string report.Runner.statuses.(1))

let test_keep_work_forced_when_delivery_escapes () =
  (* An acting crash with keep_work = false but a delivery cut that lets a
     message out: the kernel must still count the round's work (within a
     round work precedes sends in program order, so an escaping delivery
     proves the work happened). A purpose-built process that works and
     broadcasts in the same round makes the forcing observable. *)
  let work_and_tell =
    {
      Simkit.Types.init = (fun pid -> ((), if pid = 0 then Some 0 else None));
      step =
        (fun _pid _r () _inbox ->
          {
            Simkit.Types.state = ();
            sends = [ { Simkit.Types.dst = 1; payload = () } ];
            work = [ 0 ];
            terminate = true;
            wakeup = None;
          });
    }
  in
  let run_with delivery =
    let entries =
      [ crash 0 0 ~mode:(C.Schedule.Acting { keep_work = false; delivery }) ]
    in
    let fault = C.Schedule.to_fault (sched entries) in
    let trace = Simkit.Trace.create () in
    let cfg =
      Simkit.Kernel.config ~fault ~trace ~n_processes:2 ~n_units:1 ()
    in
    let res = Simkit.Kernel.run cfg work_and_tell in
    let sent =
      List.exists
        (function Simkit.Trace.Sent { src = 0; _ } -> true | _ -> false)
        (Simkit.Trace.events trace)
    in
    (res, sent, trace)
  in
  (* Delivery escapes: work is forced despite keep_work = false. *)
  let res, sent, trace = run_with (Simkit.Fault.Prefix 1) in
  Alcotest.(check bool) "a delivery escaped" true sent;
  Alcotest.(check int) "work forced despite keep_work=false" 1
    (Metrics.work_by res.Simkit.Kernel.metrics 0);
  Helpers.assert_clean_audit [ Simkit.Audit.well_formed ] "keep-work" trace;
  (* Nothing escapes: the dropped work stays dropped. *)
  let res, sent, _ = run_with (Simkit.Fault.Prefix 0) in
  Alcotest.(check bool) "nothing escaped" false sent;
  Alcotest.(check int) "work not counted when no delivery escapes" 0
    (Metrics.work_by res.Simkit.Kernel.metrics 0)

(* ------------------------------------------------------------------ *)
(* Recovery-hardened protocols *)

let which_name = Recovery.name

let test_failure_free_matches_base which base () =
  let s = spec ~n:40 ~t:9 in
  let rec_report = Recovery.run s which in
  let base_report = Runner.run s base in
  Alcotest.(check bool) "correct" true (Runner.correct rec_report);
  Alcotest.(check int)
    (which_name which ^ ": failure-free work matches the base protocol")
    (Metrics.work base_report.Runner.metrics)
    (Metrics.work rec_report.Runner.metrics);
  Alcotest.(check int)
    (which_name which ^ ": failure-free messages match the base protocol")
    (Metrics.messages base_report.Runner.metrics)
    (Metrics.messages rec_report.Runner.metrics);
  Alcotest.(check bool) "views were persisted" true
    (Metrics.persists rec_report.Runner.metrics > 0)

let test_single_restart which () =
  let s = spec ~n:40 ~t:9 in
  let sub = run_rec s which [ crash 0 2; restart 0 10 ] in
  check_recovered (which_name which ^ " single restart") sub ~restarts:1;
  Alcotest.(check string) "rejoiner eventually terminated" "terminated"
    (match sub.report.Runner.statuses.(0) with
    | Simkit.Types.Terminated _ -> "terminated"
    | st -> Simkit.Types.status_to_string st)

let test_restart_storm which () =
  let s = spec ~n:40 ~t:9 in
  (* pid 0 is re-crashed at round 7, mid-rejoin, so even its second revival
     applies. Some scheduled restarts may legitimately not commit: a silent
     crash of a quiescent waiter is only observed at its next scheduling
     point, which can postdate the scheduled revival (deterministic
     degradation to crash-stop, pinned in the kernel tests above). *)
  let sub =
    run_rec s which
      [
        crash 0 1; restart 0 6;
        crash 0 7; restart 0 21;
        crash 2 3; restart 2 9;
        crash 5 4;
      ]
  in
  let r = sub.report in
  Alcotest.(check bool)
    (which_name which ^ " storm: completed")
    true
    (r.Runner.outcome = Simkit.Kernel.Completed);
  Alcotest.(check bool)
    (which_name which ^ " storm: correct")
    true (Runner.correct r);
  let committed = Metrics.restarts r.Runner.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "%s storm: >= 2 restarts committed (got %d)"
       (which_name which) committed)
    true (committed >= 2)

let test_everyone_down_then_back which () =
  (* All t processes crash; one returns much later with nothing but its
     stable cell and no live peer to answer the handshake. It must finish
     the job alone. *)
  let s = spec ~n:24 ~t:4 in
  let sub =
    run_rec s which
      [ crash 0 3; crash 1 0; crash 2 0; crash 3 0; restart 0 30 ]
  in
  check_recovered (which_name which ^ " lone rejoiner") sub ~restarts:1;
  Alcotest.(check bool) "all units done" true
    (Metrics.all_units_done sub.report.Runner.metrics)

let test_state_transfer_bounds_redo () =
  (* pid 0 works a while, crashes, rejoins: with live peers answering the
     state transfer, total work must stay well below a from-scratch redo. *)
  let s = spec ~n:60 ~t:9 in
  let sub = run_rec s Recovery.A [ crash 0 20; restart 0 26 ] in
  check_recovered "state transfer" sub ~restarts:1;
  let work = Metrics.work sub.report.Runner.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "state transfer keeps redo bounded (work=%d < 2n)" work)
    true (work < 2 * 60)

let test_recovery_oracles_pass which () =
  let s = spec ~n:40 ~t:9 in
  let horizon = 60 in
  let oracles = Fuzz.recovery_oracles s which ~horizon in
  let sub = run_rec s which [ crash 1 2; restart 1 8; crash 4 5 ] in
  match C.first_failure oracles sub with
  | None -> ()
  | Some (name, detail) ->
      Alcotest.failf "oracle %s failed on a healthy run: %s" name detail

(* ------------------------------------------------------------------ *)
(* Campaigns: seeded storms with zero expected counterexamples *)

let test_recovery_campaign which seed () =
  let s = spec ~n:40 ~t:8 in
  let stats =
    Fuzz.recovery_campaign ~seed ~executions:120 s which
  in
  Alcotest.(check int)
    (which_name which ^ ": campaign schedules")
    120 stats.C.schedules;
  (match stats.C.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "campaign found a counterexample (%s: %s):@.%s"
        f.C.oracle f.C.detail
        (C.Schedule.print f.C.shrunk));
  (* storms must actually commit restarts for the campaign to mean much *)
  Alcotest.(check bool) "margins recorded" true (stats.C.margins <> [])

let suite =
  [
    Alcotest.test_case "stable: cells, counting, hook" `Quick
      test_stable_basics;
    Alcotest.test_case "recovery: view ranking" `Quick test_view_rank;
    Alcotest.test_case "kernel: restart revives a crashed pid" `Quick
      test_kernel_restart_revives;
    Alcotest.test_case "kernel: restarts need a down victim" `Quick
      test_kernel_restart_requires_down;
    Alcotest.test_case "kernel: pending restart blocks completion" `Quick
      test_kernel_restart_not_completed_while_pending;
    Alcotest.test_case "kernel: default recover re-inits" `Quick
      test_kernel_default_recover_is_amnesiac;
    Alcotest.test_case "fault: crash_silently_at earliest duplicate wins"
      `Quick test_crash_silently_at_earliest_duplicate;
    Alcotest.test_case "kernel: escaping delivery forces keep_work" `Quick
      test_keep_work_forced_when_delivery_escapes;
    Alcotest.test_case "A+rec: failure-free = A" `Quick
      (test_failure_free_matches_base Recovery.A Protocol_a.protocol);
    Alcotest.test_case "B+rec: failure-free = B" `Quick
      (test_failure_free_matches_base Recovery.B Protocol_b.protocol);
    Alcotest.test_case "A+rec: crash + restart completes" `Quick
      (test_single_restart Recovery.A);
    Alcotest.test_case "B+rec: crash + restart completes" `Quick
      (test_single_restart Recovery.B);
    Alcotest.test_case "A+rec: restart storm" `Quick
      (test_restart_storm Recovery.A);
    Alcotest.test_case "B+rec: restart storm" `Quick
      (test_restart_storm Recovery.B);
    Alcotest.test_case "A+rec: lone rejoiner finishes alone" `Quick
      (test_everyone_down_then_back Recovery.A);
    Alcotest.test_case "B+rec: lone rejoiner finishes alone" `Quick
      (test_everyone_down_then_back Recovery.B);
    Alcotest.test_case "A+rec: state transfer bounds redo" `Quick
      test_state_transfer_bounds_redo;
    Alcotest.test_case "recovery oracles pass on a healthy A run" `Quick
      (test_recovery_oracles_pass Recovery.A);
    Alcotest.test_case "recovery oracles pass on a healthy B run" `Quick
      (test_recovery_oracles_pass Recovery.B);
    Alcotest.test_case "A+rec: 120-storm campaign, no counterexamples" `Slow
      (test_recovery_campaign Recovery.A 11L);
    Alcotest.test_case "B+rec: 120-storm campaign, no counterexamples" `Slow
      (test_recovery_campaign Recovery.B 12L);
  ]
