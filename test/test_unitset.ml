(* Equivalence laws for Dhw_util.Unitset: every operation must agree with
   the naive Set.Make(Int) model on random op sequences, and the canonical
   representation invariant must hold after every step. The interval set is
   the scale representation under all protocol views and the kernel metrics,
   so a divergence here would silently corrupt protocol state at any n. *)

module U = Dhw_util.Unitset
module M = Set.Make (Int)
module Gen = QCheck2.Gen

(* ops over a small universe so collisions/adjacency/coalescing all happen *)
type op =
  | Add of int
  | Remove of int
  | Add_range of int * int
  | Union_range of int * int  (* union with of_range *)
  | Inter_range of int * int
  | Diff_range of int * int

let universe = 64

let gen_op =
  let open Gen in
  let elt = 0 -- (universe - 1) in
  let range = pair elt (0 -- 16) in
  oneof
    [
      map (fun x -> Add x) elt;
      map (fun x -> Remove x) elt;
      map (fun (lo, len) -> Add_range (lo, lo + len)) range;
      map (fun (lo, len) -> Union_range (lo, lo + len)) range;
      map (fun (lo, len) -> Inter_range (lo, lo + len)) range;
      map (fun (lo, len) -> Diff_range (lo, lo + len)) range;
    ]

let show_op = function
  | Add x -> Printf.sprintf "add %d" x
  | Remove x -> Printf.sprintf "remove %d" x
  | Add_range (lo, hi) -> Printf.sprintf "add_range %d %d" lo hi
  | Union_range (lo, hi) -> Printf.sprintf "union [%d,%d)" lo hi
  | Inter_range (lo, hi) -> Printf.sprintf "inter [%d,%d)" lo hi
  | Diff_range (lo, hi) -> Printf.sprintf "diff [%d,%d)" lo hi

let m_range lo hi = M.of_list (List.init (max 0 (hi - lo)) (fun i -> lo + i))

let apply (u, m) = function
  | Add x -> (U.add x u, M.add x m)
  | Remove x -> (U.remove x u, M.remove x m)
  | Add_range (lo, hi) -> (U.add_range lo hi u, M.union m (m_range lo hi))
  | Union_range (lo, hi) -> (U.union u (U.of_range lo hi), M.union m (m_range lo hi))
  | Inter_range (lo, hi) -> (U.inter u (U.of_range lo hi), M.inter m (m_range lo hi))
  | Diff_range (lo, hi) -> (U.diff u (U.of_range lo hi), M.diff m (m_range lo hi))

(* Full observational check after every step: same elements, same derived
   queries, and the canonical-representation invariant. *)
let agrees u m =
  U.invariant_ok u
  && U.elements u = M.elements m
  && U.cardinal u = M.cardinal m
  && U.is_empty u = M.is_empty m
  && (M.is_empty m
     || U.min_elt u = M.min_elt m
        && U.max_elt u = M.max_elt m
        && U.nth u (M.cardinal m - 1) = M.max_elt m)
  && List.for_all (fun x -> U.mem x u = M.mem x m)
       (List.init universe Fun.id)

let model_law =
  Helpers.qcheck_case ~count:300 ~name:"unitset agrees with Set.Make(Int) model"
    (Gen.list_size (Gen.(1 -- 40)) gen_op)
    (fun ops ->
      let _ =
        List.fold_left
          (fun (u, m) op ->
            let u', m' = apply (u, m) op in
            if not (agrees u' m') then
              QCheck2.Test.fail_reportf "diverged after %s: unitset=%s model=[%s]"
                (show_op op)
                (Format.asprintf "%a" U.pp u')
                (String.concat ";" (List.map string_of_int (M.elements m')));
            (u', m'))
          (U.empty, M.empty) ops
      in
      true)

(* Binary ops between two independently built sets (not just set-vs-range). *)
let binop_law =
  Helpers.qcheck_case ~count:300 ~name:"unitset binary ops agree with model"
    (Gen.pair (Gen.list_size Gen.(1 -- 25) gen_op) (Gen.list_size Gen.(1 -- 25) gen_op))
    (fun (ops1, ops2) ->
      let build ops = List.fold_left apply (U.empty, M.empty) ops in
      let u1, m1 = build ops1 and u2, m2 = build ops2 in
      agrees (U.union u1 u2) (M.union m1 m2)
      && agrees (U.inter u1 u2) (M.inter m1 m2)
      && agrees (U.diff u1 u2) (M.diff m1 m2)
      && U.subset u1 u2 = M.subset m1 m2
      && U.equal u1 u2 = M.equal m1 m2)

(* slice by rank = take a window of the sorted element list *)
let slice_law =
  Helpers.qcheck_case ~count:300 ~name:"unitset slice/nth agree with sorted list"
    (Gen.triple (Gen.list_size Gen.(1 -- 30) gen_op) Gen.(0 -- 70) Gen.(0 -- 70))
    (fun (ops, lo, len) ->
      let u, m = List.fold_left apply (U.empty, M.empty) ops in
      let hi = lo + len in
      let elts = M.elements m in
      let expected =
        List.filteri (fun i _ -> i >= lo && i < hi) elts
      in
      let s = U.slice u ~lo ~hi in
      U.invariant_ok s
      && U.elements s = expected
      && List.for_all2
           (fun k x -> U.nth u k = x)
           (List.init (List.length elts) Fun.id)
           elts)

(* contains_range lo hi = the whole half-open interval is present *)
let contains_law =
  Helpers.qcheck_case ~count:300 ~name:"unitset contains_range agrees with model"
    (Gen.triple (Gen.list_size Gen.(1 -- 30) gen_op) Gen.(0 -- 64) Gen.(0 -- 12))
    (fun (ops, lo, len) ->
      let u, m = List.fold_left apply (U.empty, M.empty) ops in
      let hi = lo + len in
      U.contains_range lo hi u = M.subset (m_range lo hi) m)

(* of_list on arbitrary duplicated input *)
let of_list_law =
  Helpers.qcheck_case ~count:300 ~name:"unitset of_list canonicalizes arbitrary input"
    (Gen.list_size Gen.(0 -- 60) Gen.(0 -- 30))
    (fun xs ->
      let u = U.of_list xs in
      U.invariant_ok u && U.elements u = M.elements (M.of_list xs))

(* Small-n end-to-end: with the protocols rewired onto interval sets, the
   live CLI report must stay byte-identical to the committed golden fixture
   (same args as the @golden-cli-diff alias, asserted here from the suite
   too so `dune exec test/test_main.exe` alone catches drift). *)
let report_stable () =
  let cli =
    let candidates =
      [ "../bin/doall_cli.exe"; "_build/default/bin/doall_cli.exe" ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some c -> c
    | None -> Alcotest.fail "doall_cli.exe not found (run under dune)"
  in
  let fixture =
    let candidates =
      [ "fixtures/report_golden.json"; "test/fixtures/report_golden.json" ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.fail "report_golden.json fixture not found"
  in
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let out = Filename.temp_file "dhw-unitset-report" ".json" in
  let code =
    Sys.command
      (Filename.quote_command cli ~stdout:out
         [ "run"; "-p"; "a"; "-n"; "24"; "-t"; "6"; "--crash"; "0@3";
           "--crash"; "2@7"; "--report"; "json" ])
  in
  Alcotest.(check int) "cli exit" 0 code;
  let fresh = read out in
  Sys.remove out;
  Alcotest.(check string) "report byte-identical to golden fixture"
    (read fixture) fresh

let suite =
  [
    model_law;
    binop_law;
    slice_law;
    contains_law;
    of_list_law;
    Alcotest.test_case "protocol D report stable on Unitset views" `Quick
      report_stable;
  ]
