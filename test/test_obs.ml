(* Observability stack: the Jsonw writer, Obs event sinks, timeline
   invariants (sync and async), and the golden run-report fixture. *)

module J = Dhw_util.Jsonw
module Obs = Simkit.Obs
module Metrics = Simkit.Metrics
module Gen = QCheck2.Gen

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Jsonw *)

let test_jsonw_scalars () =
  check_s "null" "null" (J.to_string J.Null);
  check_s "true" "true" (J.to_string (J.Bool true));
  check_s "int" "-42" (J.to_string (J.Int (-42)));
  check_s "integral float" "2.0" (J.to_string (J.Float 2.0));
  check_s "fraction" "0.5" (J.to_string (J.Float 0.5));
  check_s "nan -> null" "null" (J.to_string (J.Float Float.nan));
  check_s "inf -> null" "null" (J.to_string (J.Float Float.infinity))

let test_jsonw_escaping () =
  check_s "specials" {|"a\"b\\c"|} (J.to_string (J.Str "a\"b\\c"));
  check_s "whitespace" {|"x\n\r\ty"|} (J.to_string (J.Str "x\n\r\ty"));
  check_s "control" {|"\u0001"|} (J.to_string (J.Str "\001"))

let test_jsonw_structure () =
  check_s "empties" {|{"a":[],"b":{}}|}
    (J.to_string (J.Obj [ ("a", J.Arr []); ("b", J.Obj []) ]));
  check_s "field order preserved" {|{"b":1,"a":[true,null]}|}
    (J.to_string (J.Obj [ ("b", J.Int 1); ("a", J.Arr [ J.Bool true; J.Null ]) ]));
  check_s "pretty" "{\n  \"x\": 1,\n  \"y\": [\n    2\n  ]\n}"
    (J.pretty (J.Obj [ ("x", J.Int 1); ("y", J.Arr [ J.Int 2 ]) ]))

let test_table_to_json () =
  let tbl = Dhw_util.Table.create ~title:"T" [ ("a", Dhw_util.Table.Left); ("b", Right) ] in
  Dhw_util.Table.add_row tbl [ "x"; "1" ];
  Dhw_util.Table.add_rule tbl;
  Dhw_util.Table.add_row tbl [ "y"; "2" ];
  check_s "rules dropped, rows kept"
    {|{"id":"E0","title":"T","headers":["a","b"],"rows":[["x","1"],["y","2"]]}|}
    (J.to_string (Dhw_util.Table.to_json ~id:"E0" tbl))

(* ------------------------------------------------------------------ *)
(* Obs events and sinks *)

let test_event_json () =
  check_s "work"
    {|{"ev":"work","at":3,"pid":1,"unit":7}|}
    (J.to_string (Obs.event_to_json (Obs.Work { pid = 1; at = 3; unit_id = 7 })));
  check_s "send"
    {|{"ev":"send","at":2,"src":0,"dst":4,"tag":"ckpt"}|}
    (J.to_string
       (Obs.event_to_json (Obs.Send { src = 0; dst = 4; at = 2; tag = "ckpt" })));
  check_s "crash" {|{"ev":"crash","at":9,"pid":5}|}
    (J.to_string (Obs.event_to_json (Obs.Crash { pid = 5; at = 9 })));
  check_i "at" 9 (Obs.at (Obs.Crash { pid = 5; at = 9 }))

let test_obs_stream_matches_trace () =
  (* the kernel feeds trace and obs from the same emission points, so
     replaying the trace must reproduce the live stream exactly *)
  let spec = Helpers.spec ~n:24 ~t:6 in
  let trace = Simkit.Trace.create () in
  let sink, captured = Obs.memory () in
  let fault = Simkit.Fault.crash_silently_at [ (0, 3); (2, 7) ] in
  let _r = Doall.Runner.run ~fault ~trace ~obs:sink spec Doall.Protocol_a.protocol in
  let live = captured () in
  check_b "stream is non-empty" true (live <> []);
  let sink2, captured2 = Obs.memory () in
  Obs.replay trace sink2;
  check_b "replay(trace) = live stream" true (captured2 () = live);
  (* tee duplicates the stream in order *)
  let s3, c3 = Obs.memory () and s4, c4 = Obs.memory () in
  List.iter (Obs.tee [ s3; s4 ]) live;
  check_b "tee fans out" true (c3 () = live && c4 () = live)

let test_spark () =
  check_s "ramp" ".:@" (Obs.Timeline.spark [ 0; 1; 100 ]);
  check_s "scaled" ":@" (Obs.Timeline.spark ~max:8 [ 1; 8 ]);
  check_s "all zero" "..." (Obs.Timeline.spark [ 0; 0; 0 ])

(* ------------------------------------------------------------------ *)
(* Timeline invariants: per-round rows are consistent and the final row
   reproduces the Metrics totals, on both substrates. *)

let check_rows_invariants ~np (rows : Obs.Timeline.row list) =
  let ok = ref true in
  let prev = ref None in
  List.iter
    (fun (r : Obs.Timeline.row) ->
      if r.effort <> r.work + r.msgs then ok := false;
      if r.alive <> np - r.crashes + r.restarts - r.terminated then ok := false;
      (match !prev with
      | Some (p : Obs.Timeline.row) ->
          if p.at >= r.at then ok := false;
          if p.work > r.work || p.msgs > r.msgs || p.effort > r.effort then
            ok := false;
          if p.covered > r.covered then ok := false;
          if p.crashes > r.crashes || p.terminated > r.terminated then
            ok := false;
          if p.restarts > r.restarts || p.persists > r.persists then
            ok := false;
          (* alive only rises when a restart committed *)
          if p.alive < r.alive && p.restarts = r.restarts then ok := false
      | None -> ());
      prev := Some r)
    rows;
  !ok

let final_matches_metrics (tl : Obs.Timeline.t) (m : Metrics.t) =
  match Obs.Timeline.final tl with
  | None -> Metrics.work m = 0 && Metrics.messages m = 0
  | Some f ->
      f.Obs.Timeline.work = Metrics.work m
      && f.Obs.Timeline.msgs = Metrics.messages m
      && f.Obs.Timeline.effort = Metrics.effort m
      && f.Obs.Timeline.covered = Metrics.units_covered m
      && f.Obs.Timeline.crashes = Metrics.crashes m
      && f.Obs.Timeline.terminated = Metrics.terminated m
      && f.Obs.Timeline.restarts = Metrics.restarts m
      && f.Obs.Timeline.persists = Metrics.persists m

(* instance + silent-crash schedule (as in Test_properties) *)
let gen_case ~max_n ~max_t =
  let open Gen in
  pair (1 -- max_n) (1 -- max_t) >>= fun (n, t) ->
  let* victims = 0 -- (t - 1) in
  let* pids = Gen.shuffle_l (List.init t Fun.id) in
  let victims = List.filteri (fun i _ -> i < victims) pids in
  let* schedule =
    Gen.flatten_l
      (List.map
         (fun pid -> Gen.map (fun r -> (pid, r)) (0 -- (4 * max_n * max_t)))
         victims)
  in
  return (n, t, schedule)

let fail_case what (n, t, schedule) =
  QCheck2.Test.fail_reportf "%s: n=%d t=%d crashes=[%s]" what n t
    (String.concat "; "
       (List.map (fun (p, r) -> Printf.sprintf "%d@%d" p r) schedule))

let sync_timeline_law proto ((n, t, schedule) as case) =
  let spec = Doall.Spec.make ~n ~t in
  let tl = Obs.Timeline.create ~n_processes:t ~n_units:n in
  let fault = Simkit.Fault.crash_silently_at schedule in
  let r = Doall.Runner.run ~fault ~obs:(Obs.Timeline.sink tl) spec proto in
  if not (check_rows_invariants ~np:t (Obs.Timeline.rows tl)) then
    fail_case "rows invariant" case;
  if not (final_matches_metrics tl r.Doall.Runner.metrics) then
    fail_case "final row <> metrics" case;
  true

let prop_timeline_a =
  Helpers.qcheck_case ~count:80 ~name:"timeline == metrics (sync A)"
    (gen_case ~max_n:60 ~max_t:10)
    (sync_timeline_law Doall.Protocol_a.protocol)

let prop_timeline_d =
  Helpers.qcheck_case ~count:80 ~name:"timeline == metrics (sync D)"
    (gen_case ~max_n:60 ~max_t:10)
    (sync_timeline_law Doall.Protocol_d.protocol)

let prop_timeline_async =
  Helpers.qcheck_case ~count:60 ~name:"timeline == metrics (async A)"
    (Gen.pair (gen_case ~max_n:40 ~max_t:8) (Gen.int_range 1 1000))
    (fun (((n, t, schedule) as case), seed) ->
      let spec = Doall.Spec.make ~n ~t in
      let tl = Obs.Timeline.create ~n_processes:t ~n_units:n in
      let r =
        Asim.Async_protocol_a.run ~crash_at:schedule
          ~seed:(Int64.of_int seed) ~obs:(Obs.Timeline.sink tl) spec
      in
      if not (check_rows_invariants ~np:t (Obs.Timeline.rows tl)) then
        fail_case "rows invariant (async)" case;
      if not (final_matches_metrics tl r.Asim.Event_sim.metrics) then
        fail_case "final row <> metrics (async)" case;
      true)

let test_timeline_recovery () =
  (* under crash + restart, alive dips and comes back, restart/persist
     columns accumulate, and the final row still reproduces the metrics *)
  let spec = Helpers.spec ~n:40 ~t:8 in
  let sched =
    Simkit.Campaign.Schedule.make
      [
        { Simkit.Campaign.Schedule.victim = 0; at = 2;
          mode = Simkit.Campaign.Schedule.Silent };
        { Simkit.Campaign.Schedule.victim = 0; at = 10;
          mode = Simkit.Campaign.Schedule.Restart };
      ]
  in
  let fault = Simkit.Campaign.Schedule.to_fault sched in
  let tl = Obs.Timeline.create ~n_processes:8 ~n_units:40 in
  let r =
    Doall.Recovery.run ~fault ~obs:(Obs.Timeline.sink tl) spec Doall.Recovery.A
  in
  check_b "rows invariant (recovery)" true
    (check_rows_invariants ~np:8 (Obs.Timeline.rows tl));
  check_b "final row = metrics (recovery)" true
    (final_matches_metrics tl r.Doall.Runner.metrics);
  match Obs.Timeline.final tl with
  | None -> Alcotest.fail "no timeline rows"
  | Some f ->
      check_i "one restart committed" 1 f.Obs.Timeline.restarts;
      check_b "persists recorded" true (f.Obs.Timeline.persists > 0);
      check_i "everyone terminated alive again" 8
        (8 - f.Obs.Timeline.crashes + f.Obs.Timeline.restarts)

let test_timeline_json () =
  let spec = Helpers.spec ~n:8 ~t:2 in
  let tl = Obs.Timeline.create ~n_processes:2 ~n_units:8 in
  let _r = Doall.Runner.run ~obs:(Obs.Timeline.sink tl) spec Doall.Protocol_a.protocol in
  match J.to_string (Obs.Timeline.to_json tl) with
  | s ->
      check_b "schema present" true
        (String.length s > 0
        && String.sub s 0 25 = {|{"schema":"dhw-timeline/v|});
      (* deterministic kernel => byte-identical on a second run *)
      let tl2 = Obs.Timeline.create ~n_processes:2 ~n_units:8 in
      let _r2 =
        Doall.Runner.run ~obs:(Obs.Timeline.sink tl2) spec Doall.Protocol_a.protocol
      in
      check_s "deterministic" s (J.to_string (Obs.Timeline.to_json tl2))

(* ------------------------------------------------------------------ *)
(* Golden report: the CLI's `run -p a -n 24 -t 6 --crash 0@3 --crash 2@7
   --report json` output is pinned byte-for-byte by a checked-in fixture. *)

(* `dune runtest` runs in the test directory; `dune exec test/test_main.exe`
   runs wherever it was invoked — accept both. *)
let read_file path =
  let path = if Sys.file_exists path then path else Filename.concat "test" path in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let test_golden_report () =
  let spec = Helpers.spec ~n:24 ~t:6 in
  let fault = Simkit.Fault.crash_silently_at [ (0, 3); (2, 7) ] in
  let r = Doall.Runner.run ~fault spec Doall.Protocol_a.protocol in
  let rendered =
    Doall.Report.to_string (Doall.Report.of_run ~fault:"crash 0@3, 2@7" r) ^ "\n"
  in
  check_s "golden report fixture" (read_file "fixtures/report_golden.json") rendered

let test_bound_checks () =
  let spec = Helpers.spec ~n:24 ~t:6 in
  let r = Doall.Runner.run spec Doall.Protocol_a.protocol in
  let checks = Doall.Report.bound_checks spec ~protocol:"A" r.Doall.Runner.metrics in
  check_i "three Thm 2.3 checks" 3 (List.length checks);
  check_b "all hold" true (List.for_all (fun c -> c.Doall.Report.ok) checks);
  check_b "unknown protocol has none" true
    (Doall.Report.bound_checks spec ~protocol:"trivial" r.Doall.Runner.metrics = [])

let suite =
  [
    Alcotest.test_case "jsonw: scalars" `Quick test_jsonw_scalars;
    Alcotest.test_case "jsonw: escaping" `Quick test_jsonw_escaping;
    Alcotest.test_case "jsonw: structure + pretty" `Quick test_jsonw_structure;
    Alcotest.test_case "table: to_json" `Quick test_table_to_json;
    Alcotest.test_case "obs: event json" `Quick test_event_json;
    Alcotest.test_case "obs: stream = trace, tee/replay" `Quick
      test_obs_stream_matches_trace;
    Alcotest.test_case "timeline: sparkline ramp" `Quick test_spark;
    prop_timeline_a;
    prop_timeline_d;
    prop_timeline_async;
    Alcotest.test_case "timeline: crash + restart columns" `Quick
      test_timeline_recovery;
    Alcotest.test_case "timeline: json deterministic" `Quick test_timeline_json;
    Alcotest.test_case "report: golden fixture" `Quick test_golden_report;
    Alcotest.test_case "report: bound checks" `Quick test_bound_checks;
  ]
