(* The dhw-trace/v1 span layer: collector pairing, tolerant file reading
   (SIGKILL-torn lines), causal merge order, and the Chrome trace-event
   export. *)

module Sf = Dhw_util.Spanfile
module J = Dhw_util.Jsonw
module Obs = Simkit.Obs

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let span ?(name = "step") ?(src = "x") ?(pid = 0) ?(inc = 0) ?(round = 0)
    ?(ts = 0.0) ?(dur = 1.0) () =
  { Sf.name; src; pid; inc; round; ts_us = ts; dur_us = dur; args = [] }

let test_collector_pairs () =
  let sink, collected = Obs.span_collector ~src:"sim" () in
  sink (Obs.Span_begin { name = "round"; pid = -1; at = 3; inc = 0; ts_us = 10.0 });
  sink (Obs.Span_begin { name = "step"; pid = 1; at = 3; inc = 0; ts_us = 11.0 });
  sink (Obs.Span_end { name = "step"; pid = 1; at = 3; inc = 0; ts_us = 14.0 });
  sink (Obs.Work { pid = 1; unit_id = 0; at = 3 }) (* non-span: ignored *);
  sink (Obs.Span_end { name = "round"; pid = -1; at = 3; inc = 0; ts_us = 20.0 });
  (* left open on purpose: a crash inside a span *)
  sink (Obs.Span_begin { name = "step"; pid = 2; at = 4; inc = 0; ts_us = 30.0 });
  let spans = collected () in
  Alcotest.(check int) "two completed spans" 2 (List.length spans);
  let step = List.nth spans 0 and round = List.nth spans 1 in
  Alcotest.(check string) "completion order" "step" step.Sf.name;
  Alcotest.(check string) "src stamped" "sim" step.Sf.src;
  Alcotest.(check (float 0.0)) "step duration" 3.0 step.Sf.dur_us;
  Alcotest.(check (float 0.0)) "round duration" 10.0 round.Sf.dur_us;
  Alcotest.(check int) "round anchored at begin round" 3 round.Sf.round

let test_nested_same_name () =
  (* LIFO pairing: an end matches the innermost open begin of its key *)
  let sink, collected = Obs.span_collector ~src:"s" () in
  sink (Obs.Span_begin { name = "a"; pid = 0; at = 0; inc = 0; ts_us = 0.0 });
  sink (Obs.Span_begin { name = "a"; pid = 0; at = 1; inc = 0; ts_us = 5.0 });
  sink (Obs.Span_end { name = "a"; pid = 0; at = 1; inc = 0; ts_us = 6.0 });
  sink (Obs.Span_end { name = "a"; pid = 0; at = 1; inc = 0; ts_us = 9.0 });
  let spans = collected () in
  Alcotest.(check (list (float 0.0))) "durations inner-first" [ 1.0; 9.0 ]
    (List.map (fun s -> s.Sf.dur_us) spans)

let with_tmp f =
  let path = Filename.temp_file "dhwtrace" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_file_roundtrip () =
  with_tmp (fun path ->
      let spans =
        [ span ~name:"round" ~pid:(-1) ~ts:1.0 ~dur:4.0 ();
          span ~name:"step" ~pid:0 ~ts:2.0 () ]
      in
      Sf.write_file ~meta:[ ("n", J.Int 4) ] ~source:"sim" path spans;
      match Sf.read_file path with
      | Error e -> Alcotest.fail e
      | Ok f ->
          Alcotest.(check (option string)) "source" (Some "sim") f.Sf.source;
          Alcotest.(check int) "spans back" 2 (List.length f.Sf.spans))

let test_torn_file_tolerated () =
  with_tmp (fun path ->
      let oc = open_out path in
      Sf.write_header ~source:"node-0" oc;
      Sf.write_span oc (span ~src:"" ());
      (* a SIGKILL mid-write: truncated JSON, then garbage *)
      output_string oc "{\"ev\":\"span\",\"name\":\"st";
      close_out oc;
      match Sf.read_file path with
      | Error e -> Alcotest.fail e
      | Ok f ->
          Alcotest.(check int) "only the whole span" 1 (List.length f.Sf.spans);
          (* header source stamps spans that carry no src *)
          Alcotest.(check string) "src from header" "node-0"
            (List.hd f.Sf.spans).Sf.src)

let test_merge_order () =
  let a = [ span ~round:2 ~ts:5.0 (); span ~round:0 ~ts:9.0 () ] in
  let b = [ span ~round:0 ~ts:1.0 ~pid:1 (); span ~round:2 ~ts:5.0 ~pid:(-1) () ] in
  let merged = Sf.merge [ a; b ] in
  let keys = List.map (fun s -> (s.Sf.round, s.Sf.ts_us, s.Sf.pid)) merged in
  Alcotest.(check bool) "sorted by (round, ts, pid)" true
    (keys = List.sort compare keys)

let test_chrome_export () =
  let spans =
    [ span ~name:"round" ~src:"ctl" ~pid:(-1) ~ts:100.0 ~dur:50.0 ();
      span ~name:"step" ~src:"node" ~pid:0 ~inc:1 ~ts:110.0 ~dur:5.0 () ]
  in
  match Sf.to_chrome spans with
  | J.Obj fields ->
      (match List.assoc "traceEvents" fields with
      | J.Arr evs ->
          Alcotest.(check int) "one event per span" 2 (List.length evs);
          let ev = List.hd evs in
          Alcotest.(check (option string)) "complete event" (Some "X")
            (Option.bind (J.member "ph" ev) J.to_str);
          (* timestamps normalized to the earliest span *)
          Alcotest.(check (option (float 0.0))) "ts normalized" (Some 0.0)
            (Option.bind (J.member "ts" ev) J.to_float);
          let step = List.nth evs 1 in
          Alcotest.(check (option int)) "tid = incarnation" (Some 1)
            (Option.bind (J.member "tid" step) J.to_int)
      | _ -> Alcotest.fail "traceEvents not an array")
  | _ -> Alcotest.fail "chrome export not an object"

let test_render_smoke () =
  let spans =
    [ span ~name:"round" ~pid:(-1) ~ts:0.0 ~dur:100.0 ();
      span ~name:"step" ~pid:0 ~ts:10.0 ~dur:20.0 () ]
  in
  let out = Fmt.str "%a" (Sf.render ~width:32) spans in
  Alcotest.(check bool) "mentions schema" true (contains out "dhw-trace/v1");
  Alcotest.(check bool) "has a pid row" true (contains out "p0.0")

(* End-to-end: a traced kernel run produces round/step/deliver spans whose
   wall-clock timestamps are monotone in completion order, without
   perturbing the deterministic metrics. *)
let test_kernel_spans () =
  let spec = Doall.Spec.make ~n:12 ~t:4 in
  let sink, collected = Obs.span_collector ~src:"sim" () in
  let r = Doall.Runner.run ~spans:sink spec Doall.Protocol_a.protocol in
  let r0 = Doall.Runner.run spec Doall.Protocol_a.protocol in
  Alcotest.(check bool) "metrics unchanged by tracing" true
    (Simkit.Metrics.work r.metrics = Simkit.Metrics.work r0.metrics
    && Simkit.Metrics.messages r.metrics
       = Simkit.Metrics.messages r0.metrics);
  let spans = collected () in
  let names = List.sort_uniq compare (List.map (fun s -> s.Sf.name) spans) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " spans present") true (List.mem n names))
    [ "round"; "step"; "deliver" ];
  List.iter
    (fun s ->
      if s.Sf.dur_us < 0.0 then Alcotest.fail "negative span duration")
    spans

let suite =
  [
    Alcotest.test_case "collector pairs begin/end" `Quick test_collector_pairs;
    Alcotest.test_case "collector LIFO on same name" `Quick
      test_nested_same_name;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "torn file tolerated" `Quick test_torn_file_tolerated;
    Alcotest.test_case "merge is causally ordered" `Quick test_merge_order;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export;
    Alcotest.test_case "ascii render" `Quick test_render_smoke;
    Alcotest.test_case "kernel emits spans, metrics unchanged" `Quick
      test_kernel_spans;
  ]
