(* The asynchronous substrate: event-sim semantics, failure-detector
   soundness/completeness, and the asynchronous Protocol A. *)

module Prng = Dhw_util.Prng
module E = Asim.Event_sim

let unit_proc handle = { E.a_init = (fun _ -> ()); a_handle = handle }

let outcome ?(sends = []) ?(work = []) ?(terminate = false) ?continue_after () =
  { E.state = (); sends; work; terminate; continue_after }

let test_message_delay_bounds () =
  (* every delivery happens within [1, max_delay] of the send *)
  let sent_at = ref (-1) and got_at = ref (-1) in
  let proc =
    unit_proc (fun pid now () ev ->
        match ev with
        | E.Started ->
            if pid = 0 then begin
              sent_at := now;
              outcome ~sends:[ (1, "x") ] ~terminate:true ()
            end
            else outcome ()
        | E.Got _ ->
            got_at := now;
            outcome ~terminate:true ()
        | E.Retired_notice _ | E.Continue -> outcome ())
  in
  let cfg = E.config ~max_delay:7 ~seed:3L ~n_processes:2 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check bool) "completed" true (E.completed r);
  let d = !got_at - !sent_at in
  Alcotest.(check bool) (Printf.sprintf "delay %d in [1,7]" d) true (d >= 1 && d <= 7)

let test_fd_soundness_and_completeness () =
  (* observers record notifications; the detector must never report a
     process that is still running, and must eventually report every crash
     to every survivor *)
  let notices = Array.make 4 [] in
  let proc =
    unit_proc (fun pid now () ev ->
        match ev with
        | E.Retired_notice who ->
            notices.(pid) <- (who, now) :: notices.(pid);
            outcome ()
        | E.Started | E.Got _ | E.Continue -> outcome ())
  in
  let crash_at = [ (1, 10); (2, 25) ] in
  let cfg = E.config ~crash_at ~max_lag:6 ~seed:9L ~n_processes:4 ~n_units:1 () in
  let r = E.run cfg proc in
  ignore r;
  List.iter
    (fun obs ->
      let got = notices.(obs) in
      (* soundness: notification strictly after the true crash *)
      List.iter
        (fun (who, at) ->
          let true_crash = List.assoc who crash_at in
          if at <= true_crash then
            Alcotest.failf "observer %d notified of %d at %d <= crash %d" obs who
              at true_crash)
        got;
      (* completeness: both crashes reported to live observers *)
      Alcotest.(check bool)
        (Printf.sprintf "observer %d saw both" obs)
        true
        (List.mem_assoc 1 got && List.mem_assoc 2 got))
    [ 0; 3 ]

let test_termination_also_notified () =
  let saw = ref false in
  let proc =
    unit_proc (fun pid _ () ev ->
        match ev with
        | E.Started -> if pid = 0 then outcome ~terminate:true () else outcome ()
        | E.Retired_notice 0 ->
            saw := true;
            outcome ~terminate:true ()
        | E.Retired_notice _ | E.Got _ | E.Continue -> outcome ())
  in
  let cfg = E.config ~seed:4L ~n_processes:2 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check bool) "completed" true (E.completed r);
  Alcotest.(check bool) "termination notified" true !saw

let test_continue_scheduling () =
  let ticks = ref [] in
  let proc =
    {
      E.a_init = (fun _ -> 0);
      a_handle =
        (fun _ now k ev ->
          match ev with
          | E.Started -> { E.state = 0; sends = []; work = []; terminate = false; continue_after = Some 3 }
          | E.Continue ->
              ticks := now :: !ticks;
              {
                E.state = k + 1;
                sends = [];
                work = [];
                terminate = k >= 2;
                continue_after = (if k >= 2 then None else Some 3);
              }
          | E.Got _ | E.Retired_notice _ ->
              { E.state = k; sends = []; work = []; terminate = false; continue_after = None });
    }
  in
  let cfg = E.config ~seed:5L ~n_processes:1 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check bool) "completed" true (E.completed r);
  Alcotest.(check (list int)) "continues every 3 ticks" [ 9; 6; 3 ] !ticks

(* --- asynchronous Protocol A --- *)

let check_async name (r : E.result) =
  Alcotest.(check bool) (name ^ ": completed") true (E.completed r);
  let survivors =
    Array.fold_left
      (fun acc s -> match s with Simkit.Types.Terminated _ -> acc + 1 | _ -> acc)
      0 r.statuses
  in
  if survivors > 0 then
    Alcotest.(check bool)
      (name ^ ": all units done")
      true
      (Simkit.Metrics.all_units_done r.metrics)

let test_async_a_failure_free () =
  let spec = Helpers.spec ~n:80 ~t:16 in
  let r = Asim.Async_protocol_a.run spec in
  check_async "ff" r;
  Alcotest.(check int) "exactly n work" 80 (Simkit.Metrics.work r.metrics)

let test_async_a_failover_chain () =
  let spec = Helpers.spec ~n:60 ~t:8 in
  let crash_at = List.init 7 (fun i -> (i, 12 * (i + 1))) in
  let r = Asim.Async_protocol_a.run ~crash_at ~max_delay:9 ~max_lag:20 spec in
  check_async "chain" r;
  (* Theorem 2.3's work bound carries over *)
  let grid = Doall.Grid.make spec in
  Alcotest.(check bool) "work bound" true
    (Simkit.Metrics.work r.metrics <= Doall.Bounds.a_work grid)

let test_async_a_random () =
  let g = Prng.create 17L in
  let spec = Helpers.spec ~n:50 ~t:10 in
  for i = 1 to 25 do
    let crash_at = Helpers.random_schedule g ~t:10 ~window:600 in
    let r =
      Asim.Async_protocol_a.run ~crash_at
        ~max_delay:(Prng.int_in g 1 15)
        ~max_lag:(Prng.int_in g 1 40)
        ~seed:(Prng.next_int64 g) spec
    in
    check_async (Printf.sprintf "random #%d" i) r
  done

let test_async_a_unsound_detector_duplicates_but_completes () =
  (* Section 2.1 requires a *sound* detector. Violate it: convince process 3
     early on that 0, 1 and 2 are all gone. Two actives then run
     concurrently; idempotence keeps the execution correct, only the work
     count inflates. *)
  let spec = Helpers.spec ~n:40 ~t:6 in
  let false_suspicions = [ (3, 0, 5); (3, 1, 5); (3, 2, 5) ] in
  let sound = Asim.Async_protocol_a.run ~seed:2L spec in
  let unsound = Asim.Async_protocol_a.run ~seed:2L ~false_suspicions spec in
  check_async "unsound detector" unsound;
  Alcotest.(check bool)
    (Printf.sprintf "duplicated work: %d > %d"
       (Simkit.Metrics.work unsound.metrics)
       (Simkit.Metrics.work sound.metrics))
    true
    (Simkit.Metrics.work unsound.metrics > Simkit.Metrics.work sound.metrics)

let test_async_a_slow_detector_still_correct () =
  let spec = Helpers.spec ~n:30 ~t:6 in
  let crash_at = [ (0, 5); (1, 9); (2, 13) ] in
  let r = Asim.Async_protocol_a.run ~crash_at ~max_lag:500 spec in
  check_async "slow detector" r

(* --- outcome variants --- *)

let test_outcome_stalled () =
  (* a process that never terminates and never schedules anything leaves the
     queue dry: Stalled, not a hang and not Completed *)
  let proc = unit_proc (fun _ _ () _ -> outcome ()) in
  let cfg = E.config ~seed:1L ~n_processes:2 ~n_units:1 () in
  let r = E.run cfg proc in
  (match r.outcome with
  | E.Stalled _ -> ()
  | o -> Alcotest.failf "expected Stalled, got %s" (Format.asprintf "%a" E.pp_outcome o));
  Alcotest.(check bool) "not completed" false (E.completed r)

let test_outcome_tick_limit () =
  let proc =
    unit_proc (fun _ _ () ev ->
        match ev with
        | E.Started | E.Continue -> outcome ~continue_after:1 ()
        | E.Got _ | E.Retired_notice _ -> outcome ())
  in
  let cfg = E.config ~seed:1L ~max_ticks:50 ~n_processes:1 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check bool) "tick limit" true (r.outcome = E.Tick_limit 50)

(* --- config validation --- *)

let test_config_validation () =
  let contains_sub hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let expect_invalid name needle f =
    match f () with
    | exception Invalid_argument msg ->
        if not (contains_sub msg needle) then
          Alcotest.failf "%s: message %S lacks %S" name msg needle
    | _ -> Alcotest.failf "%s: accepted" name
  in
  let base ?crash_at ?max_delay ?max_lag ?false_suspicions ?link () =
    E.config ?crash_at ?max_delay ?max_lag ?false_suspicions ?link
      ~n_processes:4 ~n_units:10 ()
  in
  expect_invalid "max_delay 0" "max_delay" (fun () -> base ~max_delay:0 ());
  expect_invalid "max_lag 0" "max_lag" (fun () -> base ~max_lag:0 ());
  expect_invalid "crash pid range" "crash_at" (fun () ->
      base ~crash_at:[ (7, 3) ] ());
  expect_invalid "suspicion observer range" "observer" (fun () ->
      base ~false_suspicions:[ (9, 0, 3) ] ());
  expect_invalid "suspicion suspect range" "suspect" (fun () ->
      base ~false_suspicions:[ (0, -1, 3) ] ());
  expect_invalid "suspicion negative time" "negative" (fun () ->
      base ~false_suspicions:[ (0, 1, -2) ] ());
  expect_invalid "drop_bp 10000" "drop_bp" (fun () ->
      base ~link:{ E.perfect_link with drop_bp = 10_000 } ());
  expect_invalid "dup_bp negative" "dup_bp" (fun () ->
      base ~link:{ E.perfect_link with dup_bp = -1 } ());
  expect_invalid "slow_factor 0" "slow_factor" (fun () ->
      base ~link:{ E.perfect_link with slow_factor = 0 } ());
  expect_invalid "slow pid range" "slow_set" (fun () ->
      base ~link:{ E.perfect_link with slow_set = [ 4 ] } ())

(* --- link adversary --- *)

let sender_receiver ~on_got =
  unit_proc (fun pid _ () ev ->
      match ev with
      | E.Started ->
          if pid = 0 then outcome ~sends:[ (1, "x") ] ~terminate:true ()
          else outcome ()
      | E.Got _ -> on_got ()
      | E.Retired_notice _ | E.Continue -> outcome ())

let test_link_drop () =
  (* with a 99.99% loss rate the single message dies: the receiver is left
     stranded and the loss is counted *)
  let proc = sender_receiver ~on_got:(fun () -> outcome ~terminate:true ()) in
  let link = { E.perfect_link with drop_bp = 9_999 } in
  let cfg = E.config ~link ~seed:1L ~n_processes:2 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check int) "dropped" 1 r.net.dropped;
  Alcotest.(check int) "sent" 1 r.net.sent;
  match r.outcome with
  | E.Stalled _ -> ()
  | _ -> Alcotest.fail "expected a stall after the loss"

let test_link_duplication () =
  let arrivals = ref 0 in
  let proc =
    sender_receiver ~on_got:(fun () ->
        incr arrivals;
        outcome ())
  in
  let link = { E.perfect_link with dup_bp = 10_000 } in
  let cfg = E.config ~link ~seed:1L ~n_processes:2 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check int) "delivered twice" 2 !arrivals;
  Alcotest.(check int) "duplication counted" 1 r.net.duplicated

let test_link_slow_set_stretches_delays () =
  (* messages touching the slow set may exceed max_delay (up to the
     factored bound); fast-path messages never do *)
  let deliveries = ref [] in
  let proc =
    unit_proc (fun pid now () ev ->
        match ev with
        | E.Started ->
            if pid = 0 then
              outcome ~sends:(List.init 30 (fun _ -> (1, "s"))) ()
            else if pid = 2 then
              outcome ~sends:(List.init 30 (fun _ -> (3, "f"))) ()
            else outcome ()
        | E.Got { payload; _ } ->
            deliveries := (payload, now) :: !deliveries;
            outcome ()
        | E.Retired_notice _ | E.Continue -> outcome ())
  in
  let link = { E.perfect_link with slow_set = [ 1 ]; slow_factor = 10 } in
  let cfg = E.config ~link ~max_delay:2 ~seed:3L ~n_processes:4 ~n_units:1 () in
  ignore (E.run cfg proc);
  let slow = List.filter (fun (p, _) -> p = "s") !deliveries in
  let fast = List.filter (fun (p, _) -> p = "f") !deliveries in
  Alcotest.(check int) "all slow messages arrive" 30 (List.length slow);
  List.iter
    (fun (_, at) ->
      if at < 1 || at > 20 then Alcotest.failf "slow delay %d outside [1,20]" at)
    slow;
  if not (List.exists (fun (_, at) -> at > 2) slow) then
    Alcotest.fail "slow set never exceeded max_delay - factor inert?";
  List.iter
    (fun (_, at) ->
      if at < 1 || at > 2 then
        Alcotest.failf "fast delay %d outside [1,%d]" at 2)
    fast

(* --- seeded determinism under the full adversary --- *)

let logging log (p : ('s, 'm) E.aproc) =
  {
    E.a_init = p.E.a_init;
    a_handle =
      (fun pid now st ev ->
        (match ev with
        | E.Got { src; _ } -> log := (pid, now, src) :: !log
        | _ -> ());
        p.E.a_handle pid now st ev);
  }

let prop_seed_determinism =
  Helpers.qcheck_case ~count:25
    ~name:"event sim: same seed, same delivery order and metrics"
    QCheck2.Gen.(map Int64.of_int int)
    (fun seed ->
      let spec = Helpers.spec ~n:30 ~t:5 in
      let go () =
        let log = ref [] in
        let link =
          { E.drop_bp = 1_500; dup_bp = 800; corrupt_bp = 0; slow_set = [ 1 ]; slow_factor = 3; severs = [] }
        in
        let cfg =
          E.config ~crash_at:[ (0, 25) ] ~max_delay:4 ~seed ~link
            ~n_processes:5 ~n_units:30 ()
        in
        let r = E.run cfg (logging log (Asim.Async_protocol_a.aproc spec)) in
        let fingerprint =
          Format.asprintf "%a|%a|%d/%d/%d" Simkit.Metrics.pp_summary r.metrics
            E.pp_outcome r.outcome r.net.sent r.net.dropped r.net.duplicated
        in
        (!log, fingerprint)
      in
      let log1, fp1 = go () and log2, fp2 = go () in
      if fp1 <> fp2 then
        QCheck2.Test.fail_reportf "metrics diverged:@.%s@.%s" fp1 fp2
      else if log1 <> log2 then
        QCheck2.Test.fail_reportf "delivery order diverged (%d vs %d events)"
          (List.length log1) (List.length log2)
      else true)

(* --- heartbeat detector --- *)

module H = Asim.Heartbeat

let test_heartbeat_suspects_silent_peer () =
  let cfg = H.config ~period:4 ~timeout:12 () in
  let hb = H.create ~config:cfg ~me:0 ~n:3 ~now:0 () in
  Alcotest.(check int) "first deadline is the beat" 0 (H.next_deadline hb);
  let newly, beat = H.tick hb ~now:0 in
  Alcotest.(check (list int)) "nobody suspected yet" [] newly;
  Alcotest.(check bool) "beat due" true beat;
  let newly, _ = H.tick hb ~now:11 in
  Alcotest.(check (list int)) "still within timeout" [] newly;
  let newly, _ = H.tick hb ~now:12 in
  Alcotest.(check (list int)) "silent peers suspected" [ 1; 2 ] newly;
  Alcotest.(check bool) "suspected" true (H.suspected hb 1);
  Alcotest.(check (list int)) "suspects" [ 1; 2 ] (H.suspects hb)

let test_heartbeat_evidence_retracts_and_backs_off () =
  let cfg = H.config ~period:4 ~timeout:12 ~backoff:2 () in
  let hb = H.create ~config:cfg ~me:0 ~n:2 ~now:0 () in
  ignore (H.tick hb ~now:12);
  Alcotest.(check bool) "suspected after silence" true (H.suspected hb 1);
  Alcotest.(check bool) "evidence retracts" true
    (H.alive_evidence hb ~src:1 ~now:12);
  Alcotest.(check bool) "no longer suspected" false (H.suspected hb 1);
  (* timeout doubled: silence of 12 no longer suffices, 24 does *)
  let newly, _ = H.tick hb ~now:24 in
  Alcotest.(check (list int)) "within backed-off timeout" [] newly;
  let newly, _ = H.tick hb ~now:36 in
  Alcotest.(check (list int)) "suspected at doubled timeout" [ 1 ] newly;
  (* evidence about self or out-of-range pids is a no-op *)
  Alcotest.(check bool) "self" false (H.alive_evidence hb ~src:0 ~now:1);
  Alcotest.(check bool) "out of range" false (H.alive_evidence hb ~src:9 ~now:1)

let test_heartbeat_stop_is_permanent () =
  let hb = H.create ~me:0 ~n:2 ~now:0 () in
  H.stop hb 1;
  let newly, _ = H.tick hb ~now:1_000_000 in
  Alcotest.(check (list int)) "stopped peer never suspected" [] newly;
  Alcotest.(check bool) "evidence ignored after stop" false
    (H.alive_evidence hb ~src:1 ~now:5)

let check_hb_stats name hb (suspicions, false_suspicions, unsuspects) =
  let s = H.stats hb in
  Alcotest.(check int) (name ^ ": suspicions") suspicions s.H.suspicions;
  Alcotest.(check int)
    (name ^ ": false suspicions")
    false_suspicions s.H.false_suspicions;
  Alcotest.(check int) (name ^ ": unsuspects") unsuspects s.H.unsuspects

let test_heartbeat_stats_and_rejoin () =
  let cfg = H.config ~period:4 ~timeout:12 ~backoff:2 () in
  let hb = H.create ~config:cfg ~me:0 ~n:3 ~now:0 () in
  check_hb_stats "fresh" hb (0, 0, 0);
  ignore (H.tick hb ~now:12);
  check_hb_stats "both peers timed out" hb (2, 0, 0);
  (* peer 1 was merely slow: its retraction is a false suspicion *)
  Alcotest.(check bool) "retracted" true (H.alive_evidence hb ~src:1 ~now:12);
  check_hb_stats "retraction" hb (2, 1, 1);
  (* peer 2 genuinely retired... then comes back: an un-suspect that is
     not a false suspicion *)
  H.stop hb 2;
  H.rejoin hb 2 ~now:13;
  check_hb_stats "rejoin" hb (2, 1, 2);
  Alcotest.(check bool) "rejoiner trusted again" false (H.suspected hb 2);
  (* the rejoiner is monitored again, with the initial timeout *)
  let newly, _ = H.tick hb ~now:25 in
  Alcotest.(check (list int)) "rejoiner monitored" [ 2 ] newly;
  check_hb_stats "rejoiner re-suspected" hb (3, 1, 2);
  Alcotest.(check bool) "evidence works after rejoin" true
    (H.alive_evidence hb ~src:2 ~now:26)

(* The real fleet's rejoin path is organic: a respawned incarnation simply
   beats again, and {!H.alive_evidence} retracts the standing suspicion.
   Under an arbitrary churn of long crashes and revivals the detector must
   stay ◇P-shaped: every sufficiently long silence is suspected
   (completeness), and a peer whose beats resume is promptly trusted again
   and never re-suspected while it keeps beating (eventual accuracy). The
   generator keeps [timeout >= 2 * period] so a live beating peer can
   never expire between beats, and makes every down phase outlast the
   backed-off timeout cap so suspicion provably fires. *)
let gen_churn =
  let open QCheck2.Gen in
  let* period = int_range 2 8 in
  let* timeout = int_range (2 * period) (4 * period) in
  let* episodes =
    list_size (int_range 1 4)
      (pair
         (int_range ((4 * timeout) + period + 2) (6 * timeout))
         (int_range (3 * period) (6 * period)))
  in
  return (period, timeout, episodes)

let prop_heartbeat_restart_churn =
  Helpers.qcheck_case ~count:60
    ~name:"heartbeat: under restart churn every rejoiner is trusted again"
    gen_churn
    (fun (period, timeout, episodes) ->
      let cfg =
        H.config ~period ~timeout ~backoff:2 ~max_timeout:(4 * timeout) ()
      in
      let hb = H.create ~config:cfg ~me:0 ~n:2 ~now:0 () in
      let now = ref 0 in
      let fail = ref None in
      let flunk fmt = Printf.ksprintf (fun m -> if !fail = None then fail := Some m) fmt in
      let run_down len =
        for _ = 1 to len do
          incr now;
          ignore (H.tick hb ~now:!now)
        done;
        (* completeness: the silence outlasted even the capped timeout *)
        if not (H.suspected hb 1) then
          flunk "down %d ticks (cap %d) yet never suspected" len (4 * timeout)
      in
      let run_up len =
        let start = !now in
        for _ = 1 to len do
          incr now;
          ignore (H.tick hb ~now:!now);
          (* the revived peer beats every period, starting one period in *)
          if (!now - start) mod period = 0 then
            ignore (H.alive_evidence hb ~src:1 ~now:!now)
        done;
        (* eventual accuracy: beats resumed, so the suspicion must have
           been retracted — and with timeout >= 2 * period it cannot have
           been re-raised between beats *)
        if H.suspected hb 1 then flunk "still suspected after beats resumed"
      in
      List.iter
        (fun (down, up) ->
          run_down down;
          run_up up)
        episodes;
      let s = H.stats hb in
      if s.H.suspicions < List.length episodes then
        flunk "only %d suspicions over %d crash episodes" s.H.suspicions
          (List.length episodes);
      if s.H.unsuspects <> s.H.false_suspicions then
        flunk "evidence-path retractions must count as false suspicions";
      match !fail with
      | Some m -> QCheck2.Test.fail_report m
      | None -> true)

(* --- the per-process engine (caller-clocked driver) --- *)

module Eng = Asim.Engine

let test_engine_event_contract () =
  (* a proc that sends on Started, schedules a wakeup chain, does one unit
     per Continue, and terminates on a Got *)
  let events = ref [] in
  let proc =
    unit_proc (fun _ now () ev ->
        events := (now, ev) :: !events;
        match ev with
        | E.Started -> outcome ~sends:[ (1, "hello") ] ~continue_after:4 ()
        | E.Continue -> outcome ~work:[ 7 ] ~continue_after:4 ()
        | E.Got _ -> outcome ~terminate:true ()
        | E.Retired_notice _ -> outcome ())
  in
  let eng = Eng.create proc ~pid:0 in
  Alcotest.(check (option int)) "no wakeup before start" None
    (Eng.next_wakeup eng);
  let fx = Eng.start eng ~now:10 in
  Alcotest.(check bool) "started send surfaces" true
    (fx.Eng.sends = [ (1, "hello") ]);
  Alcotest.(check (option int)) "wakeup scheduled" (Some 14)
    (Eng.next_wakeup eng);
  (match Eng.start eng ~now:11 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "second start accepted");
  (* a due wakeup fires at the caller's (possibly late) now; the handler's
     re-arm is measured from that now, so it lands beyond this call — one
     handler call per scheduled wakeup, exactly the simulator's contract *)
  let fx = Eng.advance eng ~now:18 in
  Alcotest.(check (list int)) "one unit for the one due continue" [ 7 ]
    fx.Eng.work;
  Alcotest.(check (option int)) "re-armed from the late now" (Some 22)
    (Eng.next_wakeup eng);
  let fx = Eng.advance eng ~now:22 in
  Alcotest.(check (list int)) "second continue fires when due" [ 7 ]
    fx.Eng.work;
  Alcotest.(check bool) "not terminated yet" false (Eng.terminated eng);
  let fx = Eng.deliver eng ~now:20 ~src:1 "bye" in
  Alcotest.(check bool) "terminated on delivery" true fx.Eng.terminated;
  Alcotest.(check bool) "engine agrees" true (Eng.terminated eng);
  (* inert afterwards: no effects, no wakeups *)
  let fx = Eng.advance eng ~now:99 in
  Alcotest.(check bool) "inert after termination" true
    (fx.Eng.sends = [] && fx.Eng.work = [] && Eng.next_wakeup eng = None);
  let seen_continues =
    List.length (List.filter (fun (_, e) -> e = E.Continue) !events)
  in
  Alcotest.(check int) "exactly two continues delivered" 2 seen_continues

let test_engine_notice_relays_detector () =
  let noticed = ref [] in
  let proc =
    unit_proc (fun _ _ () ev ->
        match ev with
        | E.Retired_notice q ->
            noticed := q :: !noticed;
            outcome ()
        | _ -> outcome ())
  in
  let eng = Eng.create proc ~pid:2 in
  ignore (Eng.start eng ~now:0);
  ignore (Eng.notice eng ~now:5 7);
  Alcotest.(check (list int)) "notice delivered" [ 7 ] !noticed

(* --- reliable links (Link.harden) --- *)

module L = Asim.Link

let relay_proc ~delivered =
  (* 0 sends one payload to 1 and terminates; 1 records it, then lingers
     30 ticks (so late duplicates/retransmits reach it) before terminating *)
  unit_proc (fun pid _ () ev ->
      match ev with
      | E.Started ->
          if pid = 0 then outcome ~sends:[ (1, "unit-7") ] ~terminate:true ()
          else outcome ()
      | E.Got { payload; _ } ->
          delivered := payload :: !delivered;
          outcome ~continue_after:30 ()
      | E.Continue -> outcome ~terminate:true ()
      | E.Retired_notice _ -> outcome ())

let test_link_harden_survives_loss () =
  (* 70% loss: the bare protocol would strand the receiver (cf.
     test_link_drop); the hardened one retransmits until acked. Across a
     handful of seeds every run must complete with exactly-once delivery,
     and the loss must force at least one retransmission somewhere. *)
  let total_retransmits = ref 0 in
  for seed = 1 to 8 do
    let delivered = ref [] in
    let stats = L.stats () in
    let hardened = L.harden ~stats ~n:2 (relay_proc ~delivered) in
    let link = { E.perfect_link with drop_bp = 7_000 } in
    let cfg = E.config ~link ~seed:(Int64.of_int seed) ~n_processes:2 ~n_units:1 () in
    let r = E.run cfg hardened in
    Alcotest.(check bool) (Printf.sprintf "seed %d: completed" seed) true
      (E.completed r);
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: delivered exactly once" seed)
      [ "unit-7" ] !delivered;
    total_retransmits := !total_retransmits + stats.L.retransmits
  done;
  Alcotest.(check bool) "retransmissions happened" true (!total_retransmits > 0)

let test_link_harden_dedups_duplicates () =
  let delivered = ref [] in
  let stats = L.stats () in
  let hardened = L.harden ~stats ~n:2 (relay_proc ~delivered) in
  let link = { E.perfect_link with dup_bp = 10_000 } in
  let cfg = E.config ~link ~seed:5L ~n_processes:2 ~n_units:1 () in
  let r = E.run cfg hardened in
  Alcotest.(check bool) "completed" true (E.completed r);
  Alcotest.(check (list string)) "inner sees the payload once" [ "unit-7" ]
    !delivered;
  Alcotest.(check bool) "duplicates suppressed" true
    (stats.L.dups_suppressed > 0)

let test_link_max_retries_exhaust () =
  (* The receiver crashes before acking and no detector ever says so
     (oracle off, no heartbeat): an unbounded sender would retransmit into
     the void forever. With max_retries the packet is abandoned after the
     budget, the abandonment is counted, and the sender drains and
     terminates — the run completes instead of deadlocking on an
     unackable packet. *)
  let delivered = ref [] in
  let stats = L.stats () in
  let hardened =
    L.harden
      ~config:(L.config ~rto:4 ~max_retries:3 ())
      ~stats ~n:2 (relay_proc ~delivered)
  in
  let cfg =
    E.config ~crash_at:[ (1, 1) ] ~oracle_detector:false ~max_ticks:50_000
      ~seed:3L ~n_processes:2 ~n_units:1 ()
  in
  let r = E.run cfg hardened in
  Alcotest.(check bool) "completed, not stalled or tick-limited" true
    (E.completed r);
  Alcotest.(check (list string)) "nothing delivered" [] !delivered;
  Alcotest.(check int) "retry budget spent" 3 stats.L.retransmits;
  Alcotest.(check bool) "abandonment counted" true (stats.L.abandoned >= 1);
  match r.E.statuses.(0) with
  | Simkit.Types.Terminated _ -> ()
  | st -> Alcotest.failf "sender still %s" (Simkit.Types.status_to_string st)

let test_link_unbounded_retries_stall () =
  (* The same scenario with the unlimited default shows why the bound
     matters: the sender retries until the tick guard fires, and nothing
     is ever abandoned. *)
  let delivered = ref [] in
  let stats = L.stats () in
  let hardened = L.harden ~config:(L.config ~rto:4 ()) ~stats ~n:2 (relay_proc ~delivered) in
  let cfg =
    E.config ~crash_at:[ (1, 1) ] ~oracle_detector:false ~max_ticks:2_000
      ~seed:3L ~n_processes:2 ~n_units:1 ()
  in
  let r = E.run cfg hardened in
  (match r.E.outcome with
  | E.Tick_limit _ -> ()
  | o -> Alcotest.failf "expected tick limit, got %a" E.pp_outcome o);
  Alcotest.(check int) "nothing abandoned" 0 stats.L.abandoned;
  Alcotest.(check bool) "kept retransmitting" true (stats.L.retransmits > 3)

(* --- hardened async Protocol A: the acceptance criterion --- *)

let test_hardened_a_lossy_campaign () =
  (* drop <= 30%, duplication, a slow process and crashes: the hardened
     protocol must still complete every unit, with every live process
     terminating, across seeds *)
  let spec = Helpers.spec ~n:40 ~t:6 in
  let link =
    { E.drop_bp = 3_000; dup_bp = 1_000; corrupt_bp = 0; slow_set = [ 4 ]; slow_factor = 3; severs = [] }
  in
  for seed = 1 to 10 do
    let stats = L.stats () in
    let r =
      Asim.Async_protocol_a.run_hardened
        ~crash_at:[ (0, 30); (3, 150) ]
        ~link ~stats ~seed:(Int64.of_int seed) ~max_ticks:200_000 spec
    in
    let name = Printf.sprintf "seed %d" seed in
    (* detector accounting: under crash-stop every un-suspect is a
       retracted (false) suspicion, and no more can be retracted than
       were ever fired *)
    Alcotest.(check int)
      (name ^ ": unsuspects = false suspicions")
      stats.L.false_suspicions stats.L.unsuspects;
    Alcotest.(check int)
      (name ^ ": unsuspects = retired-set recoveries")
      stats.L.recoveries stats.L.unsuspects;
    Alcotest.(check bool)
      (name ^ ": retractions bounded by suspicions")
      true
      (stats.L.false_suspicions <= stats.L.suspicions);
    Alcotest.(check bool)
      (name ^ ": the crashed pair was eventually suspected")
      true
      (stats.L.suspicions >= 2);
    Alcotest.(check bool) (name ^ ": completed") true (E.completed r);
    Alcotest.(check bool)
      (name ^ ": every unit performed")
      true
      (Simkit.Metrics.all_units_done r.metrics);
    Array.iteri
      (fun pid st ->
        match st with
        | Simkit.Types.Terminated _ | Simkit.Types.Crashed _ -> ()
        | Simkit.Types.Running ->
            Alcotest.failf "%s: process %d still running" name pid)
      r.statuses;
    Alcotest.(check bool)
      (name ^ ": at least one crash bit")
      true
      (Simkit.Metrics.crashes r.metrics >= 1)
  done

let test_hardened_a_overhead_vs_perfect_link () =
  (* the price of loss is overhead, never lost units *)
  let spec = Helpers.spec ~n:60 ~t:6 in
  let perfect = Asim.Async_protocol_a.run_hardened ~seed:9L spec in
  let lossy =
    Asim.Async_protocol_a.run_hardened ~seed:9L
      ~link:{ E.perfect_link with drop_bp = 2_500; dup_bp = 500 }
      spec
  in
  Alcotest.(check bool) "both complete" true
    (E.completed perfect && E.completed lossy);
  Alcotest.(check bool) "both cover all units" true
    (Simkit.Metrics.all_units_done perfect.metrics
    && Simkit.Metrics.all_units_done lossy.metrics);
  Alcotest.(check bool) "loss costs messages" true
    (Simkit.Metrics.messages lossy.metrics
    >= Simkit.Metrics.messages perfect.metrics)

(* --- false suspicions: bounded duplication, nothing lost --- *)

let gen_false_suspicion_case =
  let open QCheck2.Gen in
  let* observers = shuffle_l [ 1; 2; 3; 4; 5 ] in
  let* m = int_range 1 3 in
  let observers = List.sort compare (List.filteri (fun i _ -> i < m) observers) in
  let* tau = int_range 2 15 in
  let* seed = map Int64.of_int int in
  return (observers, tau, seed)

let prop_false_suspicions_duplicate_boundedly =
  Helpers.qcheck_case ~count:40
    ~name:"async A: false suspicions duplicate work, boundedly, losing nothing"
    gen_false_suspicion_case
    (fun (observers, tau, seed) ->
      let n = 40 and t = 6 in
      let spec = Helpers.spec ~n ~t in
      let m = List.length observers in
      (* each observer is falsely convinced every lower pid is gone, so it
         activates alongside the true active process *)
      let false_suspicions =
        List.concat_map
          (fun o -> List.init o (fun p -> (o, p, tau)))
          observers
      in
      (* max_delay 1 keeps the run race-free: a final broadcast always
         lands before any termination notice, so the only extra actives
         are the m injected ones and the bounds below are exact *)
      let r =
        Asim.Async_protocol_a.run ~max_delay:1 ~seed ~false_suspicions spec
      in
      let work = Simkit.Metrics.work r.metrics in
      let worst_mult = ref 0 in
      for u = 0 to n - 1 do
        worst_mult := max !worst_mult (Simkit.Metrics.unit_multiplicity r.metrics u)
      done;
      if not (E.completed r) then QCheck2.Test.fail_report "did not complete"
      else if not (Simkit.Metrics.all_units_done r.metrics) then
        QCheck2.Test.fail_report "units lost under false suspicion"
      else if work <= n then
        QCheck2.Test.fail_reportf "no duplication despite %d false actives" m
      else if work > n * (1 + m) then
        QCheck2.Test.fail_reportf "work %d exceeds %d actives x %d units" work
          (1 + m) n
      else if !worst_mult > 1 + m then
        QCheck2.Test.fail_reportf "unit multiplicity %d > 1 + %d" !worst_mult m
      else true)

(* --- async campaigns stay clean and deterministic --- *)

let test_async_campaign_clean_and_deterministic () =
  let spec = Helpers.spec ~n:30 ~t:5 in
  let go () = Asim.Async_fuzz.campaign ~seed:11L ~executions:40 spec in
  let a = go () in
  (match a.Simkit.Campaign.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "async campaign violation: oracle=%s (%s)"
        f.Simkit.Campaign.oracle f.Simkit.Campaign.detail);
  Alcotest.(check int) "all judged" 40 a.Simkit.Campaign.schedules;
  Alcotest.(check bool) "deterministic in seed" true (go () = a)

let suite =
  [
    Alcotest.test_case "message delays bounded" `Quick test_message_delay_bounds;
    Alcotest.test_case "detector sound and complete" `Quick test_fd_soundness_and_completeness;
    Alcotest.test_case "termination notified too" `Quick test_termination_also_notified;
    Alcotest.test_case "continue scheduling" `Quick test_continue_scheduling;
    Alcotest.test_case "async A: failure-free" `Quick test_async_a_failure_free;
    Alcotest.test_case "async A: failover chain" `Quick test_async_a_failover_chain;
    Alcotest.test_case "async A: random schedules" `Quick test_async_a_random;
    Alcotest.test_case "async A: slow detector" `Quick test_async_a_slow_detector_still_correct;
    Alcotest.test_case "async A: unsound detector duplicates work" `Quick
      test_async_a_unsound_detector_duplicates_but_completes;
    Alcotest.test_case "outcome: stalled runs reported" `Quick
      test_outcome_stalled;
    Alcotest.test_case "outcome: tick limit reported" `Quick
      test_outcome_tick_limit;
    Alcotest.test_case "config: invalid fields rejected with clear errors"
      `Quick test_config_validation;
    Alcotest.test_case "link: loss counted and fatal to bare protocols" `Quick
      test_link_drop;
    Alcotest.test_case "link: duplication delivers twice" `Quick
      test_link_duplication;
    Alcotest.test_case "link: slow set stretches delays beyond max_delay"
      `Quick test_link_slow_set_stretches_delays;
    prop_seed_determinism;
    Alcotest.test_case "heartbeat: silent peers suspected" `Quick
      test_heartbeat_suspects_silent_peer;
    Alcotest.test_case "heartbeat: evidence retracts, timeout backs off"
      `Quick test_heartbeat_evidence_retracts_and_backs_off;
    Alcotest.test_case "heartbeat: stop is permanent" `Quick
      test_heartbeat_stop_is_permanent;
    Alcotest.test_case "heartbeat: detector stats + rejoin un-suspects" `Quick
      test_heartbeat_stats_and_rejoin;
    prop_heartbeat_restart_churn;
    Alcotest.test_case "engine: per-process event contract" `Quick
      test_engine_event_contract;
    Alcotest.test_case "engine: oracle notices relayed" `Quick
      test_engine_notice_relays_detector;
    Alcotest.test_case "harden: retransmission survives 70% loss" `Quick
      test_link_harden_survives_loss;
    Alcotest.test_case "harden: duplicates delivered once" `Quick
      test_link_harden_dedups_duplicates;
    Alcotest.test_case "harden: max_retries exhaustion abandons, no deadlock"
      `Quick test_link_max_retries_exhaust;
    Alcotest.test_case "harden: unbounded retries stall without a bound"
      `Quick test_link_unbounded_retries_stall;
    Alcotest.test_case "hardened A: lossy campaign completes (acceptance)"
      `Quick test_hardened_a_lossy_campaign;
    Alcotest.test_case "hardened A: loss costs overhead, not units" `Quick
      test_hardened_a_overhead_vs_perfect_link;
    prop_false_suspicions_duplicate_boundedly;
    Alcotest.test_case "async campaign: clean and deterministic" `Quick
      test_async_campaign_clean_and_deterministic;
  ]
