(* The adversary campaign engine (Simkit.Campaign + Doall.Fuzz): bounded
   exhaustive campaigns per protocol as tier-1 checks, the schedule
   serialization round-trip law, and the find -> shrink -> replay loop
   demonstrated on a deliberately broken oracle. *)

module C = Simkit.Campaign
module Gen = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* Serialization round-trip *)

let gen_delivery =
  Gen.oneof
    [
      Gen.return Simkit.Fault.All;
      Gen.map (fun k -> Simkit.Fault.Prefix k) (Gen.int_bound 6);
      Gen.map
        (fun l -> Simkit.Fault.Indices l)
        (Gen.list_size (Gen.int_bound 4) (Gen.int_bound 9));
    ]

let gen_tamper =
  Gen.map2
    (fun t_kind t_salt -> { Simkit.Fault.t_kind; t_salt })
    (Gen.oneofl
       [
         Simkit.Fault.Lying_view; Simkit.Fault.Replay_stale;
         Simkit.Fault.Inflate_done;
       ])
    (Gen.int_bound 999_999)

let gen_mode =
  Gen.oneof
    [
      Gen.return C.Schedule.Silent;
      Gen.map2
        (fun keep_work delivery -> C.Schedule.Acting { keep_work; delivery })
        Gen.bool gen_delivery;
      Gen.return C.Schedule.Restart;
      Gen.map (fun tam -> C.Schedule.Corrupt tam) gen_tamper;
      Gen.return C.Schedule.Byzantine;
    ]

let gen_entry =
  Gen.map3
    (fun victim at mode -> { C.Schedule.victim; at; mode })
    (Gen.int_bound 9) (Gen.int_bound 200) gen_mode

let gen_meta =
  (* keys must be single tokens, values newline-free and single-spaced *)
  let open Gen in
  let key = oneofl [ "protocol"; "n"; "t"; "seed"; "note" ] in
  let value = oneofl [ "a"; "b"; "12"; "4"; "77"; "shrunk from campaign" ] in
  list_size (int_bound 3) (pair key value)

let gen_schedule =
  let open Gen in
  let* meta = gen_meta in
  let* entries = list_size (int_bound 6) gen_entry in
  return (C.Schedule.make ~meta entries)

let print_schedule s = C.Schedule.print s

let prop_round_trip =
  Helpers.qcheck_case ~count:500 ~name:"schedule: parse (print s) = s"
    gen_schedule
    (fun s ->
      match C.Schedule.parse (C.Schedule.print s) with
      | Ok s' ->
          if s' <> s then
            QCheck2.Test.fail_reportf "round trip changed:@.%s@.->@.%s"
              (print_schedule s) (print_schedule s')
          else true
      | Error e -> QCheck2.Test.fail_reportf "parse error: %s" e)

let test_parse_tolerates_noise () =
  let text =
    "# a comment\n\nschedule v1\n  meta protocol a\r\ncrash 1 @4  acting drop \
     prefix 0\n# mid comment\ncrash 0 @9 silent\nend\n"
  in
  match C.Schedule.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
      Alcotest.(check int) "entries" 2 (List.length s.C.Schedule.entries);
      Alcotest.(check (option string))
        "meta" (Some "a")
        (C.Schedule.meta s "protocol")

let test_parse_rejects_garbage () =
  let bad =
    [
      "";
      "schedule v2\nend\n";
      "schedule v1\ncrash x @1 silent\nend\n";
      "schedule v1\ncrash 1 @z silent\nend\n";
      "schedule v1\ncrash 1 @2 floating\nend\n";
      "schedule v1\ncrash 1 @2 acting drop prefix q\nend\n";
      "schedule v1\ncrash 1 @2 silent\n";
      "schedule v1\nbyz 1 2\nend\n";
      "schedule v1\nbyz x @2\nend\n";
      "schedule v1\ncorrupt 1 @2 bogus-kind salt 3\nend\n";
      "schedule v1\ncorrupt 1 @2 lying-view salt q\nend\n";
      "schedule v1\ncorrupt 1 @2 lying-view\nend\n";
    ]
  in
  List.iter
    (fun text ->
      match C.Schedule.parse text with
      | Ok _ -> Alcotest.failf "accepted garbage: %S" text
      | Error _ -> ())
    bad

(* ------------------------------------------------------------------ *)
(* Async schedule serialization round-trip *)

let gen_async_schedule =
  let open Gen in
  let* meta = gen_meta in
  let* crashes =
    list_size (int_bound 4)
      (map2
         (fun victim at -> { C.Async.victim; at })
         (int_bound 9) (int_bound 300))
  in
  let* drop_bp = int_bound 3000 in
  let* dup_bp = int_bound 2000 in
  let* corrupt_bp = int_bound 2500 in
  let* byz =
    list_size (int_bound 2)
      (map2
         (fun victim at -> { C.Async.victim; at })
         (int_bound 9) (int_bound 300))
  in
  let* restarts =
    list_size (int_bound 3)
      (map2
         (fun victim at -> { C.Async.victim; at })
         (int_bound 9) (int_bound 300))
  in
  let* severs =
    list_size (int_bound 2)
      (map3
         (fun s_src s_dst (s_from, len) ->
           { C.Async.s_src; s_dst; s_from; s_to = s_from + len })
         (int_bound 9) (int_bound 9)
         (pair (int_bound 200) (int_bound 50)))
  in
  let* slow_set = list_size (int_bound 3) (int_bound 9) in
  let* slow_factor = int_range 1 5 in
  let* max_delay = int_range 1 8 in
  let* max_lag = int_range 1 8 in
  let* seed = map Int64.of_int int in
  return
    (C.Async.make ~meta ~crashes ~restarts ~drop_bp ~dup_bp ~corrupt_bp ~byz
       ~slow_set ~slow_factor ~severs ~max_delay ~max_lag ~seed ())

let prop_async_round_trip =
  Helpers.qcheck_case ~count:500 ~name:"async schedule: parse (print s) = s"
    gen_async_schedule
    (fun s ->
      match C.Async.parse (C.Async.print s) with
      | Ok s' ->
          if s' <> s then
            QCheck2.Test.fail_reportf "round trip changed:@.%s@.->@.%s"
              (C.Async.print s) (C.Async.print s')
          else true
      | Error e -> QCheck2.Test.fail_reportf "parse error: %s" e)

let test_async_parse_tolerates_noise () =
  let text =
    "# async counterexample\n\nasync-schedule v1\n  meta protocol async-a\r\n\
     link drop 1200 dup 50\nslow 1,3 factor 4\n# mid comment\ndelay 3 lag \
     2\nseed -77\ncrash 0 @17\nend\n"
  in
  match C.Async.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
      Alcotest.(check int) "crashes" 1 (List.length s.C.Async.crashes);
      Alcotest.(check int) "drop" 1200 s.C.Async.drop_bp;
      Alcotest.(check (list int)) "slow set" [ 1; 3 ] s.C.Async.slow_set;
      Alcotest.(check int64) "seed" (-77L) s.C.Async.seed;
      Alcotest.(check (option string))
        "meta" (Some "async-a")
        (C.Async.meta s "protocol")

let test_async_parse_rejects_garbage () =
  let bad =
    [
      "";
      "schedule v1\nend\n";
      "async-schedule v2\nend\n";
      "async-schedule v1\ncrash x @1\nend\n";
      "async-schedule v1\ncrash 1 2\nend\n";
      "async-schedule v1\nlink drop z dup 0\nend\n";
      "async-schedule v1\nslow 1;2 factor 1\nend\n";
      "async-schedule v1\nseed abc\nend\n";
      "async-schedule v1\ncrash 1 @2\n";
      "async-schedule v1\nbyz 1 2\nend\n";
      "async-schedule v1\nbyz x @2\nend\n";
      "async-schedule v1\ncorrupt nan\nend\n";
      "async-schedule v1\nrestart 1 2\nend\n";
      "async-schedule v1\nrestart x @2\nend\n";
      "async-schedule v1\nsever 0 1 @5\nend\n";
      "async-schedule v1\nsever 0 1 5 9\nend\n";
    ]
  in
  List.iter
    (fun text ->
      match C.Async.parse text with
      | Ok _ -> Alcotest.failf "accepted garbage: %S" text
      | Error _ -> ())
    bad

(* ------------------------------------------------------------------ *)
(* Tier-1 bounded campaigns: every protocol of the paper survives the full
   (victim set x crash-round grid x mode) space on a tiny instance. *)

let exhaustive_clean name ?modes proto ~n ~t =
  let spec = Doall.Spec.make ~n ~t in
  let stats = Doall.Fuzz.exhaustive_campaign ?modes spec proto in
  (match stats.C.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%s: oracle %s failed on [%s]: %s" name f.C.oracle
        (Format.asprintf "%a" C.Schedule.pp f.C.schedule)
        f.C.detail);
  if stats.C.schedules < 500 then
    Alcotest.failf "%s: only %d schedules enumerated?" name stats.C.schedules

let test_campaign_a () =
  exhaustive_clean "A n=4 t=3" Doall.Protocol_a.protocol ~n:4 ~t:3

let test_campaign_b () =
  exhaustive_clean "B n=4 t=3" Doall.Protocol_b.protocol ~n:4 ~t:3

let test_campaign_c () =
  exhaustive_clean "C n=4 t=3" Doall.Protocol_c.protocol ~n:4 ~t:3

let test_campaign_d () =
  exhaustive_clean "D n=4 t=3" Doall.Protocol_d.protocol ~n:4 ~t:3

let test_campaign_d_coord () =
  exhaustive_clean "D-coord n=4 t=3" Doall.Protocol_d_coord.protocol ~n:4 ~t:3

let test_campaign_sampled_larger () =
  (* a seeded sampled campaign at a size the exhaustive space can't reach *)
  let spec = Doall.Spec.make ~n:80 ~t:12 in
  let stats =
    Doall.Fuzz.campaign ~seed:99L ~executions:300 spec Doall.Protocol_b.protocol
  in
  Alcotest.(check int) "no violations" 0 (List.length stats.C.failures);
  Alcotest.(check int) "all schedules judged" 300 stats.C.schedules;
  (* margins are reported for every bound oracle *)
  List.iter
    (fun name ->
      if not (List.mem_assoc name stats.C.margins) then
        Alcotest.failf "missing %s margin" name)
    [ "work"; "messages"; "rounds" ]

let test_campaign_deterministic () =
  let go () =
    Doall.Fuzz.campaign ~seed:5L ~executions:120
      (Doall.Spec.make ~n:40 ~t:8)
      Doall.Protocol_a.protocol
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "identical stats" true (a = b)

(* ------------------------------------------------------------------ *)
(* The find -> shrink -> replay loop, driven by a deliberately broken
   oracle (work <= n, which crash-and-retry adversaries must violate). *)

let find_broken_oracle_failure () =
  let spec = Doall.Spec.make ~n:12 ~t:4 in
  let proto = Doall.Protocol_a.protocol in
  let stats =
    Doall.Fuzz.campaign ~seed:1L ~executions:200
      ~extra:[ Doall.Fuzz.work_cap (Doall.Spec.n spec) ]
      ~max_failures:1 spec proto
  in
  match stats.C.failures with
  | [] -> Alcotest.fail "broken oracle produced no counterexample"
  | f :: _ -> (spec, proto, f)

let test_broken_oracle_is_caught_and_shrunk () =
  let _, _, f = find_broken_oracle_failure () in
  Alcotest.(check string) "failing oracle" "work-cap" f.C.oracle;
  let size s = List.length s.C.Schedule.entries in
  if size f.C.shrunk > size f.C.schedule then
    Alcotest.fail "shrinking grew the schedule";
  if f.C.shrink_executions <= 0 then Alcotest.fail "no shrink executions?"

let test_shrunk_schedule_is_locally_minimal () =
  let spec, proto, f = find_broken_oracle_failure () in
  let cap = Doall.Fuzz.work_cap (Doall.Spec.n spec) in
  let fails s =
    match cap.C.check (Doall.Fuzz.run_schedule spec proto s) with
    | C.Fail _ -> true
    | C.Pass | C.Pass_margin _ -> false
  in
  if not (fails f.C.shrunk) then Alcotest.fail "shrunk schedule stopped failing";
  (* dropping any single entry must make the violation disappear *)
  let entries = f.C.shrunk.C.Schedule.entries in
  List.iteri
    (fun i _ ->
      let dropped =
        { f.C.shrunk with
          C.Schedule.entries = List.filteri (fun j _ -> j <> i) entries }
      in
      if fails dropped then
        Alcotest.failf "entry %d of the shrunk schedule is redundant" i)
    entries

let test_shrunk_schedule_replays_identically () =
  let spec, proto, f = find_broken_oracle_failure () in
  (* serialize, parse back, re-run: metrics and verdict must be identical *)
  let text = C.Schedule.print f.C.shrunk in
  let sched =
    match C.Schedule.parse text with
    | Ok s -> s
    | Error e -> Alcotest.failf "corpus round-trip failed: %s" e
  in
  Alcotest.(check bool) "schedule survives serialization" true
    (sched = f.C.shrunk);
  let fingerprint s =
    let subject = Doall.Fuzz.run_schedule spec proto s in
    Format.asprintf "%a" Doall.Runner.pp subject.Doall.Fuzz.report
  in
  Alcotest.(check string) "replayed metrics identical" (fingerprint f.C.shrunk)
    (fingerprint sched);
  let cap = Doall.Fuzz.work_cap (Doall.Spec.n spec) in
  let oracles = Doall.Fuzz.oracles spec ~protocol:"a" @ [ cap ] in
  match C.first_failure oracles (Doall.Fuzz.run_schedule spec proto sched) with
  | Some ("work-cap", detail) ->
      Alcotest.(check string) "identical detail" f.C.shrunk_detail detail
  | Some (o, d) -> Alcotest.failf "unexpected oracle %s failed: %s" o d
  | None -> Alcotest.fail "replay did not reproduce the violation"

(* ------------------------------------------------------------------ *)
(* The corruption/Byzantine schedule algebra: normalization and cost. *)

let entry victim at mode = { C.Schedule.victim; at; mode }

let corrupt_mode kind salt =
  C.Schedule.Corrupt { Simkit.Fault.t_kind = kind; t_salt = salt }

let test_normalize_byz_earliest_wins () =
  let s =
    C.Schedule.make
      [
        entry 2 9 C.Schedule.Byzantine;
        entry 2 4 C.Schedule.Byzantine;
        entry 2 7 C.Schedule.Byzantine;
      ]
  in
  match (C.Schedule.normalize s).C.Schedule.entries with
  | [ { C.Schedule.at = 4; mode = C.Schedule.Byzantine; victim = 2 } ] -> ()
  | es ->
      Alcotest.failf "expected the earliest subversion alone, got %d entries"
        (List.length es)

let test_normalize_byz_subsumes_later_entries () =
  let s =
    C.Schedule.make
      [
        entry 1 3 C.Schedule.Silent (* strictly before subversion: kept *);
        entry 1 5 C.Schedule.Byzantine;
        entry 1 5 C.Schedule.Silent (* at the subversion round: dropped *);
        entry 1 8 C.Schedule.Restart (* a subverted pid never restarts *);
        entry 1 9 (corrupt_mode Simkit.Fault.Lying_view 7) (* subsumed *);
        entry 0 8 C.Schedule.Silent (* other victims untouched *);
      ]
  in
  let n = C.Schedule.normalize s in
  Alcotest.(check int) "survivors" 3 (List.length n.C.Schedule.entries);
  List.iter
    (fun (e : C.Schedule.entry) ->
      if e.victim = 1 && e.at >= 5 && e.mode <> C.Schedule.Byzantine then
        Alcotest.failf "entry at %d survived its victim's subversion" e.at)
    n.C.Schedule.entries

let test_normalize_corrupt_dedup () =
  let s =
    C.Schedule.make
      [
        entry 3 6 (corrupt_mode Simkit.Fault.Lying_view 11);
        entry 3 6 (corrupt_mode Simkit.Fault.Inflate_done 99) (* dup round *);
        entry 3 7 (corrupt_mode Simkit.Fault.Replay_stale 5) (* distinct *);
      ]
  in
  match (C.Schedule.normalize s).C.Schedule.entries with
  | [ { C.Schedule.at = 6; mode = C.Schedule.Corrupt tam; _ };
      { C.Schedule.at = 7; _ } ] ->
      Alcotest.(check int) "first same-round corruption wins" 11
        tam.Simkit.Fault.t_salt
  | es -> Alcotest.failf "unexpected normal form (%d entries)" (List.length es)

let prop_normalize_idempotent =
  Helpers.qcheck_case ~count:300
    ~name:"schedule: normalize (normalize s) = normalize s" gen_schedule
    (fun s ->
      let n = C.Schedule.normalize s in
      let n' = C.Schedule.normalize n in
      if n' <> n then
        QCheck2.Test.fail_reportf "not idempotent:@.%s@.->@.%s"
          (C.Schedule.print n) (C.Schedule.print n')
      else true)

let test_cost_weighs_adversary_power () =
  let s =
    C.Schedule.make
      [
        entry 0 1 C.Schedule.Byzantine;
        entry 1 2 (corrupt_mode Simkit.Fault.Replay_stale 3);
        entry 2 3 C.Schedule.Silent;
        entry 2 9 C.Schedule.Restart;
      ]
  in
  Alcotest.(check int) "5 + 2 + 1 + 1" 9 (C.Schedule.cost s)

let test_byz_campaign_jobs_deterministic () =
  let go jobs =
    Doall.Fuzz.byz_campaign ~jobs ~seed:3L ~executions:40 ~max_failures:1
      (Doall.Spec.make ~n:24 ~t:6)
      Doall.Fuzz.Unhardened
  in
  Alcotest.(check bool) "sync byz: jobs 1 = jobs 4" true (go 1 = go 4)

let test_async_byz_campaign_jobs_deterministic () =
  let go jobs =
    Asim.Async_fuzz.byz_campaign ~jobs ~seed:1L ~executions:20 ~window:40
      ~max_failures:1
      (Doall.Spec.make ~n:24 ~t:6)
      Doall.Fuzz.Unhardened
  in
  Alcotest.(check bool) "async byz: jobs 1 = jobs 4" true (go 1 = go 4)

(* ------------------------------------------------------------------ *)
(* to_fault semantics *)

let test_schedule_to_fault_earliest_wins () =
  (* duplicate victim entries: the earliest round applies *)
  let sched =
    C.Schedule.make
      [
        { C.Schedule.victim = 0; at = 30; mode = C.Schedule.Silent };
        { C.Schedule.victim = 0; at = 2; mode = C.Schedule.Silent };
      ]
  in
  let spec = Doall.Spec.make ~n:10 ~t:3 in
  let subject =
    Doall.Fuzz.run_schedule spec Doall.Protocol_a.protocol sched
  in
  (match subject.Doall.Fuzz.report.Doall.Runner.statuses.(0) with
  | Simkit.Types.Crashed r ->
      if r < 2 then Alcotest.failf "crashed before its round: %d" r
  | s ->
      Alcotest.failf "expected pid 0 crashed, got %s"
        (Simkit.Types.status_to_string s));
  Helpers.check_correct "earliest-wins" subject.Doall.Fuzz.report

let test_restart_entries_parse_and_count () =
  let text =
    "schedule v1\nmeta protocol a+rec\ncrash 0 @2 silent\nrestart 0 @9\n\
     # the rejoiner crashes again\ncrash 0 @15 silent\nrestart 0 @20\nend\n"
  in
  match C.Schedule.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
      Alcotest.(check int) "entries" 4 (List.length s.C.Schedule.entries);
      Alcotest.(check int) "restart entries" 2 (C.Schedule.restart_count s);
      Alcotest.(check string) "round trip (comments dropped)"
        "schedule v1\nmeta protocol a+rec\ncrash 0 @2 silent\nrestart 0 @9\n\
         crash 0 @15 silent\nrestart 0 @20\nend\n"
        (C.Schedule.print s)

let test_to_fault_drops_degenerate_restarts () =
  (* a restart with no preceding crash, and one at/before its cycle's crash
     round, are both dropped by normalization: the run degrades to
     crash-stop and the victims stay down *)
  let sched =
    C.Schedule.make
      [
        { C.Schedule.victim = 1; at = 4; mode = C.Schedule.Restart };
        { C.Schedule.victim = 0; at = 5; mode = C.Schedule.Silent };
        { C.Schedule.victim = 0; at = 3; mode = C.Schedule.Restart };
      ]
  in
  let spec = Doall.Spec.make ~n:10 ~t:3 in
  let subject =
    Doall.Fuzz.run_recovery_schedule spec Doall.Recovery.A sched
  in
  let r = subject.Doall.Fuzz.report in
  Alcotest.(check int) "no restart committed" 0
    (Simkit.Metrics.restarts r.Doall.Runner.metrics);
  (match r.Doall.Runner.statuses.(0) with
  | Simkit.Types.Crashed _ -> ()
  | s ->
      Alcotest.failf "expected pid 0 to stay crashed, got %s"
        (Simkit.Types.status_to_string s));
  Helpers.check_correct "degraded to crash-stop" r

let suite =
  [
    prop_round_trip;
    Alcotest.test_case "parse: comments/blank/CRLF tolerated" `Quick
      test_parse_tolerates_noise;
    Alcotest.test_case "parse: malformed inputs rejected" `Quick
      test_parse_rejects_garbage;
    prop_async_round_trip;
    Alcotest.test_case "async parse: comments/blank/CRLF tolerated" `Quick
      test_async_parse_tolerates_noise;
    Alcotest.test_case "async parse: malformed inputs rejected" `Quick
      test_async_parse_rejects_garbage;
    Alcotest.test_case "A: exhaustive campaign clean, n=4 t=3" `Quick
      test_campaign_a;
    Alcotest.test_case "B: exhaustive campaign clean, n=4 t=3" `Quick
      test_campaign_b;
    Alcotest.test_case "C: exhaustive campaign clean, n=4 t=3" `Quick
      test_campaign_c;
    Alcotest.test_case "D: exhaustive campaign clean, n=4 t=3" `Quick
      test_campaign_d;
    Alcotest.test_case "D-coord: exhaustive campaign clean, n=4 t=3" `Quick
      test_campaign_d_coord;
    Alcotest.test_case "B: sampled campaign n=80 t=12 with margins" `Quick
      test_campaign_sampled_larger;
    Alcotest.test_case "campaigns are deterministic in seed" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "broken oracle: violation found and shrunk" `Quick
      test_broken_oracle_is_caught_and_shrunk;
    Alcotest.test_case "shrunk counterexample is locally minimal" `Quick
      test_shrunk_schedule_is_locally_minimal;
    Alcotest.test_case "shrunk counterexample replays identically" `Quick
      test_shrunk_schedule_replays_identically;
    Alcotest.test_case "normalize: earliest byz subversion wins" `Quick
      test_normalize_byz_earliest_wins;
    Alcotest.test_case "normalize: byz subsumes later entries" `Quick
      test_normalize_byz_subsumes_later_entries;
    Alcotest.test_case "normalize: same-round corruption deduped" `Quick
      test_normalize_corrupt_dedup;
    prop_normalize_idempotent;
    Alcotest.test_case "cost: byz 5, corrupt 2, crash/restart 1" `Quick
      test_cost_weighs_adversary_power;
    Alcotest.test_case "byz campaign deterministic across jobs" `Quick
      test_byz_campaign_jobs_deterministic;
    Alcotest.test_case "async byz campaign deterministic across jobs" `Quick
      test_async_byz_campaign_jobs_deterministic;
    Alcotest.test_case "to_fault: earliest entry per victim wins" `Quick
      test_schedule_to_fault_earliest_wins;
    Alcotest.test_case "restart entries: parse + restart_count" `Quick
      test_restart_entries_parse_and_count;
    Alcotest.test_case "to_fault: degenerate restarts dropped" `Quick
      test_to_fault_drops_degenerate_restarts;
  ]
