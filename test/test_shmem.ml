(* The shared-memory Write-All substrate (Section 1.1 comparison). *)

module Prng = Dhw_util.Prng
module SK = Shmem.Skernel
module WA = Shmem.Writeall

let test_one_op_per_round () =
  let proc =
    {
      SK.s_init = (fun _ -> ((), Some 0));
      s_step =
        (fun _ _ () h ->
          ignore (SK.read h 0);
          ignore (SK.read h 0);
          { SK.state = (); work = []; terminate = true; wakeup = None });
    }
  in
  Alcotest.(check bool) "second op rejected" true
    (try
       ignore (SK.run ~n_cells:1 ~n_processes:1 ~n_units:1 proc);
       false
     with Invalid_argument _ -> true)

let test_crcw_lowest_pid_wins () =
  let seen = ref (-1) in
  let proc =
    {
      SK.s_init = (fun _ -> (0, Some 0));
      s_step =
        (fun pid r k h ->
          match k with
          | 0 ->
              SK.write h 0 (100 + pid);
              { SK.state = 1; work = []; terminate = false; wakeup = Some (r + 1) }
          | _ ->
              if pid = 0 then seen := SK.read h 0;
              { SK.state = 2; work = []; terminate = true; wakeup = None });
    }
  in
  ignore (SK.run ~n_cells:1 ~n_processes:3 ~n_units:1 proc);
  Alcotest.(check int) "lowest pid's write survives" 100 !seen

let test_reads_see_previous_round () =
  (* a round-0 write must not be visible to a round-0 read *)
  let got = ref (-1) in
  let proc =
    {
      SK.s_init = (fun pid -> ((), Some (if pid = 0 then 0 else 0)));
      s_step =
        (fun pid r () h ->
          if pid = 0 then begin
            SK.write h 0 7;
            { SK.state = (); work = []; terminate = true; wakeup = None }
          end
          else if r = 0 then begin
            got := SK.read h 0;
            { SK.state = (); work = []; terminate = true; wakeup = Some (r + 1) }
          end
          else { SK.state = (); work = []; terminate = true; wakeup = None });
    }
  in
  ignore (SK.run ~n_cells:1 ~n_processes:2 ~n_units:1 proc);
  Alcotest.(check int) "round-0 read sees initial value" 0 !got

let test_checkpointed_exact_ff () =
  let o = WA.checkpointed ~n:100 ~t:16 () in
  Alcotest.(check bool) "done" true (WA.work_complete o);
  Alcotest.(check int) "work = n" 100 (Simkit.Metrics.work o.result.metrics);
  Alcotest.(check int) "writes = n" 100 o.result.writes;
  Alcotest.(check bool) "reads <= t" true (o.result.reads <= 16);
  (* effort O(n + t): exactly 2n + reads here *)
  Alcotest.(check bool) "effort <= 2n+t" true (o.effort <= 200 + 16)

let test_checkpointed_random () =
  let g = Prng.create 99L in
  for i = 1 to 20 do
    let crash_at = Helpers.random_schedule g ~t:12 ~window:3000 in
    let o = WA.checkpointed ~crash_at ~n:60 ~t:12 () in
    if not (WA.work_complete o && SK.completed o.result) then
      Alcotest.failf "checkpointed failed on schedule #%d" i;
    (* work-optimality: at most one unit lost per crash *)
    let work = Simkit.Metrics.work o.result.metrics in
    if work > 60 + 12 then Alcotest.failf "work %d > n+t" work
  done

let test_parallel_scan_ff () =
  let o = WA.parallel_scan ~n:96 ~t:16 () in
  Alcotest.(check bool) "done" true (WA.work_complete o);
  (* parallel speed: everything performed within ~3n/t rounds, full run
     bounded by the verification pass *)
  Alcotest.(check bool) "fast"
    true
    (Simkit.Metrics.rounds o.result.metrics < 96 + 64)

let test_parallel_scan_random () =
  let g = Prng.create 123L in
  for i = 1 to 20 do
    let crash_at = Helpers.random_schedule g ~t:8 ~window:200 in
    let o = WA.parallel_scan ~crash_at ~n:40 ~t:8 () in
    if not (WA.work_complete o && SK.completed o.result) then
      Alcotest.failf "parallel scan failed on schedule #%d" i
  done

let test_tradeoff () =
  (* the Section 1.1 story: the sequential algorithm wins on effort, the
     parallel one on available processor steps and time *)
  let seq = WA.checkpointed ~n:100 ~t:16 () in
  let par = WA.parallel_scan ~n:100 ~t:16 () in
  Alcotest.(check bool)
    (Printf.sprintf "seq effort %d < par effort %d" seq.effort par.effort)
    true (seq.effort < par.effort);
  Alcotest.(check bool)
    (Printf.sprintf "par aps %d < seq aps %d" par.result.aps seq.result.aps)
    true
    (par.result.aps < seq.result.aps)

let test_outcome_distinguishes_stall_from_limit () =
  (* a process that retires its wakeup without terminating stalls the run;
     one that spins forever trips the round-limit guard instead *)
  let stalling =
    {
      SK.s_init = (fun _ -> ((), Some 0));
      s_step =
        (fun _ _ () _ ->
          { SK.state = (); work = []; terminate = false; wakeup = None });
    }
  in
  let res = SK.run ~n_cells:1 ~n_processes:1 ~n_units:1 stalling in
  (match res.SK.outcome with
  | SK.Stalled _ -> ()
  | o ->
      Alcotest.failf "expected Stalled, got %s"
        (match o with
        | SK.Completed -> "Completed"
        | SK.Round_limit _ -> "Round_limit"
        | SK.Stalled _ -> assert false));
  Alcotest.(check bool) "stall is not completed" false (SK.completed res);
  let spinning =
    {
      SK.s_init = (fun _ -> ((), Some 0));
      s_step =
        (fun _ r () _ ->
          { SK.state = (); work = []; terminate = false; wakeup = Some (r + 1) });
    }
  in
  let res = SK.run ~max_rounds:50 ~n_cells:1 ~n_processes:1 ~n_units:1 spinning in
  (match res.SK.outcome with
  | SK.Round_limit r -> Alcotest.(check bool) "limit round > guard" true (r > 50)
  | _ -> Alcotest.fail "expected Round_limit");
  Alcotest.(check bool) "limit is not completed" false (SK.completed res)

let test_aps_accounting () =
  (* one process, terminates at round 4: aps = 5; a second crashes at 2 *)
  let proc =
    {
      SK.s_init = (fun _ -> (0, Some 0));
      s_step =
        (fun _ r k _ ->
          { SK.state = k + 1; work = []; terminate = k = 4; wakeup = Some (r + 1) });
    }
  in
  let res = SK.run ~crash_at:[ (1, 2) ] ~n_cells:1 ~n_processes:2 ~n_units:1 proc in
  Alcotest.(check int) "aps = 5 + 3" 8 res.aps

let suite =
  [
    Alcotest.test_case "one memory op per round" `Quick test_one_op_per_round;
    Alcotest.test_case "CRCW priority write" `Quick test_crcw_lowest_pid_wins;
    Alcotest.test_case "reads see previous round" `Quick test_reads_see_previous_round;
    Alcotest.test_case "checkpointed: exact failure-free costs" `Quick test_checkpointed_exact_ff;
    Alcotest.test_case "checkpointed: random schedules" `Quick test_checkpointed_random;
    Alcotest.test_case "parallel scan: failure-free" `Quick test_parallel_scan_ff;
    Alcotest.test_case "parallel scan: random schedules" `Quick test_parallel_scan_random;
    Alcotest.test_case "effort/APS trade-off (Section 1.1)" `Quick test_tradeoff;
    Alcotest.test_case "outcome: stall vs round-limit" `Quick
      test_outcome_distinguishes_stall_from_limit;
    Alcotest.test_case "APS accounting" `Quick test_aps_accounting;
  ]
