(* The doall_cli exit-code contract, as documented in the README: exit
   codes are machine-readable verdicts. [run]/[async]/[shmem] encode the
   outcome class (0 completed+correct, 1 incorrect, 2 usage, 3 stalled,
   4 round/tick limit); the fuzz family exits 1 when a campaign finds a
   counterexample and replay exits 1 when the replayed schedule still
   violates its oracle stack. Driven through the real executable so the
   codes can never drift from the docs silently.

   Protocols A-D never stall and the CLI exposes no round-limit override,
   so classes 3 and 4 are unreachable from here; they are covered by the
   kernel tests on synthetic protocols. *)

let cli =
  lazy
    (let candidates =
       [ "../bin/doall_cli.exe"; "_build/default/bin/doall_cli.exe" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some c -> c
     | None -> Alcotest.fail "doall_cli.exe not found (run under dune)")

let null = if Sys.win32 then "NUL" else "/dev/null"

let exec args =
  Sys.command
    (Filename.quote_command (Lazy.force cli) ~stdout:null ~stderr:null args)

let check_exit name expected args =
  Alcotest.(check int) (name ^ ": exit code") expected (exec args)

(* A fresh corpus directory the CLI will create and fill. *)
let temp_corpus () =
  let path = Filename.temp_file "dhw-cli-corpus" "" in
  Sys.remove path;
  path

let test_run_codes () =
  check_exit "run clean" 0 [ "run"; "-p"; "a"; "-n"; "24"; "-t"; "6" ];
  check_exit "run with crashes" 0
    [ "run"; "-p"; "a"; "-n"; "24"; "-t"; "6"; "--crash"; "0@3"; "--crash"; "2@7" ];
  check_exit "unknown protocol is usage error" 2
    [ "run"; "-p"; "nosuch"; "-n"; "24"; "-t"; "6" ]

let test_fuzz_codes () =
  let corpus = temp_corpus () in
  check_exit "clean campaign" 0
    [ "fuzz"; "-p"; "a"; "--seed"; "11"; "--executions"; "40"; "-n"; "24";
      "-t"; "6"; "--corpus"; corpus ];
  check_exit "clean campaign, parallel" 0
    [ "fuzz"; "-p"; "a"; "--seed"; "11"; "--executions"; "40"; "-n"; "24";
      "-t"; "6"; "--jobs"; "2"; "--corpus"; corpus ];
  check_exit "negative --jobs is usage error" 2
    [ "fuzz"; "-p"; "a"; "--jobs=-3"; "--executions"; "5"; "-n"; "12"; "-t"; "4" ]

let test_counterexample_codes () =
  (* work-cap 1 is violated by every schedule: the campaign must exit 1 and
     write the shrunk counterexample to the corpus. *)
  let corpus = temp_corpus () in
  check_exit "fuzz counterexample" 1
    [ "fuzz"; "-p"; "a"; "--seed"; "1"; "--executions"; "10"; "-n"; "12";
      "-t"; "4"; "--work-cap"; "1"; "--max-failures"; "1"; "--corpus"; corpus ];
  let sched = Filename.concat corpus "a-seed1-0.sched" in
  Alcotest.(check bool) "counterexample written" true (Sys.file_exists sched);
  (* Replay's exit code is the verdict of the replayed oracle stack: the
     schedule passes the standard stack (0) and still violates the cap (1). *)
  check_exit "replay without cap" 0 [ "replay"; sched ];
  check_exit "replay with cap" 1 [ "replay"; sched; "--work-cap"; "1" ];
  (* A missing schedule file is rejected by cmdliner's own argument
     validation, which uses its fixed code 124 rather than this CLI's 2. *)
  check_exit "replay of missing file is a cmdliner error" 124
    [ "replay"; Filename.concat corpus "nosuch.sched" ]

let test_async_and_recovery_codes () =
  check_exit "async-fuzz clean" 0
    [ "async-fuzz"; "--seed"; "7"; "--executions"; "15"; "-n"; "25"; "-t"; "4";
      "--jobs"; "2" ];
  check_exit "async-fuzz counterexample" 1
    [ "async-fuzz"; "--seed"; "4"; "--executions"; "8"; "-n"; "16"; "-t"; "4";
      "--work-cap"; "1"; "--max-failures"; "1"; "--corpus"; temp_corpus () ];
  check_exit "recovery-fuzz clean" 0
    [ "recovery-fuzz"; "-p"; "a"; "--seed"; "3"; "--executions"; "40"; "-n";
      "20"; "-t"; "5"; "--jobs"; "2" ];
  check_exit "recovery-fuzz counterexample" 1
    [ "recovery-fuzz"; "-p"; "a"; "--seed"; "4"; "--executions"; "8"; "-n";
      "16"; "-t"; "4"; "--work-cap"; "1"; "--max-failures"; "1"; "--corpus";
      temp_corpus () ]

let test_jobs_byte_identical_stdout () =
  (* The CI determinism gate in miniature: the same seeded campaign at
     --jobs 1 and --jobs 4 must print byte-identical results. *)
  let capture jobs =
    let out = Filename.temp_file "dhw-cli-out" ".txt" in
    let code =
      Sys.command
        (Filename.quote_command (Lazy.force cli) ~stdout:out ~stderr:null
           [ "fuzz"; "-p"; "a"; "--seed"; "11"; "--executions"; "60"; "-n";
             "24"; "-t"; "6"; "--jobs"; string_of_int jobs ])
    in
    Alcotest.(check int) (Printf.sprintf "jobs=%d exit" jobs) 0 code;
    let ic = open_in_bin out in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove out;
    s
  in
  Alcotest.(check string) "stdout identical at jobs 1 and 4" (capture 1) (capture 4)

let test_net_codes () =
  (* Real-process family. Misconfigurations must be rejected before any
     node is spawned; one tiny clean fleet proves the 0 path end to end. *)
  check_exit "net-run clean fleet" 0
    [ "net-run"; "-p"; "a"; "-n"; "8"; "-t"; "2" ];
  check_exit "net-run unknown protocol is usage error" 2
    [ "net-run"; "-p"; "nosuch"; "-n"; "8"; "-t"; "2" ];
  check_exit "net-run restarts need a recovery protocol" 2
    [ "net-run"; "-p"; "a"; "-n"; "8"; "-t"; "2"; "--restarts"; "0@6" ];
  check_exit "net-run watchdog expiry is a limit" 4
    [ "net-run"; "-p"; "a"; "-n"; "200"; "-t"; "8"; "--watchdog"; "0.01" ];
  (* Corrupt/Byzantine entries have no tamper model over real sockets:
     net-replay must refuse them as misconfiguration, not degrade. *)
  let sched = Filename.temp_file "dhw-cli-net" ".sched" in
  let oc = open_out sched in
  output_string oc
    "schedule v1\nmeta protocol a\nmeta n 8\nmeta t 2\n\
     corrupt 0 @2 lying-view salt 1\nend\n";
  close_out oc;
  check_exit "net-replay rejects corrupt entries" 2 [ "net-replay"; sched ];
  Sys.remove sched

let suite =
  [
    Alcotest.test_case "run exit codes" `Quick test_run_codes;
    Alcotest.test_case "fuzz exit codes" `Quick test_fuzz_codes;
    Alcotest.test_case "counterexample and replay exit codes" `Quick
      test_counterexample_codes;
    Alcotest.test_case "async and recovery fuzz exit codes" `Quick
      test_async_and_recovery_codes;
    Alcotest.test_case "campaign stdout independent of --jobs" `Quick
      test_jobs_byte_identical_stdout;
    Alcotest.test_case "net-run and net-replay exit codes" `Quick
      test_net_codes;
  ]
