(* The real-process deployment substrate (lib/net): wire-frame codec laws
   (round-trip plus strict rejection of every malformed shape), payload
   codecs, crash-atomic on-disk checkpoints with torn-write fallback, and
   the socket transport's deadlines and bounded connect retries. *)

module Gen = QCheck2.Gen
module Net = Dhw_net
module F = Dhw_net.Frame
module W = Dhw_net.Wire
module Ck = Doall.Ckpt_script

let frame_t = Alcotest.testable F.pp F.equal

(* ------------------------------------------------------------------ *)
(* Frame codec: round-trip law and rejections *)

let gen_bytes = Gen.(string_size ~gen:char (0 -- 12))
let gen_small = Gen.(0 -- 1000)
let gen_wakeup = Gen.(option (0 -- 500))

let gen_envelope =
  Gen.map3
    (fun src sent_at payload -> { F.src; sent_at; payload })
    gen_small gen_small gen_bytes

let gen_send =
  Gen.map3 (fun dst payload show -> { F.dst; payload; show }) gen_small gen_bytes
    gen_bytes

let gen_frame =
  Gen.oneof
    [
      Gen.map
        (fun ((pid, protocol, n), (t, incarnation, wakeup)) ->
          F.Hello { pid; protocol; n; t; incarnation; wakeup })
        Gen.(
          pair
            (triple gen_small (string_size ~gen:printable (0 -- 8)) gen_small)
            (triple gen_small gen_small gen_wakeup));
      Gen.map (fun round -> F.Welcome { round }) gen_small;
      Gen.map2
        (fun round inbox -> F.Round_start { round; inbox })
        gen_small
        Gen.(list_size (0 -- 6) gen_envelope);
      Gen.map
        (fun ((round, sends, work), (terminate, wakeup, persists)) ->
          F.Step_result { round; sends; work; terminate; wakeup; persists })
        Gen.(
          pair
            (triple gen_small (list_size (0 -- 6) gen_send)
               (list_size (0 -- 6) gen_small))
            (triple bool gen_wakeup gen_small));
      Gen.map (fun tick -> F.Heartbeat { tick }) gen_small;
      Gen.pure F.Shutdown;
    ]

let pp_frame f = Format.asprintf "%a" F.pp f

let frame_roundtrip =
  Helpers.qcheck_case ~count:300 ~name:"frame: decode (encode f) = Ok f"
    gen_frame (fun f ->
      match F.decode (F.encode f) with
      | Ok f' when F.equal f f' -> true
      | Ok f' ->
          QCheck2.Test.fail_reportf "decoded %s from %s" (pp_frame f') (pp_frame f)
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s (%s)" e (pp_frame f))

let frame_truncation_rejected =
  Helpers.qcheck_case ~count:100
    ~name:"frame: every proper prefix is rejected" gen_frame (fun f ->
      let s = F.encode f in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        match F.decode (String.sub s 0 k) with
        | Error _ -> ()
        | Ok f' ->
            ok := false;
            ignore f'
      done;
      if not !ok then
        QCheck2.Test.fail_reportf "a prefix of %s decoded" (pp_frame f);
      !ok)

let frame_trailing_rejected =
  Helpers.qcheck_case ~count:100 ~name:"frame: trailing garbage is rejected"
    gen_frame (fun f ->
      match F.decode (F.encode f ^ "\x00") with
      | Error _ -> true
      | Ok _ -> QCheck2.Test.fail_reportf "trailing byte accepted (%s)" (pp_frame f))

let expect_error name s =
  match F.decode s with
  | Error _ -> ()
  | Ok f -> Alcotest.failf "%s: accepted %s" name (pp_frame f)

let hello =
  F.Hello { pid = 1; protocol = "a+rec"; n = 12; t = 3; incarnation = 0; wakeup = Some 0 }

(* encode layout: [0..3] length, [4] tag, then (hello only) [5..8] magic,
   [9] version. *)
let mutate s i c =
  let b = Bytes.of_string s in
  Bytes.set b i c;
  Bytes.to_string b

let test_rejections () =
  let b = Buffer.create 8 in
  W.put_u32 b (F.max_frame_len + 1);
  expect_error "oversized length prefix" (Buffer.contents b);
  let h = F.encode hello in
  expect_error "wrong hello version" (mutate h 9 '\xee');
  expect_error "bad hello magic" (mutate h 5 'X');
  expect_error "unknown tag" (mutate h 4 '\x7f');
  (match F.decode (mutate h 9 '\x02') with
  | Error e ->
      let mentions_version =
        let needle = "version" in
        let nl = String.length needle and el = String.length e in
        let rec scan i = i + nl <= el && (String.sub e i nl = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "version error names the mismatch" true mentions_version
  | Ok _ -> Alcotest.fail "future version accepted");
  (* a frame body shorter than its length prefix *)
  expect_error "short body" (String.sub h 0 (String.length h - 2))

(* ------------------------------------------------------------------ *)
(* Payload codecs *)

let gen_ord =
  Gen.oneof
    [
      Gen.map (fun c -> Ck.Partial c) gen_small;
      Gen.map2 (fun c g -> Ck.Full (c, g)) gen_small gen_small;
    ]

let gen_last =
  Gen.oneof
    [
      Gen.pure Ck.No_msg;
      Gen.map2 (fun ord src -> Ck.Last_ord { ord; src }) gen_ord gen_small;
    ]

let codec_ord_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"codec: ord round-trips" gen_ord
    (fun o -> Net.Codec.decode_ord (Net.Codec.encode_ord o) = o)

let codec_last_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"codec: last round-trips" gen_last
    (fun l -> Net.Codec.decode_last (Net.Codec.encode_last l) = l)

let gen_bmsg =
  Gen.oneof
    [
      Gen.map (fun o -> Doall.Protocol_b.Ord o) gen_ord;
      Gen.pure Doall.Protocol_b.Go_ahead;
    ]

let codec_b_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"codec: protocol-B msg round-trips"
    gen_bmsg (fun m -> Net.Codec.decode_b (Net.Codec.encode_b m) = m)

let gen_rmsg =
  Gen.oneof
    [
      Gen.map (fun o -> Doall.Recovery.Payload o) gen_ord;
      Gen.pure Doall.Recovery.Announce;
      Gen.map (fun l -> Doall.Recovery.Transfer l) gen_last;
    ]

let codec_rmsg_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"codec: recovery rmsg round-trips"
    gen_rmsg (fun m ->
      Net.Codec.decode_rmsg Net.Codec.decode_ord
        (Net.Codec.encode_rmsg Net.Codec.encode_ord m)
      = m)

let test_codec_rejects () =
  (try
     ignore (Net.Codec.decode_ord "");
     Alcotest.fail "empty ord accepted"
   with W.Decode _ -> ());
  (try
     ignore (Net.Codec.decode_ord (Net.Codec.encode_ord (Ck.Partial 3) ^ "\x00"));
     Alcotest.fail "trailing ord byte accepted"
   with W.Decode _ -> ());
  try
    ignore (Net.Codec.decode_last "\x07");
    Alcotest.fail "unknown last tag accepted"
  with W.Decode _ -> ()

(* ------------------------------------------------------------------ *)
(* Crash-atomic checkpoints *)

let tmpdir () =
  let d = Filename.temp_file "dhwnet" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_tmpdir f =
  let d = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let truncate_file p keep =
  let fd = Unix.openfile p [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd keep;
  Unix.close fd

let flip_byte p i =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  let oc = open_out_bin p in
  output_bytes oc b;
  close_out oc

let test_ckpt_roundtrip () =
  with_tmpdir (fun dir ->
      Alcotest.(check (option string)) "empty dir" None (Net.Ckpt.load ~dir ~pid:0);
      Net.Ckpt.save ~dir ~pid:0 "view-1";
      Alcotest.(check (option string)) "first save" (Some "view-1")
        (Net.Ckpt.load ~dir ~pid:0);
      Net.Ckpt.save ~dir ~pid:0 "view-2";
      Alcotest.(check (option string)) "overwrite" (Some "view-2")
        (Net.Ckpt.load ~dir ~pid:0);
      (* per-pid isolation: pid 1 sees nothing, and pid 0's file refuses to
         masquerade as pid 1's *)
      Alcotest.(check (option string)) "other pid" None (Net.Ckpt.load ~dir ~pid:1))

let test_ckpt_truncated_falls_back () =
  with_tmpdir (fun dir ->
      Net.Ckpt.save ~dir ~pid:3 "rank-1";
      Net.Ckpt.save ~dir ~pid:3 "rank-2";
      (* a torn write of the current generation must recover the previous
         rank, not crash and not return garbage *)
      truncate_file (Net.Ckpt.path ~dir ~pid:3) 7;
      Alcotest.(check (option string)) "truncated current -> previous rank"
        (Some "rank-1") (Net.Ckpt.load ~dir ~pid:3))

let test_ckpt_corrupt_falls_back () =
  with_tmpdir (fun dir ->
      Net.Ckpt.save ~dir ~pid:0 "rank-1";
      Net.Ckpt.save ~dir ~pid:0 "rank-2";
      let p = Net.Ckpt.path ~dir ~pid:0 in
      flip_byte p (String.length "DHWC" + 12);
      Alcotest.(check (option string)) "bit-flipped current -> previous rank"
        (Some "rank-1") (Net.Ckpt.load ~dir ~pid:0);
      (* both generations gone bad: recovery starts from nothing *)
      truncate_file p 3;
      flip_byte (p ^ ".prev") 6;
      Alcotest.(check (option string)) "both bad -> none" None
        (Net.Ckpt.load ~dir ~pid:0))

let test_ckpt_torn_rename_falls_back () =
  with_tmpdir (fun dir ->
      Net.Ckpt.save ~dir ~pid:5 "rank-1";
      Net.Ckpt.save ~dir ~pid:5 "rank-2";
      (* Simulate a crash inside save's torn-rename window on a third
         attempt: the current generation has already been demoted to
         .prev (displacing rank-1) but the fsynced tmp never made it into
         place — the node dies leaving NO current file, only .prev and a
         stray partial tmp. Recovery must surface the .prev generation. *)
      let p = Net.Ckpt.path ~dir ~pid:5 in
      Sys.rename p (p ^ ".prev");
      let oc = open_out_bin (p ^ ".tmp") in
      output_string oc "torn";
      close_out oc;
      Alcotest.(check bool) "current generation gone" false (Sys.file_exists p);
      Alcotest.(check (option string)) "missing current -> .prev generation"
        (Some "rank-2")
        (Net.Ckpt.load ~dir ~pid:5))

let test_ckpt_binary_payload () =
  with_tmpdir (fun dir ->
      let payload =
        Net.Codec.encode_last (Ck.Last_ord { ord = Ck.Full (2, 1); src = 7 })
      in
      Net.Ckpt.save ~dir ~pid:2 payload;
      match Net.Ckpt.load ~dir ~pid:2 with
      | Some raw ->
          Alcotest.(check bool) "decodes back" true
            (Net.Codec.decode_last raw = Ck.Last_ord { ord = Ck.Full (2, 1); src = 7 })
      | None -> Alcotest.fail "binary payload lost")

(* ------------------------------------------------------------------ *)
(* Transport *)

let test_addr_parse () =
  let ok s a =
    match Net.Transport.addr_of_string s with
    | Ok a' ->
        Alcotest.(check string) s (Net.Transport.addr_to_string a)
          (Net.Transport.addr_to_string a')
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  ok "unix:/tmp/x.sock" (Net.Transport.Unix_sock "/tmp/x.sock");
  ok "tcp:127.0.0.1:8080" (Net.Transport.Tcp ("127.0.0.1", 8080));
  ok "tcp:localhost:0" (Net.Transport.Tcp ("localhost", 0));
  List.iter
    (fun s ->
      match Net.Transport.addr_of_string s with
      | Ok _ -> Alcotest.failf "%s accepted" s
      | Error _ -> ())
    [ "bogus"; "unix:"; "tcp:host"; "tcp::80"; "tcp:h:notaport"; "tcp:h:70000" ]

let test_transport_loopback () =
  with_tmpdir (fun dir ->
      let addr = Net.Transport.Unix_sock (Filename.concat dir "s.sock") in
      let stats = Net.Transport.stats () in
      let srv = Net.Transport.listen addr in
      let client = Net.Transport.connect ~stats addr in
      let peer = Net.Transport.accept ~stats srv in
      Net.Transport.send_frame ~stats client (F.Heartbeat { tick = 42 });
      Alcotest.(check frame_t) "server receives" (F.Heartbeat { tick = 42 })
        (Net.Transport.recv_frame ~stats peer);
      Net.Transport.send_frame ~stats peer hello;
      Alcotest.(check frame_t) "client receives" hello
        (Net.Transport.recv_frame ~stats client);
      Alcotest.(check int) "two connects (dial + accept)" 2
        stats.Net.Transport.connects;
      Alcotest.(check int) "two frames sent" 2 stats.Net.Transport.frames_sent;
      Alcotest.(check int) "two frames received" 2
        stats.Net.Transport.frames_received;
      Alcotest.(check bool) "bytes counted" true
        (stats.Net.Transport.bytes_sent > 0
        && stats.Net.Transport.bytes_sent = stats.Net.Transport.bytes_received);
      (* peer closes: the reader sees Closed, not a hang *)
      Net.Transport.close_noerr client;
      (match Net.Transport.recv_frame ~stats peer with
      | exception Net.Transport.Closed _ -> ()
      | f -> Alcotest.failf "read %s after close" (pp_frame f));
      Net.Transport.close_noerr peer;
      Net.Transport.close_noerr srv)

let test_connect_retries_exhaust () =
  with_tmpdir (fun dir ->
      let addr = Net.Transport.Unix_sock (Filename.concat dir "absent.sock") in
      let stats = Net.Transport.stats () in
      match
        Net.Transport.connect ~stats ~attempts:3 ~backoff_s:0.001
          ~max_backoff_s:0.002 addr
      with
      | _ -> Alcotest.fail "connect to nothing succeeded"
      | exception Unix.Unix_error _ ->
          Alcotest.(check int) "attempts-1 retries" 2 stats.Net.Transport.retries;
          Alcotest.(check int) "no connect counted" 0 stats.Net.Transport.connects)

let test_recv_timeout () =
  with_tmpdir (fun dir ->
      let addr = Net.Transport.Unix_sock (Filename.concat dir "s.sock") in
      let stats = Net.Transport.stats () in
      let srv = Net.Transport.listen addr in
      let client = Net.Transport.connect ~stats addr in
      let peer = Net.Transport.accept ~stats srv in
      (match Net.Transport.recv_frame ~stats ~timeout_s:0.05 peer with
      | exception Net.Transport.Timeout _ ->
          Alcotest.(check int) "timeout counted" 1 stats.Net.Transport.timeouts
      | f -> Alcotest.failf "read %s from silence" (pp_frame f));
      Net.Transport.close_noerr client;
      Net.Transport.close_noerr peer;
      Net.Transport.close_noerr srv)

(* ------------------------------------------------------------------ *)
(* Async deployment substrate: peer codec, datagram mesh, seeded chaos *)

let test_peer_codec_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "peer_msg round-trips" true
        (Net.Codec.decode_peer (Net.Codec.encode_peer m) = m))
    [
      Net.Codec.P_data { src = 2; inc = 3; seq = 41; ord = Ck.Full (7, 2) };
      Net.Codec.P_data { src = 0; inc = 0; seq = 0; ord = Ck.Partial 9 };
      Net.Codec.P_ack { src = 1; inc = 2; target_inc = 0; seq = 999_983 };
      Net.Codec.P_beat { src = 2; inc = 5 };
    ];
  match Net.Codec.decode_peer "garbage" with
  | exception W.Decode _ -> ()
  | _ -> Alcotest.fail "garbage decoded as a peer_msg"

let test_counters_codec_roundtrip () =
  let bag = [ ("work", 600); ("data_sent", 3); ("parks", 0); ("inc", 2) ] in
  Alcotest.(check bool) "counter bag round-trips" true
    (Net.Codec.decode_counters (Net.Codec.encode_counters bag) = bag);
  Alcotest.(check bool) "empty bag round-trips" true
    (Net.Codec.decode_counters (Net.Codec.encode_counters []) = [])

let test_mesh_loopback () =
  with_tmpdir (fun dir ->
      let a = Net.Mesh.create ~dir ~pid:0 in
      let b = Net.Mesh.create ~dir ~pid:1 in
      Alcotest.(check bool) "send reaches bound peer" true
        (Net.Mesh.send a ~dst:1 "hello");
      Alcotest.(check (option string)) "datagram arrives" (Some "hello")
        (Net.Mesh.recv b ~timeout_s:1.0);
      Alcotest.(check (option string)) "silence times out" None
        (Net.Mesh.recv b ~timeout_s:0.01);
      (* an unbound pid is organic loss: counted, returned, never raised *)
      Alcotest.(check bool) "unbound peer unreachable" false
        (Net.Mesh.send a ~dst:7 "x");
      let sa = Net.Mesh.stats_of a in
      Alcotest.(check int) "one undeliverable" 1 sa.Net.Mesh.undeliverable;
      Alcotest.(check int) "one delivered send" 1 sa.Net.Mesh.datagrams_sent;
      (* SIGKILL semantics: a closed peer's path is gone; a respawned
         incarnation rebinds the same path and traffic resumes *)
      Net.Mesh.close b;
      Alcotest.(check bool) "dead peer unreachable" false
        (Net.Mesh.send a ~dst:1 "y");
      let b2 = Net.Mesh.create ~dir ~pid:1 in
      Alcotest.(check bool) "respawn reachable" true
        (Net.Mesh.send a ~dst:1 "z");
      Alcotest.(check (option string)) "respawn receives" (Some "z")
        (Net.Mesh.recv b2 ~timeout_s:1.0);
      Net.Mesh.close a;
      Net.Mesh.close b2)

let test_chaos_content_keyed () =
  let plan =
    { Net.Chaos.none with drop_bp = 3000; dup_bp = 1000; max_delay = 5;
      seed = 42L }
  in
  let judge ?(now = 7) kind =
    (Net.Chaos.judge plan ~src:0 ~dst:1 ~kind ~now ()).Net.Chaos.release_at
  in
  let k = Net.Chaos.Data { seq = 3; attempt = 0 } in
  (* content-keying: the same identity meets the same fate every time *)
  Alcotest.(check (list int)) "verdict is pure" (judge k) (judge k);
  (* delays are offsets from the send tick *)
  List.iter2
    (fun a b -> Alcotest.(check int) "verdict shifts with now" (a + 100) b)
    (judge k)
    (judge ~now:107 k);
  (* a retransmission is a fresh identity — otherwise a dropped packet
     would be condemned forever and loss could never heal *)
  let differs = ref false in
  for seq = 0 to 199 do
    if
      judge (Net.Chaos.Data { seq; attempt = 0 })
      <> judge (Net.Chaos.Data { seq; attempt = 1 })
    then differs := true
  done;
  Alcotest.(check bool) "attempts draw fresh fates" true !differs;
  (* the drop coin lands near its basis points over many identities *)
  let dropped = ref 0 in
  for seq = 0 to 999 do
    if judge (Net.Chaos.Ack { seq; attempt = 0 }) = [] then incr dropped
  done;
  Alcotest.(check bool)
    (Printf.sprintf "drop rate near 3000bp (got %d/1000)" !dropped)
    true
    (!dropped > 200 && !dropped < 400)

let test_chaos_sever_window () =
  let k = Net.Chaos.Beat { index = 4 } in
  let plan = { Net.Chaos.none with severs = [ (0, 1, 10, 20) ] } in
  let cut ~src ~dst now =
    (Net.Chaos.judge plan ~src ~dst ~kind:k ~now ()).Net.Chaos.release_at = []
  in
  Alcotest.(check bool) "inside the window" true (cut ~src:0 ~dst:1 15);
  Alcotest.(check bool) "window is inclusive" true
    (cut ~src:0 ~dst:1 10 && cut ~src:0 ~dst:1 20);
  Alcotest.(check bool) "after the window" false (cut ~src:0 ~dst:1 21);
  (* severs are directed: the reverse link stays up *)
  Alcotest.(check bool) "reverse direction up" false (cut ~src:1 ~dst:0 15)

(* ------------------------------------------------------------------ *)

let suite =
  [
    frame_roundtrip;
    frame_truncation_rejected;
    frame_trailing_rejected;
    Alcotest.test_case "frame: malformed shapes rejected" `Quick test_rejections;
    codec_ord_roundtrip;
    codec_last_roundtrip;
    codec_b_roundtrip;
    codec_rmsg_roundtrip;
    Alcotest.test_case "codec: malformed payloads rejected" `Quick
      test_codec_rejects;
    Alcotest.test_case "ckpt: save/load round-trip" `Quick test_ckpt_roundtrip;
    Alcotest.test_case "ckpt: truncated file falls back to previous rank"
      `Quick test_ckpt_truncated_falls_back;
    Alcotest.test_case "ckpt: corrupt generations degrade gracefully" `Quick
      test_ckpt_corrupt_falls_back;
    Alcotest.test_case "ckpt: torn rename leaves .prev as the live generation"
      `Quick test_ckpt_torn_rename_falls_back;
    Alcotest.test_case "ckpt: binary payload survives" `Quick
      test_ckpt_binary_payload;
    Alcotest.test_case "transport: address syntax" `Quick test_addr_parse;
    Alcotest.test_case "transport: loopback frames + stats" `Quick
      test_transport_loopback;
    Alcotest.test_case "transport: bounded connect retries exhaust" `Quick
      test_connect_retries_exhaust;
    Alcotest.test_case "transport: recv deadline fires" `Quick
      test_recv_timeout;
    Alcotest.test_case "codec: peer_msg round-trips, garbage rejected" `Quick
      test_peer_codec_roundtrip;
    Alcotest.test_case "codec: counter bag round-trips" `Quick
      test_counters_codec_roundtrip;
    Alcotest.test_case "mesh: loopback, organic loss, respawn rebind" `Quick
      test_mesh_loopback;
    Alcotest.test_case "chaos: verdicts are content-keyed and pure" `Quick
      test_chaos_content_keyed;
    Alcotest.test_case "chaos: severs are directed deterministic windows"
      `Quick test_chaos_sever_window;
  ]
