(* The real-process deployment substrate (lib/net): wire-frame codec laws
   (round-trip plus strict rejection of every malformed shape), payload
   codecs, crash-atomic on-disk checkpoints with torn-write fallback, and
   the socket transport's deadlines and bounded connect retries. *)

module Gen = QCheck2.Gen
module Net = Dhw_net
module F = Dhw_net.Frame
module W = Dhw_net.Wire
module Ck = Doall.Ckpt_script

let frame_t = Alcotest.testable F.pp F.equal

(* ------------------------------------------------------------------ *)
(* Frame codec: round-trip law and rejections *)

let gen_bytes = Gen.(string_size ~gen:char (0 -- 12))
let gen_small = Gen.(0 -- 1000)
let gen_wakeup = Gen.(option (0 -- 500))

let gen_envelope =
  Gen.map3
    (fun src sent_at payload -> { F.src; sent_at; payload })
    gen_small gen_small gen_bytes

let gen_send =
  Gen.map3 (fun dst payload show -> { F.dst; payload; show }) gen_small gen_bytes
    gen_bytes

let gen_frame =
  Gen.oneof
    [
      Gen.map
        (fun ((pid, protocol, n), (t, incarnation, wakeup)) ->
          F.Hello { pid; protocol; n; t; incarnation; wakeup })
        Gen.(
          pair
            (triple gen_small (string_size ~gen:printable (0 -- 8)) gen_small)
            (triple gen_small gen_small gen_wakeup));
      Gen.map (fun round -> F.Welcome { round }) gen_small;
      Gen.map2
        (fun round inbox -> F.Round_start { round; inbox })
        gen_small
        Gen.(list_size (0 -- 6) gen_envelope);
      Gen.map
        (fun ((round, sends, work), (terminate, wakeup, persists)) ->
          F.Step_result { round; sends; work; terminate; wakeup; persists })
        Gen.(
          pair
            (triple gen_small (list_size (0 -- 6) gen_send)
               (list_size (0 -- 6) gen_small))
            (triple bool gen_wakeup gen_small));
      Gen.map (fun tick -> F.Heartbeat { tick }) gen_small;
      Gen.pure F.Shutdown;
    ]

let pp_frame f = Format.asprintf "%a" F.pp f

let frame_roundtrip =
  Helpers.qcheck_case ~count:300 ~name:"frame: decode (encode f) = Ok f"
    gen_frame (fun f ->
      match F.decode (F.encode f) with
      | Ok f' when F.equal f f' -> true
      | Ok f' ->
          QCheck2.Test.fail_reportf "decoded %s from %s" (pp_frame f') (pp_frame f)
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s (%s)" e (pp_frame f))

let frame_truncation_rejected =
  Helpers.qcheck_case ~count:100
    ~name:"frame: every proper prefix is rejected" gen_frame (fun f ->
      let s = F.encode f in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        match F.decode (String.sub s 0 k) with
        | Error _ -> ()
        | Ok f' ->
            ok := false;
            ignore f'
      done;
      if not !ok then
        QCheck2.Test.fail_reportf "a prefix of %s decoded" (pp_frame f);
      !ok)

let frame_trailing_rejected =
  Helpers.qcheck_case ~count:100 ~name:"frame: trailing garbage is rejected"
    gen_frame (fun f ->
      match F.decode (F.encode f ^ "\x00") with
      | Error _ -> true
      | Ok _ -> QCheck2.Test.fail_reportf "trailing byte accepted (%s)" (pp_frame f))

let expect_error name s =
  match F.decode s with
  | Error _ -> ()
  | Ok f -> Alcotest.failf "%s: accepted %s" name (pp_frame f)

let hello =
  F.Hello { pid = 1; protocol = "a+rec"; n = 12; t = 3; incarnation = 0; wakeup = Some 0 }

(* encode layout: [0..3] length, [4] tag, then (hello only) [5..8] magic,
   [9] version. *)
let mutate s i c =
  let b = Bytes.of_string s in
  Bytes.set b i c;
  Bytes.to_string b

let test_rejections () =
  let b = Buffer.create 8 in
  W.put_u32 b (F.max_frame_len + 1);
  expect_error "oversized length prefix" (Buffer.contents b);
  let h = F.encode hello in
  expect_error "wrong hello version" (mutate h 9 '\xee');
  expect_error "bad hello magic" (mutate h 5 'X');
  expect_error "unknown tag" (mutate h 4 '\x7f');
  (match F.decode (mutate h 9 '\x02') with
  | Error e ->
      let mentions_version =
        let needle = "version" in
        let nl = String.length needle and el = String.length e in
        let rec scan i = i + nl <= el && (String.sub e i nl = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "version error names the mismatch" true mentions_version
  | Ok _ -> Alcotest.fail "future version accepted");
  (* a frame body shorter than its length prefix *)
  expect_error "short body" (String.sub h 0 (String.length h - 2))

(* ------------------------------------------------------------------ *)
(* Payload codecs *)

let gen_ord =
  Gen.oneof
    [
      Gen.map (fun c -> Ck.Partial c) gen_small;
      Gen.map2 (fun c g -> Ck.Full (c, g)) gen_small gen_small;
    ]

let gen_last =
  Gen.oneof
    [
      Gen.pure Ck.No_msg;
      Gen.map2 (fun ord src -> Ck.Last_ord { ord; src }) gen_ord gen_small;
    ]

let codec_ord_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"codec: ord round-trips" gen_ord
    (fun o -> Net.Codec.decode_ord (Net.Codec.encode_ord o) = o)

let codec_last_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"codec: last round-trips" gen_last
    (fun l -> Net.Codec.decode_last (Net.Codec.encode_last l) = l)

let gen_bmsg =
  Gen.oneof
    [
      Gen.map (fun o -> Doall.Protocol_b.Ord o) gen_ord;
      Gen.pure Doall.Protocol_b.Go_ahead;
    ]

let codec_b_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"codec: protocol-B msg round-trips"
    gen_bmsg (fun m -> Net.Codec.decode_b (Net.Codec.encode_b m) = m)

let gen_rmsg =
  Gen.oneof
    [
      Gen.map (fun o -> Doall.Recovery.Payload o) gen_ord;
      Gen.pure Doall.Recovery.Announce;
      Gen.map (fun l -> Doall.Recovery.Transfer l) gen_last;
    ]

let codec_rmsg_roundtrip =
  Helpers.qcheck_case ~count:200 ~name:"codec: recovery rmsg round-trips"
    gen_rmsg (fun m ->
      Net.Codec.decode_rmsg Net.Codec.decode_ord
        (Net.Codec.encode_rmsg Net.Codec.encode_ord m)
      = m)

let test_codec_rejects () =
  (try
     ignore (Net.Codec.decode_ord "");
     Alcotest.fail "empty ord accepted"
   with W.Decode _ -> ());
  (try
     ignore (Net.Codec.decode_ord (Net.Codec.encode_ord (Ck.Partial 3) ^ "\x00"));
     Alcotest.fail "trailing ord byte accepted"
   with W.Decode _ -> ());
  try
    ignore (Net.Codec.decode_last "\x07");
    Alcotest.fail "unknown last tag accepted"
  with W.Decode _ -> ()

(* ------------------------------------------------------------------ *)
(* Crash-atomic checkpoints *)

let tmpdir () =
  let d = Filename.temp_file "dhwnet" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_tmpdir f =
  let d = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let truncate_file p keep =
  let fd = Unix.openfile p [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd keep;
  Unix.close fd

let flip_byte p i =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  let oc = open_out_bin p in
  output_bytes oc b;
  close_out oc

let test_ckpt_roundtrip () =
  with_tmpdir (fun dir ->
      Alcotest.(check (option string)) "empty dir" None (Net.Ckpt.load ~dir ~pid:0);
      Net.Ckpt.save ~dir ~pid:0 "view-1";
      Alcotest.(check (option string)) "first save" (Some "view-1")
        (Net.Ckpt.load ~dir ~pid:0);
      Net.Ckpt.save ~dir ~pid:0 "view-2";
      Alcotest.(check (option string)) "overwrite" (Some "view-2")
        (Net.Ckpt.load ~dir ~pid:0);
      (* per-pid isolation: pid 1 sees nothing, and pid 0's file refuses to
         masquerade as pid 1's *)
      Alcotest.(check (option string)) "other pid" None (Net.Ckpt.load ~dir ~pid:1))

let test_ckpt_truncated_falls_back () =
  with_tmpdir (fun dir ->
      Net.Ckpt.save ~dir ~pid:3 "rank-1";
      Net.Ckpt.save ~dir ~pid:3 "rank-2";
      (* a torn write of the current generation must recover the previous
         rank, not crash and not return garbage *)
      truncate_file (Net.Ckpt.path ~dir ~pid:3) 7;
      Alcotest.(check (option string)) "truncated current -> previous rank"
        (Some "rank-1") (Net.Ckpt.load ~dir ~pid:3))

let test_ckpt_corrupt_falls_back () =
  with_tmpdir (fun dir ->
      Net.Ckpt.save ~dir ~pid:0 "rank-1";
      Net.Ckpt.save ~dir ~pid:0 "rank-2";
      let p = Net.Ckpt.path ~dir ~pid:0 in
      flip_byte p (String.length "DHWC" + 12);
      Alcotest.(check (option string)) "bit-flipped current -> previous rank"
        (Some "rank-1") (Net.Ckpt.load ~dir ~pid:0);
      (* both generations gone bad: recovery starts from nothing *)
      truncate_file p 3;
      flip_byte (p ^ ".prev") 6;
      Alcotest.(check (option string)) "both bad -> none" None
        (Net.Ckpt.load ~dir ~pid:0))

let test_ckpt_binary_payload () =
  with_tmpdir (fun dir ->
      let payload =
        Net.Codec.encode_last (Ck.Last_ord { ord = Ck.Full (2, 1); src = 7 })
      in
      Net.Ckpt.save ~dir ~pid:2 payload;
      match Net.Ckpt.load ~dir ~pid:2 with
      | Some raw ->
          Alcotest.(check bool) "decodes back" true
            (Net.Codec.decode_last raw = Ck.Last_ord { ord = Ck.Full (2, 1); src = 7 })
      | None -> Alcotest.fail "binary payload lost")

(* ------------------------------------------------------------------ *)
(* Transport *)

let test_addr_parse () =
  let ok s a =
    match Net.Transport.addr_of_string s with
    | Ok a' ->
        Alcotest.(check string) s (Net.Transport.addr_to_string a)
          (Net.Transport.addr_to_string a')
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  ok "unix:/tmp/x.sock" (Net.Transport.Unix_sock "/tmp/x.sock");
  ok "tcp:127.0.0.1:8080" (Net.Transport.Tcp ("127.0.0.1", 8080));
  ok "tcp:localhost:0" (Net.Transport.Tcp ("localhost", 0));
  List.iter
    (fun s ->
      match Net.Transport.addr_of_string s with
      | Ok _ -> Alcotest.failf "%s accepted" s
      | Error _ -> ())
    [ "bogus"; "unix:"; "tcp:host"; "tcp::80"; "tcp:h:notaport"; "tcp:h:70000" ]

let test_transport_loopback () =
  with_tmpdir (fun dir ->
      let addr = Net.Transport.Unix_sock (Filename.concat dir "s.sock") in
      let stats = Net.Transport.stats () in
      let srv = Net.Transport.listen addr in
      let client = Net.Transport.connect ~stats addr in
      let peer = Net.Transport.accept ~stats srv in
      Net.Transport.send_frame ~stats client (F.Heartbeat { tick = 42 });
      Alcotest.(check frame_t) "server receives" (F.Heartbeat { tick = 42 })
        (Net.Transport.recv_frame ~stats peer);
      Net.Transport.send_frame ~stats peer hello;
      Alcotest.(check frame_t) "client receives" hello
        (Net.Transport.recv_frame ~stats client);
      Alcotest.(check int) "two connects (dial + accept)" 2
        stats.Net.Transport.connects;
      Alcotest.(check int) "two frames sent" 2 stats.Net.Transport.frames_sent;
      Alcotest.(check int) "two frames received" 2
        stats.Net.Transport.frames_received;
      Alcotest.(check bool) "bytes counted" true
        (stats.Net.Transport.bytes_sent > 0
        && stats.Net.Transport.bytes_sent = stats.Net.Transport.bytes_received);
      (* peer closes: the reader sees Closed, not a hang *)
      Net.Transport.close_noerr client;
      (match Net.Transport.recv_frame ~stats peer with
      | exception Net.Transport.Closed _ -> ()
      | f -> Alcotest.failf "read %s after close" (pp_frame f));
      Net.Transport.close_noerr peer;
      Net.Transport.close_noerr srv)

let test_connect_retries_exhaust () =
  with_tmpdir (fun dir ->
      let addr = Net.Transport.Unix_sock (Filename.concat dir "absent.sock") in
      let stats = Net.Transport.stats () in
      match
        Net.Transport.connect ~stats ~attempts:3 ~backoff_s:0.001
          ~max_backoff_s:0.002 addr
      with
      | _ -> Alcotest.fail "connect to nothing succeeded"
      | exception Unix.Unix_error _ ->
          Alcotest.(check int) "attempts-1 retries" 2 stats.Net.Transport.retries;
          Alcotest.(check int) "no connect counted" 0 stats.Net.Transport.connects)

let test_recv_timeout () =
  with_tmpdir (fun dir ->
      let addr = Net.Transport.Unix_sock (Filename.concat dir "s.sock") in
      let stats = Net.Transport.stats () in
      let srv = Net.Transport.listen addr in
      let client = Net.Transport.connect ~stats addr in
      let peer = Net.Transport.accept ~stats srv in
      (match Net.Transport.recv_frame ~stats ~timeout_s:0.05 peer with
      | exception Net.Transport.Timeout _ ->
          Alcotest.(check int) "timeout counted" 1 stats.Net.Transport.timeouts
      | f -> Alcotest.failf "read %s from silence" (pp_frame f));
      Net.Transport.close_noerr client;
      Net.Transport.close_noerr peer;
      Net.Transport.close_noerr srv)

(* ------------------------------------------------------------------ *)

let suite =
  [
    frame_roundtrip;
    frame_truncation_rejected;
    frame_trailing_rejected;
    Alcotest.test_case "frame: malformed shapes rejected" `Quick test_rejections;
    codec_ord_roundtrip;
    codec_last_roundtrip;
    codec_b_roundtrip;
    codec_rmsg_roundtrip;
    Alcotest.test_case "codec: malformed payloads rejected" `Quick
      test_codec_rejects;
    Alcotest.test_case "ckpt: save/load round-trip" `Quick test_ckpt_roundtrip;
    Alcotest.test_case "ckpt: truncated file falls back to previous rank"
      `Quick test_ckpt_truncated_falls_back;
    Alcotest.test_case "ckpt: corrupt generations degrade gracefully" `Quick
      test_ckpt_corrupt_falls_back;
    Alcotest.test_case "ckpt: binary payload survives" `Quick
      test_ckpt_binary_payload;
    Alcotest.test_case "transport: address syntax" `Quick test_addr_parse;
    Alcotest.test_case "transport: loopback frames + stats" `Quick
      test_transport_loopback;
    Alcotest.test_case "transport: bounded connect retries exhaust" `Quick
      test_connect_retries_exhaust;
    Alcotest.test_case "transport: recv deadline fires" `Quick
      test_recv_timeout;
  ]
