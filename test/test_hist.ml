(* Laws of the log-bucketed histogram (Dhw_util.Hist): exact-rank
   quantiles stay within one bucket of the exact order statistic, and
   merging two histograms is indistinguishable from one histogram of the
   concatenated samples. *)

module Hist = Dhw_util.Hist
module J = Dhw_util.Jsonw
module Gen = QCheck2.Gen

let of_samples xs =
  let h = Hist.create () in
  List.iter (Hist.record h) xs;
  h

(* Exact order statistic at the same rank definition the histogram uses:
   rank = clamp(ceil(q * count), 1, count), 1-indexed into sorted order. *)
let exact_quantile xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank =
    let r = int_of_float (ceil (q *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r
  in
  a.(rank - 1)

(* Samples spanning the unit buckets, the log buckets, and large values. *)
let gen_samples =
  let open Gen in
  let value =
    oneof [ 0 -- 31; 32 -- 4096; map (fun v -> v * 977) (0 -- 1_000_000) ]
  in
  list_size (1 -- 200) value

let gen_q = Gen.float_range 0.001 1.0

(* quantile >= exact, overshooting by at most the width of exact's bucket
   (2^(e-5) <= exact/32 for exact >= 32; unit buckets are exact). *)
let test_quantile_within_bucket =
  Helpers.qcheck_case ~count:300 ~name:"quantile within one bucket of exact"
    (Gen.pair gen_samples gen_q)
    (fun (xs, q) ->
      let h = of_samples xs in
      let qv = Hist.quantile h q in
      let exact = exact_quantile xs q in
      if not (exact <= qv && qv - exact <= max 0 (exact asr 5)) then
        QCheck2.Test.fail_reportf "q=%.4f: hist=%d exact=%d (n=%d)" q qv
          exact (List.length xs);
      true)

let test_merge_is_concat =
  Helpers.qcheck_case ~count:200 ~name:"merge == histogram of concat"
    (Gen.pair gen_samples gen_samples)
    (fun (xs, ys) ->
      let m = Hist.merge (of_samples xs) (of_samples ys) in
      let c = of_samples (xs @ ys) in
      (* to_json covers count/min/max/mean and four quantiles; probe more
         quantile points on top so bucket-level drift cannot hide. *)
      let probe h =
        List.map (Hist.quantile h) [ 0.01; 0.25; 0.5; 0.75; 0.9; 0.999 ]
      in
      if not (Hist.to_json m = Hist.to_json c && probe m = probe c) then
        QCheck2.Test.fail_reportf "merge diverges: %s vs %s"
          (J.to_string (Hist.to_json m))
          (J.to_string (Hist.to_json c));
      true)

let test_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check int) "quantile" 0 (Hist.quantile h 0.5);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 0 (Hist.max_value h)

let test_negative_clamped () =
  let h = Hist.create () in
  Hist.record h (-7);
  Hist.record h 3;
  Alcotest.(check int) "min clamped to 0" 0 (Hist.min_value h);
  Alcotest.(check int) "count" 2 (Hist.count h);
  Alcotest.(check int) "total" 3 (Hist.total h)

let test_record_n () =
  let h = Hist.create () in
  Hist.record_n h 10 5;
  Hist.record_n h 20 0 (* k <= 0 ignored *);
  Alcotest.(check int) "count" 5 (Hist.count h);
  Alcotest.(check int) "total" 50 (Hist.total h);
  Alcotest.(check int) "p50 exact in unit range" 10 (Hist.quantile h 0.5)

let test_clear () =
  let h = Hist.create () in
  Hist.record h 99;
  Hist.clear h;
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check int) "quantile" 0 (Hist.quantile h 0.9)

let suite =
  [
    test_quantile_within_bucket;
    test_merge_is_concat;
    Alcotest.test_case "empty histogram" `Quick test_empty;
    Alcotest.test_case "negative values clamp to 0" `Quick
      test_negative_clamped;
    Alcotest.test_case "record_n weights" `Quick test_record_n;
    Alcotest.test_case "clear resets" `Quick test_clear;
  ]
