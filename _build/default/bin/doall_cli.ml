(* Command-line front-end: run any protocol of the paper on any instance
   under a configurable fault schedule and print the cost measures.

     dune exec bin/doall_cli.exe -- run -p A -n 100 -t 16 --crash 0@5 --trace 40
     dune exec bin/doall_cli.exe -- run -p D -n 1000 -t 32 --random 31 --window 40
     dune exec bin/doall_cli.exe -- ba -n 64 -t 8 --value 7 --protocol C
     dune exec bin/doall_cli.exe -- async -n 100 -t 16 --crash 3@9 *)

open Cmdliner
module D = Doall

let protocol_of_name name =
  match String.lowercase_ascii name with
  | "a" -> Ok D.Protocol_a.protocol
  | "b" -> Ok D.Protocol_b.protocol
  | "c" -> Ok D.Protocol_c.protocol
  | "c-chunked" | "cchunked" -> Ok D.Protocol_c.protocol_chunked
  | "c-naive" | "cnaive" -> Ok D.Protocol_c_naive.protocol
  | "d" -> Ok D.Protocol_d.protocol
  | "d-coord" | "dcoord" -> Ok D.Protocol_d_coord.protocol
  | "trivial" -> Ok D.Baseline_trivial.protocol
  | s when String.length s > 11 && String.sub s 0 11 = "checkpoint:" ->
      (try Ok (D.Baseline_checkpoint.protocol ~period:(int_of_string (String.sub s 11 (String.length s - 11))))
       with _ -> Error (`Msg "checkpoint:<period> needs an integer period"))
  | "checkpoint" -> Ok (D.Baseline_checkpoint.protocol ~period:1)
  | _ -> Error (`Msg ("unknown protocol: " ^ name ^ " (A, B, C, C-chunked, C-naive, D, D-coord, trivial, checkpoint[:k])"))

let crash_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ p; r ] -> (
        try Ok (int_of_string p, int_of_string r)
        with _ -> Error (`Msg "expected pid@round"))
    | _ -> Error (`Msg "expected pid@round")
  in
  let print ppf (p, r) = Format.fprintf ppf "%d@%d" p r in
  Arg.conv (parse, print)

let n_arg = Arg.(value & opt int 100 & info [ "n"; "units" ] ~doc:"Units of work.")
let t_arg = Arg.(value & opt int 16 & info [ "t"; "processes" ] ~doc:"Processes.")

let crashes_arg =
  Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~docv:"PID@ROUND"
       ~doc:"Silently crash $(i,PID) at $(i,ROUND) (repeatable).")

let random_arg =
  Arg.(value & opt (some int) None & info [ "random" ] ~docv:"VICTIMS"
       ~doc:"Crash $(i,VICTIMS) random processes at random rounds.")

let window_arg =
  Arg.(value & opt int 200 & info [ "window" ] ~doc:"Random crash-round window.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Adversary seed.")

let adversary_arg =
  Arg.(value & opt (some int) None & info [ "kill-active-every" ] ~docv:"UNITS"
       ~doc:"Crash whichever process is working after every $(i,UNITS) units (keeps the work, drops the messages).")

let trace_arg =
  Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N"
       ~doc:"Print the first $(i,N) trace events.")

let build_fault ~t ~crashes ~random ~window ~seed ~adversary =
  match (crashes, random, adversary) with
  | [], None, None -> Simkit.Fault.none
  | cs, None, None -> Simkit.Fault.crash_silently_at cs
  | [], Some v, None ->
      Simkit.Fault.random ~seed:(Int64.of_int seed) ~t ~victims:v ~window
  | [], None, Some k ->
      Simkit.Fault.crash_active_after_work ~units_between_crashes:k ~max_crashes:(t - 1)
  | _ -> failwith "combine at most one of --crash/--random/--kill-active-every"

let run_cmd =
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ] ~doc:"Protocol (A, B, C, C-chunked, C-naive, D, trivial, checkpoint[:k]).")
  in
  let run proto n t crashes random window seed adversary trace_n =
    match protocol_of_name proto with
    | Error (`Msg m) -> prerr_endline m; exit 2
    | Ok p ->
        let spec = D.Spec.make ~n ~t in
        let fault = build_fault ~t ~crashes ~random ~window ~seed ~adversary in
        let trace = Option.map (fun _ -> Simkit.Trace.create ()) trace_n in
        let report = D.Runner.run ~fault ?trace spec p in
        Format.printf "%a@." D.Runner.pp report;
        Format.printf "verdict: %s@."
          (if D.Runner.correct report then "CORRECT" else "INCORRECT");
        (match (trace, trace_n) with
        | Some tr, Some limit -> Simkit.Trace.pp ~limit Format.std_formatter tr
        | _ -> ());
        if not (D.Runner.correct report) then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a Do-All protocol under a fault schedule")
    Term.(
      const run $ proto_arg $ n_arg $ t_arg $ crashes_arg $ random_arg
      $ window_arg $ seed_arg $ adversary_arg $ trace_arg)

let ba_cmd =
  let value_arg = Arg.(value & opt int 1 & info [ "value" ] ~doc:"General's value.") in
  let tb_arg = Arg.(value & opt int 8 & info [ "t" ] ~doc:"Failure bound (senders = t+1).") in
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ] ~doc:"Sender protocol (A, B, C, C-chunked).")
  in
  let cut_arg =
    Arg.(value & opt (some int) None & info [ "general-cut" ] ~docv:"K"
         ~doc:"General crashes mid-broadcast after informing $(i,K) senders.")
  in
  let run n t_bound value proto crashes cut =
    let wp =
      match String.lowercase_ascii proto with
      | "a" -> Agreement.Crash_ba.A
      | "b" -> Agreement.Crash_ba.B
      | "c" -> Agreement.Crash_ba.C
      | "c-chunked" | "cchunked" -> Agreement.Crash_ba.C_chunked
      | other -> prerr_endline ("unknown sender protocol: " ^ other); exit 2
    in
    let o = Agreement.Crash_ba.run ~n ~t_bound ~value ~crash_at:crashes ?general_cut:cut wp in
    Format.printf
      "agreement=%b validity=%b messages=%d (work-protocol %d) rounds=%d sender-work=%d@."
      o.agreement o.validity o.messages o.work_messages o.rounds o.sender_work;
    if not (o.agreement && o.validity) then exit 1
  in
  Cmd.v
    (Cmd.info "ba" ~doc:"Byzantine agreement (crash model) via a work protocol (Section 5)")
    Term.(const run $ n_arg $ tb_arg $ value_arg $ proto_arg $ crashes_arg $ cut_arg)

let async_cmd =
  let delay_arg = Arg.(value & opt int 5 & info [ "max-delay" ] ~doc:"Max message delay.") in
  let lag_arg = Arg.(value & opt int 8 & info [ "max-lag" ] ~doc:"Max failure-detector lag.") in
  let run n t crashes seed max_delay max_lag =
    let spec = D.Spec.make ~n ~t in
    let r =
      Asim.Async_protocol_a.run ~crash_at:crashes ~max_delay ~max_lag
        ~seed:(Int64.of_int seed) spec
    in
    Format.printf "%a completed=%b@." Simkit.Metrics.pp_summary r.metrics r.completed;
    let ok = r.completed && Simkit.Metrics.all_units_done r.metrics in
    Format.printf "verdict: %s@." (if ok then "CORRECT" else "INCORRECT");
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "async" ~doc:"Asynchronous Protocol A with a failure detector (Section 2.1)")
    Term.(const run $ n_arg $ t_arg $ crashes_arg $ seed_arg $ delay_arg $ lag_arg)

let shmem_cmd =
  let algo_arg =
    Arg.(value & opt string "checkpointed" & info [ "a"; "algorithm" ]
         ~doc:"Shared-memory algorithm (checkpointed, parallel-scan).")
  in
  let run n t algo crashes =
    let go =
      match String.lowercase_ascii algo with
      | "checkpointed" | "seq" -> Shmem.Writeall.checkpointed ~crash_at:crashes
      | "parallel-scan" | "scan" -> Shmem.Writeall.parallel_scan ~crash_at:crashes
      | other -> prerr_endline ("unknown algorithm: " ^ other); exit 2
    in
    let o = go ~n ~t () in
    Format.printf
      "work=%d reads=%d writes=%d effort=%d rounds=%d aps=%d all-done=%b@."
      (Simkit.Metrics.work o.result.metrics)
      o.result.reads o.result.writes o.effort
      (Simkit.Metrics.rounds o.result.metrics)
      o.result.aps
      (Shmem.Writeall.work_complete o);
    if not (Shmem.Writeall.work_complete o) then exit 1
  in
  Cmd.v
    (Cmd.info "shmem" ~doc:"Shared-memory Write-All (Section 1.1 comparison)")
    Term.(const run $ n_arg $ t_arg $ algo_arg $ crashes_arg)

let bootstrap_cmd =
  let proto_arg =
    Arg.(value & opt string "A" & info [ "p"; "protocol" ] ~doc:"Work protocol (A, B, C, C-chunked).")
  in
  let run n t proto crashes =
    let wp =
      match String.lowercase_ascii proto with
      | "a" -> Agreement.Crash_ba.A
      | "b" -> Agreement.Crash_ba.B
      | "c" -> Agreement.Crash_ba.C
      | "c-chunked" | "cchunked" -> Agreement.Crash_ba.C_chunked
      | other -> prerr_endline ("unknown protocol: " ^ other); exit 2
    in
    let o = Agreement.Bootstrap.run ~n ~t ~crash_at:crashes wp in
    Format.printf
      "ok=%b  stage1: msgs=%d rounds=%d  stage2: %a  totals: msgs=%d work=%d rounds=%d@."
      o.ok o.ba.messages o.ba.rounds Doall.Runner.pp o.work o.total_messages
      o.total_work o.total_rounds;
    if not o.ok then exit 1
  in
  Cmd.v
    (Cmd.info "bootstrap"
       ~doc:"Section 1 bootstrap: agree on the pool, then perform it")
    Term.(const run $ n_arg $ t_arg $ proto_arg $ crashes_arg)

let () =
  let doc = "Do-All protocols of Dwork, Halpern and Waarts (PODC 1992)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "doall_cli" ~doc)
          [ run_cmd; ba_cmd; async_cmd; shmem_cmd; bootstrap_cmd ]))
