(* Benchmark harness: regenerates every evaluation claim of the paper
   (experiments E1-E10, DESIGN.md section 3) and times representative runs
   with Bechamel.

     dune exec bench/main.exe            # all tables + timings
     dune exec bench/main.exe -- tables  # logical-cost tables only
     dune exec bench/main.exe -- timing  # Bechamel only *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match what with
  | "tables" -> Bench_tables.all ()
  | "timing" -> Bench_timing.run ()
  | _ ->
      Bench_tables.all ();
      Bench_timing.run ());
  print_newline ()
