bench/main.ml: Array Bench_tables Bench_timing Sys
