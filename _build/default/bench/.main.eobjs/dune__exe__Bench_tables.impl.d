bench/bench_tables.ml: Agreement Array Asim Dhw_util Doall List Printf Shmem Simkit
