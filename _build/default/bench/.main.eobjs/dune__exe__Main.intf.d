bench/main.mli:
