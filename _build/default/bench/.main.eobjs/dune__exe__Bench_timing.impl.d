bench/bench_timing.ml: Agreement Analyze Asim Bechamel Benchmark Dhw_util Doall Hashtbl Instance List Measure Printf Simkit Staged Test Time Toolkit
