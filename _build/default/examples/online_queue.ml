(* The "more realistic scenario" of Sections 1 and 4 (the IBM patent): jobs
   keep arriving at individual sites and are not common knowledge; the sites
   run Protocol D's work/agreement loop perpetually, spreading fresh arrivals
   at every agreement phase, with heartbeat phases when the queue is empty.

     dune exec examples/online_queue.exe *)

let () =
  let t = 8 in
  (* three bursts of jobs, landing at different sites, with a long lull *)
  let arrivals =
    List.init 16 (fun u -> (0, u, u mod t))
    @ List.init 16 (fun u -> (30, 16 + u, (u + 3) mod t))
    @ List.init 8 (fun u -> (200, 32 + u, 2))
  in
  let n = 40 in
  let cfg = { Doall.Protocol_d_online.arrivals; horizon = 220; idle_block = 6 } in
  let spec = Doall.Spec.make ~n ~t in

  let report = Doall.Runner.run spec (Doall.Protocol_d_online.protocol cfg) in
  Format.printf "no failures : %a@." Doall.Runner.pp report;

  (* sites 1 and 4 go down mid-stream — after sharing their queued jobs *)
  let fault = Simkit.Fault.crash_silently_at [ (1, 45); (4, 210) ] in
  let report = Doall.Runner.run ~fault spec (Doall.Protocol_d_online.protocol cfg) in
  Format.printf "two outages : %a@." Doall.Runner.pp report;
  Format.printf
    "every job that reached a surviving site was executed: %b@."
    (Doall.Runner.work_complete report);

  (* the same stream when the burst-2 receivers die holding unshared jobs *)
  let fault = Simkit.Fault.crash_silently_at [ (2, 199) ] in
  let report = Doall.Runner.run ~fault spec (Doall.Protocol_d_online.protocol cfg) in
  let m = report.Doall.Runner.metrics in
  Format.printf
    "site 2 dies just before its burst: %d/%d jobs done (its 8 jobs are lost,\n\
     like any mail to a dead inbox)@."
    (Simkit.Metrics.units_covered m) n
