(* Section 5: Byzantine agreement (crash model) from a work protocol. The
   general tries to tell everyone the launch code; informing process i is
   work unit i, carried out by the t+1 senders running Protocol A or C.

   The nasty case exercised here: the general crashes in the middle of its
   stage-1 broadcast, so only some senders ever saw the code — yet all
   correct processes must still decide the same value.

     dune exec examples/byzantine_broadcast.exe *)

let describe name (o : Agreement.Crash_ba.outcome) =
  let votes = Hashtbl.create 4 in
  Array.iteri
    (fun pid v ->
      if o.correct.(pid) then
        Hashtbl.replace votes v (1 + Option.value ~default:0 (Hashtbl.find_opt votes v)))
    o.decisions;
  let dist =
    Hashtbl.fold (fun v c acc -> Printf.sprintf "%d x value %d; %s" c v acc) votes ""
  in
  Format.printf
    "%-28s agreement=%b validity=%b msgs=%4d  decisions: %s@." name o.agreement
    o.validity o.messages dist

let () =
  let n = 64 and t_bound = 8 and code = 42 in
  describe "A, general correct"
    (Agreement.Crash_ba.run ~n ~t_bound ~value:code Agreement.Crash_ba.A);
  describe "A, general dies mid-bcast"
    (Agreement.Crash_ba.run ~n ~t_bound ~value:code ~general_cut:3
       Agreement.Crash_ba.A);
  describe "A, cascade of sender deaths"
    (Agreement.Crash_ba.run ~n ~t_bound ~value:code ~general_cut:5
       ~crash_at:[ (1, 40); (2, 90); (3, 300); (4, 700) ]
       Agreement.Crash_ba.A);
  describe "C, general dies mid-bcast"
    (Agreement.Crash_ba.run ~n:40 ~t_bound:5 ~value:code ~general_cut:2
       Agreement.Crash_ba.C);
  Format.printf
    "@.Message budgets at n=%d, t=%d:  Bracha bound n+t*sqrt(t) = %d;@." n t_bound
    (Agreement.Crash_ba.bracha_msgs ~n ~t:t_bound);
  Format.printf
    "ours via A matches it constructively, via C it drops to O(n + t log t).@."
