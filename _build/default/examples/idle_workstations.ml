(* Section 1's second motivating scenario: a batch of jobs distributed over
   idle workstations on a LAN. A "failure" is a user reclaiming her machine —
   frequent, unpredictable, and benign, but the batch must still finish.

   Protocol D is built for this regime: parallel work phases interleaved with
   agreement phases, taking n/t + 2 rounds when nobody reclaims and degrading
   gracefully as reclamations mount (Theorem 4.1: (f+1)n/t + 4f + 2 rounds).

     dune exec examples/idle_workstations.exe *)

let () =
  let n_jobs = 960 and n_stations = 24 in
  let spec = Doall.Spec.make ~n:n_jobs ~t:n_stations in
  let table =
    Dhw_util.Table.create
      ~title:
        (Printf.sprintf
           "Overnight batch: %d jobs on %d workstations (Protocol D)" n_jobs
           n_stations)
      [ ("reclaimed", Dhw_util.Table.Right); ("rounds", Right);
        ("bound (f+1)n/t+4f+2", Right); ("jobs run (w/ redo)", Right);
        ("messages", Right); ("batch done?", Left) ]
  in
  List.iter
    (fun f ->
      (* f users reclaim their machines at scattered times *)
      let fault =
        if f = 0 then Simkit.Fault.none
        else
          Simkit.Fault.random ~seed:(Int64.of_int (100 + f)) ~t:n_stations
            ~victims:f ~window:(n_jobs / n_stations * 3)
      in
      let r = Doall.Runner.run ~fault spec Doall.Protocol_d.protocol in
      let m = r.Doall.Runner.metrics in
      let f_actual = Doall.Runner.crashed r in
      Dhw_util.Table.add_row table
        [
          string_of_int f_actual;
          Dhw_util.Table.fmt_int (Simkit.Metrics.rounds m);
          Dhw_util.Table.fmt_int (Doall.Bounds.d_rounds spec ~f:f_actual);
          Dhw_util.Table.fmt_int (Simkit.Metrics.work m);
          Dhw_util.Table.fmt_int (Simkit.Metrics.messages m);
          (if Doall.Runner.work_complete r then "yes" else "NO");
        ])
    [ 0; 1; 2; 4; 8; 16; 23 ];
  Dhw_util.Table.print table;
  print_endline
    "Rounds grow roughly linearly with the number of reclaimed machines, as\n\
     Theorem 4.1 promises; jobs re-run only when their machine vanished before\n\
     the next agreement phase."
