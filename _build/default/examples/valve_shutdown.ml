(* The paper's opening scenario: before fuel is added to the reactor, every
   one of 400 valves must be verified closed. Verifying a valve is idempotent
   work; the 25 controller processes may crash at any moment, and the
   verification must complete as long as a single controller survives.

   This example contrasts the two strawmen of Section 1 with the paper's
   protocols under an aggressive crash schedule (controllers failing every
   20 verifications), printing the effort = work + messages for each.

     dune exec examples/valve_shutdown.exe *)

let () =
  let n_valves = 400 and n_controllers = 25 in
  let spec = Doall.Spec.make ~n:n_valves ~t:n_controllers in
  let protocols =
    [
      Doall.Baseline_trivial.protocol;
      Doall.Baseline_checkpoint.protocol ~period:1;
      Doall.Protocol_a.protocol;
      Doall.Protocol_b.protocol;
      Doall.Protocol_d.protocol;
    ]
  in
  let table =
    Dhw_util.Table.create ~title:"Valve verification: 400 valves, 25 controllers, 24 crashes"
      [ ("protocol", Dhw_util.Table.Left); ("verifications", Right); ("messages", Right);
        ("effort", Right); ("rounds", Right); ("all closed?", Left) ]
  in
  List.iter
    (fun p ->
      let fault =
        Simkit.Fault.crash_active_after_work ~units_between_crashes:20
          ~max_crashes:(n_controllers - 1)
      in
      let r = Doall.Runner.run ~fault spec p in
      let m = r.Doall.Runner.metrics in
      Dhw_util.Table.add_row table
        [
          r.protocol;
          Dhw_util.Table.fmt_int (Simkit.Metrics.work m);
          Dhw_util.Table.fmt_int (Simkit.Metrics.messages m);
          Dhw_util.Table.fmt_int (Simkit.Metrics.effort m);
          Dhw_util.Table.fmt_int (Simkit.Metrics.rounds m);
          (if Doall.Runner.work_complete r then "yes" else "NO");
        ])
    protocols;
  Dhw_util.Table.print table;
  print_endline
    "Note how the baselines pay ~t*n effort where A and B stay near n + t^1.5,\n\
     and how D finishes orders of magnitude sooner by working in parallel."
