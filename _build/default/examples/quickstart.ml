(* Quickstart: 100 units of idempotent work, 16 crash-prone processes.
   Run Protocol B, first failure-free, then with the active process crashing
   every 12 units of work, and print the three cost measures.

     dune exec examples/quickstart.exe *)

let () =
  let spec = Doall.Spec.make ~n:100 ~t:16 in

  (* Failure-free. *)
  let report = Doall.Runner.run spec Doall.Protocol_b.protocol in
  Format.printf "failure-free : %a@." Doall.Runner.pp report;

  (* An adversary that crashes whichever process is doing the work, right
     after every 12th unit — the work is kept, the announcement is lost. *)
  let fault =
    Simkit.Fault.crash_active_after_work ~units_between_crashes:12 ~max_crashes:15
  in
  let report = Doall.Runner.run ~fault spec Doall.Protocol_b.protocol in
  Format.printf "under attack : %a@." Doall.Runner.pp report;
  Format.printf "all %d units done with %d survivors: %b@."
    (Doall.Spec.n spec)
    (Doall.Runner.survivors report)
    (Doall.Runner.work_complete report);

  (* A peek at the first rounds of the execution. *)
  let trace = Simkit.Trace.create () in
  let small = Doall.Spec.make ~n:6 ~t:4 in
  let fault = Simkit.Fault.crash_silently_at [ (0, 3) ] in
  ignore (Doall.Runner.run ~fault ~trace small Doall.Protocol_b.protocol);
  Format.printf "@.--- n=6 t=4, process 0 dies at round 3 ---@.%a"
    (Simkit.Trace.pp ~limit:25) trace
