examples/async_failover.mli:
