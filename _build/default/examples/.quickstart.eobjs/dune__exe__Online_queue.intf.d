examples/online_queue.mli:
