examples/quickstart.mli:
