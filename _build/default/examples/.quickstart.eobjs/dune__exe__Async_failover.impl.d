examples/async_failover.ml: Asim Doall Format List Simkit
