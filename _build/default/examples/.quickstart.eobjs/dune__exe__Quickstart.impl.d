examples/quickstart.ml: Doall Format Simkit
