examples/valve_shutdown.mli:
