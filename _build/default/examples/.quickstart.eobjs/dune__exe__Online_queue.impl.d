examples/online_queue.ml: Doall Format List Simkit
