examples/idle_workstations.ml: Dhw_util Doall Int64 List Printf Simkit
