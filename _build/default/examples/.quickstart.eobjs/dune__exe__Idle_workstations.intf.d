examples/idle_workstations.mli:
