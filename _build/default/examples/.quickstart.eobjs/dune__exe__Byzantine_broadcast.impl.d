examples/byzantine_broadcast.ml: Agreement Array Format Hashtbl Option Printf
