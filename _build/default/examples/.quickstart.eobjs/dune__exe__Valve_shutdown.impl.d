examples/valve_shutdown.ml: Dhw_util Doall List Simkit
