(* Cross-protocol integration: every protocol against the same schedules,
   comparative cost shapes from the paper's introduction, and end-to-end
   determinism. *)

module Prng = Dhw_util.Prng

let all_protocols ~small =
  [
    Doall.Baseline_trivial.protocol;
    Doall.Baseline_checkpoint.protocol ~period:1;
    Doall.Baseline_checkpoint.protocol ~period:8;
    Doall.Protocol_a.protocol;
    Doall.Protocol_b.protocol;
    Doall.Protocol_d.protocol;
    Doall.Protocol_d_coord.protocol;
  ]
  @ if small then [ Doall.Protocol_c.protocol; Doall.Protocol_c.protocol_chunked; Doall.Protocol_c_naive.protocol ] else []

let test_every_protocol_same_schedules () =
  let g = Prng.create 2468L in
  (* small instances so Protocol C's deadlines stay in range *)
  let spec = Helpers.spec ~n:18 ~t:6 in
  for i = 1 to 8 do
    let schedule = Helpers.random_schedule g ~t:6 ~window:5000 in
    List.iter
      (fun proto ->
        let report =
          Helpers.run ~fault:(Simkit.Fault.crash_silently_at schedule) spec proto
        in
        Helpers.check_correct
          (Printf.sprintf "%s schedule #%d" report.protocol i)
          report)
      (all_protocols ~small:true)
  done

let test_effort_hierarchy () =
  (* Section 1's motivation, measured: on n >> t the efficient protocols
     beat both strawmen on effort in the failure-free case *)
  let spec = Helpers.spec ~n:400 ~t:16 in
  let effort proto =
    Simkit.Metrics.effort (Helpers.metrics (Helpers.run spec proto))
  in
  let trivial = effort Doall.Baseline_trivial.protocol in
  let ckpt = effort (Doall.Baseline_checkpoint.protocol ~period:1) in
  let a = effort Doall.Protocol_a.protocol in
  let b = effort Doall.Protocol_b.protocol in
  let d = effort Doall.Protocol_d.protocol in
  Alcotest.(check bool)
    (Printf.sprintf "A(%d) < trivial(%d)" a trivial)
    true (a < trivial);
  Alcotest.(check bool) (Printf.sprintf "A(%d) < ckpt(%d)" a ckpt) true (a < ckpt);
  Alcotest.(check bool) (Printf.sprintf "B(%d) < trivial(%d)" b trivial) true (b < trivial);
  Alcotest.(check bool) (Printf.sprintf "D(%d) < trivial(%d)" d trivial) true (d < trivial)

let test_c_beats_ab_on_messages () =
  (* Theorem 3.8's point: fewer messages than A/B. A staggered all-but-one
     crash forces a takeover per process; A pays checkpoint broadcasts at
     each takeover, C only its polls and reports. *)
  let spec = Helpers.spec ~n:20 ~t:16 in
  let msgs proto =
    let fault =
      Simkit.Fault.crash_silently_at (List.init 15 (fun i -> (i, 1000 * i)))
    in
    let r = Helpers.run ~fault spec proto in
    Helpers.check_correct (r.protocol ^ " storm") r;
    Simkit.Metrics.messages (Helpers.metrics r)
  in
  let a = msgs Doall.Protocol_a.protocol in
  let b = msgs Doall.Protocol_b.protocol in
  let c = msgs Doall.Protocol_c.protocol_chunked in
  Alcotest.(check bool)
    (Printf.sprintf "C-chunked msgs (%d) < half of A's (%d) and B's (%d)" c a b)
    true
    (2 * c < a && 2 * c < b)

let test_b_beats_a_on_time () =
  let spec = Helpers.spec ~n:100 ~t:25 in
  let rounds proto =
    let fault = Simkit.Fault.crash_silently_at (List.init 24 (fun i -> (i, 2 * i))) in
    Simkit.Metrics.rounds (Helpers.metrics (Helpers.run ~fault spec proto))
  in
  let a = rounds Doall.Protocol_a.protocol in
  let b = rounds Doall.Protocol_b.protocol in
  Alcotest.(check bool) (Printf.sprintf "B rounds (%d) < A rounds (%d)" b a) true (b < a)

let test_d_fastest_failure_free () =
  let spec = Helpers.spec ~n:300 ~t:20 in
  let rounds proto = Simkit.Metrics.rounds (Helpers.metrics (Helpers.run spec proto)) in
  let d = rounds Doall.Protocol_d.protocol in
  List.iter
    (fun proto ->
      let r = rounds proto in
      Alcotest.(check bool) (Printf.sprintf "D (%d) < %d" d r) true (d < r))
    [ Doall.Protocol_a.protocol; Doall.Protocol_b.protocol; Doall.Baseline_trivial.protocol ]

let test_cross_run_determinism () =
  let go proto =
    let spec = Helpers.spec ~n:18 ~t:6 in
    let fault = Simkit.Fault.random ~seed:321L ~t:6 ~victims:5 ~window:10_000 in
    let r = Helpers.run ~fault spec proto in
    let m = Helpers.metrics r in
    ( Simkit.Metrics.work m,
      Simkit.Metrics.messages m,
      Simkit.Metrics.rounds m,
      Array.map Simkit.Types.status_to_string r.statuses )
  in
  List.iter
    (fun proto ->
      let a = go proto and b = go proto in
      Alcotest.(check bool) "identical rerun" true (a = b))
    (all_protocols ~small:true)

let test_work_conservation_everywhere () =
  (* with zero faults, A, B and D perform no redundant work at all *)
  let spec = Helpers.spec ~n:77 ~t:11 in
  List.iter
    (fun proto ->
      let r = Helpers.run spec proto in
      Alcotest.(check int)
        (r.protocol ^ " does exactly n units")
        77
        (Simkit.Metrics.work (Helpers.metrics r)))
    [ Doall.Protocol_a.protocol; Doall.Protocol_b.protocol; Doall.Protocol_d.protocol ]

let suite =
  [
    Alcotest.test_case "all protocols, shared schedules" `Quick test_every_protocol_same_schedules;
    Alcotest.test_case "effort hierarchy (Section 1)" `Quick test_effort_hierarchy;
    Alcotest.test_case "C beats A/B on messages" `Quick test_c_beats_ab_on_messages;
    Alcotest.test_case "B beats A on time" `Quick test_b_beats_a_on_time;
    Alcotest.test_case "D fastest failure-free" `Quick test_d_fastest_failure_free;
    Alcotest.test_case "cross-run determinism" `Quick test_cross_run_determinism;
    Alcotest.test_case "no redundant work without faults" `Quick test_work_conservation_everywhere;
  ]
