(* Unit and property tests for Dhw_util: the PRNG, integer math and table
   rendering. *)

module Prng = Dhw_util.Prng
module Intmath = Dhw_util.Intmath
module Table = Dhw_util.Table

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_distinct_seeds () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_copy () =
  let a = Prng.create 7L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_bounds () =
  let g = Prng.create 9L in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 7);
    let w = Prng.int_in g 3 5 in
    Alcotest.(check bool) "int_in in range" true (w >= 3 && w <= 5);
    let f = Prng.float g 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_int_uniformish () =
  let g = Prng.create 123L in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.int g 5 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (abs (c - (n / 5)) < n / 25))
    counts

let test_sample_without_replacement () =
  let g = Prng.create 55L in
  for _ = 1 to 200 do
    let k = Prng.int g 10 and bound = 10 + Prng.int g 20 in
    let sample = Prng.sample_without_replacement g k bound in
    Alcotest.(check int) "size" k (List.length sample);
    Alcotest.(check bool) "sorted distinct in range" true
      (let rec ok = function
         | [] -> true
         | [ x ] -> x >= 0 && x < bound
         | x :: (y :: _ as rest) -> x >= 0 && x < y && ok rest
       in
       ok sample)
  done

let test_shuffle_permutation () =
  let g = Prng.create 77L in
  let a = Array.init 30 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 30 Fun.id) sorted

let prop_isqrt =
  Helpers.qcheck_case ~count:500 ~name:"isqrt: r*r <= n < (r+1)^2"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun n ->
      let r = Intmath.isqrt n in
      (r * r <= n) && (r + 1) * (r + 1) > n)

let prop_isqrt_up =
  Helpers.qcheck_case ~count:500 ~name:"isqrt_up: smallest r with r*r >= n"
    QCheck2.Gen.(1 -- 1_000_000)
    (fun n ->
      let r = Intmath.isqrt_up n in
      r * r >= n && (r - 1) * (r - 1) < n)

let prop_ilog2 =
  Helpers.qcheck_case ~count:500 ~name:"ilog2: 2^l <= n < 2^(l+1)"
    QCheck2.Gen.(1 -- 1_000_000_000)
    (fun n ->
      let l = Intmath.ilog2 n in
      (1 lsl l) <= n && n < 1 lsl (l + 1))

let prop_next_pow2 =
  Helpers.qcheck_case ~count:500 ~name:"next_power_of_two: tight"
    QCheck2.Gen.(1 -- 1_000_000)
    (fun n ->
      let p = Intmath.next_power_of_two n in
      Intmath.is_power_of_two p && p >= n && p / 2 < n)

let prop_ceil_div =
  Helpers.qcheck_case ~count:500 ~name:"ceil_div: smallest q with q*b >= a"
    QCheck2.Gen.(pair (0 -- 1_000_000) (1 -- 1000))
    (fun (a, b) ->
      let q = Intmath.ceil_div a b in
      q * b >= a && (q - 1) * b < a)

let test_pow () =
  Alcotest.(check int) "2^10" 1024 (Intmath.pow 2 10);
  Alcotest.(check int) "3^0" 1 (Intmath.pow 3 0);
  Alcotest.(check int) "7^5" 16807 (Intmath.pow 7 5);
  Alcotest.check_raises "overflow" (Failure "Intmath: overflow") (fun () ->
      ignore (Intmath.pow 2 63))

let test_checked () =
  Alcotest.(check int) "mul ok" 35 (Intmath.checked_mul 5 7);
  Alcotest.check_raises "mul overflow" (Failure "Intmath: overflow") (fun () ->
      ignore (Intmath.checked_mul max_int 2));
  Alcotest.check_raises "add overflow" (Failure "Intmath: overflow") (fun () ->
      ignore (Intmath.checked_add max_int 1))

let test_table_render () =
  let t = Table.create ~title:"T" [ ("a", Table.Left); ("bb", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "long-cell"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains cells" true
    (let contains needle =
       let n = String.length needle and h = String.length s in
       let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
       go 0
     in
     contains "long-cell" && contains "22" && contains "| a")

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_fmt_int () =
  Alcotest.(check string) "thousands" "1,234,567" (Table.fmt_int 1234567);
  Alcotest.(check string) "small" "42" (Table.fmt_int 42);
  Alcotest.(check string) "negative" "-1,000" (Table.fmt_int (-1000));
  Alcotest.(check string) "zero" "0" (Table.fmt_int 0)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng distinct seeds" `Quick test_prng_distinct_seeds;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng uniformity" `Quick test_prng_int_uniformish;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    prop_isqrt;
    prop_isqrt_up;
    prop_ilog2;
    prop_next_pow2;
    prop_ceil_div;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "checked arithmetic" `Quick test_checked;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "fmt_int" `Quick test_fmt_int;
  ]
